(** Machine identifiers: references to dynamically created machine
    instances, allocated deterministically in creation order. *)

type t

val first : t
val next : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_int : t -> int
val of_int : int -> t
val pp : t Fmt.t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
