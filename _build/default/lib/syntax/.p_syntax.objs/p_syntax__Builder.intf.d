lib/syntax/builder.mli: Ast Names Ptype
