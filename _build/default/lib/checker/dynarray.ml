(** Minimal growable array (OCaml 5.1's stdlib predates [Dynarray]). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.set";
  t.data.(i) <- v

let add_last t v =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    let data = Array.make cap v in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))
