(** Versioned on-disk counterexample traces (JSONL).

    The artifact is a schedule, not a state dump: per atomic block, the
    machine that ran and the ghost [*] resolutions it consumed, plus hex
    MD5 fingerprints for drift detection. That makes it
    scheduler-independent — any engine's counterexample replays through
    {!P_semantics.Step.run_atomic} alone (see {!Replay}), shrinks by step
    removal ({!Shrink}), and cross-checks against the compiled runtime
    ({!Differential}). *)

val format_marker : string
(** Value of the header's ["format"] field: ["pcaml-trace"]. *)

val current_version : int
(** Version this build writes and reads. *)

type step = {
  mid : int;  (** {!P_semantics.Mid.t} as its dense integer *)
  choices : bool list;  (** ghost [*] resolutions, in evaluation order *)
  digest : string;
      (** hex MD5 of the configuration after this block; [""] when unknown
          or when the block fails (no successor configuration) *)
}

type t = {
  version : int;
  program : string option;
      (** provenance: ["example:NAME"] or ["file:PATH"], so [pc replay] /
          [pc shrink] can reload the program from the artifact alone *)
  engine : string;  (** engine that recorded the schedule *)
  error : string option;
      (** rendered error the trace must reproduce; [None] for a clean run *)
  seed : int option;  (** PRNG seed of a sampled run *)
  faults : string option;
      (** rendered fault plan (rates only, {!P_semantics.Fault.to_string})
          the schedule ran under; [None] for a well-behaved host. Replay
          must re-install the same plan or the decisions change. *)
  fault_seed : int option;
      (** the fault plan's seed; [Some _] exactly when [faults] is *)
  dedup : bool;  (** whether [⊕] queue dedup was on; replay must match *)
  init_digest : string;  (** hex MD5 fingerprint of the initial config *)
  final_digest : string;
      (** hex MD5 of the last configuration that exists: the final state of
          a clean trace, or the configuration entering the failing block *)
  steps : step list;
}

val make :
  ?program:string ->
  ?error:string ->
  ?seed:int ->
  ?faults:string ->
  ?fault_seed:int ->
  ?dedup:bool ->
  engine:string ->
  init_digest:string ->
  final_digest:string ->
  step list ->
  t
(** Build a trace at {!current_version}. [dedup] defaults to [true]. *)

val fault_plan : t -> (P_semantics.Fault.plan option, string) result
(** Reconstruct the fault plan the artifact was recorded under: [Ok None]
    for a fault-free trace, [Ok (Some plan)] with the header's rates and
    seed re-installed, [Error] when the [faults] field does not parse. *)

val write_file : string -> t -> unit
(** Write the JSONL artifact (header line, then one line per step). *)

val read_file : string -> (t, string) result
(** Parse an artifact back; [Error] carries a line-located diagnosis for
    missing files, non-JSON lines, wrong format marker, or unsupported
    versions. *)

val of_lines : string list -> (t, string) result
(** {!read_file} on in-memory lines (first line is the header). *)

val pp_summary : t Fmt.t
(** One-line description: step count, engine, expected error, seed, fault
    spec. *)
