examples/german_verify.ml: Fmt List P_checker P_examples_lib P_semantics P_static
