(** Ghost erasure: the compilation step that removes ghost machines, ghost
    variables, ghost sends, and ghost assertions (section 3.3).
    {!Ghost.check} must have passed for the erasure to be semantics
    preserving; [erase] itself is total. *)

val erase_stmt :
  Symtab.t -> Symtab.machine_info -> P_syntax.Ast.stmt -> P_syntax.Ast.stmt
(** Scrub one statement of a real machine (ghost assignments, ghost sends,
    ghost-tainted assertions become [skip]; [skip]s are folded away). *)

val erase_machine : Symtab.t -> Symtab.machine_info -> P_syntax.Ast.machine

val erase : Symtab.t -> P_syntax.Ast.program
(** The compiled (real-only) program. When the main machine was ghost, the
    initialization statement is re-pointed at the first real machine — after
    erasure the host creates the first machine, as the paper's interface
    code does. *)
