(** The table-driven intermediate representation produced by compilation.

    Section 4 of the paper describes the generated C as "a collection of
    indexed and statically-allocated data structures examined by the runtime
    when it executes the operational semantics": enumerations for events,
    machine types, variables and states; per-state tables of outgoing
    transitions, deferred events and installed actions; and entry/exit
    functions. This IR is exactly those tables with all names resolved to
    dense integer indices. {!C_emit} prints it as C source;
    {!P_runtime.Exec} interprets it directly. *)

type event_id = int
type machine_ty = int (* index of a machine *type* in the driver *)
type state_id = int
type var_id = int
type action_id = int
type foreign_id = int

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type cexpr =
  | CThis
  | CMsg
  | CArg
  | CNull
  | CBool of bool
  | CInt of int
  | CEvent of event_id
  | CVar of var_id
  | CUnop of unop * cexpr
  | CBinop of binop * cexpr * cexpr
  | CForeign_call of foreign_id * cexpr list
  | CNondet
      (** the ghost [*] expression. Never present in erased (production)
          tables — only {!Lower.lower}[ ~full:true] emits it, for the
          differential-replay driver, whose stepped executor resolves it
          from a recorded choice list *)

type code =
  | CSkip
  | CAssign of var_id * cexpr
  | CNew of var_id * machine_ty * (var_id * cexpr) list
  | CDelete
  | CSend of cexpr * event_id * cexpr
  | CRaise of event_id * cexpr
  | CLeave
  | CReturn
  | CAssert of cexpr * string  (** message identifying the source assertion *)
  | CSeq of code * code
  | CIf of cexpr * code * code
  | CWhile of cexpr * code
  | CCall_state of state_id
  | CForeign_stmt of foreign_id * cexpr list

type state_table = {
  st_name : string;
  st_deferred : bool array;  (** indexed by [event_id] *)
  st_steps : state_id option array;  (** indexed by [event_id] *)
  st_calls : state_id option array;
  st_actions : action_id option array;
  st_entry : code;
  st_exit : code;
}

type foreign_sig = {
  fs_name : string;
  fs_params : P_syntax.Ptype.t list;
  fs_ret : P_syntax.Ptype.t;
}

type machine_table = {
  mt_name : string;
  mt_vars : (string * P_syntax.Ptype.t) array;
  mt_actions : (string * code) array;
  mt_states : state_table array;  (** index 0 is the initial state *)
  mt_foreigns : foreign_sig array;
}

type driver = {
  dr_name : string;
  dr_events : (string * P_syntax.Ptype.t) array;
  dr_machines : machine_table array;
  dr_main : machine_ty option;
      (** [None] when the program's main machine was ghost: the host creates
          the first real machine itself, as the paper's interface code does
          from the EvtAddDevice callback *)
  dr_main_init : (var_id * cexpr) list;
}

let event_count d = Array.length d.dr_events

let machine_ty_of_name d name =
  let rec go i =
    if i >= Array.length d.dr_machines then None
    else if String.equal d.dr_machines.(i).mt_name name then Some i
    else go (i + 1)
  in
  go 0

let event_id_of_name d name =
  let rec go i =
    if i >= Array.length d.dr_events then None
    else if String.equal (fst d.dr_events.(i)) name then Some i
    else go (i + 1)
  in
  go 0

(* Rough size metrics for reporting. *)
let rec code_size = function
  | CSkip | CDelete | CLeave | CReturn -> 1
  | CAssign _ | CSend _ | CRaise _ | CAssert _ | CCall_state _ -> 1
  | CNew (_, _, inits) -> 1 + List.length inits
  | CSeq (a, b) -> code_size a + code_size b
  | CIf (_, a, b) -> 1 + code_size a + code_size b
  | CWhile (_, body) -> 1 + code_size body
  | CForeign_stmt (_, args) -> 1 + List.length args

let driver_size d =
  Array.fold_left
    (fun acc (mt : machine_table) ->
      let states =
        Array.fold_left
          (fun acc st -> acc + code_size st.st_entry + code_size st.st_exit)
          0 mt.mt_states
      in
      let actions =
        Array.fold_left (fun acc (_, c) -> acc + code_size c) 0 mt.mt_actions
      in
      acc + states + actions)
    0 d.dr_machines
