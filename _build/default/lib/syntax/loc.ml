(** Source locations for parser and static-checker diagnostics. *)

type t = {
  file : string;
  line : int;  (** 1-based line number; 0 when synthetic *)
  col : int;  (** 0-based column of the first character *)
}

let none = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_none t = t.line = 0

let pp ppf t =
  if is_none t then Fmt.string ppf t.file
  else Fmt.pf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Fmt.str "%a" pp t

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
