(** Per-domain phase profiler for the exploration engines.

    Attributes wall time to the phases a worker domain can be in —
    expanding nodes, stealing, waiting at a stratum barrier, blocked on a
    seen-set shard lock, or inside the OCaml runtime (GC) — and renders
    the result as per-worker timeline lanes in the existing Chrome
    [trace_event] sink, one [tid] per worker.

    The contract mirrors {!Sink}: the default {!null} profiler makes every
    hook a no-op ({!start} does not even read the clock), so engines can
    instrument unconditionally and pay nothing when profiling is off.

    Concurrency discipline: each worker records only into its own slot
    ([record] with its own [worker] index), so the hot path takes no lock.
    GC spans come from the runtime's own [Runtime_events] ring buffers,
    polled by whichever single domain drives the ticker; they are kept in
    a separate buffer guarded by the poll lock, never touching the
    per-worker slots. {!flush} and {!summary_json} are for after the
    workers have joined.

    Span volume: a big run expands millions of nodes; one trace event per
    expansion would produce gigabyte traces. Consecutive spans of the same
    phase separated by at most [coalesce_us] are merged into one rendered
    span (the gap is included in its duration), and each worker stores at
    most [max_spans] spans — on overflow it stops storing and the trace
    gains a [profile.spans_dropped] instant. The per-phase aggregate
    counts and totals ({!summary_json}, {!total_us}) are exact and
    unaffected by coalescing or overflow. *)

type phase =
  | Expand  (** running atomic blocks and integrating successors *)
  | Steal  (** scanning peer deques after the local deque drained *)
  | Barrier_wait  (** inside {!Barrier.await} between strata *)
  | Shard_lock  (** blocked acquiring a contended seen-set shard lock *)
  | Gc  (** inside the OCaml runtime (GC slices, from [Runtime_events]) *)

val phase_name : phase -> string
(** ["expand"], ["steal"], ["barrier_wait"], ["shard_lock"], ["gc"]. *)

type t

val null : t
(** Every operation is a no-op; {!start} returns [0.] without reading the
    clock. *)

val enabled : t -> bool

val create : ?coalesce_us:float -> ?max_spans:int -> workers:int -> unit -> t
(** A profiler for [workers] worker lanes (sequential engines use
    [~workers:1] and record as worker 0). [coalesce_us] (default [50.])
    merges same-phase spans separated by at most that many microseconds;
    [max_spans] (default [100_000]) caps stored spans per worker. *)

(** {2 Hot-path hooks} *)

val start : t -> float
(** The timestamp to pass back to {!record}; [0.] when disabled. *)

val record : t -> worker:int -> phase -> t0:float -> unit
(** Close the span opened at [t0] (from {!start}) and attribute it to
    [phase] on [worker]'s lane. Must be called from the worker that owns
    the slot. No-op when disabled. *)

(** {2 GC attribution via [Runtime_events]} *)

val start_gc : t -> unit
(** Start the runtime's event ring and attach a cursor. Idempotent;
    best-effort — failure to start (e.g. an exotic runtime) disables GC
    attribution and nothing else. No-op when disabled. *)

val register_worker : t -> worker:int -> unit
(** Map the calling domain to [worker], so runtime events from its ring
    render on that worker's lane. Call once from each worker domain (and
    from the main domain for sequential runs). *)

val poll_gc : t -> unit
(** Drain pending runtime events into GC spans. Rate-limited internally
    and guarded by a try-lock, so it is safe (and cheap) to call from the
    engines' existing tick points on any domain. *)

val stop_gc : t -> unit
(** Final poll and cursor release. Idempotent. *)

(** {2 Output (after workers join)} *)

val flush : t -> Sink.t -> unit
(** Emit the recorded timeline: a [thread_name] metadata record per
    worker lane, every stored span as a complete event ([cat:"profile"],
    [tid] = worker), and a [profile.spans_dropped] instant per lane that
    overflowed. *)

val summary_json : t -> Json.t
(** Exact per-phase aggregates:
    [{"phases": {"expand": {"count", "total_us", "per_worker_us"}, …},
      "workers", "spans_stored", "spans_dropped", "coalesce_us"}]. *)

val total_us : t -> phase -> float
(** Exact total wall time attributed to [phase] across workers (for
    tests); [0.] when disabled. *)

val span_count : t -> int
(** Stored (post-coalescing) span count across workers, GC included. *)
