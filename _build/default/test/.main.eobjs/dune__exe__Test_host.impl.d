test/test_host.ml: Alcotest Float List P_compile P_examples_lib P_host P_runtime
