(** Machine instance contexts: the runtime twin of the paper's
    [StateMachineContext] (section 4) — variable values, call stack, input
    queue, a per-instance lock, and a [void*]-style pointer to external
    memory for foreign functions and interface code. *)

module Tables = P_compile.Tables

(** External memory attached to a machine for foreign code. Extend with one
    constructor per driver, e.g.
    [type Context.ext += Led_state of { mutable on : bool }]. *)
type ext = ..

type handler = HNone | HDefer | HAction of int

(** What happened to an event offered to the runtime: ran immediately
    ([Accepted]), parked in a mailbox ([Queued]), or dropped because a
    bound was reached ([Shed]). The typed backpressure contract shared by
    {!Api}, the effects scheduler and the shard layer. *)
type backpressure = Accepted | Queued | Shed

(** Outcome of a single mailbox [enqueue]: [Enq_duplicate] is the
    deduplicating [⊕] absorbing an entry already present; [Enq_overflow]
    reports a full bounded mailbox (nothing was enqueued). *)
type enqueue_result = Enq_ok | Enq_duplicate | Enq_overflow

type task =
  | Exec of Tables.code
  | Handle of int * Rt_value.t  (** dynamic raise(e, v) *)
  | Pop_return
  | Pop_frame
  | Enter of int

type frame = {
  mutable f_state : int;
  f_amap : handler array;  (** indexed by event id; inherited handler map *)
  f_cont : task list;  (** caller continuation for [call] statements *)
}

(** The input FIFO: a two-list functional queue with a membership table
    for the deduplicating [⊕], making enqueue amortized O(1) (the
    historical list-append representation made bursty workloads O(n²)).
    The table counts occurrences: a duplication fault
    ({!enqueue_no_dedup}) can put the same entry in the queue twice, and
    [⊕] must stay correct after the first copy dequeues. *)
type inbox = {
  mutable ib_front : (int * Rt_value.t) list;  (** next to dequeue first *)
  mutable ib_back : (int * Rt_value.t) list;  (** reversed: newest first *)
  mutable ib_size : int;
  ib_members : (int * Rt_value.t, int) Hashtbl.t;  (** occurrence counts *)
}

type t = {
  self : int;  (** instance handle *)
  ty : int;  (** machine type index in the driver *)
  table : Tables.machine_table;
  vars : Rt_value.t array;
  mutable msg : int option;
  mutable arg : Rt_value.t;
  mutable frames : frame list;  (** top first *)
  mutable agenda : task list;
  inbox : inbox;
  mutable alive : bool;
  mutable scheduled : bool;  (** being run (or queued to run) by some thread *)
  capacity : int;  (** mailbox bound; [max_int] = unbounded (semantics mode) *)
  lock : Mutex.t;
  mutable external_mem : ext option;
}

val create :
  ?capacity:int -> self:int -> ty:int -> table:Tables.machine_table -> unit -> t
(** [capacity] bounds the inbox ([max_int], the default, preserves the
    formal semantics' unbounded queues); raises [Invalid_argument] when
    not positive. *)

val current_state : t -> int option
val state_table : t -> int -> Tables.state_table

val is_deferred : t -> int -> bool
(** The effective deferred set in the current state (inherited plus
    declared, minus locally handled). *)

val enqueue : t -> int -> Rt_value.t -> enqueue_result
(** Append with the deduplicating [⊕] of the SEND rule, respecting the
    mailbox capacity. *)

val enqueue_no_dedup : t -> int -> Rt_value.t -> enqueue_result
(** Append bypassing [⊕] (never [Enq_duplicate]) — the second copy of a
    duplication fault; still respects the mailbox capacity. *)

val enqueue_front : t -> int -> Rt_value.t -> enqueue_result
(** Insert at the front of the FIFO — a reordering fault.
    Membership-checked like [⊕]: an entry already queued is absorbed. *)

val dequeue : t -> (int * Rt_value.t) option
(** Dequeue the first non-deferred entry, if any; deferred entries keep
    their queue positions. *)

val dequeue_second : t -> (int * Rt_value.t) option
(** Dequeue the SECOND non-deferred entry — a delay fault; falls back to
    the first when only one entry is dequeuable. *)

val inbox_length : t -> int

val inbox_list : t -> (int * Rt_value.t) list
(** Front of the FIFO first (for introspection and differential replay). *)

val has_dequeuable : t -> bool
val is_runnable : t -> bool

val restart : t -> unit
(** Crash-restart: re-enter the initial state keeping only the persistent
    store (variable values) — frames, agenda, [msg]/[arg], and the inbox
    reset to a fresh machine's. The runtime twin of
    {!P_semantics.Step.restart}. *)
