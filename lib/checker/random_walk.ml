(** Random-walk testing: the naive baseline systematic testing competes
    against. Each walk repeatedly picks a uniformly random enabled machine
    (full scheduling nondeterminism, no stack discipline) and random ghost
    choices, until an error, quiescence, or the step budget. Seeded and
    reproducible.

    The delay-bounded scheduler's pitch (section 5) is that its *biased,
    bounded* enumeration finds bugs with far fewer executions than unbiased
    search; the [ablation] benchmark uses this module to show random walks
    needing many more atomic blocks than the d ≤ 2 search to hit the same
    seeded bugs — and missing the rarer ones entirely at equal budgets.

    Each walk is a degenerate {!Engine.run}: a {!Engine.random_pick}
    scheduler offering one drawn move per state, [Sampled] ghost choices,
    no seen set, budget = blocks. The per-walk draw sequence is identical
    to the historical hand-rolled walker (one machine draw per block, then
    one boolean per ghost choice), so results per seed are unchanged. *)

module Errors = P_semantics.Errors
module Trace = P_semantics.Trace

type failure = {
  error : Errors.t;
  trace : Trace.t;
  blocks : int;  (** length of the failing walk, in atomic blocks *)
  walk : int;  (** index of the failing walk *)
  walk_seed : int;
      (** the derived per-walk PRNG seed ([seed + walk * 7919]): rerunning
          one walk with this seed reproduces the failure directly *)
  schedule : (P_semantics.Mid.t * bool list) list;
      (** replayable schedule of the failing walk (see {!Replay}) *)
}

type walk_result =
  | Walk_error of Search.counterexample
  | Walk_quiescent of int
  | Walk_budget of int

type result = {
  walks : int;
  errors_found : int;
  first_error : failure option;
  seed : int;  (** the base seed the walks were derived from *)
  total_blocks : int;
  elapsed_s : float;
}

let pp_result ppf r =
  Fmt.pf ppf "%d walks, %d failing, %d total blocks, seed %d%a, %.3fs" r.walks
    r.errors_found r.total_blocks r.seed
    (fun ppf -> function
      | Some f ->
        Fmt.pf ppf " (first: %a after %d blocks, walk %d, walk seed %d)" Errors.pp
          f.error f.blocks f.walk f.walk_seed
      | None -> ())
    r.first_error r.elapsed_s

(* A tiny self-contained PRNG (xorshift) so results are independent of any
   global Random state. *)
type rng = { mutable s : int }

let make_rng seed = { s = (seed * 2654435761) lor 1 }

let rand_int rng bound =
  rng.s <- rng.s lxor (rng.s lsl 13);
  rng.s <- rng.s lxor (rng.s lsr 7);
  rng.s <- rng.s lxor (rng.s lsl 17);
  (rng.s land max_int) mod bound

let rand_bool rng = rand_int rng 2 = 1

(* One walk = one engine run with a single-move random scheduler. The walk
   length in blocks is exactly the transition count; a truncated clean run
   hit the budget, an untruncated one went quiescent. Runs with no_instr:
   the walk-level metrics and the single lifecycle span are this module's. *)
let one_walk (tab : P_static.Symtab.t) rng ~max_blocks : walk_result =
  let spec =
    Engine.spec ~bound:max_blocks ~truncate_on_exhaust:true ~frontier:Engine.Dfs
      ~resolver:(Engine.Sampled (fun () -> rand_bool rng))
      ~track_seen:false ~max_states:max_int
      (Engine.random_pick (rand_int rng))
  in
  let r = Engine.run ~engine:"random_walk" spec tab in
  match r.Search.verdict with
  | Search.Error_found ce -> Walk_error ce
  | Search.No_error when r.Search.stats.truncated -> Walk_budget r.Search.stats.transitions
  | Search.No_error -> Walk_quiescent r.Search.stats.transitions

(** Run [walks] independent random schedules of at most [max_blocks] atomic
    blocks each. *)
let run ?(walks = 100) ?(max_blocks = 1_000) ?(seed = 1)
    ?(instr = Search.no_instr) (tab : P_static.Symtab.t) : result =
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let wmeters =
    match instr.Search.metrics with
    | None -> None
    | Some reg ->
      let labels = [ ("engine", "random_walk") ] in
      Some
        ( P_obs.Metrics.counter reg ~labels "checker.walks",
          P_obs.Metrics.counter reg ~labels "checker.walk_blocks",
          P_obs.Metrics.counter reg ~labels "checker.walk_errors" )
  in
  let errors = ref 0 in
  let first = ref None in
  let total = ref 0 in
  for w = 0 to walks - 1 do
    let walk_seed = seed + (w * 7919) in
    let rng = make_rng walk_seed in
    let blocks =
      match one_walk tab rng ~max_blocks with
      | Walk_error ce ->
        incr errors;
        if !first = None then
          first :=
            Some
              { error = ce.Search.error;
                trace = ce.Search.trace;
                blocks = ce.Search.depth;
                walk = w;
                walk_seed;
                schedule = ce.Search.schedule };
        (match wmeters with
        | None -> ()
        | Some (_, _, m_errors) -> P_obs.Metrics.incr m_errors);
        ce.Search.depth
      | Walk_quiescent blocks | Walk_budget blocks -> blocks
    in
    total := !total + blocks;
    match wmeters with
    | None -> ()
    | Some (m_walks, m_blocks, _) ->
      P_obs.Metrics.incr m_walks;
      P_obs.Metrics.add m_blocks blocks
  done;
  let elapsed_s = P_obs.Mclock.elapsed_s started in
  if P_obs.Sink.enabled instr.Search.sink then
    P_obs.Sink.complete instr.Search.sink ~cat:"engine" ~name:"random_walk.run"
      ~ts_us:t0_us
      ~dur_us:(P_obs.Mclock.now_us () -. t0_us)
      ~args:
        [ ("walks", P_obs.Json.Int walks);
          ("errors_found", P_obs.Json.Int !errors);
          ("total_blocks", P_obs.Json.Int !total) ]
      ();
  { walks;
    errors_found = !errors;
    first_error = !first;
    seed;
    total_blocks = !total;
    elapsed_s }

(** Portfolio mode: the same seeded walks raced across [domains] OCaml
    domains, sharing nothing but a found-it flag. Walk [w] runs on domain
    [w mod domains] with the same derived seed [seed + w * 7919] as {!run},
    so any reported failure is reproducible exactly like a sequential one:
    rerun that single walk with its [walk_seed], or replay its schedule. *)
let run_portfolio ?(walks = 100) ?(max_blocks = 1_000) ?(seed = 1)
    ?(domains = 4) ?(instr = Search.no_instr) (tab : P_static.Symtab.t) :
    result =
  let domains =
    match Parallel.validate_domains ~hard:true domains with
    | Ok d -> d
    | Error e -> raise (Parallel.Invalid_domains e)
  in
  if domains = 1 then run ~walks ~max_blocks ~seed ~instr tab
  else begin
    let started = P_obs.Mclock.start () in
    let t0_us = P_obs.Mclock.now_us () in
    let wmeters =
      match instr.Search.metrics with
      | None -> None
      | Some reg ->
        let labels = [ ("engine", "random_walk") ] in
        Some
          ( P_obs.Metrics.counter reg ~labels "checker.walks",
            P_obs.Metrics.counter reg ~labels "checker.walk_blocks",
            P_obs.Metrics.counter reg ~labels "checker.walk_errors" )
    in
    (* the found-it flag: walks in flight finish, nobody starts a new one *)
    let found = Atomic.make false in
    (* the winner: the reported failure with the smallest walk index among
       those that completed before everyone drained *)
    let best : (int * failure) option Atomic.t = Atomic.make None in
    let errors = Atomic.make 0 in
    let total = Atomic.make 0 in
    let worker d () =
      let w = ref d in
      while !w < walks && not (Atomic.get found) do
        let walk_seed = seed + (!w * 7919) in
        let rng = make_rng walk_seed in
        let blocks =
          match one_walk tab rng ~max_blocks with
          | Walk_error ce ->
            Atomic.incr errors;
            let f =
              { error = ce.Search.error;
                trace = ce.Search.trace;
                blocks = ce.Search.depth;
                walk = !w;
                walk_seed;
                schedule = ce.Search.schedule }
            in
            let rec record () =
              match Atomic.get best with
              | Some (w0, _) when w0 <= !w -> ()
              | cur ->
                if not (Atomic.compare_and_set best cur (Some (!w, f))) then
                  record ()
            in
            record ();
            Atomic.set found true;
            (match wmeters with
            | None -> ()
            | Some (_, _, m_errors) -> P_obs.Metrics.incr m_errors);
            ce.Search.depth
          | Walk_quiescent blocks | Walk_budget blocks -> blocks
        in
        ignore (Atomic.fetch_and_add total blocks);
        (match wmeters with
        | None -> ()
        | Some (m_walks, m_blocks, _) ->
          P_obs.Metrics.incr m_walks;
          P_obs.Metrics.add m_blocks blocks);
        w := !w + domains
      done
    in
    let handles =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ()))
    in
    worker 0 ();
    List.iter Domain.join handles;
    let first = Option.map snd (Atomic.get best) in
    let elapsed_s = P_obs.Mclock.elapsed_s started in
    if P_obs.Sink.enabled instr.Search.sink then
      P_obs.Sink.complete instr.Search.sink ~cat:"engine"
        ~name:"random_walk.portfolio" ~ts_us:t0_us
        ~dur_us:(P_obs.Mclock.now_us () -. t0_us)
        ~args:
          [ ("walks", P_obs.Json.Int walks);
            ("domains", P_obs.Json.Int domains);
            ("errors_found", P_obs.Json.Int (Atomic.get errors));
            ("total_blocks", P_obs.Json.Int (Atomic.get total)) ]
        ();
    { walks;
      errors_found = Atomic.get errors;
      first_error = first;
      seed;
      total_blocks = Atomic.get total;
      elapsed_s }
  end
