lib/syntax/pretty.mli: Ast Fmt
