(* Tests for the extension features: the multicore explorer, the Graphviz
   exporter, and the composed USB stack model. *)

open P_checker

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let contains = Astring_contains.contains

(* ---------------- parallel exploration ---------------- *)

let test_parallel_agrees_with_sequential () =
  List.iter
    (fun (name, p, d) ->
      let tab = P_static.Check.run_exn p in
      let seq = Delay_bounded.explore ~delay_bound:d tab in
      let par = Parallel.explore ~domains:3 ~delay_bound:d tab in
      check int_t (name ^ ": same states") seq.stats.states par.stats.states;
      (* the work-stealing engine expands each state exactly once, at its
         minimal delay budget; sequential BFS re-expands states it first
         reached with more delays spent, so parallel transitions <= seq *)
      check bool_t (name ^ ": transitions <= sequential") true
        (par.stats.transitions <= seq.stats.transitions);
      check bool_t (name ^ ": same verdict") true
        ((seq.verdict = Search.No_error) = (par.verdict = Search.No_error)))
    [ ("pingpong", P_examples_lib.Pingpong.program ~rounds:2 (), 2);
      ("elevator", P_examples_lib.Elevator.program (), 1);
      ("switchled", P_examples_lib.Switch_led.program (), 3) ]

let test_parallel_deterministic_across_domains () =
  let tab = P_static.Check.run_exn (P_examples_lib.Elevator.program ()) in
  let states domains =
    (Parallel.explore ~domains ~delay_bound:2 tab).stats.states
  in
  let s1 = states 1 in
  check int_t "2 domains" s1 (states 2);
  check int_t "4 domains" s1 (states 4)

let test_parallel_finds_bug () =
  let tab = P_static.Check.run_exn (P_examples_lib.German.buggy_program ()) in
  let r = Parallel.explore ~domains:2 ~delay_bound:0 tab in
  match r.verdict with
  | Search.Error_found ce ->
    check bool_t "trace replays" true (List.length ce.trace > 5);
    (match ce.error.kind with
    | P_semantics.Errors.Assert_failure _ -> ()
    | k -> Alcotest.failf "wrong kind: %a" P_semantics.Errors.pp_kind k)
  | Search.No_error -> Alcotest.fail "parallel engine missed the seeded bug"

(* ---------------- DOT export ---------------- *)

let test_dot_program_shape () =
  let dot = P_compile.Dot_emit.emit (P_examples_lib.Elevator.program ()) in
  List.iter
    (fun frag ->
      if not (contains dot frag) then Alcotest.failf "DOT lacks %S" frag)
    [ "digraph P {";
      "subgraph \"cluster_Elevator\"";
      "label = \"ghost machine User\"";
      "style = dashed";
      (* a step edge *)
      "\"Elevator__Closed\" -> \"Elevator__Opening\" [label=\"OpenDoor\"]";
      (* a call transition rendered as the paper's double edge *)
      "\"Elevator__Opened\" -> \"Elevator__StoppingTimer\" [label=\"OpenDoor\", style=bold";
      (* an action binding as a dashed self-loop *)
      "\"Elevator__Opening\" -> \"Elevator__Opening\" [label=\"OpenDoor / Ignore\", style=dashed]";
      (* deferred set listed in the node *)
      "defer: CloseDoor" ]

let test_dot_single_machine () =
  let m =
    P_syntax.Ast.find_machine
      (P_examples_lib.Pingpong.program ())
      (P_syntax.Names.Machine.of_string "Ponger")
    |> Option.get
  in
  let dot = P_compile.Dot_emit.emit_one m in
  check bool_t "one cluster" true (contains dot "cluster_Ponger");
  check bool_t "no other machines" false (contains dot "Pinger");
  (* the initial state is marked and wired from the entry point *)
  check bool_t "entry arrow" true (contains dot "\"Ponger__entry\" -> \"Ponger__Serve\"")

let test_dot_escapes () =
  (* names are attacker-ish strings; the emitter must not produce raw quotes *)
  let open P_syntax.Builder in
  let m = machine "M\"x" [ state "S\\n" ~entry:skip ] in
  let dot = P_compile.Dot_emit.emit_one m in
  check bool_t "escaped quote" true (contains dot "M\\\"x");
  check bool_t "no naked quote in label" false (contains dot "label = \"machine M\"x\"")

(* ---------------- random-walk testing ---------------- *)

let test_random_walk_finds_easy_bug () =
  let tab = P_static.Check.run_exn (P_examples_lib.Elevator.buggy_program ()) in
  let r = Random_walk.run ~walks:30 ~max_blocks:300 ~seed:5 tab in
  check bool_t "some walk fails" true (r.errors_found > 0);
  match r.first_error with
  | Some f ->
    check bool_t "an unhandled event" true
      (match f.error.P_semantics.Errors.kind with
      | P_semantics.Errors.Unhandled_event _ -> true
      | _ -> false);
    check bool_t "trace recorded" true (List.length f.trace > 3);
    check bool_t "blocks positive" true (f.blocks > 0);
    check bool_t "schedule matches blocks" true (List.length f.schedule = f.blocks);
    check int_t "walk seed is derived from the base seed" f.walk_seed
      (r.seed + (f.walk * 7919))
  | None -> Alcotest.fail "errors_found > 0 but no first_error"

let test_random_walk_clean_program () =
  let tab = P_static.Check.run_exn (P_examples_lib.Pingpong.program ~rounds:2 ()) in
  let r = Random_walk.run ~walks:20 ~max_blocks:200 ~seed:7 tab in
  check int_t "no failures on a clean program" 0 r.errors_found

let test_random_walk_reproducible () =
  let tab = P_static.Check.run_exn (P_examples_lib.German.buggy_program ()) in
  let r1 = Random_walk.run ~walks:20 ~max_blocks:200 ~seed:42 tab in
  let r2 = Random_walk.run ~walks:20 ~max_blocks:200 ~seed:42 tab in
  check int_t "same outcome per seed" r1.errors_found r2.errors_found;
  check int_t "same total blocks" r1.total_blocks r2.total_blocks

(* ---------------- coverage ---------------- *)

let test_coverage_elevator_full () =
  let tab = P_static.Check.run_exn (P_examples_lib.Elevator.program ()) in
  let cov = Coverage.of_exploration ~delay_bound:8 ~max_states:60_000 tab in
  let r = Coverage.report cov in
  check int_t "all states entered" r.states_total r.states_hit;
  (* the elevator was trimmed against this very report: full handler
     coverage is a regression invariant now *)
  check int_t "all handlers fired" r.handlers_total r.handlers_hit;
  check bool_t "nontrivial" true (r.handlers_total > 20)

let test_coverage_detects_dead_handler () =
  let open P_syntax.Builder in
  (* an Ignore binding for an event nobody ever sends must show as unfired *)
  let m =
    machine "M"
      ~actions:[ action "Ignore" skip ]
      [ state "S" ~entry:skip ]
      ~bindings:[ on ("S", "never") ~do_:"Ignore" ]
  in
  let p = program ~events:[ event "never" ] ~machines:[ m ] "M" in
  let tab = P_static.Check.run_exn p in
  let cov = Coverage.of_exploration ~delay_bound:2 tab in
  let r = Coverage.report cov in
  check int_t "handler declared" 1 r.handlers_total;
  check int_t "handler dead" 0 r.handlers_hit;
  check int_t "listed" 1 (List.length r.unfired_handlers)

let test_coverage_ghost_flag () =
  let tab = P_static.Check.run_exn (P_examples_lib.Elevator.program ()) in
  let cov = Coverage.of_exploration ~delay_bound:1 ~max_states:5_000 tab in
  let without = Coverage.report cov in
  let with_ghost = Coverage.report ~include_ghost:true cov in
  check bool_t "ghost machines add states" true
    (with_ghost.states_total > without.states_total)

(* ---------------- the composed USB stack ---------------- *)

let test_stack_statically_clean () =
  match P_static.Check.run (P_usb.Stack.program ()) with
  | { diagnostics = []; _ } -> ()
  | { diagnostics; _ } ->
    Alcotest.failf "%a" P_static.Check.pp_diagnostics diagnostics

let test_stack_safe_within_budget () =
  let tab = P_static.Check.run_exn (P_usb.Stack.program ()) in
  let r = Delay_bounded.explore ~delay_bound:1 ~max_states:60_000 tab in
  check bool_t "no error in budget" true (r.verdict = Search.No_error);
  check bool_t "big space (truncated)" true r.stats.truncated

let test_stack_bug_found () =
  let tab = P_static.Check.run_exn (P_usb.Stack.buggy_program ()) in
  let r = Delay_bounded.explore ~delay_bound:0 ~max_states:200_000 tab in
  match r.verdict with
  | Search.Error_found ce -> (
    match ce.error.kind with
    | P_semantics.Errors.Unhandled_event e ->
      check bool_t "late status change" true
        (P_syntax.Names.Event.to_string e = "PortDown"
        || P_syntax.Names.Event.to_string e = "PortUp")
    | k -> Alcotest.failf "wrong kind: %a" P_semantics.Errors.pp_kind k)
  | Search.No_error -> Alcotest.fail "stack bug not found at d=0"

let test_stack_simulates () =
  let tab = P_static.Check.run_exn (P_usb.Stack.program ~n_ports:3 ()) in
  let r =
    P_semantics.Simulate.run ~max_blocks:3_000
      ~policy:(P_semantics.Simulate.policy_seeded 3) tab
  in
  match r.status with
  | P_semantics.Simulate.Error e -> Alcotest.failf "simulation error: %a" P_semantics.Errors.pp e
  | _ -> ()

let test_stack_roundtrips () =
  let p = P_usb.Stack.program () in
  let printed = P_syntax.Pretty.program_to_string p in
  let p2 = P_parser.Parser.program_of_string printed in
  check bool_t "concrete syntax roundtrip" true
    (String.equal printed (P_syntax.Pretty.program_to_string p2))

let suite =
  [ Alcotest.test_case "parallel = sequential" `Slow test_parallel_agrees_with_sequential;
    Alcotest.test_case "parallel deterministic" `Quick test_parallel_deterministic_across_domains;
    Alcotest.test_case "parallel finds bug" `Quick test_parallel_finds_bug;
    Alcotest.test_case "dot program shape" `Quick test_dot_program_shape;
    Alcotest.test_case "dot single machine" `Quick test_dot_single_machine;
    Alcotest.test_case "dot escaping" `Quick test_dot_escapes;
    Alcotest.test_case "stack static" `Quick test_stack_statically_clean;
    Alcotest.test_case "stack safe" `Slow test_stack_safe_within_budget;
    Alcotest.test_case "stack bug found" `Quick test_stack_bug_found;
    Alcotest.test_case "stack simulates" `Quick test_stack_simulates;
    Alcotest.test_case "stack roundtrips" `Quick test_stack_roundtrips;
    Alcotest.test_case "random walk finds bug" `Quick test_random_walk_finds_easy_bug;
    Alcotest.test_case "random walk clean" `Quick test_random_walk_clean_program;
    Alcotest.test_case "random walk reproducible" `Quick test_random_walk_reproducible;
    Alcotest.test_case "coverage elevator full" `Slow test_coverage_elevator_full;
    Alcotest.test_case "coverage dead handler" `Quick test_coverage_detects_dead_handler;
    Alcotest.test_case "coverage ghost flag" `Quick test_coverage_ghost_flag ]
