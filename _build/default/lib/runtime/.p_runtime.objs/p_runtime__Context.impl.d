lib/runtime/context.ml: Array List Mutex P_compile Rt_value
