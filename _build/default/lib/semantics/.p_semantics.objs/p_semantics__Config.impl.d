lib/semantics/config.ml: Fmt List Machine Mid
