lib/semantics/config.mli: Fmt Machine Mid
