lib/examples_lib/switch_led.mli: P_host P_syntax
