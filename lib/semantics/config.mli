(** Global configurations: the map [M] from machine identifiers to machine
    configurations, plus the deterministic identifier allocator. An
    identifier smaller than [next_id] absent from the map belongs to a
    deleted machine ([M[id] = ⊥]); sending to it is the SEND-FAIL2 error. *)

type t = {
  machines : Machine.t Mid.Map.t;
  next_id : Mid.t;
  fseq : int;
      (** Fault-point counter: number of fault points consumed on the path
          to this configuration (see {!Fault}). Always 0 when no fault plan
          is active; with faults on it is part of state identity. *)
}

val empty : t
val find : t -> Mid.t -> Machine.t option
val mem : t -> Mid.t -> bool

val is_deleted : t -> Mid.t -> bool
(** Allocated in the past but no longer live. *)

val update : t -> Mid.t -> Machine.t -> t
val remove : t -> Mid.t -> t

val alloc : t -> Mid.t * t
(** Allocate the next machine identifier. *)

val live_ids : t -> Mid.t list
val live_count : t -> int
val fold : (Mid.t -> Machine.t -> 'a -> 'a) -> t -> 'a -> 'a

val changed_machines :
  before:t -> after:t -> (Mid.t * Machine.t) list
(** Machines of [after] not physically ([==]) present in [before], in
    identifier order. {!update} is a persistent-map add, so running one
    atomic block shares every untouched machine between parent and
    successor; the result is exactly the machines the block touched. This
    sharing guarantee is what makes a physically-keyed per-machine digest
    cache (see [P_checker.Fingerprint]) sound and O(machines-changed). *)


val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
