examples/elevator_verify.ml: Fmt List P_checker P_examples_lib P_static
