(** JSON rendering of verification results, backing [pc verify
    --stats-json FILE]. The document schema is described in DESIGN.md
    ("Observability"); notably [safety.stats.states] always equals
    {!Search.result}'s [stats.states]. *)

val json_of_stats : Search.stats -> P_obs.Json.t

val json_of_safety : Search.result -> P_obs.Json.t

val json_of_liveness : Liveness.result -> P_obs.Json.t

val json_of_report :
  ?metrics:P_obs.Metrics.t ->
  ?profile:P_obs.Profile.t ->
  Verifier.report ->
  P_obs.Json.t
(** Render a full verification report — including the [seed] and
    [domains] provenance fields ([null] unless the safety search sampled
    resp. ran in parallel) and a ["machine"] context block (cores, OCaml
    version, word size, git rev). When [metrics] is given, its registry
    dump is embedded under the ["metrics"] key; when [profile] is given
    and enabled, its exact per-phase aggregates land under ["profile"]. *)

val write_channel : out_channel -> P_obs.Json.t -> unit
(** Pretty-print the document to an already-open channel, followed by a
    newline. The channel is not closed. *)

val write_file : string -> P_obs.Json.t -> unit
(** Pretty-print the document to [path], followed by a newline. *)
