test/test_properties.ml: Ast Builder Fmt List P_checker P_compile P_parser P_semantics P_static P_syntax Pretty Ptype QCheck2 QCheck_alcotest Stdlib String
