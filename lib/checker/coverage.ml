(** Source-level coverage of a P program under exploration or simulation:
    which states were entered and which (state, event) handler pairs fired.

    The paper's methodology leans on the checker visiting "every event in
    every state"; this report makes that inspectable — unexercised handlers
    are either dead protocol paths or a sign the environment model is too
    weak, both worth knowing in a driver review. *)

open P_syntax
module Symtab = P_static.Symtab
module Step = P_semantics.Step
module Config = P_semantics.Config
module Mid = P_semantics.Mid

type key = {
  k_machine : Names.Machine.t;
  k_state : Names.State.t;
  k_event : Names.Event.t option;  (** [None] = the state entry itself *)
}

type t = {
  tab : Symtab.t;
  hit : (key, int) Hashtbl.t;
  mutable blocks : int;
}

let create tab = { tab; hit = Hashtbl.create 256; blocks = 0 }

let record t key = Hashtbl.replace t.hit key (1 + Option.value ~default:0 (Hashtbl.find_opt t.hit key))

(* Attribute the happenings of one atomic block: the running machine's state
   entries and the events it dequeued there. *)
let observe t (config_before : Config.t) (mid : Mid.t) (items : P_semantics.Trace.item list) =
  t.blocks <- t.blocks + 1;
  let machine_name =
    match Config.find config_before mid with
    | Some m -> Some m.P_semantics.Machine.name
    | None -> None
  in
  let current = ref (Option.bind (Config.find config_before mid) P_semantics.Machine.current_state) in
  match machine_name with
  | None -> ()
  | Some k_machine ->
    List.iter
      (fun item ->
        match item with
        | P_semantics.Trace.Entered { mid = m; state } when Mid.equal m mid ->
          current := Some state;
          record t { k_machine; k_state = state; k_event = None }
        | P_semantics.Trace.Popped { mid = m; state } when Mid.equal m mid ->
          current := state
        | P_semantics.Trace.Dequeued { mid = m; event; _ }
        | P_semantics.Trace.Raised { mid = m; event } when Mid.equal m mid -> (
          (* a handler pair counts as exercised when the event was examined
             in the state — dequeued into it or raised while in it *)
          match !current with
          | Some k_state -> record t { k_machine; k_state; k_event = Some event }
          | None -> ())
        | _ -> ())
      items

(** Exhaustively explore with the delay-bounded scheduler while recording
    coverage, then report. (Coverage instrumentation re-runs each explored
    block once more; counts are per distinct explored transition.) *)
let of_exploration ?(max_states = 100_000) ~delay_bound (tab : Symtab.t) : t =
  let t = create tab in
  (* the delay-bounded spec with an edge observer: every explored block —
     including duplicates and failing ones — is attributed exactly once *)
  let observer =
    { Engine.on_state = (fun _ _ -> ());
      on_edge =
        (fun ~src:_ ~src_config ~by ~resolved ~dst:_ ->
          observe t src_config by resolved.Search.items) }
  in
  let spec =
    Engine.spec ~bound:delay_bound ~stop_on_error:false ~max_states
      (Engine.stack_sched Engine.Causal)
  in
  ignore (Engine.run ~observer ~engine:"coverage" spec tab);
  t

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  states_total : int;
  states_hit : int;
  handlers_total : int;  (** statically declared (state, event) handlers *)
  handlers_hit : int;
  unvisited_states : (Names.Machine.t * Names.State.t) list;
  unfired_handlers : (Names.Machine.t * Names.State.t * Names.Event.t) list;
}

let report ?(include_ghost = false) (t : t) : report =
  let states_total = ref 0 and states_hit = ref 0 in
  let handlers_total = ref 0 and handlers_hit = ref 0 in
  let unvisited = ref [] and unfired = ref [] in
  List.iter
    (fun (m : Ast.machine) ->
      if include_ghost || not m.machine_ghost then begin
        let mi = Symtab.machine_info_exn t.tab m.machine_name in
        List.iteri
          (fun i (st : Ast.state) ->
            incr states_total;
            let entered =
              Hashtbl.mem t.hit
                { k_machine = m.machine_name; k_state = st.state_name; k_event = None }
              || i = 0 (* the initial state is entered at creation, before
                          any Entered item is emitted *)
            in
            if entered then incr states_hit
            else unvisited := (m.machine_name, st.state_name) :: !unvisited;
            (* statically declared handlers on this state *)
            List.iter
              (fun (ev : Ast.event_decl) ->
                let e = ev.event_name in
                let declared =
                  Symtab.trans_defined mi st.state_name e
                  || Symtab.bound_action mi st.state_name e <> None
                in
                if declared then begin
                  incr handlers_total;
                  if
                    Hashtbl.mem t.hit
                      { k_machine = m.machine_name;
                        k_state = st.state_name;
                        k_event = Some e }
                  then incr handlers_hit
                  else unfired := (m.machine_name, st.state_name, e) :: !unfired
                end)
              t.tab.Symtab.program.events)
          m.states
      end)
    t.tab.Symtab.program.machines;
  { states_total = !states_total;
    states_hit = !states_hit;
    handlers_total = !handlers_total;
    handlers_hit = !handlers_hit;
    unvisited_states = List.rev !unvisited;
    unfired_handlers = List.rev !unfired }

let pp_report ppf r =
  Fmt.pf ppf "states: %d/%d entered; handlers: %d/%d fired" r.states_hit r.states_total
    r.handlers_hit r.handlers_total;
  if r.unvisited_states <> [] then begin
    Fmt.pf ppf "@.unvisited states:";
    List.iter
      (fun (m, s) -> Fmt.pf ppf "@.  %a.%a" Names.Machine.pp m Names.State.pp s)
      r.unvisited_states
  end;
  if r.unfired_handlers <> [] then begin
    Fmt.pf ppf "@.unfired handlers:";
    List.iter
      (fun (m, s, e) ->
        Fmt.pf ppf "@.  %a.%a on %a" Names.Machine.pp m Names.State.pp s Names.Event.pp e)
      r.unfired_handlers
  end
