lib/parser/parser.ml: Ast Fun Hashtbl Lexer List Loc Names P_syntax Parse_error Ptype Token
