lib/examples_lib/pingpong.ml: List P_syntax
