lib/runtime/rt_value.ml: Fmt P_compile
