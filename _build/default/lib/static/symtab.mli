(** Resolved symbol tables: hash-consed lookup structures for the
    meta-functions of the operational semantics — [Init(m)], [Step(m,n,e)],
    [Call(m,n,e)], [Action(m,n,e)], [Stmt(m,a)], [Deferred(m,n)],
    [Entry(m,n)], [Exit(m,n)] — so the interpreter and checker never scan
    declaration lists. Duplicate-name diagnostics are collected during the
    build; a table is produced even for ill-formed programs so later phases
    can report as much as possible. *)

open P_syntax

type diagnostic = { dloc : Loc.t; dmsg : string }

val diag : Loc.t -> ('a, Format.formatter, unit, diagnostic) format4 -> 'a
val pp_diagnostic : diagnostic Fmt.t

(** Per-state resolved information. *)
type state_info = {
  st_ast : Ast.state;
  st_deferred : Names.Event.Set.t;
  st_postponed : Names.Event.Set.t;
  st_steps : Names.State.t Names.Event.Map.t;
  st_calls : Names.State.t Names.Event.Map.t;
  st_actions : Names.Action.t Names.Event.Map.t;
}

(** Per-machine resolved information. *)
type machine_info = {
  m_ast : Ast.machine;
  m_states : state_info Names.State.Tbl.t;
  m_initial : Names.State.t;
  m_vars : Ast.var_decl Names.Var.Tbl.t;
  m_actions : Ast.stmt Names.Action.Tbl.t;
  m_foreigns : Ast.foreign_decl Names.Foreign.Tbl.t;
}

type t = {
  program : Ast.program;
  events : Ast.event_decl Names.Event.Tbl.t;
  machines : machine_info Names.Machine.Tbl.t;
  event_universe : Names.Event.t list;  (** all declared events, in order *)
  diagnostics : diagnostic list;  (** name-resolution problems, oldest first *)
}

val build : Ast.program -> t

(** {2 Accessors (the paper's meta-functions)} *)

val machine_info : t -> Names.Machine.t -> machine_info option
val machine_info_exn : t -> Names.Machine.t -> machine_info
val state_info : machine_info -> Names.State.t -> state_info option
val state_info_exn : machine_info -> Names.State.t -> state_info

val step_target : machine_info -> Names.State.t -> Names.Event.t -> Names.State.t option
(** [Step(m, n, e)] *)

val call_target : machine_info -> Names.State.t -> Names.Event.t -> Names.State.t option
(** [Call(m, n, e)] *)

val trans_defined : machine_info -> Names.State.t -> Names.Event.t -> bool
(** [Trans(m, n, e) ≠ ⊥] *)

val bound_action :
  machine_info -> Names.State.t -> Names.Event.t -> Names.Action.t option
(** [Action(m, n, e)] *)

val action_stmt : machine_info -> Names.Action.t -> Ast.stmt option
(** [Stmt(m, a)] *)

val deferred_set : machine_info -> Names.State.t -> Names.Event.Set.t
(** [Deferred(m, n)] *)

val postponed_set : machine_info -> Names.State.t -> Names.Event.Set.t

val entry_stmt : machine_info -> Names.State.t -> Ast.stmt
(** [Entry(m, n)]; the state must exist. *)

val exit_stmt : machine_info -> Names.State.t -> Ast.stmt
(** [Exit(m, n)]; the state must exist. *)

val var_decl : machine_info -> Names.Var.t -> Ast.var_decl option
val foreign_decl : machine_info -> Names.Foreign.t -> Ast.foreign_decl option
val event_decl : t -> Names.Event.t -> Ast.event_decl option
val event_payload_type : t -> Names.Event.t -> Ptype.t
val is_ghost_machine : t -> Names.Machine.t -> bool
