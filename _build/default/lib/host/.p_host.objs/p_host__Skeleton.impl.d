lib/host/skeleton.ml: Os_events P_runtime
