(** Abstract syntax of core P, following Figure 3 of the paper.

    A program is a list of event declarations, a non-empty list of machines,
    and one machine-creation statement naming the initial machine. Each
    machine has variables, actions, states (with deferred sets, entry and
    exit statements), step transitions, call transitions, and action
    bindings. Ghost machines and ghost variables exist only for
    verification and are erased by compilation (section 3.3).

    Extensions beyond the bare core calculus, all described in the paper:
    - [Call_state]: the [call n'] statement of section 3 ("Other features"),
      which pushes a state while saving the caller's continuation;
    - [postponed] sets on states: the liveness refinement of section 3.2;
    - foreign functions (section 3 / section 4) with an optional erasable
      model used during verification. *)

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr = { e : expr_desc; eloc : Loc.t }

and expr_desc =
  | This  (** identifier of the executing machine *)
  | Msg  (** the event last dequeued or raised *)
  | Arg  (** the payload of the last event *)
  | Null  (** the undefined value [⊥] *)
  | Bool_lit of bool
  | Int_lit of int
  | Event_lit of Names.Event.t  (** an event name used as a value *)
  | Var of Names.Var.t
  | Nondet  (** the ghost-only [*] expression *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Foreign_call of Names.Foreign.t * expr list
      (** call of a foreign function in expression position *)

type stmt = { s : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Skip
  | Assign of Names.Var.t * expr
  | New of Names.Var.t * Names.Machine.t * (Names.Var.t * expr) list
      (** [x := new m(x1 = e1, ...)] *)
  | Delete  (** terminate the executing machine and free its resources *)
  | Send of expr * Names.Event.t * expr  (** [send(target, e, payload)] *)
  | Raise of Names.Event.t * expr  (** [raise(e, payload)]; [e] must be local *)
  | Leave  (** jump to the end of the entry statement and await an event *)
  | Return  (** pop the current state off the call stack *)
  | Assert of expr
  | Seq of stmt * stmt
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Call_state of Names.State.t  (** the [call n'] statement *)
  | Foreign_stmt of Names.Foreign.t * expr list
      (** call of a foreign function for its effect only *)

type state = {
  state_name : Names.State.t;
  deferred : Names.Event.t list;
      (** events whose dequeue is delayed while control is in this state *)
  postponed : Names.Event.t list;
      (** events exempted from the second liveness check (section 3.2) *)
  entry : stmt;
  exit : stmt;
  state_loc : Loc.t;
}

type var_decl = {
  var_name : Names.Var.t;
  var_type : Ptype.t;
  var_ghost : bool;
  var_loc : Loc.t;
}

type action_decl = {
  action_name : Names.Action.t;
  action_body : stmt;
  action_loc : Loc.t;
}

type foreign_decl = {
  foreign_name : Names.Foreign.t;
  foreign_params : Ptype.t list;
  foreign_ret : Ptype.t;
  foreign_model : expr option;
      (** erasable body used during verification in place of the C code;
          evaluated in the calling machine's scope, may use [Nondet] *)
  foreign_loc : Loc.t;
}

(** A transition [(n1, e, n2)]: on event [e] in state [n1], move to [n2]. *)
type transition = {
  tr_source : Names.State.t;
  tr_event : Names.Event.t;
  tr_target : Names.State.t;
  tr_loc : Loc.t;
}

(** An action binding [(n, e, a)]: in state [n], event [e] runs action [a]. *)
type binding = {
  bd_state : Names.State.t;
  bd_event : Names.Event.t;
  bd_action : Names.Action.t;
  bd_loc : Loc.t;
}

type machine = {
  machine_name : Names.Machine.t;
  machine_ghost : bool;
  vars : var_decl list;
  actions : action_decl list;
  states : state list;  (** the first state is the initial state *)
  steps : transition list;
  calls : transition list;
  bindings : binding list;
  foreigns : foreign_decl list;
  machine_loc : Loc.t;
}

type event_decl = {
  event_name : Names.Event.t;
  event_payload : Ptype.t;
  event_loc : Loc.t;
}

type program = {
  events : event_decl list;
  machines : machine list;
  main : Names.Machine.t;  (** machine created by the initialization statement *)
  main_init : (Names.Var.t * expr) list;
}

(* ------------------------------------------------------------------ *)
(* Lookup helpers mirroring the paper's meta-functions.                *)
(* ------------------------------------------------------------------ *)

let find_machine program name =
  List.find_opt (fun m -> Names.Machine.equal m.machine_name name) program.machines

let find_state machine name =
  List.find_opt (fun st -> Names.State.equal st.state_name name) machine.states

(** [Init(m)]: the initial state of a machine (first in its state list). *)
let initial_state machine =
  match machine.states with
  | [] -> invalid_arg "Ast.initial_state: machine has no states"
  | st :: _ -> st

(** [Step(m, n, e)] of the paper. *)
let step_target machine source event =
  List.find_map
    (fun tr ->
      if Names.State.equal tr.tr_source source && Names.Event.equal tr.tr_event event
      then Some tr.tr_target
      else None)
    machine.steps

(** [Call(m, n, e)] of the paper. *)
let call_target machine source event =
  List.find_map
    (fun tr ->
      if Names.State.equal tr.tr_source source && Names.Event.equal tr.tr_event event
      then Some tr.tr_target
      else None)
    machine.calls

(** [Trans(m, n, e)]: the union of step and call transitions. *)
let trans_target machine source event =
  match step_target machine source event with
  | Some _ as r -> r
  | None -> call_target machine source event

(** [Action(m, n, e)] of the paper: the action statically bound to event [e]
    in state [n], if any. *)
let bound_action machine state event =
  List.find_map
    (fun bd ->
      if Names.State.equal bd.bd_state state && Names.Event.equal bd.bd_event event
      then Some bd.bd_action
      else None)
    machine.bindings

(** [Stmt(m, a)]: the statement of action [a]. *)
let action_stmt machine action =
  List.find_map
    (fun ad ->
      if Names.Action.equal ad.action_name action then Some ad.action_body else None)
    machine.actions

(** [Deferred(m, n)]: the declared deferred set of state [n]. *)
let deferred_set machine state =
  match find_state machine state with
  | None -> Names.Event.Set.empty
  | Some st -> Names.Event.Set.of_list st.deferred

let postponed_set machine state =
  match find_state machine state with
  | None -> Names.Event.Set.empty
  | Some st -> Names.Event.Set.of_list st.postponed

let find_event program name =
  List.find_opt (fun ev -> Names.Event.equal ev.event_name name) program.events

let find_var machine name =
  List.find_opt (fun vd -> Names.Var.equal vd.var_name name) machine.vars

let find_foreign machine name =
  List.find_opt (fun fd -> Names.Foreign.equal fd.foreign_name name) machine.foreigns

(* ------------------------------------------------------------------ *)
(* Structural size metrics (used by the Figure 8 reproduction).        *)
(* ------------------------------------------------------------------ *)

let machine_state_count m = List.length m.states

let machine_transition_count m =
  List.length m.steps + List.length m.calls + List.length m.bindings

let program_state_count p =
  List.fold_left (fun acc m -> acc + machine_state_count m) 0 p.machines

let program_transition_count p =
  List.fold_left (fun acc m -> acc + machine_transition_count m) 0 p.machines

(* ------------------------------------------------------------------ *)
(* Structural traversals.                                              *)
(* ------------------------------------------------------------------ *)

(** [fold_stmt f acc s] folds [f] over every statement node of [s],
    outermost first. *)
let rec fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt.s with
  | Seq (a, b) -> fold_stmt f (fold_stmt f acc a) b
  | If (_, a, b) -> fold_stmt f (fold_stmt f acc a) b
  | While (_, body) -> fold_stmt f acc body
  | Skip | Assign _ | New _ | Delete | Send _ | Raise _ | Leave | Return | Assert _
  | Call_state _ | Foreign_stmt _ -> acc

(** [fold_expr f acc e] folds [f] over every expression node of [e]. *)
let rec fold_expr f acc expr =
  let acc = f acc expr in
  match expr.e with
  | Unop (_, a) -> fold_expr f acc a
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Foreign_call (_, args) -> List.fold_left (fold_expr f) acc args
  | This | Msg | Arg | Null | Bool_lit _ | Int_lit _ | Event_lit _ | Var _ | Nondet ->
    acc

(** Every expression appearing directly in one statement node. *)
let stmt_exprs stmt =
  match stmt.s with
  | Assign (_, e) -> [ e ]
  | New (_, _, inits) -> List.map snd inits
  | Send (t, _, p) -> [ t; p ]
  | Raise (_, p) -> [ p ]
  | Assert e -> [ e ]
  | If (c, _, _) -> [ c ]
  | While (c, _) -> [ c ]
  | Foreign_stmt (_, args) -> args
  | Skip | Delete | Leave | Return | Seq _ | Call_state _ -> []

(** [fold_stmt_exprs f acc s]: fold [f] over every expression anywhere in [s]. *)
let fold_stmt_exprs f acc stmt =
  fold_stmt
    (fun acc st -> List.fold_left (fold_expr f) acc (stmt_exprs st))
    acc stmt

(** All statements of a machine: entries, exits, and action bodies. *)
let machine_stmts m =
  List.concat
    [ List.concat_map (fun st -> [ st.entry; st.exit ]) m.states;
      List.map (fun ad -> ad.action_body) m.actions ]

(** True when the statement mentions the nondeterministic [*] expression. *)
let stmt_has_nondet stmt =
  fold_stmt_exprs (fun acc e -> acc || e.e = Nondet) false stmt
