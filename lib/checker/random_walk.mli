(** Random-walk testing: seeded random schedules with full scheduling
    nondeterminism — the naive baseline the delay-bounded scheduler is
    compared against in the ablation benchmark. *)

type result = {
  walks : int;
  errors_found : int;  (** how many walks ended in an error configuration *)
  first_error : (P_semantics.Errors.t * P_semantics.Trace.t * int) option;
      (** the first failing walk: error, trace, and its length in blocks *)
  total_blocks : int;
  elapsed_s : float;
}

val pp_result : result Fmt.t

val run :
  ?walks:int ->
  ?max_blocks:int ->
  ?seed:int ->
  ?instr:Search.instr ->
  P_static.Symtab.t ->
  result
(** [run tab] executes [walks] (default 100) independent random schedules
    of at most [max_blocks] (default 1000) atomic blocks each, with both
    the scheduled machine and the ghost [*] choices drawn from a PRNG
    derived from [seed]. Fully reproducible per seed. [instr] metrics:
    [checker.walks], [checker.walk_blocks], [checker.walk_errors]
    (labelled [engine=random_walk]). *)
