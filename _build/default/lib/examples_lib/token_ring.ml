(** A token ring: [n] nodes pass a counted token around; only the holder
    may do "work". Exercises the [call n'] *statement* (section 3, "Other
    features"): receiving the token calls into a [Work] state that returns
    with [return], resuming the caller's remaining statements — the saved
    continuation then forwards the token.

    The safety assertion checks the token's hop counter: after a full lap
    it must have grown by exactly the ring size (each node bumps it once —
    double delivery or a lost hop would break the arithmetic). *)

open P_syntax.Builder

let events =
  [ event "Token" ~payload:P_syntax.Ptype.Int;
    event "SetNext" ~payload:P_syntax.Ptype.Machine_id;
    event "unit" ]

(* Each node: Idle until the token arrives; then *call* Work (which audits
   and bumps the counter and returns), and forward the token from the saved
   continuation. *)
let node_machine =
  machine "Node"
    ~vars:
      [ var_decl "next" P_syntax.Ptype.Machine_id;
        var_decl "index" P_syntax.Ptype.Int;
        var_decl "ring" P_syntax.Ptype.Int;
        var_decl "hops" P_syntax.Ptype.Int ]
    [ state "Boot" ~entry:skip;
      state "Idle" ~entry:skip;
      state "HoldToken"
        ~entry:
          (seq
             [ assign "hops" arg;
               (* enter the Work subroutine; its return resumes here *)
               call_state "Work";
               send (v "next") "Token" ~payload:(v "hops");
               raise_ "unit" ]);
      state "Work"
        ~entry:
          (seq
             [ (* a lap delivers the token to this node with counter
                  ≡ index (mod ring size) *)
               assert_ (v "hops" % v "ring" == v "index");
               (* wrap at a multiple of the ring size: keeps the lap
                  arithmetic intact and the state space finite *)
               assign "hops" ((v "hops" + int 1) % (v "ring" * int 8));
               return ]) ]
    ~steps:
      [ ("Boot", "SetNext", "Wire");
        ("Idle", "Token", "HoldToken");
        ("HoldToken", "unit", "Idle") ]

let node_machine =
  let m = node_machine in
  { m with
    P_syntax.Ast.states =
      m.P_syntax.Ast.states
      @ [ state "Wire" ~entry:(seq [ assign "next" arg; raise_ "unit" ]) ];
    P_syntax.Ast.steps = m.P_syntax.Ast.steps @ [ step ("Wire", "unit", "Idle") ] }

(** The driver machine builds a ring of [n] nodes, injects the token with
    counter 0, and lets it circulate [laps] full laps before quiescing. *)
let starter ~n ~laps =
  ignore laps;
  let new_nodes =
    List.concat
      (List.init n (fun i ->
           [ new_ (Fmt.str "n%d" i) "Node"
               [ ("index", int i); ("ring", int n) ] ]))
  in
  let wire =
    List.init n (fun i ->
        send
          (v (Fmt.str "n%d" i))
          "SetNext"
          ~payload:(v (Fmt.str "n%d" (Stdlib.( mod ) (Stdlib.( + ) i 1) n))))
  in
  machine "Starter"
    ~vars:(List.init n (fun i -> var_decl (Fmt.str "n%d" i) P_syntax.Ptype.Machine_id))
    [ state "Init"
        ~entry:(seq (new_nodes @ wire @ [ send (v "n0") "Token" ~payload:(int 0) ])) ]

(** Closed token-ring program. The ring circulates forever; simulation and
    checking bound it by budget. *)
let program ?(n = 3) () =
  program ~events ~machines:[ starter ~n ~laps:0; node_machine ] "Starter"

(** Seeded bug: one node forwards without bumping the counter, violating
    the lap arithmetic at the next holder. *)
let buggy_program ?(n = 3) () =
  let p = program ~n () in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "Node" then
            { m with
              P_syntax.Ast.states =
                List.map
                  (fun (st : P_syntax.Ast.state) ->
                    if P_syntax.Names.State.to_string st.state_name = "Work" then
                      state "Work"
                        ~entry:
                          (seq
                             [ assert_ (v "hops" % v "ring" == v "index");
                               (* BUG: forgot to bump the hop counter *)
                               return ])
                    else st)
                  m.P_syntax.Ast.states }
          else m)
        p.P_syntax.Ast.machines }
