lib/usb/stack.mli: P_syntax
