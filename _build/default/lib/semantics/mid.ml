(** Machine identifiers: references to dynamically created machine instances.

    Identifiers are allocated deterministically in creation order, which
    makes global configurations directly comparable across schedules that
    create machines in the same order; the model checker's canonicalization
    ({!P_checker.Canon}) handles the remaining symmetry. *)

type t = int

let first = 0
let next t = t + 1
let equal = Int.equal
let compare = Int.compare
let hash (t : t) = t
let to_int t = t
let of_int t = t
let pp ppf t = Fmt.pf ppf "#%d" t

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
