lib/checker/dynarray.ml: Array List
