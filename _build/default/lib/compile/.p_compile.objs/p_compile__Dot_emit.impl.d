lib/compile/dot_emit.ml: Ast Buffer Fmt List Names P_syntax String
