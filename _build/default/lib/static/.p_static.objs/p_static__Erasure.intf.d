lib/static/erasure.mli: P_syntax Symtab
