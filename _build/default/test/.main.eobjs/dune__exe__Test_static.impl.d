test/test_static.ml: Alcotest Ast Astring_contains Fmt List Names P_examples_lib P_parser P_static P_syntax
