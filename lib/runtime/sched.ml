(** The effects-based cooperative scheduler: one domain multiplexing many
    machine fibers over a single {!Exec} runtime in [Scheduled] mode.

    Each machine runs as a fiber — {!Exec.run_machine} under an
    [Effect.Deep] handler. Machine code performs {!Exec.Sched_send},
    {!Exec.Sched_spawn}, {!Exec.Sched_yield} and {!Exec.Sched_choose}
    instead of recursing on the caller's stack, and the handler decides
    what a send or spawn *means*:

    - [Causal] replays the nested run-to-completion discipline exactly: a
      send to an idle machine runs the receiver to quiescence inside the
      handler before the sender resumes — the d = 0 causal schedule, so
      the observable trace is identical to the threads driver
      (test/test_sched.ml asserts this). Fibers never suspend.
    - [Fifo] is the serving discipline: sends only enqueue and mark the
      receiver ready; fibers are activated from a FIFO ready queue and
      preempted at dequeue points when their quantum runs out, so one
      chatty machine cannot starve ten thousand quiet ones.

    Everything here runs on one domain, so contexts need no locking; the
    shard layer ({!Shard}) pins one scheduler per domain and routes
    cross-shard traffic through its transfer queues via the [router]. *)

module Tables = P_compile.Tables

type policy = Causal | Fifo

(** Final answer of a machine fiber: ran to quiescence, or parked a
    continuation in the ready queue (Fifo quantum expiry only). *)
type outcome = Done | Suspended

type entry =
  | Start of Context.t  (** activate via {!Exec.run_machine} *)
  | Resume of Context.t * (unit, outcome) Effect.Deep.continuation

(** Hooks the shard layer installs to stretch one scheduler across many:
    a global handle allocator, the home predicate, and the cross-shard
    send/spawn paths (which enqueue into another shard's transfer queue
    and never touch its contexts directly). *)
type router = {
  rt_alloc : unit -> int;
  rt_home : int -> bool;
  rt_send :
    src:int -> dst:int -> event:int -> payload:Rt_value.t -> Context.backpressure;
  rt_spawn :
    handle:int -> creator:int -> ty:int -> inits:(int * Rt_value.t) list -> unit;
}

type meters = {
  sm_activations : P_obs.Metrics.counter;  (** [runtime.sched_activations] *)
  sm_yields : P_obs.Metrics.counter;  (** [runtime.sched_yields] *)
  sm_shed_mailbox : P_obs.Metrics.counter;  (** [runtime.sched_shed_mailbox] *)
  sm_dead_letters : P_obs.Metrics.counter;  (** [runtime.sched_dead_letters] *)
  sm_faults : P_obs.Metrics.counter;  (** [runtime.sched_faults] (all classes) *)
  sm_ready_hwm : P_obs.Metrics.gauge;  (** [runtime.sched_ready_hwm] *)
}

(** The scheduler's adversarial-host state: the pure {!P_semantics.Fault}
    plan plus this scheduler's own monotone fault-point counter, so
    decisions are a deterministic function of the plan's seed and the
    order this scheduler reaches its fault points (sends and
    activations). Single-writer like the other counters. *)
type faults = {
  sf_plan : P_semantics.Fault.plan;
  mutable sf_next : int;  (** next fault index *)
  mutable sf_drops : int;
  mutable sf_dups : int;
  mutable sf_reorders : int;
  mutable sf_crashes : int;
}

let make_faults plan =
  { sf_plan = plan;
    sf_next = 0;
    sf_drops = 0;
    sf_dups = 0;
    sf_reorders = 0;
    sf_crashes = 0 }

type t = {
  rt : Exec.t;
  policy : policy;
  ready : entry Queue.t;
  rng : Random.State.t option;  (** resolves ghost [*] when present *)
  router : router option;
  faults : faults option;  (** adversarial host; [None] = well-behaved *)
  mutable meters : meters option;
  (* single-writer counters; cross-domain reads (telemetry) may be stale *)
  mutable c_sends : int;
  mutable c_spawns : int;
  mutable c_activations : int;
  mutable c_yields : int;
  mutable c_shed_mailbox : int;
  mutable c_dead_letters : int;
  mutable ready_hwm : int;
  (* last values pushed to [meters], so flushes add deltas *)
  mutable f_activations : int;
  mutable f_yields : int;
  mutable f_shed_mailbox : int;
  mutable f_dead_letters : int;
  mutable f_faults : int;
}

type stats = {
  st_sends : int;  (** local deliveries (deduplicated sends included) *)
  st_spawns : int;
  st_activations : int;
  st_yields : int;  (** quantum preemptions (Fifo only) *)
  st_shed_mailbox : int;  (** drops at a full bounded mailbox *)
  st_dead_letters : int;  (** sends to deleted machines (Fifo only) *)
  st_dequeues : int;  (** events processed by this scheduler's runtime *)
  st_ready_hwm : int;  (** ready-queue high-water mark *)
  st_fault_drops : int;  (** injected drops (event lost on the wire) *)
  st_fault_dups : int;  (** injected duplications (⊕ bypassed once) *)
  st_fault_reorders : int;  (** injected reorders (front-of-queue insert) *)
  st_crash_restarts : int;  (** injected crash-restarts at activation *)
}

let create ?(policy = Fifo) ?(quantum = 64) ?capacity ?seed ?faults ?router
    (driver : Tables.driver) : t =
  let rt = Exec.create driver in
  (match capacity with None -> () | Some c -> Exec.set_mailbox_capacity rt c);
  (* causal fibers run to completion: an infinite quantum means the yield
     effect is never performed on the hot path *)
  Exec.scheduled_mode rt
    ~quantum:(match policy with Causal -> max_int | Fifo -> quantum);
  { rt;
    policy;
    ready = Queue.create ();
    rng = Option.map (fun s -> Random.State.make [| s |]) seed;
    router;
    faults =
      (match faults with
      | Some p when not (P_semantics.Fault.is_none p) -> Some (make_faults p)
      | _ -> None);
    meters = None;
    c_sends = 0;
    c_spawns = 0;
    c_activations = 0;
    c_yields = 0;
    c_shed_mailbox = 0;
    c_dead_letters = 0;
    ready_hwm = 0;
    f_activations = 0;
    f_yields = 0;
    f_shed_mailbox = 0;
    f_dead_letters = 0;
    f_faults = 0 }

let fault_total (sf : faults) =
  sf.sf_drops + sf.sf_dups + sf.sf_reorders + sf.sf_crashes

let exec t = t.rt

let set_metrics t (reg : P_obs.Metrics.t option) : unit =
  Exec.set_metrics t.rt reg;
  t.meters <-
    Option.map
      (fun reg ->
        { sm_activations = P_obs.Metrics.counter reg "runtime.sched_activations";
          sm_yields = P_obs.Metrics.counter reg "runtime.sched_yields";
          sm_shed_mailbox = P_obs.Metrics.counter reg "runtime.sched_shed_mailbox";
          sm_dead_letters = P_obs.Metrics.counter reg "runtime.sched_dead_letters";
          sm_faults = P_obs.Metrics.counter reg "runtime.sched_faults";
          sm_ready_hwm = P_obs.Metrics.gauge reg "runtime.sched_ready_hwm" })
      reg

(** Push the counter deltas since the last flush into the metrics
    registry (called by the shard loop at telemetry ticks and once at
    shutdown; counters stay plain ints on the hot path). *)
let flush_metrics t =
  match t.meters with
  | None -> ()
  | Some m ->
    let add c last cur = P_obs.Metrics.add c (cur - last) in
    add m.sm_activations t.f_activations t.c_activations;
    add m.sm_yields t.f_yields t.c_yields;
    add m.sm_shed_mailbox t.f_shed_mailbox t.c_shed_mailbox;
    add m.sm_dead_letters t.f_dead_letters t.c_dead_letters;
    (match t.faults with
    | None -> ()
    | Some sf ->
      let cur = fault_total sf in
      add m.sm_faults t.f_faults cur;
      t.f_faults <- cur);
    P_obs.Metrics.set_max m.sm_ready_hwm (float_of_int t.ready_hwm);
    t.f_activations <- t.c_activations;
    t.f_yields <- t.c_yields;
    t.f_shed_mailbox <- t.c_shed_mailbox;
    t.f_dead_letters <- t.c_dead_letters

let stats t : stats =
  { st_sends = t.c_sends;
    st_spawns = t.c_spawns;
    st_activations = t.c_activations;
    st_yields = t.c_yields;
    st_shed_mailbox = t.c_shed_mailbox;
    st_dead_letters = t.c_dead_letters;
    st_dequeues = Exec.events_dequeued t.rt;
    st_ready_hwm = t.ready_hwm;
    st_fault_drops = (match t.faults with None -> 0 | Some sf -> sf.sf_drops);
    st_fault_dups = (match t.faults with None -> 0 | Some sf -> sf.sf_dups);
    st_fault_reorders = (match t.faults with None -> 0 | Some sf -> sf.sf_reorders);
    st_crash_restarts = (match t.faults with None -> 0 | Some sf -> sf.sf_crashes) }

let ready_length t = Queue.length t.ready

let push_ready t entry =
  Queue.push entry t.ready;
  let n = Queue.length t.ready in
  if n > t.ready_hwm then t.ready_hwm <- n

(* ------------------------------------------------------------------ *)
(* The fiber handler                                                   *)
(* ------------------------------------------------------------------ *)

(* Run [ctx] as a fiber until it quiesces or (Fifo) parks itself. The
   deep handler stays installed across resumptions, so a parked
   continuation re-enters scheduling simply by being continued. *)
let rec run_fiber t (ctx : Context.t) : outcome =
  Effect.Deep.match_with
    (fun () -> Exec.run_machine t.rt ctx)
    ()
    { retc =
        (fun () ->
          ctx.Context.scheduled <- false;
          Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Exec.Sched_send { src; dst; event; payload } ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                match route_send t ~src:src.Context.self dst event payload with
                | bp -> Effect.Deep.continue k bp
                | exception e -> Effect.Deep.discontinue k e)
          | Exec.Sched_spawn { creator; ty; inits } ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                match spawn_child t ~creator:creator.Context.self ty inits with
                | handle -> Effect.Deep.continue k handle
                | exception e -> Effect.Deep.discontinue k e)
          | Exec.Sched_yield yctx ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                match t.policy with
                | Causal -> Effect.Deep.continue k ()
                | Fifo ->
                  t.c_yields <- t.c_yields + 1;
                  push_ready t (Resume (yctx, k));
                  Suspended)
          | Exec.Sched_choose cctx ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                match t.rng with
                | Some st -> Effect.Deep.continue k (Random.State.bool st)
                | None ->
                  Effect.Deep.discontinue k
                    (Exec.Runtime_error
                       (Fmt.str
                          "machine %s #%d: nondeterministic '*' needs a seed \
                           in scheduled mode"
                          cctx.Context.table.mt_name cctx.Context.self)))
          | _ -> None) }

(* Activate an idle machine: claim it and run its fiber (Causal), or just
   mark it ready (Fifo). *)
and activate t (target : Context.t) : Context.backpressure =
  if target.Context.scheduled || not target.Context.alive then Context.Queued
  else begin
    target.Context.scheduled <- true;
    match t.policy with
    | Causal ->
      (* the receiver preempts the sender and quiesces first — the d = 0
         causal stack order of the nested driver *)
      t.c_activations <- t.c_activations + 1;
      let (_ : outcome) = run_fiber t target in
      Context.Accepted
    | Fifo ->
      push_ready t (Start target);
      Context.Queued
  end

and local_send t ~src dst event payload : Context.backpressure =
  let rt = t.rt in
  match Exec.find_instance rt dst with
  | None -> (
    match t.policy with
    | Causal ->
      (* equivalence with the nested driver demands the same error *)
      Exec.error "send to deleted machine #%d (event %s)" dst
        (Exec.event_name rt event)
    | Fifo ->
      (* a serving system drops mail for the departed and keeps going *)
      t.c_dead_letters <- t.c_dead_letters + 1;
      Context.Shed)
  | Some target -> (
    (* fault point: one index per send whose target exists, like the
       interpreter's hook after target resolution *)
    let decision =
      match t.faults with
      | None -> P_semantics.Fault.Deliver
      | Some sf ->
        let index = sf.sf_next in
        sf.sf_next <- index + 1;
        P_semantics.Fault.on_send sf.sf_plan ~index
    in
    match decision with
    | P_semantics.Fault.Drop ->
      (* dropped on the wire: the sender observes a normal queued send;
         the slot accounting above us is unaffected because nothing was
         accepted into a mailbox *)
      (match t.faults with
      | Some sf -> sf.sf_drops <- sf.sf_drops + 1
      | None -> ());
      Context.Queued
    | (P_semantics.Fault.Deliver | P_semantics.Fault.Duplicate
      | P_semantics.Fault.Reorder) as decision -> (
    let enq =
      match decision with
      | P_semantics.Fault.Deliver | P_semantics.Fault.Drop ->
        Context.enqueue target event payload
      | P_semantics.Fault.Duplicate -> (
        match Context.enqueue target event payload with
        | Context.Enq_overflow -> Context.Enq_overflow
        | Context.Enq_ok | Context.Enq_duplicate ->
          (match t.faults with
          | Some sf -> sf.sf_dups <- sf.sf_dups + 1
          | None -> ());
          Context.enqueue_no_dedup target event payload)
      | P_semantics.Fault.Reorder ->
        (match t.faults with
        | Some sf -> sf.sf_reorders <- sf.sf_reorders + 1
        | None -> ());
        Context.enqueue_front target event payload
    in
    match enq with
    | Context.Enq_overflow ->
      t.c_shed_mailbox <- t.c_shed_mailbox + 1;
      (match t.policy with
      | Causal -> Exec.raise_overflow rt dst event
      | Fifo -> Context.Shed)
    | Context.Enq_ok | Context.Enq_duplicate ->
      t.c_sends <- t.c_sends + 1;
      (match rt.Exec.meters with
      | None -> ()
      | Some m ->
        P_obs.Metrics.incr m.Exec.rm_sends;
        P_obs.Metrics.set_max m.Exec.rm_queue_hwm
          (float_of_int (Context.inbox_length target)));
      if rt.Exec.trace_hook <> None then
        Exec.emit rt
          (Rt_trace.Sent
             { src;
               dst;
               event = Exec.event_name rt event;
               payload = Fmt.str "%a" Rt_value.pp payload });
      activate t target))

and route_send t ~src dst event payload : Context.backpressure =
  match t.router with
  | Some r when not (r.rt_home dst) -> r.rt_send ~src ~dst ~event ~payload
  | _ -> local_send t ~src dst event payload

and spawn_child t ~creator ty inits : int =
  t.c_spawns <- t.c_spawns + 1;
  match t.router with
  | Some r ->
    let handle = r.rt_alloc () in
    if r.rt_home handle then adopt_spawn t ~handle ~creator:(Some creator) ty inits
    else r.rt_spawn ~handle ~creator ~ty ~inits;
    handle
  | None ->
    let handle = Exec.fresh_handle t.rt in
    adopt_spawn t ~handle ~creator:(Some creator) ty inits;
    handle

(** Materialize a machine with a pre-allocated handle (local spawns and
    the shard layer's remote-spawn delivery) and schedule its entry. *)
and adopt_spawn t ~handle ~creator ty inits : unit =
  let child = Exec.adopt_instance t.rt ~self:handle ~creator ty in
  List.iter (fun (y, v) -> Exec.assign child y v) inits;
  let (_ : Context.backpressure) = activate t child in
  ()

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)
(* ------------------------------------------------------------------ *)

(** Run up to [fuel] activations off the ready queue; returns how many
    ran. Causal schedulers keep their queue empty (everything runs inside
    the posting call), so this is the Fifo pump. *)
let run_ready t ~fuel : int =
  let n = ref 0 in
  while !n < fuel && not (Queue.is_empty t.ready) do
    incr n;
    t.c_activations <- t.c_activations + 1;
    Exec.reset_quantum t.rt;
    let entry = Queue.pop t.ready in
    (* activation is a fault point: the machine about to run may
       crash-restart, keeping its store but losing frames, agenda, and
       mailbox (the {!Context.restart} contract). Safe for parked
       continuations too: the fiber suspends at the top of the machine
       loop, which re-reads the context's agenda on resume. *)
    (match t.faults with
    | None -> ()
    | Some sf ->
      let ctx = match entry with Start c | Resume (c, _) -> c in
      if ctx.Context.alive then begin
        let index = sf.sf_next in
        sf.sf_next <- index + 1;
        if P_semantics.Fault.on_block_start sf.sf_plan ~index then begin
          sf.sf_crashes <- sf.sf_crashes + 1;
          Context.restart ctx
        end
      end);
    match entry with
    | Start ctx -> ignore (run_fiber t ctx : outcome)
    | Resume (_, k) -> ignore (Effect.Deep.continue k () : outcome)
  done;
  !n

(** Pump until quiescent. *)
let run t : unit =
  while not (Queue.is_empty t.ready) do
    ignore (run_ready t ~fuel:max_int : int)
  done

(* ------------------------------------------------------------------ *)
(* External entry points (the host side of the ingress)                *)
(* ------------------------------------------------------------------ *)

(** Post an event by event id; [src = -1] marks host origin. Causal
    policies run the receiver before returning ([Accepted]); Fifo marks
    it ready for the next {!run_ready} pump. *)
let post t ~src dst event payload : Context.backpressure =
  Exec.reset_quantum t.rt;
  local_send t ~src dst event payload

let add_event t dst (event : string) payload : Context.backpressure =
  match Tables.event_id_of_name t.rt.Exec.driver event with
  | None -> Exec.error "unknown event %s" event
  | Some e -> post t ~src:(-1) dst e payload

(** Create (and in Causal mode, start) an instance of the named machine
    type, optionally with a caller-allocated handle. *)
let create_machine t ?handle (machine : string) : int =
  match Tables.machine_ty_of_name t.rt.Exec.driver machine with
  | None -> Exec.error "unknown machine type %s" machine
  | Some ty ->
    let self =
      match handle with Some h -> h | None -> Exec.fresh_handle t.rt
    in
    Exec.reset_quantum t.rt;
    adopt_spawn t ~handle:self ~creator:None ty [];
    self
