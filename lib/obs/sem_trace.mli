(** Serializing checker traces ({!P_semantics.Trace}) to a structured sink:
    one instant event per item on the lane of its principal machine,
    timestamped by trace position (logical traces — position is time), so a
    counterexample opens in Perfetto with one lane per machine. *)

val cat : string
(** The Chrome-event category of P trace items ("ptrace"). *)

val encode : P_semantics.Trace.item -> string * int * (string * Json.t) list
(** [(name, principal machine id, args)] for one item; the args carry every
    field so an item can be reconstructed from the JSON alone. *)

val emit : Sink.t -> ?t0_us:float -> P_semantics.Trace.t -> unit
(** Emit a whole trace; item [i] lands at [t0_us + i] microseconds. *)

val key : P_semantics.Trace.item -> string
(** A canonical comparison key — what {!key_of_args} reconstructs. *)

val key_of_args : Json.t -> string option
(** Rebuild a key from the [args] object of a parsed trace event; [None]
    when the event is not a P trace item. *)

val observable_keys : P_semantics.Trace.t -> string list
(** Keys of the externally observable items, in order. *)

val observable_keys_of_json : Json.t -> string list
(** The same keys extracted from a parsed Chrome trace document, in
    timestamp order — the round-trip inverse of {!emit} ∘ {!observable}. *)
