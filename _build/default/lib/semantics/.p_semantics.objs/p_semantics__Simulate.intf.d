lib/semantics/simulate.mli: Config Errors Fmt P_static P_syntax Trace
