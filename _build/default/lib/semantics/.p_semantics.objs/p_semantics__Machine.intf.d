lib/semantics/machine.mli: Ast Equeue Fmt Mid Names P_static P_syntax Value
