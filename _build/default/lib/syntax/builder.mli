(** Combinator EDSL for constructing P programs directly in OCaml: the
    programmatic front end used by the example programs, the seeded-bug
    variants, and the synthetic Figure 8 models. All nodes carry
    [Loc.none].

    Note the arithmetic, boolean, and comparison operators are shadowed to
    build {!Ast.expr} values: code mixing OCaml integer arithmetic under
    [open Builder] must qualify it ([Stdlib.( + )] etc.). *)

(* name constructors *)
val ev : string -> Names.Event.t
val mach : string -> Names.Machine.t
val st : string -> Names.State.t
val var : string -> Names.Var.t
val act : string -> Names.Action.t
val ffn : string -> Names.Foreign.t

(* expressions *)
val this : Ast.expr
val msg : Ast.expr
val arg : Ast.expr
val null : Ast.expr
val tru : Ast.expr
val fls : Ast.expr
val int : int -> Ast.expr
val bool : bool -> Ast.expr
val evt : string -> Ast.expr
val v : string -> Ast.expr
val nondet : Ast.expr
val not_ : Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr
val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val fcall : string -> Ast.expr list -> Ast.expr

(* statements *)
val skip : Ast.stmt
val assign : string -> Ast.expr -> Ast.stmt
val new_ : string -> string -> (string * Ast.expr) list -> Ast.stmt
val delete : Ast.stmt
val send : ?payload:Ast.expr -> Ast.expr -> string -> Ast.stmt
val raise_ : ?payload:Ast.expr -> string -> Ast.stmt
val leave : Ast.stmt
val return : Ast.stmt
val assert_ : Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt -> Ast.stmt -> Ast.stmt
val when_ : Ast.expr -> Ast.stmt -> Ast.stmt
val while_ : Ast.expr -> Ast.stmt -> Ast.stmt
val call_state : string -> Ast.stmt
val fstmt : string -> Ast.expr list -> Ast.stmt

val seq : Ast.stmt list -> Ast.stmt
(** Left-nested sequence; [seq []] is [skip]. *)

val if_nondet : Ast.stmt -> Ast.stmt
(** [if * then s] — the ghost-machine nondeterministic conditional. *)

(* declarations *)
val state :
  ?defer:string list ->
  ?postpone:string list ->
  ?entry:Ast.stmt ->
  ?exit:Ast.stmt ->
  string ->
  Ast.state

val var_decl : ?ghost:bool -> string -> Ptype.t -> Ast.var_decl
val action : string -> Ast.stmt -> Ast.action_decl
val step : string * string * string -> Ast.transition
val push : string * string * string -> Ast.transition
val on : string * string -> do_:string -> Ast.binding

val foreign :
  ?params:Ptype.t list -> ?ret:Ptype.t -> ?model:Ast.expr -> string -> Ast.foreign_decl

val machine :
  ?ghost:bool ->
  ?vars:Ast.var_decl list ->
  ?actions:Ast.action_decl list ->
  ?steps:(string * string * string) list ->
  ?calls:(string * string * string) list ->
  ?bindings:Ast.binding list ->
  ?foreigns:Ast.foreign_decl list ->
  string ->
  Ast.state list ->
  Ast.machine
(** The first state in the list is the machine's initial state. *)

val event : ?payload:Ptype.t -> string -> Ast.event_decl

val program :
  events:Ast.event_decl list ->
  machines:Ast.machine list ->
  ?init:(string * Ast.expr) list ->
  string ->
  Ast.program
(** [program ~events ~machines main]: the trailing "main M(init ...)"
    initialization statement of Figure 3. *)
