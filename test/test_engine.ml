(* Tests for the unified exploration core: pre-refactor regression triples
   for every engine, fingerprint/Canon partition equivalence, paranoid-mode
   collision checking, and the physical-sharing contract behind the
   incremental per-machine digest cache.

   The (verdict, states, transitions) numbers below were captured from the
   engines *before* they became Engine instantiations; the refactor (and
   any future change to Engine) must reproduce them exactly. *)

open P_checker

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tab_of p = P_static.Check.run_exn p

let find_p_file name =
  List.find Sys.file_exists
    (List.map
       (fun prefix -> Filename.concat prefix (Filename.concat "examples/p" name))
       [ "."; ".."; "../.."; "../../.."; "../../../.." ])

let elevator () = tab_of (P_examples_lib.Elevator.program ())
let elevator_buggy () = tab_of (P_examples_lib.Elevator.buggy_program ())
let german () = tab_of (P_examples_lib.German.program ())
let german_buggy () = tab_of (P_examples_lib.German.buggy_program ())
let ring () = tab_of (P_parser.Parser.program_of_file (find_p_file "ring.p"))

(* ---------------- pre-refactor regression triples ---------------- *)

let check_triple name (r : Search.result) (error_depth, states, transitions) =
  (match (r.verdict, error_depth) with
  | Search.No_error, None -> ()
  | Search.Error_found ce, Some d ->
    check int_t (name ^ " error depth") d ce.Search.depth
  | Search.No_error, Some _ -> Alcotest.failf "%s: expected an error" name
  | Search.Error_found ce, None ->
    Alcotest.failf "%s: unexpected error at depth %d" name ce.Search.depth);
  check int_t (name ^ " states") states r.stats.states;
  check int_t (name ^ " transitions") transitions r.stats.transitions

let test_delay_bounded_triples () =
  List.iter
    (fun (name, tab, d, expected) ->
      check_triple
        (Fmt.str "%s d=%d" name d)
        (Delay_bounded.explore ~delay_bound:d ~max_states:500_000 tab)
        expected)
    [ ("elevator", elevator (), 0, (None, 122, 144));
      ("elevator", elevator (), 1, (None, 729, 1186));
      ("elevator", elevator (), 2, (None, 2224, 4659));
      ("elevator_buggy", elevator_buggy (), 0, (Some 15, 21, 22));
      ("elevator_buggy", elevator_buggy (), 1, (Some 11, 62, 96));
      ("elevator_buggy", elevator_buggy (), 2, (Some 10, 132, 247));
      ("german", german (), 0, (None, 4887, 7502));
      ("german_buggy", german_buggy (), 1, (Some 20, 2070, 2354));
      ("german_buggy", german_buggy (), 2, (Some 19, 13080, 19491));
      ("ring", ring (), 0, (None, 35, 35));
      ("ring", ring (), 1, (None, 141, 171));
      ("ring", ring (), 2, (None, 198, 412)) ]

let test_round_robin_triples () =
  List.iter
    (fun (name, tab, expected) ->
      check_triple (name ^ " rr d=1")
        (Delay_bounded.explore ~discipline:Delay_bounded.Round_robin ~delay_bound:1
           ~max_states:500_000 tab)
        expected)
    [ ("elevator", elevator (), (None, 35, 57));
      ("elevator_buggy", elevator_buggy (), (Some 8, 30, 41));
      ("german_buggy", german_buggy (), (Some 16, 1774, 5366)) ]

let test_depth_bounded_triples () =
  List.iter
    (fun (name, tab, b, expected) ->
      let r = Depth_bounded.explore ~depth_bound:b ~max_states:500_000 tab in
      check_triple (Fmt.str "%s depth b=%d" name b) r expected;
      check bool_t (name ^ " truncated") true r.stats.truncated)
    [ ("elevator", elevator (), 3, (None, 11, 14));
      ("elevator", elevator (), 6, (None, 51, 126));
      ("german", german (), 6, (None, 33, 57));
      ("ring", ring (), 6, (None, 28, 40)) ]

(* The work-stealing engine's pinned triples. Verdicts and state counts
   match the sequential table above exactly; on clean programs its
   transition count is ≤ the sequential one (each state is expanded exactly
   once, at its minimal delay budget, where sequential BFS re-expands states
   it first reached with more delays spent — elevator: 4523 vs 4659). Buggy
   programs re-derive the counterexample sequentially, so those triples are
   byte-identical to the sequential engine's. *)
let test_parallel_matches_sequential_triples () =
  List.iter
    (fun (name, tab, expected) ->
      List.iter
        (fun domains ->
          check_triple
            (Fmt.str "%s parallel doms=%d" name domains)
            (Parallel.explore ~domains ~delay_bound:2 ~max_states:500_000 tab)
            expected)
        [ 1; 2 ])
    [ ("elevator", elevator (), (None, 2224, 4523));
      ("elevator_buggy", elevator_buggy (), (Some 10, 132, 247));
      ("german_buggy", german_buggy (), (Some 19, 13080, 19491));
      ("ring", ring (), (None, 198, 321)) ]

let test_random_walk_triples () =
  let r = Random_walk.run ~walks:20 ~max_blocks:100 ~seed:42 (elevator ()) in
  check int_t "elevator walks clean" 0 r.errors_found;
  check int_t "elevator total blocks" 2000 r.total_blocks;
  let rb = Random_walk.run ~walks:20 ~max_blocks:100 ~seed:42 (elevator_buggy ()) in
  check int_t "elevator_buggy failing walks" 19 rb.errors_found;
  check int_t "elevator_buggy total blocks" 620 rb.total_blocks;
  (match rb.first_error with
  | Some f ->
    check int_t "first failing walk blocks" 12 f.blocks;
    check int_t "first failing trace items" 29 (List.length f.trace)
  | None -> Alcotest.fail "expected a failing walk");
  let rr = Random_walk.run ~walks:20 ~max_blocks:100 ~seed:42 (ring ()) in
  check int_t "ring walks clean" 0 rr.errors_found;
  check int_t "ring total blocks" 2000 rr.total_blocks

let test_liveness_triples () =
  let r = Liveness.check ~max_states:20_000 (elevator ()) in
  check int_t "elevator violations" 0 (List.length r.violations);
  check int_t "elevator explored" 20_002 r.explored_states;
  check bool_t "elevator complete" false r.complete;
  let rr = Liveness.check ~max_states:20_000 (ring ()) in
  check int_t "ring violations" 0 (List.length rr.violations);
  check int_t "ring explored" 101 rr.explored_states;
  check bool_t "ring complete" true rr.complete

(* ---------------- the observed edge stream is pinned ---------------- *)

(* Every observer event of a run, folded into one hash: state discoveries
   in index order, then per edge the source, the machine that ran, the
   ghost-choice resolution, and the destination disposition. The golden
   values below pin the exact stream — order, dedup decisions, Dst_new vs
   Dst_seen, everything — so a refactor of [Engine.integrate] (the
   single merge-and-observe point) cannot reorder, drop, or duplicate an
   observation without this test noticing. *)
let edge_stream_hash tab ~delay_bound ~max_states =
  let h = ref 0x9e3779b9 in
  let mix i = h := (!h lxor i) * 0x100000001b3 land max_int in
  let observer =
    { Engine.on_state =
        (fun sidx _ ->
          mix 1;
          mix sidx);
      Engine.on_edge =
        (fun ~src ~src_config:_ ~by ~resolved ~dst ->
          mix 2;
          mix src;
          mix (P_semantics.Mid.to_int by);
          List.iter (fun b -> mix (if b then 3 else 4)) resolved.Search.choices;
          match dst with
          | Engine.Dst_new i ->
            mix 5;
            mix i
          | Engine.Dst_seen i ->
            mix 6;
            mix i
          | Engine.Dst_failed _ -> mix 7) }
  in
  let spec =
    Engine.spec ~bound:delay_bound ~max_states ~stop_on_error:false
      (Engine.stack_sched Engine.Causal)
  in
  let r = Engine.run ~observer ~engine:"edge_stream" spec tab in
  (!h, r.stats.states, r.stats.transitions)

let test_edge_stream_pinned () =
  List.iter
    (fun (name, tab, expected_hash, expected_states, expected_transitions) ->
      let h, states, transitions =
        edge_stream_hash tab ~delay_bound:1 ~max_states:50_000
      in
      check int_t (name ^ " edge-stream hash") expected_hash h;
      check int_t (name ^ " states") expected_states states;
      check int_t (name ^ " transitions") expected_transitions transitions)
    [ ("elevator", elevator (), 2994106453711014078, 729, 1186);
      ("german", german (), 248796328542932357, 50_000, 73_439);
      ("elevator_buggy", elevator_buggy (), 1848275993151437324, 670, 1092) ]

(* ---------------- fingerprint modes agree ---------------- *)

let test_fingerprint_modes_same_triples () =
  List.iter
    (fun (name, tab, d) ->
      let run mode =
        Delay_bounded.explore ~delay_bound:d ~max_states:500_000 ~fingerprint:mode
          tab
      in
      let full = run Fingerprint.Full in
      let incr = run Fingerprint.Incremental in
      let para = run Fingerprint.Paranoid in
      List.iter
        (fun (mode, r) ->
          check int_t (Fmt.str "%s %s states" name mode) full.Search.stats.states
            r.Search.stats.states;
          check int_t
            (Fmt.str "%s %s transitions" name mode)
            full.Search.stats.transitions r.Search.stats.transitions;
          check bool_t
            (Fmt.str "%s %s verdict agrees" name mode)
            (full.Search.verdict = Search.No_error)
            (r.Search.verdict = Search.No_error))
        [ ("incremental", incr); ("paranoid", para) ])
    [ ("elevator", elevator (), 2);
      ("elevator_buggy", elevator_buggy (), 2);
      ("german", german (), 0);
      ("ring", ring (), 2) ]

(* Paranoid mode runs both encodings on every query and counts any break of
   the incremental<->full bijection; across the suite it must see none. *)
let test_paranoid_no_collisions () =
  List.iter
    (fun (name, tab, d) ->
      let metrics = P_obs.Metrics.create () in
      let instr = Search.instr ~metrics () in
      ignore
        (Delay_bounded.explore ~delay_bound:d ~max_states:500_000
           ~fingerprint:Fingerprint.Paranoid ~instr tab);
      check int_t (name ^ " collisions") 0
        (P_obs.Metrics.counter_total metrics "checker.fp_collisions");
      check bool_t (name ^ " cache exercised") true
        (P_obs.Metrics.counter_total metrics "checker.fp_cache_hits" > 0))
    [ ("elevator", elevator (), 2);
      ("elevator_buggy", elevator_buggy (), 2);
      ("german", german (), 0);
      ("german_buggy", german_buggy (), 2);
      ("ring", ring (), 2) ]

(* ---------------- incremental fingerprint ≡ Canon partition ----------- *)

(* A local xorshift so the corpus walks are reproducible without reaching
   into Random_walk's private PRNG. *)
type rng = { mutable s : int }

let make_rng seed = { s = (seed * 2654435761) lor 1 }

let rand_int rng bound =
  rng.s <- rng.s lxor (rng.s lsl 13);
  rng.s <- rng.s lxor (rng.s lsr 7);
  rng.s <- rng.s lxor (rng.s lsl 17);
  (rng.s land max_int) mod bound

(* Configurations visited by seeded random walks: walks share prefixes and
   revisit states, so the corpus contains genuinely equal configurations
   reached along different paths — exactly what a partition check needs. *)
let walk_corpus tab ~walks ~max_blocks ~seed : P_semantics.Config.t list =
  let configs = ref [] in
  let observer =
    { Engine.on_state = (fun _ c -> configs := c :: !configs);
      Engine.on_edge = (fun ~src:_ ~src_config:_ ~by:_ ~resolved:_ ~dst:_ -> ()) }
  in
  for w = 0 to walks - 1 do
    let rng = make_rng (seed + (w * 7919)) in
    let spec =
      Engine.spec ~bound:max_blocks ~truncate_on_exhaust:true
        ~frontier:Engine.Dfs
        ~resolver:(Engine.Sampled (fun () -> rand_int rng 2 = 1))
        ~track_seen:false ~max_states:max_int ~stop_on_error:false
        (Engine.random_pick (rand_int rng))
    in
    ignore (Engine.run ~observer ~engine:"corpus" spec tab)
  done;
  !configs

(* Two keys partition the corpus identically iff full->incremental and
   incremental->full are both single-valued over it. *)
let check_partition name tab configs =
  let canon = Canon.create tab in
  let fp = Fingerprint.create ~mode:Fingerprint.Incremental tab in
  let full_to_incr = Hashtbl.create 256 in
  let incr_to_full = Hashtbl.create 256 in
  List.iter
    (fun config ->
      let full = Canon.digest canon config [] in
      let inc = Fingerprint.digest fp config [] in
      (match Hashtbl.find_opt full_to_incr full with
      | Some inc' when inc' <> inc ->
        Alcotest.failf "%s: one Canon class maps to two incremental keys" name
      | Some _ -> ()
      | None -> Hashtbl.add full_to_incr full inc);
      match Hashtbl.find_opt incr_to_full inc with
      | Some full' when full' <> full ->
        Alcotest.failf "%s: two Canon classes share one incremental key" name
      | Some _ -> ()
      | None -> Hashtbl.add incr_to_full inc full)
    configs;
  check bool_t (name ^ " corpus nonempty") true (configs <> []);
  (* the corpus must actually contain duplicate states, or the partition
     check is vacuous *)
  check bool_t
    (name ^ " corpus has repeats")
    true
    (List.length configs > Hashtbl.length full_to_incr)

let test_incremental_matches_canon_partition () =
  List.iter
    (fun (name, tab) ->
      let configs = walk_corpus tab ~walks:15 ~max_blocks:60 ~seed:7 in
      check_partition name tab configs)
    ([ ("elevator", elevator ());
       ("elevator_buggy", elevator_buggy ());
       ("german", german ()) ]
    @ List.map
        (fun f -> (f, tab_of (P_parser.Parser.program_of_file (find_p_file f))))
        [ "elevator.p"; "ring.p"; "failover.p" ])

(* ---------------- the physical-sharing contract ---------------- *)

(* One atomic block must return a configuration sharing every untouched
   machine with its parent — the invariant that makes the physically-keyed
   per-machine cache sound and successor digests O(machines-changed). *)
let test_changed_machines_small () =
  let tab = german () in
  let module Step = P_semantics.Step in
  let module Config = P_semantics.Config in
  let config0, _, _ = Step.initial_config tab in
  let seen_changes = ref 0 in
  let rec walk config blocks =
    if blocks >= 60 then ()
    else
      match Step.enabled tab config with
      | [] -> ()
      | mid :: _ -> (
        match Search.resolutions tab config mid with
        | { Search.outcome; _ } :: _ -> (
          match Step.outcome_config outcome with
          | Some config' ->
            let changed = Config.changed_machines ~before:config ~after:config' in
            (* one block touches the running machine, plus at most a created
               machine or a send target *)
            check bool_t
              (Fmt.str "block %d changes at most 3 machines" blocks)
              true
              (List.length changed <= 3);
            let n_live = Config.live_count config' in
            check bool_t
              (Fmt.str "block %d shares the rest" blocks)
              true
              (List.length changed < n_live || n_live <= 3);
            seen_changes := !seen_changes + List.length changed;
            walk config' (blocks + 1)
          | None -> ())
        | [] -> ())
  in
  walk config0 0;
  check bool_t "walk made progress" true (!seen_changes > 0)

(* ---------------- state-space reduction ---------------- *)

(* Reduction differential: [full] must report the same verdict kind as
   [none] while never claiming more states, strictly fewer where the
   commutativity structure exists. The reduced counts are pinned — the
   pruning decision is a pure function of the expanded state, so they are
   part of the determinism contract. *)
let test_reduction_differential () =
  List.iter
    (fun (name, tab, d, pinned) ->
      let explore reduce =
        Delay_bounded.explore ~delay_bound:d ~max_states:500_000 ~reduce tab
      in
      let none = explore Reduce.none and full = explore Reduce.full in
      check bool_t
        (Fmt.str "%s d=%d same verdict kind" name d)
        true
        ((none.verdict = Search.No_error) = (full.verdict = Search.No_error));
      check bool_t
        (Fmt.str "%s d=%d never more states" name d)
        true
        (full.stats.states <= none.stats.states);
      check int_t (Fmt.str "%s d=%d unreduced off" name d) 0 none.stats.pruned;
      match pinned with
      | None -> ()
      | Some (states, pruned) ->
        check int_t (Fmt.str "%s d=%d reduced states" name d) states
          full.stats.states;
        check int_t (Fmt.str "%s d=%d moves slept" name d) pruned
          full.stats.pruned)
    [ ("pingpong", tab_of (P_examples_lib.Pingpong.program ()), 2, None);
      ("switch_led", tab_of (P_examples_lib.Switch_led.program ()), 2, None);
      ("token_ring", tab_of (P_examples_lib.Token_ring.program ()), 2, Some (170, 106));
      ("bounded_buffer", tab_of (P_examples_lib.Bounded_buffer.program ()), 2, None);
      ("elevator", elevator (), 2, Some (1112, 71));
      ("elevator_buggy", elevator_buggy (), 2, None);
      ( "german",
        tab_of (P_examples_lib.German.program ~n:3 ~requests:2 ()),
        2,
        Some (1930, 859) );
      ( "german_buggy",
        tab_of (P_examples_lib.German.buggy_program ~n:3 ~requests:2 ()),
        2,
        None ) ]

(* The USB stack's value space is unbounded (sequence counters ride the
   payloads), so its reduction workload is depth-capped: within any BFS
   depth the reduced reachable set is a subset of the unreduced one. *)
let test_reduction_usb_depth_capped () =
  let tab = tab_of (P_usb.Stack.program ()) in
  let explore reduce =
    Delay_bounded.explore ~delay_bound:2 ~max_depth:20 ~max_states:500_000
      ~reduce tab
  in
  let none = explore Reduce.none in
  let full = explore Reduce.full in
  let sym = explore Reduce.symmetry in
  check int_t "usb unreduced states" 33410 none.stats.states;
  check int_t "usb reduced states" 13145 full.stats.states;
  check bool_t "usb symmetry alone also merges" true
    (sym.stats.states < none.stats.states)

(* Creation-order twins: a ghost choice orders two [new]s of an otherwise
   indistinguishable machine type, so the two branches reach isomorphic
   configurations that differ only by the identity permutation. POR can
   not help (the blocks conflict on the creating machine); symmetry
   canonicalization must merge them. *)
let twins_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "unit" ]
    ~machines:
      [ machine "W" [ state "Idle" ~entry:skip ];
        machine ~ghost:true "Main"
          ~vars:
            [ var_decl "a" P_syntax.Ptype.Machine_id;
              var_decl "b" P_syntax.Ptype.Machine_id ]
          [ state "Init"
              ~entry:
                (if_ nondet
                   (seq [ new_ "a" "W" []; new_ "b" "W" [] ])
                   (seq [ new_ "b" "W" []; new_ "a" "W" [] ])) ] ]
    "Main"

let test_symmetry_merges_twins () =
  let tab = tab_of (twins_program ()) in
  let explore reduce = Delay_bounded.explore ~delay_bound:1 ~reduce tab in
  let none = explore Reduce.none in
  let sym = explore Reduce.symmetry in
  check bool_t "both clean" true
    (none.verdict = Search.No_error && sym.verdict = Search.No_error);
  check bool_t "creation orders split unreduced" true
    (sym.stats.states < none.stats.states)

(* Parallel exploration under reduction keeps the sequential contract:
   same verdict, same states, same pruned count, and a counterexample
   whose schedule still replays to the same failure in the compiled
   runtime. *)
let test_reduction_parallel_and_replay () =
  let tab = tab_of (P_examples_lib.German.buggy_program ~n:3 ~requests:2 ()) in
  let reduce = Reduce.full in
  let seq =
    Delay_bounded.explore ~delay_bound:2 ~max_states:500_000 ~reduce tab
  in
  let par =
    Parallel.explore ~domains:4 ~delay_bound:2 ~max_states:500_000 ~reduce tab
  in
  check int_t "par states = seq states" seq.stats.states par.stats.states;
  check int_t "par pruned = seq pruned" seq.stats.pruned par.stats.pruned;
  match (seq.verdict, par.verdict) with
  | Search.Error_found sce, Search.Error_found pce ->
    check int_t "ce depths agree" sce.Search.depth pce.Search.depth;
    check bool_t "ce schedules agree" true
      (sce.Search.schedule = pce.Search.schedule);
    (match Differential.run tab sce.Search.schedule with
    | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
    | Ok o ->
      Alcotest.failf "reduced counterexample replay: %a" Differential.pp_outcome o
    | Error e -> Alcotest.failf "differential setup failed: %s" e)
  | _ -> Alcotest.fail "expected an error from both engines"

let suite =
  [ Alcotest.test_case "delay-bounded pre-refactor triples" `Quick
      test_delay_bounded_triples;
    Alcotest.test_case "round-robin pre-refactor triples" `Quick
      test_round_robin_triples;
    Alcotest.test_case "depth-bounded pre-refactor triples" `Quick
      test_depth_bounded_triples;
    Alcotest.test_case "parallel matches sequential triples" `Slow
      test_parallel_matches_sequential_triples;
    Alcotest.test_case "random-walk pre-refactor results" `Quick
      test_random_walk_triples;
    Alcotest.test_case "liveness pre-refactor results" `Slow test_liveness_triples;
    Alcotest.test_case "observed edge stream is pinned" `Quick
      test_edge_stream_pinned;
    Alcotest.test_case "fingerprint modes report identical triples" `Quick
      test_fingerprint_modes_same_triples;
    Alcotest.test_case "paranoid mode sees zero collisions" `Quick
      test_paranoid_no_collisions;
    Alcotest.test_case "incremental fingerprint ≡ Canon partition" `Quick
      test_incremental_matches_canon_partition;
    Alcotest.test_case "atomic blocks share untouched machines" `Quick
      test_changed_machines_small;
    Alcotest.test_case "reduction differential on the example suite" `Quick
      test_reduction_differential;
    Alcotest.test_case "reduction on the depth-capped USB stack" `Quick
      test_reduction_usb_depth_capped;
    Alcotest.test_case "symmetry merges creation-order twins" `Quick
      test_symmetry_merges_twins;
    Alcotest.test_case "reduced parallel search and replay" `Quick
      test_reduction_parallel_and_replay ]
