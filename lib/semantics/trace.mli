(** Execution traces: the observable happenings of a run, used for
    counterexample reporting, the liveness predicates of section 3.2
    ([enq], [deq], [sched]), coverage attribution, and the runtime
    equivalence tests. *)

open P_syntax

type item =
  | Created of { creator : Mid.t option; created : Mid.t; kind : Names.Machine.t }
  | Sent of { src : Mid.t; dst : Mid.t; event : Names.Event.t; payload : Value.t }
  | Dequeued of { mid : Mid.t; event : Names.Event.t; payload : Value.t }
  | Raised of { mid : Mid.t; event : Names.Event.t }
      (** one per examination of a dynamic raise, including re-raises while
          unhandled events pop through the call stack *)
  | Entered of { mid : Mid.t; state : Names.State.t }
  | Popped of { mid : Mid.t; state : Names.State.t option }
      (** a frame was popped; [state] is the new top of the call stack *)
  | Deleted of { mid : Mid.t }
  | Faulted of { mid : Mid.t; fault : string }
      (** an injected fault fired at this machine; [fault] names the class.
          Not observable: fault injection must not perturb the
          scheduler-equivalence comparisons. *)

val pp_item : item Fmt.t

type t = item list
(** Chronological order. *)

val pp : t Fmt.t

val observable : ?only:Mid.Set.t -> t -> item list
(** The externally observable communication actions (creates, sends,
    dequeues, deletions), optionally restricted to a set of machines. *)
