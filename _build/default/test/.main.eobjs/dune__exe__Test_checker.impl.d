test/test_checker.ml: Alcotest Delay_bounded Depth_bounded Fmt List Liveness P_checker P_examples_lib P_parser P_semantics P_static P_syntax Search Verifier
