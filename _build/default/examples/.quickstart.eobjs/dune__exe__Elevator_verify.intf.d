examples/elevator_verify.mli:
