(** Workload driver for the efficiency experiment of section 4.1: deliver
    interrupts to a driver at a fixed simulated rate and measure the
    *wall-clock* cost of handling each event (the simulated clock advances
    instantaneously, so per-event handler cost is isolated from the arrival
    schedule). *)

type stats = {
  events : int;
  total_ns : float;
  mean_ns : float;
  max_ns : float;
  p99_ns : float;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d events, mean %.0f ns, p99 %.0f ns, max %.0f ns" s.events s.mean_ns
    s.p99_ns s.max_ns

(** Run [events] callbacks at [rate_hz] (simulated) against [driver],
    producing per-event wall-time statistics. [make_event i] chooses the
    i-th callback. *)
let run ?(rate_hz = 100) ?(events = 1000) ~(make_event : int -> Os_events.t)
    (driver : Os_events.driver) : stats =
  let clock = Clock.create () in
  let period_us = 1_000_000 / rate_hz in
  let samples = Array.make events 0.0 in
  driver.Os_events.add_device ();
  for i = 0 to events - 1 do
    Clock.schedule clock ~delay_us:((i + 1) * period_us) (fun () ->
        let ev = make_event i in
        let span = P_obs.Mclock.start () in
        driver.Os_events.callback ev;
        samples.(i) <- Int64.to_float (P_obs.Mclock.elapsed_ns span))
  done;
  let dispatched = Clock.run clock in
  assert (dispatched = events);
  driver.Os_events.remove_device ();
  let total = Array.fold_left ( +. ) 0.0 samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { events;
    total_ns = total;
    mean_ns = total /. float_of_int events;
    max_ns = sorted.(events - 1);
    p99_ns = sorted.(min (events - 1) (events * 99 / 100)) }

(* ------------------------------------------------------------------ *)
(* Open-loop load generation against the sharded serving runtime       *)
(* ------------------------------------------------------------------ *)

module Shard = P_runtime.Shard
module Rt_value = P_runtime.Rt_value

type load_stats = {
  ld_machines : int;
  ld_shards : int;
  ld_offered : int;  (** posts attempted by the generator *)
  ld_completed : int;  (** events fully served (latency samples taken) *)
  ld_shed : int;  (** ingress + mailbox drops *)
  ld_quiesced : bool;  (** the fleet drained before the timeout *)
  ld_elapsed_s : float;  (** first post to quiescence *)
  ld_events_per_s : float;  (** sustained service rate over that window *)
  ld_p50_us : float;  (** post-to-served latency percentiles *)
  ld_p95_us : float;
  ld_p99_us : float;
  ld_shard_stats : Shard.stats;
}

let pp_load_stats ppf s =
  Fmt.pf ppf
    "%d machines on %d shard(s): %d/%d served (%d shed), %.0f events/s, \
     latency p50 %.0f µs p95 %.0f µs p99 %.0f µs%s"
    s.ld_machines s.ld_shards s.ld_completed s.ld_offered s.ld_shed
    s.ld_events_per_s s.ld_p50_us s.ld_p95_us s.ld_p99_us
    (if s.ld_quiesced then "" else " [DID NOT QUIESCE]")

(* The served fleet: request-sink machines, one state pair per request so
   the runtime walks a real transition (dequeue, entry, foreign call,
   raise) per event rather than a no-op handler. *)
let sink_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "Req" ~payload:P_syntax.Ptype.Int; event "unit" ]
    ~machines:
      [ machine "Sink"
          ~foreigns:
            [ foreign ~params:[ P_syntax.Ptype.Int ]
                ~ret:P_syntax.Ptype.Void "served" ]
          [ state "Serve" ~entry:skip;
            state "Work" ~entry:(seq [ fstmt "served" [ arg ]; raise_ "unit" ]) ]
          ~steps:[ ("Serve", "Req", "Work"); ("Work", "unit", "Serve") ] ]
    "Sink"

(* Growable per-shard latency accumulator; owned by one shard domain, so
   plain mutation, merged after the domains join. *)
type lat_acc = { mutable buf : float array; mutable n : int }

let lat_add acc x =
  if acc.n = Array.length acc.buf then begin
    let b = Array.make ((2 * acc.n) + 1024) 0.0 in
    Array.blit acc.buf 0 b 0 acc.n;
    acc.buf <- b
  end;
  acc.buf.(acc.n) <- x;
  acc.n <- acc.n + 1

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(** Open-loop load run: [machines] request sinks served by [shards]
    domain-pinned schedulers, [events] posts arriving at [rate_hz]
    (0. = as fast as the generator can go) round-robin across the fleet.
    Open loop means arrivals never wait for service: when the offered rate
    exceeds the service rate the shard ingress bound (and any mailbox
    [capacity]) sheds, keeping memory flat — the generator observes
    [Shed] and moves on. Latency is measured post-to-served on the wall
    clock, collected per shard without synchronization. *)
let load_run ?(shards = 1) ?(machines = 1000) ?(events = 100_000)
    ?(rate_hz = 0.0) ?capacity ?ingress_capacity ?quantum
    ?(timeout_s = 120.0) ?telemetry ?metrics () : load_stats =
  if machines <= 0 then invalid_arg "Workload.load_run: machines must be positive";
  let driver =
    (P_compile.Compile.compile (sink_program ())).P_compile.Compile.driver
  in
  let t =
    Shard.create ~shards ?capacity ?ingress_capacity ?quantum ?telemetry
      ?metrics driver
  in
  let arrivals_us = Array.make events 0.0 in
  let lats =
    Array.init shards (fun _ -> { buf = Array.make 1024 0.0; n = 0 })
  in
  Shard.register_foreign_per_shard t "served" (fun s ->
      let acc = lats.(s) in
      fun _ctx args ->
        (match args with
        | [ Rt_value.Int seq ] ->
          lat_add acc (P_obs.Mclock.now_us () -. arrivals_us.(seq))
        | _ -> ());
        Rt_value.Null);
  let handles = Array.init machines (fun _ -> Shard.create_machine t "Sink") in
  let req = Shard.event_id t "Req" in
  Shard.start t;
  let period_us = if rate_hz <= 0.0 then 0.0 else 1e6 /. rate_hz in
  let t0 = P_obs.Mclock.now_us () in
  let shed_sync = ref 0 in
  for i = 0 to events - 1 do
    (* open loop: arrival i is due at t0 + i·period regardless of how
       service is keeping up; a generator running behind posts immediately *)
    if period_us > 0.0 then begin
      let due = t0 +. (float_of_int i *. period_us) in
      while P_obs.Mclock.now_us () < due do
        Domain.cpu_relax ()
      done
    end;
    arrivals_us.(i) <- P_obs.Mclock.now_us ();
    match Shard.post t handles.(i mod machines) ~event:req (Rt_value.Int i) with
    | P_runtime.Context.Shed -> incr shed_sync
    | P_runtime.Context.Accepted | P_runtime.Context.Queued -> ()
  done;
  let quiesced = Shard.quiesce ~timeout_s t in
  let elapsed_s = (P_obs.Mclock.now_us () -. t0) /. 1e6 in
  let st = Shard.stop t in
  let completed = Array.fold_left (fun acc a -> acc + a.n) 0 lats in
  let merged = Array.make completed 0.0 in
  let off = ref 0 in
  Array.iter
    (fun a ->
      Array.blit a.buf 0 merged !off a.n;
      off := !off + a.n)
    lats;
  Array.sort compare merged;
  { ld_machines = machines;
    ld_shards = shards;
    ld_offered = events;
    ld_completed = completed;
    ld_shed = st.Shard.sh_shed_ingress + st.Shard.sh_shed_mailbox;
    ld_quiesced = quiesced;
    ld_elapsed_s = elapsed_s;
    ld_events_per_s =
      (if elapsed_s > 0.0 then float_of_int completed /. elapsed_s else 0.0);
    ld_p50_us = percentile merged 0.50;
    ld_p95_us = percentile merged 0.95;
    ld_p99_us = percentile merged 0.99;
    ld_shard_stats = st }
