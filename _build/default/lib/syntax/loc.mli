(** Source locations for parser and static-checker diagnostics. *)

type t = {
  file : string;
  line : int;  (** 1-based line number; 0 when synthetic *)
  col : int;  (** 0-based column of the first character *)
}

val none : t
(** The synthetic location carried by builder-constructed AST nodes. *)

val make : file:string -> line:int -> col:int -> t
val is_none : t -> bool
val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
