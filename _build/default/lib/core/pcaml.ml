(** The public facade of the P toolchain.

    Downstream users can depend on the single [pcaml] library and reach the
    whole pipeline through this module; the underlying libraries remain
    individually usable ([p_syntax], [p_parser], [p_static], [p_semantics],
    [p_checker], [p_compile], [p_runtime], [p_host]).

    Typical flows:

    {[
      (* parse → verify → compile *)
      let program = Pcaml.parse_file "driver.p" in
      let report = Pcaml.verify ~delay_bound:3 program in
      assert (Pcaml.Verifier.is_clean report);
      let c_source = Pcaml.to_c program in
      ...
    ]}

    or, building programs in OCaml:

    {[
      let open Pcaml.Builder in
      let m = machine "M" [ state "Init" ~entry:(raise_ "unit") ] ... in
      let program = program ~events ~machines:[ m ] "M" in
      Pcaml.simulate program
    ]} *)

(* ---------------- re-exports ---------------- *)

module Loc = P_syntax.Loc
module Names = P_syntax.Names
module Ptype = P_syntax.Ptype
module Ast = P_syntax.Ast
module Pretty = P_syntax.Pretty
module Builder = P_syntax.Builder

module Parser = P_parser.Parser
module Parse_error = P_parser.Parse_error

module Symtab = P_static.Symtab
module Check = P_static.Check
module Erasure = P_static.Erasure

module Value = P_semantics.Value
module Trace = P_semantics.Trace
module Errors = P_semantics.Errors
module Simulate = P_semantics.Simulate

module Verifier = P_checker.Verifier
module Delay_bounded = P_checker.Delay_bounded
module Depth_bounded = P_checker.Depth_bounded
module Parallel = P_checker.Parallel
module Liveness = P_checker.Liveness
module Random_walk = P_checker.Random_walk
module Coverage = P_checker.Coverage
module Search = P_checker.Search

module Compile = P_compile.Compile
module C_emit = P_compile.C_emit
module Dot_emit = P_compile.Dot_emit

module Runtime = P_runtime.Api
module Rt_value = P_runtime.Rt_value
module Host_clock = P_host.Clock
module Host_skeleton = P_host.Skeleton
module Os_events = P_host.Os_events
module Workload = P_host.Workload

(* ---------------- convenience pipeline ---------------- *)

(** Parse a program from concrete syntax. Raises {!Parse_error.Error}. *)
let parse ?file src = Parser.program_of_string ?file src

let parse_file path = Parser.program_of_file path

(** Statically check; raises {!Check.Rejected} with diagnostics. *)
let check program = Check.run_exn program

(** Systematic testing with the causal delay-bounded scheduler (plus the
    static phases); see {!Verifier.verify} for the knobs. *)
let verify = Verifier.verify

(** Deterministic causal (d = 0) execution of the closed program. *)
let simulate ?max_blocks ?policy program =
  Simulate.run ?max_blocks ?policy (check program)

(** Compile to the table-driven C of the paper's section 4. *)
let to_c ?name program = Compile.to_c ?name program

(** Compile and load into the execution runtime; returns the runtime ready
    for {!Runtime.register_foreign} and {!Runtime.create_machine}. *)
let load ?name program = Runtime.create (Compile.compile ?name program).driver

(** Render the machines as a Graphviz diagram. *)
let to_dot program = Dot_emit.emit program
