(** Lowering an erased (real-only) P program to the table IR.

    The input must have passed {!P_static.Check} and {!P_static.Erasure}:
    lowering refuses ghost machines and the nondeterministic [*] expression,
    both of which must have been erased before compilation. *)

open P_syntax
module Symtab = P_static.Symtab

exception Not_compilable of string

let fail fmt = Fmt.kstr (fun m -> raise (Not_compilable m)) fmt

type env = {
  full : bool;
      (* [true] lowers the un-erased program: ghost machines are kept and
         [*] becomes {!Tables.CNondet}. Used by differential replay only. *)
  events : (string, int) Hashtbl.t;
  machines : (string, int) Hashtbl.t;
  machine_vars : (string, (string, int) Hashtbl.t) Hashtbl.t;
      (* variable tables of every machine, for [new] initializers *)
  (* per current machine: *)
  vars : (string, int) Hashtbl.t;
  states : (string, int) Hashtbl.t;
  actions : (string, int) Hashtbl.t;
  foreigns : (string, int) Hashtbl.t;
}

let index_of tbl kind name =
  match Hashtbl.find_opt tbl name with
  | Some i -> i
  | None -> fail "unknown %s %s during lowering" kind name

let lower_unop : Ast.unop -> Tables.unop = function
  | Ast.Not -> Tables.Not
  | Ast.Neg -> Tables.Neg

let lower_binop : Ast.binop -> Tables.binop = function
  | Ast.Add -> Tables.Add
  | Ast.Sub -> Tables.Sub
  | Ast.Mul -> Tables.Mul
  | Ast.Div -> Tables.Div
  | Ast.Mod -> Tables.Mod
  | Ast.And -> Tables.And
  | Ast.Or -> Tables.Or
  | Ast.Eq -> Tables.Eq
  | Ast.Neq -> Tables.Neq
  | Ast.Lt -> Tables.Lt
  | Ast.Le -> Tables.Le
  | Ast.Gt -> Tables.Gt
  | Ast.Ge -> Tables.Ge

let rec lower_expr env (e : Ast.expr) : Tables.cexpr =
  match e.e with
  | Ast.This -> Tables.CThis
  | Ast.Msg -> Tables.CMsg
  | Ast.Arg -> Tables.CArg
  | Ast.Null -> Tables.CNull
  | Ast.Bool_lit b -> Tables.CBool b
  | Ast.Int_lit i -> Tables.CInt i
  | Ast.Event_lit ev ->
    Tables.CEvent (index_of env.events "event" (Names.Event.to_string ev))
  | Ast.Var x -> Tables.CVar (index_of env.vars "variable" (Names.Var.to_string x))
  | Ast.Nondet ->
    if env.full then Tables.CNondet
    else fail "nondeterministic '*' survived erasure"
  | Ast.Unop (op, a) -> Tables.CUnop (lower_unop op, lower_expr env a)
  | Ast.Binop (op, a, b) ->
    Tables.CBinop (lower_binop op, lower_expr env a, lower_expr env b)
  | Ast.Foreign_call (f, args) ->
    Tables.CForeign_call
      ( index_of env.foreigns "foreign function" (Names.Foreign.to_string f),
        List.map (lower_expr env) args )

let rec lower_stmt env (s : Ast.stmt) : Tables.code =
  match s.s with
  | Ast.Skip -> Tables.CSkip
  | Ast.Assign (x, e) ->
    Tables.CAssign
      (index_of env.vars "variable" (Names.Var.to_string x), lower_expr env e)
  | Ast.New (x, m, inits) ->
    let mname = Names.Machine.to_string m in
    let ty = index_of env.machines "machine" mname in
    let target_vars =
      match Hashtbl.find_opt env.machine_vars mname with
      | Some tbl -> tbl
      | None -> fail "unknown machine %s during lowering" mname
    in
    Tables.CNew
      ( index_of env.vars "variable" (Names.Var.to_string x),
        ty,
        List.map
          (fun (y, e) ->
            (* initializer variable ids index the *created* machine's table *)
            (index_of target_vars "variable" (Names.Var.to_string y), lower_expr env e))
          inits )
  | Ast.Delete -> Tables.CDelete
  | Ast.Send (target, ev, payload) ->
    Tables.CSend
      ( lower_expr env target,
        index_of env.events "event" (Names.Event.to_string ev),
        lower_expr env payload )
  | Ast.Raise (ev, payload) ->
    Tables.CRaise
      (index_of env.events "event" (Names.Event.to_string ev), lower_expr env payload)
  | Ast.Leave -> Tables.CLeave
  | Ast.Return -> Tables.CReturn
  | Ast.Assert e ->
    Tables.CAssert (lower_expr env e, Fmt.str "%a" Loc.pp s.sloc)
  | Ast.Seq (a, b) -> Tables.CSeq (lower_stmt env a, lower_stmt env b)
  | Ast.If (c, t, f) -> Tables.CIf (lower_expr env c, lower_stmt env t, lower_stmt env f)
  | Ast.While (c, body) -> Tables.CWhile (lower_expr env c, lower_stmt env body)
  | Ast.Call_state n ->
    Tables.CCall_state (index_of env.states "state" (Names.State.to_string n))
  | Ast.Foreign_stmt (f, args) ->
    Tables.CForeign_stmt
      ( index_of env.foreigns "foreign function" (Names.Foreign.to_string f),
        List.map (lower_expr env) args )

let lower_machine env_global (m : Ast.machine) (tab : Symtab.t) : Tables.machine_table =
  if m.machine_ghost && not env_global.full then
    fail "machine %s is ghost and must be erased before compilation"
      (Names.Machine.to_string m.machine_name);
  let env =
    { env_global with
      vars = Hashtbl.create 16;
      states = Hashtbl.create 16;
      actions = Hashtbl.create 16;
      foreigns = Hashtbl.create 8 }
  in
  List.iteri
    (fun i (vd : Ast.var_decl) ->
      Hashtbl.replace env.vars (Names.Var.to_string vd.var_name) i)
    m.vars;
  List.iteri
    (fun i (st : Ast.state) ->
      Hashtbl.replace env.states (Names.State.to_string st.state_name) i)
    m.states;
  List.iteri
    (fun i (ad : Ast.action_decl) ->
      Hashtbl.replace env.actions (Names.Action.to_string ad.action_name) i)
    m.actions;
  List.iteri
    (fun i (fd : Ast.foreign_decl) ->
      Hashtbl.replace env.foreigns (Names.Foreign.to_string fd.foreign_name) i)
    m.foreigns;
  let n_events = List.length tab.Symtab.program.events in
  let mi = Symtab.machine_info_exn tab m.machine_name in
  let states =
    Array.of_list
      (List.map
         (fun (st : Ast.state) ->
           let deferred = Array.make n_events false in
           let steps = Array.make n_events None in
           let calls = Array.make n_events None in
           let actions = Array.make n_events None in
           List.iteri
             (fun i (ev : Ast.event_decl) ->
               let e = ev.event_name in
               if Names.Event.Set.mem e (Symtab.deferred_set mi st.state_name) then
                 deferred.(i) <- true;
               (match Symtab.step_target mi st.state_name e with
               | Some n ->
                 steps.(i) <-
                   Some (index_of env.states "state" (Names.State.to_string n))
               | None -> ());
               (match Symtab.call_target mi st.state_name e with
               | Some n ->
                 calls.(i) <-
                   Some (index_of env.states "state" (Names.State.to_string n))
               | None -> ());
               match Symtab.bound_action mi st.state_name e with
               | Some a ->
                 actions.(i) <-
                   Some (index_of env.actions "action" (Names.Action.to_string a))
               | None -> ())
             tab.Symtab.program.events;
           { Tables.st_name = Names.State.to_string st.state_name;
             st_deferred = deferred;
             st_steps = steps;
             st_calls = calls;
             st_actions = actions;
             st_entry = lower_stmt env st.entry;
             st_exit = lower_stmt env st.exit })
         m.states)
  in
  { Tables.mt_name = Names.Machine.to_string m.machine_name;
    mt_vars =
      Array.of_list
        (List.map
           (fun (vd : Ast.var_decl) ->
             (Names.Var.to_string vd.var_name, vd.var_type))
           m.vars);
    mt_actions =
      Array.of_list
        (List.map
           (fun (ad : Ast.action_decl) ->
             (Names.Action.to_string ad.action_name, lower_stmt env ad.action_body))
           m.actions);
    mt_states = states;
    mt_foreigns =
      Array.of_list
        (List.map
           (fun (fd : Ast.foreign_decl) ->
             { Tables.fs_name = Names.Foreign.to_string fd.foreign_name;
               fs_params = fd.foreign_params;
               fs_ret = fd.foreign_ret })
           m.foreigns) }

(** Compile an erased program to driver tables. Raises {!Not_compilable} if
    ghost fragments remain (unless [full]). *)
let lower ?(name = "driver") ?(full = false) (program : Ast.program) :
    Tables.driver =
  let tab = Symtab.build program in
  let env =
    { full;
      events = Hashtbl.create 32;
      machines = Hashtbl.create 16;
      machine_vars = Hashtbl.create 16;
      vars = Hashtbl.create 0;
      states = Hashtbl.create 0;
      actions = Hashtbl.create 0;
      foreigns = Hashtbl.create 0 }
  in
  List.iter
    (fun (m : Ast.machine) ->
      let tbl = Hashtbl.create 8 in
      List.iteri
        (fun i (vd : Ast.var_decl) ->
          Hashtbl.replace tbl (Names.Var.to_string vd.var_name) i)
        m.vars;
      Hashtbl.replace env.machine_vars (Names.Machine.to_string m.machine_name) tbl)
    program.machines;
  List.iteri
    (fun i (ev : Ast.event_decl) ->
      Hashtbl.replace env.events (Names.Event.to_string ev.event_name) i)
    program.events;
  List.iteri
    (fun i (m : Ast.machine) ->
      Hashtbl.replace env.machines (Names.Machine.to_string m.machine_name) i)
    program.machines;
  let machines =
    Array.of_list (List.map (fun m -> lower_machine env m tab) program.machines)
  in
  { Tables.dr_name = name;
    dr_events =
      Array.of_list
        (List.map
           (fun (ev : Ast.event_decl) ->
             (Names.Event.to_string ev.event_name, ev.event_payload))
           program.events);
    dr_machines = machines;
    dr_main = Hashtbl.find_opt env.machines (Names.Machine.to_string program.main);
    dr_main_init =
      (match Hashtbl.find_opt env.machine_vars (Names.Machine.to_string program.main) with
      | None -> []
      | Some tbl ->
        List.map
          (fun ((x, e) : Names.Var.t * Ast.expr) ->
            ( index_of tbl "variable" (Names.Var.to_string x),
              lower_expr
                { env with vars = tbl }
                e ))
          program.main_init) }
