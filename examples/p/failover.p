// A primary/backup failover protocol in concrete P syntax: a monitor pings
// the primary; when the (ghost) network reports a loss it fails over to the
// backup. The safety assertion checks that at most one node is ever
// acknowledged active (split-brain freedom).
//
// Developing this file was a condensed rerun of the paper's methodology —
// each revision fixed a defect the verifier found:
//   1. a ghost network that could loop without sending (livelock, property 1);
//   2. standby acks decrementing a counter that was never incremented;
//   3. re-entry into Active re-announcing the promotion (double count);
//   4. promoting the backup before the primary acknowledged its demotion
//      (a genuine split-brain interleaving at delay bound 2);
//   5. a second failover re-promoting the already-dead node.
// The shipped version verifies clean through delay bound 5.
//
// Verify:   dune exec bin/pc.exe -- verify examples/p/failover.p -d 3 --max-states 400000
// Coverage: dune exec bin/pc.exe -- coverage examples/p/failover.p -d 2
// Diagram:  dune exec bin/pc.exe -- graph examples/p/failover.p

event Ping(id);
event Pong;
event Promote;
event Demote;
event AckActive(int);
event AckStandby(int);
event Tick;
event Crash;
event unit;
event halt;

// A replica: starts standby, can be promoted to active, demoted back, and
// may be crashed by the environment. Acks carry a wrapping sequence number
// so the dedup queue never coalesces two acknowledgements in flight.
machine Node {
  var monitor : id;
  var seqno : int;
  var active : bool;

  state Boot {
    defer Promote, Demote;
  }

  state Wire {
    entry {
      monitor := arg;
      seqno := 0;
      active := false;
      raise(unit);
    }
  }

  state Standby {
    entry {
      // only acknowledge a demotion: the initial entry (never active)
      // must not decrement the monitor's active count
      if (active == true) {
        active := false;
        send(monitor, AckStandby, seqno);
        seqno := (seqno + 1) % 8;
      }
    }
  }

  state Active {
    entry {
      // announce the promotion once: re-entering Active after answering a
      // ping (RespondActive) must not re-send the acknowledgement
      if (active == false) {
        active := true;
        send(monitor, AckActive, seqno);
        seqno := (seqno + 1) % 8;
      }
    }
  }

  state Respond {
    entry {
      send(monitor, Pong);
      raise(unit);
    }
  }

  state Dead {
    defer Promote, Demote, Ping;
    postpone Promote, Demote, Ping;
  }

  step (Boot, Ping, Wire);
  step (Wire, unit, Standby);
  step (Standby, Promote, Active);
  step (Standby, Ping, Respond);
  step (Respond, unit, Standby);
  step (Active, Demote, Standby);
  step (Active, Ping, RespondActive);
  step (RespondActive, unit, Active);
  step (Standby, Crash, Dead);
  step (Active, Crash, Dead);

  state RespondActive {
    entry {
      send(monitor, Pong);
      raise(unit);
    }
  }

  action Ignore { skip; }
  on (Boot, Crash) do Ignore;
  on (Wire, Crash) do Ignore;
  on (Respond, Crash) do Ignore;
  on (RespondActive, Crash) do Ignore;
}

// The monitor: wires both nodes, promotes the primary, then probes it on
// every (ghost) tick; when the network reports a loss it fails over —
// demote first, promote after the standby acknowledgement arrives, so two
// Actives can never overlap.
machine Monitor {
  var primary : id;
  var backup : id;
  var actives : int;
  var spare : bool;

  state Init {
    defer Tick;
    entry {
      actives := 0;
      spare := true;
      primary := new Node();
      backup := new Node();
      send(primary, Ping, this);
      send(backup, Ping, this);
      send(primary, Promote);
      raise(unit);
    }
  }

  state Watch {
    entry {
      skip;
    }
  }

  state Probe {
    defer Tick;
    entry {
      send(primary, Ping, this);
    }
  }

  // Demote, then WAIT for the standby acknowledgement before promoting the
  // backup: the first version promoted immediately and the checker produced
  // a split-brain trace (two AckActives with no AckStandby in between).
  state Failover {
    defer Tick, Pong;
    entry {
      send(primary, Demote);
      send(primary, Crash);
    }
  }

  state DoPromote {
    defer Tick, Pong;
    entry {
      actives := actives - 1;
      assert(actives >= 0);
      spare := false;
      send(backup, Promote);
      raise(unit);
    }
  }

  // a two-node system has one failover in it: a second loss halts the
  // monitor rather than promoting the already-dead node (the checker found
  // the second-failover path re-promoting a Dead machine)
  state CheckSpare {
    defer Tick, Pong;
    entry {
      if (spare == true) {
        raise(unit);
      } else {
        raise(halt);
      }
    }
  }

  state Halt {
    defer Tick, Pong, Crash, AckActive, AckStandby;
    postpone Tick, Pong, Crash, AckActive, AckStandby;
  }

  state SwapDone {
    defer Tick, Pong;
    entry {
      primary := backup;
      raise(unit);
    }
  }

  action CountActive {
    actives := actives + 1;
    assert(actives <= 1);
  }

  action CountStandby {
    actives := actives - 1;
    assert(actives >= 0);
  }

  action Ignore { skip; }

  step (Init, unit, Watch);
  step (Watch, Tick, Probe);
  step (Probe, Pong, Watch);
  step (Probe, Crash, CheckSpare);
  step (CheckSpare, unit, Failover);
  step (CheckSpare, halt, Halt);
  step (Failover, AckStandby, DoPromote);
  step (DoPromote, unit, SwapDone);
  step (SwapDone, unit, Watch);

  on (Watch, AckActive) do CountActive;
  on (Probe, AckActive) do CountActive;
  on (Failover, AckActive) do CountActive;
  on (DoPromote, AckActive) do CountActive;
  on (DoPromote, Crash) do Ignore;
  on (CheckSpare, AckActive) do CountActive;
  on (CheckSpare, AckStandby) do CountStandby;
  on (CheckSpare, Crash) do Ignore;
  on (SwapDone, AckActive) do CountActive;
  on (Init, AckActive) do CountActive;
  on (Watch, AckStandby) do CountStandby;
  on (Probe, AckStandby) do CountStandby;
  on (SwapDone, AckStandby) do CountStandby;
  on (Init, AckStandby) do CountStandby;
  on (Watch, Pong) do Ignore;
  on (Watch, Crash) do Ignore;
  on (SwapDone, Crash) do Ignore;
  on (Failover, Crash) do Ignore;
  on (Init, Pong) do Ignore;
  on (Init, Crash) do Ignore;
}

// The ghost network/clock: ticks the monitor and may turn a probe into a
// loss by "crashing" the link (reported to the monitor as Crash).
ghost machine Net {
  ghost var mon : id;

  state Start {
    entry {
      mon := new Monitor();
      raise(unit);
    }
  }

  state Run {
    entry {
      // always perform some send before looping: a silent iteration would
      // be a private-operation livelock (and the checker flags it)
      if (*) {
        send(mon, Tick);
      } else {
        if (*) {
          send(mon, Crash);
        } else {
          send(mon, Tick);
        }
      }
      raise(unit);
    }
  }

  step (Start, unit, Run);
  step (Run, unit, Run);
}

main Net();
