(** The adversarial host: fault injection for serving runtimes.

    A {!P_semantics.Fault.plan} is the portable description of a hostile
    environment — per-mille rates for dropping, duplicating and
    reordering events and for crash-restarting machines, every decision a
    pure function of the plan's seed and a monotone fault-point counter.
    The checker consumes plans through {!P_semantics.Step.run_atomic};
    this module is the host-side counterpart: build plans from CLI-style
    specs, attach them to the serving runtimes ({!P_runtime.Sched} /
    {!P_runtime.Shard} take them at [create]), and read back what the
    adversary actually did from shard stats.

    Delay (dequeue reordering at the receiver) is a checker-only class:
    the serving schedulers already interleave freely, so only the four
    wire/crash classes are injected there. Plans carrying a delay rate
    are still accepted — the rate is simply never consulted. *)

type plan = P_semantics.Fault.plan

let none = P_semantics.Fault.none
let is_none = P_semantics.Fault.is_none
let with_seed = P_semantics.Fault.with_seed
let to_string = P_semantics.Fault.to_string
let pp = P_semantics.Fault.pp

(* Probability (0..1) to per-mille, clamped — same rounding as
   [Fault.of_string] so [plan] and spec parsing agree. *)
let mille p =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg "Faults.plan: probabilities must be within [0, 1]"
  else int_of_float ((p *. 1000.0) +. 0.5)

let plan ?(seed = 0) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(delay = 0.0) ?(crash = 0.0) () : plan =
  { P_semantics.Fault.seed;
    drop = mille drop;
    dup = mille dup;
    reorder = mille reorder;
    delay = mille delay;
    crash = mille crash }

let of_spec ?(seed = 0) spec : (plan, string) result =
  match P_semantics.Fault.of_string spec with
  | Error _ as e -> e
  | Ok p -> Ok (P_semantics.Fault.with_seed seed p)

let of_spec_exn ?seed spec : plan =
  match of_spec ?seed spec with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "Faults.of_spec_exn: %s" e)

(** What the adversary did to a serving run, summed across shards. *)
type summary = {
  fs_drops : int;
  fs_dups : int;
  fs_reorders : int;
  fs_crashes : int;
}

let total s = s.fs_drops + s.fs_dups + s.fs_reorders + s.fs_crashes

let summary (st : P_runtime.Shard.stats) : summary =
  { fs_drops = st.P_runtime.Shard.sh_fault_drops;
    fs_dups = st.P_runtime.Shard.sh_fault_dups;
    fs_reorders = st.P_runtime.Shard.sh_fault_reorders;
    fs_crashes = st.P_runtime.Shard.sh_crash_restarts }

let pp_summary ppf s =
  Fmt.pf ppf "%d faults (%d dropped, %d duplicated, %d reordered, %d crash-restarts)"
    (total s) s.fs_drops s.fs_dups s.fs_reorders s.fs_crashes

let json_of_summary (s : summary) : P_obs.Json.t =
  P_obs.Json.Obj
    [ ("drops", P_obs.Json.Int s.fs_drops);
      ("dups", P_obs.Json.Int s.fs_dups);
      ("reorders", P_obs.Json.Int s.fs_reorders);
      ("crash_restarts", P_obs.Json.Int s.fs_crashes) ]
