(** Deterministic fault plans for adversarial-environment testing.

    A {!plan} describes an adversarial host: per-mille rates for dropping,
    duplicating, reordering, and delaying events, and crash-restarting
    machines. Every decision is a pure function of [(plan.seed, index,
    fault class)], where [index] is the global fault-point counter threaded
    through {!Config.t} — so fault schedules are deterministic, replayable,
    and independent of exploration order or domain count. *)

type plan = {
  seed : int;
  drop : int;  (** per-mille *)
  dup : int;  (** per-mille *)
  reorder : int;  (** per-mille *)
  delay : int;  (** per-mille *)
  crash : int;  (** per-mille *)
}

val none : plan
(** All rates zero (seed 0). *)

val is_none : plan -> bool
(** [true] iff every rate is zero (the seed is ignored). *)

val with_seed : int -> plan -> plan

type send_fault = Deliver | Drop | Duplicate | Reorder

val on_send : plan -> index:int -> send_fault
(** Decision for the fault point of one send. Classes are probed in priority
    order drop > dup > reorder; at most one fires. *)

val on_dequeue : plan -> index:int -> bool
(** Deliver the second dequeuable event instead of the first? *)

val on_block_start : plan -> index:int -> bool
(** Crash-restart the machine before this atomic block? *)

val of_string : string -> (plan, string) result
(** Parse a spec such as ["drop=0.05,crash=0.01"]: comma-separated
    [class=probability] fields with probabilities in [0..1], rounded to
    per-mille. [""] and ["none"] parse to {!none}. The seed of the result is
    0; set it with {!with_seed}. *)

val of_string_exn : string -> plan
(** @raise Invalid_argument on parse error. *)

val to_string : plan -> string
(** Inverse of {!of_string} (rates rendered as probabilities; seed omitted). *)

val pp : plan Fmt.t
