(** Multicore state-space exploration.

    The paper's case study notes the verifier ran "after using multicores to
    scale the state exploration"; this module is that scaling knob for our
    checker: {!Engine.run_parallel} over the delay-bounded spec — a
    level-synchronous parallel BFS on OCaml 5 domains. Each round, the
    frontier is split among [domains] workers which run the atomic blocks
    and compute successor fingerprints with worker-local {!Fingerprint}
    contexts (digests are canonical, so worker-local caches yield identical
    keys); the main domain merges successors into the seen set
    sequentially, which keeps the algorithm deterministic: states,
    transitions, and the found-or-not verdict are independent of the number
    of domains (only wall-clock changes). Counterexamples are reported like
    the sequential engine's, with the trace rebuilt by replay.

    The sequential {!Delay_bounded.explore} remains the reference; the test
    suite checks this engine agrees with it exactly. *)

(** Parallel delay-bounded exploration. Semantically identical to
    {!Delay_bounded.explore} (Causal discipline, ⊕ queues); [domains] only
    affects wall-clock time. *)
let explore ?(max_states = 1_000_000) ?(domains = 4) ?(spawn_threshold = 64)
    ?(fingerprint = Fingerprint.Incremental) ?(instr = Search.no_instr)
    ~delay_bound (tab : P_static.Symtab.t) : Search.result =
  let spec =
    Engine.spec ~bound:delay_bound ~max_states ~fp_mode:fingerprint
      (Engine.stack_sched Engine.Causal)
  in
  Engine.run_parallel ~instr ~engine:"parallel"
    ~span_args:
      [ ("delay_bound", P_obs.Json.Int delay_bound);
        ("domains", P_obs.Json.Int domains) ]
    ~domains ~spawn_threshold spec tab
