(** The effects-based cooperative scheduler: one domain multiplexing many
    machine fibers over one {!Exec} runtime in [Scheduled] mode. Machine
    code performs {!Exec.Sched_send} / {!Exec.Sched_spawn} /
    {!Exec.Sched_yield} / {!Exec.Sched_choose}; the handler here gives
    them meaning under one of two policies:

    - [Causal]: a send to an idle machine runs the receiver to quiescence
      inside the handler before the sender resumes — the nested driver's
      d = 0 schedule, observably trace-identical to it.
    - [Fifo]: the serving discipline — sends only enqueue and mark ready;
      fibers are activated FIFO and preempted at dequeue points when
      their quantum expires.

    Single-domain by construction: contexts are never locked here. The
    {!Shard} layer pins one scheduler per domain and stitches them
    together through the [router]. *)

module Tables = P_compile.Tables

type policy = Causal | Fifo

(** Final answer of a machine fiber: ran to quiescence, or (Fifo quantum
    expiry) parked its continuation in the ready queue. *)
type outcome = Done | Suspended

(** Hooks the shard layer installs: a global handle allocator, the home
    predicate, and cross-shard send/spawn paths (which enqueue into
    another shard's transfer queue and never touch its contexts). *)
type router = {
  rt_alloc : unit -> int;
  rt_home : int -> bool;
  rt_send :
    src:int -> dst:int -> event:int -> payload:Rt_value.t -> Context.backpressure;
  rt_spawn :
    handle:int -> creator:int -> ty:int -> inits:(int * Rt_value.t) list -> unit;
}

type t

(** Scheduler-level stats; single-writer, so cross-domain reads may be
    slightly stale (exact after the owning domain has joined). *)
type stats = {
  st_sends : int;  (** local deliveries (deduplicated sends included) *)
  st_spawns : int;
  st_activations : int;
  st_yields : int;  (** quantum preemptions (Fifo only) *)
  st_shed_mailbox : int;  (** drops at a full bounded mailbox *)
  st_dead_letters : int;  (** sends to deleted machines (Fifo only) *)
  st_dequeues : int;  (** events processed by this scheduler's runtime *)
  st_ready_hwm : int;  (** ready-queue high-water mark *)
  st_fault_drops : int;  (** injected drops (event lost on the wire) *)
  st_fault_dups : int;  (** injected duplications (⊕ bypassed once) *)
  st_fault_reorders : int;  (** injected reorders (front-of-queue insert) *)
  st_crash_restarts : int;  (** injected crash-restarts at activation *)
}

val create :
  ?policy:policy ->
  ?quantum:int ->
  ?capacity:int ->
  ?seed:int ->
  ?faults:P_semantics.Fault.plan ->
  ?router:router ->
  Tables.driver ->
  t
(** [quantum] is the per-activation dequeue budget (default 64; forced
    unbounded under [Causal]); [capacity] bounds every mailbox; [seed]
    enables ghost [*] resolution (full tables under simulation); [router]
    is installed by the shard layer. Default policy is [Fifo].

    [faults] makes this scheduler an adversarial host: sends whose target
    exists may be dropped, duplicated (bypassing [⊕] once), or reordered
    (front-of-queue insert), and machines may crash-restart at activation
    — each decision a pure function of the plan's seed and this
    scheduler's own monotone fault-point counter, so a fixed workload
    sees a fixed fault schedule. An all-zero plan is normalized to no
    injection. Per-class counts are reported in {!stats} and flushed to
    the [runtime.sched_faults] metric. *)

val exec : t -> Exec.t
(** The underlying runtime — for foreign registration, trace hooks, and
    introspection ({!Exec.find_instance} etc.). *)

val set_metrics : t -> P_obs.Metrics.t option -> unit
(** Resolve [runtime.sched_*] handles (plus the {!Exec} meters) in the
    registry; counter values reach it on {!flush_metrics}. *)

val flush_metrics : t -> unit
(** Push counter deltas since the last flush into the registry (the shard
    loop calls this at telemetry ticks and shutdown). *)

val stats : t -> stats
val ready_length : t -> int

val run_ready : t -> fuel:int -> int
(** Run up to [fuel] activations off the ready queue; returns how many
    ran (0 = quiescent). The Fifo pump; Causal queues are always empty. *)

val run : t -> unit
(** Pump until quiescent. *)

val post : t -> src:int -> int -> int -> Rt_value.t -> Context.backpressure
(** Post an event by event id ([src = -1] marks host origin). [Causal]
    runs the receiver before returning ([Accepted]); [Fifo] leaves it for
    the next pump ([Queued]), or sheds at a full mailbox. *)

val add_event : t -> int -> string -> Rt_value.t -> Context.backpressure
(** {!post} by event name. *)

val create_machine : t -> ?handle:int -> string -> int
(** Create an instance of the named machine type (with a caller-allocated
    handle under sharding); [Causal] runs its entry before returning. *)

val adopt_spawn :
  t -> handle:int -> creator:int option -> int -> (int * Rt_value.t) list -> unit
(** Materialize a machine with a pre-allocated handle and initial
    variable values, then schedule its entry — the shard layer's
    remote-spawn delivery. *)
