test/main.mli:
