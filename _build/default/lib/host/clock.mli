(** A discrete-event simulation clock: the time base of the simulated
    driver host. Callbacks run in (time, insertion) order; the clock jumps
    between events, so timed workloads run in wall-clock milliseconds while
    preserving their arrival pattern. *)

type t

val create : unit -> t

val now_us : t -> int
(** Current simulated time in microseconds. *)

val schedule : t -> delay_us:int -> (unit -> unit) -> unit
(** Run a callback [delay_us] simulated microseconds from now; callbacks
    may schedule further callbacks. Negative delays are rejected. *)

val run : ?until_us:int -> t -> int
(** Dispatch callbacks in time order until the queue empties or the clock
    would pass [until_us]; returns the number dispatched. *)
