(** The two responsiveness (liveness) checks of section 3.2, implemented by
    fair-cycle detection over the (bounded) full-interleaving state graph.
    The paper specifies these properties in LTL but leaves their
    verification to future work; this module is that extension. *)

type violation =
  | Private_divergence of {
      mid : P_semantics.Mid.t;
      machine : P_syntax.Names.Machine.t;
    }
      (** property 1 ([∃m. ◇□ sched(m)]): the machine can run forever on a
          cycle of its own steps *)
  | Deferred_forever of {
      mid : P_semantics.Mid.t;
      machine : P_syntax.Names.Machine.t;
      event : P_syntax.Names.Event.t;
      payload : P_semantics.Value.t;
    }
      (** property 2: under fair scheduling the queue entry can stay pending
          forever, and no [postpone] annotation excuses it *)

val pp_violation : violation Fmt.t

(** A lasso witness: a finite prefix from the initial configuration to the
    violating strongly connected component, and one cycle inside it (for
    property 1, a cycle of the diverging machine's own steps; for property
    2, a representative cycle in which the starved entry stays queued). *)
type witness = {
  prefix : P_semantics.Trace.t;
  cycle : P_semantics.Trace.t;
  cycle_machines : P_semantics.Mid.t list;
      (** who is scheduled around the cycle *)
}

val pp_witness : witness Fmt.t

type result = {
  violations : violation list;
  witnesses : (violation * witness option) list;
      (** the same violations, each with a lasso witness when one could be
          reconstructed *)
  explored_states : int;
  complete : bool;  (** [false] when [max_states] truncated the graph *)
  elapsed_s : float;
      (** wall-clock seconds for graph construction + SCC analysis, read
          from the monotonic clock *)
}

val check :
  ?max_states:int ->
  ?ignore_ghost_divergence:bool ->
  ?instr:Search.instr ->
  P_static.Symtab.t ->
  result
(** [check tab] explores up to [max_states] (default 50000) configurations
    under full scheduling nondeterminism, then analyses the strongly
    connected components for fair violating cycles. Ghost environment
    machines are exempt from the divergence check unless
    [ignore_ghost_divergence:false]. Violations found on a truncated graph
    are still real cycles; completeness requires [complete = true].
    [instr] metrics: [checker.states] and [checker.violations] (labelled
    [engine=liveness]); the trace sink gets a [liveness.check] span. *)
