(* Property-based tests over randomly generated, statically clean P
   programs: the engines must never raise unexpected OCaml exceptions, the
   searches must be deterministic and monotone in the delay bound, the
   parallel engine must agree with the sequential one, erasure must be
   idempotent, and compilation must be total on checked programs.

   The generator builds closed programs that are clean by construction:
   every (state, event) pair of the machine has a step transition (so no
   unhandled-event errors), variables are initialized before use, loops are
   bounded counting loops, and sends go to [this] (always live). Ghost
   mains may use the [*] expression, exercising choice enumeration. *)

open P_syntax
open QCheck2.Gen

let n_events = 3
let n_states = 3
let last_event = n_events - 1
let last_state = n_states - 1
let pairs = n_states * n_events
let event_name i = Fmt.str "e%d" i
let state_name i = Fmt.str "S%d" i

(* ---------------- the program generator ---------------- *)

let gen_int_expr : Ast.expr t =
  let open Builder in
  oneof
    [ map int (int_range 0 5);
      pure (v "x0");
      pure (v "x1");
      map2 ( + ) (map int (int_range 0 3)) (pure (v "x0"));
      map2 ( - ) (pure (v "x1")) (map int (int_range 0 3)) ]

let gen_bool_expr ~ghost : Ast.expr t =
  let open Builder in
  let base =
    [ pure tru;
      pure fls;
      map2 ( < ) gen_int_expr gen_int_expr;
      map2 ( == ) gen_int_expr gen_int_expr ]
  in
  oneof (if ghost then pure nondet :: base else base)

let gen_simple_stmt ?(risky = false) ~ghost () : Ast.stmt t =
  let open Builder in
  oneof
    ([ pure skip;
       map2 (fun x e -> assign x e) (oneofl [ "x0"; "x1" ]) gen_int_expr;
       map (fun e -> assert_ (e || not_ e)) (gen_bool_expr ~ghost);
       map
         (fun i -> send this (event_name i) ~payload:(v "x0"))
         (int_range 0 last_event);
       (* a bounded counting loop *)
       map
         (fun k ->
           seq
             [ assign "x0" (int 0);
               while_ (v "x0" < int k) (assign "x0" (v "x0" + int 1)) ])
         (int_range 0 4) ]
    (* [risky] adds asserts that genuinely can fail at runtime, so a
       fraction of generated programs carry reachable counterexamples for
       the differential harness to chase *)
    @
    if risky then
      [ map2
          (fun x k -> assert_ (v x < int k))
          (oneofl [ "x0"; "x1" ])
          (int_range 1 6) ]
    else [])

let gen_entry ?risky ~ghost ~initial () : Ast.stmt t =
  let open Builder in
  let* body = list_size (int_range 0 4) (gen_simple_stmt ?risky ~ghost ()) in
  let* tail =
    oneof
      [ pure [];
        map (fun i -> [ raise_ (event_name i) ~payload:(int 7) ]) (int_range 0 last_event);
        pure [ leave ] ]
  in
  let init =
    if initial then [ assign "x0" (int 0); assign "x1" (int 1) ] else []
  in
  let* cond_wrap = QCheck2.Gen.bool in
  let stmts = init @ body @ tail in
  if cond_wrap then
    let* c = gen_bool_expr ~ghost in
    pure (seq (init @ [ if_ c (seq body) skip ] @ tail))
  else pure (seq stmts)

(* The ghost-parameterized generator: [Test_quickcheck] drives the
   ghost-free and ghost-bearing (and clean / possibly-failing) variants
   explicitly. *)
let gen_program_with ?risky ~ghost () : Ast.program t =
  let open Builder in
  let* entries =
    flatten_l
      (List.init n_states (fun i ->
           gen_entry ?risky ~ghost ~initial:(Stdlib.( = ) i 0) ()))
  in
  let* targets = flatten_l (List.init pairs (fun _ -> int_range 0 last_state)) in
  let states = List.mapi (fun i entry -> state ~entry (state_name i)) entries in
  (* total step table: every event handled in every state *)
  let steps =
    List.concat
      (List.init n_states (fun s ->
           List.init n_events (fun e ->
               ( state_name s,
                 event_name e,
                 state_name (List.nth targets (Stdlib.( + ) (Stdlib.( * ) s n_events) e))
               ))))
  in
  let m =
    machine ~ghost "M"
      ~vars:[ var_decl "x0" Ptype.Int; var_decl "x1" Ptype.Int ]
      states ~steps
  in
  let events =
    List.init n_events (fun i -> event ~payload:Ptype.Int (event_name i))
  in
  (* a trivial real companion so that erasing a ghost main still leaves a
     compilable program (the host would create it, per the erasure rules) *)
  let companion = machine "R" [ state "Idle" ~entry:skip ] in
  pure (program ~events ~machines:[ m; companion ] "M")

let gen_program : Ast.program t =
  let* ghost = QCheck2.Gen.bool in
  gen_program_with ~ghost ()

(* ---------------- multi-machine topology generators ---------------- *)

(* A token ring of [n] node instances: a starter news and wires them,
   then launches a hop-counting token that dies after [k] hops. Random in
   the ring size, hop budget, and (risky) an assertion bound the token
   value may or may not reach — so a fraction of risky rings carry
   genuinely reachable cross-machine counterexamples. *)
let gen_ring_program ?(risky = false) () : Ast.program t =
  let open Builder in
  let* n = int_range 2 4 in
  let* k = int_range 1 6 in
  let* bound = int_range 1 6 in
  let node_name i = Fmt.str "nd%d" i in
  let fwd =
    (if risky then [ assert_ (arg < int bound) ] else [])
    @ [ assign "x" (arg + int 1);
        when_ (v "x" < int k) (send (v "next") "Token" ~payload:(v "x"));
        raise_ "unit" ]
  in
  let node =
    machine "Node"
      ~vars:[ var_decl "next" Ptype.Machine_id; var_decl "x" Ptype.Int ]
      [ state "Boot" ~defer:[ "Token" ];
        state "Wire" ~entry:(seq [ assign "next" arg; raise_ "unit" ]);
        state "Run" ~entry:skip;
        state "Fwd" ~entry:(seq fwd) ]
      ~steps:
        [ ("Boot", "SetNext", "Wire");
          ("Wire", "unit", "Run");
          ("Run", "Token", "Fwd");
          ("Fwd", "unit", "Run") ]
  in
  let starter =
    machine "Starter"
      ~vars:(List.init n (fun i -> var_decl (node_name i) Ptype.Machine_id))
      [ state "Init"
          ~entry:
            (seq
               (List.init n (fun i -> new_ (node_name i) "Node" [])
               @ List.init n (fun i ->
                     send
                       (v (node_name i))
                       "SetNext"
                       ~payload:
                         (v (node_name (Stdlib.( mod ) (Stdlib.( + ) i 1) n))))
               @ [ send (v (node_name 0)) "Token" ~payload:(int 0) ])) ]
  in
  pure
    (program
       ~events:
         [ event "SetNext" ~payload:Ptype.Machine_id;
           event "Token" ~payload:Ptype.Int;
           event "unit" ]
       ~machines:[ starter; node ] "Starter")

(* A supervision chain: each node spawns a child until [depth_limit];
   the leaf reports [Down], and every interior node carries a restart
   handler — respawn the subtree once, then escalate the failure to its
   own parent. Random in the chain depth and (risky) an assertion over
   depth + retry count that the escalation path may or may not reach. *)
let gen_spawn_chain_program ?(risky = false) () : Ast.program t =
  let open Builder in
  let* depth_limit = int_range 1 3 in
  let* bound = int_range 1 4 in
  let spawn_kid depth_expr =
    new_ "kid" "Chain"
      [ ("depth", depth_expr); ("parent", this); ("retried", int 0) ]
  in
  let chain =
    machine "Chain"
      ~vars:
        [ var_decl "depth" Ptype.Int;
          var_decl "parent" Ptype.Machine_id;
          var_decl "kid" Ptype.Machine_id;
          var_decl "retried" Ptype.Int ]
      [ state "Boot"
          ~entry:
            (seq
               [ if_
                   (v "depth" < int depth_limit)
                   (spawn_kid (v "depth" + int 1))
                   (send (v "parent") "Down" ~payload:(v "depth"));
                 raise_ "unit" ]);
        state "Wait" ~entry:skip;
        state "Restart"
          ~entry:
            (seq
               ((if risky then [ assert_ (v "depth" + v "retried" < int bound) ]
                 else [])
               @ [ if_
                     (v "retried" == int 0)
                     (seq [ assign "retried" (int 1); spawn_kid (v "depth" + int 1) ])
                     (send (v "parent") "Down" ~payload:(v "depth"));
                   raise_ "unit" ])) ]
      ~steps:
        [ ("Boot", "unit", "Wait");
          ("Wait", "Down", "Restart");
          ("Restart", "unit", "Wait") ]
  in
  let main =
    machine "Main"
      ~vars:[ var_decl "root" Ptype.Machine_id ]
      [ state "Init"
          ~entry:
            (new_ "root" "Chain"
               [ ("depth", int 0); ("parent", this); ("retried", int 0) ]);
        state "Sink" ~entry:skip ]
      ~steps:[ ("Init", "Down", "Sink"); ("Sink", "Down", "Sink") ]
  in
  pure
    (program
       ~events:[ event "Down" ~payload:Ptype.Int; event "unit" ]
       ~machines:[ main; chain ] "Main")

(* ---------------- properties ---------------- *)

let statically_clean p = (P_static.Check.run p).diagnostics = []

let prop_generated_programs_clean =
  QCheck2.Test.make ~name:"generated programs pass the static checks" ~count:200
    gen_program statically_clean

let prop_simulator_total =
  QCheck2.Test.make ~name:"the simulator is total on clean programs" ~count:150
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let r = P_semantics.Simulate.run ~max_blocks:300 tab in
      r.blocks <= 300
      &&
      match r.status with
      | P_semantics.Simulate.Quiescent | P_semantics.Simulate.Budget_exhausted -> true
      | P_semantics.Simulate.Error e -> (
        (* the only error our construction permits is a livelock from a
           self-send cycle; anything else is an engine bug *)
        match e.kind with
        | P_semantics.Errors.Livelock | P_semantics.Errors.Fuel_exhausted -> true
        | _ -> false))

let explore ?(d = 1) ?(max_states = 1_500) tab =
  P_checker.Delay_bounded.explore ~delay_bound:d ~max_states tab

let prop_checker_total_and_deterministic =
  QCheck2.Test.make ~name:"the checker is total and deterministic" ~count:80
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let r1 = explore tab in
      let r2 = explore tab in
      r1.stats.states = r2.stats.states
      && r1.stats.transitions = r2.stats.transitions
      && (r1.verdict = P_checker.Search.No_error)
         = (r2.verdict = P_checker.Search.No_error))

let prop_states_monotone_in_delay_bound =
  QCheck2.Test.make ~name:"visited states grow with the delay bound" ~count:60
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let s d = (explore ~d tab).stats.states in
      s 0 <= s 1 && s 1 <= s 2)

let prop_parallel_agrees =
  QCheck2.Test.make ~name:"parallel exploration = sequential exploration" ~count:40
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let seq_r = explore ~max_states:1_000_000 ~d:1 tab in
      (* only compare non-truncated runs: budgets are checked at different
         granularities *)
      QCheck2.assume (not seq_r.stats.truncated);
      let par_r =
        P_checker.Parallel.explore ~domains:2 ~delay_bound:1 ~max_states:1_000_000 tab
      in
      (* states match exactly; the work-stealing engine expands each state
         exactly once at its minimal delay budget, so its transition count
         is at most the sequential one (which re-expands states first
         reached at a higher budget) *)
      seq_r.stats.states = par_r.stats.states
      && par_r.stats.transitions <= seq_r.stats.transitions
      && (seq_r.verdict = P_checker.Search.No_error)
         = (par_r.verdict = P_checker.Search.No_error))

let prop_erasure_idempotent =
  QCheck2.Test.make ~name:"erasure is idempotent and removes all ghosts" ~count:100
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let e1 = P_static.Erasure.erase tab in
      let tab1 = P_static.Check.run_exn e1 in
      let e2 = P_static.Erasure.erase tab1 in
      List.for_all (fun (m : Ast.machine) -> not m.machine_ghost) e1.machines
      && String.equal
           (Pretty.program_to_string e1)
           (Pretty.program_to_string e2))

let prop_compile_total =
  QCheck2.Test.make ~name:"compilation is total on clean programs" ~count:100
    gen_program (fun p ->
      match P_compile.Compile.compile p with
      | { driver; _ } ->
        String.length (P_compile.C_emit.emit driver) > 0
        && String.length (P_compile.Dot_emit.emit p) > 0
      | exception P_compile.Compile.Error _ -> false)

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse ∘ print is the identity (rich programs)" ~count:150
    gen_program (fun p ->
      let printed = Pretty.program_to_string p in
      let p2 = P_parser.Parser.program_of_string printed in
      String.equal printed (Pretty.program_to_string p2))

let prop_digest_stable =
  QCheck2.Test.make ~name:"state digests are stable across encoders" ~count:60
    gen_program (fun p ->
      let tab = P_static.Check.run_exn p in
      let c1 = P_checker.Canon.create tab in
      let c2 = P_checker.Canon.create tab in
      let config, id0, _ = P_semantics.Step.initial_config tab in
      String.equal
        (P_checker.Canon.digest c1 config [ P_semantics.Mid.to_int id0 ])
        (P_checker.Canon.digest c2 config [ P_semantics.Mid.to_int id0 ]))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generated_programs_clean;
      prop_simulator_total;
      prop_checker_total_and_deterministic;
      prop_states_monotone_in_delay_bound;
      prop_parallel_agrees;
      prop_erasure_idempotent;
      prop_compile_total;
      prop_roundtrip;
      prop_digest_stable ]
