lib/syntax/loc.mli: Fmt
