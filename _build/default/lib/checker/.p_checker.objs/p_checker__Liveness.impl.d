lib/checker/liveness.ml: Array Canon Dynarray Fmt Hashtbl List Names Option P_semantics P_static P_syntax Queue Search
