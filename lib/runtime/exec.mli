(** The execution engine of the P runtime: an independent, mutable,
    table-driven implementation of the operational semantics structured
    like the C runtime of section 4. Run-to-completion: a send to an idle
    machine runs the receiver nested on the same thread (exactly the d = 0
    causal schedule); a send to a busy machine only enqueues. The runtime
    lock protects instance bookkeeping and inboxes but is never held while
    machine code runs, so host threads drive disjoint machines in
    parallel. Most callers use the {!Api} wrapper. *)

module Tables = P_compile.Tables

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise {!Runtime_error}. *)

type foreign_fn = Context.t -> Rt_value.t list -> Rt_value.t

(** Metric handles resolved once by {!set_metrics}: [runtime.sends],
    [runtime.dequeues], [runtime.creates] counters and the
    [runtime.queue_len_hwm] inbox high-water gauge. *)
type rt_meters = {
  rm_sends : P_obs.Metrics.counter;
  rm_dequeues : P_obs.Metrics.counter;
  rm_creates : P_obs.Metrics.counter;
  rm_queue_hwm : P_obs.Metrics.gauge;
}

type t = {
  driver : Tables.driver;
  instances : (int, Context.t) Hashtbl.t;
  mutable next_handle : int;
  foreigns : (string, foreign_fn) Hashtbl.t;
  lock : Mutex.t;
  mutable trace_hook : (Rt_trace.item -> unit) option;
  mutable meters : rt_meters option;
}

val create : Tables.driver -> t

(** Point the runtime at a metrics registry; [None] (the initial state)
    turns metrics off and makes every instrumented point a cheap
    option-match. *)
val set_metrics : t -> P_obs.Metrics.t option -> unit
val register_foreign : t -> string -> foreign_fn -> unit
val find_instance : t -> int -> Context.t option

val create_instance : t -> creator:int option -> int -> Context.t
(** Allocate and register an instance of machine type [ty] (by index); the
    entry statement is on its agenda but has not run. *)

val deliver : t -> src:int -> int -> int -> Rt_value.t -> unit
(** [deliver rt ~src dst event payload]: enqueue with [⊕]; if [dst] is
    idle, claim it and run it to completion on this thread. *)

val run_if_idle : t -> Context.t -> unit
(** Claim-and-drain: run the machine if no other thread holds it,
    re-checking for events that race in while finishing. *)

val run_machine : t -> Context.t -> unit
(** One drain pass (no claim); internal, exposed for tests. *)
