(** Configuration of a single machine instance: the paper's [(σ, s, S, q)] —
    call stack with inherited handler maps, variable store, remaining
    statement (as an explicit task agenda), and input queue. Frames carry a
    saved continuation for the [call n'] statement; when a pushed state is
    popped by an unhandled event (POP1) the continuation is discarded. *)

open P_syntax

(** The inherited handler map [a] at one event: [Defer] is the paper's [T],
    [Do a] an inherited action binding; absence from the map is [⊥]. *)
type handler = Defer | Do of Names.Action.t

val handler_equal : handler -> handler -> bool

type task =
  | Exec of Ast.stmt  (** execute a statement *)
  | Handle of Names.Event.t * Value.t  (** the dynamic [raise(e, v)] *)
  | Pop_return  (** the dynamic [return']: pop, resume saved continuation *)
  | Pop_frame  (** pop during unhandled-event propagation (exit already run) *)
  | Enter of Names.State.t  (** finish a step transition: swap state, run entry *)

type frame = {
  fr_state : Names.State.t;
  fr_amap : handler Names.Event.Map.t;
  fr_cont : task list;  (** caller agenda resumed when this frame pops via return *)
}

type t = {
  name : Names.Machine.t;
  self : Mid.t;
  frames : frame list;  (** top of the call stack first *)
  store : Value.t Names.Var.Map.t;
  msg : Names.Event.t option;  (** the special variable [msg] *)
  arg : Value.t;  (** the special variable [arg] *)
  agenda : task list;
  queue : Equeue.t;
  mutable digest_memo : string;
      (** scratch slot owned by [P_checker.Fingerprint]: the canonical
          per-machine digest of this exact value, [""] when not yet
          computed. Not semantic state — ignored by {!compare} and reset
          by [Config.update] on every (re)binding, so a non-empty memo is
          only ever carried by a physically shared, untouched machine. *)
  mutable shape_memo : string;
      (** second scratch slot with the same ownership and invalidation
          rules: the machine's identity-blind shape digest (machine ids
          masked in the encoding), used by symmetry reduction to order
          same-type machines without re-encoding them per state. *)
}

val create :
  name:Names.Machine.t ->
  self:Mid.t ->
  initial:Names.State.t ->
  entry:Ast.stmt ->
  store:Value.t Names.Var.Map.t ->
  t
(** Fresh configuration entering the initial state; the entry statement is
    placed on the agenda. *)

val top_frame : t -> frame option
val current_state : t -> Names.State.t option

val effective_deferred : P_static.Symtab.machine_info -> t -> Names.Event.Set.t
(** The DEQUEUE rule's set [d' = (d ∪ Deferred(m,n)) − t]: inherited plus
    declared deferrals, minus events with a transition or action here. *)

val can_dequeue : P_static.Symtab.machine_info -> t -> bool

val is_enabled : P_static.Symtab.machine_info -> t -> bool
(** [en(m)]: a nonempty agenda or a dequeuable event. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
