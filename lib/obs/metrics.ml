(** The metrics registry: named counters, gauges, and histograms with
    labels, sharded per domain so the multicore explorer's workers never
    contend on a cache line.

    Shard discipline: each (metric, domain) pair owns a private cell.
    Updates touch only the caller's own cell and take no lock; the one
    synchronised operation is the first update from a new domain, which
    registers its cell under the metric's mutex. Reads ([value], [snapshot],
    [dump]) merge the cells: exact once the writing domains have joined
    (the parallel explorer reads after [Domain.join]), monotonically
    slightly stale while they are still running — fine for progress
    heartbeats.

    Merge rules: counters and histograms sum across shards; gauges take the
    maximum, which makes them high-water marks under concurrency (the only
    gauge semantics that merges meaningfully without a coordination
    point — and exactly what queue-depth and frontier-depth tracking
    want). *)

(* One domain's shard of one metric. Counters use [count]; gauges use
   [value]; histograms use [count]/[sum]/[max]/[buckets]. *)
type cell = {
  mutable count : int;
  mutable sum : float;
  mutable vmax : float;
  mutable value : float;
  buckets : int array;  (* one slot per upper bound, plus overflow *)
}

type kind = Counter | Gauge | Histogram

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  kind : kind;
  bounds : float array;  (* histogram bucket upper bounds; [||] otherwise *)
  mutable cells : (int * cell) list;  (* domain id -> cell; prepend-only *)
  lock : Mutex.t;
}

type t = {
  table : (string * (string * string) list, metric) Hashtbl.t;
  reg_lock : Mutex.t;
}

type counter = metric
type gauge = metric
type histogram = metric

let create () = { table = Hashtbl.create 64; reg_lock = Mutex.create () }

(** Seconds-scale latency buckets, 1µs .. 10s. *)
let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let new_cell bounds =
  { count = 0;
    sum = 0.0;
    vmax = neg_infinity;
    value = 0.0;
    buckets = Array.make (Array.length bounds + 1) 0 }

(* Find or register a metric. Registration is idempotent: asking again with
   the same name and labels returns the same metric, so engines can resolve
   handles cheaply at [explore] entry and hot loops touch only cells. *)
let intern (t : t) kind ?(labels = []) ?(buckets = default_buckets) name : metric =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let key = (name, labels) in
  Mutex.lock t.reg_lock;
  let m =
    match Hashtbl.find_opt t.table key with
    | Some m ->
      if m.kind <> kind then begin
        Mutex.unlock t.reg_lock;
        invalid_arg (Fmt.str "Metrics: %s re-registered with a different kind" name)
      end;
      m
    | None ->
      let m =
        { name;
          labels;
          kind;
          bounds = (match kind with Histogram -> buckets | _ -> [||]);
          cells = [];
          lock = Mutex.create () }
      in
      Hashtbl.replace t.table key m;
      m
  in
  Mutex.unlock t.reg_lock;
  m

let counter t ?labels name : counter = intern t Counter ?labels name
let gauge t ?labels name : gauge = intern t Gauge ?labels name

let histogram t ?labels ?buckets name : histogram =
  intern t Histogram ?labels ?buckets name

(* The caller domain's cell, registering it on first use. The fast path is a
   lock-free scan of the (short, prepend-only) shard list. *)
let cell_for (m : metric) : cell =
  let did = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | (d, c) :: rest -> if d = did then Some c else find rest
  in
  match find m.cells with
  | Some c -> c
  | None ->
    Mutex.lock m.lock;
    let c =
      match find m.cells with
      | Some c -> c
      | None ->
        let c = new_cell m.bounds in
        m.cells <- (did, c) :: m.cells;
        c
    in
    Mutex.unlock m.lock;
    c

(* ------------------------------------------------------------------ *)
(* Updates (hot paths)                                                 *)
(* ------------------------------------------------------------------ *)

let incr (c : counter) =
  let cell = cell_for c in
  cell.count <- cell.count + 1

let add (c : counter) n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  let cell = cell_for c in
  cell.count <- cell.count + n

let set (g : gauge) v =
  let cell = cell_for g in
  cell.value <- v

let set_max (g : gauge) v =
  let cell = cell_for g in
  if v > cell.value then cell.value <- v

let observe (h : histogram) v =
  let cell = cell_for h in
  cell.count <- cell.count + 1;
  cell.sum <- cell.sum +. v;
  if v > cell.vmax then cell.vmax <- v;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  cell.buckets.(i) <- cell.buckets.(i) + 1

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let counter_value (c : counter) : int =
  List.fold_left (fun acc (_, cell) -> acc + cell.count) 0 c.cells

let gauge_value (g : gauge) : float =
  match g.cells with
  | [] -> 0.0
  | cells -> List.fold_left (fun acc (_, cell) -> Float.max acc cell.value) neg_infinity cells

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;  (** largest observation; [nan] when empty *)
  h_buckets : (float * int) list;
      (** (upper bound, observations ≤ bound), non-cumulative; the final
          entry has bound [infinity] *)
}

let histogram_summary (h : histogram) : histogram_summary =
  let n = Array.length h.bounds in
  let buckets = Array.make (n + 1) 0 in
  let count = ref 0 and sum = ref 0.0 and vmax = ref neg_infinity in
  List.iter
    (fun (_, cell) ->
      count := !count + cell.count;
      sum := !sum +. cell.sum;
      if cell.vmax > !vmax then vmax := cell.vmax;
      Array.iteri (fun i b -> buckets.(i) <- buckets.(i) + b) cell.buckets)
    h.cells;
  { h_count = !count;
    h_sum = !sum;
    h_max = (if !count = 0 then Float.nan else !vmax);
    h_buckets =
      List.init (n + 1) (fun i ->
          ((if i < n then h.bounds.(i) else infinity), buckets.(i))) }

let shard_count (m : metric) = List.length m.cells

(* Per-domain counter cells, oldest registration first ([cells] is
   prepend-only, so reverse it). Racy-but-safe like every read: exact once
   the writing domains have joined. *)
let counter_per_domain (m : counter) : int list =
  List.rev_map (fun ((_ : int), c) -> c.count) m.cells

type summary =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_summary

let metric_summary (m : metric) : summary =
  match m.kind with
  | Counter -> Counter_v (counter_value m)
  | Gauge -> Gauge_v (gauge_value m)
  | Histogram -> Histogram_v (histogram_summary m)

let snapshot (t : t) : (string * (string * string) list * summary) list =
  Mutex.lock t.reg_lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) t.table [] in
  Mutex.unlock t.reg_lock;
  metrics
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))
  |> List.map (fun m -> (m.name, m.labels, metric_summary m))

let json_of_summary = function
  | Counter_v n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_v h ->
    Json.Obj
      [ ("type", Json.String "histogram");
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
        ( "buckets",
          Json.List
            (List.map
               (fun (ub, n) ->
                 Json.Obj
                   [ ( "le",
                       if ub = infinity then Json.String "+inf" else Json.Float ub );
                     ("count", Json.Int n) ])
               h.h_buckets) ) ]

let dump (t : t) : Json.t =
  Json.List
    (List.map
       (fun (name, labels, s) ->
         let base =
           [ ("name", Json.String name) ]
           @ (if labels = [] then []
              else
                [ ( "labels",
                    Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels) ) ])
         in
         match json_of_summary s with
         | Json.Obj fields -> Json.Obj (base @ fields)
         | j -> Json.Obj (base @ [ ("value", j) ]))
       (snapshot t))

(** Look a counter total up by name across all label sets (sum). *)
let counter_total (t : t) name : int =
  Mutex.lock t.reg_lock;
  let total =
    Hashtbl.fold
      (fun (n, _) m acc -> if String.equal n name then acc + counter_value m else acc)
      t.table 0
  in
  Mutex.unlock t.reg_lock;
  total

(** Look a gauge up by name across all label sets (max — the gauges' merge
    rule). [0.0] when absent or never set; the telemetry ticker reads
    engine gauges this way without knowing their label sets. *)
let gauge_max (t : t) name : float =
  Mutex.lock t.reg_lock;
  let v =
    Hashtbl.fold
      (fun (n, _) m acc ->
        if String.equal n name && m.kind = Gauge then Float.max acc (gauge_value m)
        else acc)
      t.table 0.0
  in
  Mutex.unlock t.reg_lock;
  v
