(** Incremental state fingerprinting for the exploration engines' seen
    sets.

    [Full] is the historical behavior: every query re-encodes the whole
    configuration through {!Canon.digest}. [Incremental] memoises a
    {!Canon.machine_digest} per *physical* machine value, in the machine's
    own [digest_memo] slot — sound because every rebuilt machine enters a
    configuration through [Config.update], which resets the slot, while
    {!P_semantics.Step.run_atomic} physically shares every machine it did
    not touch — and combines the memoised per-machine digests with
    [next_id], the live count, and the scheduler extra, making a successor
    fingerprint O(machines-changed) encoding work instead of
    O(state-size). [Paranoid] computes both, returns the full digest (a
    paranoid run explores exactly what a [Full] run does), and counts any
    break of the incremental↔full bijection in {!collisions}.

    Within one mode, equal fingerprints mean equal states up to MD5
    collision, exactly like [Canon.digest]; fingerprints from different
    modes are not comparable. Like {!Canon.t}, a fingerprint is stateful
    and single-domain: use one per worker (digests are canonical, so
    separate instances produce identical keys). *)

type mode = Full | Incremental | Paranoid

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

type t

val create : ?mode:mode -> P_static.Symtab.t -> t
(** [create tab] builds a fingerprint context (default mode
    [Incremental]). The per-machine memo lives inside the machine values
    themselves, so separate contexts (e.g. one per parallel worker) share
    it; each context keeps its own hit/miss/collision counters. *)

val mode : t -> mode

val renaming : t -> P_semantics.Config.t -> (int -> int) option
(** Symmetry reduction's canonical permutation of machine identifiers for
    this configuration, or [None] when it is already canonical. The live
    identifiers (sorted) are handed out in first-visit order of a
    breadth-first walk over the machine-reference graph from the root
    machine, reseeded at orphans by a memoised identity-blind shape
    digest; dangling identifiers stay fixed. Equal canonical keys witness
    isomorphic configurations for any such permutation — the traversal
    choice only decides how many actually merge. Pass the result as
    [?rename] to {!digest}/{!digest_int} (and apply it yourself to any
    scheduler [extra] integers that denote machine identifiers). *)

val digest :
  ?rename:(int -> int) -> t -> P_semantics.Config.t -> int list -> string
(** [digest t config extra]: the state key of [config] plus the scheduler
    [extra] integers, per the context's mode. With [?rename] the key is
    that of the π-renamed configuration; the per-machine memo is bypassed
    (it caches identity-renamed digests), but the key equals what the
    same context would produce for the materialized canonical
    configuration — renamed and identity keys of isomorphic states
    collide, which is the whole point. *)

val digest_int :
  ?rename:(int -> int) -> t -> P_semantics.Config.t -> int list -> int
(** A 63-bit integer fingerprint of the same state key, for the arena
    state stores ({!State_store}): [Incremental] streams the memoised
    per-machine digests straight into a FNV-1a hash with no per-state
    string; [Full]/[Paranoid] hash the canonical digest string (paranoid
    keeps its bijection check). Same mode caveat as {!digest}: integer
    and string fingerprints of different modes are not comparable, and
    within a store one run uses one of the two key forms throughout. *)

val requests : t -> int
(** Per-machine digest lookups made through this context (incremental and
    paranoid modes). Every request is counted as exactly one of {!hits} or
    {!misses}, so [hits t + misses t = requests t] per context — and
    because the engines keep one context per worker domain and sum them,
    the identity also holds for the merged [checker.fp_*] metrics of a
    multi-domain run. *)

val hits : t -> int
(** Per-machine memo hits served so far (incremental and paranoid). Under
    the parallel engine another worker may fill a memo concurrently; a
    race only moves a request between this context's {!hits} and
    {!misses}, never out of their sum. *)

val misses : t -> int
(** Per-machine encodings that had to be computed. *)

val collisions : t -> int
(** Paranoid mode only: incremental↔full bijection violations observed.
    Anything other than zero indicates an MD5 collision or a stale cache
    entry. *)
