(** Structured trace sinks. Two on-disk formats share one emit API:

    - [chrome]: the Chrome [trace_event] JSON format — an object with a
      ["traceEvents"] array — loadable in chrome://tracing and Perfetto.
      Events are streamed as written; [close] finishes the document.
    - [jsonl]: one JSON object per line, for ad-hoc tooling (jq etc.).

    The default sink is [null]: every emit is a no-op and [with_span] calls
    its thunk directly, without even reading the clock, so instrumented code
    paths cost nothing when tracing is off. *)

type arg = string * Json.t

type chrome = { c_oc : out_channel; mutable c_first : bool; mutable c_closed : bool }
type jsonl = { j_oc : out_channel; mutable j_closed : bool }

type t = Null | Chrome of chrome | Jsonl of jsonl

let null = Null

let enabled = function Null -> false | Chrome _ | Jsonl _ -> true

(** The process id recorded on events; trace viewers group by it. *)
let pid = 1

let chrome oc =
  output_string oc "{\"traceEvents\":[";
  Chrome { c_oc = oc; c_first = true; c_closed = false }

let jsonl oc = Jsonl { j_oc = oc; j_closed = false }

(* One trace_event record. [ph] is the Chrome phase letter: "i" instant,
   "X" complete (with dur), "C" counter, "M" metadata. *)
let event_json ~name ~cat ~ph ~ts_us ?dur_us ?(tid = 0) ?(args = []) () : Json.t =
  Json.Obj
    ([ ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", Json.Float ts_us);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid) ]
    @ (match dur_us with None -> [] | Some d -> [ ("dur", Json.Float d) ])
    @ (if ph = "i" then [ ("s", Json.String "t") ] else [])
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let emit t j =
  match t with
  | Null -> ()
  | Chrome c ->
    if c.c_closed then invalid_arg "Sink: emit after close";
    if c.c_first then c.c_first <- false else output_char c.c_oc ',';
    output_string c.c_oc (Json.to_string j);
    output_char c.c_oc '\n'
  | Jsonl s ->
    if s.j_closed then invalid_arg "Sink: emit after close";
    output_string s.j_oc (Json.to_string j);
    output_char s.j_oc '\n'

let instant t ?(cat = "event") ?tid ?args ~name ~ts_us () =
  if enabled t then emit t (event_json ~name ~cat ~ph:"i" ~ts_us ?tid ?args ())

let complete t ?(cat = "span") ?tid ?args ~name ~ts_us ~dur_us () =
  if enabled t then emit t (event_json ~name ~cat ~ph:"X" ~ts_us ~dur_us ?tid ?args ())

let counter t ?(cat = "metric") ?tid ~name ~ts_us ~values () =
  if enabled t then
    emit t
      (event_json ~name ~cat ~ph:"C" ~ts_us ?tid
         ~args:(List.map (fun (k, v) -> (k, Json.Float v)) values)
         ())

(** Name a timeline lane: the Chrome [thread_name] metadata record, so a
    per-domain trace renders as "worker 0", "worker 1", … instead of bare
    tids. *)
let thread_name t ~tid name =
  if enabled t then
    emit t
      (Json.Obj
         [ ("name", Json.String "thread_name");
           ("ph", Json.String "M");
           ("pid", Json.Int pid);
           ("tid", Json.Int tid);
           ("args", Json.Obj [ ("name", Json.String name) ]) ])

(** Write an arbitrary record. On a [jsonl] sink this is one line of the
    stream (the telemetry time series uses it); on a [chrome] sink the
    object lands in the [traceEvents] array, so it should carry a [ph]
    field if a viewer is meant to render it. *)
let raw t j = if enabled t then emit t j

(** Time a thunk and record it as a complete span. The [Null] sink runs the
    thunk directly without touching the clock. *)
let with_span t ?cat ?tid ?(args = []) ~name f =
  match t with
  | Null -> f ()
  | _ ->
    let t0 = Mclock.now_us () in
    let finally () = complete t ?cat ?tid ~args ~name ~ts_us:t0 ~dur_us:(Mclock.now_us () -. t0) () in
    Fun.protect ~finally f

(** Finish the document (chrome: close the JSON array and object) and flush.
    The underlying channel stays open — the opener closes it. *)
let close = function
  | Null -> ()
  | Chrome c ->
    if not c.c_closed then begin
      c.c_closed <- true;
      output_string c.c_oc "],\"displayTimeUnit\":\"ms\"}\n";
      flush c.c_oc
    end
  | Jsonl s ->
    if not s.j_closed then begin
      s.j_closed <- true;
      flush s.j_oc
    end
