lib/examples_lib/bounded_buffer.mli: P_syntax
