(** The sampling ticker. Callers (the engines' tick points) already
    count-gate, so [tick] goes straight to the clock: one monotonic read
    decides whether [interval_us] has passed. Sampling itself is guarded
    by a try-lock — concurrent tickers (property tests hammer this) never
    block, one of them just takes the sample. *)

type sample = {
  ts_us : float;
  elapsed_s : float;
  states : int;
  transitions : int;
  states_per_s : float;
  transitions_per_s : float;
  frontier : float;
  steals : int;
  steal_attempts : int;
  steal_success_rate : float;
  alloc_mb : float;
  bytes_per_state : float;
  heap_mb : float;
  store_mb : float;
  store_bytes_per_state : float;
  shed : int;
}

type probe = {
  states : int;
  transitions : int;
  frontier : float;
  steals : int;
  steal_attempts : int;
  store_bytes : int;
  shed : int;
}

type state = {
  interval_us : float;
  sink : Sink.t;
  on_sample : (sample -> unit) option;
  lock : Mutex.t;
  t0_us : float;
  alloc0_w : float;  (* allocated words at create, sampling-domain scope *)
  mutable probe : (unit -> probe) option;
  mutable last_us : float;  (* last sample time *)
  mutable last_states : int;
  mutable last_transitions : int;
  mutable n_samples : int;
  mutable meta_done : bool;
  mutable extra_meta : (string * Json.t) list;
}

type t = Null | On of state

let null = Null
let enabled = function Null -> false | On _ -> true

let bytes_per_word = float_of_int (Sys.word_size / 8)

(* Words allocated so far, the usual minor + major − promoted identity.
   The minor term comes from [Gc.minor_words ()], which reads the live
   allocation pointer — [quick_stat]'s copy only advances at collection
   boundaries, so a run too short to trigger a minor collection would
   read 0 allocated. *)
let allocated_words () =
  let g = Gc.quick_stat () in
  Gc.minor_words () +. g.Gc.major_words -. g.Gc.promoted_words

let create ?(interval_us = 100_000.0) ?(sink = Sink.null) ?on_sample () =
  let t0 = Mclock.now_us () in
  On
    { interval_us;
      sink;
      on_sample;
      lock = Mutex.create ();
      t0_us = t0;
      alloc0_w = allocated_words ();
      probe = None;
      last_us = t0;
      last_states = 0;
      last_transitions = 0;
      n_samples = 0;
      meta_done = false;
      extra_meta = [] }

let set_probe t f = match t with Null -> () | On s -> s.probe <- Some f
let set_meta t kv = match t with Null -> () | On s -> s.extra_meta <- s.extra_meta @ kv

let emit_meta (s : state) =
  if not s.meta_done then begin
    s.meta_done <- true;
    if Sink.enabled s.sink then
      Sink.raw s.sink
        (Json.Obj
           ([ ("type", Json.String "meta");
              ("schema", Json.String "p-telemetry/1");
              ("interval_us", Json.Float s.interval_us);
              ("alloc_scope", Json.String "sampling-domain");
              ("machine", Machine_info.json ()) ]
           @ s.extra_meta))
  end

let json_of_sample (x : sample) =
  Json.Obj
    [ ("type", Json.String "sample");
      ("ts_us", Json.Float x.ts_us);
      ("elapsed_s", Json.Float x.elapsed_s);
      ("states", Json.Int x.states);
      ("transitions", Json.Int x.transitions);
      ("states_per_s", Json.Float x.states_per_s);
      ("transitions_per_s", Json.Float x.transitions_per_s);
      ("frontier", Json.Float x.frontier);
      ("steals", Json.Int x.steals);
      ("steal_attempts", Json.Int x.steal_attempts);
      ("steal_success_rate", Json.Float x.steal_success_rate);
      ("alloc_mb", Json.Float x.alloc_mb);
      ("bytes_per_state", Json.Float x.bytes_per_state);
      ("heap_mb", Json.Float x.heap_mb);
      ("store_mb", Json.Float x.store_mb);
      ("store_bytes_per_state", Json.Float x.store_bytes_per_state);
      ("shed", Json.Int x.shed) ]

(* Take one sample. Caller holds [s.lock]. *)
let sample_locked (s : state) now =
  match s.probe with
  | None -> ()
  | Some probe ->
    emit_meta s;
    let p = probe () in
    let dt_s = (now -. s.last_us) /. 1e6 in
    let rate cur last = if dt_s > 0.0 then float_of_int (cur - last) /. dt_s else 0.0 in
    let g = Gc.quick_stat () in
    let alloc_w = Gc.minor_words () +. g.Gc.major_words -. g.Gc.promoted_words -. s.alloc0_w in
    let alloc_b = alloc_w *. bytes_per_word in
    let x =
      { ts_us = now;
        elapsed_s = (now -. s.t0_us) /. 1e6;
        states = p.states;
        transitions = p.transitions;
        states_per_s = rate p.states s.last_states;
        transitions_per_s = rate p.transitions s.last_transitions;
        frontier = p.frontier;
        steals = p.steals;
        steal_attempts = p.steal_attempts;
        steal_success_rate =
          (if p.steal_attempts = 0 then 0.0
           else float_of_int p.steals /. float_of_int p.steal_attempts);
        alloc_mb = alloc_b /. 1e6;
        bytes_per_state = (if p.states = 0 then 0.0 else alloc_b /. float_of_int p.states);
        heap_mb = float_of_int g.Gc.heap_words *. bytes_per_word /. 1e6;
        store_mb = float_of_int p.store_bytes /. 1e6;
        store_bytes_per_state =
          (if p.states = 0 then 0.0
           else float_of_int p.store_bytes /. float_of_int p.states);
        shed = p.shed }
    in
    s.last_us <- now;
    s.last_states <- p.states;
    s.last_transitions <- p.transitions;
    s.n_samples <- s.n_samples + 1;
    Sink.raw s.sink (json_of_sample x);
    match s.on_sample with None -> () | Some f -> f x

let tick t =
  match t with
  | Null -> ()
  | On s ->
    if s.probe <> None then begin
      let now = Mclock.now_us () in
      if now -. s.last_us >= s.interval_us && Mutex.try_lock s.lock then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock s.lock)
          (fun () -> if now -. s.last_us >= s.interval_us then sample_locked s now)
    end

let force t =
  match t with
  | Null -> ()
  | On s ->
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () -> sample_locked s (Mclock.now_us ()))

let samples_taken = function Null -> 0 | On s -> s.n_samples
