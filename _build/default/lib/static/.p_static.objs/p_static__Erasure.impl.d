lib/static/erasure.ml: Ast Ghost List P_syntax Symtab
