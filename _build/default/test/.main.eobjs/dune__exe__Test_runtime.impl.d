test/test_runtime.ml: Alcotest Astring_contains Hashtbl List P_compile P_examples_lib P_runtime Thread
