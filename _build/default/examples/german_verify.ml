(* German's cache coherence protocol (the third Figure 7 benchmark):
   verify the coherence invariant at the directory under increasing delay
   bounds and show the seeded owner-invalidation bug being found at d=0.

   Run with: dune exec examples/german_verify.exe *)

let () =
  let symtab = P_static.Check.run_exn (P_examples_lib.German.program ()) in
  Fmt.pr "=== German protocol (3 clients + directory) ===@.";
  List.iter
    (fun d ->
      let r = P_checker.Delay_bounded.explore ~delay_bound:d ~max_states:300_000 symtab in
      Fmt.pr "  d=%-2d %a@." d P_checker.Search.pp_result r)
    [ 0; 1; 2 ];

  Fmt.pr "@.=== seeded bug: ServeE forgets to invalidate the owner ===@.";
  let buggy = P_static.Check.run_exn (P_examples_lib.German.buggy_program ()) in
  let r = P_checker.Delay_bounded.explore ~delay_bound:0 ~max_states:300_000 buggy in
  Fmt.pr "  d=0  %a@." P_checker.Search.pp_result r;
  match r.verdict with
  | P_checker.Search.Error_found ce ->
    Fmt.pr "@.last steps of the counterexample:@.";
    let n = List.length ce.trace in
    List.iteri
      (fun i it -> if i >= n - 10 then Fmt.pr "  %a@." P_semantics.Trace.pp_item it)
      ce.trace
  | P_checker.Search.No_error -> Fmt.pr "  (unexpected: bug not found)@."
