(** Structured trace sinks: Chrome [trace_event] JSON (chrome://tracing,
    Perfetto) and JSONL. The default {!null} sink makes every emit a no-op
    and {!with_span} call its thunk directly — instrumentation is free when
    tracing is off. *)

type arg = string * Json.t

type t

val null : t
val enabled : t -> bool

val chrome : out_channel -> t
(** Start a [{"traceEvents":[…]}] document on the channel. Events stream as
    emitted; call {!close} to finish the document. *)

val jsonl : out_channel -> t
(** One JSON object per line. *)

val instant :
  t -> ?cat:string -> ?tid:int -> ?args:arg list -> name:string -> ts_us:float ->
  unit -> unit
(** A point event ([ph:"i"], thread scope). Timestamps are microseconds. *)

val complete :
  t -> ?cat:string -> ?tid:int -> ?args:arg list -> name:string -> ts_us:float ->
  dur_us:float -> unit -> unit
(** A span with an explicit duration ([ph:"X"]). *)

val counter :
  t -> ?cat:string -> ?tid:int -> name:string -> ts_us:float ->
  values:(string * float) list -> unit -> unit
(** A counter sample ([ph:"C"]); viewers chart each key as a series. *)

val thread_name : t -> tid:int -> string -> unit
(** Chrome [thread_name] metadata: label the [tid] lane (e.g. "worker 3")
    in trace viewers. *)

val raw : t -> Json.t -> unit
(** Write one record verbatim: a line on a [jsonl] sink (the telemetry
    time series), an element of the [traceEvents] array on a [chrome]
    sink. No-op on {!null}. *)

val with_span :
  t -> ?cat:string -> ?tid:int -> ?args:arg list -> name:string -> (unit -> 'a) -> 'a
(** Time a thunk on the monotonic clock and record it as a complete span
    (even if it raises). On {!null}, runs the thunk without clock reads. *)

val close : t -> unit
(** Finish the document and flush. The channel itself stays open; whoever
    opened it closes it. Idempotent. *)
