(** Producer/consumer over a credit-based bounded buffer; demonstrates the
    paper's counter-in-the-payload idiom for the [⊕] dedup append and
    deferral under back-pressure. *)

val events : P_syntax.Ast.event_decl list
val producer : items:int -> credits:int -> P_syntax.Ast.machine
val consumer : P_syntax.Ast.machine

val program : ?items:int -> ?credits:int -> unit -> P_syntax.Ast.program

val buggy_program : ?items:int -> ?credits:int -> unit -> P_syntax.Ast.program
(** The producer reuses one sequence number, so [⊕] swallows an in-flight
    item and the ordering assertion fails — the very hazard the counter
    idiom prevents. *)
