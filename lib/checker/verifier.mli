(** One-call verification front end: static checks, delay-bounded safety
    search, and optionally the liveness checks — the OCaml counterpart of
    the paper's "compile to Zing and explore" pipeline. *)

type report = {
  static_diagnostics : P_static.Symtab.diagnostic list;
  safety : Search.result option;  (** [None] when static checking failed *)
  liveness : Liveness.result option;
      (** [None] unless requested and the safety search was clean *)
  seed : int option;
      (** the PRNG seed when the safety search sampled ghost choices
          ([verify ?seed]); recorded so a failure is reproducible *)
  domains : int option;
      (** how many domains the safety search ran across ([verify
          ?domains]); [None] for the sequential engine *)
  faults : P_semantics.Fault.plan option;
      (** the fault-injection plan the safety search ran under ([verify
          ?faults]); [None] for a well-behaved host *)
}

val is_clean : report -> bool
(** No static diagnostics, no safety error, no liveness violation. *)

val pp_report : report Fmt.t

val verify :
  ?delay_bound:int ->
  ?max_states:int ->
  ?liveness:bool ->
  ?liveness_max_states:int ->
  ?fingerprint:Fingerprint.mode ->
  ?store:State_store.kind ->
  ?store_capacity:int ->
  ?reduce:Reduce.t ->
  ?seed:int ->
  ?domains:int ->
  ?faults:P_semantics.Fault.plan ->
  ?instr:Search.instr ->
  P_syntax.Ast.program ->
  report
(** [verify program] runs the full pipeline with [delay_bound] (default 2)
    and a [max_states] budget (default 200000); [liveness:true] adds the
    responsiveness checks of section 3.2. [fingerprint] selects the safety
    search's state-key strategy (default [Incremental]; [Paranoid]
    cross-checks the incremental cache against full re-encoding). [store]
    picks the safety search's seen-set representation (default [Exact];
    see {!State_store}), [store_capacity] overrides the arena sizing.
    [reduce] (default {!Reduce.none}) applies sleep-set POR and/or
    symmetry canonicalization to the safety search — same verdict kind,
    never more states; the liveness pass always explores unreduced (its
    fair-cycle analysis needs the full graph). [seed]
    switches the safety search from exhaustive ghost-choice enumeration to
    seeded sampling (one drawn resolution per block) and records the seed
    in the report, so a sampled failure is reproducible. [domains] runs
    the safety search on {!Parallel.explore} across that many domains
    instead of the sequential engine — verdicts, state counts, and any
    counterexample are unchanged (see {!Parallel}); the count is recorded
    in the report. [seed] and [domains] are mutually exclusive
    ([Invalid_argument]): sampled resolution draws from one shared PRNG.
    [faults] runs the safety search under deterministic fault injection
    (see {!P_semantics.Fault}): drops, duplicates, reorders, delays, and
    crash-restarts decided by a pure function of the plan's seed and the
    per-path fault index, so verdicts and counts are reproducible and
    domain-count independent. A plan with all-zero rates is normalized to
    [None]. [faults] with [liveness] or with sleep-set POR raises
    [Invalid_argument]. [instr] is threaded to the safety search and
    (when requested) the liveness analysis; with the default
    {!Search.no_instr} the pipeline behaves exactly as before. *)
