lib/host/os_events.ml: Fmt
