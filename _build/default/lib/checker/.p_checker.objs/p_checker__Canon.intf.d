lib/checker/canon.mli: P_semantics P_static
