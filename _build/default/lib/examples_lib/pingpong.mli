(** Quickstart example: two machines exchanging counted Ping/Pong events
    with an ordering invariant — the smallest closed P program exercising
    creation, payloads, assertion checking, and deletion. *)

val events : P_syntax.Ast.event_decl list
val ponger : P_syntax.Ast.machine
val pinger : rounds:int -> P_syntax.Ast.machine

val program : ?rounds:int -> unit -> P_syntax.Ast.program
(** Plays [rounds] (default 3) rounds, then the ponger deletes itself. *)

val buggy_program : ?rounds:int -> unit -> P_syntax.Ast.program
(** The invariant is made strict, failing on the first pong. *)
