(** Deterministic re-execution of recorded schedules through the
    operational semantics.

    A schedule — per atomic block, the machine that ran and the ghost [*]
    resolutions it consumed — pins down a run completely: the operational
    semantics has no other source of nondeterminism. Replaying is therefore
    just folding {!P_semantics.Step.run_atomic} over the schedule, checking
    at every step that what happens matches what the artifact promised
    (same error, same configuration fingerprints).

    The same core validates {!Shrink} candidates, where divergence is the
    expected common case: removing a step can orphan a machine creation,
    starve a queue, or desynchronise the ghost choices, and every such
    candidate is simply reported as {!Diverged} and discarded. *)

module Step = P_semantics.Step
module Config = P_semantics.Config
module Errors = P_semantics.Errors
module Trace = P_semantics.Trace
module Mid = P_semantics.Mid

type divergence =
  | Init_digest_mismatch of { expected : string; got : string }
      (** the initial configuration is not the one the trace was recorded
          from (different program, program version, or example) *)
  | Step_digest_mismatch of { step : int; expected : string; got : string }
      (** the configuration after [step] drifted from the recording *)
  | Unknown_machine of { step : int; mid : Mid.t }
      (** the schedule names a machine the configuration does not have
          (never created, or already deleted) *)
  | Choices_exhausted of { step : int; mid : Mid.t }
      (** the block evaluated more ghost [*] expressions than the recorded
          choice list supplies *)
  | Wrong_error of { step : int; expected : string; got : string }
  | Unexpected_error of { step : int; error : string }
      (** a clean trace hit an error configuration *)
  | No_error of { expected : string }
      (** the schedule ran out without reproducing the recorded error *)
  | Final_digest_mismatch of { expected : string; got : string }
  | Bad_header of { reason : string }
      (** the artifact's header cannot be honoured (e.g. an unparseable
          fault spec), so the schedule cannot even start *)

let pp_divergence ppf = function
  | Init_digest_mismatch { expected; got } ->
    Fmt.pf ppf "initial configuration mismatch: trace was recorded from %s, got %s"
      expected got
  | Step_digest_mismatch { step; expected; got } ->
    Fmt.pf ppf "configuration after step %d diverged: recorded %s, got %s" step
      expected got
  | Unknown_machine { step; mid } ->
    Fmt.pf ppf "step %d schedules machine %a, which does not exist" step Mid.pp mid
  | Choices_exhausted { step; mid } ->
    Fmt.pf ppf "step %d (machine %a) needs more ghost choices than recorded" step
      Mid.pp mid
  | Wrong_error { step; expected; got } ->
    Fmt.pf ppf "step %d failed with a different error: expected %s, got %s" step
      expected got
  | Unexpected_error { step; error } ->
    Fmt.pf ppf "clean trace hit an error at step %d: %s" step error
  | No_error { expected } ->
    Fmt.pf ppf "schedule completed without reproducing the error: %s" expected
  | Final_digest_mismatch { expected; got } ->
    Fmt.pf ppf "final configuration diverged: recorded %s, got %s" expected got
  | Bad_header { reason } -> Fmt.pf ppf "cannot honour trace header: %s" reason

type outcome =
  | Reproduced of { steps_used : int; error : string }
      (** the expected error re-occurred after [steps_used] atomic blocks
          (possibly fewer than the schedule has — early reproduction) *)
  | Clean of { steps_used : int; final_digest : string }
      (** a trace with no expected error replayed to the end *)
  | Diverged of divergence

let pp_outcome ppf = function
  | Reproduced { steps_used; error } ->
    Fmt.pf ppf "reproduced after %d step(s): %s" steps_used error
  | Clean { steps_used; final_digest } ->
    Fmt.pf ppf "clean after %d step(s), final state %s" steps_used final_digest
  | Diverged d -> Fmt.pf ppf "DIVERGED: %a" pp_divergence d

type result = {
  outcome : outcome;
  items : Trace.t;  (** chronological happenings of the whole replay *)
  final_config : Config.t option;
      (** the last configuration that exists: after the final block of a
          clean replay, or entering the failing block *)
}

(* ------------------------------------------------------------------ *)
(* Core fold                                                           *)
(* ------------------------------------------------------------------ *)

(** Fold a schedule through {!Step.run_atomic}. [check_step i config]
    vetoes the successor configuration of step [i] (digest checks);
    [expected_error] is the rendered error the schedule must end in, or
    [None] for a clean trace. *)
let run_schedule ?(dedup = true) ?faults ?check_step ?(expected_error = None)
    (tab : P_static.Symtab.t) (schedule : (Mid.t * bool list) list) : result =
  let config0, _main, items0 = Step.initial_config tab in
  let diverged config items_rev d =
    { outcome = Diverged d; items = List.rev items_rev; final_config = config }
  in
  let rec go i config items_rev = function
    | [] -> (
      let items = List.rev items_rev in
      match expected_error with
      | Some expected ->
        { outcome = Diverged (No_error { expected });
          items;
          final_config = Some config }
      | None ->
        { outcome = Clean { steps_used = i; final_digest = "" };
          items;
          final_config = Some config })
    | (mid, choices) :: rest ->
      if not (Config.mem config mid) then
        diverged (Some config) items_rev (Unknown_machine { step = i; mid })
      else (
        match Step.run_atomic ~dedup ?faults tab config mid ~choices with
        | Step.Need_more_choices, _ ->
          diverged (Some config) items_rev (Choices_exhausted { step = i; mid })
        | Step.Failed e, new_items -> (
          let items_rev = List.rev_append new_items items_rev in
          let got = Errors.to_string e in
          match expected_error with
          | Some expected when String.equal expected got ->
            { outcome = Reproduced { steps_used = i + 1; error = got };
              items = List.rev items_rev;
              final_config = Some config }
          | Some expected ->
            diverged (Some config) items_rev (Wrong_error { step = i; expected; got })
          | None ->
            diverged (Some config) items_rev (Unexpected_error { step = i; error = got })
          )
        | outcome, new_items -> (
          let items_rev = List.rev_append new_items items_rev in
          (* Progress, Blocked, or Terminated: all carry a successor. *)
          let config' = Option.get (Step.outcome_config outcome) in
          match Option.bind check_step (fun f -> f i config') with
          | Some d -> diverged (Some config') items_rev d
          | None -> go (i + 1) config' items_rev rest))
  in
  go 0 config0 (List.rev items0) schedule

(** Cheap validity check for {!Shrink} candidates: does this schedule still
    reproduce [expected_error]? No digest bookkeeping. *)
let reproduces ?(dedup = true) ?faults (tab : P_static.Symtab.t) ~expected_error
    schedule : int option =
  match
    (run_schedule ~dedup ?faults ~expected_error:(Some expected_error) tab schedule)
      .outcome
  with
  | Reproduced { steps_used; _ } -> Some steps_used
  | Clean _ | Diverged _ -> None

(* ------------------------------------------------------------------ *)
(* File replay                                                         *)
(* ------------------------------------------------------------------ *)

let schedule_of_trace (t : Trace_file.t) : (Mid.t * bool list) list =
  List.map (fun (s : Trace_file.step) -> (Mid.of_int s.mid, s.choices)) t.steps

let hex_digest canon config = Digest.to_hex (Canon.digest canon config [])

(** Replay a trace artifact against [tab], checking the verdict and (by
    default) every recorded fingerprint. The fault plan recorded in the
    header (if any) is re-installed, so fault decisions — keyed by the
    plan's seed and the per-path fault index — fire at exactly the same
    points as in the recording. *)
let run ?(check_digests = true) (tab : P_static.Symtab.t) (t : Trace_file.t) :
    result =
  match Trace_file.fault_plan t with
  | Error reason ->
    { outcome = Diverged (Bad_header { reason }); items = []; final_config = None }
  | Ok faults ->
  let canon = Canon.create tab in
  let config0, _main, _items = Step.initial_config tab in
  let init_hex = hex_digest canon config0 in
  if check_digests && t.init_digest <> "" && init_hex <> t.init_digest then
    { outcome =
        Diverged (Init_digest_mismatch { expected = t.init_digest; got = init_hex });
      items = [];
      final_config = None }
  else begin
    let digests = Array.of_list (List.map (fun (s : Trace_file.step) -> s.digest) t.steps) in
    let last_ok_hex = ref init_hex in
    let check_step =
      if not check_digests then None
      else
        Some
          (fun i config ->
            let got = hex_digest canon config in
            let recorded = if i < Array.length digests then digests.(i) else "" in
            if recorded <> "" && recorded <> got then
              Some (Step_digest_mismatch { step = i; expected = recorded; got })
            else begin
              last_ok_hex := got;
              None
            end)
    in
    let r =
      run_schedule ~dedup:t.dedup ?faults ?check_step ~expected_error:t.error tab
        (schedule_of_trace t)
    in
    match r.outcome with
    | Clean { steps_used; _ } ->
      let final_hex =
        match r.final_config with
        | Some c -> hex_digest canon c
        | None -> !last_ok_hex
      in
      if check_digests && t.final_digest <> "" && final_hex <> t.final_digest then
        { r with
          outcome =
            Diverged
              (Final_digest_mismatch { expected = t.final_digest; got = final_hex })
        }
      else { r with outcome = Clean { steps_used; final_digest = final_hex } }
    | Reproduced _ | Diverged _ -> r
  end

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(** Execute [schedule] and record it as a trace artifact, computing the
    per-step fingerprints the replayer will check. If the run fails, the
    artifact ends at the failing block (trailing schedule is dropped) and
    carries the rendered error; a run that completes cleanly records a
    clean trace. Recording itself diverging (bad machine, short choices)
    is an [Error]. *)
let record ?program ?seed ?faults ?(dedup = true) ~engine
    (tab : P_static.Symtab.t) (schedule : (Mid.t * bool list) list) :
    (Trace_file.t, string) Stdlib.result =
  let faults =
    match faults with
    | Some p when not (P_semantics.Fault.is_none p) -> Some p
    | _ -> None
  in
  let fault_fields =
    match faults with
    | None -> (None, None)
    | Some p ->
      (Some (P_semantics.Fault.to_string p), Some p.P_semantics.Fault.seed)
  in
  let fspec, fault_seed = fault_fields in
  let canon = Canon.create tab in
  let config0, _main, _items = Step.initial_config tab in
  let init_digest = hex_digest canon config0 in
  let rec go i config prev_hex steps_rev = function
    | [] ->
      Ok
        (Trace_file.make ?program ?seed ?faults:fspec ?fault_seed ~dedup ~engine
           ~init_digest ~final_digest:prev_hex
           (List.rev steps_rev))
    | (mid, choices) :: rest ->
      if not (Config.mem config mid) then
        Error
          (Fmt.str "recording diverged at step %d: machine %a does not exist" i
             Mid.pp mid)
      else (
        match Step.run_atomic ~dedup ?faults tab config mid ~choices with
        | Step.Need_more_choices, _ ->
          Error
            (Fmt.str "recording diverged at step %d: ghost choices exhausted" i)
        | Step.Failed e, _ ->
          let step =
            { Trace_file.mid = Mid.to_int mid; choices; digest = "" }
          in
          ignore rest;
          Ok
            (Trace_file.make ?program ~error:(Errors.to_string e) ?seed
               ?faults:fspec ?fault_seed ~dedup ~engine ~init_digest
               ~final_digest:prev_hex
               (List.rev (step :: steps_rev)))
        | outcome, _ ->
          let config' = Option.get (Step.outcome_config outcome) in
          let hex = hex_digest canon config' in
          let step = { Trace_file.mid = Mid.to_int mid; choices; digest = hex } in
          go (i + 1) config' hex (step :: steps_rev) rest)
  in
  go 0 config0 init_digest [] schedule

let record_counterexample ?program ?seed ?faults ?dedup ~engine tab
    (ce : Search.counterexample) : (Trace_file.t, string) Stdlib.result =
  record ?program ?seed ?faults ?dedup ~engine tab ce.Search.schedule

(* ------------------------------------------------------------------ *)
(* Sampling clean schedules                                            *)
(* ------------------------------------------------------------------ *)

(* The same xorshift PRNG as Random_walk, so sampled schedules are seeded
   and reproducible without touching global Random state. *)
type rng = { mutable s : int }

let make_rng seed = { s = (seed * 2654435761) lor 1 }

let rand_int rng bound =
  rng.s <- rng.s lxor (rng.s lsl 13);
  rng.s <- rng.s lxor (rng.s lsr 7);
  rng.s <- rng.s lxor (rng.s lsl 17);
  (rng.s land max_int) mod bound

(** One seeded random walk, recorded as a schedule: repeatedly pick a
    uniformly random enabled machine and random ghost choices until an
    error, quiescence, or [max_blocks]. Unlike {!Random_walk}, the point
    is the schedule itself — food for the replay / shrink / differential
    tests — not bug-finding statistics. *)
let sample_schedule ?(seed = 1) ?(max_blocks = 200) ?(dedup = true) ?faults
    (tab : P_static.Symtab.t) : (Mid.t * bool list) list =
  let rng = make_rng seed in
  let config0, _main, _items = Step.initial_config tab in
  let rec resolve config mid rev_choices =
    let choices = List.rev rev_choices in
    match Step.run_atomic ~dedup ?faults tab config mid ~choices with
    | Step.Need_more_choices, _ ->
      resolve config mid ((rand_int rng 2 = 1) :: rev_choices)
    | outcome, _ -> (choices, outcome)
  in
  let rec go i config sched_rev =
    if i >= max_blocks then List.rev sched_rev
    else
      match Step.enabled tab config with
      | [] -> List.rev sched_rev
      | en ->
        let mid = List.nth en (rand_int rng (List.length en)) in
        let choices, outcome = resolve config mid [] in
        let sched_rev = (mid, choices) :: sched_rev in
        (match Step.outcome_config outcome with
        | Some config' -> go (i + 1) config' sched_rev
        | None -> List.rev sched_rev)
  in
  go 0 config0 []
