(* Tests for the systematic-testing engines: the delay-bounded causal
   scheduler, the depth-bounded baseline, counterexample traces, and the
   liveness checks. *)

open P_checker

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tab_of p = P_static.Check.run_exn p

let explore ?(max_states = 200_000) d p =
  Delay_bounded.explore ~delay_bound:d ~max_states (tab_of p)

let is_error r = match r.Search.verdict with Search.Error_found _ -> true | _ -> false

(* ---------------- safety search ---------------- *)

let test_pingpong_clean () =
  List.iter
    (fun d ->
      let r = explore d (P_examples_lib.Pingpong.program ~rounds:2 ()) in
      check bool_t (Fmt.str "d=%d clean" d) false (is_error r);
      check bool_t "not truncated" false r.stats.truncated)
    [ 0; 1; 2; 3 ]

let test_pingpong_bug_found () =
  let r = explore 0 (P_examples_lib.Pingpong.buggy_program ~rounds:2 ()) in
  match r.verdict with
  | Search.Error_found ce -> (
    match ce.error.kind with
    | P_semantics.Errors.Assert_failure _ -> ()
    | k -> Alcotest.failf "wrong error kind: %a" P_semantics.Errors.pp_kind k)
  | Search.No_error -> Alcotest.fail "bug not found"

let test_states_monotone_in_delay_bound () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let states d = (Delay_bounded.explore ~delay_bound:d ~max_states:500_000 tab).stats.states in
  let s0 = states 0 and s1 = states 1 and s2 = states 2 in
  check bool_t "s0 < s1" true (s0 < s1);
  check bool_t "s1 < s2" true (s1 < s2)

let test_exploration_deterministic () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let r1 = Delay_bounded.explore ~delay_bound:2 tab in
  let r2 = Delay_bounded.explore ~delay_bound:2 tab in
  check int_t "same states" r1.stats.states r2.stats.states;
  check int_t "same transitions" r1.stats.transitions r2.stats.transitions

(* the headline empirical claim: bugs found within delay bound 2 in all
   three Figure 7 benchmarks *)
let test_bugs_found_within_bound_2 () =
  List.iter
    (fun (name, p) ->
      let found =
        List.exists (fun d -> is_error (explore ~max_states:500_000 d p)) [ 0; 1; 2 ]
      in
      check bool_t (name ^ " bug within d<=2") true found)
    [ ("elevator", P_examples_lib.Elevator.buggy_program ());
      ("switchled", P_examples_lib.Switch_led.buggy_program ());
      ("german", P_examples_lib.German.buggy_program ()) ]

let test_good_benchmarks_clean_at_low_bounds () =
  List.iter
    (fun (name, p, d) ->
      let r = explore ~max_states:500_000 d p in
      check bool_t (Fmt.str "%s clean at d=%d" name d) false (is_error r))
    [ ("elevator", P_examples_lib.Elevator.program (), 2);
      ("switchled", P_examples_lib.Switch_led.program (), 2);
      ("german", P_examples_lib.German.program (), 1);
      ("tokenring", P_examples_lib.Token_ring.program (), 2);
      ("boundedbuffer", P_examples_lib.Bounded_buffer.program (), 2) ]

let test_max_states_truncates () =
  let r = explore ~max_states:50 2 (P_examples_lib.Elevator.program ()) in
  check bool_t "truncated" true r.stats.truncated;
  check bool_t "states within budget" true (r.stats.states <= 60)

let test_counterexample_trace_replay () =
  let r = explore 1 (P_examples_lib.Pingpong.buggy_program ~rounds:2 ()) in
  match r.verdict with
  | Search.Error_found ce ->
    check bool_t "trace nonempty" true (List.length ce.trace > 3);
    (* the trace must start with the creation of the main machine *)
    (match List.hd ce.trace with
    | P_semantics.Trace.Created { creator = None; _ } -> ()
    | _ -> Alcotest.fail "trace must start at machine creation");
    check bool_t "depth positive" true (ce.depth > 0)
  | Search.No_error -> Alcotest.fail "bug not found"

(* d=0 equivalence: the checker's zero-delay schedule behaves like the
   deterministic simulator *)
let test_d0_matches_simulator () =
  (* on a deterministic program (no ghost choices), d=0 explores exactly the
     simulator's single execution path: states = blocks + 1 *)
  let p = P_examples_lib.Pingpong.program ~rounds:2 () in
  let tab = tab_of p in
  let sim = P_semantics.Simulate.run tab in
  let r = Delay_bounded.explore ~delay_bound:0 tab in
  check bool_t "simulator quiescent" true (sim.status = P_semantics.Simulate.Quiescent);
  check int_t "one linear path" (sim.blocks + 1) r.stats.states

(* ---------------- depth-bounded baseline ---------------- *)

let test_depth_bounded_finds_bug () =
  let r =
    Depth_bounded.explore ~depth_bound:30 (tab_of (P_examples_lib.Pingpong.buggy_program ~rounds:2 ()))
  in
  check bool_t "found" true (is_error r)

let test_depth_bounded_explodes_faster () =
  (* at matched budgets, full scheduling nondeterminism visits at least as
     many states as the causal scheduler with a small delay budget *)
  let p = P_examples_lib.German.program () in
  let tab = tab_of p in
  let delay = Delay_bounded.explore ~delay_bound:0 ~max_states:100_000 tab in
  let depth = Depth_bounded.explore ~depth_bound:15 ~max_states:100_000 tab in
  check bool_t "depth-bounded visits more states for shallow coverage" true
    (depth.stats.states >= delay.stats.states)

let test_depth_bound_zero_is_initial_state_only () =
  let r = Depth_bounded.explore ~depth_bound:0 (tab_of (P_examples_lib.Pingpong.program ())) in
  check int_t "just the root" 1 r.stats.states

(* ---------------- liveness ---------------- *)

let test_liveness_clean_on_terminating () =
  let r = Liveness.check (tab_of (P_examples_lib.Pingpong.program ~rounds:2 ())) in
  check int_t "no violations" 0 (List.length r.violations);
  check bool_t "complete" true r.complete

let starving_program ~postpone =
  (* A consumes `work`; B floods `noise` that A always defers (and never
     dequeues): under fairness `noise` is deferred forever unless postponed *)
  let open P_syntax.Builder in
  let a =
    machine "A"
      [ state "Run"
          ~defer:[ "noise" ]
          ~postpone:(if postpone then [ "noise" ] else [])
          ~entry:skip ]
  in
  let b =
    machine "B" ~ghost:true
      ~vars:[ var_decl "peer" P_syntax.Ptype.Machine_id ]
      [ state "Init" ~entry:(seq [ new_ "peer" "A" []; raise_ "u" ]);
        state "Flood" ~entry:(seq [ send (v "peer") "noise"; raise_ "u" ]) ]
      ~steps:[ ("Init", "u", "Flood"); ("Flood", "u", "Flood") ]
  in
  program ~events:[ event "noise"; event "u" ] ~machines:[ b; a ] "B"

let test_liveness_detects_starvation () =
  let r = Liveness.check (tab_of (starving_program ~postpone:false)) in
  check bool_t "starvation found" true
    (List.exists
       (function Liveness.Deferred_forever _ -> true | _ -> false)
       r.violations)

let test_liveness_witness_lasso () =
  let r = Liveness.check (tab_of (starving_program ~postpone:false)) in
  match r.witnesses with
  | [ (Liveness.Deferred_forever { event; _ }, Some w) ] ->
    check bool_t "starved event is noise" true
      (P_syntax.Names.Event.to_string event = "noise");
    check bool_t "prefix nonempty" true (w.Liveness.prefix <> []);
    check bool_t "cycle nonempty" true (w.Liveness.cycle <> []);
    (* the cycle must never dequeue the starved event *)
    check bool_t "cycle never dequeues noise" true
      (List.for_all
         (function
           | P_semantics.Trace.Dequeued { event; _ } ->
             P_syntax.Names.Event.to_string event <> "noise"
           | _ -> true)
         w.Liveness.cycle);
    (* and must re-send it (dedup keeps it pending), i.e. the loop is real *)
    check bool_t "cycle schedules someone" true (w.Liveness.cycle_machines <> [])
  | _ -> Alcotest.fail "expected exactly one witnessed starvation"

let test_postpone_suppresses_starvation () =
  let r = Liveness.check (tab_of (starving_program ~postpone:true)) in
  check int_t "postponed: clean" 0 (List.length r.violations)

let self_spinner ~ghost =
  (* a machine that sends itself an event forever: ◇□ sched(m) *)
  let open P_syntax.Builder in
  let a =
    machine "Spin" ~ghost
      [ state "Run" ~entry:(send this "go") ]
      ~steps:[ ("Run", "go", "Run") ]
  in
  program ~events:[ event "go" ] ~machines:[ a ] "Spin"

let test_liveness_witness_divergence () =
  let r = Liveness.check (tab_of (self_spinner ~ghost:false)) in
  match
    List.find_opt
      (function Liveness.Private_divergence _, _ -> true | _ -> false)
      r.witnesses
  with
  | Some (Liveness.Private_divergence { mid; _ }, Some w) ->
    check bool_t "cycle is the spinner's own steps" true
      (List.for_all (P_semantics.Mid.equal mid) w.Liveness.cycle_machines)
  | _ -> Alcotest.fail "expected a witnessed divergence"

let test_liveness_detects_divergence () =
  let r = Liveness.check (tab_of (self_spinner ~ghost:false)) in
  check bool_t "divergence found" true
    (List.exists
       (function Liveness.Private_divergence _ -> true | _ -> false)
       r.violations)

let test_liveness_ignores_ghost_divergence () =
  let r = Liveness.check (tab_of (self_spinner ~ghost:true)) in
  check int_t "ghost env may run forever" 0 (List.length r.violations);
  let r' =
    Liveness.check ~ignore_ghost_divergence:false (tab_of (self_spinner ~ghost:true))
  in
  check bool_t "unless asked otherwise" true (r'.violations <> [])

let test_liveness_elevator_clean () =
  let r = Liveness.check ~max_states:10_000 (tab_of (P_examples_lib.Elevator.program ())) in
  check int_t "elevator clean" 0 (List.length r.violations)

(* ---------------- verifier facade ---------------- *)

let test_verifier_report () =
  let report = Verifier.verify ~delay_bound:1 (P_examples_lib.Pingpong.program ()) in
  check bool_t "clean" true (Verifier.is_clean report);
  let report = Verifier.verify ~delay_bound:1 (P_examples_lib.Pingpong.buggy_program ()) in
  check bool_t "buggy rejected" false (Verifier.is_clean report)

let test_verifier_static_rejection () =
  let p =
    P_parser.Parser.program_of_string
      "event e;\nmachine M { state S { entry { x := 1; } } }\nmain M();"
  in
  let report = Verifier.verify p in
  check bool_t "static errors reported" true (report.static_diagnostics <> []);
  check bool_t "no safety run" true (report.safety = None)

let suite =
  [ Alcotest.test_case "pingpong clean" `Quick test_pingpong_clean;
    Alcotest.test_case "pingpong bug found" `Quick test_pingpong_bug_found;
    Alcotest.test_case "states monotone in d" `Quick test_states_monotone_in_delay_bound;
    Alcotest.test_case "exploration deterministic" `Quick test_exploration_deterministic;
    Alcotest.test_case "bugs within d<=2" `Slow test_bugs_found_within_bound_2;
    Alcotest.test_case "benchmarks clean" `Slow test_good_benchmarks_clean_at_low_bounds;
    Alcotest.test_case "max_states truncates" `Quick test_max_states_truncates;
    Alcotest.test_case "counterexample trace" `Quick test_counterexample_trace_replay;
    Alcotest.test_case "d=0 matches simulator" `Quick test_d0_matches_simulator;
    Alcotest.test_case "depth-bounded finds bug" `Quick test_depth_bounded_finds_bug;
    Alcotest.test_case "depth-bounded explodes" `Slow test_depth_bounded_explodes_faster;
    Alcotest.test_case "depth bound 0" `Quick test_depth_bound_zero_is_initial_state_only;
    Alcotest.test_case "liveness terminating" `Quick test_liveness_clean_on_terminating;
    Alcotest.test_case "liveness starvation" `Quick test_liveness_detects_starvation;
    Alcotest.test_case "liveness witness lasso" `Quick test_liveness_witness_lasso;
    Alcotest.test_case "liveness witness divergence" `Quick test_liveness_witness_divergence;
    Alcotest.test_case "postpone suppresses" `Quick test_postpone_suppresses_starvation;
    Alcotest.test_case "liveness divergence" `Quick test_liveness_detects_divergence;
    Alcotest.test_case "ghost divergence ok" `Quick test_liveness_ignores_ghost_divergence;
    Alcotest.test_case "liveness elevator" `Slow test_liveness_elevator_clean;
    Alcotest.test_case "verifier report" `Quick test_verifier_report;
    Alcotest.test_case "verifier static" `Quick test_verifier_static_rejection ]
