lib/compile/compile.ml: C_emit Fmt Lower P_static P_syntax Tables
