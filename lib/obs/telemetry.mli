(** Live exploration telemetry: a sampling ticker the engines poke from
    their existing tick points, emitting a time series of throughput and
    memory figures — states/s, transitions/s, frontier occupancy, steal
    success rate, bytes per state — as JSONL records and/or an in-process
    callback (the [--progress] heartbeat).

    The engine installs a {e probe} — a closure over its live counters —
    and calls {!tick} from its (already count-gated) tick points; a tick
    is one monotonic-clock read unless a sample is due. When one is due,
    the probe is read, rates are computed against the previous sample, and
    the record goes to the sink ([{"type":"sample", …}] lines, preceded by
    one [{"type":"meta", …}] header carrying the machine-context block)
    and to [on_sample].

    Allocation figures come from [Gc.quick_stat] on whichever domain takes
    the sample, so under the parallel engine [bytes_per_state] is the
    sampling worker's allocation rate, not the whole process's — an
    approximation, flagged in the meta record as
    ["alloc_scope": "sampling-domain"]. The seen-set figures
    ([store_bytes] via the probe) are exact: the store reports its own
    footprint, so [store_bytes_per_state] no longer has to be derived
    from cumulative allocation alone. *)

type sample = {
  ts_us : float;  (** monotonic clock, µs (same timeline as trace spans) *)
  elapsed_s : float;  (** since {!create} *)
  states : int;
  transitions : int;
  states_per_s : float;  (** over the interval since the previous sample *)
  transitions_per_s : float;
  frontier : float;  (** current frontier / stratum occupancy *)
  steals : int;  (** cumulative successful steals *)
  steal_attempts : int;
  steal_success_rate : float;  (** cumulative; [0.] before any attempt *)
  alloc_mb : float;  (** allocated since {!create}, sampling domain, MB *)
  bytes_per_state : float;  (** cumulative allocation / states *)
  heap_mb : float;  (** major heap size now, MB *)
  store_mb : float;  (** seen-set footprint now, MB ([0.] without one) *)
  store_bytes_per_state : float;  (** seen-set footprint / states *)
  shed : int;  (** cumulative events dropped by backpressure; [0] for engines *)
}

type probe = {
  states : int;
  transitions : int;
  frontier : float;
  steals : int;
  steal_attempts : int;
  store_bytes : int;  (** live seen-set footprint; [0] without a seen set *)
  shed : int;  (** cumulative backpressure drops; [0] without bounds *)
}
(** What the engine reports when asked: its live totals. Sequential
    engines leave the steal fields 0; the serving runtime ({!P_runtime}'s
    shard layer) maps states to events processed, transitions to local
    deliveries, frontier to ready fibers, and counts its sheds. *)

type t

val null : t
(** Every operation is a no-op. *)

val enabled : t -> bool

val create :
  ?interval_us:float ->
  ?sink:Sink.t ->
  ?on_sample:(sample -> unit) ->
  unit ->
  t
(** A ticker sampling every [interval_us] (default [100_000.] = 100ms).
    [sink] (normally a {!Sink.jsonl}) receives the meta header and one
    record per sample; [on_sample] fires on the sampling domain. *)

val set_probe : t -> (unit -> probe) -> unit
(** Install the engine's counter closure. Until a probe is installed,
    ticks are no-ops. *)

val set_meta : t -> (string * Json.t) list -> unit
(** Extra fields for the [{"type":"meta", …}] header (the engine's store
    kind and capacity). Must be called before the first sample; later
    calls are recorded but the header is already out. *)

val tick : t -> unit
(** Take a sample if one is due. Cheap when not due; serialized by a
    try-lock, so concurrent callers are safe and never block. *)

val force : t -> unit
(** Take a sample now, ignoring the interval (the final sample of a run,
    so short runs still produce at least one record). *)

val samples_taken : t -> int
