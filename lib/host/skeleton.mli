(** Generic interface code for P drivers: the skeletal KMDF driver of
    section 4. [EvtAddDevice] creates the driver's main machine; other
    callbacks are translated into P events and queued; [EvtRemoveDevice]
    queues the distinguished removal event, which the P machine must handle
    by cleaning up and executing [delete]. *)

type t

(** Host-ordering failures the skeleton can report: a callback or handle
    lookup raced ahead of [EvtAddDevice] (or behind [EvtRemoveDevice]). *)
type error = Device_not_added of { main_machine : string }

exception Error of error
(** Raised by {!handle}; carries the same diagnosable payload that
    {!handle_opt} returns, instead of the historical bare [Failure] that
    aborted the simulated host with no context. *)

val error_message : error -> string
(** A human-readable diagnosis (which driver machine, what ordering). *)

val attach :
  ?delete_event:string option ->
  P_runtime.Api.t ->
  main_machine:string ->
  translate:(Os_events.t -> (string * P_runtime.Rt_value.t) option) ->
  t
(** Wire a runtime to the host. [translate] maps OS callbacks to P events
    (returning [None] drops the callback); [delete_event] is the event
    queued on device removal (default ["Delete"], [None] disables). *)

val handle_opt : t -> (int, error) result
(** The machine handle of the attached device, or a typed
    [Device_not_added] error before [add_device] / after
    [remove_device]. *)

val handle : t -> int
(** Like {!handle_opt}.
    @raise Error before [add_device]. *)

val sheds : t -> int
(** Callbacks shed at the machine's bounded mailbox so far: with a
    capacity set via {!P_runtime.Api.set_mailbox_capacity}, overload
    surfaces here (and in the [host.shed] counter) as dropped events
    rather than unbounded queue growth. *)

val driver : ?name:string -> ?metrics:P_obs.Metrics.t -> t -> Os_events.driver
(** The host-facing driver interface. Callbacks before [add_device] or
    after [remove_device] are dropped, as in KMDF. With [metrics], every
    dispatched callback counts into [host.callbacks] and records its
    wall-clock latency in the [host.callback_s] histogram; shed callbacks
    count into [host.shed]. *)
