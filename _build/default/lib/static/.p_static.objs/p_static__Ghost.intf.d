lib/static/ghost.mli: P_syntax Symtab
