(** Observability hooks for the runtime: the same happenings as
    {!P_semantics.Trace}, with table indices resolved back to names so the
    runtime-vs-checker equivalence tests can compare the two engines item
    by item. *)

type item =
  | Created of { creator : int option; created : int; kind : string }
  | Sent of { src : int; dst : int; event : string; payload : string }
  | Dequeued of { mid : int; event : string }
  | Entered of { mid : int; state : string }
  | Deleted of { mid : int }

val pp_item : item Fmt.t

val of_semantics_trace : P_semantics.Trace.t -> item list
(** Project a verifier trace to the comparable kinds (creations, sends,
    dequeues, deletions). *)

val observable : item list -> item list
(** Keep only the comparable kinds of a runtime trace. *)

val encode : item -> string * int * (string * P_obs.Json.t) list
(** Structured encoding of one item for the trace sink: event name, the
    machine concerned (the Chrome "tid"), and args including a ["kind"]. *)

val cat : string
(** The Chrome category runtime items are tagged with, ["rttrace"]. *)

val obs_hook : ?t0_us:float -> P_obs.Sink.t -> item -> unit
(** A trace hook forwarding every item to a structured sink as a Chrome
    instant event, timestamped on the monotonic clock relative to [t0_us]
    (default: hook creation time). Use with
    [Api.set_trace_hook rt (Some (Rt_trace.obs_hook sink))]. *)
