(** Hand-written lexer for the textual P syntax: identifiers and keywords,
    decimal integers, the Figure 3 operators, [//] line comments and
    [/* ... */] block comments. Raises {!Parse_error.Error} on bad input. *)

type t

val create : ?file:string -> string -> t
val current_loc : t -> P_syntax.Loc.t

val next : t -> Token.t * P_syntax.Loc.t
(** The next token with its start location; [EOF] at end of input. *)

val all_tokens : t -> (Token.t * P_syntax.Loc.t) list
(** Tokenize the whole input, ending with [EOF]; used by tests. *)
