lib/host/workload.mli: Fmt Os_events
