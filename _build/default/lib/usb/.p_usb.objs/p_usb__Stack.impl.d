lib/usb/stack.ml: Fmt List P_syntax Stdlib
