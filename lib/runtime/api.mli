(** The three-call runtime API of section 4, used by interface code (the
    KMDF-style skeleton in {!P_host.Skeleton}) to drive a compiled P
    driver:

    - [SMCreateMachine] → {!create_machine}
    - [SMAddEvent]      → {!add_event}
    - [SMGetContext]    → {!get_context}

    Both calls run machines to completion on the calling thread, per the
    paper's "drivers use calling threads to do all the work". Errors in the
    driver (assertion failures, unhandled events, sends to deleted
    machines) raise {!Exec.Runtime_error}. *)

type t = Exec.t

val create : P_compile.Tables.driver -> t
(** Bring up a runtime for a compiled driver. *)

val register_foreign : t -> string -> Exec.foreign_fn -> unit
(** Provide the implementation of a foreign function (the paper's
    driver-specific C files); must be registered before any machine calls
    it. *)

val set_trace_hook : t -> (Rt_trace.item -> unit) option -> unit
(** Observe creations, sends, dequeues, state entries, and deletions. *)

val set_metrics : t -> P_obs.Metrics.t option -> unit
(** Count [runtime.sends], [runtime.dequeues], [runtime.creates] and track
    the [runtime.queue_len_hwm] inbox high-water mark in the given
    registry; [None] (the initial state) turns metrics off. *)

val set_mailbox_capacity : t -> int -> unit
(** Bound the mailboxes of machines created from here on; the default is
    unbounded (the formal semantics' queues). *)

val create_machine : t -> string -> int
(** Create and start an instance of the named machine type; returns its
    handle. The entry statement of its initial state has completed when
    this returns. *)

val add_event : t -> int -> string -> Rt_value.t -> unit
(** Queue an event (with payload) into a machine; if the machine is idle,
    the calling thread runs it to completion. Raises
    {!Exec.Mailbox_overflow} when the machine's bounded mailbox (see
    {!Exec.set_mailbox_capacity}) is full. *)

val try_add_event : t -> int -> string -> Rt_value.t -> Context.backpressure
(** Like {!add_event} but reports the outcome instead of raising on a full
    mailbox: [Accepted] (receiver ran on this thread), [Queued], or
    [Shed] (bounded mailbox full, event dropped). *)

val get_context : t -> int -> Context.ext option
(** The external memory attached to a machine, reserved for foreign
    functions and interface code (the C runtime's [void *]). *)

val set_context : t -> int -> Context.ext -> unit

val is_alive : t -> int -> bool
val current_state_name : t -> int -> string option
val queue_length : t -> int -> int
