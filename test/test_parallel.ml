(* Tests for the work-stealing parallel engine: the Chase–Lev deque, the
   typed domain-count validation, the cross-domain determinism contract
   (verdict, states, transitions independent of the domain count), the
   deterministic counterexample tiebreak, the fingerprint counter
   invariant, and portfolio random walks. *)

open P_checker
module Metrics = P_obs.Metrics

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tab_of p = P_static.Check.run_exn p

(* ---------------- Chase–Lev deque ---------------- *)

let test_deque_owner_order () =
  let q : int Ws_deque.t = Ws_deque.create () in
  check bool_t "fresh deque empty" true (Ws_deque.is_empty q);
  check bool_t "pop empty" true (Ws_deque.pop q = None);
  check bool_t "steal empty" true (Ws_deque.steal q = None);
  List.iter (Ws_deque.push q) [ 1; 2; 3 ];
  check int_t "size" 3 (Ws_deque.size q);
  (* owner pops LIFO *)
  check bool_t "pop newest" true (Ws_deque.pop q = Some 3);
  (* stealers take FIFO from the other end *)
  check bool_t "steal oldest" true (Ws_deque.steal q = Some 1);
  check bool_t "pop last" true (Ws_deque.pop q = Some 2);
  check bool_t "drained" true (Ws_deque.pop q = None)

let test_deque_grows () =
  (* push far past the 16-slot initial buffer, interleaving steals so the
     live window straddles grow boundaries *)
  let q : int Ws_deque.t = Ws_deque.create () in
  let stolen = ref [] in
  for i = 0 to 999 do
    Ws_deque.push q i;
    if i mod 3 = 0 then
      match Ws_deque.steal q with
      | Some v -> stolen := v :: !stolen
      | None -> Alcotest.fail "steal lost a pushed element"
  done;
  let popped = ref [] in
  let rec drain () =
    match Ws_deque.pop q with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let all = List.sort compare (!stolen @ !popped) in
  check int_t "nothing lost" 1000 (List.length all);
  check bool_t "each element exactly once" true
    (List.mapi (fun i v -> i = v) all |> List.for_all Fun.id)

let test_deque_concurrent_steal () =
  (* one owner pushing/popping, one stealing domain: every element is
     delivered exactly once across the two ends *)
  let q : int Ws_deque.t = Ws_deque.create () in
  let n = 20_000 in
  let seen = Array.make n 0 in
  let done_ = Atomic.make false in
  let stealer =
    Domain.spawn (fun () ->
        let got = ref [] in
        while not (Atomic.get done_) do
          match Ws_deque.steal q with
          | Some v -> got := v :: !got
          | None -> Domain.cpu_relax ()
        done;
        (* final sweep after the owner finished *)
        let rec sweep () =
          match Ws_deque.steal q with
          | Some v ->
            got := v :: !got;
            sweep ()
          | None -> ()
        in
        sweep ();
        !got)
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Ws_deque.push q i;
    if i land 7 = 0 then
      match Ws_deque.pop q with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop q with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_ true;
  let stolen = Domain.join stealer in
  List.iter (fun v -> seen.(v) <- seen.(v) + 1) !popped;
  List.iter (fun v -> seen.(v) <- seen.(v) + 1) stolen;
  check bool_t "every element delivered exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

(* ---------------- typed domain-count validation ---------------- *)

let test_validate_domains () =
  (* strict mode: bounded by the recommended count (pinned here so the test
     is independent of the machine it runs on) *)
  check bool_t "4 of 4 ok" true
    (Parallel.validate_domains ~recommended:4 4 = Ok 4);
  check bool_t "5 of 4 refused" true
    (Parallel.validate_domains ~recommended:4 5
    = Error { Parallel.requested = 5; recommended = 4; hard_limit = 128 });
  (* hard mode: only impossible counts are errors, oversubscription is fine *)
  check bool_t "hard allows oversubscription" true
    (Parallel.validate_domains ~hard:true ~recommended:1 8 = Ok 8);
  check bool_t "zero refused" true
    (match Parallel.validate_domains 0 with Error _ -> true | Ok _ -> false);
  check bool_t "zero refused even hard" true
    (match Parallel.validate_domains ~hard:true 0 with
    | Error _ -> true
    | Ok _ -> false);
  check bool_t "past the runtime limit refused even hard" true
    (match Parallel.validate_domains ~hard:true 129 with
    | Error { Parallel.hard_limit = 128; _ } -> true
    | _ -> false);
  (* the rendered errors are explanatory, not a bare Failure *)
  let msg n =
    match Parallel.validate_domains ~recommended:4 n with
    | Error e -> Fmt.str "%a" Parallel.pp_domains_error e
    | Ok _ -> ""
  in
  check bool_t "too-many message names the limit" true
    (Astring_contains.contains (msg 129) "128");
  check bool_t "oversubscription message names the recommendation" true
    (Astring_contains.contains (msg 6) "recommends")

let test_explore_raises_typed_error () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  check bool_t "explore domains:0 raises Invalid_domains" true
    (match Parallel.explore ~domains:0 ~delay_bound:1 tab with
    | exception Parallel.Invalid_domains { requested = 0; _ } -> true
    | _ -> false);
  check bool_t "portfolio domains:200 raises Invalid_domains" true
    (match Random_walk.run_portfolio ~walks:1 ~domains:200 tab with
    | exception Parallel.Invalid_domains { requested = 200; _ } -> true
    | _ -> false)

(* ---------------- cross-domain determinism (stress) ---------------- *)

let triple (r : Search.result) =
  ( (match r.verdict with
    | Search.Error_found ce -> Some ce.depth
    | Search.No_error -> None),
    r.stats.states,
    r.stats.transitions )

let triple_t = Alcotest.(triple (option int) int int)

(* The determinism contract under load: repeated runs of the buggy
   benchmarks at every domain count must produce one single (error depth,
   states, transitions) triple. 20 runs x 4 domain counts x 2 programs. *)
let test_determinism_stress () =
  List.iter
    (fun (name, tab, delay_bound, expected) ->
      List.iter
        (fun domains ->
          for run = 1 to 20 do
            let r =
              Parallel.explore ~domains ~delay_bound ~max_states:500_000 tab
            in
            check triple_t
              (Fmt.str "%s doms=%d run=%d" name domains run)
              expected (triple r)
          done)
        [ 1; 2; 4; 8 ])
    [ ( "german_buggy",
        tab_of (P_examples_lib.German.buggy_program ()),
        1,
        (Some 20, 2070, 2354) );
      ( "elevator_buggy",
        tab_of (P_examples_lib.Elevator.buggy_program ()),
        2,
        (Some 10, 132, 247) ) ]

(* The deterministic counterexample tiebreak: whatever failing edge a
   worker races to first, the counterexample handed back is re-derived
   sequentially, so it is byte-identical to the sequential engine's — same
   error, same depth, same schedule, at every domain count. *)
let test_counterexample_tiebreak () =
  let tab = tab_of (P_examples_lib.German.buggy_program ()) in
  let seq_ce =
    match (Delay_bounded.explore ~delay_bound:1 ~max_states:500_000 tab).verdict with
    | Search.Error_found ce -> ce
    | Search.No_error -> Alcotest.fail "sequential engine missed the seeded bug"
  in
  check int_t "fixture depth" 20 seq_ce.depth;
  List.iter
    (fun domains ->
      match
        (Parallel.explore ~domains ~delay_bound:1 ~max_states:500_000 tab).verdict
      with
      | Search.No_error ->
        Alcotest.failf "doms=%d missed the seeded bug" domains
      | Search.Error_found ce ->
        check int_t (Fmt.str "doms=%d same depth" domains) seq_ce.depth ce.depth;
        check bool_t (Fmt.str "doms=%d same error" domains) true
          (ce.error = seq_ce.error);
        check bool_t
          (Fmt.str "doms=%d same schedule" domains)
          true
          (ce.schedule = seq_ce.schedule))
    [ 1; 2; 4 ]

(* ---------------- state-budget boundary parity ---------------- *)

(* The state budget truncates identically in the sequential and parallel
   engines: a run completes iff it discovers strictly fewer than
   [max_states] states. Duplicate successors arriving once the budget is
   reached never flag a completed run as truncated (the budget is charged
   only on new-state claims), and a budget equal to the exact state count
   truncates both engines alike, with the same state count. *)
let test_max_states_boundary () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let full = Delay_bounded.explore ~delay_bound:2 ~max_states:500_000 tab in
  check bool_t "uncapped run completes" false full.stats.truncated;
  let s = full.stats.states in
  let par_full = Parallel.explore ~domains:1 ~delay_bound:2 ~max_states:500_000 tab in
  (* states agree across engines; transitions are engine-specific (the
     stratified engine expands each state once at minimal spent, so it
     records no re-expansion edges) but deterministic per engine *)
  check int_t "parallel counts the same states uncapped" s
    par_full.stats.states;
  (* one above the exact count: complete, identical triple at any count *)
  List.iter
    (fun domains ->
      let r = Parallel.explore ~domains ~delay_bound:2 ~max_states:(s + 1) tab in
      check bool_t (Fmt.str "doms=%d complete at s+1" domains) false
        r.stats.truncated;
      check triple_t (Fmt.str "doms=%d triple at s+1" domains) (triple par_full)
        (triple r))
    [ 1; 2; 4 ];
  (* exactly the state count: the engine never expands the state that
     reaches the budget, so sequential and parallel both truncate, both
     having counted exactly [s] states (transitions legitimately vary) *)
  let seq_cap = Delay_bounded.explore ~delay_bound:2 ~max_states:s tab in
  check bool_t "sequential truncates at s" true seq_cap.stats.truncated;
  check int_t "sequential counts s states" s seq_cap.stats.states;
  List.iter
    (fun domains ->
      let r = Parallel.explore ~domains ~delay_bound:2 ~max_states:s tab in
      check bool_t (Fmt.str "doms=%d truncates at s" domains) true
        r.stats.truncated;
      check int_t (Fmt.str "doms=%d counts s states" domains) s
        r.stats.states)
    [ 1; 2; 4 ]

(* ---------------- fingerprint counter invariant ---------------- *)

(* Each worker keeps a private fingerprint context whose counters are
   flushed into the registry at the end, so even a multi-domain run
   preserves requests = hits + misses exactly (only the hit/miss split may
   shift with scheduling). *)
let test_fp_counters_exact_multi_domain () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let reg = Metrics.create () in
  let instr = Search.instr ~metrics:reg () in
  ignore
    (Parallel.explore ~domains:4 ~delay_bound:2 ~max_states:500_000
       ~fingerprint:Fingerprint.Incremental ~instr tab);
  let requests = Metrics.counter_total reg "checker.fp_requests" in
  let hits = Metrics.counter_total reg "checker.fp_cache_hits" in
  let misses = Metrics.counter_total reg "checker.fp_cache_misses" in
  check bool_t "digests were requested" true (requests > 0);
  check int_t "requests = hits + misses under domains=4" requests
    (hits + misses)

let test_counter_per_domain_sums () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let reg = Metrics.create () in
  let instr = Search.instr ~metrics:reg () in
  ignore (Parallel.explore ~domains:4 ~delay_bound:2 ~max_states:500_000 ~instr tab);
  let c = Metrics.counter reg ~labels:[ ("engine", "parallel") ] "checker.expansions" in
  let per_domain = Metrics.counter_per_domain c in
  check int_t "one shard per writing domain" (Metrics.shard_count c)
    (List.length per_domain);
  check int_t "shards sum to the merged value" (Metrics.counter_value c)
    (List.fold_left ( + ) 0 per_domain)

(* ---------------- portfolio random walks ---------------- *)

let test_portfolio_finds_and_reproduces () =
  let tab = tab_of (P_examples_lib.Elevator.buggy_program ()) in
  let r = Random_walk.run_portfolio ~walks:40 ~max_blocks:100 ~seed:42 ~domains:4 tab in
  match r.first_error with
  | None -> Alcotest.fail "portfolio missed the seeded bug"
  | Some f ->
    check int_t "walk_seed derivation unchanged" (42 + (f.walk * 7919)) f.walk_seed;
    (* the winning walk replays identically as a lone sequential walk with
       its recorded seed: that is what makes pc shrink / pc replay work on
       portfolio counterexamples *)
    let solo = Random_walk.run ~walks:1 ~max_blocks:100 ~seed:f.walk_seed tab in
    (match solo.first_error with
    | None -> Alcotest.fail "recorded walk_seed did not reproduce the failure"
    | Some g ->
      check int_t "same failing length" f.blocks g.blocks;
      check bool_t "same error" true (f.error = g.error);
      check bool_t "same schedule" true (f.schedule = g.schedule));
    (* and its schedule replays through the deterministic replayer *)
    check bool_t "schedule reproduces the recorded error" true
      (Replay.reproduces tab
         ~expected_error:(P_semantics.Errors.to_string f.error)
         f.schedule
      <> None)

let test_portfolio_single_domain_is_run () =
  let tab = tab_of (P_examples_lib.Elevator.buggy_program ()) in
  let seq = Random_walk.run ~walks:20 ~max_blocks:100 ~seed:7 tab in
  let par = Random_walk.run_portfolio ~walks:20 ~max_blocks:100 ~seed:7 ~domains:1 tab in
  check int_t "errors_found" seq.errors_found par.errors_found;
  check int_t "total_blocks" seq.total_blocks par.total_blocks;
  check bool_t "same first failure" true
    (match (seq.first_error, par.first_error) with
    | Some a, Some b -> a.walk = b.walk && a.walk_seed = b.walk_seed
    | None, None -> true
    | _ -> false)

let suite =
  [ Alcotest.test_case "deque owner order" `Quick test_deque_owner_order;
    Alcotest.test_case "deque grows" `Quick test_deque_grows;
    Alcotest.test_case "deque concurrent steal" `Quick test_deque_concurrent_steal;
    Alcotest.test_case "validate domains" `Quick test_validate_domains;
    Alcotest.test_case "typed error from engines" `Quick test_explore_raises_typed_error;
    Alcotest.test_case "determinism stress" `Slow test_determinism_stress;
    Alcotest.test_case "counterexample tiebreak" `Quick test_counterexample_tiebreak;
    Alcotest.test_case "max_states boundary" `Quick test_max_states_boundary;
    Alcotest.test_case "fp requests = hits + misses" `Quick
      test_fp_counters_exact_multi_domain;
    Alcotest.test_case "counter per domain" `Quick test_counter_per_domain_sums;
    Alcotest.test_case "portfolio reproduces" `Quick test_portfolio_finds_and_reproduces;
    Alcotest.test_case "portfolio domains=1" `Quick test_portfolio_single_domain_is_run ]
