lib/static/ghost.ml: Ast Fmt List Names P_syntax Ptype Symtab
