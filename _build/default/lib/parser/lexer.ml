(** Hand-written lexer for the textual P syntax.

    Supports [//] line comments and [/* ... */] block comments (nesting not
    required), decimal integer literals, and the operators of Figure 3. *)

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1; bol = 0 }

let current_loc lx =
  P_syntax.Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol)

let is_eof lx = lx.pos >= String.length lx.src

let peek_char lx = if is_eof lx then '\000' else lx.src.[lx.pos]

let peek_char2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  (if peek_char lx = '\n' then begin
     lx.line <- lx.line + 1;
     lx.bol <- lx.pos + 1
   end);
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia lx =
  match peek_char lx with
  | ' ' | '\t' | '\r' | '\n' ->
    advance lx;
    skip_trivia lx
  | '/' when peek_char2 lx = '/' ->
    while (not (is_eof lx)) && peek_char lx <> '\n' do
      advance lx
    done;
    skip_trivia lx
  | '/' when peek_char2 lx = '*' ->
    let start = current_loc lx in
    advance lx;
    advance lx;
    let rec finish () =
      if is_eof lx then Parse_error.raise_at start "unterminated block comment"
      else if peek_char lx = '*' && peek_char2 lx = '/' then begin
        advance lx;
        advance lx
      end
      else begin
        advance lx;
        finish ()
      end
    in
    finish ();
    skip_trivia lx
  | _ -> ()

let lex_ident lx =
  let start = lx.pos in
  while is_ident_char (peek_char lx) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_int lx loc =
  let start = lx.pos in
  while is_digit (peek_char lx) do
    advance lx
  done;
  let text = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> Parse_error.raise_at loc "integer literal %s out of range" text

(** [next lx] returns the next token together with its start location. *)
let next lx : Token.t * P_syntax.Loc.t =
  skip_trivia lx;
  let loc = current_loc lx in
  let simple tok = advance lx; (tok, loc) in
  let double tok = advance lx; advance lx; (tok, loc) in
  match peek_char lx with
  | '\000' when is_eof lx -> (Token.EOF, loc)
  | c when is_ident_start c -> (Token.of_ident (lex_ident lx), loc)
  | c when is_digit c -> (Token.INT (lex_int lx loc), loc)
  | '(' -> simple Token.LPAREN
  | ')' -> simple Token.RPAREN
  | '{' -> simple Token.LBRACE
  | '}' -> simple Token.RBRACE
  | ';' -> simple Token.SEMI
  | ',' -> simple Token.COMMA
  | ':' -> if peek_char2 lx = '=' then double Token.ASSIGN else simple Token.COLON
  | '=' -> if peek_char2 lx = '=' then double Token.EQEQ else simple Token.EQUALS
  | '*' -> simple Token.STAR
  | '+' -> simple Token.PLUS
  | '-' -> simple Token.MINUS
  | '/' -> simple Token.SLASH
  | '%' -> simple Token.PERCENT
  | '!' -> if peek_char2 lx = '=' then double Token.BANGEQ else simple Token.BANG
  | '&' ->
    if peek_char2 lx = '&' then double Token.AMPAMP
    else Parse_error.raise_at loc "unexpected character '&' (did you mean '&&'?)"
  | '|' ->
    if peek_char2 lx = '|' then double Token.BARBAR
    else Parse_error.raise_at loc "unexpected character '|' (did you mean '||'?)"
  | '<' -> if peek_char2 lx = '=' then double Token.LE else simple Token.LT
  | '>' -> if peek_char2 lx = '=' then double Token.GE else simple Token.GT
  | c -> Parse_error.raise_at loc "unexpected character %C" c

(** Tokenize the whole input; used by tests. *)
let all_tokens lx =
  let rec loop acc =
    match next lx with
    | (Token.EOF, _) as t -> List.rev (t :: acc)
    | t -> loop (t :: acc)
  in
  loop []
