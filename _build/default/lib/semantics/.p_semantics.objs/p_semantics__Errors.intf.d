lib/semantics/errors.mli: Fmt Loc Mid Names P_syntax
