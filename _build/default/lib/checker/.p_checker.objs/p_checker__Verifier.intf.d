lib/checker/verifier.mli: Fmt Liveness P_static P_syntax Search
