(** JSON rendering of verification results for [pc verify --stats-json]:
    the whole {!Verifier.report} plus (optionally) a metrics-registry dump,
    as one self-describing document. Hand-rolled on {!P_obs.Json} — the
    schema is documented in DESIGN.md ("Observability"). *)

module Json = P_obs.Json

let json_of_stats (s : Search.stats) : Json.t =
  Json.Obj
    ([ ("states", Json.Int s.states);
       ("transitions", Json.Int s.transitions);
       ("max_depth", Json.Int s.max_depth);
       ("truncated", Json.Bool s.truncated);
       ("faults", Json.Int s.faults);
       ("elapsed_s", Json.Float s.elapsed_s) ]
    @
    match s.store with
    | None -> []
    | Some st ->
      (* kind, capacity, occupancy, and measured bytes/state: what the
         bench compare gate needs to hold the memory footprint, not just
         the wall clock *)
      [ ("store", State_store.json_of_summary st);
        ( "store_bytes_per_state",
          Json.Float
            (if s.states = 0 then 0.0
             else
               float_of_int st.State_store.s_bytes /. float_of_int s.states) )
      ])

let json_of_safety (r : Search.result) : Json.t =
  let verdict_fields =
    match r.verdict with
    | Search.No_error -> [ ("verdict", Json.String "no_error") ]
    | Search.Error_found ce ->
      [ ("verdict", Json.String "error_found");
        ("error", Json.String (Fmt.str "%a" P_semantics.Errors.pp ce.error));
        ("depth", Json.Int ce.depth);
        ("trace_len", Json.Int (List.length ce.trace)) ]
  in
  Json.Obj (verdict_fields @ [ ("stats", json_of_stats r.stats) ])

let json_of_violation (v : Liveness.violation) : Json.t =
  match v with
  | Liveness.Private_divergence { mid; machine } ->
    Json.Obj
      [ ("kind", Json.String "private_divergence");
        ("machine", Json.String (Fmt.str "%a" P_syntax.Names.Machine.pp machine));
        ("mid", Json.Int (P_semantics.Mid.to_int mid)) ]
  | Liveness.Deferred_forever { mid; machine; event; payload } ->
    Json.Obj
      [ ("kind", Json.String "deferred_forever");
        ("machine", Json.String (Fmt.str "%a" P_syntax.Names.Machine.pp machine));
        ("mid", Json.Int (P_semantics.Mid.to_int mid));
        ("event", Json.String (Fmt.str "%a" P_syntax.Names.Event.pp event));
        ("payload", Json.String (Fmt.str "%a" P_semantics.Value.pp payload)) ]

let json_of_liveness (r : Liveness.result) : Json.t =
  Json.Obj
    [ ("violations", Json.List (List.map json_of_violation r.violations));
      ("explored_states", Json.Int r.explored_states);
      ("complete", Json.Bool r.complete);
      ("elapsed_s", Json.Float r.elapsed_s) ]

let json_of_report ?metrics ?profile (r : Verifier.report) : Json.t =
  let static =
    Json.Obj
      [ ("ok", Json.Bool (r.static_diagnostics = []));
        ( "diagnostics",
          Json.List
            (List.map
               (fun d ->
                 Json.String (Fmt.str "%a" P_static.Symtab.pp_diagnostic d))
               r.static_diagnostics) ) ]
  in
  let fields =
    [ ("static", static);
      ( "seed",
        match r.seed with None -> Json.Null | Some s -> Json.Int s );
      ( "domains",
        match r.domains with None -> Json.Null | Some d -> Json.Int d );
      ( "faults",
        match r.faults with
        | None -> Json.Null
        | Some p ->
          Json.Obj
            [ ("spec", Json.String (P_semantics.Fault.to_string p));
              ("seed", Json.Int p.P_semantics.Fault.seed) ] );
      ( "safety",
        match r.safety with None -> Json.Null | Some s -> json_of_safety s );
      ( "liveness",
        match r.liveness with
        | None -> Json.Null
        | Some l -> json_of_liveness l );
      ("clean", Json.Bool (Verifier.is_clean r));
      (* machine context stamps every stats document, so numbers compared
         across checkouts or hosts carry their provenance with them *)
      ("machine", P_obs.Machine_info.json ()) ]
  in
  let fields =
    match metrics with
    | None -> fields
    | Some reg -> fields @ [ ("metrics", P_obs.Metrics.dump reg) ]
  in
  let fields =
    match profile with
    | Some p when P_obs.Profile.enabled p ->
      fields @ [ ("profile", P_obs.Profile.summary_json p) ]
    | _ -> fields
  in
  Json.Obj fields

let write_channel oc json =
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n'

let write_file path json =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc json)
