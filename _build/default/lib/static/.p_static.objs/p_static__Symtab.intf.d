lib/static/symtab.mli: Ast Fmt Format Loc Names P_syntax Ptype
