lib/checker/verifier.ml: Delay_bounded Fmt List Liveness P_static P_syntax Search
