(** A token ring of [n] nodes passing a counted token; exercises the
    [call n'] *statement* (saved continuations) and lap-arithmetic
    assertions. *)

val events : P_syntax.Ast.event_decl list
val node_machine : P_syntax.Ast.machine
val starter : n:int -> laps:int -> P_syntax.Ast.machine

val program : ?n:int -> unit -> P_syntax.Ast.program
(** A ring of [n] (default 3) nodes circulating forever (the counter wraps,
    so the state space is finite). *)

val buggy_program : ?n:int -> unit -> P_syntax.Ast.program
(** One node forwards without bumping the counter; the next holder's
    assertion fails. *)
