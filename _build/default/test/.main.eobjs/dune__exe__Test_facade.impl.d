test/test_facade.ml: Alcotest Astring_contains In_channel List P_examples_lib Pcaml String Sys
