lib/runtime/context.mli: Mutex P_compile Rt_value
