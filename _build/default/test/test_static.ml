(* Tests for the static phases: symbol resolution, well-formedness, the
   simple type system, the ghost-erasure discipline, and the erasure
   transform itself. *)

open P_syntax
module Check = P_static.Check

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse s = P_parser.Parser.program_of_string s

let diagnostics_of src = (Check.run (parse src)).diagnostics

let accepts src =
  match diagnostics_of src with
  | [] -> ()
  | ds -> Alcotest.failf "expected acceptance, got:@.%a" Check.pp_diagnostics ds

let rejects ?containing src =
  match diagnostics_of src with
  | [] -> Alcotest.fail "expected rejection, program accepted"
  | ds -> (
    match containing with
    | None -> ()
    | Some frag ->
      let rendered = Fmt.str "%a" Check.pp_diagnostics ds in
      if not (Astring_contains.contains rendered frag) then
        Alcotest.failf "diagnostics %S do not mention %S" rendered frag)

(* ---------------- well-formedness ---------------- *)

let test_accept_minimal () = accepts "event e;\nmachine M { state S { } }\nmain M();"

let test_duplicate_events () =
  rejects ~containing:"duplicate event" "event e; event e;\nmachine M { state S { } }\nmain M();"

let test_duplicate_machines () =
  rejects ~containing:"duplicate machine"
    "event e;\nmachine M { state S { } }\nmachine M { state S { } }\nmain M();"

let test_duplicate_states () =
  rejects ~containing:"duplicate state"
    "event e;\nmachine M { state S { } state S { } }\nmain M();"

let test_duplicate_vars () =
  rejects ~containing:"duplicate variable"
    "event e;\nmachine M { var x : int; var x : bool; state S { } }\nmain M();"

let test_no_states () =
  rejects ~containing:"no states" "event e;\nmachine M { }\nmain M();"

let test_unknown_main () =
  rejects ~containing:"unknown machine" "event e;\nmachine M { state S { } }\nmain N();"

let test_unknown_event_in_transition () =
  rejects ~containing:"unknown event"
    "event e;\nmachine M { state S { } state T { } step (S, nope, T); }\nmain M();"

let test_unknown_state_in_transition () =
  rejects ~containing:"unknown state"
    "event e;\nmachine M { state S { } step (S, e, T); }\nmain M();"

let test_unknown_variable () =
  rejects ~containing:"unknown variable"
    "event e;\nmachine M { state S { entry { x := 1; } } }\nmain M();"

let test_unknown_action () =
  rejects ~containing:"unknown action"
    "event e;\nmachine M { state S { } on (S, e) do A; }\nmain M();"

let test_nondeterministic_transitions () =
  rejects ~containing:"duplicate step"
    "event e;\nmachine M { state S { } state T { } step (S, e, T); step (S, e, S); }\nmain M();"

let test_step_and_call_conflict () =
  rejects ~containing:"both a step and a call"
    "event e;\nmachine M { state S { } state T { } step (S, e, T); push (S, e, T); }\nmain M();"

let test_nondet_in_real_machine () =
  rejects ~containing:"only allowed in ghost"
    "event e;\nmachine M { state S { entry { if (*) { skip; } } } }\nmain M();"

let test_nondet_in_ghost_ok () =
  accepts "event e;\nghost machine M { state S { entry { if (*) { skip; } } } }\nmain M();"

let test_raise_in_exit () =
  rejects ~containing:"not allowed inside an exit"
    "event e;\nmachine M { state S { exit { raise(e); } } }\nmain M();"

let test_return_in_exit () =
  rejects ~containing:"not allowed inside an exit"
    "event e;\nmachine M { state S { exit { return; } } }\nmain M();"

let test_foreign_arity () =
  rejects ~containing:"expects 2 argument"
    "event e;\nmachine M { foreign f(int, int) : void; state S { entry { f(1); } } }\nmain M();"

let test_event_variable_collision () =
  rejects ~containing:"collides with an event"
    "event x;\nmachine M { var x : int; state S { } }\nmain M();"

let test_main_init_literal () =
  rejects ~containing:"literal constants"
    "event e;\nmachine M { var x : int; state S { } }\nmain M(x = 1 + 2);"

(* ---------------- type checking ---------------- *)

let test_type_assign_mismatch () =
  rejects ~containing:"cannot assign"
    "event e;\nmachine M { var x : bool; state S { entry { x := 3; } } }\nmain M();"

let test_type_cond_not_bool () =
  rejects ~containing:"must have type bool"
    "event e;\nmachine M { var x : int; state S { entry { if (x) { skip; } } } }\nmain M();"

let test_type_arith_on_bool () =
  rejects ~containing:"arithmetic operand"
    "event e;\nmachine M { var x : int; state S { entry { x := true + 1; } } }\nmain M();"

let test_type_send_target_not_id () =
  rejects ~containing:"send target"
    "event e;\nmachine M { var x : int; state S { entry { send(3, e); } } }\nmain M();"

let test_type_payload_mismatch () =
  rejects ~containing:"payload of event"
    "event e(int);\nmachine M { state S { entry { send(this, e, true); } } }\nmain M();"

let test_type_payload_on_void_event () =
  rejects ~containing:"carries no payload"
    "event e;\nmachine M { state S { entry { send(this, e, 3); } } }\nmain M();"

let test_type_payload_ok () =
  accepts "event e(int);\nmachine M { state S { entry { send(this, e, 1 + 2); } } }\nmain M();"

let test_type_arg_is_dynamic () =
  (* arg is dynamically typed: flows into anything *)
  accepts
    "event e(int);\nmachine M { var x : int; var b : bool; state S { entry { x := arg; b \
     := arg; } } }\nmain M();"

let test_type_compare_incompatible () =
  rejects ~containing:"cannot compare"
    "event e;\nmachine M { var x : int; var b : bool; state S { entry { assert(x == b); } \
     } }\nmain M();"

let test_type_byte_int_interchange () =
  accepts
    "event e;\nmachine M { var b : byte; var x : int; state S { entry { b := x + 1; x := \
     b; } } }\nmain M();"

let test_type_foreign_args_and_ret () =
  rejects ~containing:"argument 1"
    "event e;\nmachine M { var x : int; foreign f(bool) : int; state S { entry { x := \
     f(3); } } }\nmain M();"

let test_type_foreign_model_mismatch () =
  rejects ~containing:"model of foreign"
    "event e;\nmachine M { foreign f() : int model true; state S { } }\nmain M();"

(* ---------------- ghost discipline ---------------- *)

let ghost_prog body =
  Fmt.str
    "event e(int);\nghost machine G { state GS { } }\nmachine M { ghost var g : int; \
     ghost var gm : id; var x : int; var m : id; %s }\nmain M();"
    body

let test_ghost_assign_to_real () =
  rejects ~containing:"must not be assigned a ghost expression"
    (ghost_prog "state S { entry { x := g + 1; } }")

let test_ghost_assign_to_ghost_ok () =
  accepts (ghost_prog "state S { entry { g := x + 1; } }")

let test_ghost_condition () =
  rejects ~containing:"branch condition"
    (ghost_prog "state S { entry { if (g == 1) { skip; } } }")

let test_ghost_loop_condition () =
  rejects ~containing:"loop condition"
    (ghost_prog "state S { entry { while (g == 1) { skip; } } }")

let test_ghost_assert_ok () =
  accepts (ghost_prog "state S { entry { assert(g == x); } }")

let test_ghost_send_target_erased () =
  (* sending to a ghost id: allowed, payload may be ghost *)
  accepts (ghost_prog "state S { entry { send(gm, e, g); } }")

let test_ghost_payload_on_real_send () =
  rejects ~containing:"payload of a real send"
    (ghost_prog "state S { entry { send(m, e, g); } }")

let test_ghost_raise_payload () =
  rejects ~containing:"payload of raise" (ghost_prog "state S { entry { raise(e, g); } }")

let test_ghost_new_separation () =
  rejects ~containing:"must be stored in a ghost variable"
    (ghost_prog "state S { entry { m := new G(); } }")

let test_ghost_new_real_into_ghost () =
  rejects ~containing:"must be stored in a real variable"
    (ghost_prog "state S { entry { gm := new M(); } }")

let test_ghost_id_mixing () =
  rejects ~containing:"mixes ghost and real"
    (ghost_prog "state S { entry { m := gm; } }")

let test_ghost_foreign_args_real () =
  rejects ~containing:"argument of a foreign call"
    "event e;\nmachine M { ghost var g : int; foreign f(int) : void; state S { entry { \
     f(g); } } }\nmain M();"

(* ---------------- erasure ---------------- *)

let erased_of src =
  let tab = Check.run_exn (parse src) in
  P_static.Erasure.erase tab

let test_erase_drops_ghost_machines () =
  let p =
    erased_of
      "event e;\nghost machine G { state S { } }\nmachine M { state S { } }\nmain G();"
  in
  check int_t "one machine left" 1 (List.length p.Ast.machines);
  check bool_t "main re-targeted" true (Names.Machine.to_string p.Ast.main = "M")

let test_erase_scrubs_statements () =
  let p =
    erased_of
      (ghost_prog
         "state S { entry { g := 1; send(gm, e, 2); assert(g == 1); x := 5; } }")
  in
  let m = List.find (fun (m : Ast.machine) -> Names.Machine.to_string m.machine_name = "M") p.Ast.machines in
  let st = List.hd m.Ast.states in
  (* only the real assignment remains *)
  (match st.Ast.entry.s with
  | Ast.Assign (x, _) -> check bool_t "x := 5 remains" true (Names.Var.to_string x = "x")
  | _ -> Alcotest.fail "expected the single real assignment to remain");
  check bool_t "ghost vars dropped" true
    (List.for_all (fun (vd : Ast.var_decl) -> not vd.var_ghost) m.Ast.vars)

let test_erase_keeps_real_asserts () =
  let p = erased_of (ghost_prog "state S { entry { assert(x == 1); } }") in
  let m = List.find (fun (m : Ast.machine) -> Names.Machine.to_string m.machine_name = "M") p.Ast.machines in
  match (List.hd m.Ast.states).Ast.entry.s with
  | Ast.Assert _ -> ()
  | _ -> Alcotest.fail "real assert must survive erasure"

let test_erase_drops_foreign_models () =
  let p =
    erased_of
      "event e;\nmachine M { foreign f() : int model 3; var x : int; state S { entry { x \
       := f(); } } }\nmain M();"
  in
  let m = List.hd p.Ast.machines in
  check bool_t "model dropped" true
    ((List.hd m.Ast.foreigns).Ast.foreign_model = None)

let test_erased_examples_recheck () =
  (* erasing any accepted example yields an accepted program *)
  List.iter
    (fun (name, p) ->
      let tab = Check.run_exn p in
      let erased = P_static.Erasure.erase tab in
      match Check.run erased with
      | { diagnostics = []; _ } -> ()
      | { diagnostics; _ } ->
        Alcotest.failf "%s: erased program rejected:@.%a" name Check.pp_diagnostics
          diagnostics)
    [ ("elevator", P_examples_lib.Elevator.program ());
      ("german", P_examples_lib.German.program ());
      ("switchled", P_examples_lib.Switch_led.program ());
      ("pingpong", P_examples_lib.Pingpong.program ()) ]

let suite =
  [ Alcotest.test_case "accept minimal" `Quick test_accept_minimal;
    Alcotest.test_case "duplicate events" `Quick test_duplicate_events;
    Alcotest.test_case "duplicate machines" `Quick test_duplicate_machines;
    Alcotest.test_case "duplicate states" `Quick test_duplicate_states;
    Alcotest.test_case "duplicate vars" `Quick test_duplicate_vars;
    Alcotest.test_case "no states" `Quick test_no_states;
    Alcotest.test_case "unknown main" `Quick test_unknown_main;
    Alcotest.test_case "unknown event" `Quick test_unknown_event_in_transition;
    Alcotest.test_case "unknown state" `Quick test_unknown_state_in_transition;
    Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
    Alcotest.test_case "unknown action" `Quick test_unknown_action;
    Alcotest.test_case "nondet transitions" `Quick test_nondeterministic_transitions;
    Alcotest.test_case "step+call conflict" `Quick test_step_and_call_conflict;
    Alcotest.test_case "nondet in real machine" `Quick test_nondet_in_real_machine;
    Alcotest.test_case "nondet in ghost ok" `Quick test_nondet_in_ghost_ok;
    Alcotest.test_case "raise in exit" `Quick test_raise_in_exit;
    Alcotest.test_case "return in exit" `Quick test_return_in_exit;
    Alcotest.test_case "foreign arity" `Quick test_foreign_arity;
    Alcotest.test_case "event/var collision" `Quick test_event_variable_collision;
    Alcotest.test_case "main init literal" `Quick test_main_init_literal;
    Alcotest.test_case "type: assign mismatch" `Quick test_type_assign_mismatch;
    Alcotest.test_case "type: cond not bool" `Quick test_type_cond_not_bool;
    Alcotest.test_case "type: arith on bool" `Quick test_type_arith_on_bool;
    Alcotest.test_case "type: send target" `Quick test_type_send_target_not_id;
    Alcotest.test_case "type: payload mismatch" `Quick test_type_payload_mismatch;
    Alcotest.test_case "type: payload on void" `Quick test_type_payload_on_void_event;
    Alcotest.test_case "type: payload ok" `Quick test_type_payload_ok;
    Alcotest.test_case "type: arg dynamic" `Quick test_type_arg_is_dynamic;
    Alcotest.test_case "type: compare incompatible" `Quick test_type_compare_incompatible;
    Alcotest.test_case "type: byte/int" `Quick test_type_byte_int_interchange;
    Alcotest.test_case "type: foreign args" `Quick test_type_foreign_args_and_ret;
    Alcotest.test_case "type: foreign model" `Quick test_type_foreign_model_mismatch;
    Alcotest.test_case "ghost: assign to real" `Quick test_ghost_assign_to_real;
    Alcotest.test_case "ghost: assign to ghost" `Quick test_ghost_assign_to_ghost_ok;
    Alcotest.test_case "ghost: condition" `Quick test_ghost_condition;
    Alcotest.test_case "ghost: loop condition" `Quick test_ghost_loop_condition;
    Alcotest.test_case "ghost: assert ok" `Quick test_ghost_assert_ok;
    Alcotest.test_case "ghost: send to ghost" `Quick test_ghost_send_target_erased;
    Alcotest.test_case "ghost: real send payload" `Quick test_ghost_payload_on_real_send;
    Alcotest.test_case "ghost: raise payload" `Quick test_ghost_raise_payload;
    Alcotest.test_case "ghost: new separation" `Quick test_ghost_new_separation;
    Alcotest.test_case "ghost: new real->ghost" `Quick test_ghost_new_real_into_ghost;
    Alcotest.test_case "ghost: id mixing" `Quick test_ghost_id_mixing;
    Alcotest.test_case "ghost: foreign args" `Quick test_ghost_foreign_args_real;
    Alcotest.test_case "erase: ghost machines" `Quick test_erase_drops_ghost_machines;
    Alcotest.test_case "erase: scrub statements" `Quick test_erase_scrubs_statements;
    Alcotest.test_case "erase: keep real asserts" `Quick test_erase_keeps_real_asserts;
    Alcotest.test_case "erase: foreign models" `Quick test_erase_drops_foreign_models;
    Alcotest.test_case "erase: examples recheck" `Quick test_erased_examples_recheck ]
