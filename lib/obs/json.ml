(** A minimal JSON tree, printer, and parser — just enough for the
    observability layer (metrics dumps, Chrome trace_event files, bench
    result documents) and for the tests that read them back. The container
    deliberately has no JSON dependency; this module is the whole story. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null rather than emit an
   unparseable document. *)
let float_to buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "1." or "1" are valid OCaml float prints but "1." is not valid JSON;
       %.12g never emits a trailing dot, though it may emit bare integers,
       which are fine *)
    if
      String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
      && not (String.contains s '.')
    then Buffer.add_string buf ".0"
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* Indented printing for human-facing files (stats dumps, bench results). *)
let rec write_pretty buf indent = function
  | List (_ :: _ as items) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        write_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        escape_to buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | j -> write buf j

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf j = Fmt.string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail pos fmt = Fmt.kstr (fun m -> raise (Parse_error (Fmt.str "at %d: %s" pos m))) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.pos "expected %C, found %C" ch x
  | None -> fail c.pos "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "expected %s" word

(* Encode one Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as x) -> Char.code x - Char.code '0'
      | Some ('a' .. 'f' as x) -> Char.code x - Char.code 'a' + 10
      | Some ('A' .. 'F' as x) -> Char.code x - Char.code 'A' + 10
      | _ -> fail c.pos "bad \\u escape"
    in
    c.pos <- c.pos + 1;
    v := (!v * 16) + d
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1
      | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1
      | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1
      | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1
      | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1
      | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1
      | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1
      | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1
      | Some 'u' ->
        c.pos <- c.pos + 1;
        let u = hex4 c in
        (* surrogate pairs *)
        if u >= 0xd800 && u <= 0xdbff then begin
          expect c '\\';
          expect c 'u';
          let lo = hex4 c in
          add_utf8 buf (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
        end
        else add_utf8 buf u
      | _ -> fail c.pos "bad escape");
      go ())
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail start "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        c.pos <- c.pos + 1;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        (k, v)
      in
      let fields = ref [ field () ] in
      while peek c = Some ',' do
        c.pos <- c.pos + 1;
        fields := field () :: !fields
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and report readers)                            *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

(** [path j ["a";"b"]] is [j.a.b], if every step exists. *)
let path j keys =
  List.fold_left (fun j k -> Option.bind j (member k)) (Some j) keys

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
