// A two-node relay ring in concrete P syntax.
// Check it:     dune exec bin/pc.exe -- verify examples/p/ring.p --trace
// Simulate it:  dune exec bin/pc.exe -- simulate examples/p/ring.p --trace
//
// A Starter creates two Relay nodes, wires them into a ring, and injects a
// counted token. Each relay bumps the counter (wrapping at 16) and forwards;
// the assertion checks the parity invariant of the two-node ring.

event Token(int);
event Wire(id);
event unit;

machine Relay {
  var next : id;
  var parity : int;
  var cnt : int;

  state Boot {
  }

  state Setup {
    entry {
      next := arg;
      raise(unit);
    }
  }

  state Idle {
  }

  state Forward {
    entry {
      cnt := arg;
      assert(cnt % 2 == parity);
      send(next, Token, (cnt + 1) % 16);
      raise(unit);
    }
  }

  step (Boot, Wire, Setup);
  step (Setup, unit, Idle);
  step (Idle, Token, Forward);
  step (Forward, unit, Idle);
}

ghost machine Starter {
  ghost var a : id;
  ghost var b : id;

  state Init {
    entry {
      a := new Relay(parity = 0);
      b := new Relay(parity = 1);
      send(a, Wire, b);
      send(b, Wire, a);
      send(a, Token, 0);
    }
  }
}

main Starter();
