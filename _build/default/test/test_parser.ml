(* Tests for the lexer and the recursive-descent parser, including a qcheck
   round-trip property: parse ∘ print is the identity on generated
   programs (up to locations). *)

open P_syntax

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- lexer ---------------- *)

let tokens_of s =
  List.filter
    (fun t -> t <> P_parser.Token.EOF)
    (List.map fst (P_parser.Lexer.all_tokens (P_parser.Lexer.create s)))

let test_lexer_basic () =
  let open P_parser.Token in
  check int_t "count" 6 (List.length (tokens_of "x := 1 + y;"));
  (match tokens_of "x := 1 + y;" with
  | [ IDENT "x"; ASSIGN; INT 1; PLUS; IDENT "y"; SEMI ] -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  match tokens_of "" with [] -> () | _ -> Alcotest.fail "empty input"

let test_lexer_keywords () =
  let open P_parser.Token in
  (match tokens_of "machine ghost event state if else while" with
  | [ KW_MACHINE; KW_GHOST; KW_EVENT; KW_STATE; KW_IF; KW_ELSE; KW_WHILE ] -> ()
  | _ -> Alcotest.fail "keywords");
  match tokens_of "machines" with
  | [ IDENT "machines" ] -> ()
  | _ -> Alcotest.fail "keyword prefix stays an identifier"

let test_lexer_operators () =
  let open P_parser.Token in
  match tokens_of "== != <= >= < > && || ! = * / %" with
  | [ EQEQ; BANGEQ; LE; GE; LT; GT; AMPAMP; BARBAR; BANG; EQUALS; STAR; SLASH; PERCENT ]
    -> ()
  | _ -> Alcotest.fail "operators"

let test_lexer_comments () =
  let open P_parser.Token in
  (match tokens_of "a // line comment\n b" with
  | [ IDENT "a"; IDENT "b" ] -> ()
  | _ -> Alcotest.fail "line comment");
  match tokens_of "a /* block \n comment */ b" with
  | [ IDENT "a"; IDENT "b" ] -> ()
  | _ -> Alcotest.fail "block comment"

let test_lexer_locations () =
  let lx = P_parser.Lexer.create ~file:"t.p" "ab\n  cd" in
  let toks = P_parser.Lexer.all_tokens lx in
  match toks with
  | [ (_, l1); (_, l2); _ ] ->
    check int_t "line 1" 1 l1.Loc.line;
    check int_t "line 2" 2 l2.Loc.line;
    check int_t "col 2" 2 l2.Loc.col
  | _ -> Alcotest.fail "expected two tokens"

let test_lexer_errors () =
  let fails s =
    match tokens_of s with
    | exception P_parser.Parse_error.Error _ -> ()
    | _ -> Alcotest.failf "lexing %S should fail" s
  in
  fails "@";
  fails "a & b";
  fails "a | b";
  fails "/* unterminated"

(* ---------------- parser ---------------- *)

let parse s = P_parser.Parser.program_of_string s

let minimal = "event e;\nmachine M { state S { } }\nmain M();"

let test_parse_minimal () =
  let p = parse minimal in
  check int_t "events" 1 (List.length p.Ast.events);
  check int_t "machines" 1 (List.length p.Ast.machines);
  check string_t "main" "M" (Names.Machine.to_string p.Ast.main)

let test_parse_event_payloads () =
  let p = parse "event a(int);\nevent b, c(id);\nmachine M { state S { } }\nmain M();" in
  let find n = Option.get (Ast.find_event p (Names.Event.of_string n)) in
  check bool_t "a int" true ((find "a").event_payload = Ptype.Int);
  check bool_t "b void" true ((find "b").event_payload = Ptype.Void);
  check bool_t "c id" true ((find "c").event_payload = Ptype.Machine_id)

let test_parse_event_literal_resolution () =
  (* identifiers declared as events parse to Event_lit, others to Var *)
  let p =
    parse
      "event e;\nmachine M { var x : event; state S { entry { x := e; } } }\nmain M();"
  in
  let m = List.hd p.Ast.machines in
  let st = List.hd m.Ast.states in
  match st.Ast.entry.s with
  | Ast.Assign (_, { e = Ast.Event_lit ev; _ }) ->
    check string_t "event lit" "e" (Names.Event.to_string ev)
  | _ -> Alcotest.fail "expected event literal assignment"

let test_parse_statements () =
  let src =
    {|event e(int);
      machine M {
        var x : int;
        var m : id;
        state S {
          entry {
            skip;
            x := 1;
            m := new M(x = 2);
            send(m, e, x);
            raise(e, 3);
            assert(x == 1);
            if (x < 2) { leave; } else { return; }
            while (x > 0) { x := x - 1; }
            call S;
            delete;
          }
        }
      }
      main M();|}
  in
  let p = parse src in
  let m = List.hd p.Ast.machines in
  let count = Ast.fold_stmt (fun n _ -> n + 1) 0 (List.hd m.Ast.states).Ast.entry in
  check bool_t "all statements parsed" true (count > 12)

let test_parse_if_else_chain () =
  let src =
    {|event e;
      machine M { var x : int;
        state S { entry { if (x == 1) { skip; } else if (x == 2) { x := 3; } } } }
      main M();|}
  in
  let p = parse src in
  let m = List.hd p.Ast.machines in
  match (List.hd m.Ast.states).Ast.entry.s with
  | Ast.If (_, _, { s = Ast.If (_, _, { s = Ast.Skip; _ }); _ }) -> ()
  | _ -> Alcotest.fail "else-if chain"

let test_parse_transitions_and_bindings () =
  let src =
    {|event e1; event e2;
      machine M {
        action A { skip; }
        state S { defer e1; postpone e2; }
        state T { }
        step (S, e2, T);
        push (T, e1, S);
        on (S, e2) do A;
      }
      main M();|}
  in
  let p = parse src in
  let m = List.hd p.Ast.machines in
  check int_t "steps" 1 (List.length m.Ast.steps);
  check int_t "calls" 1 (List.length m.Ast.calls);
  check int_t "bindings" 1 (List.length m.Ast.bindings);
  let s0 = List.hd m.Ast.states in
  check int_t "defer" 1 (List.length s0.Ast.deferred);
  check int_t "postpone" 1 (List.length s0.Ast.postponed)

let test_parse_ghost_and_foreign () =
  let src =
    {|event e;
      ghost machine G {
        ghost var g : id;
        state S { entry { if (*) { skip; } } }
      }
      machine M {
        foreign f(int, bool) : int model 42;
        foreign g2() : void;
        state S { entry { f(1, true); } }
      }
      main G();|}
  in
  let p = parse src in
  let g = List.hd p.Ast.machines in
  check bool_t "ghost machine" true g.Ast.machine_ghost;
  check bool_t "ghost var" true (List.hd g.Ast.vars).Ast.var_ghost;
  let m = List.nth p.Ast.machines 1 in
  check int_t "foreigns" 2 (List.length m.Ast.foreigns);
  let f = List.hd m.Ast.foreigns in
  check int_t "params" 2 (List.length f.Ast.foreign_params);
  check bool_t "model" true (f.Ast.foreign_model <> None)

let test_parse_main_inits () =
  let p = parse "event e;\nmachine M { var x : int; state S { } }\nmain M(x = 5);" in
  check int_t "main init" 1 (List.length p.Ast.main_init)

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception P_parser.Parse_error.Error _ -> ()
    | _ -> Alcotest.failf "parsing should fail: %s" s
  in
  fails "";
  fails "machine M { }";
  (* no states is fine syntactically, but missing main is not *)
  fails "event e; machine M { state S { } }";
  fails "event e; machine M { state S { entry { x := ; } } } main M();";
  fails "event e; machine M { state S { entry { send(); } } } main M();";
  fails "event e; machine M { state S { } } main M()";
  (* trailing garbage *)
  fails "event e; machine M { state S { } } main M(); extra"

let test_parse_error_location () =
  match parse "event e;\nmachine M {\n  state S { entry { x := ; } }\n}\nmain M();" with
  | exception P_parser.Parse_error.Error { loc; _ } ->
    check int_t "error line" 3 loc.Loc.line
  | _ -> Alcotest.fail "expected parse error"

(* ---------------- round trips ---------------- *)

let roundtrip_ok p =
  let printed = Pretty.program_to_string p in
  match P_parser.Parser.program_of_string printed with
  | p2 -> String.equal printed (Pretty.program_to_string p2)
  | exception P_parser.Parse_error.Error e ->
    Alcotest.failf "re-parse failed: %s@.%s" (P_parser.Parse_error.to_string e) printed

let test_roundtrip_examples () =
  List.iter
    (fun (name, p) ->
      check bool_t (name ^ " roundtrips") true (roundtrip_ok p))
    [ ("elevator", P_examples_lib.Elevator.program ());
      ("pingpong", P_examples_lib.Pingpong.program ());
      ("german", P_examples_lib.German.program ());
      ("switchled", P_examples_lib.Switch_led.program ());
      ("tokenring", P_examples_lib.Token_ring.program ());
      ("boundedbuffer", P_examples_lib.Bounded_buffer.program ());
      ("usb-hsm", P_usb.Gen.program_of_spec P_usb.Gen.hsm_spec) ]

(* qcheck: generated random programs round-trip *)

let gen_program : Ast.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Builder in
  let ident prefix = map (fun i -> Fmt.str "%s%d" prefix i) (int_range 0 4) in
  let gen_expr =
    sized @@ fix (fun self n ->
        if Stdlib.(n <= 0) then
          oneof
            [ map int (int_range 0 9);
              pure this;
              pure null;
              pure tru;
              map v (ident "x") ]
        else
          oneof
            [ map2 ( + ) (self (Stdlib.( / ) n 2)) (self (Stdlib.( / ) n 2));
              map2 ( < ) (self 0) (self 0);
              map not_ (pure (v "x0"));
              self 0 ])
  in
  let gen_stmt =
    sized @@ fix (fun self n ->
        if Stdlib.(n <= 0) then
          oneof
            [ pure skip;
              map2 (fun x e -> assign x e) (ident "x") gen_expr;
              map (fun e -> assert_ (e == e)) gen_expr;
              map (fun ev -> raise_ ev) (ident "e");
              pure leave ]
        else
          oneof
            [ map2 (fun a b -> seq [ a; b ]) (self (Stdlib.( / ) n 2)) (self (Stdlib.( / ) n 2));
              map3 (fun c a b -> if_ (c == c) a b) gen_expr (self (Stdlib.( / ) n 2))
                (self (Stdlib.( / ) n 2));
              map2 (fun c body -> while_ (c == c) body) gen_expr (self (Stdlib.( / ) n 2)) ])
  in
  let gen_state i =
    let* entry = gen_stmt in
    let* defer = oneofl [ []; [ "e0" ]; [ "e1"; "e2" ] ] in
    pure (state ~defer ~entry (Fmt.str "S%d" i))
  in
  let* n_states = int_range 1 4 in
  let* states = flatten_l (List.init n_states gen_state) in
  let* n_vars = int_range 0 4 in
  let vars = List.init n_vars (fun i -> var_decl (Fmt.str "x%d" i) Ptype.Int) in
  let* ghost = QCheck2.Gen.bool in
  let m = machine ~ghost "M" states ~vars in
  let events = List.init 5 (fun i -> event (Fmt.str "e%d" i)) in
  pure (program ~events ~machines:[ m ] "M")

let roundtrip_prop =
  QCheck2.Test.make ~name:"parse (print p) = p" ~count:200 gen_program roundtrip_ok

let suite =
  [ Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer keywords" `Quick test_lexer_keywords;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer locations" `Quick test_lexer_locations;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse payloads" `Quick test_parse_event_payloads;
    Alcotest.test_case "parse event literals" `Quick test_parse_event_literal_resolution;
    Alcotest.test_case "parse statements" `Quick test_parse_statements;
    Alcotest.test_case "parse else-if" `Quick test_parse_if_else_chain;
    Alcotest.test_case "parse transitions" `Quick test_parse_transitions_and_bindings;
    Alcotest.test_case "parse ghost+foreign" `Quick test_parse_ghost_and_foreign;
    Alcotest.test_case "parse main inits" `Quick test_parse_main_inits;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error location" `Quick test_parse_error_location;
    Alcotest.test_case "roundtrip examples" `Quick test_roundtrip_examples;
    QCheck_alcotest.to_alcotest roundtrip_prop ]
