lib/syntax/pretty.ml: Ast Fmt List Names Ptype
