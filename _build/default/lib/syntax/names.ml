(** Typed name wrappers for the five identifier namespaces of a P program.

    The paper requires "identifiers for machines, state names, events, and
    variables are unique" (section 3.3). Giving each namespace its own module
    keeps the interpreter and checker from ever confusing an event name with a
    state name, at zero runtime cost. *)

module type ID = sig
  type t

  val of_string : string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module String_id () : ID = struct
  type t = string

  let of_string s = s
  let to_string s = s
  let equal = String.equal
  let compare = String.compare
  let hash = Hashtbl.hash
  let pp = Fmt.string

  module Set = Set.Make (String)
  module Map = Map.Make (String)
  module Tbl = Hashtbl.Make (struct
    type t = string

    let equal = String.equal
    let hash = Hashtbl.hash
  end)
end

module Event = String_id ()
module Machine = String_id ()
module State = String_id ()
module Var = String_id ()
module Action = String_id ()
module Foreign = String_id ()
