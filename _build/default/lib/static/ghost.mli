(** The ghost-erasure type system (section 3.3): within real machines,
    ghost state must not influence real computation (assertions excepted),
    and machine-identifier values are completely separated between the
    ghost and real worlds so every send to a ghost machine can be erased
    syntactically. See the implementation header for the full rule list. *)

val is_ghost_var : Symtab.machine_info -> P_syntax.Names.Var.t -> bool

val ghost_tainted : Symtab.machine_info -> P_syntax.Ast.expr -> bool
(** True when the expression reads any ghost variable (or [*]). *)

val id_ghostness : Symtab.machine_info -> P_syntax.Ast.expr -> bool option
(** Ghostness of an id-typed expression where determinable: [Some true] for
    ghost references, [Some false] for real ones ([this], real variables),
    [None] for unclassifiable expressions such as [null]. *)

val check : Symtab.t -> Symtab.diagnostic list
(** Check the erasure discipline on every real machine. *)
