lib/semantics/machine.ml: Ast Equeue Fmt List Mid Names Option P_static P_syntax Stdlib Value
