lib/semantics/mid.mli: Fmt Hashtbl Map Set
