lib/runtime/api.mli: Context Exec P_compile Rt_trace Rt_value
