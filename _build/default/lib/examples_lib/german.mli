(** A software implementation of German's cache coherence protocol — the
    third benchmark of Figure 7. A directory ([Home]) serializes
    shared/exclusive requests from [n] [Client] caches and asserts the
    coherence invariant at every exclusive grant. *)

val home_machine : n:int -> P_syntax.Ast.machine
(** The directory for [n] clients (the sharer list unrolls into per-client
    flags, as the core calculus has no arrays). *)

val client_machine : P_syntax.Ast.machine

val env_machine : ?n:int -> requests:int -> unit -> P_syntax.Ast.machine
(** The ghost environment; [requests <= 0] prods clients forever. *)

val events : P_syntax.Ast.event_decl list

val program : ?n:int -> ?requests:int -> unit -> P_syntax.Ast.program
(** [n] clients (default 3, the Figure 7 configuration). *)

val buggy_program : ?n:int -> ?requests:int -> unit -> P_syntax.Ast.program
(** Seeded coherence bug: [ServeE] forgets to invalidate the exclusive
    owner; the GrantE invariant fails at delay bound 0. *)
