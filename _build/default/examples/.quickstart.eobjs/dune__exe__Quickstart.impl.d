examples/quickstart.ml: Fmt List P_checker P_compile P_examples_lib P_semantics P_static P_syntax String
