(** A composed USB hub stack: the case-study architecture of section 6 —
    "the hub, each of the ports, and each of the devices are designed as P
    machines" — at demonstration scale.

    A real [Hub] machine owns [n_ports] real [Port] machines (created once,
    on the first start). Each port drives enumeration of the (ghost)
    [DeviceHw] behind it: devices attach and detach at will and answer
    enumeration requests correctly, with a failure, or not at all — the
    "unexpected events from disabled or stopped devices [and] non-compliant
    hardware" the paper's hub must survive. A ghost [Os] machine issues
    un-coordinated start/stop/suspend/resume callbacks. Safety is the hub's
    bookkeeping assertion (the count of enabled ports stays within
    [0, n_ports]) plus, pervasively, the implicit every-event-handled
    check: every Ignore binding and defer below exists because the checker
    flagged that (state, event) pair during development — the methodology
    of section 6 in miniature.

    This model complements {!Gen}: that reproduces the published machine
    *sizes* (Figure 8), this reproduces the *interaction structure*. *)

open P_syntax.Builder

let events =
  [ (* OS -> hub *)
    event "HubStart";
    event "HubStop";
    event "HubSuspend";
    event "HubResume";
    (* hub -> port *)
    event "PortPower" ~payload:P_syntax.Ptype.Bool;
    event "PortSuspend";
    event "PortResume";
    (* port -> hub *)
    (* the payload is a per-port sequence number: two status changes of the
       same kind can be in flight together, and the ⊕ dedup append would
       coalesce them if the payloads matched — the counter-in-the-payload
       idiom of section 3.1, found here by the checker (the hub's balance
       assertion tripped) *)
    event "PortUp" ~payload:P_syntax.Ptype.Int;
    event "PortDown" ~payload:P_syntax.Ptype.Int;
    (* device hardware <-> port *)
    event "Attach";
    event "Detach";
    event "EnumRequest" ~payload:P_syntax.Ptype.Machine_id;
    event "EnumOk";
    event "EnumFail";
    (* internal *)
    event "unit";
    event "halt" ]

(* ------------------------------------------------------------------ *)
(* The device hardware model (ghost)                                    *)
(* ------------------------------------------------------------------ *)

let device_machine =
  machine "DeviceHw" ~ghost:true
    ~vars:[ var_decl "port" P_syntax.Ptype.Machine_id ]
    ~actions:[ action "Ignore" skip ]
    [ state "Detached"
        ~entry:(if_nondet (seq [ send (v "port") "Attach"; raise_ "unit" ]));
      state "Attached"
        ~entry:(if_nondet (seq [ send (v "port") "Detach"; raise_ "halt" ]));
      state "Answering"
        ~entry:
          (seq
             [ (* correct answer, failure, or silence (a hung device) *)
               if_ nondet
                 (send (v "port") "EnumOk")
                 (if_nondet (send (v "port") "EnumFail"));
               raise_ "unit" ]) ]
    ~steps:
      [ ("Detached", "unit", "Attached");
        ("Attached", "halt", "Detached");
        ("Attached", "EnumRequest", "Answering");
        ("Answering", "unit", "Attached");
        ("Answering", "EnumRequest", "Answering") ]
    ~bindings:
      [ (* a request racing with a detach is hardware reality: drop it *)
        on ("Detached", "EnumRequest") ~do_:"Ignore" ]

(* ------------------------------------------------------------------ *)
(* The port state machine (real)                                        *)
(* ------------------------------------------------------------------ *)

(* The port reports PortUp exactly when it first enables a device and
   PortDown exactly when an enabled device goes away (detach, suspend does
   not count it down, power-off does); the [counted] flag keeps the
   reporting balanced so the hub's counter assertion holds. *)
let port_machine =
  (* the tag combines the port's index and a wrapping sequence number, so no
     two in-flight status events ever carry equal payloads — across ports or
     within one *)
  let tag = (v "pindex" * int 16) + v "seq" in
  let bump_seq = assign "seq" ((v "seq" + int 1) % int 16) in
  let report_up =
    when_ (not_ (v "counted"))
      (seq [ assign "counted" tru; send (v "hub") "PortUp" ~payload:tag; bump_seq ])
  in
  let report_down =
    when_ (v "counted")
      (seq [ assign "counted" fls; send (v "hub") "PortDown" ~payload:tag; bump_seq ])
  in
  let noise = [ "Attach"; "Detach"; "EnumOk"; "EnumFail"; "PortResume"; "PortSuspend" ] in
  machine "Port"
    ~vars:
      [ var_decl "hub" P_syntax.Ptype.Machine_id;
        var_decl ~ghost:true "dev" P_syntax.Ptype.Machine_id;
        var_decl "retries" P_syntax.Ptype.Int;
        var_decl "counted" P_syntax.Ptype.Bool;
        var_decl "seq" P_syntax.Ptype.Int;
        var_decl "pindex" P_syntax.Ptype.Int ]
    ~actions:[ action "Ignore" skip ]
    [ (* Off: never powered; the device model is created on first power *)
      state "Off" ~entry:(seq [ assign "counted" fls; assign "seq" (int 0) ]);
      state "FirstPower"
        ~entry:
          (if_ (arg == tru)
             (seq [ new_ "dev" "DeviceHw" [ ("port", this) ]; raise_ "unit" ])
             (raise_ "halt"));
      state "Powered" ~entry:(assign "retries" (int 0));
      state "Enumerating" ~defer:[ "PortSuspend" ]
        ~entry:(send (v "dev") "EnumRequest" ~payload:this);
      state "Retry" ~defer:[ "PortSuspend" ]
        ~entry:
          (seq
             [ assign "retries" (v "retries" + int 1);
               (* the hub "can fail requests from incorrect hardware" *)
               if_ (v "retries" < int 3) (raise_ "unit") (raise_ "halt") ]);
      state "Enabled" ~entry:report_up;
      state "Failed" ~entry:skip;
      state "Suspended" ~defer:[ "Attach"; "Detach"; "EnumOk"; "EnumFail" ] ~entry:skip;
      (* power changed while running: count down if needed, then branch *)
      state "PowerSwitch" ~defer:[ "Detach"; "Attach"; "EnumOk"; "EnumFail" ]
        ~entry:(seq [ report_down; if_ (arg == tru) (raise_ "unit") (raise_ "halt") ]);
      state "DeviceGone" ~entry:(seq [ report_down; raise_ "unit" ]);
      state "Unpowered" ~postpone:[ "Attach"; "Detach"; "EnumOk"; "EnumFail" ]
        ~entry:skip ]
    ~steps:
      [ ("Off", "PortPower", "FirstPower");
        ("FirstPower", "unit", "Powered");
        ("FirstPower", "halt", "Off");
        ("Powered", "Attach", "Enumerating");
        ("Powered", "PortPower", "PowerSwitch");
        ("Enumerating", "EnumOk", "Enabled");
        ("Enumerating", "EnumFail", "Retry");
        ("Enumerating", "Detach", "Powered");
        ("Enumerating", "PortPower", "PowerSwitch");
        ("Retry", "unit", "Enumerating");
        ("Retry", "halt", "Failed");
        ("Retry", "Detach", "Powered");
        ("Retry", "PortPower", "PowerSwitch");
        ("Enabled", "Detach", "DeviceGone");
        ("Enabled", "PortSuspend", "Suspended");
        ("Enabled", "PortPower", "PowerSwitch");
        ("DeviceGone", "unit", "Powered");
        ("DeviceGone", "PortPower", "PowerSwitch");
        ("Failed", "Detach", "Powered");
        ("Failed", "PortPower", "PowerSwitch");
        ("Suspended", "PortResume", "Enabled");
        ("Suspended", "PortPower", "PowerSwitch");
        ("PowerSwitch", "unit", "Powered");
        ("PowerSwitch", "halt", "Unpowered");
        ("Unpowered", "PortPower", "RePower") ]
    ~bindings:
      ((* stale events per state, each one a checker finding during
          development *)
       List.concat_map
         (fun (st, evs) -> List.map (fun ev -> on (st, ev) ~do_:"Ignore") evs)
         [ ("Off", [ "PortSuspend"; "PortResume"; "Attach"; "Detach"; "EnumOk"; "EnumFail" ]);
           ("Powered", [ "PortSuspend"; "PortResume"; "EnumOk"; "EnumFail"; "Detach" ]);
           ("Enumerating", [ "Attach"; "PortResume" ]);
           ("Retry", [ "EnumOk"; "EnumFail"; "Attach"; "PortResume" ]);
           ("Enabled", [ "Attach"; "EnumOk"; "EnumFail"; "PortResume" ]);
           ("DeviceGone", noise);
           ("Failed", [ "Attach"; "EnumOk"; "EnumFail"; "PortSuspend"; "PortResume" ]);
           ("Suspended", [ "PortSuspend" ]);
           ("PowerSwitch", [ "PortSuspend"; "PortResume" ]);
           ("Unpowered", [ "PortSuspend"; "PortResume"; "Attach"; "Detach"; "EnumOk"; "EnumFail" ]);
           ("FirstPower", noise);
           ("RePower", noise) ])

(* Re-powering an already-initialized port skips device creation. *)
let port_machine =
  let m = port_machine in
  { m with
    P_syntax.Ast.states =
      m.P_syntax.Ast.states
      @ [ state "RePower"
            ~entry:(if_ (arg == tru) (raise_ "unit") (raise_ "halt")) ];
    P_syntax.Ast.steps =
      m.P_syntax.Ast.steps
      @ [ step ("RePower", "unit", "Powered"); step ("RePower", "halt", "Unpowered") ]
  }

(* ------------------------------------------------------------------ *)
(* The hub state machine (real)                                         *)
(* ------------------------------------------------------------------ *)

let hub_machine ~n_ports =
  let port_var i = Fmt.str "p%d" i in
  let ports = List.init n_ports port_var in
  let broadcast ev payload = seq (List.map (fun p -> send (v p) ev ~payload) ports) in
  let broadcast0 ev = seq (List.map (fun p -> send (v p) ev) ports) in
  let lifecycle_ignores st evs = List.map (fun ev -> on (st, ev) ~do_:"Ignore") evs in
  machine "Hub"
    ~vars:
      (List.map (fun p -> var_decl p P_syntax.Ptype.Machine_id) ports
      @ [ var_decl "up" P_syntax.Ptype.Int; var_decl "inited" P_syntax.Ptype.Bool ])
    ~actions:
      [ action "CountUp"
          (seq [ assign "up" (v "up" + int 1); assert_ (v "up" <= int n_ports) ]);
        action "CountDown"
          (seq [ assign "up" (v "up" - int 1); assert_ (v "up" >= int 0) ]);
        action "Ignore" skip ]
    [ state "Stopped" ~entry:(when_ (not_ (v "inited")) (assign "up" (int 0)));
      state "Starting"
        ~entry:
          (seq
             [ when_ (not_ (v "inited"))
                 (seq
                    (List.mapi
                       (fun i p -> new_ p "Port" [ ("hub", this); ("pindex", int i) ])
                       ports
                    @ [ assign "inited" tru ]));
               broadcast "PortPower" tru;
               raise_ "unit" ]);
      state "Running" ~entry:skip;
      state "Suspending" ~entry:(seq [ broadcast0 "PortSuspend"; raise_ "unit" ]);
      state "SuspendedHub" ~entry:skip;
      state "Resuming" ~entry:(seq [ broadcast0 "PortResume"; raise_ "unit" ]);
      state "Stopping" ~entry:(seq [ broadcast "PortPower" fls; raise_ "unit" ]) ]
    ~steps:
      [ ("Stopped", "HubStart", "Starting");
        ("Starting", "unit", "Running");
        ("Running", "HubSuspend", "Suspending");
        ("Suspending", "unit", "SuspendedHub");
        ("SuspendedHub", "HubResume", "Resuming");
        ("Resuming", "unit", "Running");
        ("Running", "HubStop", "Stopping");
        ("SuspendedHub", "HubStop", "Stopping");
        ("Stopping", "unit", "Stopped") ]
    ~bindings:
      ((* port status changes can arrive in every hub state *)
       List.concat_map
         (fun st ->
           [ on (st, "PortUp") ~do_:"CountUp"; on (st, "PortDown") ~do_:"CountDown" ])
         [ "Stopped"; "Starting"; "Running"; "Suspending"; "SuspendedHub"; "Resuming";
           "Stopping" ]
      @ lifecycle_ignores "Stopped" [ "HubStop"; "HubSuspend"; "HubResume" ]
      @ lifecycle_ignores "Starting" [ "HubStart"; "HubSuspend"; "HubStop"; "HubResume" ]
      @ lifecycle_ignores "Running" [ "HubStart"; "HubResume" ]
      @ lifecycle_ignores "Suspending" [ "HubStart"; "HubSuspend"; "HubStop"; "HubResume" ]
      @ lifecycle_ignores "SuspendedHub" [ "HubStart"; "HubSuspend" ]
      @ lifecycle_ignores "Resuming" [ "HubStart"; "HubSuspend"; "HubStop"; "HubResume" ]
      @ lifecycle_ignores "Stopping" [ "HubStart"; "HubSuspend"; "HubStop"; "HubResume" ])

(* ------------------------------------------------------------------ *)
(* The OS model (ghost)                                                 *)
(* ------------------------------------------------------------------ *)

let os_machine =
  machine "Os" ~ghost:true
    ~vars:[ var_decl "hub" P_syntax.Ptype.Machine_id ]
    [ state "Boot"
        ~entry:
          (seq [ new_ "hub" "Hub" [ ("inited", fls); ("up", int 0) ]; raise_ "unit" ]);
      state "Drive"
        ~entry:
          (seq
             [ if_ nondet
                 (if_ nondet (send (v "hub") "HubStart") (send (v "hub") "HubStop"))
                 (if_ nondet (send (v "hub") "HubSuspend") (send (v "hub") "HubResume"));
               raise_ "unit" ]) ]
    ~steps:[ ("Boot", "unit", "Drive"); ("Drive", "unit", "Drive") ]

(** The closed hub-stack program with [n_ports] ports. *)
let program ?(n_ports = 2) () =
  program ~events
    ~machines:[ os_machine; hub_machine ~n_ports; port_machine; device_machine ]
    "Os"

(** Seeded bug for the case-study narrative: the stopped hub forgets that
    ports still deliver late status changes after the power-down broadcast —
    one of the "majority of the bugs ... due to unhandled events that we
    did not anticipate arriving". *)
let buggy_program ?(n_ports = 2) () =
  let p = program ~n_ports () in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "Hub" then
            { m with
              P_syntax.Ast.bindings =
                List.filter
                  (fun (bd : P_syntax.Ast.binding) ->
                    not
                      Stdlib.(
                        P_syntax.Names.State.to_string bd.bd_state = "Stopped"
                        && (P_syntax.Names.Event.to_string bd.bd_event = "PortUp"
                           || P_syntax.Names.Event.to_string bd.bd_event = "PortDown")))
                  m.P_syntax.Ast.bindings }
          else m)
        p.P_syntax.Ast.machines }
