(** Multicore state-space exploration.

    The paper's case study notes the verifier ran "after using multicores to
    scale the state exploration"; this module is that scaling knob for our
    checker: {!Engine.run_parallel} over the delay-bounded spec — a
    work-stealing search on OCaml 5 domains. Each worker owns a Chase–Lev
    deque and steals from its peers when idle; the seen set is a shared
    {!State_store} — mutex-guarded shards for the exact store, lock-free
    CAS claims on an off-heap arena for the compact store — with the
    min-spent merge rule applied per claim. The search is stratified by
    delays spent, which keeps it deterministic: the state count, the
    transition count, and the found-or-not verdict are independent of the
    number of domains (only wall-clock changes), and a counterexample is
    always the sequential engine's — lowest dense state index, not
    whichever worker won the race.

    The sequential {!Delay_bounded.explore} remains the reference; the test
    suite checks this engine agrees with it on verdicts and state counts,
    and that its own triple is identical across domain counts. *)

type domains_error = { requested : int; recommended : int; hard_limit : int }

exception Invalid_domains of domains_error

(* OCaml's runtime refuses to run more than 128 domains at once
   (Domain.spawn raises a bare Failure past that); stay under it and fail
   with a typed error instead. *)
let hard_limit = 128

let pp_domains_error ppf (e : domains_error) =
  if e.requested < 1 then
    Fmt.pf ppf "%d domains requested; at least 1 is required" e.requested
  else if e.requested > e.hard_limit then
    Fmt.pf ppf
      "%d domains requested; the OCaml runtime supports at most %d concurrent \
       domains"
      e.requested e.hard_limit
  else
    Fmt.pf ppf
      "%d domains requested, but this machine only recommends %d \
       (Domain.recommended_domain_count); extra domains oversubscribe cores \
       and slow the search down"
      e.requested e.recommended

let validate_domains ?(hard = false) ?recommended requested =
  let recommended =
    match recommended with
    | Some r -> r
    | None -> Domain.recommended_domain_count ()
  in
  let err = { requested; recommended; hard_limit } in
  if requested < 1 then Error err
  else if requested > hard_limit then Error err
  else if (not hard) && requested > recommended then Error err
  else Ok requested

(** Parallel delay-bounded exploration. Same verdicts and state counts as
    {!Delay_bounded.explore} (Causal discipline, ⊕ queues); [domains] only
    affects wall-clock time. *)
let explore ?(max_states = 1_000_000) ?(domains = 4) ?spawn_threshold
    ?(fingerprint = Fingerprint.Incremental) ?(store = State_store.Exact)
    ?store_capacity ?(reduce = Reduce.none) ?faults ?(instr = Search.no_instr)
    ~delay_bound (tab : P_static.Symtab.t) : Search.result =
  (* the work-stealing engine sizes itself; the level-synchronous engine's
     spawn threshold is accepted for compatibility and ignored *)
  ignore (spawn_threshold : int option);
  let domains =
    match validate_domains ~hard:true domains with
    | Ok d -> d
    | Error e -> raise (Invalid_domains e)
  in
  let spec =
    Engine.spec ~bound:delay_bound ~max_states ~fp_mode:fingerprint ~store
      ?store_capacity ~reduce ?faults
      (Engine.stack_sched Engine.Causal)
  in
  Engine.run_parallel ~instr ~engine:"parallel"
    ~span_args:
      [ ("delay_bound", P_obs.Json.Int delay_bound);
        ("domains", P_obs.Json.Int domains) ]
    ~domains spec tab
