(** Shared infrastructure of the systematic-testing engines: ghost-choice
    enumeration, exploration statistics, and verdicts. *)

type resolved = {
  choices : bool list;
  outcome : P_semantics.Step.outcome;  (** never [Need_more_choices] *)
  items : P_semantics.Trace.item list;
}

val resolutions :
  ?fuel:int ->
  ?dedup:bool ->
  P_static.Symtab.t ->
  P_semantics.Config.t ->
  P_semantics.Mid.t ->
  resolved list
(** Every resolution of the ghost [*] choices hit while running one atomic
    block of the machine, in deterministic (false-first) order. *)

type stats = {
  mutable states : int;  (** distinct scheduler states visited *)
  mutable transitions : int;  (** atomic blocks executed *)
  mutable max_depth : int;
  mutable truncated : bool;  (** a bound cut the exploration short *)
  mutable elapsed_s : float;
}

val new_stats : unit -> stats
val pp_stats : stats Fmt.t

type counterexample = {
  error : P_semantics.Errors.t;
  trace : P_semantics.Trace.t;
  depth : int;  (** atomic blocks from the initial configuration *)
}

type verdict = No_error | Error_found of counterexample

type result = { verdict : verdict; stats : stats }

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
