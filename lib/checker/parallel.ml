(** Multicore state-space exploration.

    The paper's case study notes the verifier ran "after using multicores to
    scale the state exploration"; this module is that scaling knob for our
    checker: a level-synchronous parallel BFS of the delay-bounded search on
    OCaml 5 domains. Each round, the frontier is split among [domains]
    workers which run the atomic blocks and compute successor digests with
    worker-local {!Canon} encoders (digests are canonical, so worker-local
    interning yields identical keys); the main domain merges successors into
    the seen set sequentially, which keeps the algorithm deterministic:
    states, transitions, and the found-or-not verdict are independent of the
    number of domains (only wall-clock changes). Counterexamples are
    reported like the sequential engine's, with the trace rebuilt by replay.

    The sequential {!Delay_bounded.explore} remains the reference; the test
    suite checks this engine agrees with it exactly. *)

module Config = P_semantics.Config
module Step = P_semantics.Step
module Mid = P_semantics.Mid
module Symtab = P_static.Symtab

type node = {
  config : Config.t;
  stack : Mid.t list;
  delays : int;
  depth : int;
  idx : int;
}

type edge = { parent : int; rotations : int; choices : bool list }

(* A successor produced by a worker, not yet deduplicated. *)
type successor = {
  s_digest : string;
  s_config : Config.t;
  s_stack : Mid.t list;
  s_delays : int;
  s_parent : int;
  s_rotations : int;
  s_choices : bool list;
  s_error : P_semantics.Errors.t option;  (* Some = this edge fails *)
}

let rotate_k = Delay_bounded.rotate_k

(* Expand one node into raw successors (pure except for the optional
   expansion counter, which each worker bumps in its own domain shard). *)
let expand_node ?expansions (tab : Symtab.t) (canon : Canon.t) ~delay_bound (n : node) :
    successor list =
  let acc = ref [] in
  let width = List.length n.stack in
  let max_rot = if width <= 1 then 0 else min (delay_bound - n.delays) (width - 1) in
  for k = 0 to max_rot do
    let stack = rotate_k n.stack k in
    match stack with
    | [] -> ()
    | top :: _ ->
      List.iter
        (fun (r : Search.resolved) ->
          (match expansions with
          | None -> ()
          | Some c -> P_obs.Metrics.incr c);
          match r.outcome with
          | Step.Failed error ->
            acc :=
              { s_digest = "";
                s_config = n.config;
                s_stack = stack;
                s_delays = n.delays + k;
                s_parent = n.idx;
                s_rotations = k;
                s_choices = r.choices;
                s_error = Some error }
              :: !acc
          | Step.Need_more_choices -> assert false
          | outcome -> (
            match Delay_bounded.apply_outcome stack outcome with
            | None -> ()
            | Some (config, stack') ->
              let digest = Canon.digest canon config (List.map Mid.to_int stack') in
              acc :=
                { s_digest = digest;
                  s_config = config;
                  s_stack = stack';
                  s_delays = n.delays + k;
                  s_parent = n.idx;
                  s_rotations = k;
                  s_choices = r.choices;
                  s_error = None }
              :: !acc))
        (Search.resolutions tab n.config top)
  done;
  List.rev !acc

exception Found of Search.counterexample

(* Replay an edge chain (as in Delay_bounded.replay). *)
let replay tab (edges : edge option Dynarray.t) idx : P_semantics.Trace.t =
  let rec chain idx acc =
    match Dynarray.get edges idx with
    | None -> acc
    | Some e -> chain e.parent (e :: acc)
  in
  let path = chain idx [] in
  let config0, id0, items0 = Step.initial_config tab in
  let rec follow config stack items = function
    | [] -> items
    | (e : edge) :: rest -> (
      let stack = rotate_k stack e.rotations in
      match stack with
      | [] -> items
      | top :: _ -> (
        let outcome, new_items = Step.run_atomic tab config top ~choices:e.choices in
        let items = items @ new_items in
        match Delay_bounded.apply_outcome stack outcome with
        | Some (config, stack) -> follow config stack items rest
        | None -> items))
  in
  follow config0 [ id0 ] items0 path

(** Parallel delay-bounded exploration. Semantically identical to
    {!Delay_bounded.explore} (Causal discipline, ⊕ queues); [domains] only
    affects wall-clock time. *)
let explore ?(max_states = 1_000_000) ?(domains = 4) ?(spawn_threshold = 64)
    ?(instr = Search.no_instr) ~delay_bound (tab : Symtab.t) : Search.result =
  let stats = Search.new_stats () in
  let meters = Search.meters ~engine:"parallel" instr in
  (* the per-worker expansion counter: every worker increments the same
     handle, each into its own domain's shard; reads merge the shards *)
  let expansions =
    match instr.metrics with
    | None -> None
    | Some reg ->
      Some
        (P_obs.Metrics.counter reg
           ~labels:[ ("engine", "parallel") ]
           "checker.expansions")
  in
  let ticker = Search.ticker instr stats in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let finish verdict =
    stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    Search.emit_run_span instr ~engine:"parallel" ~t0_us ~stats
      [ ("delay_bound", P_obs.Json.Int delay_bound);
        ("domains", P_obs.Json.Int domains) ];
    { Search.verdict; stats }
  in
  let main_canon = Canon.create tab in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let edges : edge option Dynarray.t = Dynarray.create () in
  let config0, id0, _ = Step.initial_config tab in
  let root = { config = config0; stack = [ id0 ]; delays = 0; depth = 0; idx = 0 } in
  Dynarray.add_last edges None;
  Hashtbl.replace seen (Canon.digest main_canon config0 [ Mid.to_int id0 ]) 0;
  stats.states <- 1;
  (match meters with
  | None -> ()
  | Some m -> P_obs.Metrics.incr m.Search.m_states);
  let frontier = ref [ root ] in
  let depth = ref 0 in
  try
    while !frontier <> [] do
      if stats.states >= max_states then begin
        stats.truncated <- true;
        frontier := []
      end
      else begin
        incr depth;
        let nodes = Array.of_list !frontier in
        (match meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier
            (float_of_int (Array.length nodes)));
        (* small levels are cheaper sequentially: domain spawns and the
           stop-the-world minor GC synchronization only pay off once a
           level carries real work *)
        let n_workers =
          if Array.length nodes < spawn_threshold then 1
          else max 1 (min domains (Array.length nodes))
        in
        (* split the frontier into [n_workers] contiguous slices *)
        let slice w =
          let total = Array.length nodes in
          let lo = total * w / n_workers and hi = total * (w + 1) / n_workers in
          Array.to_list (Array.sub nodes lo (hi - lo))
        in
        let worker w () =
          (* worker-local canon: same deterministic interning, no sharing *)
          let canon = Canon.create tab in
          List.concat_map (expand_node ?expansions tab canon ~delay_bound) (slice w)
        in
        let results =
          if n_workers = 1 then [ worker 0 () ]
          else begin
            let handles = List.init n_workers (fun w -> Domain.spawn (worker w)) in
            List.map Domain.join handles
          end
        in
        (* sequential merge keeps determinism *)
        let next = ref [] in
        List.iter
          (fun succs ->
            List.iter
              (fun (s : successor) ->
                stats.transitions <- stats.transitions + 1;
                (match meters with
                | None -> ()
                | Some m -> P_obs.Metrics.incr m.Search.m_transitions);
                Search.tick ticker;
                match s.s_error with
                | Some error ->
                  let idx = Dynarray.length edges in
                  Dynarray.add_last edges
                    (Some
                       { parent = s.s_parent;
                         rotations = s.s_rotations;
                         choices = s.s_choices });
                  let trace = replay tab edges idx in
                  raise (Found { Search.error; trace; depth = !depth })
                | None -> (
                  match Hashtbl.find_opt seen s.s_digest with
                  | Some best when best <= s.s_delays -> (
                    match meters with
                    | None -> ()
                    | Some m -> P_obs.Metrics.incr m.Search.m_dedup_hits)
                  | known ->
                    Hashtbl.replace seen s.s_digest s.s_delays;
                    if known = None then begin
                      stats.states <- stats.states + 1;
                      match meters with
                      | None -> ()
                      | Some m ->
                        P_obs.Metrics.incr m.Search.m_states;
                        P_obs.Metrics.set_max m.Search.m_queue_hwm
                          (Search.queue_hwm_of_config s.s_config)
                    end;
                    let idx = Dynarray.length edges in
                    Dynarray.add_last edges
                      (Some
                         { parent = s.s_parent;
                           rotations = s.s_rotations;
                           choices = s.s_choices });
                    if !depth > stats.max_depth then stats.max_depth <- !depth;
                    next :=
                      { config = s.s_config;
                        stack = s.s_stack;
                        delays = s.s_delays;
                        depth = !depth;
                        idx }
                      :: !next))
              succs)
          results;
        frontier := List.rev !next
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)
