test/test_examples.ml: Alcotest Array Delay_bounded Filename Fmt List P_checker P_compile P_examples_lib P_parser P_semantics P_static P_syntax P_usb Search String Sys Verifier
