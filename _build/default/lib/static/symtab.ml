(** Resolved symbol tables for a P program.

    [Symtab.build] digests an {!P_syntax.Ast.program} into hash-consed lookup
    structures for the meta-functions of the paper's operational semantics —
    [Init(m)], [Step(m,n,e)], [Call(m,n,e)], [Action(m,n,e)], [Stmt(m,a)],
    [Deferred(m,n)], [Entry(m,n)], [Exit(m,n)] — so that the interpreter and
    model checker never scan declaration lists. Duplicate-name and
    dangling-reference diagnostics are collected during the build; a table is
    produced even for ill-formed programs so that later phases can report as
    many errors as possible. *)

open P_syntax

type diagnostic = { dloc : Loc.t; dmsg : string }

let diag dloc fmt = Fmt.kstr (fun dmsg -> { dloc; dmsg }) fmt

let pp_diagnostic ppf d = Fmt.pf ppf "%a: %s" Loc.pp d.dloc d.dmsg

(** Per-state resolved information. *)
type state_info = {
  st_ast : Ast.state;
  st_deferred : Names.Event.Set.t;
  st_postponed : Names.Event.Set.t;
  st_steps : Names.State.t Names.Event.Map.t;
  st_calls : Names.State.t Names.Event.Map.t;
  st_actions : Names.Action.t Names.Event.Map.t;
}

(** Per-machine resolved information. *)
type machine_info = {
  m_ast : Ast.machine;
  m_states : state_info Names.State.Tbl.t;
  m_initial : Names.State.t;
  m_vars : Ast.var_decl Names.Var.Tbl.t;
  m_actions : Ast.stmt Names.Action.Tbl.t;
  m_foreigns : Ast.foreign_decl Names.Foreign.Tbl.t;
}

type t = {
  program : Ast.program;
  events : Ast.event_decl Names.Event.Tbl.t;
  machines : machine_info Names.Machine.Tbl.t;
  event_universe : Names.Event.t list;  (** all declared events, in order *)
  diagnostics : diagnostic list;  (** name-resolution problems, oldest first *)
}

(* ------------------------------------------------------------------ *)
(* Accessors used by the interpreter (total over well-formed tables).  *)
(* ------------------------------------------------------------------ *)

let machine_info t name = Names.Machine.Tbl.find_opt t.machines name

let machine_info_exn t name =
  match machine_info t name with
  | Some mi -> mi
  | None -> invalid_arg (Fmt.str "Symtab: unknown machine %a" Names.Machine.pp name)

let state_info mi name = Names.State.Tbl.find_opt mi.m_states name

let state_info_exn mi name =
  match state_info mi name with
  | Some si -> si
  | None -> invalid_arg (Fmt.str "Symtab: unknown state %a" Names.State.pp name)

(** [Step(m, n, e)] *)
let step_target mi state event =
  match state_info mi state with
  | None -> None
  | Some si -> Names.Event.Map.find_opt event si.st_steps

(** [Call(m, n, e)] *)
let call_target mi state event =
  match state_info mi state with
  | None -> None
  | Some si -> Names.Event.Map.find_opt event si.st_calls

(** [Trans(m, n, e)] = [Step] ∪ [Call]. *)
let trans_defined mi state event =
  step_target mi state event <> None || call_target mi state event <> None

(** [Action(m, n, e)] *)
let bound_action mi state event =
  match state_info mi state with
  | None -> None
  | Some si -> Names.Event.Map.find_opt event si.st_actions

(** [Stmt(m, a)] *)
let action_stmt mi action = Names.Action.Tbl.find_opt mi.m_actions action

(** [Deferred(m, n)] *)
let deferred_set mi state =
  match state_info mi state with
  | None -> Names.Event.Set.empty
  | Some si -> si.st_deferred

let postponed_set mi state =
  match state_info mi state with
  | None -> Names.Event.Set.empty
  | Some si -> si.st_postponed

let entry_stmt mi state = (state_info_exn mi state).st_ast.Ast.entry

let exit_stmt mi state = (state_info_exn mi state).st_ast.Ast.exit

let var_decl mi name = Names.Var.Tbl.find_opt mi.m_vars name

let foreign_decl mi name = Names.Foreign.Tbl.find_opt mi.m_foreigns name

let event_decl t name = Names.Event.Tbl.find_opt t.events name

let event_payload_type t name =
  match event_decl t name with
  | Some ev -> ev.Ast.event_payload
  | None -> Ptype.Void

let is_ghost_machine t name =
  match machine_info t name with Some mi -> mi.m_ast.Ast.machine_ghost | None -> false

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build_state_info (m : Ast.machine) (st : Ast.state) diags =
  let add_transition what map (tr : Ast.transition) =
    match Names.Event.Map.find_opt tr.tr_event !map with
    | Some _ ->
      diags :=
        diag tr.tr_loc "duplicate %s transition on event %a from state %a" what
          Names.Event.pp tr.tr_event Names.State.pp tr.tr_source
        :: !diags
    | None -> map := Names.Event.Map.add tr.tr_event tr.tr_target !map
  in
  let steps = ref Names.Event.Map.empty in
  let calls = ref Names.Event.Map.empty in
  List.iter
    (fun (tr : Ast.transition) ->
      if Names.State.equal tr.tr_source st.state_name then
        add_transition "step" steps tr)
    m.steps;
  List.iter
    (fun (tr : Ast.transition) ->
      if Names.State.equal tr.tr_source st.state_name then begin
        (if Names.Event.Map.mem tr.tr_event !steps then
           diags :=
             diag tr.tr_loc
               "event %a has both a step and a call transition from state %a"
               Names.Event.pp tr.tr_event Names.State.pp tr.tr_source
             :: !diags);
        add_transition "call" calls tr
      end)
    m.calls;
  let actions = ref Names.Event.Map.empty in
  List.iter
    (fun (bd : Ast.binding) ->
      if Names.State.equal bd.bd_state st.state_name then
        match Names.Event.Map.find_opt bd.bd_event !actions with
        | Some _ ->
          diags :=
            diag bd.bd_loc "duplicate action binding for event %a in state %a"
              Names.Event.pp bd.bd_event Names.State.pp bd.bd_state
            :: !diags
        | None -> actions := Names.Event.Map.add bd.bd_event bd.bd_action !actions)
    m.bindings;
  { st_ast = st;
    st_deferred = Names.Event.Set.of_list st.deferred;
    st_postponed = Names.Event.Set.of_list st.postponed;
    st_steps = !steps;
    st_calls = !calls;
    st_actions = !actions }

let build_machine_info (m : Ast.machine) diags =
  let states = Names.State.Tbl.create 16 in
  List.iter
    (fun (st : Ast.state) ->
      if Names.State.Tbl.mem states st.state_name then
        diags :=
          diag st.state_loc "duplicate state %a in machine %a" Names.State.pp
            st.state_name Names.Machine.pp m.machine_name
          :: !diags
      else Names.State.Tbl.add states st.state_name (build_state_info m st diags))
    m.states;
  let vars = Names.Var.Tbl.create 16 in
  List.iter
    (fun (vd : Ast.var_decl) ->
      if Names.Var.Tbl.mem vars vd.var_name then
        diags :=
          diag vd.var_loc "duplicate variable %a in machine %a" Names.Var.pp
            vd.var_name Names.Machine.pp m.machine_name
          :: !diags
      else Names.Var.Tbl.add vars vd.var_name vd)
    m.vars;
  let actions = Names.Action.Tbl.create 16 in
  List.iter
    (fun (ad : Ast.action_decl) ->
      if Names.Action.Tbl.mem actions ad.action_name then
        diags :=
          diag ad.action_loc "duplicate action %a in machine %a" Names.Action.pp
            ad.action_name Names.Machine.pp m.machine_name
          :: !diags
      else Names.Action.Tbl.add actions ad.action_name ad.action_body)
    m.actions;
  let foreigns = Names.Foreign.Tbl.create 8 in
  List.iter
    (fun (fd : Ast.foreign_decl) ->
      if Names.Foreign.Tbl.mem foreigns fd.foreign_name then
        diags :=
          diag fd.foreign_loc "duplicate foreign function %a in machine %a"
            Names.Foreign.pp fd.foreign_name Names.Machine.pp m.machine_name
          :: !diags
      else Names.Foreign.Tbl.add foreigns fd.foreign_name fd)
    m.foreigns;
  let initial =
    match m.states with
    | [] ->
      diags :=
        diag m.machine_loc "machine %a has no states" Names.Machine.pp m.machine_name
        :: !diags;
      Names.State.of_string "<none>"
    | st :: _ -> st.state_name
  in
  { m_ast = m;
    m_states = states;
    m_initial = initial;
    m_vars = vars;
    m_actions = actions;
    m_foreigns = foreigns }

let build (program : Ast.program) : t =
  let diags = ref [] in
  let events = Names.Event.Tbl.create 32 in
  List.iter
    (fun (ev : Ast.event_decl) ->
      if Names.Event.Tbl.mem events ev.event_name then
        diags :=
          diag ev.event_loc "duplicate event %a" Names.Event.pp ev.event_name :: !diags
      else Names.Event.Tbl.add events ev.event_name ev)
    program.events;
  let machines = Names.Machine.Tbl.create 16 in
  List.iter
    (fun (m : Ast.machine) ->
      if Names.Machine.Tbl.mem machines m.machine_name then
        diags :=
          diag m.machine_loc "duplicate machine %a" Names.Machine.pp m.machine_name
          :: !diags
      else Names.Machine.Tbl.add machines m.machine_name (build_machine_info m diags))
    program.machines;
  (if not (Names.Machine.Tbl.mem machines program.main) then
     diags :=
       diag Loc.none "initialization statement names unknown machine %a"
         Names.Machine.pp program.main
       :: !diags);
  { program;
    events;
    machines;
    event_universe = List.map (fun (ev : Ast.event_decl) -> ev.event_name) program.events;
    diagnostics = List.rev !diags }
