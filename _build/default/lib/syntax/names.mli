(** Typed name wrappers for the identifier namespaces of a P program.

    The paper requires identifiers to be unique (section 3.3); giving each
    namespace its own abstract type keeps the interpreter and checker from
    ever confusing an event name with a state name, at zero runtime cost. *)

module type ID = sig
  type t

  val of_string : string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module String_id () : ID
(** Generative functor: each application creates a fresh, incompatible
    namespace. *)

module Event : ID
module Machine : ID
module State : ID
module Var : ID
module Action : ID
module Foreign : ID
