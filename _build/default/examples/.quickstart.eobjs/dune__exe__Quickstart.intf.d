examples/quickstart.mli:
