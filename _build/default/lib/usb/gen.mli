(** Generator of synthetic driver state machines at the published sizes of
    the paper's Figure 8 (the real USB hub driver sources are proprietary;
    see DESIGN.md, substitutions). Deterministic per spec name. *)

type spec = {
  name : string;
  n_states : int;
  n_transitions : int;
      (** steps + calls + action bindings, as counted by
          {!P_syntax.Ast.machine_transition_count} *)
  counter_moduli : int * int;
      (** moduli of the two per-machine counters that inflate the value
          state space, as real drivers' variables do *)
}

val hsm_spec : spec  (** hub state machine: 196 states / 361 transitions *)

val psm30_spec : spec  (** 3.0 port state machine: 295 / 752 *)

val psm20_spec : spec  (** 2.0 port state machine: 457 / 1386 *)

val dsm_spec : spec  (** device state machine: 1919 / 4238 *)

val all_specs : spec list

val machine_of_spec : spec -> P_syntax.Ast.machine * string list
(** The generated real machine (exactly [n_states] and [n_transitions],
    every state keeping at least one step so the space cannot wedge) and
    its driving-event alphabet. *)

val program_of_spec : spec -> P_syntax.Ast.program
(** The closed program: the machine plus a ghost environment sending the
    alphabet nondeterministically forever. *)
