(** Parse and lex errors with source locations. *)

type t = { loc : P_syntax.Loc.t; message : string }

exception Error of t

let raise_at loc fmt = Fmt.kstr (fun message -> raise (Error { loc; message })) fmt

let pp ppf { loc; message } =
  Fmt.pf ppf "%a: syntax error: %s" P_syntax.Loc.pp loc message

let to_string t = Fmt.str "%a" pp t
