lib/checker/parallel.mli: P_static Search
