(** The switch-and-LED device of section 4.1: the P driver program (also
    the "Switch-LED" benchmark of Figure 7), the simulated device, and the
    hand-written baseline driver for the overhead comparison. *)

val driver_machine : P_syntax.Ast.machine
val switch_machine : P_syntax.Ast.machine
val events : P_syntax.Ast.event_decl list

val program : unit -> P_syntax.Ast.program
(** The driver closed with its ghost switch. *)

val buggy_program : unit -> P_syntax.Ast.program
(** The driver forgets that a bouncing switch repeats events: unhandled
    [SwitchOn]/[SwitchOff], found at delay bound 0. *)

(** {2 The simulated device and the two drivers under test} *)

type device = { mutable led_on : bool; mutable writes : int }

val new_device : unit -> device
val set_led : device -> bool -> unit

val p_driver : device -> P_host.Os_events.driver
(** Compile the P program (erasing the ghost switch), bring up the runtime
    with [set_led] registered against [device], and wrap it in the generic
    KMDF-style skeleton. *)

val handwritten_driver : device -> P_host.Os_events.driver
(** The same behaviour coded directly against host callbacks. *)
