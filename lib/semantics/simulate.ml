(** Deterministic causal execution of a closed P program.

    This is the delay-bound-0 schedule of the paper's delaying scheduler
    (section 5): a stack of machine identifiers where the created machine and
    the receiver of a send are pushed on top, so execution follows the causal
    sequence of events — exactly the schedule of the single-threaded runtime.
    The model checker's delay-bounded search generalizes this by allowing up
    to [d] top-to-bottom rotations; the simulator is the [d = 0] slice and is
    what examples and the runtime-equivalence tests run.

    Ghost [*] choices are resolved by a [policy] function from the choice
    index (within the current atomic block) to a boolean, making runs
    reproducible. *)

open P_syntax
module Symtab = P_static.Symtab

type status =
  | Quiescent  (** every machine is waiting for events; no one can move *)
  | Error of Errors.t
  | Budget_exhausted  (** the program was still running after [max_blocks] *)

type result = {
  status : status;
  config : Config.t;
  trace : Trace.t;
  blocks : int;  (** number of atomic blocks executed *)
}

let pp_status ppf = function
  | Quiescent -> Fmt.string ppf "quiescent"
  | Error e -> Fmt.pf ppf "error: %a" Errors.pp e
  | Budget_exhausted -> Fmt.string ppf "budget exhausted (still running)"

(** [policy_const b]: resolve every ghost choice to [b]. *)
let policy_const b : int -> bool = fun _ -> b

(** [policy_seeded seed]: a reproducible pseudo-random choice policy. *)
let policy_seeded seed : int -> bool =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  fun _ ->
    state := (!state * 1103515245) + 12345;
    !state land 0x10000 <> 0

(* Run one atomic block, growing the choice list on demand via [policy].
   Fault decisions are a pure function of (config, plan), so they are
   stable across the choice-growing retries. *)
let run_block ?faults tab config mid ~policy =
  let rec go choices =
    match Step.run_atomic ?faults tab config mid ~choices with
    | Step.Need_more_choices, _ -> go (choices @ [ policy (List.length choices) ])
    | outcome, trace -> (outcome, trace)
  in
  go []

(** Execute the program from its initial configuration. *)
let run ?(max_blocks = 10_000) ?(policy = policy_const false) ?faults
    (tab : Symtab.t) : result =
  let faults =
    match faults with
    | Some p when not (Fault.is_none p) -> Some p
    | _ -> None
  in
  let config0, id0, trace0 = Step.initial_config tab in
  let rec drive config stack trace blocks =
    if blocks >= max_blocks then
      { status = Budget_exhausted; config; trace = List.rev trace; blocks }
    else
      match stack with
      | [] -> { status = Quiescent; config; trace = List.rev trace; blocks }
      | top :: rest -> (
        let outcome, items = run_block ?faults tab config top ~policy in
        let trace = List.rev_append items trace in
        match outcome with
        | Step.Progress (config, Step.Sent { target; _ }) ->
          let stack =
            if List.exists (Mid.equal target) stack then stack else target :: stack
          in
          drive config stack trace (blocks + 1)
        | Step.Progress (config, Step.Created id) ->
          drive config (id :: stack) trace (blocks + 1)
        | Step.Blocked config ->
          (* the machine is disabled; it re-enters the stack when someone
             sends to it *)
          drive config rest trace (blocks + 1)
        | Step.Terminated config -> drive config rest trace (blocks + 1)
        | Step.Failed err ->
          { status = Error err; config; trace = List.rev trace; blocks }
        | Step.Need_more_choices -> assert false (* handled by run_block *))
  in
  drive config0 [ id0 ] (List.rev trace0) 0

(** Convenience: statically check, then simulate. *)
let run_program ?max_blocks ?policy ?faults (program : Ast.program) : result =
  let tab = P_static.Check.run_exn program in
  run ?max_blocks ?policy ?faults tab
