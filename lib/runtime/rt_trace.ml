(** Observability hooks for the runtime: the same happenings as
    {!P_semantics.Trace}, but with table indices resolved back to names so
    the runtime-vs-checker equivalence tests can compare the two engines'
    behaviour item by item. *)

type item =
  | Created of { creator : int option; created : int; kind : string }
  | Sent of { src : int; dst : int; event : string; payload : string }
  | Dequeued of { mid : int; event : string }
  | Entered of { mid : int; state : string }
  | Deleted of { mid : int }

let pp_item ppf = function
  | Created { creator; created; kind } ->
    Fmt.pf ppf "%a creates #%d : %s"
      Fmt.(option ~none:(any "<host>") (fmt "#%d"))
      creator created kind
  | Sent { src; dst; event; payload } ->
    if String.equal payload "null" then Fmt.pf ppf "#%d -- %s --> #%d" src event dst
    else Fmt.pf ppf "#%d -- %s(%s) --> #%d" src event payload dst
  | Dequeued { mid; event } -> Fmt.pf ppf "#%d dequeues %s" mid event
  | Entered { mid; state } -> Fmt.pf ppf "#%d enters %s" mid state
  | Deleted { mid } -> Fmt.pf ppf "#%d deleted" mid

(** Project a verifier trace to comparable items (creations, sends,
    dequeues, deletions). *)
let of_semantics_trace (t : P_semantics.Trace.t) : item list =
  List.filter_map
    (function
      | P_semantics.Trace.Created { creator; created; kind } ->
        Some
          (Created
             { creator = Option.map P_semantics.Mid.to_int creator;
               created = P_semantics.Mid.to_int created;
               kind = P_syntax.Names.Machine.to_string kind })
      | P_semantics.Trace.Sent { src; dst; event; payload } ->
        Some
          (Sent
             { src = P_semantics.Mid.to_int src;
               dst = P_semantics.Mid.to_int dst;
               event = P_syntax.Names.Event.to_string event;
               payload = P_semantics.Value.to_string payload })
      | P_semantics.Trace.Dequeued { mid; event; _ } ->
        Some
          (Dequeued
             { mid = P_semantics.Mid.to_int mid;
               event = P_syntax.Names.Event.to_string event })
      | P_semantics.Trace.Deleted { mid } ->
        Some (Deleted { mid = P_semantics.Mid.to_int mid })
      | P_semantics.Trace.Raised _ | P_semantics.Trace.Entered _
      | P_semantics.Trace.Popped _ | P_semantics.Trace.Faulted _ -> None)
    t

(** Keep only the comparable kinds of a runtime trace (drop state entries). *)
let observable (items : item list) : item list =
  List.filter (function Entered _ -> false | _ -> true) items

(* ------------------------------------------------------------------ *)
(* Structured trace output                                             *)
(* ------------------------------------------------------------------ *)

(** Encode one runtime item for the trace sink: event name, the machine it
    concerns (the Chrome "tid"), and structured args. *)
let encode (item : item) : string * int * (string * P_obs.Json.t) list =
  let open P_obs.Json in
  match item with
  | Created { creator; created; kind } ->
    ( "created",
      created,
      [ ("kind", String "created");
        ( "creator",
          match creator with None -> Null | Some c -> Int c );
        ("created", Int created);
        ("machine", String kind) ] )
  | Sent { src; dst; event; payload } ->
    ( "sent",
      src,
      [ ("kind", String "sent");
        ("src", Int src);
        ("dst", Int dst);
        ("event", String event);
        ("payload", String payload) ] )
  | Dequeued { mid; event } ->
    ( "dequeued",
      mid,
      [ ("kind", String "dequeued"); ("mid", Int mid); ("event", String event) ] )
  | Entered { mid; state } ->
    ( "entered",
      mid,
      [ ("kind", String "entered"); ("mid", Int mid); ("state", String state) ] )
  | Deleted { mid } ->
    ("deleted", mid, [ ("kind", String "deleted"); ("mid", Int mid) ])

let cat = "rttrace"

(** A trace hook (for {!P_runtime.Api.set_trace_hook} — [Api.set_trace_hook
    rt (Some (obs_hook sink))]) that forwards every runtime item to a
    structured trace sink as a Chrome instant event, timestamped with the
    monotonic clock relative to [t0_us] (default: hook creation time). The
    runtime executes in real time, so unlike checker traces these
    timestamps are meaningful durations. *)
let obs_hook ?t0_us (sink : P_obs.Sink.t) : item -> unit =
  let t0_us = match t0_us with Some t -> t | None -> P_obs.Mclock.now_us () in
  fun item ->
    if P_obs.Sink.enabled sink then begin
      let name, tid, args = encode item in
      P_obs.Sink.instant sink ~cat ~name ~tid
        ~ts_us:(P_obs.Mclock.now_us () -. t0_us)
        ~args ()
    end
