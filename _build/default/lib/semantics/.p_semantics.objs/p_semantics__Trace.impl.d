lib/semantics/trace.ml: Fmt List Mid Names P_syntax Value
