(* The effects scheduler ({!P_runtime.Sched}) and the sharded serving
   runtime ({!P_runtime.Shard}):

   - the Causal policy is observably trace-identical to the historical
     nested run-to-completion driver (and hence, via test_equiv, to the
     d = 0 slice of the delaying scheduler);
   - the Fifo serving discipline completes the same programs under
     quantum preemption;
   - typed backpressure holds at every layer: Context mailbox bounds,
     the Api Shed/overflow contract, scheduler-level silent shedding,
     and the shard ingress bound;
   - a multi-shard fleet spawns and converses across domains through
     the batched transfer queues. *)

module Rt_value = P_runtime.Rt_value
module Rt_trace = P_runtime.Rt_trace
module Context = P_runtime.Context
module Exec = P_runtime.Exec
module Api = P_runtime.Api
module Sched = P_runtime.Sched
module Shard = P_runtime.Shard

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let state_t = Alcotest.option Alcotest.string

let compile p = (P_compile.Compile.compile p).P_compile.Compile.driver
let item_str it = Fmt.str "%a" Rt_trace.pp_item it

let nested_trace driver main =
  let rt = Api.create driver in
  let items = ref [] in
  Api.set_trace_hook rt (Some (fun it -> items := it :: !items));
  let _ = Api.create_machine rt main in
  Rt_trace.observable (List.rev !items)

let causal_trace driver main =
  let s = Sched.create ~policy:Sched.Causal driver in
  let items = ref [] in
  Api.set_trace_hook (Sched.exec s) (Some (fun it -> items := it :: !items));
  let _ = Sched.create_machine s main in
  Rt_trace.observable (List.rev !items)

(* ------------------------------------------------------------------ *)
(* Causal policy ≡ nested driver                                       *)
(* ------------------------------------------------------------------ *)

let test_causal_matches_nested () =
  List.iter
    (fun (name, program, main) ->
      let driver = compile program in
      let nested = List.map item_str (nested_trace driver main) in
      let causal = List.map item_str (causal_trace driver main) in
      check (Alcotest.list Alcotest.string) name nested causal)
    [ ("pingpong-1", P_examples_lib.Pingpong.program ~rounds:1 (), "Pinger");
      ("pingpong-5", P_examples_lib.Pingpong.program ~rounds:5 (), "Pinger");
      ( "boundedbuffer-4-2",
        P_examples_lib.Bounded_buffer.program ~items:4 ~credits:2 (),
        "Producer" ) ]

(* ------------------------------------------------------------------ *)
(* Fifo serving discipline                                             *)
(* ------------------------------------------------------------------ *)

let test_fifo_completes () =
  let driver = compile (P_examples_lib.Pingpong.program ~rounds:3 ()) in
  let s = Sched.create ~policy:Sched.Fifo driver in
  let h = Sched.create_machine s "Pinger" in
  (* serving discipline: creation only schedules; nothing ran yet *)
  check int_t "start entry is parked in the ready queue" 1 (Sched.ready_length s);
  Sched.run s;
  check int_t "quiescent" 0 (Sched.ready_length s);
  check state_t "pinger played all rounds" (Some "Finished")
    (Api.current_state_name (Sched.exec s) h);
  let st = Sched.stats s in
  check bool_t "activations counted" true (st.Sched.st_activations > 0);
  check bool_t "deliveries counted" true (st.Sched.st_sends > 0);
  check bool_t "dequeues counted" true (st.Sched.st_dequeues > 0);
  check int_t "one spawn (the ponger)" 1 st.Sched.st_spawns;
  check int_t "nothing shed" 0 st.Sched.st_shed_mailbox

let test_quantum_preemption () =
  let driver = compile (P_examples_lib.Pingpong.program ~rounds:8 ()) in
  let s = Sched.create ~policy:Sched.Fifo ~quantum:1 driver in
  let h = Sched.create_machine s "Pinger" in
  Sched.run s;
  check state_t "completes under a 1-dequeue quantum" (Some "Finished")
    (Api.current_state_name (Sched.exec s) h);
  let st = Sched.stats s in
  check bool_t "fibers were preempted" true (st.Sched.st_yields > 0)

(* ------------------------------------------------------------------ *)
(* Backpressure, layer by layer                                        *)
(* ------------------------------------------------------------------ *)

(* A machine that never consumes [E]: the smallest program whose mailbox
   fills, isolating the capacity path from program behavior. *)
let defer_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "E" ~payload:P_syntax.Ptype.Int ]
    ~machines:[ machine "M" [ state "Idle" ~defer:[ "E" ] ~entry:skip ] ]
    "M"

let test_context_capacity () =
  let driver = compile (defer_program ()) in
  let table = driver.P_compile.Tables.dr_machines.(0) in
  let ctx = Context.create ~capacity:2 ~self:1 ~ty:0 ~table () in
  let enq payload = Context.enqueue ctx 0 (Rt_value.Int payload) in
  check bool_t "first enqueue" true (enq 1 = Context.Enq_ok);
  check bool_t "⊕ absorbs duplicates below capacity" true (enq 1 = Context.Enq_duplicate);
  check bool_t "second enqueue" true (enq 2 = Context.Enq_ok);
  check bool_t "full mailbox overflows" true (enq 3 = Context.Enq_overflow);
  check int_t "overflow enqueued nothing" 2 (Context.inbox_length ctx);
  (* membership is checked before the bound: a duplicate of a queued entry
     is still absorbed at a full mailbox (it occupies no new slot) *)
  check bool_t "⊕ absorbs duplicates at capacity" true (enq 2 = Context.Enq_duplicate);
  check bool_t "capacity must be positive" true
    (try
       ignore (Context.create ~capacity:0 ~self:2 ~ty:0 ~table () : Context.t);
       false
     with Invalid_argument _ -> true)

let test_api_backpressure () =
  let driver = compile (defer_program ()) in
  let rt = Api.create driver in
  Api.set_mailbox_capacity rt 1;
  let h = Api.create_machine rt "M" in
  check bool_t "first event admitted" true
    (Api.try_add_event rt h "E" (Rt_value.Int 1) <> Context.Shed);
  check bool_t "second event shed" true
    (Api.try_add_event rt h "E" (Rt_value.Int 2) = Context.Shed);
  check bool_t "duplicate absorbed, not shed" true
    (Api.try_add_event rt h "E" (Rt_value.Int 1) <> Context.Shed);
  check int_t "mailbox stayed at its bound" 1 (Api.queue_length rt h);
  check bool_t "add_event raises on the same condition" true
    (try
       Api.add_event rt h "E" (Rt_value.Int 3);
       false
     with Exec.Mailbox_overflow { capacity = 1; _ } -> true)

let test_sched_mailbox_shed () =
  let driver = compile (defer_program ()) in
  let s = Sched.create ~policy:Sched.Fifo ~capacity:2 driver in
  let h = Sched.create_machine s "M" in
  Sched.run s;
  check bool_t "admitted" true (Sched.add_event s h "E" (Rt_value.Int 1) = Context.Queued);
  check bool_t "admitted" true (Sched.add_event s h "E" (Rt_value.Int 2) = Context.Queued);
  check bool_t "shed at the bound" true
    (Sched.add_event s h "E" (Rt_value.Int 3) = Context.Shed);
  Sched.run s;
  let st = Sched.stats s in
  check int_t "sheds counted" 1 st.Sched.st_shed_mailbox;
  check int_t "mailbox bounded" 2 (Api.queue_length (Sched.exec s) h)

(* ------------------------------------------------------------------ *)
(* Sharded fleet                                                       *)
(* ------------------------------------------------------------------ *)

let test_shard_fleet () =
  let driver = compile (P_examples_lib.Pingpong.program ~rounds:3 ()) in
  let t = Shard.create ~shards:4 driver in
  let handles = List.init 64 (fun _ -> Shard.create_machine t "Pinger") in
  Shard.start t;
  check bool_t "fleet quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  List.iter
    (fun h ->
      check state_t "every pinger finished" (Some "Finished")
        (Api.current_state_name (Shard.exec_of t (Shard.home t h)) h))
    handles;
  check int_t "each pinger spawned its ponger" 64 st.Shard.sh_spawns;
  check int_t "pongers deleted themselves" 64 st.Shard.sh_machines;
  check bool_t "conversations crossed shards" true (st.Shard.sh_xfer_msgs > 0);
  check int_t "nothing shed" 0 (st.Shard.sh_shed_mailbox + st.Shard.sh_shed_ingress);
  check int_t "no dead letters" 0 st.Shard.sh_dead_letters

let test_shard_ingress_shed () =
  let driver = compile (defer_program ()) in
  let t = Shard.create ~shards:1 ~ingress_capacity:4 driver in
  let h = Shard.create_machine t "M" in
  let e = Shard.event_id t "E" in
  let outcomes = List.init 10 (fun i -> Shard.post t h ~event:e (Rt_value.Int i)) in
  let shed = List.length (List.filter (fun o -> o = Context.Shed) outcomes) in
  check int_t "posts above the ingress bound shed synchronously" 6 shed;
  Shard.start t;
  check bool_t "quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check int_t "ingress sheds counted" 6 st.Shard.sh_shed_ingress;
  check int_t "admitted posts were all delivered" 4
    (Api.queue_length (Shard.exec_of t 0) h)

(* A sink that consumes every [E]: the counting tests need deliveries,
   not mailbox growth. *)
let sink_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "E" ~payload:P_syntax.Ptype.Int ]
    ~machines:[ machine "M" [ state "Idle" ~entry:skip ] ~steps:[ ("Idle", "E", "Idle") ] ]
    "M"

let test_shard_local_no_xfer () =
  (* host posts ride the ingress queue; with one shard nothing is ever
     cross-shard, so the transfer counters must stay at zero *)
  let driver = compile (sink_program ()) in
  let t = Shard.create ~shards:1 driver in
  let h = Shard.create_machine t "M" in
  let e = Shard.event_id t "E" in
  Shard.start t;
  let outcomes = List.init 50 (fun i -> Shard.post t h ~event:e (Rt_value.Int i)) in
  check int_t "all posts admitted" 50
    (List.length (List.filter (( = ) Context.Queued) outcomes));
  check bool_t "quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check int_t "host posts counted as ingress" 50 st.Shard.sh_ingress_msgs;
  check int_t "zero cross-shard batches" 0 st.Shard.sh_xfer_batches;
  check int_t "zero cross-shard messages" 0 st.Shard.sh_xfer_msgs;
  check int_t "every ingress slot released" 0 st.Shard.sh_pending;
  check int_t "every post served" 50 st.Shard.sh_dequeues

let test_ingress_conservation () =
  (* K producer domains race the ingress bound; every offered post must be
     accounted exactly once: delivered or shed, with its slot released *)
  let driver = compile (sink_program ()) in
  let t = Shard.create ~shards:2 ~ingress_capacity:64 driver in
  let machines = Array.init 32 (fun _ -> Shard.create_machine t "M") in
  let e = Shard.event_id t "E" in
  Shard.start t;
  let k = 4 and per = 2000 in
  let queued = Array.make k 0 in
  let producers =
    Array.init k (fun p ->
        Domain.spawn (fun () ->
            let q = ref 0 in
            for i = 0 to per - 1 do
              match
                Shard.post t
                  machines.((p + i) mod Array.length machines)
                  ~event:e
                  (Rt_value.Int ((p * per) + i))
              with
              | Context.Queued -> incr q
              | _ -> ()
            done;
            queued.(p) <- !q))
  in
  Array.iter Domain.join producers;
  check bool_t "quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  let admitted = Array.fold_left ( + ) 0 queued in
  check int_t "each admitted post delivered exactly once" admitted
    st.Shard.sh_ingress_msgs;
  check int_t "shed + delivered = offered" (k * per)
    (st.Shard.sh_shed_ingress + st.Shard.sh_ingress_msgs);
  check int_t "every ingress slot released" 0 st.Shard.sh_pending;
  check int_t "no cross-shard traffic from host posts" 0 st.Shard.sh_xfer_msgs

(* A machine that perpetually mails itself: the fleet never goes idle, so
   quiescence must time out (and report it) rather than hang. *)
let spinner_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "Tick" ]
    ~machines:
      [ machine "M"
          [ state "Spin" ~entry:(send this "Tick") ]
          ~steps:[ ("Spin", "Tick", "Spin") ] ]
    "M"

let test_quiesce_timeout () =
  let driver = compile (spinner_program ()) in
  let t = Shard.create ~shards:1 driver in
  let (_ : int) = Shard.create_machine t "M" in
  Shard.start t;
  check bool_t "a busy fleet times out" false (Shard.quiesce ~timeout_s:0.2 t);
  let st = Shard.stop t in
  check bool_t "the spinner was actually running" true (st.Shard.sh_dequeues > 0)

(* Self-deleting machine: posts that arrive after the delete are mail for
   the departed — dead-lettered and dropped, with their slots released. *)
let ephemeral_program () =
  let open P_syntax.Builder in
  program
    ~events:[ event "E" ~payload:P_syntax.Ptype.Int ]
    ~machines:[ machine "M" [ state "Gone" ~entry:delete ] ]
    "M"

let test_dead_letter_counts () =
  let driver = compile (ephemeral_program ()) in
  let t = Shard.create ~shards:1 driver in
  let h = Shard.create_machine t "M" in
  let e = Shard.event_id t "E" in
  Shard.start t;
  check bool_t "machine deleted itself" true (Shard.quiesce ~timeout_s:60.0 t);
  let outcomes = List.init 7 (fun i -> Shard.post t h ~event:e (Rt_value.Int i)) in
  check int_t "routing admits posts for deleted handles" 7
    (List.length (List.filter (( = ) Context.Queued) outcomes));
  check bool_t "drained the dead letters" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check int_t "dead letters counted" 7 st.Shard.sh_dead_letters;
  check int_t "dead letters release their slots" 0 st.Shard.sh_pending;
  check int_t "no live machines" 0 st.Shard.sh_machines

(* ------------------------------------------------------------------ *)
(* Ghost [*] under the scheduler                                       *)
(* ------------------------------------------------------------------ *)

let test_seeded_nondet () =
  (* full tables: the ghost switch (and its [*] choices) survive *)
  let driver = P_compile.Compile.compile_full (P_examples_lib.Switch_led.program ()) in
  let run seed =
    let s = Sched.create ~policy:Sched.Causal ?seed driver in
    let rt = Sched.exec s in
    Api.register_foreign rt "set_led" (fun _ _ -> Rt_value.Null);
    let items = ref [] in
    Api.set_trace_hook rt (Some (fun it -> items := it :: !items));
    let _ = Sched.create_machine s "GhostSwitch" in
    List.rev_map item_str !items
  in
  let a = run (Some 42) in
  let b = run (Some 42) in
  check bool_t "same seed, same schedule" true (a = b);
  check bool_t "the ghost actually drove the device" true
    (List.length a > 5);
  check bool_t "unseeded * is a runtime error under the scheduler" true
    (try
       ignore (run None : string list);
       false
     with Exec.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Adversarial host: fault injection under the serving runtime         *)
(* ------------------------------------------------------------------ *)

let plan ?(drop = 0) ?(dup = 0) ?(reorder = 0) ?(crash = 0) seed =
  P_semantics.Fault.with_seed seed
    { P_semantics.Fault.none with drop; dup; reorder; crash }

let test_fault_drop_accounting () =
  (* a dropped send is invisible to the sender (Queued) and charged to
     the drop counter, never to delivery, shedding, or dead letters *)
  let driver = compile (defer_program ()) in
  let s = Sched.create ~policy:Sched.Fifo ~capacity:2 ~faults:(plan ~drop:1000 0) driver in
  let h = Sched.create_machine s "M" in
  Sched.run s;
  let outcomes = List.init 5 (fun i -> Sched.add_event s h "E" (Rt_value.Int i)) in
  check int_t "drops report Queued (the sender can't tell)" 5
    (List.length (List.filter (( = ) Context.Queued) outcomes));
  Sched.run s;
  let st = Sched.stats s in
  check int_t "every send dropped" 5 st.Sched.st_fault_drops;
  check int_t "dropped events were never delivered" 0 st.Sched.st_sends;
  check int_t "mailbox untouched" 0 (Api.queue_length (Sched.exec s) h);
  (* capacity is 2 and we offered 5: without the drops this would shed *)
  check int_t "drops are not sheds" 0 st.Sched.st_shed_mailbox;
  check int_t "drops are not dead letters" 0 st.Sched.st_dead_letters

let test_fault_dup_bypasses_dedup () =
  let driver = compile (defer_program ()) in
  let s = Sched.create ~policy:Sched.Fifo ~faults:(plan ~dup:1000 0) driver in
  let h = Sched.create_machine s "M" in
  Sched.run s;
  ignore (Sched.add_event s h "E" (Rt_value.Int 7) : Context.backpressure);
  ignore (Sched.add_event s h "E" (Rt_value.Int 7) : Context.backpressure);
  let st = Sched.stats s in
  check int_t "both sends duplicated" 2 st.Sched.st_fault_dups;
  (* fault-free, the second identical send is absorbed by ⊕ and the
     mailbox holds exactly one entry; each injected duplicate bypasses
     dedup once, so the ⊕-absorbed send still lands its extra copy *)
  check int_t "⊕ bypassed: one deduped entry plus two forced copies" 3
    (Api.queue_length (Sched.exec s) h)

let test_fault_reorder_conserves () =
  let driver = compile (sink_program ()) in
  let s = Sched.create ~policy:Sched.Fifo ~faults:(plan ~reorder:1000 0) driver in
  let h = Sched.create_machine s "M" in
  Sched.run s;
  List.iter
    (fun i -> ignore (Sched.add_event s h "E" (Rt_value.Int i) : Context.backpressure))
    [ 1; 2; 3 ];
  Sched.run s;
  let st = Sched.stats s in
  check int_t "every send reordered" 3 st.Sched.st_fault_reorders;
  check int_t "reordering loses nothing" 3 st.Sched.st_dequeues;
  check int_t "mailbox drained" 0 (Api.queue_length (Sched.exec s) h)

let test_fault_crash_restart_mailbox () =
  (* crash-restart at activation: the machine re-enters its initial
     state and its mailbox is cleared — which must also release the
     bounded-mailbox slots, or the bound wedges the restarted machine *)
  let driver = compile (defer_program ()) in
  let s = Sched.create ~policy:Sched.Fifo ~capacity:1 ~faults:(plan ~crash:1000 0) driver in
  let h = Sched.create_machine s "M" in
  Sched.run s;
  check state_t "restarted into its initial state" (Some "Idle")
    (Api.current_state_name (Sched.exec s) h);
  check bool_t "admitted at capacity 1" true
    (Sched.add_event s h "E" (Rt_value.Int 1) = Context.Queued);
  check int_t "mailbox holds it" 1 (Api.queue_length (Sched.exec s) h);
  Sched.run s;
  check int_t "the crash cleared the mailbox" 0 (Api.queue_length (Sched.exec s) h);
  check bool_t "slot released: the bound admits the next event" true
    (Sched.add_event s h "E" (Rt_value.Int 2) = Context.Queued);
  Sched.run s;
  let st = Sched.stats s in
  check bool_t "crash-restarts counted" true (st.Sched.st_crash_restarts >= 3);
  check int_t "crashed mail is never dequeued" 0 st.Sched.st_dequeues;
  check int_t "nothing shed" 0 st.Sched.st_shed_mailbox;
  check state_t "machine survives every crash" (Some "Idle")
    (Api.current_state_name (Sched.exec s) h)

let test_fault_schedule_deterministic () =
  (* same workload + same plan ⇒ same fault schedule: stats and the full
     observable trace are bit-identical across runs *)
  let run () =
    let driver = compile (sink_program ()) in
    let s =
      Sched.create ~policy:Sched.Fifo
        ~faults:(plan ~drop:300 ~dup:250 ~reorder:250 ~crash:150 11)
        driver
    in
    let items = ref [] in
    Api.set_trace_hook (Sched.exec s) (Some (fun it -> items := it :: !items));
    let h = Sched.create_machine s "M" in
    for i = 0 to 49 do
      ignore (Sched.add_event s h "E" (Rt_value.Int i) : Context.backpressure);
      if i mod 8 = 0 then Sched.run s
    done;
    Sched.run s;
    (Sched.stats s, List.rev_map item_str !items)
  in
  let st1, tr1 = run () in
  let st2, tr2 = run () in
  check bool_t "identical stats under the same plan" true (st1 = st2);
  check bool_t "identical traces under the same plan" true (tr1 = tr2);
  check bool_t "the adversary actually injected" true
    (st1.Sched.st_fault_drops + st1.Sched.st_fault_dups + st1.Sched.st_fault_reorders
     + st1.Sched.st_crash_restarts
    > 0)

let test_shard_fault_conservation () =
  (* exact slot conservation under an adversarial host: every offered
     post is delivered, dropped, or duplicated — dequeues must equal
     offered - drops + forced duplicates, with every ingress slot
     released *)
  let driver = compile (sink_program ()) in
  let t = Shard.create ~shards:2 ~faults:(plan ~drop:400 ~dup:300 ~reorder:200 5) driver in
  let machines = Array.init 8 (fun _ -> Shard.create_machine t "M") in
  let e = Shard.event_id t "E" in
  Shard.start t;
  Array.iteri
    (fun i h ->
      for j = 0 to 24 do
        ignore (Shard.post t h ~event:e (Rt_value.Int ((i * 25) + j)) : Context.backpressure)
      done)
    machines;
  check bool_t "quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check bool_t "drops injected" true (st.Shard.sh_fault_drops > 0);
  check bool_t "dups injected" true (st.Shard.sh_fault_dups > 0);
  check bool_t "reorders injected" true (st.Shard.sh_fault_reorders > 0);
  check int_t "every post reached its home shard" 200 st.Shard.sh_ingress_msgs;
  check int_t "dequeues = offered - drops + duplicates"
    (200 - st.Shard.sh_fault_drops + st.Shard.sh_fault_dups)
    st.Shard.sh_dequeues;
  check int_t "every ingress slot released" 0 st.Shard.sh_pending;
  check int_t "nothing shed" 0 (st.Shard.sh_shed_mailbox + st.Shard.sh_shed_ingress)

let test_shard_dead_letters_exact_under_drops () =
  (* the send fault point sits on *live* targets only: mail for departed
     machines is dead-lettered exactly, never charged as a drop *)
  let driver = compile (ephemeral_program ()) in
  let t = Shard.create ~shards:1 ~faults:(plan ~drop:1000 0) driver in
  let h = Shard.create_machine t "M" in
  let e = Shard.event_id t "E" in
  Shard.start t;
  check bool_t "machine deleted itself" true (Shard.quiesce ~timeout_s:60.0 t);
  let outcomes = List.init 7 (fun i -> Shard.post t h ~event:e (Rt_value.Int i)) in
  check int_t "posts admitted" 7
    (List.length (List.filter (( = ) Context.Queued) outcomes));
  check bool_t "drained" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check int_t "dead letters exact" 7 st.Shard.sh_dead_letters;
  check int_t "no drops charged for dead mail" 0 st.Shard.sh_fault_drops;
  check int_t "dead letters release their slots" 0 st.Shard.sh_pending

let test_shard_crash_restart () =
  let driver = compile (defer_program ()) in
  let t = Shard.create ~shards:1 ~capacity:4 ~faults:(plan ~crash:1000 0) driver in
  let h = Shard.create_machine t "M" in
  let e = Shard.event_id t "E" in
  Shard.start t;
  ignore (Shard.quiesce ~timeout_s:60.0 t : bool);
  List.iter
    (fun i -> ignore (Shard.post t h ~event:e (Rt_value.Int i) : Context.backpressure))
    [ 0; 1; 2 ];
  check bool_t "quiesced" true (Shard.quiesce ~timeout_s:60.0 t);
  let st = Shard.stop t in
  check bool_t "crash-restarts counted" true (st.Shard.sh_crash_restarts > 0);
  check state_t "machine survives in its initial state" (Some "Idle")
    (Api.current_state_name (Shard.exec_of t (Shard.home t h)) h);
  check int_t "crashed mail was cleared" 0
    (Api.queue_length (Shard.exec_of t (Shard.home t h)) h);
  check int_t "within the bound: nothing shed" 0 st.Shard.sh_shed_mailbox;
  check int_t "every ingress slot released" 0 st.Shard.sh_pending

let suite =
  [ Alcotest.test_case "causal policy ≡ nested driver" `Quick test_causal_matches_nested;
    Alcotest.test_case "fifo serving completes pingpong" `Quick test_fifo_completes;
    Alcotest.test_case "quantum preemption" `Quick test_quantum_preemption;
    Alcotest.test_case "context mailbox capacity" `Quick test_context_capacity;
    Alcotest.test_case "api backpressure contract" `Quick test_api_backpressure;
    Alcotest.test_case "scheduler sheds at bounded mailboxes" `Quick test_sched_mailbox_shed;
    Alcotest.test_case "4-shard pingpong fleet" `Quick test_shard_fleet;
    Alcotest.test_case "shard ingress backpressure" `Quick test_shard_ingress_shed;
    Alcotest.test_case "single shard: zero transfer batches" `Quick test_shard_local_no_xfer;
    Alcotest.test_case "ingress slot conservation" `Quick test_ingress_conservation;
    Alcotest.test_case "quiesce timeout returns false" `Quick test_quiesce_timeout;
    Alcotest.test_case "dead letters after delete" `Quick test_dead_letter_counts;
    Alcotest.test_case "seeded ghost choices" `Quick test_seeded_nondet;
    Alcotest.test_case "fault: drop accounting" `Quick test_fault_drop_accounting;
    Alcotest.test_case "fault: dup bypasses ⊕" `Quick test_fault_dup_bypasses_dedup;
    Alcotest.test_case "fault: reorder conserves" `Quick test_fault_reorder_conserves;
    Alcotest.test_case "fault: crash-restart mailbox" `Quick test_fault_crash_restart_mailbox;
    Alcotest.test_case "fault: deterministic schedule" `Quick test_fault_schedule_deterministic;
    Alcotest.test_case "shard fault conservation" `Quick test_shard_fault_conservation;
    Alcotest.test_case "shard dead letters under drops" `Quick
      test_shard_dead_letters_exact_under_drops;
    Alcotest.test_case "shard crash-restart" `Quick test_shard_crash_restart ]
