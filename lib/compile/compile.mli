(** The compilation pipeline of section 4: static checks, ghost erasure,
    lowering to the table IR, and C emission. *)

type compiled = {
  erased : P_syntax.Ast.program;  (** the real-only program after erasure *)
  driver : Tables.driver;  (** tables interpreted by {!P_runtime} *)
}

exception Error of string
(** Raised with rendered diagnostics when the program is statically
    rejected (or, unreachable for checked programs, when erasure produces
    an ill-formed result). *)

val compile : ?name:string -> P_syntax.Ast.program -> compiled
(** Check, erase, and lower. [name] labels the generated driver. *)

val compile_full : ?name:string -> P_syntax.Ast.program -> Tables.driver
(** Check and lower {e without} erasing: ghost machines survive and [*]
    lowers to {!Tables.cexpr.CNondet}. Produces tables for the stepped
    executor used by differential replay ({!P_checker.Differential});
    {!C_emit} rejects them. *)

val to_c : ?name:string -> P_syntax.Ast.program -> string
(** Full pipeline to the table-driven C translation unit. *)
