(** One-call front end over all static phases: symbol resolution,
    well-formedness, type checking, and the ghost-erasure discipline of
    section 3.3. *)

type result = { symtab : Symtab.t; diagnostics : Symtab.diagnostic list }

val run : P_syntax.Ast.program -> result
(** Run every static check; [diagnostics] is empty iff the program is
    accepted. Later phases run even when earlier ones report errors, so one
    pass reports as much as possible. *)

val is_ok : result -> bool

exception Rejected of Symtab.diagnostic list

val run_exn : P_syntax.Ast.program -> Symtab.t
(** Like {!run} but raises {!Rejected} on any diagnostic. *)

val pp_diagnostics : Symtab.diagnostic list Fmt.t
