(** C code generation in the style described in section 4 of the paper.

    The output is one self-contained C translation unit: enumerations give
    every event, machine type, variable and state a globally-known index; a
    [PRT_DRIVER] structure points at per-machine tables of variables and
    states; each state entry carries its deferred-set bitmap, transition
    tables and entry/exit function pointers; and the bodies of entry, exit
    and action functions are emitted as C functions calling into the runtime
    (the [PrtRt*] calls correspond to the paper's [SMCreateMachine] /
    [SMAddEvent] runtime APIs and their internal relatives).

    The emitted code targets the runtime header [p_runtime.h], whose OCaml
    twin is {!P_runtime}; this repository does not compile the C (there is no
    KMDF host here), but the tests check its shape and the emitter documents
    precisely what the paper's compiler produces. *)

open Tables

let buf_add = Buffer.add_string

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let event_enum d i = Printf.sprintf "P_EVENT_%s" (sanitize (fst d.dr_events.(i)))
let machine_enum d i = Printf.sprintf "P_MACHINE_%s" (sanitize d.dr_machines.(i).mt_name)
let state_enum mt i = Printf.sprintf "P_STATE_%s_%s" (sanitize mt.mt_name) (sanitize mt.mt_states.(i).st_name)
let var_enum mt i = Printf.sprintf "P_VAR_%s_%s" (sanitize mt.mt_name) (sanitize (fst mt.mt_vars.(i)))
let fun_name kind mt what = Printf.sprintf "P_%s_%s_%s" kind (sanitize mt.mt_name) (sanitize what)

let c_unop = function Not -> "!" | Neg -> "-"

let c_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&&"
  | Or -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Expressions evaluate to PRT_VALUE; the runtime provides boxing helpers. *)
let rec c_expr d mt (e : cexpr) : string =
  match e with
  | CThis -> "PrtThis(ctx)"
  | CMsg -> "PrtMsg(ctx)"
  | CArg -> "PrtArg(ctx)"
  | CNull -> "PrtNull()"
  | CBool b -> Printf.sprintf "PrtBool(%s)" (if b then "PRT_TRUE" else "PRT_FALSE")
  | CInt i -> Printf.sprintf "PrtInt(%d)" i
  | CEvent i -> Printf.sprintf "PrtEvent(%s)" (event_enum d i)
  | CVar i -> Printf.sprintf "PrtGetVar(ctx, %s)" (var_enum mt i)
  | CUnop (op, a) -> Printf.sprintf "PrtUnop('%s', %s)" (c_unop op) (c_expr d mt a)
  | CBinop (op, a, b) ->
    Printf.sprintf "PrtBinop(\"%s\", %s, %s)" (c_binop op) (c_expr d mt a) (c_expr d mt b)
  | CForeign_call (f, args) ->
    let fs = mt.mt_foreigns.(f) in
    Printf.sprintf "%s(PrtGetContext(ctx)%s)" (sanitize fs.fs_name)
      (String.concat ""
         (List.map (fun a -> ", " ^ c_expr d mt a) args))
  | CNondet ->
    (* only full (un-erased) tables contain CNondet, and those exist solely
       for the differential-replay executor *)
    invalid_arg "C_emit: CNondet in tables — emit erased tables, not full ones"

let rec c_code buf d mt indent (code : code) : unit =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> buf_add buf (pad ^ s ^ "\n")) fmt in
  match code with
  | CSkip -> line "/* skip */;"
  | CAssign (x, e) -> line "PrtSetVar(ctx, %s, %s);" (var_enum mt x) (c_expr d mt e)
  | CNew (x, ty, inits) ->
    line "{";
    line "  PRT_MACHINE_HANDLE h = PrtRtCreateMachine(ctx->driver, %s);"
      (machine_enum d ty);
    List.iter
      (fun (y, e) ->
        let target = d.dr_machines.(ty) in
        line "  PrtSetVarOf(h, %s, %s);" (var_enum target y) (c_expr d mt e))
      inits;
    line "  PrtRtStartMachine(h);";
    line "  PrtSetVar(ctx, %s, PrtMachine(h));" (var_enum mt x);
    line "}"
  | CDelete -> line "PrtRtDeleteMachine(ctx); return;"
  | CSend (target, ev, payload) ->
    line "PrtRtSend(ctx, %s, %s, %s);" (c_expr d mt target) (event_enum d ev)
      (c_expr d mt payload)
  | CRaise (ev, payload) ->
    line "PrtRtRaise(ctx, %s, %s); return;" (event_enum d ev) (c_expr d mt payload)
  | CLeave -> line "PrtRtLeave(ctx); return;"
  | CReturn -> line "PrtRtReturn(ctx); return;"
  | CAssert (e, msg) -> line "PrtAssert(PrtToBool(%s), \"%s\");" (c_expr d mt e) msg
  | CSeq (a, b) ->
    c_code buf d mt indent a;
    c_code buf d mt indent b
  | CIf (c, t, f) ->
    line "if (PrtToBool(%s)) {" (c_expr d mt c);
    c_code buf d mt (indent + 2) t;
    line "} else {";
    c_code buf d mt (indent + 2) f;
    line "}"
  | CWhile (c, body) ->
    line "while (PrtToBool(%s)) {" (c_expr d mt c);
    c_code buf d mt (indent + 2) body;
    line "}"
  | CCall_state n -> line "PrtRtCallState(ctx, %s); return;" (state_enum mt n)
  | CForeign_stmt (f, args) ->
    let fs = mt.mt_foreigns.(f) in
    line "%s(PrtGetContext(ctx)%s);" (sanitize fs.fs_name)
      (String.concat "" (List.map (fun a -> ", " ^ c_expr d mt a) args))

let emit_enums buf d =
  buf_add buf "/* --- events --- */\ntypedef enum {\n";
  Array.iteri (fun i _ -> buf_add buf (Printf.sprintf "  %s = %d,\n" (event_enum d i) i)) d.dr_events;
  buf_add buf (Printf.sprintf "  P_EVENT_COUNT = %d\n} PRT_EVENT;\n\n" (Array.length d.dr_events));
  buf_add buf "/* --- machine types --- */\ntypedef enum {\n";
  Array.iteri
    (fun i _ -> buf_add buf (Printf.sprintf "  %s = %d,\n" (machine_enum d i) i))
    d.dr_machines;
  buf_add buf
    (Printf.sprintf "  P_MACHINE_COUNT = %d\n} PRT_MACHINE_TYPE;\n\n"
       (Array.length d.dr_machines));
  Array.iter
    (fun mt ->
      buf_add buf (Printf.sprintf "/* --- machine %s --- */\n" mt.mt_name);
      if Array.length mt.mt_vars > 0 then begin
        buf_add buf "typedef enum {\n";
        Array.iteri
          (fun i _ -> buf_add buf (Printf.sprintf "  %s = %d,\n" (var_enum mt i) i))
          mt.mt_vars;
        buf_add buf (Printf.sprintf "} PRT_VARS_%s;\n" (sanitize mt.mt_name))
      end;
      buf_add buf "typedef enum {\n";
      Array.iteri
        (fun i _ -> buf_add buf (Printf.sprintf "  %s = %d,\n" (state_enum mt i) i))
        mt.mt_states;
      buf_add buf (Printf.sprintf "} PRT_STATES_%s;\n\n" (sanitize mt.mt_name)))
    d.dr_machines

let emit_functions buf d =
  Array.iter
    (fun mt ->
      Array.iteri
        (fun _ st ->
          buf_add buf
            (Printf.sprintf "static void %s(PRT_SM_CONTEXT *ctx)\n{\n"
               (fun_name "ENTRY" mt st.st_name));
          c_code buf d mt 2 st.st_entry;
          buf_add buf "}\n\n";
          buf_add buf
            (Printf.sprintf "static void %s(PRT_SM_CONTEXT *ctx)\n{\n"
               (fun_name "EXIT" mt st.st_name));
          c_code buf d mt 2 st.st_exit;
          buf_add buf "}\n\n")
        mt.mt_states;
      Array.iter
        (fun (name, code) ->
          buf_add buf
            (Printf.sprintf "static void %s(PRT_SM_CONTEXT *ctx)\n{\n"
               (fun_name "ACTION" mt name));
          c_code buf d mt 2 code;
          buf_add buf "}\n\n")
        mt.mt_actions)
    d.dr_machines

let bitmap_initializer bools =
  (* deferred sets are packed 32 events per word, as a C initializer *)
  let words = (Array.length bools + 31) / 32 in
  let packed = Array.make (max words 1) 0 in
  Array.iteri (fun i b -> if b then packed.(i / 32) <- packed.(i / 32) lor (1 lsl (i mod 32))) bools;
  "{ "
  ^ String.concat ", " (Array.to_list (Array.map (Printf.sprintf "0x%08x") packed))
  ^ " }"

let transition_initializer table to_name =
  "{ "
  ^ String.concat ", "
      (Array.to_list
         (Array.map (function None -> "P_NO_TARGET" | Some i -> to_name i) table))
  ^ " }"

let emit_tables buf d =
  Array.iter
    (fun mt ->
      let mname = sanitize mt.mt_name in
      Array.iteri
        (fun si st ->
          buf_add buf
            (Printf.sprintf "static const PRT_STATE_DECL P_STATEDECL_%s_%d = {\n" mname si);
          buf_add buf (Printf.sprintf "  .name = \"%s\",\n" st.st_name);
          buf_add buf
            (Printf.sprintf "  .deferred = %s,\n" (bitmap_initializer st.st_deferred));
          buf_add buf
            (Printf.sprintf "  .steps = %s,\n"
               (transition_initializer st.st_steps (state_enum mt)));
          buf_add buf
            (Printf.sprintf "  .calls = %s,\n"
               (transition_initializer st.st_calls (state_enum mt)));
          buf_add buf
            (Printf.sprintf "  .actions = %s,\n"
               (transition_initializer st.st_actions (fun i ->
                    fun_name "ACTION" mt (fst mt.mt_actions.(i)))));
          buf_add buf (Printf.sprintf "  .entry = %s,\n" (fun_name "ENTRY" mt st.st_name));
          buf_add buf (Printf.sprintf "  .exit = %s,\n" (fun_name "EXIT" mt st.st_name));
          buf_add buf "};\n")
        mt.mt_states;
      buf_add buf
        (Printf.sprintf "static const PRT_STATE_DECL *P_STATES_TBL_%s[] = { " mname);
      Array.iteri
        (fun si _ -> buf_add buf (Printf.sprintf "&P_STATEDECL_%s_%d, " mname si))
        mt.mt_states;
      buf_add buf "};\n";
      buf_add buf
        (Printf.sprintf
           "static const PRT_MACHINE_DECL P_MACHINEDECL_%s = {\n\
           \  .name = \"%s\",\n\
           \  .var_count = %d,\n\
           \  .state_count = %d,\n\
           \  .states = P_STATES_TBL_%s,\n\
            };\n\n"
           mname mt.mt_name (Array.length mt.mt_vars) (Array.length mt.mt_states) mname))
    d.dr_machines;
  buf_add buf "static const PRT_MACHINE_DECL *P_MACHINES_TBL[] = {\n";
  Array.iter
    (fun mt -> buf_add buf (Printf.sprintf "  &P_MACHINEDECL_%s,\n" (sanitize mt.mt_name)))
    d.dr_machines;
  buf_add buf "};\n\n";
  buf_add buf
    (Printf.sprintf
       "const PRT_DRIVER_DECL P_DRIVER = {\n\
       \  .name = \"%s\",\n\
       \  .event_count = P_EVENT_COUNT,\n\
       \  .machine_count = P_MACHINE_COUNT,\n\
       \  .machines = P_MACHINES_TBL,\n\
       \  .main_machine = %s,\n\
        };\n"
       d.dr_name
       (match d.dr_main with None -> "P_NO_TARGET" | Some i -> machine_enum d i))

(** Emit the complete C translation unit for a lowered driver. *)
let emit (d : driver) : string =
  let buf = Buffer.create 8192 in
  buf_add buf
    (Printf.sprintf
       "/* Generated by pcaml (P compiler) — driver %s.\n\
       \ * Table-driven state machine code in the style of\n\
       \ * \"P: Safe Asynchronous Event-Driven Programming\", PLDI 2013, section 4.\n\
       \ * Link against the P runtime and the driver-specific foreign functions. */\n\n\
        #include \"p_runtime.h\"\n\n"
       d.dr_name);
  emit_enums buf d;
  (* foreign function prototypes: one extra leading void* argument pointing at
     the external memory of the calling machine, as required by section 4 *)
  Array.iter
    (fun mt ->
      Array.iter
        (fun fs ->
          buf_add buf
            (Printf.sprintf "extern PRT_VALUE %s(void *external_memory%s);\n"
               (sanitize fs.fs_name)
               (String.concat ""
                  (List.map (fun _ -> ", PRT_VALUE") fs.fs_params))))
        mt.mt_foreigns)
    d.dr_machines;
  buf_add buf "\n";
  emit_functions buf d;
  emit_tables buf d;
  Buffer.contents buf
