(* Quickstart: author a small P program with the builder EDSL (the same
   program is shown in concrete syntax in examples/p/pingpong.p), statically
   check it, simulate the d=0 causal execution, model-check it, and compile
   it to C.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A tiny closed program: ping-pong with an invariant. *)
  let program = P_examples_lib.Pingpong.program ~rounds:3 () in
  Fmt.pr "=== concrete syntax ===@.%s@." (P_syntax.Pretty.program_to_string program);

  (* 2. Static checks: well-formedness, types, ghost erasure discipline. *)
  let symtab = P_static.Check.run_exn program in
  Fmt.pr "static checks passed@.@.";

  (* 3. Deterministic causal execution (what the runtime would do). *)
  let sim = P_semantics.Simulate.run symtab in
  Fmt.pr "=== simulation (%a, %d atomic blocks) ===@.%a@.@."
    P_semantics.Simulate.pp_status sim.status sim.blocks P_semantics.Trace.pp sim.trace;

  (* 4. Systematic testing: every schedule within 3 delays, every ghost
        choice. *)
  let result = P_checker.Delay_bounded.explore ~delay_bound:3 symtab in
  Fmt.pr "=== model checking ===@.%a@.@." P_checker.Search.pp_result result;

  (* 5. The same pipeline catches the seeded protocol bug. *)
  let buggy = P_examples_lib.Pingpong.buggy_program ~rounds:3 () in
  let report = P_checker.Verifier.verify ~delay_bound:2 buggy in
  Fmt.pr "=== buggy variant ===@.%a@." P_checker.Verifier.pp_report report;

  (* 6. Compile to the table-driven C of section 4. *)
  let c = P_compile.Compile.to_c ~name:"pingpong" program in
  Fmt.pr "=== generated C (first lines) ===@.";
  String.split_on_char '\n' c
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
