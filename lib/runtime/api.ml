(** The three-call runtime API of section 4, through which interface code
    (the KMDF skeleton — here {!P_host}) interacts with the generated
    driver:

    - [SMCreateMachine] → {!create_machine}
    - [SMAddEvent]      → {!add_event}
    - [SMGetContext]    → {!get_context} (the external memory for foreign
      code, not the machine state itself) *)

module Tables = P_compile.Tables

type t = Exec.t

let create = Exec.create
let register_foreign = Exec.register_foreign

let set_trace_hook (rt : t) hook = rt.Exec.trace_hook <- hook

let set_metrics = Exec.set_metrics
let set_mailbox_capacity = Exec.set_mailbox_capacity

(** Create (and start) an instance of a machine type by name. Returns its
    handle. The entry statement of the initial state runs before this
    returns, per run-to-completion. *)
let create_machine (rt : t) (machine : string) : int =
  match Tables.machine_ty_of_name rt.Exec.driver machine with
  | None -> Exec.error "unknown machine type %s" machine
  | Some ty ->
    let ctx = Exec.create_instance rt ~creator:None ty in
    ignore (Exec.run_if_idle rt ctx : bool);
    ctx.Context.self

(** Queue an event into a machine; if the machine is idle the calling
    thread runs it to completion (the paper's "drivers use calling threads
    to do all the work"). Raises {!Exec.Mailbox_overflow} if the machine's
    bounded mailbox is full — hosts that want to shed instead use
    {!try_add_event}. *)
let add_event (rt : t) (handle : int) (event : string) (payload : Rt_value.t) : unit =
  match Tables.event_id_of_name rt.Exec.driver event with
  | None -> Exec.error "unknown event %s" event
  | Some e -> (
    match Exec.deliver rt ~src:(-1) handle e payload with
    | Context.Accepted | Context.Queued -> ()
    | Context.Shed -> Exec.raise_overflow rt handle e)

(** Like {!add_event}, but a full mailbox sheds (returns
    [Context.Shed]) instead of raising — the host skeleton's backpressure
    entry point. *)
let try_add_event (rt : t) (handle : int) (event : string) (payload : Rt_value.t) :
    Context.backpressure =
  match Tables.event_id_of_name rt.Exec.driver event with
  | None -> Exec.error "unknown event %s" event
  | Some e -> Exec.deliver rt ~src:(-1) handle e payload

(** The external memory associated with a machine, reserved for foreign
    functions and interface code. *)
let get_context (rt : t) (handle : int) : Context.ext option =
  match Exec.find_instance rt handle with
  | None -> None
  | Some ctx -> ctx.Context.external_mem

let set_context (rt : t) (handle : int) (ext : Context.ext) : unit =
  match Exec.find_instance rt handle with
  | None -> Exec.error "set_context: unknown machine #%d" handle
  | Some ctx -> ctx.Context.external_mem <- Some ext

(** Introspection used by hosts and tests. *)
let is_alive (rt : t) handle =
  match Exec.find_instance rt handle with
  | None -> false
  | Some ctx -> ctx.Context.alive

let current_state_name (rt : t) handle =
  match Exec.find_instance rt handle with
  | None -> None
  | Some ctx ->
    Option.map (fun s -> (Context.state_table ctx s).Tables.st_name)
      (Context.current_state ctx)

let queue_length (rt : t) handle =
  match Exec.find_instance rt handle with
  | None -> 0
  | Some ctx -> Context.inbox_length ctx
