lib/checker/canon.ml: Ast Buffer Char Digest Hashtbl List Names P_semantics P_static P_syntax
