(** State-space reduction policies for the unified exploration engine.

    Two orthogonal reductions, selectable independently:

    - {b Sleep-set partial-order reduction} over the engine's scheduler
      choice points, applied parent-side: when the engine expands a state
      it executes every scheduler move; a move whose dynamic footprint
      (the machines its block ran on, sent to, spawned or deleted —
      {!footprint}) is disjoint from an earlier surviving move's commutes
      with it, and is pruned together with its successors — the covering
      branch reaches the commuted image of everything the pruned branch
      would have visited, one rotation later. A pruned successor is never
      keyed and never claimed in the store, so the reduced state set is a
      subset of the unreduced one. Pruning is a pure function of the
      expanded state, which keeps the work-stealing engine's determinism
      contract intact. Under a finite delay budget the covering schedule
      can cost one more delay than the pruned one, so an error sitting
      exactly at the budget boundary may move to the next bound — the
      differential suite (every example, every buggy variant, the
      quickcheck corpus) arbitrates that this never changes a verdict.

    - {b Symmetry canonicalization} over machine identities: before
      fingerprinting, live machine identifiers are renamed into a
      canonical permutation ({!Fingerprint.renaming}) so configurations
      differing only in which identity plays which role — typically twins
      created by different interleavings of the same [new] statements —
      collapse to one state.

    Both are validated differentially: the quickcheck harness and the
    engine tests require reduced runs to reach the same verdict as
    unreduced ones on every example and generated program, with never
    more states. *)

module Mid = P_semantics.Mid
module Trace = P_semantics.Trace
module Step = P_semantics.Step

type t = { por : bool; symmetry : bool }

let none = { por = false; symmetry = false }
let por = { por = true; symmetry = false }
let symmetry = { por = false; symmetry = true }
let full = { por = true; symmetry = true }

let is_none r = not (r.por || r.symmetry)

let to_string r =
  match (r.por, r.symmetry) with
  | false, false -> "none"
  | true, false -> "por"
  | false, true -> "symmetry"
  | true, true -> "full"

let of_string = function
  | "none" -> Ok none
  | "por" -> Ok por
  | "symmetry" -> Ok symmetry
  | "full" -> Ok full
  | s ->
    Error
      (Printf.sprintf "unknown reduction mode %S (expected none|por|symmetry|full)" s)

let pp ppf r = Fmt.string ppf (to_string r)

let all = [ none; por; symmetry; full ]

(* ------------------------------------------------------------------ *)
(* Dynamic footprints                                                  *)
(* ------------------------------------------------------------------ *)

(** What executing one scheduler move (all its ghost resolutions taken
    together) touched: the runner itself plus every machine it sent to,
    spawned, or deleted; whether it allocated an identifier (two spawning
    blocks conflict on the deterministic allocator); whether any
    resolution failed (error states must never be pruned or slept). *)
type footprint = { fp_mids : Mid.Set.t; fp_spawns : bool; fp_fails : bool }

let footprint (mid : Mid.t) (rs : Search.resolved list) : footprint =
  List.fold_left
    (fun acc (r : Search.resolved) ->
      let acc =
        match r.Search.outcome with
        | Step.Failed _ -> { acc with fp_fails = true }
        | Step.Progress _ | Step.Blocked _ | Step.Terminated _
        | Step.Need_more_choices -> acc
      in
      List.fold_left
        (fun acc (it : Trace.item) ->
          match it with
          | Trace.Sent { dst; _ } -> { acc with fp_mids = Mid.Set.add dst acc.fp_mids }
          | Trace.Created { created; _ } ->
            { fp_mids = Mid.Set.add created acc.fp_mids;
              fp_spawns = true;
              fp_fails = acc.fp_fails }
          | Trace.Deleted { mid = d } ->
            { acc with fp_mids = Mid.Set.add d acc.fp_mids }
          | _ -> acc)
        acc r.Search.items)
    { fp_mids = Mid.Set.singleton mid; fp_spawns = false; fp_fails = false }
    rs

(** Dynamic independence of two moves already executed from the same
    state: disjoint footprints, not both allocating, neither failing. *)
let independent a b =
  (not a.fp_fails) && (not b.fp_fails)
  && (not (a.fp_spawns && b.fp_spawns))
  && Mid.Set.disjoint a.fp_mids b.fp_mids
