test/test_parser.ml: Alcotest Ast Builder Fmt List Loc Names Option P_examples_lib P_parser P_syntax P_usb Pretty Ptype QCheck2 QCheck_alcotest Stdlib String
