lib/checker/depth_bounded.ml: Canon Hashtbl List P_semantics P_static Queue Search Unix
