(** Recursive-descent parser for the textual P syntax.

    The grammar follows Figure 3 of the paper, with the surface conveniences
    also used by the paper's examples: named [defer]/[postpone] sets inside
    state blocks, [entry]/[exit] blocks, [on (n, e) do a] action bindings,
    [push] for call transitions, and a [main M(x = e, ...);] initialization
    statement.

    Identifiers in expression position are resolved against the event
    declarations (which the grammar places before all machines): a name
    declared as an event parses to [Event_lit], anything else to [Var]. The
    static checker independently enforces the paper's global-uniqueness rule,
    so this resolution is unambiguous for well-formed programs. *)

open P_syntax

type t = {
  lexer : Lexer.t;
  mutable tok : Token.t;
  mutable loc : Loc.t;
  mutable events : (string, unit) Hashtbl.t;
}

let advance p =
  let tok, loc = Lexer.next p.lexer in
  p.tok <- tok;
  p.loc <- loc

let create ?file src =
  let lexer = Lexer.create ?file src in
  let p = { lexer; tok = Token.EOF; loc = Loc.none; events = Hashtbl.create 16 } in
  advance p;
  p

let error p fmt = Parse_error.raise_at p.loc fmt

let expect p tok =
  if p.tok = tok then advance p
  else error p "expected %s but found %s" (Token.to_string tok) (Token.to_string p.tok)

let expect_ident p what =
  match p.tok with
  | Token.IDENT s ->
    advance p;
    s
  | t -> error p "expected %s name but found %s" what (Token.to_string t)

let accept p tok =
  if p.tok = tok then begin
    advance p;
    true
  end
  else false

let is_event p name = Hashtbl.mem p.events name

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_type p =
  match p.tok with
  | Token.KW_EVENT ->
    (* the type [event] shares its spelling with the declaration keyword *)
    advance p;
    Ptype.Event
  | Token.IDENT s -> (
    match Ptype.of_string s with
    | Some ty ->
      advance p;
      ty
    | None -> error p "unknown type %S" s)
  | t -> error p "expected a type but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)


(* Precedence climbing over the binary operators of Figure 3. *)
let binop_of_token = function
  | Token.BARBAR -> Some (Ast.Or, 1)
  | Token.AMPAMP -> Some (Ast.And, 2)
  | Token.EQEQ -> Some (Ast.Eq, 3)
  | Token.BANGEQ -> Some (Ast.Neq, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PLUS -> Some (Ast.Add, 5)
  | Token.MINUS -> Some (Ast.Sub, 5)
  | Token.STAR -> Some (Ast.Mul, 6)
  | Token.SLASH -> Some (Ast.Div, 6)
  | Token.PERCENT -> Some (Ast.Mod, 6)
  | _ -> None

let rec parse_expr p = parse_binary p 1

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match binop_of_token p.tok with
    | Some (op, prec) when prec >= min_prec ->
      let loc = p.loc in
      advance p;
      let rhs = parse_binary p (prec + 1) in
      loop { Ast.e = Ast.Binop (op, lhs, rhs); eloc = loc }
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  match p.tok with
  | Token.BANG ->
    let loc = p.loc in
    advance p;
    let a = parse_unary p in
    { Ast.e = Ast.Unop (Ast.Not, a); eloc = loc }
  | Token.MINUS ->
    let loc = p.loc in
    advance p;
    let a = parse_unary p in
    { Ast.e = Ast.Unop (Ast.Neg, a); eloc = loc }
  | _ -> parse_primary p

and parse_primary p =
  let loc = p.loc in
  match p.tok with
  | Token.KW_THIS ->
    advance p;
    { Ast.e = Ast.This; eloc = loc }
  | Token.KW_MSG ->
    advance p;
    { Ast.e = Ast.Msg; eloc = loc }
  | Token.KW_ARG ->
    advance p;
    { Ast.e = Ast.Arg; eloc = loc }
  | Token.KW_NULL ->
    advance p;
    { Ast.e = Ast.Null; eloc = loc }
  | Token.KW_TRUE ->
    advance p;
    { Ast.e = Ast.Bool_lit true; eloc = loc }
  | Token.KW_FALSE ->
    advance p;
    { Ast.e = Ast.Bool_lit false; eloc = loc }
  | Token.INT n ->
    advance p;
    { Ast.e = Ast.Int_lit n; eloc = loc }
  | Token.STAR ->
    advance p;
    { Ast.e = Ast.Nondet; eloc = loc }
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | Token.IDENT name ->
    advance p;
    if p.tok = Token.LPAREN then begin
      (* foreign call in expression position *)
      advance p;
      let args = parse_expr_list p in
      expect p Token.RPAREN;
      { Ast.e = Ast.Foreign_call (Names.Foreign.of_string name, args); eloc = loc }
    end
    else if is_event p name then
      { Ast.e = Ast.Event_lit (Names.Event.of_string name); eloc = loc }
    else { Ast.e = Ast.Var (Names.Var.of_string name); eloc = loc }
  | t -> error p "expected an expression but found %s" (Token.to_string t)

and parse_expr_list p =
  if p.tok = Token.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expr p in
      if accept p Token.COMMA then loop (e :: acc) else List.rev (e :: acc)
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_init_list p =
  if p.tok = Token.RPAREN then []
  else
    let rec loop acc =
      let x = expect_ident p "variable" in
      expect p Token.EQUALS;
      let e = parse_expr p in
      let acc = (Names.Var.of_string x, e) :: acc in
      if accept p Token.COMMA then loop acc else List.rev acc
    in
    loop []

let rec parse_stmt p : Ast.stmt =
  let loc = p.loc in
  let mk s : Ast.stmt = { Ast.s; sloc = loc } in
  match p.tok with
  | Token.KW_SKIP ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Skip
  | Token.KW_DELETE ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Delete
  | Token.KW_LEAVE ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Leave
  | Token.KW_RETURN ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Return
  | Token.KW_SEND ->
    advance p;
    expect p Token.LPAREN;
    let target = parse_expr p in
    expect p Token.COMMA;
    let ev = expect_ident p "event" in
    let payload =
      if accept p Token.COMMA then parse_expr p else { Ast.e = Ast.Null; eloc = loc }
    in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    mk (Ast.Send (target, Names.Event.of_string ev, payload))
  | Token.KW_RAISE ->
    advance p;
    expect p Token.LPAREN;
    let ev = expect_ident p "event" in
    let payload =
      if accept p Token.COMMA then parse_expr p else { Ast.e = Ast.Null; eloc = loc }
    in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    mk (Ast.Raise (Names.Event.of_string ev, payload))
  | Token.KW_ASSERT ->
    advance p;
    expect p Token.LPAREN;
    let e = parse_expr p in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    mk (Ast.Assert e)
  | Token.KW_IF ->
    advance p;
    expect p Token.LPAREN;
    let c = parse_expr p in
    expect p Token.RPAREN;
    let then_ = parse_block p in
    let else_ =
      if accept p Token.KW_ELSE then
        if p.tok = Token.KW_IF then parse_stmt p else parse_block p
      else { Ast.s = Ast.Skip; sloc = loc }
    in
    mk (Ast.If (c, then_, else_))
  | Token.KW_WHILE ->
    advance p;
    expect p Token.LPAREN;
    let c = parse_expr p in
    expect p Token.RPAREN;
    let body = parse_block p in
    mk (Ast.While (c, body))
  | Token.KW_CALL ->
    advance p;
    let n = expect_ident p "state" in
    expect p Token.SEMI;
    mk (Ast.Call_state (Names.State.of_string n))
  | Token.IDENT name -> (
    advance p;
    match p.tok with
    | Token.ASSIGN ->
      advance p;
      if p.tok = Token.KW_NEW then begin
        advance p;
        let m = expect_ident p "machine" in
        expect p Token.LPAREN;
        let inits = parse_init_list p in
        expect p Token.RPAREN;
        expect p Token.SEMI;
        mk (Ast.New (Names.Var.of_string name, Names.Machine.of_string m, inits))
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        mk (Ast.Assign (Names.Var.of_string name, e))
      end
    | Token.LPAREN ->
      advance p;
      let args = parse_expr_list p in
      expect p Token.RPAREN;
      expect p Token.SEMI;
      mk (Ast.Foreign_stmt (Names.Foreign.of_string name, args))
    | t ->
      error p "expected ':=' or '(' after identifier %S but found %s" name
        (Token.to_string t))
  | t -> error p "expected a statement but found %s" (Token.to_string t)

(* A `{ ... }` block of statements, sequenced left to right; empty = skip. *)
and parse_block p : Ast.stmt =
  let loc = p.loc in
  expect p Token.LBRACE;
  let stmt = parse_stmts_until p Token.RBRACE loc in
  expect p Token.RBRACE;
  stmt

and parse_stmts_until p closer loc : Ast.stmt =
  let rec loop acc =
    if p.tok = closer then acc
    else
      let s = parse_stmt p in
      match acc with
      | None -> loop (Some s)
      | Some prev -> loop (Some { Ast.s = Ast.Seq (prev, s); sloc = prev.Ast.sloc })
  in
  match loop None with None -> { Ast.s = Ast.Skip; sloc = loc } | Some s -> s

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_ident_list p what =
  let rec loop acc =
    let x = expect_ident p what in
    if accept p Token.COMMA then loop (x :: acc) else List.rev (x :: acc)
  in
  loop []

let parse_state p : Ast.state =
  let state_loc = p.loc in
  expect p Token.KW_STATE;
  let name = expect_ident p "state" in
  expect p Token.LBRACE;
  let deferred = ref [] in
  let postponed = ref [] in
  let entry = ref { Ast.s = Ast.Skip; sloc = state_loc } in
  let exit = ref { Ast.s = Ast.Skip; sloc = state_loc } in
  let rec items () =
    match p.tok with
    | Token.KW_DEFER ->
      advance p;
      deferred := !deferred @ List.map Names.Event.of_string (parse_ident_list p "event");
      expect p Token.SEMI;
      items ()
    | Token.KW_POSTPONE ->
      advance p;
      postponed :=
        !postponed @ List.map Names.Event.of_string (parse_ident_list p "event");
      expect p Token.SEMI;
      items ()
    | Token.KW_ENTRY ->
      advance p;
      entry := parse_block p;
      items ()
    | Token.KW_EXIT ->
      advance p;
      exit := parse_block p;
      items ()
    | _ -> ()
  in
  items ();
  expect p Token.RBRACE;
  { Ast.state_name = Names.State.of_string name;
    deferred = !deferred;
    postponed = !postponed;
    entry = !entry;
    exit = !exit;
    state_loc }

let parse_transition p : Ast.transition =
  let tr_loc = p.loc in
  (* the keyword (step / push) has already been consumed *)
  expect p Token.LPAREN;
  let source = expect_ident p "state" in
  expect p Token.COMMA;
  let ev = expect_ident p "event" in
  expect p Token.COMMA;
  let target = expect_ident p "state" in
  expect p Token.RPAREN;
  expect p Token.SEMI;
  { Ast.tr_source = Names.State.of_string source;
    tr_event = Names.Event.of_string ev;
    tr_target = Names.State.of_string target;
    tr_loc }

let parse_machine p ~ghost : Ast.machine =
  let machine_loc = p.loc in
  expect p Token.KW_MACHINE;
  let name = expect_ident p "machine" in
  expect p Token.LBRACE;
  let vars = ref [] in
  let actions = ref [] in
  let states = ref [] in
  let steps = ref [] in
  let calls = ref [] in
  let bindings = ref [] in
  let foreigns = ref [] in
  let rec items () =
    match p.tok with
    | Token.KW_VAR | Token.KW_GHOST ->
      let var_ghost = accept p Token.KW_GHOST in
      let var_loc = p.loc in
      expect p Token.KW_VAR;
      let names = parse_ident_list p "variable" in
      expect p Token.COLON;
      let ty = parse_type p in
      expect p Token.SEMI;
      List.iter
        (fun x ->
          vars :=
            { Ast.var_name = Names.Var.of_string x;
              var_type = ty;
              var_ghost;
              var_loc }
            :: !vars)
        names;
      items ()
    | Token.KW_ACTION ->
      let action_loc = p.loc in
      advance p;
      let aname = expect_ident p "action" in
      let body = parse_block p in
      actions :=
        { Ast.action_name = Names.Action.of_string aname;
          action_body = body;
          action_loc }
        :: !actions;
      items ()
    | Token.KW_STATE ->
      states := parse_state p :: !states;
      items ()
    | Token.KW_STEP ->
      advance p;
      steps := parse_transition p :: !steps;
      items ()
    | Token.KW_PUSH ->
      advance p;
      calls := parse_transition p :: !calls;
      items ()
    | Token.KW_ON ->
      let bd_loc = p.loc in
      advance p;
      expect p Token.LPAREN;
      let st = expect_ident p "state" in
      expect p Token.COMMA;
      let ev = expect_ident p "event" in
      expect p Token.RPAREN;
      expect p Token.KW_DO;
      let a = expect_ident p "action" in
      expect p Token.SEMI;
      bindings :=
        { Ast.bd_state = Names.State.of_string st;
          bd_event = Names.Event.of_string ev;
          bd_action = Names.Action.of_string a;
          bd_loc }
        :: !bindings;
      items ()
    | Token.KW_FOREIGN ->
      let foreign_loc = p.loc in
      advance p;
      let fname = expect_ident p "foreign function" in
      expect p Token.LPAREN;
      let params =
        if p.tok = Token.RPAREN then []
        else
          let rec loop acc =
            let ty = parse_type p in
            if accept p Token.COMMA then loop (ty :: acc) else List.rev (ty :: acc)
          in
          loop []
      in
      expect p Token.RPAREN;
      expect p Token.COLON;
      let ret = parse_type p in
      let model = if accept p Token.KW_MODEL then Some (parse_expr p) else None in
      expect p Token.SEMI;
      foreigns :=
        { Ast.foreign_name = Names.Foreign.of_string fname;
          foreign_params = params;
          foreign_ret = ret;
          foreign_model = model;
          foreign_loc }
        :: !foreigns;
      items ()
    | _ -> ()
  in
  items ();
  expect p Token.RBRACE;
  { Ast.machine_name = Names.Machine.of_string name;
    machine_ghost = ghost;
    vars = List.rev !vars;
    actions = List.rev !actions;
    states = List.rev !states;
    steps = List.rev !steps;
    calls = List.rev !calls;
    bindings = List.rev !bindings;
    foreigns = List.rev !foreigns;
    machine_loc }

let parse_event_decl p : Ast.event_decl list =
  expect p Token.KW_EVENT;
  let rec loop acc =
    let event_loc = p.loc in
    let name = expect_ident p "event" in
    let payload =
      if accept p Token.LPAREN then begin
        let ty = parse_type p in
        expect p Token.RPAREN;
        ty
      end
      else Ptype.Void
    in
    Hashtbl.replace p.events name ();
    let decl =
      { Ast.event_name = Names.Event.of_string name;
        event_payload = payload;
        event_loc }
    in
    if accept p Token.COMMA then loop (decl :: acc) else List.rev (decl :: acc)
  in
  let decls = loop [] in
  expect p Token.SEMI;
  decls

let parse_program p : Ast.program =
  let events = ref [] in
  while p.tok = Token.KW_EVENT do
    events := !events @ parse_event_decl p
  done;
  let machines = ref [] in
  let continue = ref true in
  while !continue do
    match p.tok with
    | Token.KW_MACHINE -> machines := parse_machine p ~ghost:false :: !machines
    | Token.KW_GHOST ->
      advance p;
      machines := parse_machine p ~ghost:true :: !machines
    | _ -> continue := false
  done;
  expect p Token.KW_MAIN;
  let main = expect_ident p "machine" in
  expect p Token.LPAREN;
  let main_init = parse_init_list p in
  expect p Token.RPAREN;
  expect p Token.SEMI;
  expect p Token.EOF;
  { Ast.events = !events;
    machines = List.rev !machines;
    main = Names.Machine.of_string main;
    main_init }

(** Parse a complete program from a string. Raises {!Parse_error.Error}. *)
let program_of_string ?file src = parse_program (create ?file src)

(** Parse a program from a file on disk. *)
let program_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      program_of_string ~file:path src)
