lib/semantics/equeue.mli: Fmt P_syntax Value
