(** Runtime values: the mutable engine's twin of {!P_semantics.Value}, with
    names resolved to table indices. The runtime shares no execution code
    with the verifier — mirroring the paper's generated-C-plus-runtime vs
    Zing split — which is what makes the d=0 equivalence tests meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Event of int  (** event id *)
  | Machine of int  (** machine instance handle *)

val equal : t -> t -> bool
val pp : t Fmt.t

exception Type_error of string

val truth : t -> bool
(** @raise Type_error on non-booleans, including [⊥]. *)

val unop : P_compile.Tables.unop -> t -> t
val binop : P_compile.Tables.binop -> t -> t -> t
(** [⊥] propagates; ill-typed applications raise {!Type_error}. *)
