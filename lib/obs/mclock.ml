(** The monotonic time base of the observability layer, replacing the
    [Unix.gettimeofday] pairs that used to be scattered through the engines.
    Wall-clock time can step backwards (NTP); CLOCK_MONOTONIC cannot, which
    matters for elapsed-time accounting inside hours-long explorations. *)

(* bechamel's C stub around clock_gettime(CLOCK_MONOTONIC), in ns *)
let now_ns () : int64 = Monotonic_clock.now ()

let now_us () : float = Int64.to_float (now_ns ()) /. 1e3

(** An opaque starting point for elapsed-time measurement. *)
type span = int64

let start () : span = now_ns ()

let elapsed_ns (t0 : span) : int64 = Int64.sub (now_ns ()) t0
let elapsed_us (t0 : span) : float = Int64.to_float (elapsed_ns t0) /. 1e3
let elapsed_s (t0 : span) : float = Int64.to_float (elapsed_ns t0) /. 1e9

(** Time a thunk: [(result, elapsed seconds)]. *)
let timed f =
  let t0 = start () in
  let r = f () in
  (r, elapsed_s t0)
