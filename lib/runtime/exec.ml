(** The execution engine of the P runtime: an independent, mutable,
    table-driven implementation of the operational semantics, structured
    like the C runtime of section 4.

    Scheduling follows the paper's run-to-completion discipline: the thread
    that delivers an event to an idle machine runs that machine until it has
    nothing left to do. A send to an idle machine runs the receiver *nested*
    on the same thread (the receiver preempts the sender and runs to
    quiescence before the sender resumes), which is exactly the causal
    stack order of the delay-bounded scheduler with d = 0 — the equivalence
    the paper states in section 5 and that test/test_equiv.ml checks. A send
    to a machine that is already running (or scheduled on another thread)
    only enqueues; the receiver's own drain loop picks the event up.

    Thread safety: each context has a [scheduled] flag; flags, the instance
    table and every inbox are protected by the runtime's lock, which is
    *not* held while machine code runs, so concurrent host threads can
    drive disjoint machines in parallel (the per-instance locking the paper
    describes). *)

module Tables = P_compile.Tables

exception Runtime_error of string

let error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

type foreign_fn = Context.t -> Rt_value.t list -> Rt_value.t

(** Stepped (differential-replay) mode. Normally the runtime is
    run-to-completion: a send or [new] immediately runs the receiver/child
    nested on the same thread. A checker schedule, however, is a list of
    per-machine atomic blocks, each ending at a scheduling point. With
    [stepped] set, a send only enqueues, [new] only creates, and either one
    raises the yield flag so {!run_machine} stops at the block boundary —
    letting {!step_block} drive the runtime machine-by-machine along a
    recorded schedule. [sp_choices] supplies the block's recorded ghost
    [*] resolutions (full tables lower [*] to {!Tables.cexpr.CNondet}). *)
type stepped = {
  mutable sp_choices : bool list;  (** remaining recorded [*] outcomes *)
  mutable sp_yield : bool;  (** a scheduling point was reached *)
}

exception Choice_needed
(** A [*] was evaluated past the end of [sp_choices]. *)

(** Scheduled (effects) mode: sends, spawns, [*] choices and quantum
    expiry perform effects instead of recursing on the caller's stack, so
    a {!Sched} handler can multiplex thousands of machine fibers on one
    domain. [sc_left] is the remaining dequeue budget of the running
    fiber; when it reaches zero the machine loop performs {!Sched_yield}
    at its next dequeue point (a scheduling point in the semantics), which
    lets a serving scheduler preempt chatty machines without breaking
    atomic-block boundaries. *)
type sched_mode = {
  sc_quantum : int;
  mutable sc_left : int;
}

type mode =
  | Nested  (** run-to-completion on the calling thread (the d = 0 schedule) *)
  | Stepped of stepped  (** differential replay via {!step_block} *)
  | Scheduled of sched_mode  (** cooperative fibers under a {!Sched} handler *)

(** The effects performed by machine code in [Scheduled] mode. Declared
    here (the lowest layer) so the machine loop can perform them; handled
    exclusively by [Sched.run_fiber]. *)
type _ Effect.t +=
  | Sched_send : {
      src : Context.t;
      dst : int;
      event : int;
      payload : Rt_value.t;
    }
      -> Context.backpressure Effect.t
  | Sched_spawn : {
      creator : Context.t;
      ty : int;
      inits : (int * Rt_value.t) list;
    }
      -> int Effect.t
  | Sched_yield : Context.t -> unit Effect.t
  | Sched_choose : Context.t -> bool Effect.t

exception
  Mailbox_overflow of {
    dst : int;
    event : string;
    capacity : int;
  }
(** A bounded mailbox rejected an event in a mode with no shed path
    (run-to-completion delivery via {!Api.add_event} or a machine-code
    send in [Nested] mode). *)

(** Metric handles resolved once in {!set_metrics}: sends, dequeues and
    machine creations as counters, plus the longest inbox ever seen.
    Updated under the runtime lock the bookkeeping already holds, so the
    hot path gains no extra synchronization. *)
type rt_meters = {
  rm_sends : P_obs.Metrics.counter;  (** [runtime.sends] *)
  rm_dequeues : P_obs.Metrics.counter;  (** [runtime.dequeues] *)
  rm_creates : P_obs.Metrics.counter;  (** [runtime.creates] *)
  rm_queue_hwm : P_obs.Metrics.gauge;  (** [runtime.queue_len_hwm] *)
}

type t = {
  driver : Tables.driver;
  instances : (int, Context.t) Hashtbl.t;
  mutable next_handle : int;
  foreigns : (string, foreign_fn) Hashtbl.t;
  lock : Mutex.t;
  mutable trace_hook : (Rt_trace.item -> unit) option;
  mutable meters : rt_meters option;
  mutable mode : mode;
      (** [Stepped _] only inside {!step_block}; [Scheduled _] only under a
          {!Sched} handler *)
  mutable default_capacity : int;
      (** mailbox capacity for instances created from here on *)
  mutable n_dequeued : int;  (** events processed, all modes; cheap stat *)
  mutable fault_plan : P_semantics.Fault.plan option;
      (** deterministic fault injection for {!step_block}-driven replay;
          decisions are a pure function of the plan's seed and [fseq], so
          a stepped run mirrors the interpreter's faults exactly *)
  mutable fseq : int;  (** fault points consumed so far (monotone) *)
}

let create (driver : Tables.driver) : t =
  { driver;
    instances = Hashtbl.create 16;
    next_handle = 0;
    foreigns = Hashtbl.create 16;
    lock = Mutex.create ();
    trace_hook = None;
    meters = None;
    mode = Nested;
    default_capacity = max_int;
    n_dequeued = 0;
    fault_plan = None;
    fseq = 0 }

let is_stepped rt = match rt.mode with Stepped _ -> true | _ -> false
let stepped_yield rt = match rt.mode with Stepped sp -> sp.sp_yield | _ -> false
let set_yield rt = match rt.mode with Stepped sp -> sp.sp_yield <- true | _ -> ()

let set_mailbox_capacity rt capacity =
  if capacity <= 0 then invalid_arg "Exec.set_mailbox_capacity";
  rt.default_capacity <- capacity

let scheduled_mode rt ~quantum =
  if quantum <= 0 then invalid_arg "Exec.scheduled_mode: quantum";
  rt.mode <- Scheduled { sc_quantum = quantum; sc_left = quantum }

let reset_quantum rt =
  match rt.mode with Scheduled sc -> sc.sc_left <- sc.sc_quantum | _ -> ()

let events_dequeued rt = rt.n_dequeued

(** Install (or clear) the fault plan stepped execution runs under. An
    all-zero plan is normalized to [None]; the fault-point counter resets,
    so decisions from the next {!step_block} on mirror an interpreter run
    started from the initial configuration under the same plan. *)
let set_fault_plan rt plan =
  rt.fault_plan <-
    (match plan with
    | Some p when not (P_semantics.Fault.is_none p) -> Some p
    | _ -> None);
  rt.fseq <- 0

(* Consume one fault index (stepped mode only; the caller has already
   established the fault point is due, e.g. the send target exists). *)
let send_fault rt : P_semantics.Fault.send_fault =
  match (rt.mode, rt.fault_plan) with
  | Stepped _, Some plan ->
    let index = rt.fseq in
    rt.fseq <- index + 1;
    P_semantics.Fault.on_send plan ~index
  | _ -> P_semantics.Fault.Deliver

(** Point the runtime at a metrics registry ([None] turns metrics off). *)
let set_metrics (rt : t) (reg : P_obs.Metrics.t option) : unit =
  rt.meters <-
    Option.map
      (fun reg ->
        { rm_sends = P_obs.Metrics.counter reg "runtime.sends";
          rm_dequeues = P_obs.Metrics.counter reg "runtime.dequeues";
          rm_creates = P_obs.Metrics.counter reg "runtime.creates";
          rm_queue_hwm = P_obs.Metrics.gauge reg "runtime.queue_len_hwm" })
      reg

let emit rt item = match rt.trace_hook with None -> () | Some f -> f item

let with_lock rt f =
  Mutex.lock rt.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock rt.lock) f

(** Register the implementation of a foreign function (the paper's
    driver-specific C files). *)
let register_foreign rt name fn = Hashtbl.replace rt.foreigns name fn

let find_instance rt handle = with_lock rt (fun () -> Hashtbl.find_opt rt.instances handle)

let event_name rt e = fst rt.driver.dr_events.(e)
let state_name (ctx : Context.t) s = ctx.table.mt_states.(s).Tables.st_name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval rt (ctx : Context.t) (e : Tables.cexpr) : Rt_value.t =
  match e with
  | Tables.CThis -> Rt_value.Machine ctx.self
  | Tables.CMsg -> (
    match ctx.msg with Some e -> Rt_value.Event e | None -> Rt_value.Null)
  | Tables.CArg -> ctx.arg
  | Tables.CNull -> Rt_value.Null
  | Tables.CBool b -> Rt_value.Bool b
  | Tables.CInt i -> Rt_value.Int i
  | Tables.CEvent e -> Rt_value.Event e
  | Tables.CVar x -> ctx.vars.(x)
  | Tables.CUnop (op, a) -> Rt_value.unop op (eval rt ctx a)
  | Tables.CBinop (op, a, b) ->
    (* force left-to-right operand evaluation: OCaml's right-to-left
       argument order would consume [*] choices in reverse of the
       interpreter (Step.eval binds the left operand first) *)
    let va = eval rt ctx a in
    let vb = eval rt ctx b in
    Rt_value.binop op va vb
  | Tables.CForeign_call (f, args) ->
    let fs = ctx.table.mt_foreigns.(f) in
    let values = List.map (eval rt ctx) args in
    call_foreign rt ctx fs.fs_name values
  | Tables.CNondet -> (
    (* only full (differential) tables contain CNondet; stepped execution
       resolves it from the recorded choice list, scheduled execution asks
       its handler (which may hold a seeded generator) *)
    match rt.mode with
    | Nested ->
      error "machine %s #%d: nondeterministic '*' outside stepped mode"
        ctx.table.mt_name ctx.self
    | Scheduled _ -> Rt_value.Bool (Effect.perform (Sched_choose ctx))
    | Stepped sp -> (
      match sp.sp_choices with
      | [] -> raise Choice_needed
      | b :: rest ->
        sp.sp_choices <- rest;
        Rt_value.Bool b))

and call_foreign rt ctx name values =
  match Hashtbl.find_opt rt.foreigns name with
  | Some fn -> fn ctx values
  | None -> error "foreign function %s is not registered" name

let assign (ctx : Context.t) x v =
  let v =
    match (snd ctx.table.mt_vars.(x), v) with
    | P_syntax.Ptype.Byte, Rt_value.Int i -> Rt_value.Int (i land 0xff)
    | _ -> v
  in
  ctx.vars.(x) <- v

(* ------------------------------------------------------------------ *)
(* The machine loop                                                    *)
(* ------------------------------------------------------------------ *)

(* The CALL rule's pushed handler map (cf. Step.push_amap). *)
let push_amap (ctx : Context.t) (caller_state : int) (amap : Context.handler array) :
    Context.handler array =
  let st = Context.state_table ctx caller_state in
  Array.mapi
    (fun e inherited ->
      if st.Tables.st_steps.(e) <> None || st.Tables.st_calls.(e) <> None then
        Context.HNone
      else
        match st.Tables.st_actions.(e) with
        | Some a -> Context.HAction a
        | None -> if st.Tables.st_deferred.(e) then Context.HDefer else inherited)
    amap

let raise_overflow rt dst e =
  let capacity =
    match find_instance rt dst with
    | Some c -> c.Context.capacity
    | None -> rt.default_capacity
  in
  raise (Mailbox_overflow { dst; event = event_name rt e; capacity })

let rec run_machine rt (ctx : Context.t) : unit =
  let continue = ref true in
  while !continue && ctx.alive && not (stepped_yield rt) do
    (* Preemption point — only at block boundaries: before a dequeue and
       before handling a raised event. Raised events count against the
       quantum too (CRaise decrements it), otherwise a raise-driven
       generator (entry sends, raises, re-enters) never reaches the
       dequeue point and holds its scheduler forever. *)
    (match (rt.mode, ctx.agenda) with
    | Scheduled sc, ([] | Context.Handle _ :: _) ->
      if sc.sc_left <= 0 then begin
        Effect.perform (Sched_yield ctx);
        sc.sc_left <- sc.sc_quantum
      end
    | _ -> ());
    match ctx.agenda with
    | [] -> (
      (* DEQUEUE — under a stepped-mode fault plan this is a fault point
         (one index per attempt with something dequeuable, exactly like the
         interpreter); a delay fault takes the second dequeuable entry *)
      let entry =
        with_lock rt (fun () ->
            match (rt.mode, rt.fault_plan) with
            | Stepped _, Some plan when Context.has_dequeuable ctx ->
              let index = rt.fseq in
              rt.fseq <- index + 1;
              if P_semantics.Fault.on_dequeue plan ~index then
                Context.dequeue_second ctx
              else Context.dequeue ctx
            | _ -> Context.dequeue ctx)
      in
      match entry with
      | None -> continue := false
      | Some (e, v) ->
        rt.n_dequeued <- rt.n_dequeued + 1;
        (match rt.mode with Scheduled sc -> sc.sc_left <- sc.sc_left - 1 | _ -> ());
        (match rt.meters with
        | None -> ()
        | Some m -> P_obs.Metrics.incr m.rm_dequeues);
        emit rt (Rt_trace.Dequeued { mid = ctx.self; event = event_name rt e });
        ctx.msg <- Some e;
        ctx.arg <- v;
        ctx.agenda <- [ Context.Handle (e, v) ])
    | task :: rest -> exec_task rt ctx task rest
  done

and exec_task rt (ctx : Context.t) task rest =
  match task with
  | Context.Handle (e, v) -> handle_event rt ctx e v
  | Context.Pop_frame -> (
    match ctx.frames with
    | [] -> error "machine %s #%d: call stack underflow" ctx.table.mt_name ctx.self
    | _ :: below ->
      ctx.frames <- below;
      ctx.agenda <- rest)
  | Context.Pop_return -> (
    match ctx.frames with
    | [] | [ _ ] ->
      error "machine %s #%d: return from bottom state" ctx.table.mt_name ctx.self
    | frame :: below ->
      ctx.frames <- below;
      ctx.agenda <- frame.f_cont)
  | Context.Enter target -> (
    match ctx.frames with
    | [] -> error "machine %s #%d: no frame to enter" ctx.table.mt_name ctx.self
    | frame :: _ ->
      frame.f_state <- target;
      emit rt (Rt_trace.Entered { mid = ctx.self; state = state_name ctx target });
      ctx.agenda <- Context.Exec (Context.state_table ctx target).st_entry :: rest)
  | Context.Exec code -> exec_code rt ctx code rest

and handle_event rt (ctx : Context.t) e v =
  match ctx.frames with
  | [] ->
    error "machine %s #%d: unhandled event %s" ctx.table.mt_name ctx.self
      (event_name rt e)
  | frame :: _ -> (
    let st = Context.state_table ctx frame.f_state in
    match st.st_steps.(e) with
    | Some target -> ctx.agenda <- [ Context.Exec st.st_exit; Context.Enter target ]
    | None -> (
      match st.st_calls.(e) with
      | Some target ->
        let amap = push_amap ctx frame.f_state frame.f_amap in
        ctx.frames <-
          { Context.f_state = target; f_amap = amap; f_cont = [] } :: ctx.frames;
        emit rt (Rt_trace.Entered { mid = ctx.self; state = state_name ctx target });
        ctx.agenda <- [ Context.Exec (Context.state_table ctx target).st_entry ]
      | None -> (
        let action =
          match st.st_actions.(e) with
          | Some a -> Some a
          | None -> (
            match frame.f_amap.(e) with
            | Context.HAction a -> Some a
            | Context.HDefer | Context.HNone -> None)
        in
        match action with
        | Some a -> ctx.agenda <- [ Context.Exec (snd ctx.table.mt_actions.(a)) ]
        | None ->
          (* POP1: exit, pop, re-raise in the caller *)
          ctx.agenda <-
            [ Context.Exec st.st_exit; Context.Pop_frame; Context.Handle (e, v) ])))

and exec_code rt (ctx : Context.t) (code : Tables.code) rest =
  match code with
  | Tables.CSkip -> ctx.agenda <- rest
  | Tables.CSeq (a, b) ->
    ctx.agenda <- Context.Exec a :: Context.Exec b :: rest
  | Tables.CAssign (x, e) ->
    assign ctx x (eval rt ctx e);
    ctx.agenda <- rest
  | Tables.CIf (c, t, f) ->
    ctx.agenda <- Context.Exec (if Rt_value.truth (eval rt ctx c) then t else f) :: rest
  | Tables.CWhile (c, body) ->
    if Rt_value.truth (eval rt ctx c) then
      ctx.agenda <- Context.Exec body :: Context.Exec code :: rest
    else ctx.agenda <- rest
  | Tables.CAssert (e, msg) ->
    if Rt_value.truth (eval rt ctx e) then ctx.agenda <- rest
    else error "machine %s #%d: assertion failed (%s)" ctx.table.mt_name ctx.self msg
  | Tables.CNew (x, ty, inits) -> (
    let values = List.map (fun (y, e) -> (y, eval rt ctx e)) inits in
    match rt.mode with
    | Scheduled _ ->
      (* the handler owns instance creation: it may place the child on
         another shard and decides when its entry statement runs *)
      let handle = Effect.perform (Sched_spawn { creator = ctx; ty; inits = values }) in
      assign ctx x (Rt_value.Machine handle);
      ctx.agenda <- rest
    | Nested | Stepped _ ->
      let child = create_instance rt ~creator:(Some ctx.self) ty in
      List.iter (fun (y, v) -> assign child y v) values;
      assign ctx x (Rt_value.Machine child.Context.self);
      ctx.agenda <- rest;
      if is_stepped rt then
        (* NEW is a scheduling point; the replayed schedule decides when
           the child's entry statement runs *)
        set_yield rt
      else
        (* the fresh machine preempts its creator, as in the d=0 schedule *)
        ignore (run_if_idle rt child : bool))
  | Tables.CDelete ->
    emit rt (Rt_trace.Deleted { mid = ctx.self });
    with_lock rt (fun () ->
        ctx.alive <- false;
        Hashtbl.remove rt.instances ctx.self);
    ctx.agenda <- []
  | Tables.CSend (target, e, payload) -> (
    (* the interpreter resolves the target before touching the payload (and
       fails on a null target without evaluating it) — mirror that order so
       both layers consume [*] choices identically *)
    match eval rt ctx target with
    | Rt_value.Null ->
      error "machine %s #%d: send to null machine id" ctx.table.mt_name ctx.self
    | Rt_value.Machine dst -> (
      let v = eval rt ctx payload in
      ctx.agenda <- rest;
      match rt.mode with
      | Scheduled _ ->
        (* the handler routes the send (possibly cross-shard); a serving
           scheduler may shed at a bounded mailbox — machine code cannot
           react to backpressure, so the drop is the handler's to count *)
        let (_ : Context.backpressure) =
          Effect.perform (Sched_send { src = ctx; dst; event = e; payload = v })
        in
        ()
      | Nested | Stepped _ -> (
        match deliver rt ~src:ctx.self dst e v with
        | Context.Accepted | Context.Queued -> ()
        | Context.Shed ->
          (* run-to-completion semantics has no shed path: a configured
             bound overflowing is a runtime error, not silent loss *)
          raise_overflow rt dst e))
    | v ->
      error "machine %s #%d: send target is %a, not a machine id" ctx.table.mt_name
        ctx.self Rt_value.pp v)
  | Tables.CRaise (e, payload) ->
    let v = eval rt ctx payload in
    (match rt.mode with Scheduled sc -> sc.sc_left <- sc.sc_left - 1 | _ -> ());
    ctx.msg <- Some e;
    ctx.arg <- v;
    ctx.agenda <- [ Context.Handle (e, v) ]
  | Tables.CLeave -> ctx.agenda <- []
  | Tables.CReturn -> (
    match Context.current_state ctx with
    | None -> error "machine %s #%d: return with empty stack" ctx.table.mt_name ctx.self
    | Some s ->
      ctx.agenda <-
        [ Context.Exec (Context.state_table ctx s).st_exit; Context.Pop_return ])
  | Tables.CCall_state target -> (
    match ctx.frames with
    | [] -> error "machine %s #%d: call with empty stack" ctx.table.mt_name ctx.self
    | frame :: _ ->
      let amap = push_amap ctx frame.f_state frame.f_amap in
      ctx.frames <-
        { Context.f_state = target; f_amap = amap; f_cont = rest } :: ctx.frames;
      emit rt (Rt_trace.Entered { mid = ctx.self; state = state_name ctx target });
      ctx.agenda <- [ Context.Exec (Context.state_table ctx target).st_entry ])
  | Tables.CForeign_stmt (f, args) ->
    let fs = ctx.table.mt_foreigns.(f) in
    let values = List.map (eval rt ctx) args in
    let _ = call_foreign rt ctx fs.fs_name values in
    ctx.agenda <- rest

(* ------------------------------------------------------------------ *)
(* Instance management and scheduling                                  *)
(* ------------------------------------------------------------------ *)

and adopt_instance rt ~self ~creator ty : Context.t =
  let ctx =
    with_lock rt (fun () ->
        if Hashtbl.mem rt.instances self then
          invalid_arg "Exec.adopt_instance: handle already registered";
        if self >= rt.next_handle then rt.next_handle <- self + 1;
        let ctx =
          Context.create ~capacity:rt.default_capacity ~self ~ty
            ~table:rt.driver.dr_machines.(ty) ()
        in
        Hashtbl.replace rt.instances self ctx;
        ctx)
  in
  (match rt.meters with
  | None -> ()
  | Some m -> P_obs.Metrics.incr m.rm_creates);
  emit rt
    (Rt_trace.Created
       { creator; created = ctx.Context.self; kind = ctx.Context.table.mt_name });
  emit rt
    (Rt_trace.Entered
       { mid = ctx.Context.self; state = state_name ctx 0 });
  ctx

and create_instance rt ~creator ty : Context.t =
  let self = fresh_handle rt in
  adopt_instance rt ~self ~creator ty

and fresh_handle rt =
  with_lock rt (fun () ->
      let handle = rt.next_handle in
      rt.next_handle <- handle + 1;
      handle)

(* Deliver an event: enqueue under the lock; if the receiver is idle, claim
   it and run it on this thread (nested run-to-completion). *)
and deliver rt ~src dst e v : Context.backpressure =
  let target =
    with_lock rt (fun () ->
        match Hashtbl.find_opt rt.instances dst with
        | None -> None
        | Some target ->
          (* the fault point sits after target resolution, like the
             interpreter's (Config.find, then the decision) *)
          let enq =
            match send_fault rt with
            | P_semantics.Fault.Deliver -> Context.enqueue target e v
            | P_semantics.Fault.Drop ->
              (* dropped on the wire: the sender observes success *)
              Context.Enq_ok
            | P_semantics.Fault.Duplicate -> (
              (* first copy respects ⊕, the duplicate bypasses it *)
              match Context.enqueue target e v with
              | Context.Enq_overflow -> Context.Enq_overflow
              | Context.Enq_ok | Context.Enq_duplicate ->
                Context.enqueue_no_dedup target e v)
            | P_semantics.Fault.Reorder -> Context.enqueue_front target e v
          in
          (match rt.meters with
          | None -> ()
          | Some m ->
            P_obs.Metrics.incr m.rm_sends;
            P_obs.Metrics.set_max m.rm_queue_hwm
              (float_of_int (Context.inbox_length target)));
          Some (target, enq))
  in
  match target with
  | None ->
    error "send to deleted machine #%d (event %s)" dst (event_name rt e)
  | Some (_, Context.Enq_overflow) -> Context.Shed
  | Some (target, (Context.Enq_ok | Context.Enq_duplicate)) ->
    emit rt
      (Rt_trace.Sent
         { src;
           dst;
           event = event_name rt e;
           payload = Fmt.str "%a" Rt_value.pp v });
    if is_stepped rt then begin
      (* SEND is a scheduling point: enqueue only, stop at the block
         boundary; the schedule decides when the receiver runs *)
      set_yield rt;
      Context.Queued
    end
    else if run_if_idle rt target then Context.Accepted
    else Context.Queued

(* Claim-and-run: set the scheduled flag if unset, then drain the machine,
   re-checking for events that raced in while we were finishing. Returns
   whether this thread claimed (and therefore ran) the machine. *)
and run_if_idle rt (ctx : Context.t) : bool =
  let claimed =
    with_lock rt (fun () ->
        if ctx.Context.scheduled || not ctx.Context.alive then false
        else begin
          ctx.Context.scheduled <- true;
          true
        end)
  in
  if claimed then begin
    let rec drain () =
      run_machine rt ctx;
      let again =
        with_lock rt (fun () ->
            if Context.is_runnable ctx && not (stepped_yield rt) then true
            else begin
              ctx.Context.scheduled <- false;
              false
            end)
      in
      if again then drain ()
    in
    drain ()
  end;
  claimed

(* ------------------------------------------------------------------ *)
(* Stepped execution (differential replay)                             *)
(* ------------------------------------------------------------------ *)

type block_result =
  | Block_progress  (** reached a scheduling point (send or [new]) *)
  | Block_blocked  (** agenda drained and nothing dequeuable *)
  | Block_terminated  (** the machine executed [delete] *)
  | Block_error of string  (** a runtime error configuration *)
  | Block_choices_exhausted
      (** a [*] was evaluated past the supplied choice list *)

(** Run one atomic block of [ctx]: continue its agenda (or dequeue if the
    agenda is empty) until a send/new scheduling point, quiescence,
    termination, or an error — the runtime twin of
    {!P_semantics.Step.run_atomic}. [choices] resolves the block's [*]
    expressions in order. Single-threaded use only: no other thread may
    drive [rt] while stepping. *)
let step_block rt (ctx : Context.t) ~(choices : bool list) : block_result =
  (match rt.mode with
  | Nested -> ()
  | Stepped _ -> invalid_arg "Exec.step_block: already stepping"
  | Scheduled _ -> invalid_arg "Exec.step_block: runtime is under a scheduler");
  if not ctx.Context.alive then
    invalid_arg "Exec.step_block: machine is deleted";
  let sp = { sp_choices = choices; sp_yield = false } in
  rt.mode <- Stepped sp;
  Fun.protect
    ~finally:(fun () -> rt.mode <- Nested)
    (fun () ->
      try
        (* block start is a fault point: the machine about to run may
           crash-restart (keeping its store), mirroring the interpreter's
           hook before the block's first task *)
        (match rt.fault_plan with
        | None -> ()
        | Some plan ->
          let index = rt.fseq in
          rt.fseq <- index + 1;
          if P_semantics.Fault.on_block_start plan ~index then
            Context.restart ctx);
        run_machine rt ctx;
        if sp.sp_yield then Block_progress
        else if not ctx.Context.alive then Block_terminated
        else Block_blocked
      with
      | Runtime_error msg -> Block_error msg
      | Rt_value.Type_error msg -> Block_error msg
      | Choice_needed -> Block_choices_exhausted)
