lib/syntax/names.mli: Fmt Hashtbl Map Set
