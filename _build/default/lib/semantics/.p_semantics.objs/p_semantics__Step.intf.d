lib/semantics/step.mli: Config Errors Mid P_static P_syntax Trace
