lib/runtime/rt_trace.mli: Fmt P_semantics
