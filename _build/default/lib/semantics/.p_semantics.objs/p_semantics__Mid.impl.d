lib/semantics/mid.ml: Fmt Hashtbl Int Map Set
