lib/syntax/ptype.ml: Fmt Stdlib
