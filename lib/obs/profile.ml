(** Per-domain phase profiler. See the interface for the model; the notes
    here are about the two implementation constraints:

    - Hot-path cost. [record] fires once per expanded node (millions per
      run), so it must be two clock reads, a few float stores, and no
      allocation. Each worker writes only its own [lane], so there is no
      lock; spans are kept in a flat float array of stride 3
      (phase code, start, duration) grown by doubling.

    - Trace size. Rendered spans are coalesced: a new span of the same
      phase starting within [coalesce_us] of the previous one's end
      extends it instead of starting a record. The per-phase aggregate
      [counts]/[totals] are updated from the raw durations before
      coalescing, so they stay exact; only the rendering is merged.

    GC attribution uses the runtime's own [Runtime_events] ring buffers:
    every domain's runtime phases (GC slices and friends) arrive as
    begin/end events stamped on the same [CLOCK_MONOTONIC] timeline as
    {!Mclock}, so they land correctly between the worker-recorded spans
    without any epoch correction. Only the *top-level* runtime span per
    ring is kept (the runtime nests phases several levels deep); nested
    begin/ends just track depth. Ring indexes are mapped to worker lanes
    through {!register_worker}'s domain registry, falling back to the ring
    index itself — in a fresh process the runtime assigns ring slots in
    spawn order, so the fallback is almost always already right. *)

type phase = Expand | Steal | Barrier_wait | Shard_lock | Gc

let phase_name = function
  | Expand -> "expand"
  | Steal -> "steal"
  | Barrier_wait -> "barrier_wait"
  | Shard_lock -> "shard_lock"
  | Gc -> "gc"

let code_of_phase = function
  | Expand -> 0
  | Steal -> 1
  | Barrier_wait -> 2
  | Shard_lock -> 3
  | Gc -> 4

let name_of_code = [| "expand"; "steal"; "barrier_wait"; "shard_lock"; "gc" |]
let n_phases = 5
let gc_code = 4

(* One worker's recording slot: a pending (coalescing) span and the stored
   span buffer, stride 3: code, start ts, duration (all µs). Written only
   by the owning worker. *)
type lane = {
  mutable p_code : int;  (* pending span's phase code; -1 = none *)
  mutable p_ts : float;
  mutable p_end : float;
  mutable buf : float array;
  mutable len : int;  (* floats used *)
  mutable dropped : bool;
  counts : int array;  (* per phase code, raw (pre-coalescing) *)
  totals : float array;  (* per phase code, µs, raw *)
}

let max_rings = 128 (* the runtime's Max_domains *)

type state = {
  workers : int;
  coalesce_us : float;
  max_floats : int;  (* per lane *)
  lanes : lane array;
  (* domain-id -> worker lane, filled by [register_worker]; read at flush *)
  map_lock : Mutex.t;
  dmap : (int, int) Hashtbl.t;
  (* --- GC, all under [gc_lock] (pollers serialise; workers never enter) *)
  gc_lock : Mutex.t;
  mutable gc_cursor : Runtime_events.cursor option;
  mutable gc_callbacks : Runtime_events.Callbacks.t option;
  mutable gc_failed : bool;
  mutable gc_last_poll : float;
  gc_depth : int array;  (* per ring: live nesting of runtime phases *)
  gc_start : float array;  (* per ring: top-level span start, µs *)
  (* per-ring pending (coalescing) span *)
  gc_p_active : bool array;
  gc_p_ts : float array;
  gc_p_end : float array;
  mutable gc_buf : float array;  (* stride 3: ring, start ts, duration *)
  mutable gc_len : int;
  mutable gc_dropped : bool;
  gc_counts : int array;  (* per ring, raw *)
  gc_totals : float array;  (* per ring, µs, raw *)
}

type t = Null | On of state

let null = Null
let enabled = function Null -> false | On _ -> true

let new_lane () =
  { p_code = -1;
    p_ts = 0.0;
    p_end = 0.0;
    buf = Array.make (3 * 256) 0.0;
    len = 0;
    dropped = false;
    counts = Array.make n_phases 0;
    totals = Array.make n_phases 0.0 }

let create ?(coalesce_us = 50.0) ?(max_spans = 100_000) ~workers () =
  let workers = max 1 workers in
  On
    { workers;
      coalesce_us;
      max_floats = 3 * max 1 max_spans;
      lanes = Array.init workers (fun _ -> new_lane ());
      map_lock = Mutex.create ();
      dmap = Hashtbl.create 8;
      gc_lock = Mutex.create ();
      gc_cursor = None;
      gc_callbacks = None;
      gc_failed = false;
      gc_last_poll = 0.0;
      gc_depth = Array.make max_rings 0;
      gc_start = Array.make max_rings 0.0;
      gc_p_active = Array.make max_rings false;
      gc_p_ts = Array.make max_rings 0.0;
      gc_p_end = Array.make max_rings 0.0;
      gc_buf = Array.make (3 * 64) 0.0;
      gc_len = 0;
      gc_dropped = false;
      gc_counts = Array.make max_rings 0;
      gc_totals = Array.make max_rings 0.0 }

(* ------------------------------------------------------------------ *)
(* Worker-recorded spans                                               *)
(* ------------------------------------------------------------------ *)

let store_lane (s : state) (l : lane) code ts dur =
  if l.len + 3 > Array.length l.buf then begin
    let cap = Array.length l.buf in
    if cap >= s.max_floats then l.dropped <- true
    else begin
      let buf' = Array.make (min s.max_floats (2 * cap)) 0.0 in
      Array.blit l.buf 0 buf' 0 l.len;
      l.buf <- buf'
    end
  end;
  if l.len + 3 <= Array.length l.buf then begin
    l.buf.(l.len) <- float_of_int code;
    l.buf.(l.len + 1) <- ts;
    l.buf.(l.len + 2) <- dur;
    l.len <- l.len + 3
  end
  else l.dropped <- true

let flush_pending s (l : lane) =
  if l.p_code >= 0 then begin
    store_lane s l l.p_code l.p_ts (l.p_end -. l.p_ts);
    l.p_code <- -1
  end

(* Coalesce-or-store. [ts]/[dur] are the raw span; aggregates were already
   bumped by the caller. *)
let add_span s (l : lane) code ts dur =
  if l.p_code = code && ts -. l.p_end <= s.coalesce_us then begin
    let e = ts +. dur in
    if e > l.p_end then l.p_end <- e
  end
  else begin
    flush_pending s l;
    l.p_code <- code;
    l.p_ts <- ts;
    l.p_end <- ts +. dur
  end

let start = function Null -> 0.0 | On _ -> Mclock.now_us ()

let record t ~worker phase ~t0 =
  match t with
  | Null -> ()
  | On s ->
    if worker >= 0 && worker < s.workers then begin
      let l = s.lanes.(worker) in
      let code = code_of_phase phase in
      let dur = Mclock.now_us () -. t0 in
      l.counts.(code) <- l.counts.(code) + 1;
      l.totals.(code) <- l.totals.(code) +. dur;
      add_span s l code t0 dur
    end

(* ------------------------------------------------------------------ *)
(* GC spans from Runtime_events                                        *)
(* ------------------------------------------------------------------ *)

let register_worker t ~worker =
  match t with
  | Null -> ()
  | On s ->
    Mutex.lock s.map_lock;
    Hashtbl.replace s.dmap (Domain.self () :> int) worker;
    Mutex.unlock s.map_lock

let ts_us ts = Int64.to_float (Runtime_events.Timestamp.to_int64 ts) /. 1e3

(* Store one completed top-level runtime span for [ring]. Under [gc_lock]. *)
let gc_store (s : state) ring ts dur =
  if ring >= 0 && ring < max_rings then begin
    s.gc_counts.(ring) <- s.gc_counts.(ring) + 1;
    s.gc_totals.(ring) <- s.gc_totals.(ring) +. dur;
    (* per-ring coalescing, mirroring [add_span] *)
    if s.gc_p_active.(ring) && ts -. s.gc_p_end.(ring) <= s.coalesce_us then begin
      let e = ts +. dur in
      if e > s.gc_p_end.(ring) then s.gc_p_end.(ring) <- e
    end
    else begin
      if s.gc_p_active.(ring) then begin
        (* flush the previous pending span to the buffer *)
        if s.gc_len + 3 > Array.length s.gc_buf then begin
          let cap = Array.length s.gc_buf in
          if cap >= s.max_floats then s.gc_dropped <- true
          else begin
            let buf' = Array.make (min s.max_floats (2 * cap)) 0.0 in
            Array.blit s.gc_buf 0 buf' 0 s.gc_len;
            s.gc_buf <- buf'
          end
        end;
        if s.gc_len + 3 <= Array.length s.gc_buf then begin
          s.gc_buf.(s.gc_len) <- float_of_int ring;
          s.gc_buf.(s.gc_len + 1) <- s.gc_p_ts.(ring);
          s.gc_buf.(s.gc_len + 2) <- s.gc_p_end.(ring) -. s.gc_p_ts.(ring);
          s.gc_len <- s.gc_len + 3
        end
        else s.gc_dropped <- true
      end;
      s.gc_p_active.(ring) <- true;
      s.gc_p_ts.(ring) <- ts;
      s.gc_p_end.(ring) <- ts +. dur
    end
  end

let start_gc t =
  match t with
  | Null -> ()
  | On s ->
    Mutex.lock s.gc_lock;
    (if s.gc_cursor = None && not s.gc_failed then
       try
         Runtime_events.start ();
         let cursor = Runtime_events.create_cursor None in
         let runtime_begin ring ts (_ : Runtime_events.runtime_phase) =
           if ring >= 0 && ring < max_rings then begin
             let d = s.gc_depth.(ring) in
             if d = 0 then s.gc_start.(ring) <- ts_us ts;
             s.gc_depth.(ring) <- d + 1
           end
         in
         let runtime_end ring ts (_ : Runtime_events.runtime_phase) =
           if ring >= 0 && ring < max_rings && s.gc_depth.(ring) > 0 then begin
             s.gc_depth.(ring) <- s.gc_depth.(ring) - 1;
             if s.gc_depth.(ring) = 0 then begin
               let t1 = ts_us ts in
               let t0 = s.gc_start.(ring) in
               if t1 > t0 then gc_store s ring t0 (t1 -. t0)
             end
           end
         in
         s.gc_callbacks <-
           Some (Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ());
         s.gc_cursor <- Some cursor
       with _ -> s.gc_failed <- true);
    Mutex.unlock s.gc_lock

let poll_interval_us = 1_000.0

let poll_gc t =
  match t with
  | Null -> ()
  | On s -> (
    match s.gc_cursor with
    | None -> ()
    | Some _ ->
      if Mutex.try_lock s.gc_lock then begin
        (match s.gc_cursor with
        | Some cursor ->
          let now = Mclock.now_us () in
          if now -. s.gc_last_poll >= poll_interval_us then begin
            s.gc_last_poll <- now;
            match s.gc_callbacks with
            | Some cb -> ( try ignore (Runtime_events.read_poll cursor cb None) with _ -> ())
            | None -> ()
          end
        | None -> ());
        Mutex.unlock s.gc_lock
      end)

let stop_gc t =
  match t with
  | Null -> ()
  | On s ->
    Mutex.lock s.gc_lock;
    (match s.gc_cursor with
    | None -> ()
    | Some cursor ->
      (match s.gc_callbacks with
      | Some cb -> ( try ignore (Runtime_events.read_poll cursor cb None) with _ -> ())
      | None -> ());
      (try Runtime_events.free_cursor cursor with _ -> ());
      s.gc_cursor <- None);
    Mutex.unlock s.gc_lock

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

(* Worker lane for a ring index: the registered mapping if a worker domain
   claimed that id, else the ring index itself (spawn order ≈ slot order in
   a fresh process). *)
let tid_of_ring (s : state) ring =
  Mutex.lock s.map_lock;
  let tid = Option.value ~default:ring (Hashtbl.find_opt s.dmap ring) in
  Mutex.unlock s.map_lock;
  tid

let flush t sink =
  match t with
  | Null -> ()
  | On s ->
    stop_gc t;
    if Sink.enabled sink then begin
      for w = 0 to s.workers - 1 do
        Sink.thread_name sink ~tid:w (Fmt.str "worker %d" w)
      done;
      Array.iteri
        (fun w (l : lane) ->
          flush_pending s l;
          let i = ref 0 in
          while !i < l.len do
            let code = int_of_float l.buf.(!i) in
            Sink.complete sink ~cat:"profile" ~tid:w ~name:name_of_code.(code)
              ~ts_us:l.buf.(!i + 1) ~dur_us:l.buf.(!i + 2) ();
            i := !i + 3
          done;
          if l.dropped then
            Sink.instant sink ~cat:"profile" ~tid:w ~name:"profile.spans_dropped"
              ~ts_us:l.p_end ())
        s.lanes;
      (* flush per-ring pending GC spans, then emit the GC buffer *)
      Mutex.lock s.gc_lock;
      for ring = 0 to max_rings - 1 do
        if s.gc_p_active.(ring) then begin
          s.gc_p_active.(ring) <- false;
          Sink.complete sink ~cat:"profile" ~tid:(tid_of_ring s ring)
            ~name:name_of_code.(gc_code) ~ts_us:s.gc_p_ts.(ring)
            ~dur_us:(s.gc_p_end.(ring) -. s.gc_p_ts.(ring)) ()
        end
      done;
      let i = ref 0 in
      while !i < s.gc_len do
        let ring = int_of_float s.gc_buf.(!i) in
        Sink.complete sink ~cat:"profile" ~tid:(tid_of_ring s ring)
          ~name:name_of_code.(gc_code) ~ts_us:s.gc_buf.(!i + 1)
          ~dur_us:s.gc_buf.(!i + 2) ();
        i := !i + 3
      done;
      if s.gc_dropped then
        Sink.instant sink ~cat:"profile" ~tid:0 ~name:"profile.spans_dropped"
          ~ts_us:0.0 ()
      ;
      Mutex.unlock s.gc_lock
    end

let total_us t phase =
  match t with
  | Null -> 0.0
  | On s ->
    if phase = Gc then Array.fold_left ( +. ) 0.0 s.gc_totals
    else
      let code = code_of_phase phase in
      Array.fold_left (fun acc (l : lane) -> acc +. l.totals.(code)) 0.0 s.lanes

let span_count t =
  match t with
  | Null -> 0
  | On s ->
    let lane_spans =
      Array.fold_left
        (fun acc (l : lane) ->
          acc + (l.len / 3) + (if l.p_code >= 0 then 1 else 0))
        0 s.lanes
    in
    let gc_pending =
      Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 s.gc_p_active
    in
    lane_spans + (s.gc_len / 3) + gc_pending

let summary_json t =
  match t with
  | Null -> Json.Null
  | On s ->
    let worker_phase code =
      let per =
        Array.to_list
          (Array.map (fun (l : lane) -> Json.Float l.totals.(code)) s.lanes)
      in
      let count =
        Array.fold_left (fun acc (l : lane) -> acc + l.counts.(code)) 0 s.lanes
      in
      let total =
        Array.fold_left (fun acc (l : lane) -> acc +. l.totals.(code)) 0.0 s.lanes
      in
      Json.Obj
        [ ("count", Json.Int count);
          ("total_us", Json.Float total);
          ("per_worker_us", Json.List per) ]
    in
    let gc_phase =
      let per = Array.make s.workers 0.0 in
      for ring = 0 to max_rings - 1 do
        if s.gc_totals.(ring) > 0.0 then begin
          let tid = tid_of_ring s ring in
          if tid >= 0 && tid < s.workers then per.(tid) <- per.(tid) +. s.gc_totals.(ring)
        end
      done;
      Json.Obj
        [ ("count", Json.Int (Array.fold_left ( + ) 0 s.gc_counts));
          ("total_us", Json.Float (Array.fold_left ( +. ) 0.0 s.gc_totals));
          ( "per_worker_us",
            Json.List (Array.to_list (Array.map (fun v -> Json.Float v) per)) ) ]
    in
    Json.Obj
      [ ( "phases",
          Json.Obj
            [ ("expand", worker_phase 0);
              ("steal", worker_phase 1);
              ("barrier_wait", worker_phase 2);
              ("shard_lock", worker_phase 3);
              ("gc", gc_phase) ] );
        ("workers", Json.Int s.workers);
        ("spans_stored", Json.Int (span_count t));
        ( "spans_dropped",
          Json.Bool
            (s.gc_dropped
            || Array.exists (fun (l : lane) -> l.dropped) s.lanes) );
        ("coalesce_us", Json.Float s.coalesce_us) ]
