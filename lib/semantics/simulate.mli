(** Deterministic causal execution of a closed P program: the d = 0 slice
    of the paper's delay-bounded scheduler (section 5), which is exactly the
    schedule the single-threaded runtime executes. *)

type status =
  | Quiescent  (** every machine is waiting for events; no one can move *)
  | Error of Errors.t  (** an error configuration of Figure 6 was reached *)
  | Budget_exhausted  (** still running after [max_blocks] atomic blocks *)

type result = {
  status : status;
  config : Config.t;  (** the final global configuration *)
  trace : Trace.t;  (** chronological happenings of the run *)
  blocks : int;  (** number of atomic blocks executed *)
}

val pp_status : status Fmt.t

val policy_const : bool -> int -> bool
(** [policy_const b]: resolve every ghost [*] choice to [b]. *)

val policy_seeded : int -> int -> bool
(** [policy_seeded seed]: a reproducible pseudo-random choice policy.
    Policies carry internal state — build a fresh one per run. *)

val run :
  ?max_blocks:int ->
  ?policy:(int -> bool) ->
  ?faults:Fault.plan ->
  P_static.Symtab.t ->
  result
(** Execute from the initial configuration until quiescence, an error, or
    the [max_blocks] budget (default 10000). [policy] resolves ghost
    choices (default: always [false]). [faults] runs the whole simulation
    under a deterministic fault-injection plan (see {!Fault}); the same
    plan and seed reproduce the same run. An all-zero plan is normalized
    away. *)

val run_program :
  ?max_blocks:int ->
  ?policy:(int -> bool) ->
  ?faults:Fault.plan ->
  P_syntax.Ast.program ->
  result
(** Statically check with {!P_static.Check.run_exn}, then {!run}. *)
