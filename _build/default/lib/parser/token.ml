(** Tokens of the textual P syntax. *)

type t =
  | IDENT of string
  | INT of int
  (* keywords *)
  | KW_EVENT
  | KW_MACHINE
  | KW_GHOST
  | KW_VAR
  | KW_ACTION
  | KW_STATE
  | KW_DEFER
  | KW_POSTPONE
  | KW_ENTRY
  | KW_EXIT
  | KW_STEP
  | KW_PUSH
  | KW_ON
  | KW_DO
  | KW_FOREIGN
  | KW_MODEL
  | KW_MAIN
  | KW_SKIP
  | KW_NEW
  | KW_DELETE
  | KW_SEND
  | KW_RAISE
  | KW_LEAVE
  | KW_RETURN
  | KW_ASSERT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_CALL
  | KW_THIS
  | KW_MSG
  | KW_ARG
  | KW_NULL
  | KW_TRUE
  | KW_FALSE
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | COLON
  | ASSIGN  (** [:=] *)
  | EQUALS  (** [=] in initializers *)
  | STAR  (** both multiplication and the ghost [*] expression *)
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | BANG
  | AMPAMP
  | BARBAR
  | EQEQ
  | BANGEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keyword_table : (string * t) list =
  [ ("event", KW_EVENT);
    ("machine", KW_MACHINE);
    ("ghost", KW_GHOST);
    ("var", KW_VAR);
    ("action", KW_ACTION);
    ("state", KW_STATE);
    ("defer", KW_DEFER);
    ("postpone", KW_POSTPONE);
    ("entry", KW_ENTRY);
    ("exit", KW_EXIT);
    ("step", KW_STEP);
    ("push", KW_PUSH);
    ("on", KW_ON);
    ("do", KW_DO);
    ("foreign", KW_FOREIGN);
    ("model", KW_MODEL);
    ("main", KW_MAIN);
    ("skip", KW_SKIP);
    ("new", KW_NEW);
    ("delete", KW_DELETE);
    ("send", KW_SEND);
    ("raise", KW_RAISE);
    ("leave", KW_LEAVE);
    ("return", KW_RETURN);
    ("assert", KW_ASSERT);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("call", KW_CALL);
    ("this", KW_THIS);
    ("msg", KW_MSG);
    ("arg", KW_ARG);
    ("null", KW_NULL);
    ("true", KW_TRUE);
    ("false", KW_FALSE) ]

let of_ident s =
  match List.assoc_opt s keyword_table with Some kw -> kw | None -> IDENT s

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | ASSIGN -> "':='"
  | EQUALS -> "'='"
  | STAR -> "'*'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | BANG -> "'!'"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | EQEQ -> "'=='"
  | BANGEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keyword_table with
    | Some (name, _) -> Printf.sprintf "keyword %S" name
    | None -> "<token>")
