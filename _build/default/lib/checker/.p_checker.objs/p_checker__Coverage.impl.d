lib/checker/coverage.ml: Ast Canon Delay_bounded Fmt Hashtbl List Names Option P_semantics P_static P_syntax Queue Search
