(* Tests for the Pcaml facade: the single-entry public API a downstream
   user depends on, plus the sync invariant between the shipped .p files
   and the builder-defined examples. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

let inline_src =
  {|event go(int);
machine M {
  var n : int;
  state S { entry { n := 0; raise(go, 1); } }
  state T { entry { n := n + arg; assert(n < 10); } }
  step (S, go, T);
}
main M();|}

let test_parse_and_verify () =
  let program = Pcaml.parse ~file:"inline.p" inline_src in
  let report = Pcaml.verify ~delay_bound:2 program in
  check bool_t "clean" true (Pcaml.Verifier.is_clean report)

let test_simulate () =
  let program = Pcaml.parse inline_src in
  let sim = Pcaml.simulate program in
  check bool_t "quiescent" true (sim.status = Pcaml.Simulate.Quiescent);
  check bool_t "progressed" true (sim.blocks > 0)

let test_to_c_and_dot () =
  let program = Pcaml.parse inline_src in
  check bool_t "C emitted" true
    (Astring_contains.contains (Pcaml.to_c program) "P_EVENT_go");
  check bool_t "DOT emitted" true
    (Astring_contains.contains (Pcaml.to_dot program) "cluster_M")

let test_load_and_run () =
  let program = Pcaml.parse inline_src in
  let rt = Pcaml.load program in
  let h = Pcaml.Runtime.create_machine rt "M" in
  check bool_t "reached T" true (Pcaml.Runtime.current_state_name rt h = Some "T")

let test_check_rejects () =
  let program = Pcaml.parse "event e;\nmachine M { state S { entry { x := 1; } } }\nmain M();" in
  match Pcaml.check program with
  | exception Pcaml.Check.Rejected _ -> ()
  | _ -> Alcotest.fail "facade check must reject unknown variables"

(* the shipped .p sources stay in sync with the builder-defined examples *)
let find_file candidates =
  List.find Sys.file_exists candidates

let strip_comments src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> String.concat "\n" |> String.trim

let test_elevator_p_in_sync () =
  let path =
    find_file
      [ "examples/p/elevator.p"; "../examples/p/elevator.p"; "../../examples/p/elevator.p";
        "../../../examples/p/elevator.p"; "../../../../examples/p/elevator.p" ]
  in
  let on_disk =
    In_channel.with_open_bin path In_channel.input_all |> strip_comments
  in
  let generated =
    Pcaml.Pretty.program_to_string (P_examples_lib.Elevator.program ()) |> String.trim
  in
  if not (String.equal on_disk generated) then
    Alcotest.fail
      "examples/p/elevator.p is out of sync; regenerate with `pc print --example \
       elevator`"

let suite =
  [ Alcotest.test_case "parse + verify" `Quick test_parse_and_verify;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "to_c + to_dot" `Quick test_to_c_and_dot;
    Alcotest.test_case "load + run" `Quick test_load_and_run;
    Alcotest.test_case "check rejects" `Quick test_check_rejects;
    Alcotest.test_case "elevator.p in sync" `Quick test_elevator_p_in_sync ]
