(* Tests for the counterexample subsystem: the versioned trace artifact,
   deterministic replay, ddmin shrinking, and differential replay of the
   same schedule through the interpreter and the compiled runtime. *)

open P_checker
module Errors = P_semantics.Errors

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let contains = Astring_contains.contains

let tab_of p = P_static.Check.run_exn p

(* A delay-bounded counterexample recorded as a trace artifact. *)
let recorded_ce ?(delay_bound = 2) p =
  let tab = tab_of p in
  match (Delay_bounded.explore ~delay_bound ~max_states:200_000 tab).verdict with
  | Search.No_error -> Alcotest.fail "expected a counterexample"
  | Search.Error_found ce -> (
    match Replay.record_counterexample ~engine:"delay_bounded" tab ce with
    | Error e -> Alcotest.failf "recording failed: %s" e
    | Ok t -> (tab, t))

(* A failing random walk recorded as a trace artifact; walks long enough
   to wander before failing, so shrinking has something to remove. *)
let recorded_walk ~seed p =
  let tab = tab_of p in
  match (Random_walk.run ~walks:50 ~max_blocks:400 ~seed tab).first_error with
  | None -> Alcotest.fail "expected a failing walk"
  | Some f -> (
    match
      Replay.record ~seed:f.walk_seed ~engine:"random_walk" tab f.schedule
    with
    | Error e -> Alcotest.failf "recording failed: %s" e
    | Ok t -> (tab, t))

(* ---------------- the artifact format ---------------- *)

let test_trace_roundtrip_memory () =
  let _tab, t = recorded_ce (P_examples_lib.Elevator.buggy_program ()) in
  let path = Filename.temp_file "pcaml" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.write_file path t;
      match Trace_file.read_file path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok t' ->
        check int_t "version" t.version t'.version;
        check bool_t "error preserved" true (t.error = t'.error);
        check bool_t "engine preserved" true (String.equal t.engine t'.engine);
        check string_t "init digest" t.init_digest t'.init_digest;
        check string_t "final digest" t.final_digest t'.final_digest;
        check int_t "step count" (List.length t.steps) (List.length t'.steps);
        check bool_t "steps identical" true (t.steps = t'.steps))

let test_trace_rejects_garbage () =
  let reject name lines =
    match Trace_file.of_lines lines with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  reject "empty" [];
  reject "not json" [ "hello" ];
  reject "wrong marker" [ {|{"format":"elf","version":1}|} ];
  reject "future version"
    [ {|{"format":"pcaml-trace","version":99,"engine":"x","dedup":true,"init_digest":"","final_digest":"","steps":0}|} ]

(* ---------------- replay ---------------- *)

let test_replay_reproduces_and_is_deterministic () =
  let tab, t = recorded_ce (P_examples_lib.Elevator.buggy_program ()) in
  let run () = Replay.run tab t in
  let r1 = run () and r2 = run () in
  (match r1.outcome with
  | Replay.Reproduced { error; _ } ->
    check bool_t "the recorded error" true (t.error = Some error)
  | o -> Alcotest.failf "not reproduced: %a" Replay.pp_outcome o);
  (* replay is deterministic: same outcome, same happenings *)
  check bool_t "outcomes equal" true (r1.outcome = r2.outcome);
  check int_t "same trace items" (List.length r1.items) (List.length r2.items)

let test_replay_checks_digests () =
  let tab, t = recorded_ce (P_examples_lib.Elevator.buggy_program ()) in
  (* tamper with the fingerprint of the first step that has one *)
  let tampered = ref false in
  let steps =
    List.map
      (fun (s : Trace_file.step) ->
        if (not !tampered) && s.digest <> "" then begin
          tampered := true;
          { s with digest = String.make 32 '0' }
        end
        else s)
      t.steps
  in
  check bool_t "found a digest to tamper with" true !tampered;
  match (Replay.run tab { t with steps }).outcome with
  | Replay.Diverged (Replay.Step_digest_mismatch _) -> ()
  | o -> Alcotest.failf "tampering not detected: %a" Replay.pp_outcome o

let test_replay_detects_missing_machine () =
  let tab, t = recorded_ce (P_examples_lib.Elevator.buggy_program ()) in
  let steps =
    List.map (fun (s : Trace_file.step) -> { s with Trace_file.mid = 77 }) t.steps
  in
  match (Replay.run tab { t with steps }).outcome with
  | Replay.Diverged (Replay.Unknown_machine _) -> ()
  | o -> Alcotest.failf "expected Unknown_machine: %a" Replay.pp_outcome o

(* ---------------- shrinking ---------------- *)

let shrink_roundtrip name p ~seed =
  let tab, t = recorded_walk ~seed p in
  match Shrink.run tab t with
  | Error e -> Alcotest.failf "%s: shrink failed: %s" name e
  | Ok (shrunk, stats) ->
    check bool_t (name ^ ": no growth") true
      (stats.shrunk_steps <= stats.original_steps);
    check int_t
      (name ^ ": stats agree with artifact")
      stats.shrunk_steps
      (List.length shrunk.steps);
    check bool_t (name ^ ": same recorded error") true (shrunk.error = t.error);
    (* the shrunk artifact replays on its own: same verdict, and the
       fingerprints Replay.record computed during re-recording hold *)
    (match (Replay.run tab shrunk).outcome with
    | Replay.Reproduced { error; _ } ->
      check bool_t (name ^ ": replays to the same error") true
        (shrunk.error = Some error)
    | o -> Alcotest.failf "%s: shrunk trace diverged: %a" name Replay.pp_outcome o);
    stats

let test_shrink_elevator () =
  let stats =
    shrink_roundtrip "elevator" (P_examples_lib.Elevator.buggy_program ()) ~seed:1
  in
  (* the ISSUE's acceptance bar: a seeded failing run shrinks by >= 50% *)
  check bool_t "shrank by at least half" true
    (2 * stats.shrunk_steps <= stats.original_steps)

let test_shrink_german () =
  let stats =
    shrink_roundtrip "german" (P_examples_lib.German.buggy_program ()) ~seed:1
  in
  check bool_t "shrank by at least half" true
    (2 * stats.shrunk_steps <= stats.original_steps)

let test_shrink_tokenring () =
  (* token-ring walks fail fast, so the ratio is modest; the round-trip
     invariants (reproduction, valid artifact) are the point here *)
  let stats =
    shrink_roundtrip "tokenring" (P_examples_lib.Token_ring.buggy_program ()) ~seed:1
  in
  check bool_t "still shrank" true (stats.shrunk_steps < stats.original_steps)

let test_shrink_refuses_clean_trace () =
  let tab = tab_of (P_examples_lib.Pingpong.program ~rounds:2 ()) in
  let schedule = Replay.sample_schedule ~seed:3 ~max_blocks:50 tab in
  match Replay.record ~engine:"sample" tab schedule with
  | Error e -> Alcotest.failf "recording failed: %s" e
  | Ok t -> (
    check bool_t "clean trace" true (t.error = None);
    match Shrink.run tab t with
    | Error msg -> check bool_t "diagnosis mentions error" true (contains msg "error")
    | Ok _ -> Alcotest.fail "shrinking a clean trace must be refused")

(* ---------------- differential replay ---------------- *)

let parse_p_example name =
  let path =
    List.find Sys.file_exists
      (List.map
         (fun prefix -> Filename.concat prefix (Filename.concat "examples/p" name))
         [ "."; ".."; "../.."; "../../.."; "../../../.." ])
  in
  P_parser.Parser.program_of_file path

let all_examples =
  [ ("elevator", P_examples_lib.Elevator.program ());
    ("elevator-buggy", P_examples_lib.Elevator.buggy_program ());
    ("pingpong", P_examples_lib.Pingpong.program ());
    ("pingpong-buggy", P_examples_lib.Pingpong.buggy_program ());
    ("german", P_examples_lib.German.program ());
    ("german-buggy", P_examples_lib.German.buggy_program ());
    ("switchled", P_examples_lib.Switch_led.program ());
    ("switchled-buggy", P_examples_lib.Switch_led.buggy_program ());
    ("tokenring", P_examples_lib.Token_ring.program ());
    ("tokenring-buggy", P_examples_lib.Token_ring.buggy_program ());
    ("boundedbuffer", P_examples_lib.Bounded_buffer.program ());
    ("boundedbuffer-buggy", P_examples_lib.Bounded_buffer.buggy_program ());
    ("leaderring", P_examples_lib.Leader_ring.program ());
    ("leaderring-buggy", P_examples_lib.Leader_ring.buggy_program ());
    ("failoverchain", P_examples_lib.Failover_chain.program ());
    ("failoverchain-buggy", P_examples_lib.Failover_chain.buggy_program ());
    (* the shipped concrete-syntax protocols ride the same harness *)
    ("ring.p", parse_p_example "ring.p");
    ("failover.p", parse_p_example "failover.p") ]

let test_differential_sampled_schedules () =
  (* every example program: a seeded random schedule must execute
     identically in the interpreter and the compiled runtime tables *)
  List.iter
    (fun (name, p) ->
      let tab = tab_of p in
      let schedule = Replay.sample_schedule ~seed:7 ~max_blocks:150 tab in
      check bool_t (name ^ ": schedule nonempty") true (schedule <> []);
      match Differential.run tab schedule with
      | Error e -> Alcotest.failf "%s: differential setup failed: %s" name e
      | Ok (Differential.Agree _) -> ()
      | Ok (Differential.Mismatch _ as o) ->
        Alcotest.failf "%s: %a" name Differential.pp_outcome o)
    all_examples

let test_differential_counterexamples () =
  (* the buggy examples' delay-bounded counterexamples: both layers must
     fail in the same atomic block, and the artifact's verdict must hold *)
  List.iter
    (fun (name, p) ->
      let tab, t = recorded_ce p in
      match Differential.check_trace tab t with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
      | Ok o -> Alcotest.failf "%s: expected agreed error: %a" name Differential.pp_outcome o)
    (List.filter (fun (n, _) -> Filename.check_suffix n "-buggy") all_examples)

let test_differential_binop_choice_order () =
  (* regression: the runtime must consume [*] choices left-to-right inside
     a binary operator, like the interpreter does (OCaml's right-to-left
     argument evaluation once reversed them). With choices
     [true; false; true], [assert (* || !*)] evaluates false || !true =
     false in both layers — the reversed order read true || !false = true
     and the layers diverged *)
  let open P_syntax.Builder in
  let m =
    machine ~ghost:true "M"
      [ state "S0" ~entry:(if_ nondet (assert_ (nondet || not_ nondet)) skip) ]
      ~steps:[ ("S0", "e0", "S0") ]
  in
  let companion = machine "R" [ state "Idle" ~entry:skip ] in
  let p =
    program ~events:[ event "e0" ] ~machines:[ m; companion ] "M"
  in
  let tab = tab_of p in
  let _config, main, _items = P_semantics.Step.initial_config tab in
  match Differential.run tab [ (main, [ true; false; true ]) ] with
  | Error e -> Alcotest.failf "setup failed: %s" e
  | Ok (Differential.Agree { verdict = Differential.Agree_error msg; _ }) ->
    check bool_t "assertion failure agreed" true (contains msg "assert")
  | Ok o -> Alcotest.failf "expected agreed assertion failure: %a" Differential.pp_outcome o

let test_differential_usb_stack () =
  let tab = tab_of (P_usb.Stack.program ()) in
  let schedule = Replay.sample_schedule ~seed:11 ~max_blocks:120 tab in
  match Differential.run tab schedule with
  | Error e -> Alcotest.failf "usb stack: %s" e
  | Ok (Differential.Agree _) -> ()
  | Ok (Differential.Mismatch _ as o) ->
    Alcotest.failf "usb stack: %a" Differential.pp_outcome o

(* ---------------- fault-schedule replay ---------------- *)

(* A fault-induced counterexample on a program that is clean under a
   well-behaved host: a duplicating adversary double-counts the
   leader-election announcement / the failover promotion ack. *)
let recorded_fault_ce p =
  let faults =
    P_semantics.Fault.with_seed 0 { P_semantics.Fault.none with dup = 300 }
  in
  let tab = tab_of p in
  match (Verifier.verify ~delay_bound:2 ~max_states:300_000 ~faults p).safety with
  | Some { verdict = Search.Error_found ce; _ } -> (
    match
      Replay.record_counterexample ~faults ~engine:"delay_bounded" tab ce
    with
    | Error e -> Alcotest.failf "recording failed: %s" e
    | Ok t -> (tab, t, faults))
  | _ -> Alcotest.fail "expected a fault-induced counterexample"

let fault_subjects () =
  [ ("leaderring", P_examples_lib.Leader_ring.program ());
    ("failoverchain", P_examples_lib.Failover_chain.program ()) ]

let test_fault_ce_replays () =
  List.iter
    (fun (name, p) ->
      let tab, t, faults = recorded_fault_ce p in
      check bool_t (name ^ ": spec in header") true
        (t.Trace_file.faults = Some (P_semantics.Fault.to_string faults));
      check bool_t (name ^ ": seed in header") true
        (t.Trace_file.fault_seed = Some faults.P_semantics.Fault.seed);
      (* the plan is re-installed from the header alone *)
      match (Replay.run tab t).outcome with
      | Replay.Reproduced { error; _ } ->
        check bool_t (name ^ ": recorded error") true (t.error = Some error)
      | o -> Alcotest.failf "%s: not reproduced: %a" name Replay.pp_outcome o)
    (fault_subjects ())

let test_fault_ce_survives_file_roundtrip () =
  let tab, t, _ = recorded_fault_ce (P_examples_lib.Leader_ring.program ()) in
  let path = Filename.temp_file "pcaml" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.write_file path t;
      match Trace_file.read_file path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok t' -> (
        check bool_t "faults preserved" true
          (t.Trace_file.faults = t'.Trace_file.faults);
        check bool_t "fault seed preserved" true
          (t.Trace_file.fault_seed = t'.Trace_file.fault_seed);
        match (Replay.run tab t').outcome with
        | Replay.Reproduced _ -> ()
        | o -> Alcotest.failf "roundtripped trace diverged: %a" Replay.pp_outcome o))

let test_fault_ce_differential () =
  (* both layers run the recorded schedule under the header's plan and
     must fail in the same atomic block *)
  List.iter
    (fun (name, p) ->
      let tab, t, _ = recorded_fault_ce p in
      match Differential.check_trace tab t with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
      | Ok o ->
        Alcotest.failf "%s: expected agreed error: %a" name Differential.pp_outcome o)
    (fault_subjects ())

let test_fault_ce_shrinks () =
  List.iter
    (fun (name, p) ->
      let tab, t, _ = recorded_fault_ce p in
      match Shrink.run tab t with
      | Error e -> Alcotest.failf "%s: shrink failed: %s" name e
      | Ok (shrunk, stats) -> (
        check bool_t (name ^ ": no growth") true
          (stats.shrunk_steps <= stats.original_steps);
        (* the minimized schedule still carries the plan (the triggering
           fault shrinks with it, never away) and still reproduces *)
        check bool_t (name ^ ": plan kept") true
          (shrunk.Trace_file.faults = t.Trace_file.faults
          && shrunk.Trace_file.fault_seed = t.Trace_file.fault_seed);
        match (Replay.run tab shrunk).outcome with
        | Replay.Reproduced { error; _ } ->
          check bool_t (name ^ ": same error") true (shrunk.error = Some error)
        | o -> Alcotest.failf "%s: shrunk trace diverged: %a" name Replay.pp_outcome o))
    (fault_subjects ())

let test_fault_header_must_parse () =
  (* an artifact with a corrupt fault spec is refused, not silently
     replayed fault-free *)
  let tab, t, _ = recorded_fault_ce (P_examples_lib.Leader_ring.program ()) in
  match (Replay.run tab { t with Trace_file.faults = Some "drop=2.5" }).outcome with
  | Replay.Diverged (Replay.Bad_header _) -> ()
  | o -> Alcotest.failf "bad spec not refused: %a" Replay.pp_outcome o

(* ---------------- seeded (sampled) verification ---------------- *)

let test_verifier_records_seed () =
  let p = P_examples_lib.German.program () in
  let r = Verifier.verify ~delay_bound:1 ~seed:5 p in
  check bool_t "seed recorded" true (r.seed = Some 5);
  let exhaustive = Verifier.verify ~delay_bound:1 p in
  check bool_t "no seed when exhaustive" true (exhaustive.seed = None);
  (* same seed, same sampled run *)
  let r' = Verifier.verify ~delay_bound:1 ~seed:5 p in
  match (r.safety, r'.safety) with
  | Some a, Some b ->
    check int_t "deterministic states" a.stats.states b.stats.states;
    check bool_t "deterministic verdict" true
      ((a.verdict = Search.No_error) = (b.verdict = Search.No_error))
  | _ -> Alcotest.fail "safety search missing"

(* ---------------- the checked-in fixture ---------------- *)

let fixture =
  (* cwd is test/ under [dune runtest] but the repo root under a direct
     [dune exec test/main.exe] *)
  let relative = "fixtures/elevator-buggy.counterexample.jsonl" in
  if Sys.file_exists relative then relative
  else Filename.concat "test" relative

let test_fixture_replays () =
  (* guards the on-disk format against accidental incompatible changes:
     this artifact was written by the version that introduced the format *)
  match Trace_file.read_file fixture with
  | Error e -> Alcotest.failf "fixture unreadable: %s" e
  | Ok t -> (
    check bool_t "fixture names its program" true
      (t.program = Some "example:elevator-buggy");
    let tab = tab_of (P_examples_lib.Elevator.buggy_program ()) in
    match (Replay.run tab t).outcome with
    | Replay.Reproduced _ -> ()
    | o -> Alcotest.failf "fixture does not replay: %a" Replay.pp_outcome o)

let suite =
  [ Alcotest.test_case "trace file roundtrip" `Quick test_trace_roundtrip_memory;
    Alcotest.test_case "trace file rejects garbage" `Quick test_trace_rejects_garbage;
    Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces_and_is_deterministic;
    Alcotest.test_case "replay checks digests" `Quick test_replay_checks_digests;
    Alcotest.test_case "replay unknown machine" `Quick test_replay_detects_missing_machine;
    Alcotest.test_case "shrink elevator >= 50%" `Quick test_shrink_elevator;
    Alcotest.test_case "shrink german >= 50%" `Quick test_shrink_german;
    Alcotest.test_case "shrink tokenring roundtrip" `Quick test_shrink_tokenring;
    Alcotest.test_case "shrink refuses clean" `Quick test_shrink_refuses_clean_trace;
    Alcotest.test_case "differential sampled" `Slow test_differential_sampled_schedules;
    Alcotest.test_case "differential counterexamples" `Quick test_differential_counterexamples;
    Alcotest.test_case "differential binop choice order" `Quick
      test_differential_binop_choice_order;
    Alcotest.test_case "differential usb stack" `Slow test_differential_usb_stack;
    Alcotest.test_case "fault ce replays" `Quick test_fault_ce_replays;
    Alcotest.test_case "fault ce file roundtrip" `Quick test_fault_ce_survives_file_roundtrip;
    Alcotest.test_case "fault ce differential" `Quick test_fault_ce_differential;
    Alcotest.test_case "fault ce shrinks" `Quick test_fault_ce_shrinks;
    Alcotest.test_case "fault header must parse" `Quick test_fault_header_must_parse;
    Alcotest.test_case "verifier records seed" `Quick test_verifier_records_seed;
    Alcotest.test_case "fixture replays" `Quick test_fixture_replays ]
