lib/runtime/rt_value.mli: Fmt P_compile
