(** The elevator of section 2 of the paper (Figures 1 and 2): a real
    [Elevator] machine closed with three ghost environment machines — a
    [User] that nondeterministically presses the open/close buttons, a
    [Door], and a [Timer] that may fire at any moment.

    The machine follows the paper's figure: [Init], [Closed], [Opening]
    (defers [CloseDoor], ignores [OpenDoor]), [Opened], [OkToClose],
    [Closing], [StoppingDoor], and the three-state stop-the-timer subroutine
    [StoppingTimer] / [WaitingForTimer] / [ReturnState] entered through call
    transitions from [Opened] and [OkToClose] and exited by raising
    [StopTimerReturned] (which pops back to the caller). *)

open P_syntax.Builder

let events =
  List.map event
    [ "unit";
      "StopTimerReturned";
      "OpenDoor";
      "CloseDoor";
      "DoorOpened";
      "DoorClosed";
      "DoorStopped";
      "ObjectDetected";
      "TimerFired";
      "TimerStopped";
      "SendCmdToOpen";
      "SendCmdToClose";
      "SendCmdToStop";
      "SendCmdToReset";
      "StartTimer";
      "StopTimer" ]

let elevator_machine =
  machine "Elevator"
    ~vars:
      [ var_decl ~ghost:true "TimerV" P_syntax.Ptype.Machine_id;
        var_decl ~ghost:true "DoorV" P_syntax.Ptype.Machine_id ]
    ~actions:[ action "Ignore" skip ]
    [ state "Init"
        ~entry:
          (seq
             [ assign "TimerV" null;
               new_ "TimerV" "Timer" [ ("client", this) ];
               new_ "DoorV" "Door" [ ("client", this) ];
               raise_ "unit" ]);
      state "Closed" ~defer:[ "CloseDoor" ] ~postpone:[ "CloseDoor" ]
        ~entry:(send (v "DoorV") "SendCmdToReset");
      state "Opening" ~defer:[ "CloseDoor" ] ~entry:(send (v "DoorV") "SendCmdToOpen");
      state "Opened" ~defer:[ "CloseDoor" ] ~postpone:[ "CloseDoor" ]
        ~entry:
          (seq [ send (v "DoorV") "SendCmdToReset"; send (v "TimerV") "StartTimer" ]);
      state "OkToClose" ~entry:(send (v "DoorV") "SendCmdToReset");
      (* the door may hang mid-close (its model answers nondeterministically),
         so a second CloseDoor queued here can legitimately starve: postpone,
         as for Closed *)
      state "Closing" ~defer:[ "CloseDoor" ] ~postpone:[ "CloseDoor" ]
        ~entry:(send (v "DoorV") "SendCmdToClose");
      state "StoppingDoor" ~defer:[ "CloseDoor" ] ~postpone:[ "CloseDoor" ]
        ~entry:(send (v "DoorV") "SendCmdToStop");
      (* the stop-the-timer subroutine *)
      state "StoppingTimer" ~defer:[ "OpenDoor"; "CloseDoor"; "ObjectDetected" ]
        ~postpone:[ "CloseDoor" ]
        ~entry:(seq [ send (v "TimerV") "StopTimer"; raise_ "unit" ]);
      state "WaitingForTimer" ~defer:[ "OpenDoor"; "CloseDoor"; "ObjectDetected" ]
        ~postpone:[ "CloseDoor" ]
        ~entry:skip;
      state "ReturnState" ~entry:(raise_ "StopTimerReturned") ]
    ~steps:
      [ ("Init", "unit", "Closed");
        ("Closed", "OpenDoor", "Opening");
        ("Opening", "DoorOpened", "Opened");
        ("Opened", "TimerFired", "OkToClose");
        ("Opened", "StopTimerReturned", "Opened");
        ("OkToClose", "StopTimerReturned", "Closing");
        ("OkToClose", "OpenDoor", "Opened");
        ("Closing", "DoorClosed", "Closed");
        ("Closing", "ObjectDetected", "Opening");
        ("Closing", "OpenDoor", "StoppingDoor");
        ("StoppingDoor", "DoorStopped", "Opening");
        ("StoppingDoor", "DoorClosed", "Closed");
        ("StoppingDoor", "ObjectDetected", "Opening");
        ("StoppingTimer", "unit", "WaitingForTimer");
        ("WaitingForTimer", "TimerFired", "ReturnState");
        ("WaitingForTimer", "TimerStopped", "ReturnState") ]
    ~calls:
      [ ("Opened", "OpenDoor", "StoppingTimer");
        ("OkToClose", "CloseDoor", "StoppingTimer") ]
    ~bindings:
      [ on ("Opening", "OpenDoor") ~do_:"Ignore";
        on ("StoppingDoor", "OpenDoor") ~do_:"Ignore";
        (* Stale notifications: commands and replies race, so late door and
           timer responses can arrive after a state change. Each Ignore
           below exists because the verifier flagged the unhandled event at
           some delay bound during development — the paper's "forced us to
           handle every event (or explicitly defer it) in every state",
           with nothing speculative left over: P_checker.Coverage confirmed
           each remaining pair fires within the d = 12 state space, and the
           pairs it reported as unfired were removed again. *)
        on ("Closed", "DoorStopped") ~do_:"Ignore";
        on ("Closed", "TimerStopped") ~do_:"Ignore";
        on ("Opening", "TimerStopped") ~do_:"Ignore";
        on ("Opening", "DoorStopped") ~do_:"Ignore";
        on ("Opening", "TimerFired") ~do_:"Ignore";
        on ("Opened", "TimerStopped") ~do_:"Ignore";
        on ("OkToClose", "TimerStopped") ~do_:"Ignore";
        on ("OkToClose", "TimerFired") ~do_:"Ignore";
        on ("Closed", "TimerFired") ~do_:"Ignore";
        on ("Closing", "TimerFired") ~do_:"Ignore";
        on ("Closing", "TimerStopped") ~do_:"Ignore";
        on ("StoppingDoor", "TimerFired") ~do_:"Ignore";
        on ("StoppingDoor", "TimerStopped") ~do_:"Ignore" ]

(** The ghost door: obeys open/close/stop commands and may
    nondeterministically detect an object while closing (Figure 2b). *)
let door_machine =
  machine "Door" ~ghost:true
    ~vars:[ var_decl "client" P_syntax.Ptype.Machine_id ]
    ~actions:[ action "Ignore" skip ]
    [ state "Init" ~entry:skip;
      state "OpeningDoor"
        ~entry:(seq [ send (v "client") "DoorOpened"; raise_ "unit" ]);
      (* closing is not instantaneous: the door may answer right away, or
         keep moving (no answer yet) — in which case a stop command takes
         effect and produces DoorStopped, or an open command re-opens *)
      state "ConsiderClosing"
        ~entry:
          (if_ nondet
             (seq
                [ if_ nondet
                    (send (v "client") "ObjectDetected")
                    (send (v "client") "DoorClosed");
                  raise_ "unit" ])
             skip);
      state "StoppingDoorNow"
        ~entry:(seq [ send (v "client") "DoorStopped"; raise_ "unit" ]) ]
    ~steps:
      [ ("Init", "SendCmdToOpen", "OpeningDoor");
        ("Init", "SendCmdToClose", "ConsiderClosing");
        ("Init", "SendCmdToStop", "StoppingDoorNow");
        ("OpeningDoor", "unit", "Init");
        ("ConsiderClosing", "unit", "Init");
        ("ConsiderClosing", "SendCmdToStop", "StoppingDoorNow");
        ("ConsiderClosing", "SendCmdToOpen", "OpeningDoor");
        ("StoppingDoorNow", "unit", "Init") ]
    ~bindings:
      [ on ("Init", "SendCmdToReset") ~do_:"Ignore";
        on ("OpeningDoor", "SendCmdToReset") ~do_:"Ignore";
        on ("ConsiderClosing", "SendCmdToReset") ~do_:"Ignore";
        on ("ConsiderClosing", "SendCmdToClose") ~do_:"Ignore";
        on ("StoppingDoorNow", "SendCmdToReset") ~do_:"Ignore" ]

(** The ghost timer: once started it may fire at any moment (the [*] in the
    entry of [TimerStarted], Figure 2c); a stop request is acknowledged with
    [TimerStopped], racing against the fire. *)
let timer_machine =
  machine "Timer" ~ghost:true
    ~vars:[ var_decl "client" P_syntax.Ptype.Machine_id ]
    [ state "Init" ~entry:skip;
      state "TimerStarted" ~defer:[ "StartTimer" ] ~postpone:[ "StartTimer" ]
        ~entry:(if_nondet (raise_ "unit"));
      state "FireTimer"
        ~entry:(seq [ send (v "client") "TimerFired"; raise_ "unit" ]);
      state "AckStop"
        ~entry:(seq [ send (v "client") "TimerStopped"; raise_ "unit" ]) ]
    ~steps:
      [ ("Init", "StartTimer", "TimerStarted");
        ("Init", "StopTimer", "AckStop");
        ("TimerStarted", "unit", "FireTimer");
        ("TimerStarted", "StopTimer", "AckStop");
        ("FireTimer", "unit", "Init");
        ("AckStop", "unit", "Init") ]

(** The ghost user: creates the elevator and forever presses buttons
    nondeterministically (Figure 2a). [presses <= 0] means unbounded. *)
let user_machine ~presses =
  let press_body =
    seq
      [ if_ nondet (send (v "elevator") "OpenDoor") (send (v "elevator") "CloseDoor");
        raise_ "unit" ]
  in
  if Stdlib.(presses <= 0) then
    machine "User" ~ghost:true
      ~vars:[ var_decl "elevator" P_syntax.Ptype.Machine_id ]
      [ state "Init" ~entry:(seq [ new_ "elevator" "Elevator" []; raise_ "unit" ]);
        state "Loop" ~entry:press_body ]
      ~steps:[ ("Init", "unit", "Loop"); ("Loop", "unit", "Loop") ]
  else
    machine "User" ~ghost:true
      ~vars:
        [ var_decl "elevator" P_syntax.Ptype.Machine_id;
          var_decl "left" P_syntax.Ptype.Int ]
      [ state "Init"
          ~entry:
            (seq [ new_ "elevator" "Elevator" []; assign "left" (int presses); raise_ "unit" ]);
        state "Loop"
          ~entry:
            (if_ (v "left" > int 0)
               (seq [ assign "left" (v "left" - int 1); press_body ])
               skip);
        state "Done" ~entry:skip ]
      ~steps:[ ("Init", "unit", "Loop"); ("Loop", "unit", "Loop") ]

(** The closed elevator program. [presses] bounds the ghost user's button
    presses (0 = unbounded, as in the paper). *)
let program ?(presses = 0) () =
  program ~events
    ~machines:[ user_machine ~presses; elevator_machine; door_machine; timer_machine ]
    "User"

(** A seeded bug for the bug-finding experiment (section 5, "Empirical
    results"): the [Opening] state forgets both to defer [CloseDoor] and to
    ignore a second [OpenDoor], so a user pressing a button while the door
    motor runs triggers an unhandled-event error. *)
let buggy_program ?(presses = 0) () =
  let p = program ~presses () in
  let machines =
    List.map
      (fun (m : P_syntax.Ast.machine) ->
        if P_syntax.Names.Machine.to_string m.machine_name = "Elevator" then
          { m with
            states =
              List.map
                (fun (st : P_syntax.Ast.state) ->
                  if P_syntax.Names.State.to_string st.state_name = "Opening" then
                    { st with deferred = [] }
                  else st)
                m.states;
            bindings =
              List.filter
                (fun (bd : P_syntax.Ast.binding) ->
                  P_syntax.Names.State.to_string bd.bd_state <> "Opening")
                m.bindings }
        else m)
      p.machines
  in
  { p with machines }
