(* Tests for the observability subsystem (P_obs): the JSON tree and parser,
   the sharded metrics registry, the Chrome trace sinks, the checker/runtime
   instrumentation, and the --stats-json report schema. *)

open P_checker
module Json = P_obs.Json
module Metrics = P_obs.Metrics
module Sink = P_obs.Sink
module Mclock = P_obs.Mclock
module Sem_trace = P_obs.Sem_trace

module Profile = P_obs.Profile
module Telemetry = P_obs.Telemetry
module Machine_info = P_obs.Machine_info

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* The multi-domain tests run at this width — the CI matrix exercises the
   suite at PCAML_TEST_DOMAINS 1 and 4 (same convention as
   test_quickcheck.ml). *)
let domains_under_test =
  match Option.bind (Sys.getenv_opt "PCAML_TEST_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 && n <= 128 -> n
  | Some _ | None -> 4

let tab_of p = P_static.Check.run_exn p

let with_temp_file f =
  let path = Filename.temp_file "p_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ---------------- JSON ---------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("null", Json.Null);
        ("t", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("tricky", Json.String "a\"b\\c\nd\te\x01f");
        ("unicode", Json.String "état → 機械");
        ("list", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
  in
  let reparsed = Json.of_string (Json.to_string doc) in
  check bool_t "compact round-trips" true (reparsed = doc);
  let reparsed = Json.of_string (Json.to_string_pretty doc) in
  check bool_t "pretty round-trips" true (reparsed = doc)

let test_json_parser_details () =
  (* \uXXXX escapes, surrogate pairs, numbers *)
  check bool_t "escape" true (Json.of_string {|"é"|} = Json.String "é");
  check bool_t "surrogate pair" true
    (Json.of_string {|"😀"|} = Json.String "😀");
  check bool_t "float" true (Json.of_string "1e3" = Json.Float 1000.0);
  check bool_t "int" true (Json.of_string "-17" = Json.Int (-17));
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  check bool_t "nan prints null" true
    (Json.to_string (Json.Float Float.nan) = "null");
  check bool_t "rejects trailing" true
    (match Json.of_string "{} x" with
    | exception Json.Parse_error _ -> true
    | _ -> false)

(* ---------------- metrics registry ---------------- *)

let test_metrics_semantics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  Metrics.incr c;
  Metrics.add c 9;
  check int_t "counter sums" 10 (Metrics.counter_value c);
  (* find-or-register: the same (name, labels) is the same metric *)
  Metrics.incr (Metrics.counter reg "test.counter");
  check int_t "interned" 11 (Metrics.counter_value c);
  check bool_t "negative add rejected" true
    (match Metrics.add c (-1) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* labels distinguish *)
  let c_a = Metrics.counter reg ~labels:[ ("engine", "a") ] "test.counter" in
  Metrics.incr c_a;
  check int_t "labelled is separate" 1 (Metrics.counter_value c_a);
  check int_t "counter_total sums label sets" 12
    (Metrics.counter_total reg "test.counter");
  (* gauges are high-water marks *)
  let g = Metrics.gauge reg "test.gauge" in
  Metrics.set g 5.0;
  Metrics.set_max g 3.0;
  check bool_t "set_max keeps max" true (Metrics.gauge_value g = 5.0);
  Metrics.set_max g 8.0;
  check bool_t "set_max raises" true (Metrics.gauge_value g = 8.0);
  (* histograms *)
  let h = Metrics.histogram reg ~buckets:[| 0.1; 1.0 |] "test.hist" in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.0 ];
  let s = Metrics.histogram_summary h in
  check int_t "hist count" 4 s.h_count;
  check bool_t "hist max" true (s.h_max = 5.0);
  check bool_t "hist buckets" true
    (List.map snd s.h_buckets = [ 1; 2; 1 ]);
  (* the dump is valid JSON and mentions every metric *)
  let dump = Json.of_string (Json.to_string (Metrics.dump reg)) in
  match Json.to_list dump with
  | Some items ->
    check int_t "dump has all metrics" 4 (List.length items)
  | None -> Alcotest.fail "dump is not a list"

(* The tentpole concurrency claim: per-domain shards merged on read equal
   the sequential totals. Run the parallel engine with a registry attached
   and compare the worker-side expansion counter with the sequential
   transition count. *)
let test_shard_merge_equals_sequential () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let seq = Delay_bounded.explore ~delay_bound:2 ~max_states:200_000 tab in
  let reg = Metrics.create () in
  let instr = Search.instr ~metrics:reg () in
  let par =
    Parallel.explore ~domains:3 ~spawn_threshold:1 ~delay_bound:2
      ~max_states:200_000 ~instr tab
  in
  check int_t "parallel agrees with sequential" seq.stats.states par.stats.states;
  (* the work-stealing engine expands each state exactly once at its minimal
     delay budget, so its transition count can be below the sequential one
     (which re-expands states first reached at a higher budget); the shard
     merge must reproduce the engine's own total exactly *)
  check int_t "expansions merged across shards = parallel transitions"
    par.stats.transitions
    (Metrics.counter_total reg "checker.expansions");
  check bool_t "parallel transitions <= sequential" true
    (par.stats.transitions <= seq.stats.transitions);
  check int_t "merged states counter = states" par.stats.states
    (Metrics.counter_total reg "checker.states");
  check int_t "merged transitions counter = transitions" par.stats.transitions
    (Metrics.counter_total reg "checker.transitions")

(* ---------------- instrumentation is invisible in results ------------- *)

let test_instrumented_results_identical () =
  let tab = tab_of (P_examples_lib.Elevator.buggy_program ()) in
  let reg = Metrics.create () in
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.chrome oc in
      let instr = Search.instr ~metrics:reg ~sink () in
      let plain = Delay_bounded.explore ~delay_bound:2 tab in
      let instrumented = Delay_bounded.explore ~delay_bound:2 ~instr tab in
      Sink.close sink;
      close_out oc;
      check int_t "states" plain.stats.states instrumented.stats.states;
      check int_t "transitions" plain.stats.transitions
        instrumented.stats.transitions;
      check bool_t "same verdict" true
        (match (plain.verdict, instrumented.verdict) with
        | Search.Error_found a, Search.Error_found b ->
          a.error = b.error && a.trace = b.trace && a.depth = b.depth
        | Search.No_error, Search.No_error -> true
        | _ -> false);
      (* the metrics agree with the stats *)
      check int_t "metrics states" plain.stats.states
        (Metrics.counter_total reg "checker.states"))

let test_progress_callback_fires () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let fired = ref 0 in
  let last_states = ref 0 in
  let instr =
    Search.instr
      ~progress:(fun s ->
        incr fired;
        last_states := s.Search.states)
      ~progress_every:100 ()
  in
  let r = Delay_bounded.explore ~delay_bound:2 ~instr tab in
  check bool_t "fired" true (!fired > 0);
  check bool_t "saw live stats" true
    (!last_states > 0 && !last_states <= r.stats.states)

(* ---------------- trace sinks ---------------- *)

(* A known counterexample round-trips through the Chrome JSON: the
   observable items recovered from the parsed file equal the observable
   items of the trace itself, in order. *)
let test_chrome_trace_roundtrip () =
  let tab = tab_of (P_examples_lib.Elevator.buggy_program ()) in
  let r = Delay_bounded.explore ~delay_bound:2 tab in
  let ce =
    match r.verdict with
    | Search.Error_found ce -> ce
    | Search.No_error -> Alcotest.fail "elevator-buggy must fail"
  in
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.chrome oc in
      Sem_trace.emit sink ce.trace;
      Sink.close sink;
      close_out oc;
      let doc = Json.of_string (read_file path) in
      (* well-formed Chrome trace: a traceEvents array of objects *)
      (match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
        check bool_t "has events" true (List.length evs > 0)
      | _ -> Alcotest.fail "no traceEvents array");
      let expected = Sem_trace.observable_keys ce.trace in
      let got = Sem_trace.observable_keys_of_json doc in
      check bool_t "at least one observable item" true (expected <> []);
      check bool_t "observable items round-trip in order" true (expected = got))

let test_jsonl_sink_lines_parse () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.jsonl oc in
      Sink.instant sink ~name:"a" ~ts_us:1.0 ();
      Sink.complete sink ~cat:"engine" ~name:"b" ~ts_us:0.0 ~dur_us:10.0
        ~args:[ ("k", Json.Int 1) ] ();
      Sink.counter sink ~name:"c" ~ts_us:2.0 ~values:[ ("v", 3.0) ] ();
      Sink.close sink;
      close_out oc;
      let lines =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      check int_t "three lines" 3 (List.length lines);
      List.iter
        (fun l ->
          match Json.of_string l with
          | Json.Obj fields ->
            check bool_t "has ph" true (List.mem_assoc "ph" fields)
          | _ -> Alcotest.fail "line is not an object")
        lines)

let test_null_sink_disabled () =
  check bool_t "null sink disabled" false (Sink.enabled Sink.null);
  (* with_span on the null sink runs the thunk and nothing else *)
  check int_t "with_span passthrough" 7
    (Sink.with_span Sink.null ~name:"x" (fun () -> 7))

(* ---------------- the --stats-json document ---------------- *)

let test_stats_json_states_field () =
  let report = Verifier.verify ~delay_bound:2 (P_examples_lib.Elevator.program ()) in
  let safety = Option.get report.safety in
  let doc = Json.of_string (Json.to_string (Obs_report.json_of_report report)) in
  check bool_t "states field matches Search.result" true
    (Json.path doc [ "safety"; "stats"; "states" ]
    = Some (Json.Int safety.stats.states));
  check bool_t "clean" true (Json.member "clean" doc = Some (Json.Bool true))

(* ---------------- runtime and host metrics ---------------- *)

let test_runtime_metrics () =
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile (P_examples_lib.Pingpong.program ~rounds:3 ())
  in
  let rt = P_runtime.Api.create driver in
  let reg = Metrics.create () in
  P_runtime.Api.set_metrics rt (Some reg);
  ignore (P_runtime.Api.create_machine rt "Pinger");
  (* 3 pings + 3 pongs + 1 done, as in the runtime trace test *)
  check int_t "runtime.sends" 7 (Metrics.counter_total reg "runtime.sends");
  check int_t "runtime.creates" 2 (Metrics.counter_total reg "runtime.creates");
  check bool_t "runtime.dequeues counted" true
    (Metrics.counter_total reg "runtime.dequeues" > 0)

let test_runtime_trace_sink () =
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile (P_examples_lib.Pingpong.program ~rounds:2 ())
  in
  let rt = P_runtime.Api.create driver in
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.chrome oc in
      P_runtime.Api.set_trace_hook rt (Some (P_runtime.Rt_trace.obs_hook sink));
      ignore (P_runtime.Api.create_machine rt "Pinger");
      Sink.close sink;
      close_out oc;
      let doc = Json.of_string (read_file path) in
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
        let sends =
          List.filter
            (fun e ->
              Json.path e [ "args"; "kind" ] = Some (Json.String "sent"))
            evs
        in
        check int_t "runtime sends in trace" 5 (List.length sends)
      | _ -> Alcotest.fail "no traceEvents array")

let test_host_callback_histogram () =
  let device = P_examples_lib.Switch_led.new_device () in
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile ~name:"switchled" (P_examples_lib.Switch_led.program ())
  in
  let rt = P_runtime.Api.create driver in
  P_runtime.Api.register_foreign rt "set_led" (fun _ctx args ->
      (match args with
      | [ P_runtime.Rt_value.Bool on ] -> P_examples_lib.Switch_led.set_led device on
      | _ -> invalid_arg "set_led");
      P_runtime.Rt_value.Null);
  let sk =
    P_host.Skeleton.attach rt ~main_machine:"SwitchLed" ~translate:(function
      | P_host.Os_events.Interrupt { line = "switch"; data } ->
        Some
          ((if data <> 0 then "SwitchOn" else "SwitchOff"), P_runtime.Rt_value.Null)
      | _ -> None)
  in
  let reg = Metrics.create () in
  let d = P_host.Skeleton.driver ~metrics:reg sk in
  d.P_host.Os_events.add_device ();
  for i = 1 to 10 do
    d.P_host.Os_events.callback
      (P_host.Os_events.Interrupt { line = "switch"; data = i land 1 })
  done;
  check int_t "host.callbacks" 10 (Metrics.counter_total reg "host.callbacks");
  let h = Metrics.histogram reg "host.callback_s" in
  let s = Metrics.histogram_summary h in
  check int_t "latency observations" 10 s.h_count;
  check bool_t "latencies positive" true (s.h_sum > 0.0)

(* ---------------- concurrent emission: histograms ---------------- *)

(* N domains hammer the same named histogram concurrently; each lands in
   its own registry shard, and the merged summary must account for every
   single observation — the shard-merge contract under real races, not
   just after a polite single-writer run. *)
let test_histogram_multi_domain_race () =
  let n = domains_under_test in
  let per_domain = 10_000 in
  let reg = Metrics.create () in
  let worker d () =
    let h = Metrics.histogram reg ~buckets:[| 0.5 |] "race.hist" in
    for i = 1 to per_domain do
      (* deterministic values: half below the 0.5 bound, half above *)
      Metrics.observe h (if i land 1 = 0 then 0.25 else 0.75)
    done;
    ignore d
  in
  let domains = List.init n (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let s = Metrics.histogram_summary (Metrics.histogram reg "race.hist") in
  check int_t "every observation counted" (n * per_domain) s.h_count;
  check bool_t "sum exact" true
    (Float.abs (s.h_sum -. (float_of_int (n * per_domain) *. 0.5)) < 1e-6);
  check bool_t "buckets split evenly" true
    (List.map snd s.h_buckets = [ n * per_domain / 2; n * per_domain / 2 ])

(* ---------------- concurrent emission: profiler spans ---------------- *)

let phase_count summary phase =
  match Json.path summary [ "phases"; Profile.phase_name phase; "count" ] with
  | Some (Json.Int n) -> n
  | _ -> -1

(* N worker domains record into their own profiler lanes concurrently.
   The per-phase aggregate counts are exact (unaffected by coalescing),
   so every recorded span must be accounted for, attributed to the right
   phase. *)
let test_profiler_multi_domain_race () =
  let n = domains_under_test in
  let per_worker = 2_000 in
  let p = Profile.create ~workers:n () in
  check bool_t "enabled" true (Profile.enabled p);
  let worker w () =
    Profile.register_worker p ~worker:w;
    for i = 1 to per_worker do
      let t0 = Profile.start p in
      let phase = if i land 1 = 0 then Profile.Expand else Profile.Steal in
      Profile.record p ~worker:w phase ~t0
    done
  in
  let domains = List.init n (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  let summary = Profile.summary_json p in
  check int_t "expand spans all counted" (n * per_worker / 2)
    (phase_count summary Profile.Expand);
  check int_t "steal spans all counted" (n * per_worker / 2)
    (phase_count summary Profile.Steal);
  check bool_t "stored spans exist" true (Profile.span_count p > 0);
  (* the flushed trace is valid JSONL: one thread_name lane per worker,
     profile spans with tid inside [0, n) *)
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.jsonl oc in
      Profile.flush p sink;
      Sink.close sink;
      close_out oc;
      let lines =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map Json.of_string
      in
      let lanes =
        List.filter
          (fun j -> Json.member "name" j = Some (Json.String "thread_name"))
          lines
      in
      check int_t "one lane per worker" n (List.length lanes);
      let spans =
        List.filter
          (fun j -> Json.member "cat" j = Some (Json.String "profile"))
          lines
      in
      check bool_t "spans flushed" true (spans <> []);
      check bool_t "span tids within worker range" true
        (List.for_all
           (fun j ->
             match Json.member "tid" j with
             | Some (Json.Int tid) -> tid >= 0 && tid < n
             | _ -> false)
           spans))

(* Coalescing merges back-to-back same-phase spans into one stored span
   while the aggregate count stays exact; the null profiler does nothing
   and reads as zero. *)
let test_profiler_coalescing_and_null () =
  let p = Profile.create ~coalesce_us:1e9 ~workers:1 () in
  Profile.register_worker p ~worker:0;
  for _ = 1 to 100 do
    let t0 = Profile.start p in
    Profile.record p ~worker:0 Profile.Expand ~t0
  done;
  check int_t "aggregate count exact" 100
    (phase_count (Profile.summary_json p) Profile.Expand);
  check int_t "coalesced to one stored span" 1 (Profile.span_count p);
  check bool_t "total time non-negative" true
    (Profile.total_us p Profile.Expand >= 0.0);
  (* null profiler: free and silent *)
  check bool_t "null disabled" false (Profile.enabled Profile.null);
  check bool_t "null start is 0" true (Profile.start Profile.null = 0.0);
  Profile.record Profile.null ~worker:0 Profile.Gc ~t0:0.0;
  Profile.poll_gc Profile.null;
  check bool_t "null totals zero" true
    (Profile.total_us Profile.null Profile.Expand = 0.0);
  check int_t "null span count" 0 (Profile.span_count Profile.null)

(* ---------------- telemetry ---------------- *)

let test_telemetry_sampling () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Sink.jsonl oc in
      let seen = ref [] in
      (* interval 0: every tick is due *)
      let t =
        Telemetry.create ~interval_us:0.0 ~sink
          ~on_sample:(fun s -> seen := s :: !seen)
          ()
      in
      check bool_t "enabled" true (Telemetry.enabled t);
      (* no probe installed yet: ticks are no-ops *)
      Telemetry.tick t;
      check int_t "no probe, no sample" 0 (Telemetry.samples_taken t);
      let states = ref 0 in
      Telemetry.set_probe t (fun () ->
          { Telemetry.states = !states;
            transitions = 2 * !states;
            frontier = 7.0;
            steals = 3;
            steal_attempts = 4;
            store_bytes = 8 * !states;
            shed = !states / 100 });
      states := 1_000;
      Telemetry.tick t;
      states := 3_000;
      Telemetry.force t;
      close_out oc;
      check int_t "two samples" 2 (Telemetry.samples_taken t);
      (match !seen with
      | [ s2; s1 ] ->
        check int_t "first sample states" 1_000 s1.Telemetry.states;
        check int_t "second sample states" 3_000 s2.Telemetry.states;
        check bool_t "rate positive between samples" true
          (s2.Telemetry.states_per_s > 0.0);
        check bool_t "steal success rate" true
          (Float.abs (s2.Telemetry.steal_success_rate -. 0.75) < 1e-9);
        check bool_t "frontier carried" true (s2.Telemetry.frontier = 7.0);
        check int_t "shed carried" 30 s2.Telemetry.shed;
        check bool_t "bytes per state positive" true
          (s2.Telemetry.bytes_per_state > 0.0)
      | _ -> Alcotest.fail "expected exactly two samples");
      (* the JSONL stream: one meta header carrying the machine block and
         the allocation-scope caveat, then one record per sample *)
      let lines =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map Json.of_string
      in
      (match lines with
      | meta :: samples ->
        check bool_t "meta header first" true
          (Json.member "type" meta = Some (Json.String "meta"));
        check bool_t "meta has machine block" true
          (Json.path meta [ "machine"; "cores" ] <> None);
        check bool_t "meta flags alloc scope" true
          (Json.member "alloc_scope" meta
          = Some (Json.String "sampling-domain"));
        check int_t "one line per sample" 2 (List.length samples);
        check bool_t "samples typed" true
          (List.for_all
             (fun j -> Json.member "type" j = Some (Json.String "sample"))
             samples)
      | [] -> Alcotest.fail "telemetry file empty");
      (* null telemetry: free *)
      check bool_t "null disabled" false (Telemetry.enabled Telemetry.null);
      Telemetry.tick Telemetry.null;
      Telemetry.force Telemetry.null;
      check int_t "null takes no samples" 0
        (Telemetry.samples_taken Telemetry.null))

(* ---------------- machine context ---------------- *)

let test_machine_info () =
  check bool_t "cores positive" true (Machine_info.cores () >= 1);
  let doc = Json.of_string (Json.to_string (Machine_info.json ())) in
  check bool_t "cores" true
    (Json.member "cores" doc = Some (Json.Int (Machine_info.cores ())));
  check bool_t "ocaml version" true
    (Json.member "ocaml_version" doc = Some (Json.String Sys.ocaml_version));
  check bool_t "word size" true
    (Json.member "word_size" doc = Some (Json.Int Sys.word_size));
  (* git_rev is a 40-hex commit inside a checkout, null elsewhere (the
     dune sandbox qualifies as elsewhere) *)
  (match Json.member "git_rev" doc with
  | Some Json.Null -> ()
  | Some (Json.String rev) ->
    check bool_t "rev is 40-hex" true
      (String.length rev = 40
      && String.for_all
           (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
           rev)
  | _ -> Alcotest.fail "git_rev missing");
  (* fields () splices to the same content as json () *)
  check bool_t "fields = json" true
    (Json.Obj (Machine_info.fields ()) = Machine_info.json ())

(* ---------------- end-to-end: instrumented parallel run -------------- *)

(* The full stack at once: the parallel engine under metrics + profiler +
   telemetry must produce the same verdict and counts as a bare run, while
   yielding expand spans and at least one telemetry sample. *)
let test_parallel_profiled_run () =
  let tab = tab_of (P_examples_lib.Elevator.program ()) in
  let plain =
    Parallel.explore ~domains:domains_under_test ~delay_bound:2
      ~max_states:200_000 tab
  in
  let profiler = Profile.create ~workers:domains_under_test () in
  let samples = ref 0 in
  let telemetry =
    Telemetry.create ~interval_us:0.0 ~on_sample:(fun _ -> incr samples) ()
  in
  let reg = Metrics.create () in
  let instr = Search.instr ~metrics:reg ~profile:profiler ~telemetry () in
  let r =
    Parallel.explore ~domains:domains_under_test ~delay_bound:2
      ~max_states:200_000 ~instr tab
  in
  (* a short run may finish between ticker firings; the engines' callers
     (pc verify) force a final sample, and so does this test *)
  Telemetry.force telemetry;
  check int_t "states identical under full instrumentation"
    plain.stats.states r.stats.states;
  check int_t "transitions identical" plain.stats.transitions
    r.stats.transitions;
  check bool_t "expand time attributed" true
    (Profile.total_us profiler Profile.Expand > 0.0);
  (* one Expand span per node popped; the work-stealing engine expands
     each state at most once, so the exact aggregate count is bounded by
     the state count *)
  let expands = phase_count (Profile.summary_json profiler) Profile.Expand in
  check bool_t "expand spans cover the run" true
    (expands > 0 && expands <= r.stats.states);
  check bool_t "telemetry sampled" true (!samples >= 1)

(* ---------------- the monotonic clock ---------------- *)

let test_mclock_monotonic () =
  let a = Mclock.now_ns () in
  let span = Mclock.start () in
  let b = Mclock.now_ns () in
  check bool_t "non-decreasing" true (Int64.compare b a >= 0);
  check bool_t "elapsed non-negative" true (Mclock.elapsed_s span >= 0.0);
  let x, dt = Mclock.timed (fun () -> 21 * 2) in
  check int_t "timed result" 42 x;
  check bool_t "timed duration" true (dt >= 0.0)

let suite =
  [ Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: parser details" `Quick test_json_parser_details;
    Alcotest.test_case "metrics: semantics" `Quick test_metrics_semantics;
    Alcotest.test_case "metrics: shard merge = sequential" `Quick
      test_shard_merge_equals_sequential;
    Alcotest.test_case "instr: results identical" `Quick
      test_instrumented_results_identical;
    Alcotest.test_case "instr: progress fires" `Quick test_progress_callback_fires;
    Alcotest.test_case "sink: chrome trace round-trips" `Quick
      test_chrome_trace_roundtrip;
    Alcotest.test_case "sink: jsonl lines parse" `Quick test_jsonl_sink_lines_parse;
    Alcotest.test_case "sink: null is free" `Quick test_null_sink_disabled;
    Alcotest.test_case "metrics: histogram multi-domain race" `Quick
      test_histogram_multi_domain_race;
    Alcotest.test_case "profile: multi-domain span race" `Quick
      test_profiler_multi_domain_race;
    Alcotest.test_case "profile: coalescing and null" `Quick
      test_profiler_coalescing_and_null;
    Alcotest.test_case "telemetry: sampling" `Quick test_telemetry_sampling;
    Alcotest.test_case "machine: context block" `Quick test_machine_info;
    Alcotest.test_case "e2e: instrumented parallel run" `Quick
      test_parallel_profiled_run;
    Alcotest.test_case "report: stats-json states field" `Quick
      test_stats_json_states_field;
    Alcotest.test_case "runtime: metrics counters" `Quick test_runtime_metrics;
    Alcotest.test_case "runtime: trace sink" `Quick test_runtime_trace_sink;
    Alcotest.test_case "host: callback histogram" `Quick
      test_host_callback_histogram;
    Alcotest.test_case "mclock: monotonic" `Quick test_mclock_monotonic ]
