lib/examples_lib/token_ring.ml: Fmt List P_syntax Stdlib
