(** Delay-bounded systematic testing with the paper's causal delaying
    scheduler (section 5).

    The scheduler keeps a stack of machine identifiers and runs the top
    machine for one atomic block; created machines and send receivers are
    pushed on top (so the default schedule follows the causal order of
    events), and each *delay* — moving the top to the bottom — costs one
    unit from the budget [delay_bound]. Ghost [*] choices are enumerated
    exhaustively; the bound only limits scheduling nondeterminism. The
    search is an {!Engine.run} breadth-first over (configuration, stack)
    scheduler states, so reported counterexamples are shortest in atomic
    blocks. *)

(** Stack discipline on sends and creations: [Causal] pushes the receiver on
    top (the paper's scheduler); [Round_robin] appends it at the bottom —
    the generic delaying scheduler of Emmi et al., kept as an ablation
    baseline. (Re-exported from {!Engine}.) *)
type discipline = Engine.discipline = Causal | Round_robin

(** {2 Scheduler-stack primitives}

    Aliases of the {!Engine} stack discipline, kept for the replay tools
    and the d=0 ≡ runtime equivalence argument. *)

val rotate_k : P_semantics.Mid.t list -> int -> P_semantics.Mid.t list
(** Apply the delay operation [k] times: each moves the top to the bottom. *)

val apply_outcome :
  ?discipline:discipline ->
  P_semantics.Mid.t list ->
  P_semantics.Step.outcome ->
  (P_semantics.Config.t * P_semantics.Mid.t list) option
(** Update the scheduler stack after one atomic block; [None] for failures. *)

val explore :
  ?max_states:int ->
  ?max_depth:int ->
  ?discipline:discipline ->
  ?dedup:bool ->
  ?fingerprint:Fingerprint.mode ->
  ?resolver:Engine.resolver ->
  ?store:State_store.kind ->
  ?store_capacity:int ->
  ?reduce:Reduce.t ->
  ?faults:P_semantics.Fault.plan ->
  ?instr:Search.instr ->
  delay_bound:int ->
  P_static.Symtab.t ->
  Search.result
(** [explore ~delay_bound tab] checks all schedules of at most [delay_bound]
    delays for the error configurations of Figure 6, returning either the
    first (shortest) counterexample with its replayed trace, or [No_error]
    with exploration statistics. [max_states] (default 1e6) and [max_depth]
    truncate the search, which is then flagged in the stats.
    [dedup:false] disables the [⊕] queue append (ablation only).
    [fingerprint] selects the state-key strategy (default
    [Incremental]; see {!Fingerprint.mode}) — the verdict and counts are
    identical in every mode. [store] picks the seen-set representation
    (default [Exact]; [Compact] and [Bitstate] trade ground truth for an
    off-heap arena — see {!State_store} — and report their omission bound
    in [stats.store]). [resolver] (default [Exhaustive]) switches
    ghost [*] resolution to sampling — one drawn outcome per block instead
    of all of them — for seeded reproducible runs ([pc verify --seed]).
    [reduce] (default {!Reduce.none}) enables sleep-set partial-order
    reduction and/or symmetry canonicalization — same verdict kind, never
    more states; slept moves are counted in [stats.pruned]. [instr]
    reports metrics, a lifecycle span, and progress heartbeats while the
    search runs; the result is identical with or without it. *)
