(** Machine instance contexts: the runtime twin of the paper's
    [StateMachineContext] (section 4). Each dynamic instance carries its
    variable values, call stack, input queue, a lock for synchronization
    with concurrent host threads, and a [void*]-style pointer to external
    memory reserved for foreign functions and interface code. *)

module Tables = P_compile.Tables

(** External memory attached to a machine for foreign code — the OCaml
    rendering of the C runtime's [void *]. Extend the variant with one
    constructor per driver, e.g.
    [type Context.ext += Led_state of { mutable on : bool }]. *)
type ext = ..

type handler = HNone | HDefer | HAction of int

(** What happened to an event offered to the runtime — the typed
    backpressure contract of the serving scheduler. [Accepted] means the
    receiver was idle and ran (run-to-completion drivers) or the event was
    taken for immediate processing; [Queued] means it sits in a mailbox
    behind other work; [Shed] means a bounded mailbox (or shard ingress)
    was full and the event was dropped. *)
type backpressure = Accepted | Queued | Shed

(** Outcome of a single mailbox [enqueue]. [Enq_duplicate] is the
    deduplicating [⊕] of the SEND rule absorbing an entry already
    present — not an error and not an overflow. *)
type enqueue_result = Enq_ok | Enq_duplicate | Enq_overflow

(** The input FIFO: a two-list functional queue (amortized O(1) enqueue)
    plus a membership table for the deduplicating [⊕] of the SEND rule.
    The historical representation was a plain list appended with [@],
    which made every enqueue O(n) and bursty workloads O(n²). The
    membership table counts occurrences rather than recording presence:
    [⊕] keeps the queue duplicate-free on its own, but a duplication
    fault ({!enqueue_no_dedup}) deliberately bypasses it, and a counting
    table keeps [⊕] correct after the first copy of a duplicated entry
    dequeues. *)
type inbox = {
  mutable ib_front : (int * Rt_value.t) list;  (** next to dequeue first *)
  mutable ib_back : (int * Rt_value.t) list;  (** reversed: newest first *)
  mutable ib_size : int;
  ib_members : (int * Rt_value.t, int) Hashtbl.t;  (** occurrence counts *)
}

type task =
  | Exec of Tables.code
  | Handle of int * Rt_value.t  (** dynamic raise(e, v) *)
  | Pop_return
  | Pop_frame
  | Enter of int

type frame = {
  mutable f_state : int;
  f_amap : handler array;  (** indexed by event id; inherited handler map *)
  f_cont : task list;  (** caller continuation for [call] statements *)
}

type t = {
  self : int;  (** instance handle *)
  ty : int;  (** machine type index in the driver *)
  table : Tables.machine_table;
  vars : Rt_value.t array;
  mutable msg : int option;
  mutable arg : Rt_value.t;
  mutable frames : frame list;  (** top first *)
  mutable agenda : task list;
  inbox : inbox;
  mutable alive : bool;
  mutable scheduled : bool;  (** being run (or queued to run) by some thread *)
  capacity : int;  (** mailbox bound; [max_int] = unbounded (semantics mode) *)
  lock : Mutex.t;
  mutable external_mem : ext option;
}

let create ?(capacity = max_int) ~self ~ty ~(table : Tables.machine_table) () : t =
  let n_events =
    match table.mt_states with
    | [||] -> 0
    | states -> Array.length states.(0).st_deferred
  in
  { self;
    ty;
    table;
    vars = Array.make (max 1 (Array.length table.mt_vars)) Rt_value.Null;
    msg = None;
    arg = Rt_value.Null;
    frames =
      [ { f_state = 0; f_amap = Array.make (max 1 n_events) HNone; f_cont = [] } ];
    agenda =
      (match table.mt_states with
      | [||] -> []
      | states -> [ Exec states.(0).st_entry ]);
    inbox = { ib_front = []; ib_back = []; ib_size = 0; ib_members = Hashtbl.create 16 };
    alive = true;
    scheduled = false;
    capacity = (if capacity <= 0 then invalid_arg "Context.create: capacity" else capacity);
    lock = Mutex.create ();
    external_mem = None }

let current_state t = match t.frames with [] -> None | f :: _ -> Some f.f_state

let state_table t i : Tables.state_table = t.table.mt_states.(i)

(** The effective deferred set in the current state: inherited deferrals
    plus the state's declared deferred set, minus events with a transition
    or action defined here. *)
let is_deferred t event =
  match t.frames with
  | [] -> false
  | f :: _ ->
    let st = state_table t f.f_state in
    let declared = st.st_deferred.(event) in
    let inherited = f.f_amap.(event) = HDefer in
    let overridden =
      st.st_steps.(event) <> None || st.st_calls.(event) <> None
      || st.st_actions.(event) <> None
    in
    (declared || inherited) && not overridden

(** Append with the deduplicating [⊕] of the SEND rule. Amortized O(1):
    membership is a hash lookup ([Rt_value] values are plain immutable
    variants, so generic hashing and equality agree with
    {!Rt_value.equal}), and the entry is consed onto the back list. *)
let member_count (ib : inbox) key =
  Option.value ~default:0 (Hashtbl.find_opt ib.ib_members key)

let member_incr (ib : inbox) key =
  Hashtbl.replace ib.ib_members key (member_count ib key + 1)

let member_decr (ib : inbox) key =
  match member_count ib key with
  | n when n <= 1 -> Hashtbl.remove ib.ib_members key
  | n -> Hashtbl.replace ib.ib_members key (n - 1)

let enqueue t event payload : enqueue_result =
  let ib = t.inbox in
  let key = (event, payload) in
  if member_count ib key > 0 then Enq_duplicate
  else if ib.ib_size >= t.capacity then Enq_overflow
  else begin
    member_incr ib key;
    ib.ib_back <- key :: ib.ib_back;
    ib.ib_size <- ib.ib_size + 1;
    Enq_ok
  end

(** Append bypassing the deduplicating [⊕] — the second copy of a
    duplication fault ({!P_semantics.Equeue.append_no_dedup}'s twin).
    Still respects the mailbox bound. *)
let enqueue_no_dedup t event payload : enqueue_result =
  let ib = t.inbox in
  let key = (event, payload) in
  if ib.ib_size >= t.capacity then Enq_overflow
  else begin
    member_incr ib key;
    ib.ib_back <- key :: ib.ib_back;
    ib.ib_size <- ib.ib_size + 1;
    Enq_ok
  end

(** Insert at the FRONT of the FIFO — a reordering fault
    ({!P_semantics.Equeue.push_front}'s twin). Membership-checked like
    [⊕]: an entry already queued is absorbed. *)
let enqueue_front t event payload : enqueue_result =
  let ib = t.inbox in
  let key = (event, payload) in
  if member_count ib key > 0 then Enq_duplicate
  else if ib.ib_size >= t.capacity then Enq_overflow
  else begin
    member_incr ib key;
    ib.ib_front <- key :: ib.ib_front;
    ib.ib_size <- ib.ib_size + 1;
    Enq_ok
  end

(* Move the back list to the front (once per element over the queue's
   lifetime), so dequeue scans a single in-order list. *)
let normalize (ib : inbox) =
  if ib.ib_back <> [] then begin
    ib.ib_front <- ib.ib_front @ List.rev ib.ib_back;
    ib.ib_back <- []
  end

(** Dequeue the first non-deferred entry, if any; deferred entries keep
    their queue positions (the DEQUEUE rule scans past them). *)
let dequeue t : (int * Rt_value.t) option =
  let ib = t.inbox in
  normalize ib;
  let rec scan skipped = function
    | [] -> None
    | ((e, _) as entry) :: rest ->
      if is_deferred t e then scan (entry :: skipped) rest
      else begin
        ib.ib_front <- List.rev_append skipped rest;
        ib.ib_size <- ib.ib_size - 1;
        member_decr ib entry;
        Some entry
      end
  in
  scan [] ib.ib_front

(** Dequeue the SECOND non-deferred entry — a delay fault
    ({!P_semantics.Equeue.dequeue_second}'s twin). Falls back to the
    first when only one entry is dequeuable. *)
let dequeue_second t : (int * Rt_value.t) option =
  let ib = t.inbox in
  normalize ib;
  let rec scan seen_first skipped = function
    | [] -> if seen_first then dequeue t else None
    | ((e, _) as entry) :: rest ->
      if is_deferred t e || not seen_first then
        scan (seen_first || not (is_deferred t e)) (entry :: skipped) rest
      else begin
        ib.ib_front <- List.rev_append skipped rest;
        ib.ib_size <- ib.ib_size - 1;
        member_decr ib entry;
        Some entry
      end
  in
  scan false [] ib.ib_front

let inbox_length t = t.inbox.ib_size

let inbox_list t = t.inbox.ib_front @ List.rev t.inbox.ib_back
(** Front of the FIFO first. *)

let has_dequeuable t =
  let not_deferred (e, _) = not (is_deferred t e) in
  List.exists not_deferred t.inbox.ib_front
  || List.exists not_deferred t.inbox.ib_back

let is_runnable t = t.alive && (t.agenda <> [] || has_dequeuable t)

(** Crash-restart: re-enter the initial state with the persistent store
    (variable values) intact — the runtime twin of
    {!P_semantics.Step.restart}. Frames, agenda, [msg]/[arg], and the
    whole inbox reset to a fresh machine's; the handle, type, capacity,
    and external memory survive. *)
let restart t : unit =
  let n_events =
    match t.table.mt_states with
    | [||] -> 0
    | states -> Array.length states.(0).st_deferred
  in
  t.msg <- None;
  t.arg <- Rt_value.Null;
  t.frames <-
    [ { f_state = 0; f_amap = Array.make (max 1 n_events) HNone; f_cont = [] } ];
  t.agenda <-
    (match t.table.mt_states with
    | [||] -> []
    | states -> [ Exec states.(0).st_entry ]);
  let ib = t.inbox in
  ib.ib_front <- [];
  ib.ib_back <- [];
  ib.ib_size <- 0;
  Hashtbl.reset ib.ib_members
