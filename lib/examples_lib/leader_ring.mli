(** Chang–Roberts leader election on a ring of [n] nodes: forward larger
    identities, swallow smaller, self-receipt wins. A monitor asserts the
    winner is the maximum identity and that at most one leader is ever
    announced — the property a duplicating adversarial host refutes. *)

val events : P_syntax.Ast.event_decl list
val node_machine : P_syntax.Ast.machine
val monitor_machine : P_syntax.Ast.machine
val starter : n:int -> P_syntax.Ast.machine

val program : ?n:int -> unit -> P_syntax.Ast.program
(** A ring of [n] (default 3; at least 2) nodes electing a leader; clean
    under fault-free exploration. *)

val buggy_program : ?n:int -> unit -> P_syntax.Ast.program
(** The forwarding comparison is inverted, so the minimum identity wins
    and the monitor's winner-is-maximum assertion fails. *)
