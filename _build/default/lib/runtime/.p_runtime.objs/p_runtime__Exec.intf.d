lib/runtime/exec.mli: Context Format Hashtbl Mutex P_compile Rt_trace Rt_value
