(** Counterexample minimization: delta debugging over recorded schedules.

    Raw counterexamples — especially from sampled runs — interleave the
    failing path with hundreds of irrelevant blocks: machines that ran but
    never influenced the error, ghost choices that picked the long way
    round. Shrinking removes them by brute validation: propose a smaller
    schedule, {!Replay} it, keep it iff the *same* error re-occurs.

    Three reducers run to fixpoint:
    - truncation — replay reproduces the error early, drop the tail;
    - ddmin (Zeller's delta debugging) over the step list, removing
      coarse chunks first and halving the granularity on failure, until
      the schedule is 1-minimal: no single step can be removed;
    - ghost-choice simplification — flip each [true] resolution to
      [false], greedily, so the surviving choices are the all-false
      baseline wherever the error does not depend on them.

    Every candidate is validated by full re-execution, so the output
    artifact is reproducible by construction; digests are recomputed by
    {!Replay.record} on the final schedule. *)

module Mid = P_semantics.Mid

type schedule = (Mid.t * bool list) list

type stats = {
  original_steps : int;
  shrunk_steps : int;
  original_trues : int;  (** ghost choices resolved [true] before/after *)
  shrunk_trues : int;
  candidates : int;  (** schedules proposed *)
  valid : int;  (** proposals that still reproduced the error *)
  rounds : int;  (** reducer passes until fixpoint *)
  elapsed_s : float;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d -> %d step(s), %d -> %d true choice(s), %d candidate(s) (%d valid), %d round(s), %.3fs"
    s.original_steps s.shrunk_steps s.original_trues s.shrunk_trues s.candidates
    s.valid s.rounds s.elapsed_s

let count_trues (sched : schedule) =
  List.fold_left
    (fun acc (_, choices) -> acc + List.length (List.filter Fun.id choices))
    0 sched

(* ------------------------------------------------------------------ *)
(* The shrink loop                                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  tab : P_static.Symtab.t;
  dedup : bool;
  faults : P_semantics.Fault.plan option;
      (** the plan the trace was recorded under; candidates are validated
          under the same plan. Removing steps shifts the fault index of
          everything after the cut, so most removals near the triggering
          fault desynchronise and fail to reproduce — they are discarded
          like any diverging candidate, and the surviving 1-minimal
          schedule still contains the fault(s) the error needs. *)
  expected : string;
  mutable c_candidates : int;
  mutable c_valid : int;
  m_candidates : P_obs.Metrics.counter option;
  m_valid : P_obs.Metrics.counter option;
  m_steps : P_obs.Metrics.gauge option;
}

(** Validate a candidate. [Some sched'] is the accepted (possibly further
    truncated — early reproduction) schedule. *)
let try_candidate (cx : ctx) (sched : schedule) : schedule option =
  cx.c_candidates <- cx.c_candidates + 1;
  Option.iter P_obs.Metrics.incr cx.m_candidates;
  match
    Replay.reproduces ~dedup:cx.dedup ?faults:cx.faults cx.tab
      ~expected_error:cx.expected sched
  with
  | None -> None
  | Some steps_used ->
    cx.c_valid <- cx.c_valid + 1;
    Option.iter P_obs.Metrics.incr cx.m_valid;
    let sched =
      if steps_used < List.length sched then List.filteri (fun i _ -> i < steps_used) sched
      else sched
    in
    Option.iter (fun g -> P_obs.Metrics.set g (float_of_int (List.length sched))) cx.m_steps;
    Some sched

(** Split [xs] into [n] contiguous chunks (as close to equal as possible,
    every chunk non-empty; requires [n <= length xs]). *)
let chunk_bounds len n =
  (* chunk i covers [start i, start (i+1)) with start i = i*len/n *)
  List.init n (fun i -> (i * len / n, (i + 1) * len / n))

let without xs (lo, hi) = List.filteri (fun i _ -> i < lo || i >= hi) xs

(** Zeller's ddmin over the schedule's step list: try removing each of [n]
    contiguous chunks; on success restart coarse on the smaller schedule,
    on total failure double the granularity, until chunks are single steps
    and none can be removed (1-minimality). *)
let ddmin (cx : ctx) (sched : schedule) : schedule =
  let rec loop sched n =
    let len = List.length sched in
    if len <= 1 then sched
    else
      let n = min n len in
      let rec try_chunks = function
        | [] -> None
        | bounds :: rest -> (
          match try_candidate cx (without sched bounds) with
          | Some smaller -> Some smaller
          | None -> try_chunks rest)
      in
      match try_chunks (chunk_bounds len n) with
      | Some smaller -> loop smaller (max (n - 1) 2)
      | None -> if n < len then loop sched (min (2 * n) len) else sched
  in
  (* start coarse: halves *)
  loop sched 2

(** Greedy ghost-choice simplification: flip each [true] to [false], one at
    a time, keeping flips that still reproduce. (Choice-list *lengths* are
    dictated by execution, so flipping — not shortening — is the only
    well-formed edit.) *)
let simplify_choices (cx : ctx) (sched : schedule) : schedule =
  let arr = Array.of_list sched in
  for si = 0 to Array.length arr - 1 do
    let mid, choices = arr.(si) in
    for ci = 0 to List.length choices - 1 do
      let current = snd arr.(si) in
      if List.nth current ci then begin
        let saved = arr.(si) in
        arr.(si) <- (mid, List.mapi (fun j c -> if j = ci then false else c) current);
        match try_candidate cx (Array.to_list arr) with
        | Some sched' when List.length sched' = Array.length arr -> ()
        | Some _ | None ->
          (* revert — including truncating acceptances: this pass stays
             length-stable, ddmin owns removals *)
          arr.(si) <- saved
      end
    done
  done;
  Array.to_list arr

let run ?(instr = Search.no_instr) (tab : P_static.Symtab.t) (t : Trace_file.t) :
    (Trace_file.t * stats, string) Stdlib.result =
  match (t.error, Trace_file.fault_plan t) with
  | None, _ -> Error "trace is clean: there is no error to preserve while shrinking"
  | Some _, Error reason -> Error reason
  | Some expected, Ok faults ->
    let started = P_obs.Mclock.start () in
    let t0_us = P_obs.Mclock.now_us () in
    let meter name =
      Option.map
        (fun reg -> P_obs.Metrics.counter reg ~labels:[ ("engine", "shrink") ] name)
        instr.Search.metrics
    in
    let cx =
      { tab;
        dedup = t.dedup;
        faults;
        expected;
        c_candidates = 0;
        c_valid = 0;
        m_candidates = meter "shrink.candidates";
        m_valid = meter "shrink.valid";
        m_steps =
          Option.map
            (fun reg ->
              P_obs.Metrics.gauge reg ~labels:[ ("engine", "shrink") ] "shrink.steps")
            instr.Search.metrics }
    in
    let sched0 = Replay.schedule_of_trace t in
    (* the original must reproduce before we trust any shrinking *)
    (match try_candidate cx sched0 with
    | None ->
      Error
        (Fmt.str "trace does not reproduce its recorded error (%s) — refusing to shrink"
           expected)
    | Some sched ->
      let rounds = ref 0 in
      let rec fixpoint sched =
        incr rounds;
        let sched' = simplify_choices cx (ddmin cx sched) in
        if List.length sched' < List.length sched || count_trues sched' < count_trues sched
        then fixpoint sched'
        else sched'
      in
      let final = fixpoint sched in
      let stats =
        { original_steps = List.length sched0;
          shrunk_steps = List.length final;
          original_trues = count_trues sched0;
          shrunk_trues = count_trues final;
          candidates = cx.c_candidates;
          valid = cx.c_valid;
          rounds = !rounds;
          elapsed_s = P_obs.Mclock.elapsed_s started }
      in
      if P_obs.Sink.enabled instr.Search.sink then
        P_obs.Sink.complete instr.Search.sink ~cat:"engine" ~name:"shrink.run"
          ~ts_us:t0_us
          ~dur_us:(P_obs.Mclock.now_us () -. t0_us)
          ~args:
            [ ("original_steps", P_obs.Json.Int stats.original_steps);
              ("shrunk_steps", P_obs.Json.Int stats.shrunk_steps);
              ("candidates", P_obs.Json.Int stats.candidates);
              ("valid", P_obs.Json.Int stats.valid);
              ("rounds", P_obs.Json.Int stats.rounds) ]
          ();
      match
        Replay.record ?program:t.program ?seed:t.seed ?faults ~dedup:t.dedup
          ~engine:t.engine tab final
      with
      | Error e -> Error (Fmt.str "re-recording the shrunk schedule failed: %s" e)
      | Ok shrunk -> (
        match shrunk.error with
        | Some e when String.equal e expected -> Ok (shrunk, stats)
        | _ ->
          Error "internal error: shrunk schedule no longer reproduces (recorder disagreed with replayer)"))
