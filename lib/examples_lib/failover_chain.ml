(** A primary-backup failover chain of [n] replicas — the control plane
    of chain replication, parameterized by size. A monitor promotes
    replica 0; a ghost network reports up to [n] losses; on each loss the
    monitor demotes-and-crashes the current primary, *waits for the
    demotion acknowledgement*, and only then promotes the next replica in
    the chain. When the chain is exhausted the monitor halts.

    Split-brain freedom is the counted assertion of [examples/p/failover.p]
    scaled to [n] nodes: promotion and demotion acknowledgements carry a
    wrapping sequence number (so the [⊕] queue never coalesces two acks
    in flight) and the monitor asserts the active count never exceeds one.

    As a fault-injection subject the family is fragile by design: the
    seqno'd ack counting assumes every ack is delivered exactly once, in
    order, by a replica that remembers sending it, and at delay bound 2
    *every* fault class — drop, dup, reorder, delay, crash-restart —
    ends in the same split-brain assertion (see the verdict table in
    EXPERIMENTS.md; duplication past [⊕] finds the shortest
    counterexample). The planted bug removes the ack wait (defect #4 in
    the failover.p changelog): promotion races the demotion and two
    actives overlap with no adversary at all. *)

open P_syntax.Builder

let events =
  [ event "Wire" ~payload:P_syntax.Ptype.Machine_id;
    event "Promote";
    event "Demote";
    event "Crash";
    event "AckActive" ~payload:P_syntax.Ptype.Int;
    event "AckStandby" ~payload:P_syntax.Ptype.Int;
    event "Loss";
    event "unit";
    event "halt" ]

(* A replica: standby until promoted, acks both directions with a
   wrapping seqno, and can be crashed by the monitor. [Boot] defers the
   control events so a reordering adversary can't race them ahead of the
   wiring message. *)
let replica_machine =
  machine "Replica"
    ~vars:
      [ var_decl "mon" P_syntax.Ptype.Machine_id;
        var_decl "seqno" P_syntax.Ptype.Int;
        var_decl "active" P_syntax.Ptype.Bool ]
    ~actions:[ action "Ignore" skip ]
    [ state "Boot" ~defer:[ "Promote"; "Demote"; "Crash" ];
      state "WireUp"
        ~entry:
          (seq
             [ assign "mon" arg;
               assign "seqno" (int 0);
               assign "active" fls;
               raise_ "unit" ]);
      state "Standby"
        ~entry:
          (when_
             (v "active" == tru)
             (seq
                [ assign "active" fls;
                  send (v "mon") "AckStandby" ~payload:(v "seqno");
                  assign "seqno" ((v "seqno" + int 1) % int 8) ]));
      state "Active"
        ~entry:
          (when_
             (v "active" == fls)
             (seq
                [ assign "active" tru;
                  send (v "mon") "AckActive" ~payload:(v "seqno");
                  assign "seqno" ((v "seqno" + int 1) % int 8) ]));
      state "Dead"
        ~defer:[ "Promote"; "Demote"; "Crash"; "Wire" ]
        ~postpone:[ "Promote"; "Demote"; "Crash"; "Wire" ] ]
    ~steps:
      [ ("Boot", "Wire", "WireUp");
        ("WireUp", "unit", "Standby");
        ("Standby", "Promote", "Active");
        ("Active", "Demote", "Standby");
        ("Standby", "Crash", "Dead");
        ("Active", "Crash", "Dead") ]
    ~bindings:
      [ on ("Standby", "Demote") ~do_:"Ignore";
        on ("Active", "Promote") ~do_:"Ignore";
        (* a duplicated wiring message is ignored, not a protocol error *)
        on ("Standby", "Wire") ~do_:"Ignore";
        on ("Active", "Wire") ~do_:"Ignore" ]

let rep_name i = Fmt.str "rp%d" i

(* One statement per replica: if (cur == i) send(rp_i, ev). The builder
   has no arrays, so current-primary dispatch is an if-chain. *)
let send_cur ~n ?payload ev =
  seq (List.init n (fun i -> when_ (v "cur" == int i) (send (v (rep_name i)) ev ?payload)))

(** The monitor for a chain of [n] replicas. [eager_promote] plants the
    split-brain bug: promote the successor inside [Failover] instead of
    waiting for the demotion acknowledgement. *)
let monitor ~n ~eager_promote =
  let vars =
    var_decl "cur" P_syntax.Ptype.Int
    :: var_decl "actives" P_syntax.Ptype.Int
    :: List.init n (fun i -> var_decl (rep_name i) P_syntax.Ptype.Machine_id)
  in
  let advance_and_promote =
    seq
      [ assign "cur" (v "cur" + int 1);
        if_ (v "cur" == int n) (raise_ "halt")
          (seq [ send_cur ~n "Promote"; raise_ "unit" ]) ]
  in
  let failover =
    if eager_promote then
      (* BUG: no ack wait — the successor's promotion races the old
         primary's demotion acknowledgement *)
      state "Failover" ~defer:[ "Loss" ]
        ~entry:
          (seq [ send_cur ~n "Demote"; send_cur ~n "Crash"; advance_and_promote ])
    else
      state "Failover" ~defer:[ "Loss" ]
        ~entry:(seq [ send_cur ~n "Demote"; send_cur ~n "Crash" ])
  in
  let steps =
    [ ("Init", "unit", "Watch"); ("Watch", "Loss", "Failover") ]
    @ (if eager_promote then
         [ ("Failover", "unit", "Watch"); ("Failover", "halt", "Halt") ]
       else
         [ ("Failover", "AckStandby", "DoPromote");
           ("DoPromote", "unit", "Watch");
           ("DoPromote", "halt", "Halt") ])
  in
  let states =
    [ state "Init"
        ~entry:
          (seq
             (List.init n (fun i -> new_ (rep_name i) "Replica" [])
             @ List.init n (fun i -> send (v (rep_name i)) "Wire" ~payload:this)
             @ [ assign "cur" (int 0);
                 assign "actives" (int 0);
                 send (v (rep_name 0)) "Promote";
                 raise_ "unit" ]));
      state "Watch" ~entry:skip;
      failover;
      state "Halt"
        ~defer:[ "Loss"; "AckActive"; "AckStandby" ]
        ~postpone:[ "Loss"; "AckActive"; "AckStandby" ] ]
    @
    if eager_promote then []
    else
      [ state "DoPromote" ~defer:[ "Loss" ]
          ~entry:
            (seq
               [ (* the ack that brought us here was consumed by the step,
                    so the decrement happens on entry *)
                 assign "actives" (v "actives" - int 1);
                 assert_ (v "actives" >= int 0);
                 advance_and_promote ]) ]
  in
  machine "Monitor" ~vars ~steps
    ~actions:
      [ action "CountActive"
          (seq
             [ assign "actives" (v "actives" + int 1);
               assert_ (v "actives" <= int 1) ]);
        action "CountStandby"
          (seq
             [ assign "actives" (v "actives" - int 1);
               assert_ (v "actives" >= int 0) ]) ]
    ~bindings:
      [ on ("Watch", "AckActive") ~do_:"CountActive";
        on ("Watch", "AckStandby") ~do_:"CountStandby";
        on ("Failover", "AckActive") ~do_:"CountActive" ]
    states

(** The ghost network: reports up to [n] losses (one per possible
    failover plus one to exhaust the chain), nondeterministically, always
    sending before looping. *)
let net ~n =
  machine "Net" ~ghost:true
    ~vars:
      [ var_decl ~ghost:true "mon" P_syntax.Ptype.Machine_id;
        var_decl ~ghost:true "losses" P_syntax.Ptype.Int ]
    [ state "Start"
        ~entry:
          (seq [ new_ "mon" "Monitor" []; assign "losses" (int 0); raise_ "unit" ]);
      state "Run"
        ~entry:
          (when_
             (v "losses" < int n)
             (if_nondet
                (seq
                   [ send (v "mon") "Loss";
                     assign "losses" (v "losses" + int 1);
                     raise_ "unit" ]))) ]
    ~steps:[ ("Start", "unit", "Run"); ("Run", "unit", "Run") ]

let make ~n ~eager_promote =
  if Stdlib.( < ) n 2 then
    invalid_arg "Failover_chain.program: n must be at least 2";
  program ~events
    ~machines:[ net ~n; monitor ~n ~eager_promote; replica_machine ]
    "Net"

(** Closed failover chain over [n] (default 3; at least 2) replicas;
    clean under fault-free exploration at small delay bounds. *)
let program ?(n = 3) () = make ~n ~eager_promote:false

(** The split-brain bug: the monitor promotes the successor without
    waiting for the old primary's demotion acknowledgement, so two
    actives can overlap and the counted assertion fails. *)
let buggy_program ?(n = 3) () = make ~n ~eager_promote:true
