lib/checker/search.mli: Fmt P_semantics P_static
