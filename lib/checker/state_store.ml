(** The pluggable seen-set of the exploration engines.

    Every systematic engine asks one question millions of times: "was this
    state seen before, and at what minimal budget?" This module answers it
    behind one [claim] call with three interchangeable representations:

    - {b Exact} — the ground truth: a hashtable keyed on the full 16-byte
      MD5 digest string, mapping to [(dense state index, minimal budget
      spent)]. Under a multi-worker engine it splits into 2^6
      mutex-guarded shards keyed on the digest's first byte (the blocked
      acquisition is profiled as the [Shard_lock] phase). Collision
      probability is MD5's (~n²/2¹²⁹): zero for any feasible run.

    - {b Compact} — hash compaction: an open-addressing table over 63-bit
      integer fingerprints in an {e off-heap} [Bigarray] arena. One slot
      is one 64-bit word packing [(47-bit fingerprint tag, 15-bit
      saturating minimal spent)]; claims are lock-free CAS on the slot
      word (C11 atomics via {!store_stubs.c} — the arena never moves, so
      raw atomics on it are sound). Zero per-state heap allocation, zero
      locks, zero GC pressure: the whole table is invisible to the OCaml
      GC. The price is a tag-collision probability of about
      n²/2⁴⁸ expected merged pairs (reported as [omission_bound]) — ~0.004
      at a million states, which is why the differential tests can demand
      byte-identical triples vs Exact and pass.

    - {b Bitstate} — Holzmann's supertrace: a double-hashed Bloom filter
      over the same arena ([k = 3] probes per state). Smallest possible
      footprint and an {e explicit} omission bound: every "seen" answer
      had probability ≤ (occupancy)^k of being a false positive, so the
      summary reports [dups × p] as the expected number of wrongly-merged
      states. A bitstate run can therefore miss states (and with them
      errors) — flagged, never silent — but a found error is always real:
      the store only ever answers membership, it cannot un-find a failing
      edge. Bitstate keeps no spent values, so the min-spent re-expansion
      rule degrades to "first visit wins" (more omission, also flagged by
      the same bound).

    The [claim] contract (all representations):
    - [New]: the caller now owns this state — exactly one claimant per
      state per run, even under concurrent claims (CAS-arbitrated).
    - [Dup sidx]: seen before at a budget ≤ [spent]; [sidx] is the dense
      state index recorded at first claim, or [-1] if this representation
      does not keep one (compact without [need_sidx], bitstate).
    - [Reexpand sidx]: seen before but only at a strictly larger budget;
      the record was lowered to [spent] and the caller should re-expand.
    - [Dropped]: the fixed-capacity arena is full; the caller must mark
      the run truncated (exactly like exhausting [max_states]).

    Parallel bitstate claims are {e not} linearizable per state (two
    workers racing on the same state across k bits can both see [New]);
    the engines therefore only drive Bitstate from one worker. Exact and
    Compact are single-winner under any number of workers. *)

type kind = Exact | Compact | Bitstate

let kind_to_string = function
  | Exact -> "exact"
  | Compact -> "compact"
  | Bitstate -> "bitstate"

let kind_of_string = function
  | "exact" -> Ok Exact
  | "compact" -> Ok Compact
  | "bitstate" -> Ok Bitstate
  | s -> Error (Printf.sprintf "unknown state store %S (exact|compact|bitstate)" s)

type claim = New | Dup of int | Reexpand of int | Dropped

(* ------------------------------------------------------------------ *)
(* The off-heap arena and its atomic primitives                        *)
(* ------------------------------------------------------------------ *)

type arena = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external arena_get : arena -> int -> int = "pcaml_store_get" [@@noalloc]
external arena_set : arena -> int -> int -> unit = "pcaml_store_set" [@@noalloc]

external arena_cas : arena -> int -> int -> int -> bool = "pcaml_store_cas"
  [@@noalloc]

external arena_fetch_or : arena -> int -> int -> int = "pcaml_store_fetch_or"
  [@@noalloc]

let make_arena words =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout words in
  Bigarray.Array1.fill a 0L;
  a

(* ------------------------------------------------------------------ *)
(* Exact                                                               *)
(* ------------------------------------------------------------------ *)

type shard = { sh_lock : Mutex.t; sh_tbl : (string, int * int) Hashtbl.t }

let shard_bits = 6
let shard_count = 1 lsl shard_bits

type exact = {
  e_shards : shard array;  (* length 1 (single worker, no locking) or 2^6 *)
  e_profile : P_obs.Profile.t;
  e_contention : int array;  (* per worker: blocked shard acquisitions *)
}

let exact_claim (e : exact) ~worker ~digest ~spent ~new_sidx : claim =
  let locked = Array.length e.e_shards > 1 in
  let sh =
    if locked then
      e.e_shards.(Char.code (String.unsafe_get digest 0) land (shard_count - 1))
    else e.e_shards.(0)
  in
  if locked && not (Mutex.try_lock sh.sh_lock) then begin
    e.e_contention.(worker) <- e.e_contention.(worker) + 1;
    (* only the *blocked* acquisition is profiled: the uncontended try-lock
       above is the hot path and stays span-free *)
    let pt0 = P_obs.Profile.start e.e_profile in
    Mutex.lock sh.sh_lock;
    P_obs.Profile.record e.e_profile ~worker P_obs.Profile.Shard_lock ~t0:pt0
  end;
  let decision =
    match Hashtbl.find_opt sh.sh_tbl digest with
    | None ->
      Hashtbl.replace sh.sh_tbl digest (new_sidx, spent);
      New
    | Some (sidx, best) when best <= spent -> Dup sidx
    | Some (sidx, _) ->
      (* reached again with strictly smaller budget spent: the spare budget
         can reach new successors, so lower the record and re-expand *)
      Hashtbl.replace sh.sh_tbl digest (sidx, spent);
      Reexpand sidx
  in
  if locked then Mutex.unlock sh.sh_lock;
  decision

(* Footprint estimate, documented in DESIGN.md ("State storage"): per
   entry one bucket cons (4 words), the 16-byte digest string (4 words)
   and the (sidx, spent) tuple (3 words), plus the live bucket array. *)
let exact_summary_parts (e : exact) =
  Array.fold_left
    (fun (entries, buckets) sh ->
      let st = Hashtbl.stats sh.sh_tbl in
      (entries + st.Hashtbl.num_bindings, buckets + st.Hashtbl.num_buckets))
    (0, 0) e.e_shards

(* ------------------------------------------------------------------ *)
(* Compact                                                             *)
(* ------------------------------------------------------------------ *)

let spent_bits = 15
let spent_mask = (1 lsl spent_bits) - 1  (* 32767 = "spent >= 32767" *)
let tag_mask = (1 lsl 47) - 1

(* The spent field saturates at [spent_mask]; engines refuse to pair the
   compact store with a budget that could reach it (see Engine). *)
let max_exact_spent = spent_mask - 1

type compact = {
  c_slots : arena;
  c_mask : int;  (* capacity - 1; capacity is a power of two *)
  c_probe_limit : int;
  c_sidx : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t option;
      (* dense state indices for observer support; single-worker engines
         only — the parallel driver neither needs nor maintains them *)
  c_new : int array;  (* per worker: slots claimed *)
  c_retries : int array;  (* per worker: CAS retries (contention) *)
  mutable c_dropped : bool;
}

let tag_of fp =
  let tg = (fp lsr 16) land tag_mask in
  if tg = 0 then 1 else tg

let compact_sidx_at c i =
  match c.c_sidx with
  | None -> -1
  | Some a -> Int32.to_int (Bigarray.Array1.unsafe_get a i)

let compact_claim (c : compact) ~worker ~fp ~spent ~new_sidx : claim =
  let sp = if spent >= spent_mask then spent_mask else spent in
  let tag = tag_of fp in
  let word = (tag lsl spent_bits) lor sp in
  let rec probe i dist =
    if dist > c.c_probe_limit then begin
      c.c_dropped <- true;
      Dropped
    end
    else
      let w = arena_get c.c_slots i in
      if w = 0 then
        if arena_cas c.c_slots i 0 word then begin
          c.c_new.(worker) <- c.c_new.(worker) + 1;
          (match c.c_sidx with
          | None -> ()
          | Some a -> Bigarray.Array1.unsafe_set a i (Int32.of_int new_sidx));
          New
        end
        else begin
          (* another worker just claimed this slot: re-read it — it may
             even be our own state *)
          c.c_retries.(worker) <- c.c_retries.(worker) + 1;
          probe i dist
        end
      else if w lsr spent_bits = tag then begin
        let best = w land spent_mask in
        if best <= sp then Dup (compact_sidx_at c i)
        else if arena_cas c.c_slots i w ((tag lsl spent_bits) lor sp) then
          Reexpand (compact_sidx_at c i)
        else begin
          c.c_retries.(worker) <- c.c_retries.(worker) + 1;
          probe i dist
        end
      end
      else probe ((i + 1) land c.c_mask) (dist + 1)
  in
  probe (fp land c.c_mask) 0

(* ------------------------------------------------------------------ *)
(* Bitstate                                                            *)
(* ------------------------------------------------------------------ *)

(* 32 usable bits per 64-bit arena word: bit masks must stay immediate
   OCaml ints, and [1 lsl 63] is not one. The factor-of-two padding is
   reported honestly in [bytes]. *)
let bits_per_word_shift = 5

let bitstate_hashes = 3

type bitstate = {
  b_bits : arena;
  b_mask : int;  (* bit-count - 1; bit count is a power of two *)
  b_set : int array;  (* per worker: bits newly set *)
  b_new : int array;  (* per worker: states claimed *)
  b_dups : int array;  (* per worker: "seen" answers (each a possible FP) *)
}

(* splitmix-style avalanche for the second, independent probe stride *)
let remix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x3f58476d1ce4e5b9 land max_int in
  let h = h lxor (h lsr 27) in
  let h = h * 0x14d049bb133111eb land max_int in
  h lxor (h lsr 31)

let bitstate_claim (b : bitstate) ~worker ~fp : claim =
  let h2 = remix fp lor 1 in
  let all_set = ref true in
  for j = 0 to bitstate_hashes - 1 do
    let pos = (fp + (j * h2)) land b.b_mask in
    let w = arena_get b.b_bits (pos lsr bits_per_word_shift) in
    if w land (1 lsl (pos land 31)) = 0 then all_set := false
  done;
  if !all_set then begin
    b.b_dups.(worker) <- b.b_dups.(worker) + 1;
    Dup (-1)
  end
  else begin
    for j = 0 to bitstate_hashes - 1 do
      let pos = (fp + (j * h2)) land b.b_mask in
      let mask = 1 lsl (pos land 31) in
      let old = arena_fetch_or b.b_bits (pos lsr bits_per_word_shift) mask in
      if old land mask = 0 then b.b_set.(worker) <- b.b_set.(worker) + 1
    done;
    b.b_new.(worker) <- b.b_new.(worker) + 1;
    New
  end

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type repr = R_exact of exact | R_compact of compact | R_bitstate of bitstate

type t = { kind : kind; repr : repr; capacity : int }

let kind_of t = t.kind
let kind_name t = kind_to_string t.kind

(** Exact keys on the digest string; the arena stores key on the integer
    fingerprint alone and never touch the string. *)
let needs_string t = t.kind = Exact

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(** Slot count (Compact) or bit count (Bitstate) sized from the state
    budget: 1.5 slots per possible state (≤ 67% load at a full run), 64
    bits per state (k=3 false-positive rate ≈ 1e-4). Both clamp to a
    256 MiB arena so an uncapped run cannot demand unbounded memory —
    past the clamp the store answers [Dropped] and the run reports
    truncation, exactly like exhausting [max_states]. *)
let default_capacity ~kind ~max_states =
  match kind with
  | Exact -> 0
  | Compact ->
    if max_states >= 1 lsl 24 then 1 lsl 25
    else pow2_at_least (max 4096 (max_states + (max_states lsr 1) + 64)) 4096
  | Bitstate ->
    if max_states >= 1 lsl 25 then 1 lsl 31
    else pow2_at_least (max 65536 (64 * max_states)) 65536

let create ?capacity ?(need_sidx = false) ?(profile = P_obs.Profile.null)
    ~kind ~workers ~max_states () : t =
  let workers = max 1 workers in
  let capacity =
    match capacity with
    | Some c -> pow2_at_least (max 1024 c) 1024
    | None -> default_capacity ~kind ~max_states
  in
  match kind with
  | Exact ->
    let n = if workers > 1 then shard_count else 1 in
    let shards =
      Array.init n (fun _ ->
          { sh_lock = Mutex.create ();
            sh_tbl = Hashtbl.create (if n = 1 then 4096 else 512) })
    in
    { kind;
      repr = R_exact { e_shards = shards; e_profile = profile; e_contention = Array.make workers 0 };
      capacity = 0 }
  | Compact ->
    if need_sidx && workers > 1 then
      invalid_arg "State_store.create: compact sidx tracking is single-worker";
    let slots = make_arena capacity in
    let sidx =
      if need_sidx then begin
        let a =
          Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout capacity
        in
        Bigarray.Array1.fill a 0l;
        Some a
      end
      else None
    in
    { kind;
      repr =
        R_compact
          { c_slots = slots;
            c_mask = capacity - 1;
            c_probe_limit = min capacity 65536;
            c_sidx = sidx;
            c_new = Array.make workers 0;
            c_retries = Array.make workers 0;
            c_dropped = false };
      capacity }
  | Bitstate ->
    if need_sidx then
      invalid_arg "State_store.create: the bitstate store keeps no state indices";
    let words = capacity lsr bits_per_word_shift in
    { kind;
      repr =
        R_bitstate
          { b_bits = make_arena words;
            b_mask = capacity - 1;
            b_set = Array.make workers 0;
            b_new = Array.make workers 0;
            b_dups = Array.make workers 0 };
      capacity }

(** Claim [digest]/[fp] at budget [spent] for [worker]. [new_sidx] is the
    dense index this state receives if the claim answers [New]; only
    sidx-tracking representations record it. Exact reads [digest] and
    ignores [fp]; the arena stores read [fp] and ignore [digest]. *)
let claim t ~worker ~digest ~fp ~spent ~new_sidx : claim =
  match t.repr with
  | R_exact e -> exact_claim e ~worker ~digest ~spent ~new_sidx
  | R_compact c -> compact_claim c ~worker ~fp ~spent ~new_sidx
  | R_bitstate b -> bitstate_claim b ~worker ~fp

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_kind : string;
  s_capacity : int;  (** slots (compact), bits (bitstate), buckets (exact) *)
  s_entries : int;  (** states recorded (bitstate: bits set) *)
  s_bytes : int;  (** measured (arena) or estimated (exact) footprint *)
  s_occupancy : float;  (** entries / capacity *)
  s_omission_bound : float;
      (** expected states wrongly merged by hashing: 0 for exact, the
          n²/2⁴⁸ tag birthday bound for compact, dups × (occupancy)^k for
          bitstate *)
  s_lossy_dups : int;
      (** bitstate only: "seen" answers, {e every one} of which may hide a
          state the exact store would have expanded or re-expanded —
          bitstate keeps no budget, so its first-visit-wins rule loses the
          min-spent re-expansions on top of the Bloom false positives.
          Nonzero means the run is approximate regardless of how small
          [s_omission_bound] is; [0] means the bitstate run provably
          explored exactly what exact would (no merge ever answered). *)
  s_contention : int;  (** exact: blocked shard-lock acquisitions *)
  s_cas_retries : int;  (** compact: lost CAS races *)
  s_dropped : bool;  (** the arena filled up; the run is truncated *)
}

let sum = Array.fold_left ( + ) 0

let summary t : summary =
  match t.repr with
  | R_exact e ->
    let entries, buckets = exact_summary_parts e in
    { s_kind = kind_to_string t.kind;
      s_capacity = buckets;
      s_entries = entries;
      s_bytes = ((entries * 11) + buckets) * (Sys.word_size / 8);
      s_occupancy =
        (if buckets = 0 then 0.0 else float_of_int entries /. float_of_int buckets);
      s_omission_bound = 0.0;
      s_lossy_dups = 0;
      s_contention = sum e.e_contention;
      s_cas_retries = 0;
      s_dropped = false }
  | R_compact c ->
    let entries = sum c.c_new in
    let n = float_of_int entries in
    { s_kind = kind_to_string t.kind;
      s_capacity = t.capacity;
      s_entries = entries;
      s_bytes =
        (t.capacity * 8)
        + (match c.c_sidx with None -> 0 | Some _ -> t.capacity * 4);
      s_occupancy = n /. float_of_int t.capacity;
      s_omission_bound = n *. n /. 2.8e14 (* n²/2⁴⁸ tag birthday bound *);
      s_lossy_dups = 0;
      s_contention = 0;
      s_cas_retries = sum c.c_retries;
      s_dropped = c.c_dropped }
  | R_bitstate b ->
    let set = sum b.b_set in
    let occupancy = float_of_int set /. float_of_int t.capacity in
    let p =
      (* probability a fresh state answers "seen": all k probes land on
         set bits, at final occupancy (an upper bound over the run) *)
      occupancy ** float_of_int bitstate_hashes
    in
    { s_kind = kind_to_string t.kind;
      s_capacity = t.capacity;
      s_entries = sum b.b_new;
      s_bytes = (t.capacity lsr bits_per_word_shift) * 8;
      s_occupancy = occupancy;
      s_omission_bound = float_of_int (sum b.b_dups) *. p;
      s_lossy_dups = sum b.b_dups;
      s_contention = 0;
      s_cas_retries = 0;
      s_dropped = false }

(** Live footprint in bytes, cheap enough for a telemetry probe: the
    exact store is estimated from [Hashtbl.length] alone (buckets ≈
    entries at the stdlib's resize load), O(1) per sample; [summary]
    reports the measured bucket count at end of run. *)
let live_bytes t =
  match t.repr with
  | R_exact e ->
    let entries =
      Array.fold_left (fun n sh -> n + Hashtbl.length sh.sh_tbl) 0 e.e_shards
    in
    entries * 12 * (Sys.word_size / 8)
  | R_compact c ->
    (t.capacity * 8) + (match c.c_sidx with None -> 0 | Some _ -> t.capacity * 4)
  | R_bitstate _ -> (t.capacity lsr bits_per_word_shift) * 8

let json_of_summary (s : summary) : P_obs.Json.t =
  P_obs.Json.Obj
    [ ("kind", P_obs.Json.String s.s_kind);
      ("capacity", P_obs.Json.Int s.s_capacity);
      ("entries", P_obs.Json.Int s.s_entries);
      ("bytes", P_obs.Json.Int s.s_bytes);
      ("occupancy", P_obs.Json.Float s.s_occupancy);
      ("omission_bound", P_obs.Json.Float s.s_omission_bound);
      ("lossy_dups", P_obs.Json.Int s.s_lossy_dups);
      ("contention", P_obs.Json.Int s.s_contention);
      ("cas_retries", P_obs.Json.Int s.s_cas_retries);
      ("dropped", P_obs.Json.Bool s.s_dropped) ]
