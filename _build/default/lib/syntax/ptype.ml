(** The type language of core P (Figure 3 of the paper):
    [void | bool | int | event | id], plus [byte] which the prose of
    section 3 lists among variable types. *)

type t =
  | Void  (** the payload type of events that carry no data *)
  | Bool
  | Int
  | Byte  (** 8-bit unsigned integer with wraparound arithmetic *)
  | Event  (** an event name used as a first-class value *)
  | Machine_id  (** the [id] type: a reference to a dynamically created machine *)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = function
  | Void -> "void"
  | Bool -> "bool"
  | Int -> "int"
  | Byte -> "byte"
  | Event -> "event"
  | Machine_id -> "id"

let pp ppf t = Fmt.string ppf (to_string t)

let of_string = function
  | "void" -> Some Void
  | "bool" -> Some Bool
  | "int" -> Some Int
  | "byte" -> Some Byte
  | "event" -> Some Event
  | "id" -> Some Machine_id
  | _ -> None

(** [assignable ~from ~into] holds when a value of type [from] may be stored
    in a location of type [into]. [Void] is the type of the null payload and
    flows into every type (the null value [⊥] inhabits all types); [Byte]
    narrows from [Int] and widens into it. *)
let assignable ~from ~into =
  equal from into
  ||
  match (from, into) with
  | Void, _ -> true
  | Byte, Int | Int, Byte -> true
  | (Bool | Int | Byte | Event | Machine_id), _ -> false
