lib/semantics/step.ml: Ast Config Equeue Errors List Loc Machine Mid Names P_static P_syntax Ptype Trace Value
