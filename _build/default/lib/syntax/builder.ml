(** Combinator EDSL for constructing P programs directly in OCaml.

    The example programs, the seeded-bug variants, and the synthetic USB
    models of the Figure 8 reproduction are all built with these
    combinators; the textual front end ([P_parser]) produces the same AST.
    All nodes carry [Loc.none]. *)

open Ast

let ev = Names.Event.of_string
let mach = Names.Machine.of_string
let st = Names.State.of_string
let var = Names.Var.of_string
let act = Names.Action.of_string
let ffn = Names.Foreign.of_string

(* ---------------- expressions ---------------- *)

let mk_e e = { e; eloc = Loc.none }
let this = mk_e This
let msg = mk_e Msg
let arg = mk_e Arg
let null = mk_e Null
let tru = mk_e (Bool_lit true)
let fls = mk_e (Bool_lit false)
let int n = mk_e (Int_lit n)
let bool b = mk_e (Bool_lit b)
let evt name = mk_e (Event_lit (ev name))
let v name = mk_e (Var (var name))
let nondet = mk_e Nondet
let not_ a = mk_e (Unop (Not, a))
let neg a = mk_e (Unop (Neg, a))
let ( + ) a b = mk_e (Binop (Add, a, b))
let ( - ) a b = mk_e (Binop (Sub, a, b))
let ( * ) a b = mk_e (Binop (Mul, a, b))
let ( / ) a b = mk_e (Binop (Div, a, b))
let ( % ) a b = mk_e (Binop (Mod, a, b))
let ( && ) a b = mk_e (Binop (And, a, b))
let ( || ) a b = mk_e (Binop (Or, a, b))
let ( == ) a b = mk_e (Binop (Eq, a, b))
let ( != ) a b = mk_e (Binop (Neq, a, b))
let ( < ) a b = mk_e (Binop (Lt, a, b))
let ( <= ) a b = mk_e (Binop (Le, a, b))
let ( > ) a b = mk_e (Binop (Gt, a, b))
let ( >= ) a b = mk_e (Binop (Ge, a, b))
let fcall name args = mk_e (Foreign_call (ffn name, args))

(* ---------------- statements ---------------- *)

let mk_s s = { s; sloc = Loc.none }
let skip = mk_s Skip
let assign x e = mk_s (Assign (var x, e))
let new_ x m inits = mk_s (New (var x, mach m, List.map (fun (k, e) -> (var k, e)) inits))
let delete = mk_s Delete
let send ?(payload = null) target event = mk_s (Send (target, ev event, payload))
let raise_ ?(payload = null) event = mk_s (Raise (ev event, payload))
let leave = mk_s Leave
let return = mk_s Return
let assert_ e = mk_s (Assert e)
let if_ c t f = mk_s (If (c, t, f))
let when_ c t = mk_s (If (c, t, skip))
let while_ c body = mk_s (While (c, body))
let call_state name = mk_s (Call_state (st name))
let fstmt name args = mk_s (Foreign_stmt (ffn name, args))

(** [seq [s1; s2; ...]] chains statements; [seq []] is [skip]. *)
let seq = function
  | [] -> skip
  | first :: rest -> List.fold_left (fun acc s -> mk_s (Seq (acc, s))) first rest

(** [if * then s]: the ghost-machine nondeterministic conditional. *)
let if_nondet t = if_ nondet t skip

(* ---------------- declarations ---------------- *)

let state ?(defer = []) ?(postpone = []) ?(entry = skip) ?(exit = skip) name =
  { state_name = st name;
    deferred = List.map ev defer;
    postponed = List.map ev postpone;
    entry;
    exit;
    state_loc = Loc.none }

let var_decl ?(ghost = false) name ty =
  { var_name = var name; var_type = ty; var_ghost = ghost; var_loc = Loc.none }

let action name body = { action_name = act name; action_body = body; action_loc = Loc.none }

let step (source, event, target) =
  { tr_source = st source; tr_event = ev event; tr_target = st target; tr_loc = Loc.none }

let push (source, event, target) = step (source, event, target)

let on (state_, event) ~do_ =
  { bd_state = st state_; bd_event = ev event; bd_action = act do_; bd_loc = Loc.none }

let foreign ?(params = []) ?(ret = Ptype.Void) ?model name =
  { foreign_name = ffn name;
    foreign_params = params;
    foreign_ret = ret;
    foreign_model = model;
    foreign_loc = Loc.none }

let machine ?(ghost = false) ?(vars = []) ?(actions = []) ?(steps = []) ?(calls = [])
    ?(bindings = []) ?(foreigns = []) name states =
  { machine_name = mach name;
    machine_ghost = ghost;
    vars;
    actions;
    states;
    steps = List.map step steps;
    calls = List.map push calls;
    bindings;
    foreigns;
    machine_loc = Loc.none }

let event ?(payload = Ptype.Void) name =
  { event_name = ev name; event_payload = payload; event_loc = Loc.none }

let program ~events ~machines ?(init = []) main_name =
  { events;
    machines;
    main = mach main_name;
    main_init = List.map (fun (k, e) -> (var k, e)) init }
