(** The elevator of section 2 of the paper (Figures 1 and 2): the real
    [Elevator] machine closed with ghost [User], [Door], and [Timer]
    environment machines. Verified clean through delay bound 10 with 100%
    handler coverage; liveness-clean given its [postpone] annotations. *)

val elevator_machine : P_syntax.Ast.machine
val door_machine : P_syntax.Ast.machine
val timer_machine : P_syntax.Ast.machine

val user_machine : presses:int -> P_syntax.Ast.machine
(** The ghost user; [presses <= 0] presses buttons forever. *)

val events : P_syntax.Ast.event_decl list

val program : ?presses:int -> unit -> P_syntax.Ast.program
(** The closed elevator program (default: unbounded user, as in the
    paper). *)

val buggy_program : ?presses:int -> unit -> P_syntax.Ast.program
(** Seeded bug: [Opening] forgets to defer [CloseDoor] and to ignore a
    second [OpenDoor] — an unhandled-event error found at delay bound 0. *)
