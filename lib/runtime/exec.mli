(** The execution engine of the P runtime: an independent, mutable,
    table-driven implementation of the operational semantics structured
    like the C runtime of section 4. Run-to-completion: a send to an idle
    machine runs the receiver nested on the same thread (exactly the d = 0
    causal schedule); a send to a busy machine only enqueues. The runtime
    lock protects instance bookkeeping and inboxes but is never held while
    machine code runs, so host threads drive disjoint machines in
    parallel. Most callers use the {!Api} wrapper. *)

module Tables = P_compile.Tables

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise {!Runtime_error}. *)

type foreign_fn = Context.t -> Rt_value.t list -> Rt_value.t

(** Stepped (differential-replay) mode: with this set, a send only
    enqueues, [new] only creates, and either raises [sp_yield] so the
    machine loop stops at the atomic-block boundary. [sp_choices] holds the
    block's recorded ghost [*] resolutions. Managed by {!step_block}. *)
type stepped = {
  mutable sp_choices : bool list;
  mutable sp_yield : bool;
}

exception Choice_needed
(** A [*] was evaluated past the end of [sp_choices]. *)

(** Scheduled (effects) mode: sends, spawns, [*] choices and quantum
    expiry perform effects handled by a {!Sched} fiber handler, so one
    domain multiplexes many machines without per-machine threads.
    [sc_left] is the running fiber's remaining dequeue budget; at zero the
    machine loop performs {!Sched_yield} at its next dequeue point. *)
type sched_mode = {
  sc_quantum : int;
  mutable sc_left : int;
}

type mode =
  | Nested  (** run-to-completion on the calling thread (the d = 0 schedule) *)
  | Stepped of stepped  (** differential replay via {!step_block} *)
  | Scheduled of sched_mode  (** cooperative fibers under a {!Sched} handler *)

(** The effects performed by machine code in [Scheduled] mode; handled
    exclusively by [Sched.run_fiber]. *)
type _ Effect.t +=
  | Sched_send : {
      src : Context.t;
      dst : int;
      event : int;
      payload : Rt_value.t;
    }
      -> Context.backpressure Effect.t
  | Sched_spawn : {
      creator : Context.t;
      ty : int;
      inits : (int * Rt_value.t) list;
    }
      -> int Effect.t
  | Sched_yield : Context.t -> unit Effect.t
  | Sched_choose : Context.t -> bool Effect.t

exception
  Mailbox_overflow of {
    dst : int;
    event : string;
    capacity : int;
  }
(** A bounded mailbox rejected an event in a mode with no shed path. *)

(** Metric handles resolved once by {!set_metrics}: [runtime.sends],
    [runtime.dequeues], [runtime.creates] counters and the
    [runtime.queue_len_hwm] inbox high-water gauge. *)
type rt_meters = {
  rm_sends : P_obs.Metrics.counter;
  rm_dequeues : P_obs.Metrics.counter;
  rm_creates : P_obs.Metrics.counter;
  rm_queue_hwm : P_obs.Metrics.gauge;
}

type t = {
  driver : Tables.driver;
  instances : (int, Context.t) Hashtbl.t;
  mutable next_handle : int;
  foreigns : (string, foreign_fn) Hashtbl.t;
  lock : Mutex.t;
  mutable trace_hook : (Rt_trace.item -> unit) option;
  mutable meters : rt_meters option;
  mutable mode : mode;
      (** [Stepped _] only inside {!step_block}; [Scheduled _] only under a
          {!Sched} handler *)
  mutable default_capacity : int;
      (** mailbox capacity for instances created from here on *)
  mutable n_dequeued : int;  (** events processed, all modes *)
  mutable fault_plan : P_semantics.Fault.plan option;
      (** deterministic fault injection for stepped (differential) replay;
          install via {!set_fault_plan} *)
  mutable fseq : int;  (** fault points consumed so far (monotone) *)
}

val create : Tables.driver -> t

val set_mailbox_capacity : t -> int -> unit
(** Bound the mailboxes of instances created from here on (existing
    instances keep their capacity). Raises [Invalid_argument] when not
    positive; the default is [max_int] (the semantics' unbounded queues). *)

val scheduled_mode : t -> quantum:int -> unit
(** Switch the runtime into [Scheduled] mode with the given per-activation
    dequeue budget. Only a {!Sched} handler should call this. *)

val reset_quantum : t -> unit
(** Refill the running fiber's dequeue budget (called by the scheduler at
    each activation boundary); no-op outside [Scheduled] mode. *)

val events_dequeued : t -> int
(** Events processed since [create], any mode — a cheap stat read. *)

val set_fault_plan : t -> P_semantics.Fault.plan option -> unit
(** Install (or clear) the fault plan {!step_block}-driven replay runs
    under, and reset the fault-point counter. An all-zero plan is
    normalized to [None]. Stepped execution then consumes fault points at
    exactly the interpreter's hooks — block start (crash-restart keeping
    the store), send (drop / duplicate / reorder after target
    resolution), and dequeue when something is dequeuable (delay) — so a
    schedule replayed through both layers sees identical faults. Faults
    are inert outside stepped mode. *)

(** Point the runtime at a metrics registry; [None] (the initial state)
    turns metrics off and makes every instrumented point a cheap
    option-match. *)
val set_metrics : t -> P_obs.Metrics.t option -> unit
val register_foreign : t -> string -> foreign_fn -> unit
val find_instance : t -> int -> Context.t option

val emit : t -> Rt_trace.item -> unit
(** Feed the trace hook, if set (the scheduler emits [Sent] items so the
    effects driver's observable trace matches the nested driver's). *)

val event_name : t -> int -> string

val create_instance : t -> creator:int option -> int -> Context.t
(** Allocate and register an instance of machine type [ty] (by index); the
    entry statement is on its agenda but has not run. *)

val adopt_instance : t -> self:int -> creator:int option -> int -> Context.t
(** Like {!create_instance} with an externally-allocated handle — the
    shard layer assigns handles from a global counter so a machine's home
    shard is a pure function of its id. Raises [Invalid_argument] if the
    handle is already registered. *)

val fresh_handle : t -> int
(** Allocate the next instance handle without creating an instance. *)

val deliver : t -> src:int -> int -> int -> Rt_value.t -> Context.backpressure
(** [deliver rt ~src dst event payload]: enqueue with [⊕]; if [dst] is
    idle, claim it and run it to completion on this thread ([Accepted]),
    otherwise leave it queued ([Queued]). [Shed] reports a full bounded
    mailbox (nothing enqueued, receiver not run). *)

val run_if_idle : t -> Context.t -> bool
(** Claim-and-drain: run the machine if no other thread holds it,
    re-checking for events that race in while finishing. Returns whether
    this thread claimed (and ran) the machine. *)

val raise_overflow : t -> int -> int -> 'a
(** Raise {!Mailbox_overflow} for a shed delivery of event [e] to [dst]
    (looks up the target's capacity for the report). *)

val run_machine : t -> Context.t -> unit
(** One drain pass (no claim); internal, exposed for tests. *)

val eval : t -> Context.t -> Tables.cexpr -> Rt_value.t
(** Evaluate a table expression in a machine context; exposed so
    differential replay can apply {!Tables.driver.dr_main_init}. *)

val assign : Context.t -> int -> Rt_value.t -> unit
(** Store into a machine variable with the byte-narrowing coercion the
    generated code applies. *)

(** Outcome of one stepped atomic block, mirroring
    {!P_semantics.Step.outcome}. *)
type block_result =
  | Block_progress  (** reached a scheduling point (send or [new]) *)
  | Block_blocked  (** agenda drained and nothing dequeuable *)
  | Block_terminated  (** the machine executed [delete] *)
  | Block_error of string  (** a runtime error configuration *)
  | Block_choices_exhausted
      (** a [*] was evaluated past the supplied choice list *)

val step_block : t -> Context.t -> choices:bool list -> block_result
(** Run one atomic block of the given machine — continue its agenda (or
    dequeue) until a send/new scheduling point, quiescence, termination or
    an error — resolving ghost [*] expressions from [choices] in order.
    The runtime twin of {!P_semantics.Step.run_atomic}, for driving a
    checker schedule through the compiled tables. Single-threaded use
    only. *)
