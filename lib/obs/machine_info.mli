(** The machine-context block stamped into every measurement artifact
    (bench JSON documents, [--stats-json] reports, telemetry JSONL
    headers): the facts needed to decide whether two recorded runs are
    comparable at all — core count, OCaml version, word size, backend,
    and the git revision the binary was built from.

    Dependency-free by design (like the rest of [P_obs]): the git
    revision is read straight out of [.git] (walking up from the current
    directory, following worktree indirections and packed refs) rather
    than by shelling out. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism this host can
    actually deliver. 1 means parallel speedups are unmeasurable here. *)

val git_rev : unit -> string option
(** The commit hash of HEAD, or [None] outside a git checkout (e.g. the
    dune sandbox of a test run, or an installed binary). *)

val json : unit -> Json.t
(** The context block:
    [{"cores": N, "ocaml_version": "5.1.1", "word_size": 64,
      "os_type": "Unix", "backend": "native", "git_rev": <hash or null>}] *)

val fields : unit -> (string * Json.t) list
(** The same block as an association list, for splicing into a larger
    object. *)
