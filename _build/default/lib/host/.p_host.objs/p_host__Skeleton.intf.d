lib/host/skeleton.mli: Os_events P_runtime
