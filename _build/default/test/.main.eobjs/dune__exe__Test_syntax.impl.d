test/test_syntax.ml: Alcotest Ast Astring_contains Builder List Loc Map Names P_examples_lib P_syntax Pretty Ptype Set
