lib/examples_lib/token_ring.mli: P_syntax
