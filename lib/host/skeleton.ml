(** Generic interface code for P drivers: the skeletal KMDF driver of
    section 4 that "mediates between the OS and the P code". [EvtAddDevice]
    creates the driver's main machine with [SMCreateMachine]; every other
    callback is translated into a P event and queued with [SMAddEvent];
    [EvtRemoveDevice] queues the distinguished [Delete] event, which every
    P driver machine is required to handle by cleaning up and executing the
    [delete] statement. The paper notes this code "is generic enough so that
    it can be automatically generated for a particular class of drivers" —
    here it is one functorized value. *)

module Api = P_runtime.Api
module Rt_value = P_runtime.Rt_value

type t = {
  runtime : Api.t;
  main_machine : string;
  translate : Os_events.t -> (string * Rt_value.t) option;
  delete_event : string option;
      (** the P event queued on EvtRemoveDevice; [None] if the driver has no
          removal protocol *)
  mutable handle : int option;
  mutable sheds : int;
      (** callbacks dropped at the machine's bounded mailbox (backpressure) *)
}

type error = Device_not_added of { main_machine : string }

exception Error of error

let error_message (Device_not_added { main_machine }) =
  Fmt.str
    "skeleton for driver machine %s: no device attached — EvtAddDevice has \
     not run (or EvtRemoveDevice already ran), so there is no machine handle"
    main_machine

let attach ?(delete_event = Some "Delete") (runtime : Api.t) ~main_machine ~translate =
  { runtime; main_machine; translate; delete_event; handle = None; sheds = 0 }

let sheds t = t.sheds

let handle_opt t : (int, error) result =
  match t.handle with
  | Some h -> Ok h
  | None -> Result.Error (Device_not_added { main_machine = t.main_machine })

let handle t =
  match handle_opt t with Ok h -> h | Result.Error e -> raise (Error e)

let driver ?(name = "p-driver") ?metrics (t : t) : Os_events.driver =
  (* resolved once; the per-callback path is then a plain option match *)
  let hmeters =
    Option.map
      (fun reg ->
        ( P_obs.Metrics.counter reg "host.callbacks",
          P_obs.Metrics.counter reg "host.shed",
          P_obs.Metrics.histogram reg "host.callback_s" ))
      metrics
  in
  (* backpressure, not OOM: a full bounded mailbox sheds the callback (the
     OS retries or drops, as real interface code would) instead of letting
     the queue grow without bound or tearing the host down *)
  let deliver h event payload =
    match Api.try_add_event t.runtime h event payload with
    | P_runtime.Context.Accepted | P_runtime.Context.Queued -> false
    | P_runtime.Context.Shed ->
      t.sheds <- t.sheds + 1;
      true
  in
  let timed_callback h event payload =
    match hmeters with
    | None -> ignore (deliver h event payload : bool)
    | Some (m_calls, m_shed, m_latency) ->
      let span = P_obs.Mclock.start () in
      Fun.protect
        ~finally:(fun () ->
          P_obs.Metrics.incr m_calls;
          P_obs.Metrics.observe m_latency (P_obs.Mclock.elapsed_s span))
        (fun () -> if deliver h event payload then P_obs.Metrics.incr m_shed)
  in
  { Os_events.name;
    add_device =
      (fun () ->
        match t.handle with
        | Some _ -> () (* single-device skeleton: idempotent *)
        | None -> t.handle <- Some (Api.create_machine t.runtime t.main_machine));
    remove_device =
      (fun () ->
        match (t.handle, t.delete_event) with
        | Some h, Some ev ->
          timed_callback h ev Rt_value.Null;
          t.handle <- None
        | Some _, None -> t.handle <- None
        | None, _ -> ());
    callback =
      (fun os_event ->
        match t.handle with
        | None -> () (* callbacks before AddDevice are dropped, as in KMDF *)
        | Some h -> (
          match t.translate os_event with
          | None -> ()
          | Some (event, payload) -> timed_callback h event payload)) }
