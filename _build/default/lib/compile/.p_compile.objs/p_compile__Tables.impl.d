lib/compile/tables.ml: Array List P_syntax String
