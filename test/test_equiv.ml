(* The d=0 equivalence of section 5: "for d = 0, the real part of schedules
   explored by the delay bounded scheduler are exactly the same as the one
   executed by the P runtime ... assuming no multithreading".

   The runtime (P_runtime, table-driven and mutable) and the verifier-side
   simulator (P_semantics.Simulate, the d=0 slice of the delaying scheduler)
   are independent implementations; these tests compare their observable
   traces item by item on ghost-free programs, where erasure is the
   identity and the comparison is exact. *)

module Rt_trace = P_runtime.Rt_trace

let check = Alcotest.check
let bool_t = Alcotest.bool

(* Both runtime drivers behind one face, selected by PCAML_TEST_SCHED:
   "threads" (default) is the historical nested run-to-completion driver;
   "effects" is the causal-policy effects scheduler, which must produce
   the same observable traces (and so transitively the same d=0
   equivalence with the simulator). *)
let make_runtime driver =
  match Sys.getenv_opt "PCAML_TEST_SCHED" with
  | Some "effects" ->
    let s = P_runtime.Sched.create ~policy:P_runtime.Sched.Causal driver in
    (P_runtime.Sched.exec s, fun main -> P_runtime.Sched.create_machine s main)
  | _ ->
    let rt = P_runtime.Api.create driver in
    (rt, fun main -> P_runtime.Api.create_machine rt main)

let runtime_trace program main =
  let { P_compile.Compile.driver; _ } = P_compile.Compile.compile program in
  let rt, create_machine = make_runtime driver in
  let items = ref [] in
  P_runtime.Api.set_trace_hook rt (Some (fun it -> items := it :: !items));
  let _ = create_machine main in
  Rt_trace.observable (List.rev !items)

let simulator_trace program =
  let tab = P_static.Check.run_exn program in
  let r = P_semantics.Simulate.run tab in
  (match r.status with
  | P_semantics.Simulate.Error e ->
    Alcotest.failf "simulator hit an error: %a" P_semantics.Errors.pp e
  | _ -> ());
  Rt_trace.of_semantics_trace r.trace

let item_str it = Fmt.str "%a" Rt_trace.pp_item it

let assert_equal_traces name rt_items sim_items =
  let rt_strs = List.map item_str rt_items in
  let sim_strs = List.map item_str sim_items in
  if rt_strs <> sim_strs then begin
    let pp = Fmt.str "@[<v>%a@]" Fmt.(list ~sep:cut string) in
    Alcotest.failf "%s traces differ:@.--- runtime ---@.%s@.--- simulator ---@.%s" name
      (pp rt_strs) (pp sim_strs)
  end

let equiv name program main =
  assert_equal_traces name (runtime_trace program main) (simulator_trace program)

let test_pingpong () =
  List.iter
    (fun rounds ->
      equiv
        (Fmt.str "pingpong-%d" rounds)
        (P_examples_lib.Pingpong.program ~rounds ())
        "Pinger")
    [ 1; 2; 5; 10 ]

let test_bounded_buffer () =
  List.iter
    (fun (items, credits) ->
      equiv
        (Fmt.str "boundedbuffer-%d-%d" items credits)
        (P_examples_lib.Bounded_buffer.program ~items ~credits ())
        "Producer")
    [ (1, 1); (4, 2); (8, 3) ]

let test_token_ring () =
  (* the ring circulates forever; bound both sides identically by truncating
     the traces to the same finite prefix *)
  let program = P_examples_lib.Token_ring.program ~n:3 () in
  let tab = P_static.Check.run_exn program in
  let sim = P_semantics.Simulate.run ~max_blocks:60 tab in
  let sim_items = Rt_trace.of_semantics_trace sim.trace in
  let { P_compile.Compile.driver; _ } = P_compile.Compile.compile program in
  let rt, create_machine = make_runtime driver in
  let items = ref [] in
  let count = ref 0 in
  let exception Enough in
  P_runtime.Api.set_trace_hook rt
    (Some
       (fun it ->
         items := it :: !items;
         incr count;
         if !count > 2_000 then raise Enough));
  (try ignore (create_machine "Starter") with Enough -> ());
  let rt_items = Rt_trace.observable (List.rev !items) in
  let n = min (List.length sim_items) (List.length rt_items) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  check bool_t "prefix agrees" true
    (List.map item_str (take n rt_items) = List.map item_str (take n sim_items));
  check bool_t "long enough to be meaningful" true (n > 30)

let test_switch_led_erased () =
  (* with the ghost switch erased, the driver alone comes up in Off and
     quiesces; both engines must agree on that tiny trace too *)
  let program = P_examples_lib.Switch_led.program () in
  let { P_compile.Compile.erased; driver } = P_compile.Compile.compile program in
  let rt, create_machine = make_runtime driver in
  P_runtime.Api.register_foreign rt "set_led" (fun _ _ -> P_runtime.Rt_value.Null);
  let items = ref [] in
  P_runtime.Api.set_trace_hook rt (Some (fun it -> items := it :: !items));
  let _ = create_machine "SwitchLed" in
  let rt_items = Rt_trace.observable (List.rev !items) in
  let sim_items = simulator_trace erased in
  assert_equal_traces "switchled-erased" rt_items sim_items

let suite =
  [ Alcotest.test_case "pingpong d=0 ≡ runtime" `Quick test_pingpong;
    Alcotest.test_case "bounded buffer d=0 ≡ runtime" `Quick test_bounded_buffer;
    Alcotest.test_case "token ring prefix ≡" `Quick test_token_ring;
    Alcotest.test_case "erased switchled ≡" `Quick test_switch_led_erased ]
