lib/examples_lib/switch_led.ml: List P_compile P_host P_runtime P_syntax Stdlib
