(** The compilation pipeline: static checks, ghost erasure, lowering to
    driver tables, and (optionally) C emission. Mirrors the paper's
    compiler, whose output is "generated code + runtime" (section 4). *)

type compiled = {
  erased : P_syntax.Ast.program;  (** the real-only program after erasure *)
  driver : Tables.driver;  (** tables interpreted by {!P_runtime} *)
}

exception Error of string

(** Check, erase, and lower a P program. Raises [Error] with rendered
    diagnostics when the program is statically rejected. *)
let compile ?name (program : P_syntax.Ast.program) : compiled =
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    raise (Error (Fmt.str "%a" P_static.Check.pp_diagnostics ds))
  | { symtab; _ } ->
    let erased = P_static.Erasure.erase symtab in
    (* the erased program must itself be well formed — a successful Ghost
       check guarantees it; re-validate as a cheap internal sanity check *)
    (match P_static.Check.run erased with
    | { diagnostics = []; _ } -> ()
    | { diagnostics; _ } ->
      raise
        (Error
           (Fmt.str "internal error: erasure produced an ill-formed program:@.%a"
              P_static.Check.pp_diagnostics diagnostics)));
    { erased; driver = Lower.lower ?name erased }

(** Check and lower WITHOUT erasing: ghost machines and [*] survive into
    the tables (as {!Tables.cexpr.CNondet}). The result is only meant for
    the stepped executor used by differential replay — {!C_emit} rejects
    it. *)
let compile_full ?name (program : P_syntax.Ast.program) : Tables.driver =
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    raise (Error (Fmt.str "%a" P_static.Check.pp_diagnostics ds))
  | _ -> Lower.lower ?name ~full:true program

(** Full pipeline to C source text. *)
let to_c ?name program = C_emit.emit (compile ?name program).driver
