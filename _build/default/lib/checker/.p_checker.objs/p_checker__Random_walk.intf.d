lib/checker/random_walk.mli: Fmt P_semantics P_static
