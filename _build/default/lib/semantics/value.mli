(** Runtime values of P. [Null] is the paper's undefined value [⊥]: it
    arises as the constant [null] and from uninitialized variables, and it
    propagates through every operator (section 3, "Expressions and
    evaluation"). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Event of P_syntax.Names.Event.t
  | Machine of Mid.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string
val is_null : t -> bool

val truth : t -> bool option
(** [Some b] for booleans; [None] otherwise — including [⊥], on which no
    branching rule of Figure 4 applies. *)

type 'a op_result = Ok of 'a | Type_error of string

val unop : P_syntax.Ast.unop -> t -> t op_result
(** [⊥] operands yield [⊥]; ill-typed operands yield [Type_error]. *)

val binop : P_syntax.Ast.binop -> t -> t -> t op_result
(** As {!unop}; division and modulo by zero are [Type_error]. *)
