(** Machine context for measurement artifacts. See the interface for the
    shape; everything here is best-effort and must never raise — a bench
    run should not die because [.git] is missing or oddly shaped. *)

let cores () = Domain.recommended_domain_count ()

let read_first_line path =
  try
    In_channel.with_open_text path (fun ic ->
        match In_channel.input_line ic with
        | Some l -> Some (String.trim l)
        | None -> None)
  with Sys_error _ -> None

(* Walk up from [dir] to the filesystem root looking for a .git entry. *)
let rec find_git_entry dir =
  let cand = Filename.concat dir ".git" in
  if Sys.file_exists cand then Some cand
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_git_entry parent

(* Resolve a symbolic ref ("refs/heads/main") to a hash: loose ref file
   first, then the packed-refs table. *)
let resolve_ref git_dir r =
  match read_first_line (Filename.concat git_dir r) with
  | Some hash -> Some hash
  | None -> (
    try
      In_channel.with_open_text (Filename.concat git_dir "packed-refs") (fun ic ->
          let rec go () =
            match In_channel.input_line ic with
            | None -> None
            | Some line -> (
              match String.index_opt line ' ' with
              | Some i
                when String.length line > i + 1
                     && String.equal
                          (String.sub line (i + 1) (String.length line - i - 1))
                          r -> Some (String.sub line 0 i)
              | _ -> go ())
          in
          go ())
    with Sys_error _ -> None)

let git_rev () =
  try
    match find_git_entry (Sys.getcwd ()) with
    | None -> None
    | Some entry ->
      (* worktrees and submodules use a ".git" *file* pointing elsewhere *)
      let git_dir =
        if Sys.is_directory entry then entry
        else
          match read_first_line entry with
          | Some l when String.starts_with ~prefix:"gitdir: " l ->
            String.sub l 8 (String.length l - 8)
          | _ -> entry
      in
      (match read_first_line (Filename.concat git_dir "HEAD") with
      | None -> None
      | Some head ->
        if String.starts_with ~prefix:"ref: " head then
          resolve_ref git_dir (String.sub head 5 (String.length head - 5))
        else Some head)
  with Sys_error _ | Invalid_argument _ -> None

let fields () =
  [ ("cores", Json.Int (cores ()));
    ("ocaml_version", Json.String Sys.ocaml_version);
    ("word_size", Json.Int Sys.word_size);
    ("os_type", Json.String Sys.os_type);
    ( "backend",
      Json.String
        (match Sys.backend_type with
        | Sys.Native -> "native"
        | Sys.Bytecode -> "bytecode"
        | Sys.Other s -> s) );
    ("git_rev", match git_rev () with Some r -> Json.String r | None -> Json.Null) ]

let json () = Json.Obj (fields ())
