(** The simple type system of P (section 3.3): expressions and statements are
    checked against the declared types of variables and event payloads.

    The special variable [arg] (the payload of the last received event) and
    the constant [null] are dynamically typed — the paper's [⊥] value
    inhabits every type — so both are given the unknown type, which is
    compatible with everything; misuse is then caught at verification time
    by the operational semantics. *)

open P_syntax

type ty = Known of Ptype.t | Unknown

let pp_ty ppf = function
  | Known t -> Ptype.pp ppf t
  | Unknown -> Fmt.string ppf "<dynamic>"

let compatible a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Known x, Known y ->
    Ptype.assignable ~from:x ~into:y || Ptype.assignable ~from:y ~into:x

let errs acc loc fmt = Fmt.kstr (fun dmsg -> acc := { Symtab.dloc = loc; dmsg } :: !acc) fmt

let var_type (mi : Symtab.machine_info) x =
  match Symtab.var_decl mi x with
  | Some vd -> Known vd.Ast.var_type
  | None -> Unknown (* unresolved names were already reported by Wellformed *)

let rec type_of_expr tab (mi : Symtab.machine_info) acc (expr : Ast.expr) : ty =
  let require what want e =
    let t = type_of_expr tab mi acc e in
    if not (compatible t (Known want)) then
      errs acc e.Ast.eloc "%s must have type %a, found %a" what Ptype.pp want pp_ty t
  in
  match expr.e with
  | Ast.This -> Known Ptype.Machine_id
  | Ast.Msg -> Known Ptype.Event
  | Ast.Arg -> Unknown
  | Ast.Null -> Unknown
  | Ast.Bool_lit _ -> Known Ptype.Bool
  | Ast.Int_lit _ -> Known Ptype.Int
  | Ast.Event_lit _ -> Known Ptype.Event
  | Ast.Var x -> var_type mi x
  | Ast.Nondet -> Known Ptype.Bool
  | Ast.Unop (Ast.Not, a) ->
    require "operand of '!'" Ptype.Bool a;
    Known Ptype.Bool
  | Ast.Unop (Ast.Neg, a) ->
    require "operand of unary '-'" Ptype.Int a;
    Known Ptype.Int
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) ->
    require "arithmetic operand" Ptype.Int a;
    require "arithmetic operand" Ptype.Int b;
    Known Ptype.Int
  | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
    require "boolean operand" Ptype.Bool a;
    require "boolean operand" Ptype.Bool b;
    Known Ptype.Bool
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
    require "comparison operand" Ptype.Int a;
    require "comparison operand" Ptype.Int b;
    Known Ptype.Bool
  | Ast.Binop ((Ast.Eq | Ast.Neq), a, b) ->
    let ta = type_of_expr tab mi acc a in
    let tb = type_of_expr tab mi acc b in
    if not (compatible ta tb) then
      errs acc expr.eloc "cannot compare %a with %a" pp_ty ta pp_ty tb;
    Known Ptype.Bool
  | Ast.Foreign_call (f, args) -> (
    match Symtab.foreign_decl mi f with
    | None -> Unknown
    | Some fd ->
      check_foreign_args tab mi acc expr.eloc fd args;
      Known fd.foreign_ret)

and check_foreign_args tab mi acc loc (fd : Ast.foreign_decl) args =
  List.iteri
    (fun i arg ->
      match List.nth_opt fd.foreign_params i with
      | None -> ()
      | Some want ->
        let t = type_of_expr tab mi acc arg in
        if not (compatible t (Known want)) then
          errs acc loc "argument %d of %a must have type %a, found %a" (i + 1)
            Names.Foreign.pp fd.foreign_name Ptype.pp want pp_ty t)
    args

let check_payload tab mi acc loc event (payload : Ast.expr) =
  match Symtab.event_decl tab event with
  | None -> ()
  | Some ev -> (
    let t = type_of_expr tab mi acc payload in
    match ev.event_payload with
    | Ptype.Void ->
      if not (compatible t Unknown) || (t <> Unknown && payload.e <> Ast.Null) then
        (match payload.e with
        | Ast.Null -> ()
        | _ ->
          errs acc loc "event %a carries no payload but one was supplied"
            Names.Event.pp event)
    | want ->
      if not (compatible t (Known want)) then
        errs acc loc "payload of event %a must have type %a, found %a" Names.Event.pp
          event Ptype.pp want pp_ty t)

let rec check_stmt tab (mi : Symtab.machine_info) acc (stmt : Ast.stmt) =
  match stmt.s with
  | Ast.Skip | Ast.Delete | Ast.Leave | Ast.Return | Ast.Call_state _ -> ()
  | Ast.Assign (x, e) ->
    let te = type_of_expr tab mi acc e in
    let tx = var_type mi x in
    if not (compatible te tx) then
      errs acc stmt.sloc "cannot assign %a to variable %a of type %a" pp_ty te
        Names.Var.pp x pp_ty tx
  | Ast.New (x, target, inits) ->
    (let tx = var_type mi x in
     if not (compatible tx (Known Ptype.Machine_id)) then
       errs acc stmt.sloc "variable %a receiving a new machine must have type id"
         Names.Var.pp x);
    (match Symtab.machine_info tab target with
    | None -> ()
    | Some target_mi ->
      List.iter
        (fun (y, e) ->
          let te = type_of_expr tab mi acc e in
          let ty = var_type target_mi y in
          if not (compatible te ty) then
            errs acc stmt.sloc "initializer %a = ... must have type %a, found %a"
              Names.Var.pp y pp_ty ty pp_ty te)
        inits)
  | Ast.Send (target, ev, payload) ->
    (let t = type_of_expr tab mi acc target in
     if not (compatible t (Known Ptype.Machine_id)) then
       errs acc stmt.sloc "send target must have type id, found %a" pp_ty t);
    check_payload tab mi acc stmt.sloc ev payload
  | Ast.Raise (ev, payload) -> check_payload tab mi acc stmt.sloc ev payload
  | Ast.Assert e ->
    let t = type_of_expr tab mi acc e in
    if not (compatible t (Known Ptype.Bool)) then
      errs acc stmt.sloc "assert condition must have type bool, found %a" pp_ty t
  | Ast.Seq (a, b) ->
    check_stmt tab mi acc a;
    check_stmt tab mi acc b
  | Ast.If (c, t, f) ->
    (let tc = type_of_expr tab mi acc c in
     if not (compatible tc (Known Ptype.Bool)) then
       errs acc stmt.sloc "if condition must have type bool, found %a" pp_ty tc);
    check_stmt tab mi acc t;
    check_stmt tab mi acc f
  | Ast.While (c, body) ->
    (let tc = type_of_expr tab mi acc c in
     if not (compatible tc (Known Ptype.Bool)) then
       errs acc stmt.sloc "while condition must have type bool, found %a" pp_ty tc);
    check_stmt tab mi acc body
  | Ast.Foreign_stmt (f, args) -> (
    match Symtab.foreign_decl mi f with
    | None -> ()
    | Some fd -> check_foreign_args tab mi acc stmt.sloc fd args)

let check_machine tab acc (mi : Symtab.machine_info) =
  List.iter
    (fun (st : Ast.state) ->
      check_stmt tab mi acc st.Ast.entry;
      check_stmt tab mi acc st.Ast.exit)
    mi.m_ast.states;
  List.iter
    (fun (ad : Ast.action_decl) -> check_stmt tab mi acc ad.action_body)
    mi.m_ast.actions;
  List.iter
    (fun (fd : Ast.foreign_decl) ->
      match fd.foreign_model with
      | None -> ()
      | Some model ->
        let t = type_of_expr tab mi acc model in
        if not (compatible t (Known fd.foreign_ret)) then
          errs acc fd.foreign_loc
            "model of foreign function %a must have type %a, found %a"
            Names.Foreign.pp fd.foreign_name Ptype.pp fd.foreign_ret pp_ty t)
    mi.m_ast.foreigns

(** Type-check every machine; returns diagnostics oldest-first. *)
let check (tab : Symtab.t) : Symtab.diagnostic list =
  let acc = ref [] in
  Names.Machine.Tbl.iter (fun _ mi -> check_machine tab acc mi) tab.machines;
  List.rev !acc
