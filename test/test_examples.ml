(* Integration tests over the example corpus and the synthetic USB models:
   every shipped program is statically clean, verifies at small delay
   bounds, round-trips through the concrete syntax, and every seeded bug is
   found within delay bound 2 (the paper's empirical claim). Also covers
   the Figure 8 generator invariants and the .p sources on disk. *)

open P_checker

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let good_examples =
  [ ("elevator", P_examples_lib.Elevator.program ());
    ("pingpong", P_examples_lib.Pingpong.program ());
    ("german", P_examples_lib.German.program ());
    ("switchled", P_examples_lib.Switch_led.program ());
    ("tokenring", P_examples_lib.Token_ring.program ());
    ("boundedbuffer", P_examples_lib.Bounded_buffer.program ());
    ("leaderring", P_examples_lib.Leader_ring.program ());
    ("failoverchain", P_examples_lib.Failover_chain.program ()) ]

let buggy_examples =
  [ ("elevator", P_examples_lib.Elevator.buggy_program ());
    ("pingpong", P_examples_lib.Pingpong.buggy_program ());
    ("german", P_examples_lib.German.buggy_program ());
    ("switchled", P_examples_lib.Switch_led.buggy_program ());
    ("tokenring", P_examples_lib.Token_ring.buggy_program ());
    ("boundedbuffer", P_examples_lib.Bounded_buffer.buggy_program ());
    ("leaderring", P_examples_lib.Leader_ring.buggy_program ());
    ("failoverchain", P_examples_lib.Failover_chain.buggy_program ()) ]

let test_examples_statically_clean () =
  List.iter
    (fun (name, p) ->
      match P_static.Check.run p with
      | { diagnostics = []; _ } -> ()
      | { diagnostics; _ } ->
        Alcotest.failf "%s rejected:@.%a" name P_static.Check.pp_diagnostics diagnostics)
    (good_examples @ buggy_examples)

let test_all_bugs_found_within_d2 () =
  List.iter
    (fun (name, p) ->
      let tab = P_static.Check.run_exn p in
      let found =
        List.exists
          (fun d ->
            match
              (Delay_bounded.explore ~delay_bound:d ~max_states:500_000 tab).verdict
            with
            | Search.Error_found _ -> true
            | Search.No_error -> false)
          [ 0; 1; 2 ]
      in
      check bool_t (name ^ ": bug within d<=2") true found)
    buggy_examples

let test_all_examples_compile () =
  List.iter
    (fun (name, p) ->
      match P_compile.Compile.compile p with
      | { driver; _ } ->
        check bool_t (name ^ " has machines") true (Array.length driver.dr_machines > 0);
        let c = P_compile.C_emit.emit driver in
        check bool_t (name ^ " C nonempty") true (String.length c > 500)
      | exception P_compile.Compile.Error msg -> Alcotest.failf "%s: %s" name msg)
    good_examples

let find_p_file name =
  List.find Sys.file_exists
    (List.map
       (fun prefix -> Filename.concat prefix (Filename.concat "examples/p" name))
       [ "."; ".."; "../.."; "../../.."; "../../../.." ])

let test_example_p_file_parses_and_verifies () =
  let p = P_parser.Parser.program_of_file (find_p_file "ring.p") in
  let report = Verifier.verify ~delay_bound:2 p in
  check bool_t "ring.p verifies" true (Verifier.is_clean report)

let test_failover_p_verifies () =
  let p = P_parser.Parser.program_of_file (find_p_file "failover.p") in
  let tab = P_static.Check.run_exn p in
  List.iter
    (fun d ->
      let r = Delay_bounded.explore ~delay_bound:d ~max_states:1_500_000 tab in
      check bool_t (Fmt.str "failover clean at d=%d" d) true
        (r.verdict = Search.No_error))
    [ 0; 2; 4 ]

let test_failover_split_brain_variant_caught () =
  (* undo fix #4 (wait for the demotion ack): promote immediately instead;
     the split-brain assertion must fire again *)
  let p = P_parser.Parser.program_of_file (find_p_file "failover.p") in
  let broken =
    { p with
      P_syntax.Ast.machines =
        List.map
          (fun (m : P_syntax.Ast.machine) ->
            if P_syntax.Names.Machine.to_string m.machine_name = "Monitor" then
              { m with
                P_syntax.Ast.states =
                  List.map
                    (fun (st : P_syntax.Ast.state) ->
                      if P_syntax.Names.State.to_string st.state_name = "Failover" then
                        let module B = P_syntax.Builder in
                        { st with
                          P_syntax.Ast.entry =
                            B.seq
                              [ B.send (B.v "primary") "Demote";
                                B.send (B.v "primary") "Crash";
                                B.send (B.v "backup") "Promote" ] }
                      else st)
                    m.P_syntax.Ast.states }
            else m)
          p.P_syntax.Ast.machines }
  in
  let tab = P_static.Check.run_exn broken in
  let found =
    List.exists
      (fun d ->
        match (Delay_bounded.explore ~delay_bound:d ~max_states:1_000_000 tab).verdict with
        | Search.Error_found _ -> true
        | Search.No_error -> false)
      [ 0; 1; 2 ]
  in
  check bool_t "split brain caught within d<=2" true found

let test_german_scales_with_clients () =
  let states n =
    let tab = P_static.Check.run_exn (P_examples_lib.German.program ~n ()) in
    (Delay_bounded.explore ~delay_bound:0 ~max_states:500_000 tab).stats.states
  in
  let s2 = states 2 and s3 = states 3 and s4 = states 4 in
  check bool_t "n=3 > n=2" true (s3 > s2);
  check bool_t "n=4 > n=3" true (s4 > s3);
  (* protocol interleavings compound super-linearly *)
  check bool_t "superlinear growth" true (s4 > 5 * s3)

let test_german_bug_found_at_every_n () =
  List.iter
    (fun n ->
      let tab = P_static.Check.run_exn (P_examples_lib.German.buggy_program ~n ()) in
      let r = Delay_bounded.explore ~delay_bound:0 ~max_states:2_000_000 tab in
      check bool_t (Fmt.str "n=%d bug found" n) true
        (match r.verdict with Search.Error_found _ -> true | _ -> false))
    [ 2; 3; 4 ]

(* ---------------- Figure 8 generator ---------------- *)

let test_usb_specs_exact_sizes () =
  List.iter
    (fun spec ->
      let m, _ = P_usb.Gen.machine_of_spec spec in
      check int_t
        (spec.P_usb.Gen.name ^ " states")
        spec.P_usb.Gen.n_states
        (P_syntax.Ast.machine_state_count m);
      check int_t
        (spec.P_usb.Gen.name ^ " transitions")
        spec.P_usb.Gen.n_transitions
        (P_syntax.Ast.machine_transition_count m))
    P_usb.Gen.all_specs

let test_usb_generator_deterministic () =
  let p1 = P_usb.Gen.program_of_spec P_usb.Gen.hsm_spec in
  let p2 = P_usb.Gen.program_of_spec P_usb.Gen.hsm_spec in
  check bool_t "same program" true
    (String.equal
       (P_syntax.Pretty.program_to_string p1)
       (P_syntax.Pretty.program_to_string p2))

let test_usb_no_dead_end_states () =
  (* every state must keep at least one steppable event, or the machine can
     wedge with its counters frozen *)
  List.iter
    (fun spec ->
      let m, alphabet = P_usb.Gen.machine_of_spec spec in
      List.iter
        (fun (st : P_syntax.Ast.state) ->
          let has_step =
            List.exists
              (fun ev ->
                P_syntax.Ast.step_target m st.state_name
                  (P_syntax.Names.Event.of_string ev)
                <> None)
              alphabet
          in
          if not has_step then
            Alcotest.failf "%s: state %s has no step transition" spec.P_usb.Gen.name
              (P_syntax.Names.State.to_string st.state_name))
        m.states)
    P_usb.Gen.all_specs

let test_usb_programs_check_and_explore () =
  List.iter
    (fun spec ->
      let p = P_usb.Gen.program_of_spec spec in
      let tab = P_static.Check.run_exn p in
      let r = Delay_bounded.explore ~delay_bound:0 ~max_states:5_000 tab in
      (match r.verdict with
      | Search.No_error -> ()
      | Search.Error_found ce ->
        Alcotest.failf "%s: unexpected error %a" spec.P_usb.Gen.name P_semantics.Errors.pp
          ce.error);
      check bool_t (spec.P_usb.Gen.name ^ " explores") true (r.stats.states > 100))
    P_usb.Gen.all_specs

(* ---------------- cross-engine agreement on the examples ---------------- *)

let test_simulation_agrees_with_d0_count () =
  (* deterministic (ghost-free) examples: d=0 search explores exactly the
     simulator's linear path *)
  List.iter
    (fun (name, p, blocks_bound) ->
      let tab = P_static.Check.run_exn p in
      let sim = P_semantics.Simulate.run ~max_blocks:blocks_bound tab in
      match sim.status with
      | P_semantics.Simulate.Quiescent ->
        let r = Delay_bounded.explore ~delay_bound:0 tab in
        check int_t (name ^ ": linear path") (sim.blocks + 1) r.stats.states
      | _ -> Alcotest.failf "%s: expected quiescence" name)
    [ ("pingpong", P_examples_lib.Pingpong.program ~rounds:4 (), 10_000);
      ("boundedbuffer", P_examples_lib.Bounded_buffer.program (), 10_000) ]

let suite =
  [ Alcotest.test_case "examples statically clean" `Quick test_examples_statically_clean;
    Alcotest.test_case "bugs within d<=2" `Slow test_all_bugs_found_within_d2;
    Alcotest.test_case "examples compile" `Quick test_all_examples_compile;
    Alcotest.test_case "ring.p verifies" `Quick test_example_p_file_parses_and_verifies;
    Alcotest.test_case "failover.p verifies" `Slow test_failover_p_verifies;
    Alcotest.test_case "failover split-brain caught" `Slow test_failover_split_brain_variant_caught;
    Alcotest.test_case "german scales" `Slow test_german_scales_with_clients;
    Alcotest.test_case "german bug at every n" `Slow test_german_bug_found_at_every_n;
    Alcotest.test_case "usb exact sizes" `Quick test_usb_specs_exact_sizes;
    Alcotest.test_case "usb deterministic" `Quick test_usb_generator_deterministic;
    Alcotest.test_case "usb no dead ends" `Quick test_usb_no_dead_end_states;
    Alcotest.test_case "usb explores" `Slow test_usb_programs_check_and_explore;
    Alcotest.test_case "simulation = d0 path" `Quick test_simulation_agrees_with_d0_count ]
