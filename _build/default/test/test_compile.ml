(* Tests for the compilation pipeline: lowering to table IR and C emission. *)

module Tables = P_compile.Tables
module Compile = P_compile.Compile

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let contains = Astring_contains.contains

let compiled_pingpong () = Compile.compile ~name:"pingpong" (P_examples_lib.Pingpong.program ())

let test_lower_event_table () =
  let { Compile.driver; _ } = compiled_pingpong () in
  check int_t "events" 4 (Array.length driver.dr_events);
  check bool_t "Ping has int payload" true
    (Array.exists (fun (n, ty) -> n = "Ping" && ty = P_syntax.Ptype.Int) driver.dr_events);
  check bool_t "event id lookup" true (Tables.event_id_of_name driver "Pong" <> None);
  check bool_t "unknown event" true (Tables.event_id_of_name driver "Nope" = None)

let test_lower_machine_tables () =
  let { Compile.driver; _ } = compiled_pingpong () in
  check int_t "machines" 2 (Array.length driver.dr_machines);
  let pinger = driver.dr_machines.(Option.get (Tables.machine_ty_of_name driver "Pinger")) in
  check string_t "name" "Pinger" pinger.mt_name;
  check int_t "vars" 3 (Array.length pinger.mt_vars);
  check bool_t "states nonempty" true (Array.length pinger.mt_states >= 4);
  check string_t "initial first" "Init" pinger.mt_states.(0).st_name;
  (* transition tables are event-indexed *)
  Array.iter
    (fun (st : Tables.state_table) ->
      check int_t "deferred width" (Array.length driver.dr_events) (Array.length st.st_deferred);
      check int_t "steps width" (Array.length driver.dr_events) (Array.length st.st_steps))
    pinger.mt_states

let test_lower_ghost_erased () =
  let { Compile.erased; driver } = Compile.compile (P_examples_lib.Elevator.program ()) in
  check bool_t "no ghost machines" true
    (List.for_all (fun (m : P_syntax.Ast.machine) -> not m.machine_ghost) erased.machines);
  check int_t "only the elevator remains" 1 (Array.length driver.dr_machines);
  check bool_t "main is the real machine" true
    (driver.dr_main = Tables.machine_ty_of_name driver "Elevator")

let test_lower_rejects_surviving_ghost () =
  (* calling the lowerer directly on an unerased program must fail *)
  match P_compile.Lower.lower (P_examples_lib.Elevator.program ()) with
  | exception P_compile.Lower.Not_compilable _ -> ()
  | _ -> Alcotest.fail "lowering a ghost machine should fail"

let test_code_size_metric () =
  let open Tables in
  let c = CSeq (CSkip, CIf (CBool true, CSkip, CSeq (CSkip, CDelete))) in
  check int_t "code size" 5 (code_size c);
  let { Compile.driver; _ } = compiled_pingpong () in
  check bool_t "driver size positive" true (driver_size driver > 10)

let test_new_initializers_target_namespace () =
  (* Pinger creates Ponger with initializer client = this; the lowered var id
     must index Ponger's variable table (where client is var 0), not
     Pinger's *)
  let { Compile.driver; _ } = compiled_pingpong () in
  let pinger = driver.dr_machines.(Option.get (Tables.machine_ty_of_name driver "Pinger")) in
  let found = ref false in
  let rec scan (c : Tables.code) =
    match c with
    | Tables.CNew (_, ty, inits) ->
      let target = driver.dr_machines.(ty) in
      check string_t "target type" "Ponger" target.mt_name;
      List.iter
        (fun (y, _) -> check string_t "initializes client" "client" (fst target.mt_vars.(y)))
        inits;
      found := true
    | Tables.CSeq (a, b) | Tables.CIf (_, a, b) ->
      scan a;
      scan b
    | Tables.CWhile (_, b) -> scan b
    | _ -> ()
  in
  Array.iter (fun (st : Tables.state_table) -> scan st.st_entry) pinger.mt_states;
  check bool_t "found the new" true !found

(* ---------------- C emission ---------------- *)

let test_c_emission_shape () =
  let c = Compile.to_c ~name:"pp" (P_examples_lib.Pingpong.program ()) in
  List.iter
    (fun frag ->
      if not (contains c frag) then Alcotest.failf "generated C lacks %S" frag)
    [ "#include \"p_runtime.h\"";
      "P_EVENT_Ping = 0";
      "P_EVENT_COUNT = 4";
      "P_MACHINE_Pinger";
      "P_STATE_Pinger_Init = 0";
      "static void P_ENTRY_Pinger_Init(PRT_SM_CONTEXT *ctx)";
      "static void P_EXIT_Pinger_Init(PRT_SM_CONTEXT *ctx)";
      "PrtRtSend(ctx,";
      "PrtRtRaise(ctx,";
      ".deferred =";
      ".entry = P_ENTRY_Pinger_Init";
      "const PRT_DRIVER_DECL P_DRIVER";
      ".main_machine = P_MACHINE_Pinger" ]

let test_c_emission_foreign_prototypes () =
  let c = Compile.to_c (P_examples_lib.Switch_led.program ()) in
  check bool_t "extern prototype with void* first arg" true
    (contains c "extern PRT_VALUE set_led(void *external_memory, PRT_VALUE);");
  check bool_t "call passes context memory" true (contains c "set_led(PrtGetContext(ctx)")

let test_c_emission_deferred_bitmap () =
  let c = Compile.to_c (P_examples_lib.Elevator.program ()) in
  (* Closed defers CloseDoor (event id 3): bit 3 = 0x8 *)
  check bool_t "deferred bitmap emitted" true (contains c "0x00000008")

let test_c_emission_deterministic () =
  let c1 = Compile.to_c (P_examples_lib.German.program ()) in
  let c2 = Compile.to_c (P_examples_lib.German.program ()) in
  check bool_t "same output" true (String.equal c1 c2)

let test_compile_rejects_ill_typed () =
  let p =
    P_parser.Parser.program_of_string
      "event e;\nmachine M { var x : bool; state S { entry { x := 1; } } }\nmain M();"
  in
  match Compile.compile p with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "compile must reject statically invalid programs"

let suite =
  [ Alcotest.test_case "event table" `Quick test_lower_event_table;
    Alcotest.test_case "machine tables" `Quick test_lower_machine_tables;
    Alcotest.test_case "ghost erased" `Quick test_lower_ghost_erased;
    Alcotest.test_case "lower rejects ghost" `Quick test_lower_rejects_surviving_ghost;
    Alcotest.test_case "code size" `Quick test_code_size_metric;
    Alcotest.test_case "new initializers" `Quick test_new_initializers_target_namespace;
    Alcotest.test_case "C shape" `Quick test_c_emission_shape;
    Alcotest.test_case "C foreign prototypes" `Quick test_c_emission_foreign_prototypes;
    Alcotest.test_case "C deferred bitmap" `Quick test_c_emission_deferred_bitmap;
    Alcotest.test_case "C deterministic" `Quick test_c_emission_deterministic;
    Alcotest.test_case "compile rejects ill-typed" `Quick test_compile_rejects_ill_typed ]
