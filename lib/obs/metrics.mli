(** Metrics registry: named counters, gauges, and histograms with labels,
    sharded per domain.

    Updates touch only the calling domain's private cell (no lock after the
    first update from that domain), so instrumenting the parallel explorer
    adds no contention. Reads merge the shards: counters and histograms sum;
    gauges take the maximum, making them high-water marks — the only gauge
    semantics that merges meaningfully without coordination, and exactly
    what queue-depth tracking wants. Reads are exact once writer domains
    have joined, and monotonically slightly stale while they still run. *)

type t
(** A registry. Independent registries share nothing. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find-or-register; idempotent per (name, labels). Resolve handles once
    at engine entry, then update through the handle on the hot path. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds in increasing order (default
    {!default_buckets}); an overflow bucket is added automatically. *)

val default_buckets : float array
(** Seconds-scale latency buckets, 1µs … 10s. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on negative [n]: counters only go up. *)

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Record a high-water mark: keep the maximum of the old and new value. *)

val observe : histogram -> float -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
(** Maximum across shards; [0.0] when never set. *)

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;  (** largest observation; [nan] when empty *)
  h_buckets : (float * int) list;
      (** (upper bound, count), non-cumulative; last bound is [infinity] *)
}

val histogram_summary : histogram -> histogram_summary

val shard_count : counter -> int
(** How many domains have written to this metric (for tests). *)

val counter_per_domain : counter -> int list
(** One entry per writing domain, in first-write order: the un-merged
    shard values whose sum is {!counter_value}. Lets the scaling bench and tests
    see how work (steals, expansions) distributed across the parallel
    engine's workers. Exact once the writing domains have joined. *)

type summary =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_summary

val snapshot : t -> (string * (string * string) list * summary) list
(** Every metric, sorted by (name, labels), merged across shards. *)

val dump : t -> Json.t
(** The snapshot as a JSON array of metric objects. *)

val counter_total : t -> string -> int
(** Sum of a counter across all its label sets; 0 when absent. *)

val gauge_max : t -> string -> float
(** Maximum of a gauge across all its label sets (the gauge merge rule);
    [0.0] when absent. *)
