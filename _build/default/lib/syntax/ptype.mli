(** The type language of core P (Figure 3): [void | bool | int | event |
    id], plus [byte] from the prose of section 3. *)

type t =
  | Void  (** the payload type of events that carry no data *)
  | Bool
  | Int
  | Byte  (** 8-bit unsigned integer with wraparound arithmetic *)
  | Event  (** an event name used as a first-class value *)
  | Machine_id  (** the [id] type: a reference to a machine instance *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : t Fmt.t

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on unknown type names. *)

val assignable : from:t -> into:t -> bool
(** [assignable ~from ~into] holds when a value of type [from] may be
    stored in a location of type [into]: identical types, [Void] (the null
    payload, which inhabits every type) into anything, and [Byte]/[Int]
    interchange. *)
