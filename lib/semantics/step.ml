(** The small-step operational semantics of P (Figures 4, 5, and 6).

    The unit of execution exposed here is the *atomic block* used by the
    systematic-testing reduction of section 5: a machine runs from one
    scheduling point to the next, where scheduling points are exactly the
    [send] and [new] operations (receiving is a right mover, so no context
    switch is needed after a dequeue). Within a block the machine is
    deterministic except for the ghost [*] expression, whose outcomes are
    supplied by an explicit choice list so that a caller can enumerate them.

    One deliberate generalization of the literal rules: Figure 5 inserts the
    exit statement of the *current* state when a raised or dequeued event
    will step or pop, but says nothing about the exits of further frames
    popped while an unhandled event propagates (rule POP1). We execute the
    exit statement of every state that is popped or stepped away from, which
    matches the prose ("the exit function of a state n is executed either
    when a step transition out of n is taken or n is popped") and reduces to
    the literal rules when pops are single-level. *)

open P_syntax
module Symtab = P_static.Symtab

type yield_reason =
  | Sent of { target : Mid.t; event : Names.Event.t }
  | Created of Mid.t

(** Result of running one atomic block of one machine. *)
type outcome =
  | Progress of Config.t * yield_reason  (** reached a scheduling point *)
  | Blocked of Config.t
      (** agenda drained and no dequeuable event; the machine is disabled
          (though possibly after making local progress) *)
  | Terminated of Config.t  (** the machine executed [delete] *)
  | Failed of Errors.t  (** an error configuration of Figure 6 was reached *)
  | Need_more_choices
      (** a ghost [*] was evaluated beyond the supplied choice list; re-run
          from the same configuration with the list extended *)

let outcome_config = function
  | Progress (config, _) | Blocked config | Terminated config -> Some config
  | Failed _ | Need_more_choices -> None

exception Choice_exhausted
exception Eval_failure of string * Loc.t
exception Machine_failure of Errors.kind

type oracle = { mutable remaining : bool list }

let nondet oracle =
  match oracle.remaining with
  | [] -> raise Choice_exhausted
  | b :: rest ->
    oracle.remaining <- rest;
    b

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval tab (mi : Symtab.machine_info) (m : Machine.t) oracle (expr : Ast.expr) :
    Value.t =
  match expr.e with
  | Ast.This -> Value.Machine m.self
  | Ast.Msg -> (
    match m.msg with Some e -> Value.Event e | None -> Value.Null)
  | Ast.Arg -> m.arg
  | Ast.Null -> Value.Null
  | Ast.Bool_lit b -> Value.Bool b
  | Ast.Int_lit i -> Value.Int i
  | Ast.Event_lit e -> Value.Event e
  | Ast.Var x -> (
    match Names.Var.Map.find_opt x m.store with
    | Some v -> v
    | None -> Value.Null (* uninitialized reads yield ⊥ *))
  | Ast.Nondet -> Value.Bool (nondet oracle)
  | Ast.Unop (op, a) -> (
    match Value.unop op (eval tab mi m oracle a) with
    | Value.Ok v -> v
    | Value.Type_error msg -> raise (Eval_failure (msg, expr.eloc)))
  | Ast.Binop (op, a, b) -> (
    let va = eval tab mi m oracle a in
    let vb = eval tab mi m oracle b in
    match Value.binop op va vb with
    | Value.Ok v -> v
    | Value.Type_error msg -> raise (Eval_failure (msg, expr.eloc)))
  | Ast.Foreign_call (f, args) -> (
    (* arguments are evaluated for their value even though the model may
       ignore them, mirroring call-by-value of the real C function *)
    let _ = List.map (eval tab mi m oracle) args in
    match Symtab.foreign_decl mi f with
    | Some { Ast.foreign_model = Some model; _ } -> eval tab mi m oracle model
    | Some _ | None -> Value.Null)

(** Truth of a branch condition; a non-boolean (including [⊥]) leaves the
    machine without an applicable rule, which we surface as an error. *)
let eval_bool tab mi m oracle (expr : Ast.expr) =
  match Value.truth (eval tab mi m oracle expr) with
  | Some b -> b
  | None ->
    raise (Eval_failure ("branch condition is not a boolean (is it null?)", expr.eloc))

(* [coerce_for_var]: byte-typed variables wrap modulo 256 on store. *)
let coerce_for_var (mi : Symtab.machine_info) x (v : Value.t) =
  match (Symtab.var_decl mi x, v) with
  | Some { Ast.var_type = Ptype.Byte; _ }, Value.Int i -> Value.Int (i land 0xff)
  | _ -> v

(* ------------------------------------------------------------------ *)
(* Event handling: the dynamic raise(e, v) of Figure 5                 *)
(* ------------------------------------------------------------------ *)

(* The CALL rule's handler map for a pushed frame:
   a'(e) = ⊥          if Trans(m,n,e) defined
         | Action(..) if an action is bound to e in n
         | T          if e ∈ Deferred(m,n)
         | a(e)       otherwise. *)
let push_amap tab (mi : Symtab.machine_info) state (amap : Machine.handler Names.Event.Map.t) =
  List.fold_left
    (fun acc e ->
      if Symtab.trans_defined mi state e then Names.Event.Map.remove e acc
      else
        match Symtab.bound_action mi state e with
        | Some a -> Names.Event.Map.add e (Machine.Do a) acc
        | None ->
          if Names.Event.Set.mem e (Symtab.deferred_set mi state) then
            Names.Event.Map.add e Machine.Defer acc
          else acc (* inherit a(e) *))
    amap tab.Symtab.event_universe

(* Resolve a dynamic raise at the top frame into the next agenda. [emit]
   reports the state entered by a call transition (step targets are reported
   when their Enter task runs). *)
let handle_event ?(emit = fun (_ : Trace.item) -> ()) tab (mi : Symtab.machine_info)
    (m : Machine.t) event payload : Machine.t =
  match m.frames with
  | [] -> raise (Machine_failure (Errors.Unhandled_event event))
  | frame :: below -> (
    let n = frame.fr_state in
    let exit = Symtab.exit_stmt mi n in
    match Symtab.step_target mi n event with
    | Some n' ->
      (* STEP: run Exit(n), then enter n' keeping the inherited map *)
      { m with agenda = [ Machine.Exec exit; Machine.Enter n' ] }
    | None -> (
      match Symtab.call_target mi n event with
      | Some n' ->
        (* CALL: push (n', a'); no exit, the call does not leave n *)
        let amap' = push_amap tab mi n frame.fr_amap in
        let frame' =
          { Machine.fr_state = n'; fr_amap = amap'; fr_cont = [] }
        in
        emit (Trace.Entered { mid = m.self; state = n' });
        { m with
          frames = frame' :: frame :: below;
          agenda = [ Machine.Exec (Symtab.entry_stmt mi n') ] }
      | None -> (
        (* ACTION: a binding on the current state overrides the inherited
           map; either way the machine stays in n *)
        let action =
          match Symtab.bound_action mi n event with
          | Some a -> Some a
          | None -> (
            match Names.Event.Map.find_opt event frame.fr_amap with
            | Some (Machine.Do a) -> Some a
            | Some Machine.Defer | None -> None)
        in
        match action with
        | Some a -> (
          match Symtab.action_stmt mi a with
          | Some body -> { m with agenda = [ Machine.Exec body ] }
          | None -> raise (Machine_failure (Errors.Unhandled_event event)))
        | None ->
          (* POP1: run Exit(n), pop, re-raise in the caller. The popped
             frame's saved continuation is discarded: an unhandled event
             aborts a [call]-statement subroutine. *)
          { m with
            agenda =
              [ Machine.Exec exit; Machine.Pop_frame; Machine.Handle (event, payload) ]
          })))

(* ------------------------------------------------------------------ *)
(* One atomic block                                                    *)
(* ------------------------------------------------------------------ *)

(* Crash-restart: control returns to the entry handler of the initial state
   with an empty queue and no message in flight, but the persistent store
   survives — the machine recovers from its last committed state. *)
let restart (mi : Symtab.machine_info) (m : Machine.t) : Machine.t =
  Machine.create ~name:m.name ~self:m.self ~initial:mi.m_initial
    ~entry:(Symtab.entry_stmt mi mi.m_initial) ~store:m.store

(* Execute tasks of machine [mid] until a scheduling point, quiescence,
   termination, or an error. [trace] accumulates happenings in reverse.

   Fault injection ([?faults]) threads the fault-point counter through
   [Config.fseq]: each fault point (block start, send, dequeue) consumes
   exactly one index whether or not a fault fires, so the decision sequence
   is a pure function of the schedule prefix — independent of exploration
   order and domain count, and stable across the [Need_more_choices] retry
   loop (which re-runs from the same configuration). *)
let run_atomic ?(fuel = 100_000) ?(dedup = true) ?faults (tab : Symtab.t)
    (config : Config.t) (mid : Mid.t) ~(choices : bool list) :
    outcome * Trace.item list =
  let faults =
    match faults with Some p when not (Fault.is_none p) -> Some p | _ -> None
  in
  let oracle = { remaining = choices } in
  let trace = ref [] in
  let emit item = trace := item :: !trace in
  (* Consume one fault index; when faults are off the counter never moves,
     so fault-free digests are byte-compatible with older artifacts. *)
  let fault_point config =
    match faults with
    | None -> (config, None)
    | Some plan ->
      let index = config.Config.fseq in
      ({ config with Config.fseq = index + 1 }, Some (plan, index))
  in
  let fail name kind = Failed { Errors.machine = name; mid; kind } in
  (* Brent's cycle detection over the machine's local configuration: a saved
     snapshot is compared against every subsequent microstep, and re-snapshot
     at exponentially growing intervals. A machine looping through private
     operations (no scheduling point) must repeat a local configuration and
     is caught with O(1) work per microstep. *)
  let rec loop (config : Config.t) fuel (snapshot, steps, next_snap) =
    match Config.find config mid with
    | None -> invalid_arg "Step.run_atomic: machine does not exist"
    | Some m -> (
      let mi = Symtab.machine_info_exn tab m.name in
      if fuel <= 0 then (fail m.name Errors.Fuel_exhausted, List.rev !trace)
      else if (match snapshot with Some s -> Machine.equal m s | None -> false) then
        (fail m.name Errors.Livelock, List.rev !trace)
      else
        let seen =
          if steps >= next_snap then (Some m, steps + 1, next_snap * 2)
          else (snapshot, steps + 1, next_snap)
        in
        match m.agenda with
        | [] -> (
          (* DEQUEUE: scan past deferred events *)
          let deferred = Machine.effective_deferred mi m in
          if not (Equeue.has_dequeuable ~deferred m.queue) then
            (Blocked config, List.rev !trace)
          else
            (* fault point: the delay fault delivers the second dequeuable
               event instead of the first *)
            let config, decision = fault_point config in
            let delayed =
              match decision with
              | None -> false
              | Some (plan, index) -> Fault.on_dequeue plan ~index
            in
            let dequeue =
              if delayed then Equeue.dequeue_second else Equeue.dequeue_first
            in
            match dequeue ~deferred m.queue with
            | None -> assert false (* has_dequeuable checked above *)
            | Some (entry, rest) ->
              if delayed then emit (Trace.Faulted { mid; fault = "delay" });
              emit
                (Trace.Dequeued { mid; event = entry.event; payload = entry.payload });
              let m =
                { m with
                  queue = rest;
                  msg = Some entry.event;
                  arg = entry.payload;
                  agenda = [ Machine.Handle (entry.event, entry.payload) ] }
              in
              loop (Config.update config mid m) (fuel - 1) seen)
        | task :: rest -> (
          match exec_task config mi m task rest with
          | `Continue config -> loop config (fuel - 1) seen
          | `Yield (config, reason) -> (Progress (config, reason), List.rev !trace)
          | `Terminated config -> (Terminated config, List.rev !trace)
          | `Failed (name, kind) -> (fail name kind, List.rev !trace)))
  and exec_task config (mi : Symtab.machine_info) (m : Machine.t) task rest =
    let continue m' = `Continue (Config.update config mid m') in
    try
      match task with
      | Machine.Handle (event, payload) ->
        emit (Trace.Raised { mid; event });
        continue (handle_event ~emit tab mi m event payload)
      | Machine.Pop_frame -> (
        match m.frames with
        | [] -> `Failed (m.name, Errors.Stack_underflow)
        | _ :: below ->
          emit
            (Trace.Popped
               { mid;
                 state =
                   (match below with [] -> None | f :: _ -> Some f.Machine.fr_state) });
          continue { m with frames = below; agenda = rest })
      | Machine.Pop_return -> (
        match m.frames with
        | [] | [ _ ] -> `Failed (m.name, Errors.Stack_underflow)
        | frame :: below ->
          emit
            (Trace.Popped
               { mid;
                 state =
                   (match below with [] -> None | f :: _ -> Some f.Machine.fr_state) });
          (* POP2: resume the continuation saved when the frame was pushed *)
          continue { m with frames = below; agenda = frame.fr_cont })
      | Machine.Enter n' -> (
        match m.frames with
        | [] -> `Failed (m.name, Errors.Stack_underflow)
        | frame :: below ->
          emit (Trace.Entered { mid; state = n' });
          let frame' = { frame with Machine.fr_state = n' } in
          continue
            { m with
              frames = frame' :: below;
              agenda = Machine.Exec (Symtab.entry_stmt mi n') :: rest })
      | Machine.Exec stmt -> exec_stmt config mi m stmt rest
    with
    | Eval_failure (msg, loc) -> `Failed (m.name, Errors.Eval_error (msg, loc))
    | Machine_failure kind -> `Failed (m.name, kind)
  and exec_stmt config (mi : Symtab.machine_info) (m : Machine.t) (stmt : Ast.stmt) rest
      =
    let continue m' = `Continue (Config.update config mid m') in
    match stmt.s with
    | Ast.Skip -> continue { m with agenda = rest }
    | Ast.Seq (a, b) ->
      continue { m with agenda = Machine.Exec a :: Machine.Exec b :: rest }
    | Ast.Assign (x, e) ->
      let v = coerce_for_var mi x (eval tab mi m oracle e) in
      continue { m with store = Names.Var.Map.add x v m.store; agenda = rest }
    | Ast.If (c, t, f) ->
      let branch = if eval_bool tab mi m oracle c then t else f in
      continue { m with agenda = Machine.Exec branch :: rest }
    | Ast.While (c, body) ->
      if eval_bool tab mi m oracle c then
        continue { m with agenda = Machine.Exec body :: Machine.Exec stmt :: rest }
      else continue { m with agenda = rest }
    | Ast.Assert e ->
      if eval_bool tab mi m oracle e then continue { m with agenda = rest }
      else `Failed (m.name, Errors.Assert_failure stmt.sloc)
    | Ast.New (x, kind, inits) -> (
      match Symtab.machine_info tab kind with
      | None ->
        `Failed (m.name, Errors.Eval_error ("new of unknown machine", stmt.sloc))
      | Some target_mi ->
        (* initializers are evaluated in the creating machine's store *)
        let init_values =
          List.map (fun (y, e) -> (y, eval tab mi m oracle e)) inits
        in
        let config = Config.update config mid m in
        let id', config = Config.alloc config in
        let store =
          List.fold_left
            (fun acc (vd : Ast.var_decl) -> Names.Var.Map.add vd.var_name Value.Null acc)
            Names.Var.Map.empty target_mi.m_ast.vars
        in
        let store =
          List.fold_left
            (fun acc (y, v) -> Names.Var.Map.add y (coerce_for_var target_mi y v) acc)
            store init_values
        in
        let created =
          Machine.create ~name:kind ~self:id' ~initial:target_mi.m_initial
            ~entry:(Symtab.entry_stmt target_mi target_mi.m_initial)
            ~store
        in
        let m' =
          { m with
            store = Names.Var.Map.add x (Value.Machine id') m.store;
            agenda = rest }
        in
        let config = Config.update (Config.update config id' created) mid m' in
        emit (Trace.Created { creator = Some mid; created = id'; kind });
        `Yield (config, Created id'))
    | Ast.Delete ->
      emit (Trace.Deleted { mid });
      `Terminated (Config.remove config mid)
    | Ast.Send (target, event, payload) -> (
      match eval tab mi m oracle target with
      | Value.Null -> `Failed (m.name, Errors.Send_to_null stmt.sloc)
      | Value.Machine dst -> (
        let v = eval tab mi m oracle payload in
        let config = Config.update config mid { m with agenda = rest } in
        match Config.find config dst with
        | None -> `Failed (m.name, Errors.Send_to_deleted (dst, stmt.sloc))
        | Some target_m ->
          (* [dedup = false] disables the ⊕ operator for the ablation study *)
          let append = if dedup then Equeue.append else Equeue.append_no_dedup in
          (* fault point: the channel may drop, duplicate, or reorder *)
          let config, decision = fault_point config in
          let send_fault =
            match decision with
            | None -> Fault.Deliver
            | Some (plan, index) -> Fault.on_send plan ~index
          in
          emit (Trace.Sent { src = mid; dst; event; payload = v });
          let queue =
            match send_fault with
            | Fault.Deliver -> append target_m.queue event v
            | Fault.Drop ->
              emit (Trace.Faulted { mid = dst; fault = "drop" });
              target_m.queue
            | Fault.Duplicate ->
              emit (Trace.Faulted { mid = dst; fault = "dup" });
              Equeue.append_no_dedup (append target_m.queue event v) event v
            | Fault.Reorder ->
              emit (Trace.Faulted { mid = dst; fault = "reorder" });
              Equeue.push_front target_m.queue event v
          in
          let target_m = { target_m with queue } in
          `Yield (Config.update config dst target_m, Sent { target = dst; event }))
      | _ ->
        `Failed
          (m.name, Errors.Eval_error ("send target is not a machine id", stmt.sloc)))
    | Ast.Raise (event, payload) ->
      let v = eval tab mi m oracle payload in
      (* raise terminates the remaining statement: [rest] is discarded *)
      continue
        { m with
          msg = Some event;
          arg = v;
          agenda = [ Machine.Handle (event, v) ] }
    | Ast.Leave -> continue { m with agenda = [] }
    | Ast.Return -> (
      match Machine.current_state m with
      | None -> `Failed (m.name, Errors.Stack_underflow)
      | Some n ->
        continue
          { m with
            agenda = [ Machine.Exec (Symtab.exit_stmt mi n); Machine.Pop_return ] })
    | Ast.Call_state n' -> (
      match m.frames with
      | [] -> `Failed (m.name, Errors.Stack_underflow)
      | frame :: _ ->
        let amap' = push_amap tab mi frame.fr_state frame.fr_amap in
        let frame' = { Machine.fr_state = n'; fr_amap = amap'; fr_cont = rest } in
        emit (Trace.Entered { mid; state = n' });
        continue
          { m with
            frames = frame' :: m.frames;
            agenda = [ Machine.Exec (Symtab.entry_stmt mi n') ] })
    | Ast.Foreign_stmt (f, args) ->
      let _ = List.map (eval tab mi m oracle) args in
      ignore f;
      continue { m with agenda = rest }
  in
  (* fault point: crash-restart the machine before it runs this block. The
     decision depends only on [config.fseq], so the [Need_more_choices]
     retry (same configuration, longer choice list) replays it exactly. *)
  let config =
    match (faults, Config.find config mid) with
    | Some _, Some m ->
      let config, decision = fault_point config in
      let crashed =
        match decision with
        | None -> false
        | Some (plan, index) -> Fault.on_block_start plan ~index
      in
      if crashed then (
        emit (Trace.Faulted { mid; fault = "crash" });
        let mi = Symtab.machine_info_exn tab m.Machine.name in
        Config.update config mid (restart mi m))
      else config
    | _ -> config
  in
  try loop config fuel (None, 0, 16)
  with Choice_exhausted -> (Need_more_choices, [])

(* ------------------------------------------------------------------ *)
(* Program initialization                                              *)
(* ------------------------------------------------------------------ *)

(** The initial configuration: a single instance of the program's main
    machine with an empty input queue, about to run the entry statement of
    its initial state. *)
let initial_config (tab : Symtab.t) : Config.t * Mid.t * Trace.item list =
  let program = tab.Symtab.program in
  let mi = Symtab.machine_info_exn tab program.main in
  let id0, config = Config.alloc Config.empty in
  let store =
    List.fold_left
      (fun acc (vd : Ast.var_decl) -> Names.Var.Map.add vd.var_name Value.Null acc)
      Names.Var.Map.empty mi.m_ast.vars
  in
  let store =
    List.fold_left
      (fun acc ((x, e) : Names.Var.t * Ast.expr) ->
        let v =
          match e.e with
          | Ast.Null -> Value.Null
          | Ast.Bool_lit b -> Value.Bool b
          | Ast.Int_lit i -> Value.Int i
          | Ast.Event_lit ev -> Value.Event ev
          | _ -> Value.Null (* rejected by Wellformed.check_main *)
        in
        Names.Var.Map.add x (coerce_for_var mi x v) acc)
      store program.main_init
  in
  let machine =
    Machine.create ~name:program.main ~self:id0 ~initial:mi.m_initial
      ~entry:(Symtab.entry_stmt mi mi.m_initial) ~store
  in
  ( Config.update config id0 machine,
    id0,
    [ Trace.Created { creator = None; created = id0; kind = program.main } ] )

(** [enabled tab config]: identifiers of machines that can take a step
    (the [en(m)] predicate of section 3.2). *)
let enabled tab (config : Config.t) : Mid.t list =
  Config.fold
    (fun id m acc ->
      let mi = Symtab.machine_info_exn tab m.Machine.name in
      if Machine.is_enabled mi m then id :: acc else acc)
    config []
  |> List.rev
