(* Property-based differential harness: ~200 seeded random P programs per
   runtest, each cross-checked three ways —

   - [Delay_bounded.explore] (the sequential reference) vs the
     work-stealing [Parallel.explore] at domains=1 and domains=N: verdicts
     and state counts must agree, the parallel transition counts must be
     identical to each other and at most the sequential one, and any
     parallel counterexample must be byte-identical to the sequential
     engine's (the deterministic re-derivation contract);
   - any counterexample's schedule through [Differential.run]: the
     checker's interpreter and the compiled table-driven runtime must fail
     in the same atomic block.

   Programs come from [Test_properties.gen_program_with] in four seeded
   families: {ghost-free, ghost-bearing} x {clean-by-construction,
   possibly-failing asserts} — the risky families are what exercises the
   counterexample paths. Every failure message leads with the program's
   seed; rerunning the harness reproduces it exactly (generation is keyed
   on the seed alone).

   N defaults to 4 and is overridden by PCAML_TEST_DOMAINS — the CI matrix
   runs the suite at 1 and 4. *)

open P_checker

let programs_per_family = 50
let base_seed = 0x5eed

(* The parallel engine's second domain count (the first is always 1). *)
let domains_under_test =
  match Option.bind (Sys.getenv_opt "PCAML_TEST_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 && n <= 128 -> n
  | Some _ | None -> 4

let gen_one ~ghost ~risky seed : P_syntax.Ast.program =
  let rand =
    Random.State.make
      [| base_seed; seed; (if ghost then 1 else 0); (if risky then 1 else 0) |]
  in
  QCheck2.Gen.generate1 ~rand (Test_properties.gen_program_with ~ghost ~risky ())

let failf seed fmt = Alcotest.failf ("seed %d: " ^^ fmt) seed

let verdict_kind (r : Search.result) =
  match r.verdict with Search.Error_found _ -> "error" | Search.No_error -> "clean"

let ce_of (r : Search.result) =
  match r.verdict with Search.Error_found ce -> Some ce | Search.No_error -> None

let check_program ~ghost ~risky seed =
  let p = gen_one ~ghost ~risky seed in
  let tab =
    match P_static.Check.run p with
    | { diagnostics = []; symtab } -> symtab
    | { diagnostics; _ } ->
      failf seed "generated program not statically clean: %a"
        P_static.Check.pp_diagnostics diagnostics
  in
  let max_states = 4_000 in
  let seq = Delay_bounded.explore ~delay_bound:1 ~max_states tab in
  let par1 = Parallel.explore ~domains:1 ~delay_bound:1 ~max_states tab in
  let parn =
    Parallel.explore ~domains:domains_under_test ~delay_bound:1 ~max_states tab
  in
  (* truncated runs are excluded from the count comparisons: the engines
     check the budget at different granularities (documented) *)
  if
    not
      (seq.stats.truncated || par1.stats.truncated || parn.stats.truncated)
  then begin
    if seq.stats.states <> par1.stats.states then
      failf seed "states: sequential %d <> parallel(1) %d" seq.stats.states
        par1.stats.states;
    if par1.stats.states <> parn.stats.states then
      failf seed "states: parallel(1) %d <> parallel(%d) %d" par1.stats.states
        domains_under_test parn.stats.states;
    if par1.stats.transitions <> parn.stats.transitions then
      failf seed "transitions: parallel(1) %d <> parallel(%d) %d"
        par1.stats.transitions domains_under_test parn.stats.transitions;
    if parn.stats.transitions > seq.stats.transitions then
      failf seed "transitions: parallel %d > sequential %d"
        parn.stats.transitions seq.stats.transitions;
    if verdict_kind seq <> verdict_kind par1 || verdict_kind par1 <> verdict_kind parn
    then
      failf seed "verdicts disagree: seq=%s par1=%s par%d=%s" (verdict_kind seq)
        (verdict_kind par1) domains_under_test (verdict_kind parn);
    match (ce_of seq, ce_of par1, ce_of parn) with
    | Some sce, Some ce1, Some cen ->
      (* parallel counterexamples are re-derived sequentially: identical to
         the sequential engine's at every domain count *)
      List.iter
        (fun (d, (ce : Search.counterexample)) ->
          if ce.depth <> sce.depth then
            failf seed "parallel(%d) ce depth %d <> sequential %d" d ce.depth
              sce.depth;
          if ce.error <> sce.error then
            failf seed "parallel(%d) ce error differs from sequential" d;
          if ce.schedule <> sce.schedule then
            failf seed "parallel(%d) ce schedule differs from sequential" d)
        [ (1, ce1); (domains_under_test, cen) ];
      (* interpreter vs compiled runtime on the failing schedule — except
         for livelock/fuel errors, which only the interpreter's cycle
         detector can produce: the table-driven runtime would execute the
         detected cycle of private operations forever *)
      (match sce.error.kind with
      | P_semantics.Errors.Livelock | P_semantics.Errors.Fuel_exhausted -> ()
      | _ -> (
        match Differential.run tab sce.schedule with
        | Error e -> failf seed "differential setup failed: %s" e
        | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
        | Ok o -> failf seed "differential replay: %a" Differential.pp_outcome o))
    | None, None, None -> ()
    | _ -> () (* verdict kinds already compared above *)
  end

let family_case name ~ghost ~risky first_seed =
  Alcotest.test_case name `Quick (fun () ->
      for i = 0 to programs_per_family - 1 do
        check_program ~ghost ~risky (first_seed + i)
      done)

let suite =
  [ family_case "ghost-free clean" ~ghost:false ~risky:false 1_000;
    family_case "ghost-free risky" ~ghost:false ~risky:true 2_000;
    family_case "ghost-bearing clean" ~ghost:true ~risky:false 3_000;
    family_case "ghost-bearing risky" ~ghost:true ~risky:true 4_000 ]
