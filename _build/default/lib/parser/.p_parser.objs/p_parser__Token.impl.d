lib/parser/token.ml: List Printf
