// The elevator case study of section 2 of the paper (Figures 1 and 2), in
// concrete P syntax. This file is generated from lib/examples_lib/elevator.ml
// (`pc print --example elevator`) and kept in sync by the test suite.
//
// Verify:   dune exec bin/pc.exe -- verify examples/p/elevator.p -d 3
// Simulate: dune exec bin/pc.exe -- simulate examples/p/elevator.p --seed 7 --trace
// Diagram:  dune exec bin/pc.exe -- graph examples/p/elevator.p --machine Elevator

event unit;
event StopTimerReturned;
event OpenDoor;
event CloseDoor;
event DoorOpened;
event DoorClosed;
event DoorStopped;
event ObjectDetected;
event TimerFired;
event TimerStopped;
event SendCmdToOpen;
event SendCmdToClose;
event SendCmdToStop;
event SendCmdToReset;
event StartTimer;
event StopTimer;
ghost machine User {
  var elevator : id;
  state Init {
    entry {
      elevator := new Elevator();
      raise(unit);
    }
  }
  state Loop {
    entry {
      if (*) {
        send(elevator, OpenDoor);
      } else {
        send(elevator, CloseDoor);
      }
      raise(unit);
    }
  }
  step (Init, unit, Loop);
  step (Loop, unit, Loop);
}
machine Elevator {
  ghost var TimerV : id;
  ghost var DoorV : id;
  action Ignore {
    skip;
  }
  state Init {
    entry {
      TimerV := null;
      TimerV := new Timer(client = this);
      DoorV := new Door(client = this);
      raise(unit);
    }
  }
  state Closed {
    defer CloseDoor;
    postpone CloseDoor;
    entry {
      send(DoorV, SendCmdToReset);
    }
  }
  state Opening {
    defer CloseDoor;
    entry {
      send(DoorV, SendCmdToOpen);
    }
  }
  state Opened {
    defer CloseDoor;
    postpone CloseDoor;
    entry {
      send(DoorV, SendCmdToReset);
      send(TimerV, StartTimer);
    }
  }
  state OkToClose {
    entry {
      send(DoorV, SendCmdToReset);
    }
  }
  state Closing {
    defer CloseDoor;
    postpone CloseDoor;
    entry {
      send(DoorV, SendCmdToClose);
    }
  }
  state StoppingDoor {
    defer CloseDoor;
    postpone CloseDoor;
    entry {
      send(DoorV, SendCmdToStop);
    }
  }
  state StoppingTimer {
    defer OpenDoor,
    CloseDoor,
    ObjectDetected;
    postpone CloseDoor;
    entry {
      send(TimerV, StopTimer);
      raise(unit);
    }
  }
  state WaitingForTimer {
    defer OpenDoor,
    CloseDoor,
    ObjectDetected;
    postpone CloseDoor;
  }
  state ReturnState {
    entry {
      raise(StopTimerReturned);
    }
  }
  step (Init, unit, Closed);
  step (Closed, OpenDoor, Opening);
  step (Opening, DoorOpened, Opened);
  step (Opened, TimerFired, OkToClose);
  step (Opened, StopTimerReturned, Opened);
  step (OkToClose, StopTimerReturned, Closing);
  step (OkToClose, OpenDoor, Opened);
  step (Closing, DoorClosed, Closed);
  step (Closing, ObjectDetected, Opening);
  step (Closing, OpenDoor, StoppingDoor);
  step (StoppingDoor, DoorStopped, Opening);
  step (StoppingDoor, DoorClosed, Closed);
  step (StoppingDoor, ObjectDetected, Opening);
  step (StoppingTimer, unit, WaitingForTimer);
  step (WaitingForTimer, TimerFired, ReturnState);
  step (WaitingForTimer, TimerStopped, ReturnState);
  push (Opened, OpenDoor, StoppingTimer);
  push (OkToClose, CloseDoor, StoppingTimer);
  on (Opening, OpenDoor) do Ignore;
  on (StoppingDoor, OpenDoor) do Ignore;
  on (Closed, DoorStopped) do Ignore;
  on (Closed, TimerStopped) do Ignore;
  on (Opening, TimerStopped) do Ignore;
  on (Opening, DoorStopped) do Ignore;
  on (Opening, TimerFired) do Ignore;
  on (Opened, TimerStopped) do Ignore;
  on (OkToClose, TimerStopped) do Ignore;
  on (OkToClose, TimerFired) do Ignore;
  on (Closed, TimerFired) do Ignore;
  on (Closing, TimerFired) do Ignore;
  on (Closing, TimerStopped) do Ignore;
  on (StoppingDoor, TimerFired) do Ignore;
  on (StoppingDoor, TimerStopped) do Ignore;
}
ghost machine Door {
  var client : id;
  action Ignore {
    skip;
  }
  state Init {
  }
  state OpeningDoor {
    entry {
      send(client, DoorOpened);
      raise(unit);
    }
  }
  state ConsiderClosing {
    entry {
      if (*) {
        if (*) {
          send(client, ObjectDetected);
        } else {
          send(client, DoorClosed);
        }
        raise(unit);
      }
    }
  }
  state StoppingDoorNow {
    entry {
      send(client, DoorStopped);
      raise(unit);
    }
  }
  step (Init, SendCmdToOpen, OpeningDoor);
  step (Init, SendCmdToClose, ConsiderClosing);
  step (Init, SendCmdToStop, StoppingDoorNow);
  step (OpeningDoor, unit, Init);
  step (ConsiderClosing, unit, Init);
  step (ConsiderClosing, SendCmdToStop, StoppingDoorNow);
  step (ConsiderClosing, SendCmdToOpen, OpeningDoor);
  step (StoppingDoorNow, unit, Init);
  on (Init, SendCmdToReset) do Ignore;
  on (OpeningDoor, SendCmdToReset) do Ignore;
  on (ConsiderClosing, SendCmdToReset) do Ignore;
  on (ConsiderClosing, SendCmdToClose) do Ignore;
  on (StoppingDoorNow, SendCmdToReset) do Ignore;
}
ghost machine Timer {
  var client : id;
  state Init {
  }
  state TimerStarted {
    defer StartTimer;
    postpone StartTimer;
    entry {
      if (*) {
        raise(unit);
      }
    }
  }
  state FireTimer {
    entry {
      send(client, TimerFired);
      raise(unit);
    }
  }
  state AckStop {
    entry {
      send(client, TimerStopped);
      raise(unit);
    }
  }
  step (Init, StartTimer, TimerStarted);
  step (Init, StopTimer, AckStop);
  step (TimerStarted, unit, FireTimer);
  step (TimerStarted, StopTimer, AckStop);
  step (FireTimer, unit, Init);
  step (AckStop, unit, Init);
}
main User();
