(** N domain-pinned {!Sched} shards serving one machine population.

    Home shard = avalanche hash of the machine handle; handles come from
    one global atomic counter. Shard-local sends go straight into the
    local scheduler mailbox; only genuinely cross-shard sends ride the
    per-shard MPSC transfer queues (Treiber stacks of batches: one CAS
    per produced batch, one exchange per drain). Host {!post}s land in a
    separate per-shard ingress queue, so the transfer counters measure
    only shard-to-shard traffic — a single-shard run consumes zero
    transfer batches. Backpressure is two-level — a per-shard ingress
    bound ({!post} sheds synchronously) and per-mailbox capacity
    (asynchronous sheds, counted) — so memory stays bounded at any
    arrival rate. *)

module Tables = P_compile.Tables

type t

val create :
  ?shards:int ->
  ?policy:Sched.policy ->
  ?quantum:int ->
  ?capacity:int ->
  ?ingress_capacity:int ->
  ?batch:int ->
  ?fuel:int ->
  ?seed:int ->
  ?faults:P_semantics.Fault.plan ->
  ?metrics:P_obs.Metrics.t ->
  ?telemetry:P_obs.Telemetry.t ->
  Tables.driver ->
  t
(** Defaults: 1 shard, [Fifo] policy, unbounded mailboxes, 65536 in-flight
    transfer messages per shard, 32-message producer batches, 1024
    activations of loop fuel. [seed] enables ghost [*] resolution (shard
    [s] uses [seed + s]). [faults] turns every shard's scheduler into an
    adversarial host (see {!Sched.create}); shard [s] runs the plan under
    a decorrelated seed ([seed + (s+1) * 1_000_003]) so fault schedules
    don't align across shards. [metrics]/[telemetry] wire the shard loops
    into the observability stack ([runtime.sched_*]). *)

val exec_of : t -> int -> Exec.t
(** Shard [s]'s runtime, for introspection (instances live on their home
    shard only). *)

val home : t -> int -> int
(** The home shard of a machine handle (pure). *)

val register_foreign : t -> string -> Exec.foreign_fn -> unit
(** Register on every shard; the closure runs on owning-shard domains. *)

val register_foreign_per_shard : t -> string -> (int -> Exec.foreign_fn) -> unit
(** Like {!register_foreign} with a per-shard closure factory (shard-local
    accumulators need no synchronization). *)

val event_id : t -> string -> int
(** Resolve an event name once; {!post} takes the id. *)

val start : t -> unit
(** Spawn the shard domains. Call after {!create_machine} setup. *)

val create_machine : t -> string -> int
(** Create a machine pre-[start] (its entry runs when the shards start).
    After [start], machines are created by machine code ([new]). *)

val post : t -> int -> event:int -> Rt_value.t -> Context.backpressure
(** Post an event from the host into the target's home shard: [Queued],
    or synchronous [Shed] when that shard's transfer queue is full. *)

val quiesce : ?timeout_s:float -> t -> bool
(** Wait until every shard is idle with drained queues (or failure/stop);
    [false] on timeout. *)

type stats = {
  sh_shards : int;
  sh_machines : int;  (** live instances across shards *)
  sh_sends : int;  (** local (intra-shard) deliveries *)
  sh_spawns : int;
  sh_activations : int;
  sh_yields : int;
  sh_dequeues : int;  (** events processed *)
  sh_shed_mailbox : int;  (** drops at full bounded mailboxes *)
  sh_shed_ingress : int;  (** posts refused at full transfer queues *)
  sh_dead_letters : int;  (** sends to deleted machines *)
  sh_xfer_batches : int;  (** cross-shard batches consumed *)
  sh_xfer_msgs : int;  (** cross-shard messages consumed *)
  sh_ingress_batches : int;  (** host-post batches consumed *)
  sh_ingress_msgs : int;  (** host-post messages consumed *)
  sh_pending : int;  (** unreleased ingress/transfer slots; 0 once drained *)
  sh_fault_drops : int;  (** injected drops across shards *)
  sh_fault_dups : int;  (** injected duplications across shards *)
  sh_fault_reorders : int;  (** injected reorders across shards *)
  sh_crash_restarts : int;  (** injected crash-restarts across shards *)
}

val stats : t -> stats
(** Aggregate counters; exact once the domains have joined ({!stop}),
    slightly stale while they run. *)

val events_processed : t -> int
val shed_total : t -> int
val ready_total : t -> int
(** Cheap racy reads for telemetry probes and progress displays. *)

val stop : t -> stats
(** Stop and join the shard domains; returns final stats. Re-raises the
    first failure a shard hit ({!Exec.Runtime_error} from machine code,
    assertion failures, ...). *)
