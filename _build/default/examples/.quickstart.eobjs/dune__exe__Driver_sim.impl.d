examples/driver_sim.ml: Fmt P_examples_lib P_host
