(** Deterministic re-execution of recorded schedules through the
    operational semantics: the consumer side of {!Trace_file} and the
    validation core of {!Shrink}. *)

type divergence =
  | Init_digest_mismatch of { expected : string; got : string }
  | Step_digest_mismatch of { step : int; expected : string; got : string }
  | Unknown_machine of { step : int; mid : P_semantics.Mid.t }
  | Choices_exhausted of { step : int; mid : P_semantics.Mid.t }
  | Wrong_error of { step : int; expected : string; got : string }
  | Unexpected_error of { step : int; error : string }
  | No_error of { expected : string }
  | Final_digest_mismatch of { expected : string; got : string }
  | Bad_header of { reason : string }
      (** the artifact's header cannot be honoured (e.g. an unparseable
          fault spec) *)

val pp_divergence : divergence Fmt.t

type outcome =
  | Reproduced of { steps_used : int; error : string }
      (** the expected error re-occurred after [steps_used] atomic blocks
          (early reproduction — fewer steps than the schedule — counts) *)
  | Clean of { steps_used : int; final_digest : string }
  | Diverged of divergence

val pp_outcome : outcome Fmt.t

type result = {
  outcome : outcome;
  items : P_semantics.Trace.t;
      (** chronological happenings of the whole replay *)
  final_config : P_semantics.Config.t option;
      (** the last configuration that exists: after the final block of a
          clean replay, or entering the failing block *)
}

val run_schedule :
  ?dedup:bool ->
  ?faults:P_semantics.Fault.plan ->
  ?check_step:(int -> P_semantics.Config.t -> divergence option) ->
  ?expected_error:string option ->
  P_static.Symtab.t ->
  (P_semantics.Mid.t * bool list) list ->
  result
(** Fold a schedule through {!P_semantics.Step.run_atomic} from the
    initial configuration. [check_step i config] may veto the successor
    configuration of step [i]; [expected_error] (rendered
    {!P_semantics.Errors.t}) makes reproduction of exactly that error the
    success criterion, [None] expects a clean run. [faults] re-installs a
    fault-injection plan; replaying a fault-recorded schedule without it
    (or with a different plan) diverges. *)

val reproduces :
  ?dedup:bool ->
  ?faults:P_semantics.Fault.plan ->
  P_static.Symtab.t ->
  expected_error:string ->
  (P_semantics.Mid.t * bool list) list ->
  int option
(** [Some steps_used] iff the schedule still reproduces [expected_error]
    — the {!Shrink} candidate test. *)

val schedule_of_trace : Trace_file.t -> (P_semantics.Mid.t * bool list) list

val run : ?check_digests:bool -> P_static.Symtab.t -> Trace_file.t -> result
(** Replay a trace artifact: re-execute its schedule and check the verdict
    — and, unless [check_digests:false], the initial, per-step, and final
    configuration fingerprints recorded in the artifact. A fault plan
    recorded in the artifact's header is re-installed automatically, so
    fault-induced counterexamples replay byte-identically. *)

val record :
  ?program:string ->
  ?seed:int ->
  ?faults:P_semantics.Fault.plan ->
  ?dedup:bool ->
  engine:string ->
  P_static.Symtab.t ->
  (P_semantics.Mid.t * bool list) list ->
  (Trace_file.t, string) Stdlib.result
(** Execute a schedule and record it as a trace artifact with per-step
    fingerprints. A failing run ends the artifact at the failing block and
    records the rendered error; a clean run records a clean trace.
    [faults] runs the schedule under that plan and stamps its spec and
    seed into the header (an all-zero plan is normalized away), so
    {!run} can re-install it. *)

val record_counterexample :
  ?program:string ->
  ?seed:int ->
  ?faults:P_semantics.Fault.plan ->
  ?dedup:bool ->
  engine:string ->
  P_static.Symtab.t ->
  Search.counterexample ->
  (Trace_file.t, string) Stdlib.result
(** {!record} on the schedule of an engine counterexample. *)

val sample_schedule :
  ?seed:int ->
  ?max_blocks:int ->
  ?dedup:bool ->
  ?faults:P_semantics.Fault.plan ->
  P_static.Symtab.t ->
  (P_semantics.Mid.t * bool list) list
(** One seeded random walk recorded as a schedule (random enabled machine,
    random ghost choices, until error / quiescence / [max_blocks],
    defaults seed 1, 200 blocks) — input material for replay, shrink, and
    differential tests. *)
