(** Depth-bounded systematic testing: the baseline bounding technique the
    paper contrasts with delay bounding (section 1: "the complexity of
    depth-bounded search increases exponentially with execution depth").

    At every scheduling point any enabled machine may run next — full
    scheduling nondeterminism — and exploration is cut at [depth_bound]
    atomic blocks. Unlike the delaying scheduler there is no stack
    discipline, so the branching factor is the number of enabled machines. *)

module Config = P_semantics.Config
module Step = P_semantics.Step
module Mid = P_semantics.Mid
module Trace = P_semantics.Trace
module Symtab = P_static.Symtab

type node = { config : Config.t; depth : int; trace_rev : Trace.item list }

exception Found of Search.counterexample

(** Explore every interleaving of at most [depth_bound] atomic blocks.
    Breadth-first so reported counterexamples are shortest. Keeping the
    trace on each node is affordable because depth-bounded frontiers are
    shallow by construction. *)
let explore ?(max_states = 1_000_000) ?(instr = Search.no_instr) ~depth_bound
    (tab : Symtab.t) : Search.result =
  let canon = Canon.create tab in
  let stats = Search.new_stats () in
  let seen = Hashtbl.create 4096 in
  let meters = Search.meters ~engine:"depth_bounded" instr in
  let ticker = Search.ticker instr stats in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let finish verdict =
    stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    Search.emit_run_span instr ~engine:"depth_bounded" ~t0_us ~stats
      [ ("depth_bound", P_obs.Json.Int depth_bound) ];
    { Search.verdict; stats }
  in
  let config0, _, items0 = Step.initial_config tab in
  let queue = Queue.create () in
  let visit config depth trace_rev =
    (* depth participates in the key: a configuration reached earlier has
       more remaining budget, so shallower visits must not be blocked by
       deeper ones; recording the minimal depth achieves that *)
    let digest = Canon.digest canon config [] in
    match Hashtbl.find_opt seen digest with
    | Some best when best <= depth ->
      (match meters with
      | None -> ()
      | Some m -> P_obs.Metrics.incr m.Search.m_dedup_hits)
    | Some _ ->
      Hashtbl.replace seen digest depth;
      Queue.add { config; depth; trace_rev } queue
    | None ->
      Hashtbl.replace seen digest depth;
      stats.states <- stats.states + 1;
      (match meters with
      | None -> ()
      | Some m ->
        P_obs.Metrics.incr m.Search.m_states;
        P_obs.Metrics.set_max m.Search.m_queue_hwm
          (Search.queue_hwm_of_config config));
      if depth > stats.max_depth then stats.max_depth <- depth;
      Queue.add { config; depth; trace_rev } queue
  in
  visit config0 0 (List.rev items0);
  try
    while not (Queue.is_empty queue) do
      if stats.states >= max_states then begin
        stats.truncated <- true;
        Queue.clear queue
      end
      else begin
        (match meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier
            (float_of_int (Queue.length queue)));
        let node = Queue.pop queue in
        if node.depth >= depth_bound then stats.truncated <- true
        else
          List.iter
            (fun mid ->
              List.iter
                (fun (r : Search.resolved) ->
                  stats.transitions <- stats.transitions + 1;
                  (match meters with
                  | None -> ()
                  | Some m -> P_obs.Metrics.incr m.Search.m_transitions);
                  Search.tick ticker;
                  let trace_rev = List.rev_append r.items node.trace_rev in
                  match r.outcome with
                  | Step.Failed error ->
                    raise
                      (Found
                         { Search.error;
                           trace = List.rev trace_rev;
                           depth = node.depth + 1 })
                  | Step.Progress (config, _)
                  | Step.Blocked config
                  | Step.Terminated config ->
                    visit config (node.depth + 1) trace_rev
                  | Step.Need_more_choices -> assert false)
                (Search.resolutions tab node.config mid))
            (Step.enabled tab node.config)
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)
