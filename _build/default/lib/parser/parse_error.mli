(** Lex and parse errors, with source locations. *)

type t = { loc : P_syntax.Loc.t; message : string }

exception Error of t

val raise_at : P_syntax.Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a message and raise {!Error} at the location. *)

val pp : t Fmt.t
val to_string : t -> string
