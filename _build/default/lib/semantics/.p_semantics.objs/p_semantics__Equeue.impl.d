lib/semantics/equeue.ml: Fmt List Names P_syntax Value
