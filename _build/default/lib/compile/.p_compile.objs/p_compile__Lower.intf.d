lib/compile/lower.mli: P_syntax Tables
