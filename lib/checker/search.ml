(** Shared infrastructure of the systematic-testing engines: enumeration of
    ghost [*] choices within one atomic block, exploration statistics, and
    verdicts. *)

module Step = P_semantics.Step
module Config = P_semantics.Config
module Errors = P_semantics.Errors
module Trace = P_semantics.Trace
module Mid = P_semantics.Mid
module Symtab = P_static.Symtab

(** One fully resolved atomic block: the outcome of running a machine with a
    concrete resolution of its ghost choices. *)
type resolved = {
  choices : bool list;
  outcome : Step.outcome;  (** never [Need_more_choices] *)
  items : Trace.item list;
}

(** Enumerate every resolution of the ghost [*] choices hit while running
    machine [mid] one atomic block from [config]. Depth-first, false first,
    so resolutions come out in a deterministic order. The choice prefix is
    carried reversed — extending it is a cons, not an O(depth) append — and
    flipped forward once per [run_atomic] call. *)
let default_enumeration_budget = 256

let resolutions ?fuel ?dedup ?faults ?(budget = default_enumeration_budget)
    ?on_overflow (tab : Symtab.t) (config : Config.t) (mid : Mid.t) :
    resolved list =
  let acc = ref [] in
  let remaining = ref budget in
  let overflowed = ref false in
  let rec go rev_choices =
    if !remaining <= 0 then begin
      (* a block that keeps demanding choices — e.g. a cycle of private
         operations consuming a [*] every lap, invisible to the in-block
         livelock detector because each lap runs under a different choice
         prefix — would make this DFS diverge. Stop enumerating and let the
         caller record the truncation, like a state-budget cut. *)
      if not !overflowed then begin
        overflowed := true;
        Option.iter (fun f -> f ()) on_overflow
      end
    end
    else begin
      decr remaining;
      let choices = List.rev rev_choices in
      match Step.run_atomic ?fuel ?dedup ?faults tab config mid ~choices with
      | Step.Need_more_choices, _ ->
        go (false :: rev_choices);
        go (true :: rev_choices)
      | outcome, items -> acc := { choices; outcome; items } :: !acc
    end
  in
  go [];
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Statistics and verdicts                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable states : int;  (** distinct scheduler states visited *)
  mutable transitions : int;  (** atomic blocks executed *)
  mutable pruned : int;
      (** enabled moves suppressed by sleep-set reduction; 0 with
          reduction off *)
  mutable max_depth : int;  (** longest path from the initial state, in blocks *)
  mutable truncated : bool;  (** a bound cut the exploration short *)
  mutable faults : int;
      (** injected faults that fired (drop/dup/reorder/delay/crash trace
          items observed); 0 with fault injection off *)
  mutable elapsed_s : float;
  mutable store : State_store.summary option;
      (** the seen set's end-of-run summary (kind, footprint, occupancy,
          omission bound); [None] for engines that keep no seen set *)
}

let new_stats () =
  { states = 0;
    transitions = 0;
    pruned = 0;
    max_depth = 0;
    truncated = false;
    faults = 0;
    elapsed_s = 0.;
    store = None }

let pp_stats ppf s =
  Fmt.pf ppf "%d states, %d transitions, depth %d%s, %.3fs" s.states s.transitions
    s.max_depth
    (if s.truncated then " (truncated)" else "")
    s.elapsed_s;
  if s.pruned > 0 then Fmt.pf ppf " [%d moves slept]" s.pruned;
  if s.faults > 0 then Fmt.pf ppf " [%d faults injected]" s.faults;
  (* the default exact store is the historical output; only the lossy
     stores announce themselves (and their honesty bound) *)
  match s.store with
  | Some st when st.State_store.s_kind <> "exact" ->
    Fmt.pf ppf " [store %s, %.1f MB" st.State_store.s_kind
      (float_of_int st.State_store.s_bytes /. 1e6);
    (* bitstate keeps no budget, so every merged answer may hide a state
       exact would have (re-)expanded; the probabilistic bound covers only
       the hash false positives on top of that *)
    if st.State_store.s_lossy_dups > 0 then
      Fmt.pf ppf ", approximate: %d lossy merges" st.State_store.s_lossy_dups;
    if st.State_store.s_omission_bound > 0.0 then
      Fmt.pf ppf ", expected hash omissions <= %.3g"
        st.State_store.s_omission_bound;
    Fmt.pf ppf "]"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

(** What an engine run reports while it runs: a metrics registry to count
    into, a structured trace sink for lifecycle spans, and a progress
    callback for heartbeats. The default {!no_instr} is free: engines guard
    every instrumented point on it, and the property tests check results
    are identical with instrumentation on. *)
type instr = {
  metrics : P_obs.Metrics.t option;
  sink : P_obs.Sink.t;
  progress : (stats -> unit) option;
      (** called from the search loop roughly every [progress_every]
          transitions, with the live (mutable) stats *)
  progress_every : int;
  profile : P_obs.Profile.t;
      (** per-domain phase profiler; engines record expand / steal /
          barrier / shard-lock spans into it and poll its GC cursor from
          their tick points. {!P_obs.Profile.null} (the default) makes
          every hook a no-op. *)
  telemetry : P_obs.Telemetry.t;
      (** sampling ticker; engines install a probe over their live
          counters and poke it from their tick points *)
}

let no_instr =
  { metrics = None;
    sink = P_obs.Sink.null;
    progress = None;
    progress_every = 4096;
    profile = P_obs.Profile.null;
    telemetry = P_obs.Telemetry.null }

let instr ?metrics ?(sink = P_obs.Sink.null) ?progress ?(progress_every = 4096)
    ?(profile = P_obs.Profile.null) ?(telemetry = P_obs.Telemetry.null) () =
  { metrics; sink; progress; progress_every; profile; telemetry }

(** Metric handles pre-resolved for one engine run ([None] when metrics are
    off), so hot loops never touch the registry's intern table. *)
type meters = {
  m_states : P_obs.Metrics.counter;  (** [checker.states] *)
  m_transitions : P_obs.Metrics.counter;  (** [checker.transitions] *)
  m_dedup_hits : P_obs.Metrics.counter;
      (** [checker.dedup_hits] — digest already seen with no smaller budget *)
  m_frontier : P_obs.Metrics.gauge;  (** [checker.frontier_depth] high-water *)
  m_queue_hwm : P_obs.Metrics.gauge;
      (** [checker.queue_len_hwm] — longest per-machine event queue seen *)
  m_fp_requests : P_obs.Metrics.counter;
      (** [checker.fp_requests] — per-machine fingerprint lookups; always
          equals [fp_cache_hits + fp_cache_misses], including multi-domain
          runs (per-worker counters summed at flush) *)
  m_fp_hits : P_obs.Metrics.counter;
      (** [checker.fp_cache_hits] — per-machine fingerprint cache hits *)
  m_fp_misses : P_obs.Metrics.counter;
      (** [checker.fp_cache_misses] — per-machine encodings computed *)
  m_fp_collisions : P_obs.Metrics.counter;
      (** [checker.fp_collisions] — paranoid-mode bijection violations *)
}

let meters ~engine (i : instr) : meters option =
  match i.metrics with
  | None -> None
  | Some reg ->
    let labels = [ ("engine", engine) ] in
    Some
      { m_states = P_obs.Metrics.counter reg ~labels "checker.states";
        m_transitions = P_obs.Metrics.counter reg ~labels "checker.transitions";
        m_dedup_hits = P_obs.Metrics.counter reg ~labels "checker.dedup_hits";
        m_frontier = P_obs.Metrics.gauge reg ~labels "checker.frontier_depth";
        m_queue_hwm = P_obs.Metrics.gauge reg ~labels "checker.queue_len_hwm";
        m_fp_requests = P_obs.Metrics.counter reg ~labels "checker.fp_requests";
        m_fp_hits = P_obs.Metrics.counter reg ~labels "checker.fp_cache_hits";
        m_fp_misses = P_obs.Metrics.counter reg ~labels "checker.fp_cache_misses";
        m_fp_collisions = P_obs.Metrics.counter reg ~labels "checker.fp_collisions" }

(** Longest per-machine event queue in a configuration (for the high-water
    gauge; computed only when metrics are on). *)
let queue_hwm_of_config (config : Config.t) : float =
  float_of_int
    (Config.fold
       (fun _ m acc -> max acc (P_semantics.Equeue.length m.P_semantics.Machine.queue))
       config 0)

(** A progress ticker: calls [instr.progress] every [progress_every]
    transitions with the live stats, and pokes the telemetry sampler and
    the profiler's GC cursor every [obs_every] ticks (both are further
    time-gated internally, so the cadence here only bounds staleness). *)
type ticker = {
  tk_instr : instr;
  tk_stats : stats;
  mutable tk_count : int;
  mutable tk_obs : int;
}

let obs_every = 256

let ticker i stats = { tk_instr = i; tk_stats = stats; tk_count = 0; tk_obs = obs_every }

let tick (t : ticker) =
  let i = t.tk_instr in
  (match i.progress with
  | None -> ()
  | Some f ->
    t.tk_count <- t.tk_count + 1;
    if t.tk_count >= i.progress_every then begin
      t.tk_count <- 0;
      f t.tk_stats
    end);
  if P_obs.Telemetry.enabled i.telemetry || P_obs.Profile.enabled i.profile then begin
    t.tk_obs <- t.tk_obs - 1;
    if t.tk_obs <= 0 then begin
      t.tk_obs <- obs_every;
      P_obs.Telemetry.tick i.telemetry;
      P_obs.Profile.poll_gc i.profile
    end
  end

(** Emit the engine lifecycle span shared by all explorers: one complete
    Chrome event covering the whole run, carrying the result stats. *)
let emit_run_span (i : instr) ~engine ~t0_us ~(stats : stats) extra_args =
  if P_obs.Sink.enabled i.sink then
    P_obs.Sink.complete i.sink ~cat:"engine" ~name:(engine ^ ".explore") ~ts_us:t0_us
      ~dur_us:(P_obs.Mclock.now_us () -. t0_us)
      ~args:
        ([ ("states", P_obs.Json.Int stats.states);
           ("transitions", P_obs.Json.Int stats.transitions);
           ("max_depth", P_obs.Json.Int stats.max_depth);
           ("truncated", P_obs.Json.Bool stats.truncated) ]
        @ extra_args)
      ()

type counterexample = {
  error : Errors.t;
  trace : Trace.t;
  depth : int;
  schedule : (Mid.t * bool list) list;
      (** the schedule that reaches the error: per atomic block, the
          machine that ran and the ghost [*] resolutions it consumed, from
          the initial configuration up to and including the failing block.
          Scheduler-independent: replaying it through
          {!P_semantics.Step.run_atomic} rebuilds the trace (this is what
          {!Replay} and the on-disk {!Trace_file} artifact consume). *)
}

type verdict =
  | No_error  (** the bounded exploration found no error configuration *)
  | Error_found of counterexample

type result = { verdict : verdict; stats : stats }

let pp_verdict ppf = function
  | No_error -> Fmt.string ppf "no error found"
  | Error_found ce ->
    Fmt.pf ppf "ERROR at depth %d: %a" ce.depth Errors.pp ce.error

let pp_result ppf r = Fmt.pf ppf "%a (%a)" pp_verdict r.verdict pp_stats r.stats
