(** The shared exploration core: one loop, parameterized by scheduling
    policy, budget discipline, frontier order, ghost-choice resolution, and
    error handling. {!Delay_bounded}, {!Depth_bounded}, {!Parallel},
    {!Random_walk}, {!Liveness}, and {!Coverage} are thin instantiations;
    the engine regression tests pin their (verdict, states, transitions)
    triples to the pre-refactor values.

    State identity is a {!Fingerprint} over the configuration plus the
    scheduler's [encode] extras; counterexamples are replayed from a
    compact edge table (parent, move code, ghost choices), so frontier
    nodes carry no traces. *)

(** Stack discipline on sends and creations: [Causal] pushes the receiver
    on top (it runs next); [Round_robin] appends at the bottom. *)
type discipline = Causal | Round_robin

val rotate : 'a list -> 'a list
(** Move the top of the stack to the bottom — one delay. *)

val rotate_k : 'a list -> int -> 'a list

val apply_outcome :
  ?discipline:discipline ->
  P_semantics.Mid.t list ->
  P_semantics.Step.outcome ->
  (P_semantics.Config.t * P_semantics.Mid.t list) option
(** Advance the causal stack past a non-failing outcome (default
    [Causal]); [None] when the outcome is [Failed] or
    [Need_more_choices]. *)

(** A scheduling policy: which machines may run from a state, what each
    move costs, and how moves are recorded (as an [int] code in the edge
    table) and replayed. *)
type 'sched scheduler = {
  init : P_semantics.Mid.t -> 'sched;
  moves :
    P_static.Symtab.t ->
    P_semantics.Config.t ->
    'sched ->
    budget_left:int ->
    (int * 'sched * P_semantics.Mid.t * int) list;
      (** candidate moves in deterministic order: [(code, scheduler state
          positioned at the move, machine to run, budget cost)] *)
  decode : 'sched -> int -> ('sched * P_semantics.Mid.t) option;
      (** re-position a recorded move code during replay *)
  apply :
    'sched -> P_semantics.Step.outcome ->
    (P_semantics.Config.t * 'sched) option;
      (** advance past a non-failing outcome; [None] on failure *)
  encode : 'sched -> int list;  (** scheduler part of the state key *)
}

val full_nondet : unit scheduler
(** Any enabled machine may run, in {!P_semantics.Step.enabled} order;
    each move costs 1 (so the budget is depth). *)

val stack_sched : discipline -> P_semantics.Mid.t list scheduler
(** The delaying scheduler: rotating the causal stack [k] places costs [k]
    delays; the stack is part of the state key. *)

val random_pick : (int -> int) -> unit scheduler
(** [random_pick draw]: one move — a [draw]-selected enabled machine. *)

type resolver =
  | Exhaustive  (** enumerate every ghost-choice resolution *)
  | Sampled of (unit -> bool)  (** draw one resolution per block *)

type frontier = Bfs | Dfs

type edge_dst =
  | Dst_new of int  (** first visit; the state was just given this index *)
  | Dst_seen of int  (** the seen set already held this state *)
  | Dst_failed of P_semantics.Errors.t

(** Callbacks for graph-building engines; state indices are dense, with
    the root at 0 and indices assigned in discovery order. *)
type observer = {
  on_state : int -> P_semantics.Config.t -> unit;
  on_edge :
    src:int ->
    src_config:P_semantics.Config.t ->
    by:P_semantics.Mid.t ->
    resolved:Search.resolved ->
    dst:edge_dst ->
    unit;
      (** every explored transition, including duplicates and failures *)
}

type 'sched spec = {
  scheduler : 'sched scheduler;
  bound : int;  (** the budget: delays, depth, or walk blocks *)
  truncate_on_exhaust : bool;
      (** pop-time check: a node with [spent >= bound] marks the stats
          truncated instead of expanding; when false the budget only
          limits [moves] *)
  frontier : frontier;
  resolver : resolver;
  track_seen : bool;  (** false = no fingerprints, no dedup *)
  dedup : bool;  (** the ⊕ queue append, forwarded to [run_atomic] *)
  stop_on_error : bool;
      (** raise at the first failure (with a replayed trace) vs record the
          edge and keep exploring *)
  max_states : int;
  max_depth : int;
  fp_mode : Fingerprint.mode;
  store : State_store.kind;
      (** seen-set representation: [Exact] (default, ground truth),
          [Compact] (off-heap fingerprint arena), or [Bitstate]
          (supertrace bit array with a reported omission bound) *)
  store_capacity : int option;
      (** arena slots/bits override; [None] sizes from [max_states] *)
  reduce : Reduce.t;
      (** state-space reduction: sleep-set POR over the scheduler's choice
          points and/or symmetry canonicalization of machine identities
          (default {!Reduce.none}). Reduced runs reach the same verdict
          kind with never more states; the sleep set is part of the state
          key, so expansion stays a pure function of the key and
          {!run_parallel}'s determinism contract is preserved. *)
  faults : P_semantics.Fault.plan option;
      (** deterministic fault injection, forwarded to [run_atomic];
          [None] (the default) reproduces the fault-free engine byte for
          byte. Incompatible with sleep-set POR. *)
}

val spec :
  ?bound:int ->
  ?truncate_on_exhaust:bool ->
  ?frontier:frontier ->
  ?resolver:resolver ->
  ?track_seen:bool ->
  ?dedup:bool ->
  ?stop_on_error:bool ->
  ?max_states:int ->
  ?max_depth:int ->
  ?fp_mode:Fingerprint.mode ->
  ?store:State_store.kind ->
  ?store_capacity:int ->
  ?reduce:Reduce.t ->
  ?faults:P_semantics.Fault.plan ->
  'sched scheduler ->
  'sched spec
(** Spec builder with the common defaults: unbounded budget, BFS,
    exhaustive choices, seen-set on, dedup on, stop at the first error,
    [max_states] 1,000,000, incremental fingerprints, exact store.

    A [faults] plan with all-zero rates is normalized to [None].
    Combining an active plan with sleep-set POR raises
    [Invalid_argument]: fault decisions are indexed by the order blocks
    execute in, so commuting two blocks changes which faults fire and
    the independence argument breaks. Symmetry reduction remains sound.

    Non-exact stores refuse (at run time, [Invalid_argument]) specs whose
    [bound] exceeds {!State_store.max_exact_spent} — the compact slot
    word keeps 15 bits of budget — and the bitstate store refuses
    observers (it keeps no state indices). A run with a non-exact store
    keys states by a 63-bit {!Fingerprint.digest_int}; compact runs merge
    distinct states only on a 47-bit tag collision at the same slot
    (expected pairs n²/2⁴⁸, reported as the summary's omission bound),
    bitstate runs merge at the Bloom-filter rate and report
    [dups × occupancy^k]. *)

val run :
  ?instr:Search.instr ->
  ?observer:observer ->
  ?span_args:(string * P_obs.Json.t) list ->
  engine:string ->
  'sched spec ->
  P_static.Symtab.t ->
  Search.result
(** Run a spec to completion on the current domain. Deterministic for a
    fixed spec. *)

val run_parallel :
  ?instr:Search.instr ->
  ?span_args:(string * P_obs.Json.t) list ->
  engine:string ->
  domains:int ->
  'sched spec ->
  P_static.Symtab.t ->
  Search.result
(** Work-stealing parallel search over the same spec: [domains] workers
    each own a Chase–Lev deque ({!Ws_deque}) and steal from each other
    when idle, sharing one {!State_store} — the exact store arbitrates
    claims behind mutex-guarded shards keyed by the digest's first byte,
    the compact store with lock-free CAS on its off-heap slot arena
    (min-spent merge applied per claim either way).

    The search is stratified by budget spent: zero-cost successors stay in
    the current stratum, positive-cost successors wait behind a barrier
    until their stratum starts — so every state is expanded exactly once,
    at its minimal spent, and the (verdict, states, transitions) triple is
    independent of [domains] and of steal order. The verdict and state
    count agree exactly with {!run}; the transition count is at most
    {!run}'s (the sequential loop may re-expand a state it first reached
    with a higher spent, which stratification never does). [stats.max_depth]
    reports the depth of each state's claiming arrival, which may vary
    with [domains] when several paths of equal spent reach a state.

    On the first failing edge the counterexample is re-derived by the
    sequential {!run} on the same spec, so error results — verdict,
    counterexample, stats — are byte-identical to the sequential engine's
    for every [domains] (the deterministic lowest-state-index tiebreak,
    not arrival order).

    [max_states] is checked at claim time against a shared atomic; a
    truncated run may overshoot slightly and its counts may vary with
    [domains]. With [instr] metrics on, workers count [checker.expansions],
    [checker.steals], [checker.steal_attempts], [checker.steal_retries]
    (lost steal-CAS races), [checker.shard_contention] (exact store:
    blocked shard-lock acquisitions), and [checker.store_cas_retries]
    (compact store: lost slot-CAS races) into their own per-domain
    registry shards. With an [instr] profiler on, each worker records
    expand / steal / barrier_wait spans onto its own lane — plus
    shard_lock spans under the exact store; the compact store has no
    locks to block on, so a compact profile shows no shard_lock phase at
    all — and worker 0 polls the runtime's GC events from its tick point.
    Requires [spec.frontier = Bfs]; observers are not supported;
    [spec.track_seen = false] falls back to the sequential {!run}. *)
