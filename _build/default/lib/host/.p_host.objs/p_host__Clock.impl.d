lib/host/clock.ml: Array
