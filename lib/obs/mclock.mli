(** Monotonic clock helper: the single time base for engine statistics,
    trace timestamps, and latency histograms. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC; meaningful only for differences. *)

val now_us : unit -> float
(** Same instant in microseconds (the Chrome trace_event unit). *)

type span
(** An opaque starting point for elapsed-time measurement. *)

val start : unit -> span
val elapsed_ns : span -> int64
val elapsed_us : span -> float
val elapsed_s : span -> float

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the elapsed seconds. *)
