lib/parser/parser.mli: P_syntax
