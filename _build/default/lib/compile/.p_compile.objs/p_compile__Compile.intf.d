lib/compile/compile.mli: P_syntax Tables
