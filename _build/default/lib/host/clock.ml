(** A discrete-event simulation clock: the time base of the simulated
    driver host. Callbacks are scheduled at absolute microsecond times and
    dispatched in order; the clock jumps instantaneously between events, so
    a "100 events per second" workload (section 4.1) runs in milliseconds of
    wall time while preserving the arrival pattern. *)

type callback = { at_us : int; seq : int; fn : unit -> unit }

module Heap = struct
  (* binary min-heap ordered by (at_us, seq) *)
  type t = { mutable data : callback array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let less a b = a.at_us < b.at_us || (a.at_us = b.at_us && a.seq < b.seq)

  let push h cb =
    if h.len = Array.length h.data then begin
      let cap = max 16 (2 * Array.length h.data) in
      let data = Array.make cap cb in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- cb;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
          if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = h.data.(!i) in
            h.data.(!i) <- h.data.(!smallest);
            h.data.(!smallest) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

type t = { mutable now_us : int; mutable seq : int; heap : Heap.t }

let create () = { now_us = 0; seq = 0; heap = Heap.create () }

let now_us t = t.now_us

(** Schedule [fn] to run [delay_us] simulated microseconds from now. *)
let schedule t ~delay_us fn =
  if delay_us < 0 then invalid_arg "Clock.schedule: negative delay";
  Heap.push t.heap { at_us = t.now_us + delay_us; seq = t.seq; fn };
  t.seq <- t.seq + 1

(** Run callbacks in time order until the queue is empty or the clock
    passes [until_us]. Returns the number of callbacks dispatched. *)
let run ?(until_us = max_int) t =
  let dispatched = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some cb ->
      if cb.at_us > until_us then begin
        (* too late: put it back and stop *)
        Heap.push t.heap cb;
        continue := false
      end
      else begin
        t.now_us <- max t.now_us cb.at_us;
        cb.fn ();
        incr dispatched
      end
  done;
  !dispatched
