(** A software implementation of German's cache coherence protocol — the
    third benchmark of the paper's Figure 7 ("a software implementation of
    German's cache coherence protocol").

    A directory ([Home]) serializes shared/exclusive requests from three
    [Client] caches. An exclusive grant requires invalidating every sharer
    and the current owner and collecting their acknowledgements; the
    directory asserts the coherence invariant (no sharers and no owner) at
    every exclusive grant, which is the safety property the checker
    verifies. A ghost [Env] machine wires the instances together (machine
    references are exchanged through the [SetHome] event) and
    nondeterministically prods clients to issue requests.

    The core P calculus has no set- or array-typed variables, so the
    sharer list is expanded into per-client flags ([s1..s3]) — the same
    style the original Teapot/Zing models of this protocol use. *)

open P_syntax.Builder

let events =
  [ event "ReqS" ~payload:P_syntax.Ptype.Machine_id;
    event "ReqE" ~payload:P_syntax.Ptype.Machine_id;
    event "InvAck" ~payload:P_syntax.Ptype.Machine_id;
    event "GntS";
    event "GntE";
    event "Inv";
    event "DoReqS";
    event "DoReqE";
    event "SetHome" ~payload:P_syntax.Ptype.Machine_id;
    event "unit";
    event "grant" ]

(* -------------------- the directory -------------------- *)

(* The core calculus has no arrays, so the directory's sharer list unrolls
   into per-client variables c<i>/s<i>; all uses below are generated from
   the client count. *)
let cvar i = Fmt.str "c%d" i
let svar i = Fmt.str "s%d" i

let set_sharer_of_curr ~n value =
  seq (List.init n (fun i -> when_ (v "curr" == v (cvar i)) (assign (svar i) value)))

let home_machine ~n =
  let client_ids = List.init n (fun i -> i) in
  machine "Home"
    ~vars:
      (List.concat_map
         (fun i ->
           [ var_decl (cvar i) P_syntax.Ptype.Machine_id;
             var_decl (svar i) P_syntax.Ptype.Bool ])
         client_ids
      @ [ var_decl "has_owner" P_syntax.Ptype.Bool;
          var_decl "owner" P_syntax.Ptype.Machine_id;
          var_decl "curr" P_syntax.Ptype.Machine_id;
          var_decl "pending" P_syntax.Ptype.Int ])
    [ state "Boot"
        ~entry:
          (seq
             (List.map (fun i -> assign (svar i) fls) client_ids
             @ [ assign "has_owner" fls; assign "pending" (int 0) ]));
      state "Idle" ~entry:skip;
      (* shared request: invalidate the exclusive owner if any, then grant *)
      state "ServeS" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:
          (seq
             [ assign "curr" arg;
               if_ (v "has_owner")
                 (seq [ send (v "owner") "Inv"; raise_ "unit" ])
                 (raise_ "grant") ]);
      state "WaitAckS" ~defer:[ "ReqS"; "ReqE" ] ~entry:skip;
      state "AckedS" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:(seq [ assign "has_owner" fls; raise_ "grant" ]);
      state "GrantS" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:
          (seq
             [ assert_ (not_ (v "has_owner"));
               set_sharer_of_curr ~n tru;
               send (v "curr") "GntS";
               raise_ "unit" ]);
      (* exclusive request: invalidate every sharer and the owner, collect
         the acknowledgements, then grant *)
      state "ServeE" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:
          (seq
             ([ assign "curr" arg; assign "pending" (int 0) ]
             @ List.map
                 (fun i ->
                   when_ (v (svar i))
                     (seq
                        [ send (v (cvar i)) "Inv";
                          assign "pending" (v "pending" + int 1);
                          assign (svar i) fls ]))
                 client_ids
             @ [ when_ (v "has_owner")
                   (seq
                      [ send (v "owner") "Inv";
                        assign "pending" (v "pending" + int 1);
                        assign "has_owner" fls ]);
                 raise_ "unit" ]));
      state "CollectE" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:(if_ (v "pending" == int 0) (raise_ "grant") skip);
      state "DecE" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:(seq [ assign "pending" (v "pending" - int 1); raise_ "unit" ]);
      state "GrantE" ~defer:[ "ReqS"; "ReqE" ]
        ~entry:
          (seq
             [ (* the coherence invariant: exclusive access only when nobody
                  else holds the line *)
               assert_
                 (List.fold_left
                    (fun acc i -> acc && not_ (v (svar i)))
                    (not_ (v "has_owner"))
                    client_ids);
               assign "owner" (v "curr");
               assign "has_owner" tru;
               send (v "curr") "GntE";
               raise_ "unit" ]) ]
    ~steps:
      [ ("Boot", "ReqS", "ServeS");
        ("Boot", "ReqE", "ServeE");
        ("Idle", "ReqS", "ServeS");
        ("Idle", "ReqE", "ServeE");
        ("ServeS", "unit", "WaitAckS");
        ("ServeS", "grant", "GrantS");
        ("WaitAckS", "InvAck", "AckedS");
        ("AckedS", "grant", "GrantS");
        ("GrantS", "unit", "Idle");
        ("ServeE", "unit", "CollectE");
        ("CollectE", "grant", "GrantE");
        ("CollectE", "InvAck", "DecE");
        ("DecE", "unit", "CollectE");
        ("GrantE", "unit", "Idle") ]

(* -------------------- the client caches -------------------- *)

let client_machine =
  machine "Client"
    ~vars:[ var_decl "home" P_syntax.Ptype.Machine_id ]
    ~actions:
      [ action "Ignore" skip;
        action "AckInv" (send (v "home") "InvAck" ~payload:this) ]
    [ state "Boot" ~entry:skip;
      state "Invalid" ~entry:skip;
      state "RequestingS" ~entry:(send (v "home") "ReqS" ~payload:this);
      state "Shared" ~entry:skip;
      state "RequestingE" ~entry:(send (v "home") "ReqE" ~payload:this);
      state "Exclusive" ~entry:skip;
      state "AckingS"
        ~entry:(seq [ send (v "home") "InvAck" ~payload:this; raise_ "unit" ]);
      state "AckingE"
        ~entry:(seq [ send (v "home") "InvAck" ~payload:this; raise_ "unit" ]) ]
    ~steps:
      [ ("Boot", "SetHome", "SetUp");
        ("Invalid", "DoReqS", "RequestingS");
        ("Invalid", "DoReqE", "RequestingE");
        ("RequestingS", "GntS", "Shared");
        ("RequestingE", "GntE", "Exclusive");
        ("Shared", "Inv", "AckingS");
        ("Exclusive", "Inv", "AckingE");
        ("AckingS", "unit", "Invalid");
        ("AckingE", "unit", "Invalid") ]
    ~bindings:
      [ on ("Invalid", "Inv") ~do_:"AckInv";
        on ("RequestingS", "DoReqS") ~do_:"Ignore";
        on ("RequestingS", "DoReqE") ~do_:"Ignore";
        on ("RequestingE", "DoReqS") ~do_:"Ignore";
        on ("RequestingE", "DoReqE") ~do_:"Ignore";
        on ("Shared", "DoReqS") ~do_:"Ignore";
        on ("Shared", "DoReqE") ~do_:"Ignore";
        on ("Exclusive", "DoReqS") ~do_:"Ignore";
        on ("Exclusive", "DoReqE") ~do_:"Ignore" ]

(* The Boot→SetUp hop stores the directory reference delivered by the
   environment, then settles into Invalid. *)
let client_machine =
  let m = client_machine in
  { m with
    P_syntax.Ast.states =
      m.P_syntax.Ast.states
      @ [ state "SetUp" ~entry:(seq [ assign "home" arg; raise_ "unit" ]) ];
    P_syntax.Ast.steps =
      m.P_syntax.Ast.steps @ [ P_syntax.Builder.step ("SetUp", "unit", "Invalid") ] }

(* -------------------- the ghost environment -------------------- *)

let kvar i = Fmt.str "k%d" i

(** Creates the directory and the [n] clients, wires them up (machine
    references travel through the [SetHome] event), then forever picks a
    client and a request kind nondeterministically. [requests <= 0] means
    unbounded, as used for Figure 7. *)
let env_machine ?(n = 3) ~requests () =
  let client_ids = List.init n (fun i -> i) in
  (* a binary decision tree of ghost choices over the clients *)
  let rec choose = function
    | [] -> skip
    | [ i ] ->
      if_ nondet (send (v (kvar i)) "DoReqS") (send (v (kvar i)) "DoReqE")
    | ids ->
      let rec split k acc rest =
        if Stdlib.( = ) k 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (Stdlib.( - ) k 1) (x :: acc) tl
      in
      let half, rest = split (Stdlib.( / ) (List.length ids) 2) [] ids in
      if_ nondet (choose half) (choose rest)
  in
  let pick_and_poke = seq [ choose client_ids; raise_ "unit" ] in
  let vars =
    [ var_decl "h" P_syntax.Ptype.Machine_id ]
    @ List.map (fun i -> var_decl (kvar i) P_syntax.Ptype.Machine_id) client_ids
    @ (if Stdlib.(requests > 0) then [ var_decl "left" P_syntax.Ptype.Int ] else [])
  in
  let init_entry =
    seq
      (List.map (fun i -> new_ (kvar i) "Client" []) client_ids
      @ [ new_ "h" "Home" (List.map (fun i -> (cvar i, v (kvar i))) client_ids) ]
      @ List.map (fun i -> send (v (kvar i)) "SetHome" ~payload:(v "h")) client_ids
      @ (if Stdlib.(requests > 0) then [ assign "left" (int requests) ] else [])
      @ [ raise_ "unit" ])
  in
  let loop_entry =
    if Stdlib.(requests > 0) then
      if_ (v "left" > int 0)
        (seq [ assign "left" (v "left" - int 1); pick_and_poke ])
        skip
    else pick_and_poke
  in
  machine "Env" ~ghost:true ~vars
    [ state "Init" ~entry:init_entry; state "Loop" ~entry:loop_entry ]
    ~steps:[ ("Init", "unit", "Loop"); ("Loop", "unit", "Loop") ]

(** The closed German protocol program with [n] clients (default 3, as in
    the Figure 7 benchmark). *)
let program ?(n = 3) ?(requests = 0) () =
  program ~events
    ~machines:[ env_machine ~n ~requests (); home_machine ~n; client_machine ]
    "Env"

(** Seeded coherence bug: [ServeE] forgets to invalidate the exclusive
    owner, so a second exclusive request violates the GrantE invariant. *)
let buggy_program ?(n = 3) ?(requests = 0) () =
  let p = program ~n ~requests () in
  let client_ids = List.init n (fun i -> i) in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "Home" then
            { m with
              P_syntax.Ast.states =
                List.map
                  (fun (st : P_syntax.Ast.state) ->
                    if P_syntax.Names.State.to_string st.state_name = "ServeE" then
                      { st with
                        P_syntax.Ast.entry =
                          seq
                            ([ assign "curr" arg; assign "pending" (int 0) ]
                            @ List.map
                                (fun i ->
                                  when_ (v (svar i))
                                    (seq
                                       [ send (v (cvar i)) "Inv";
                                         assign "pending" (v "pending" + int 1);
                                         assign (svar i) fls ]))
                                client_ids
                            (* BUG: the exclusive owner is never invalidated *)
                            @ [ raise_ "unit" ]) }
                    else st)
                  m.P_syntax.Ast.states }
          else m)
        p.P_syntax.Ast.machines }
