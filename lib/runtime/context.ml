(** Machine instance contexts: the runtime twin of the paper's
    [StateMachineContext] (section 4). Each dynamic instance carries its
    variable values, call stack, input queue, a lock for synchronization
    with concurrent host threads, and a [void*]-style pointer to external
    memory reserved for foreign functions and interface code. *)

module Tables = P_compile.Tables

(** External memory attached to a machine for foreign code — the OCaml
    rendering of the C runtime's [void *]. Extend the variant with one
    constructor per driver, e.g.
    [type Context.ext += Led_state of { mutable on : bool }]. *)
type ext = ..

type handler = HNone | HDefer | HAction of int

(** What happened to an event offered to the runtime — the typed
    backpressure contract of the serving scheduler. [Accepted] means the
    receiver was idle and ran (run-to-completion drivers) or the event was
    taken for immediate processing; [Queued] means it sits in a mailbox
    behind other work; [Shed] means a bounded mailbox (or shard ingress)
    was full and the event was dropped. *)
type backpressure = Accepted | Queued | Shed

(** Outcome of a single mailbox [enqueue]. [Enq_duplicate] is the
    deduplicating [⊕] of the SEND rule absorbing an entry already
    present — not an error and not an overflow. *)
type enqueue_result = Enq_ok | Enq_duplicate | Enq_overflow

(** The input FIFO: a two-list functional queue (amortized O(1) enqueue)
    plus a membership table for the deduplicating [⊕] of the SEND rule.
    The historical representation was a plain list appended with [@],
    which made every enqueue O(n) and bursty workloads O(n²). [⊕] keeps
    the queue duplicate-free, so plain key presence is enough for the
    membership table. *)
type inbox = {
  mutable ib_front : (int * Rt_value.t) list;  (** next to dequeue first *)
  mutable ib_back : (int * Rt_value.t) list;  (** reversed: newest first *)
  mutable ib_size : int;
  ib_members : (int * Rt_value.t, unit) Hashtbl.t;
}

type task =
  | Exec of Tables.code
  | Handle of int * Rt_value.t  (** dynamic raise(e, v) *)
  | Pop_return
  | Pop_frame
  | Enter of int

type frame = {
  mutable f_state : int;
  f_amap : handler array;  (** indexed by event id; inherited handler map *)
  f_cont : task list;  (** caller continuation for [call] statements *)
}

type t = {
  self : int;  (** instance handle *)
  ty : int;  (** machine type index in the driver *)
  table : Tables.machine_table;
  vars : Rt_value.t array;
  mutable msg : int option;
  mutable arg : Rt_value.t;
  mutable frames : frame list;  (** top first *)
  mutable agenda : task list;
  inbox : inbox;
  mutable alive : bool;
  mutable scheduled : bool;  (** being run (or queued to run) by some thread *)
  capacity : int;  (** mailbox bound; [max_int] = unbounded (semantics mode) *)
  lock : Mutex.t;
  mutable external_mem : ext option;
}

let create ?(capacity = max_int) ~self ~ty ~(table : Tables.machine_table) () : t =
  let n_events =
    match table.mt_states with
    | [||] -> 0
    | states -> Array.length states.(0).st_deferred
  in
  { self;
    ty;
    table;
    vars = Array.make (max 1 (Array.length table.mt_vars)) Rt_value.Null;
    msg = None;
    arg = Rt_value.Null;
    frames =
      [ { f_state = 0; f_amap = Array.make (max 1 n_events) HNone; f_cont = [] } ];
    agenda =
      (match table.mt_states with
      | [||] -> []
      | states -> [ Exec states.(0).st_entry ]);
    inbox = { ib_front = []; ib_back = []; ib_size = 0; ib_members = Hashtbl.create 16 };
    alive = true;
    scheduled = false;
    capacity = (if capacity <= 0 then invalid_arg "Context.create: capacity" else capacity);
    lock = Mutex.create ();
    external_mem = None }

let current_state t = match t.frames with [] -> None | f :: _ -> Some f.f_state

let state_table t i : Tables.state_table = t.table.mt_states.(i)

(** The effective deferred set in the current state: inherited deferrals
    plus the state's declared deferred set, minus events with a transition
    or action defined here. *)
let is_deferred t event =
  match t.frames with
  | [] -> false
  | f :: _ ->
    let st = state_table t f.f_state in
    let declared = st.st_deferred.(event) in
    let inherited = f.f_amap.(event) = HDefer in
    let overridden =
      st.st_steps.(event) <> None || st.st_calls.(event) <> None
      || st.st_actions.(event) <> None
    in
    (declared || inherited) && not overridden

(** Append with the deduplicating [⊕] of the SEND rule. Amortized O(1):
    membership is a hash lookup ([Rt_value] values are plain immutable
    variants, so generic hashing and equality agree with
    {!Rt_value.equal}), and the entry is consed onto the back list. *)
let enqueue t event payload : enqueue_result =
  let ib = t.inbox in
  let key = (event, payload) in
  if Hashtbl.mem ib.ib_members key then Enq_duplicate
  else if ib.ib_size >= t.capacity then Enq_overflow
  else begin
    Hashtbl.replace ib.ib_members key ();
    ib.ib_back <- key :: ib.ib_back;
    ib.ib_size <- ib.ib_size + 1;
    Enq_ok
  end

(* Move the back list to the front (once per element over the queue's
   lifetime), so dequeue scans a single in-order list. *)
let normalize (ib : inbox) =
  if ib.ib_back <> [] then begin
    ib.ib_front <- ib.ib_front @ List.rev ib.ib_back;
    ib.ib_back <- []
  end

(** Dequeue the first non-deferred entry, if any; deferred entries keep
    their queue positions (the DEQUEUE rule scans past them). *)
let dequeue t : (int * Rt_value.t) option =
  let ib = t.inbox in
  normalize ib;
  let rec scan skipped = function
    | [] -> None
    | ((e, _) as entry) :: rest ->
      if is_deferred t e then scan (entry :: skipped) rest
      else begin
        ib.ib_front <- List.rev_append skipped rest;
        ib.ib_size <- ib.ib_size - 1;
        Hashtbl.remove ib.ib_members entry;
        Some entry
      end
  in
  scan [] ib.ib_front

let inbox_length t = t.inbox.ib_size

let inbox_list t = t.inbox.ib_front @ List.rev t.inbox.ib_back
(** Front of the FIFO first. *)

let has_dequeuable t =
  let not_deferred (e, _) = not (is_deferred t e) in
  List.exists not_deferred t.inbox.ib_front
  || List.exists not_deferred t.inbox.ib_back

let is_runnable t = t.alive && (t.agenda <> [] || has_dequeuable t)
