(** The simple type system of P (section 3.3): expressions and statements
    against declared variable and event-payload types. The special
    variable [arg] and the constant [null] are dynamically typed (the [⊥]
    value inhabits every type); their misuse is caught at verification
    time by the operational semantics. *)

type ty = Known of P_syntax.Ptype.t | Unknown

val pp_ty : ty Fmt.t
val compatible : ty -> ty -> bool

val type_of_expr :
  Symtab.t -> Symtab.machine_info -> Symtab.diagnostic list ref -> P_syntax.Ast.expr -> ty
(** Infer (and check) one expression, appending diagnostics to the
    accumulator. Exposed for tooling; most callers want {!check}. *)

val check : Symtab.t -> Symtab.diagnostic list
(** Type-check every machine; diagnostics oldest-first. *)
