(** Recursive-descent parser for the textual P syntax (Figure 3 of the
    paper plus the surface conveniences used by its examples: [defer] /
    [postpone] sets, [entry]/[exit] blocks, [on (n, e) do a] bindings,
    [push] call transitions, and the [main M(...);] initialization
    statement).

    All entry points raise {!Parse_error.Error} on malformed input, with the
    source location of the offending token. *)

type t
(** Parser state over one input. *)

val create : ?file:string -> string -> t
(** [create ?file src] starts parsing [src]; [file] labels locations. *)

val parse_program : t -> P_syntax.Ast.program
(** Parse a complete program and require end of input. *)

val parse_expr : t -> P_syntax.Ast.expr
(** Parse a single expression (used by tests and tooling). *)

val parse_stmt : t -> P_syntax.Ast.stmt
(** Parse a single statement. *)

val program_of_string : ?file:string -> string -> P_syntax.Ast.program
(** Parse a complete program from a string. *)

val program_of_file : string -> P_syntax.Ast.program
(** Parse a complete program from a file on disk. *)
