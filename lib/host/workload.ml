(** Workload driver for the efficiency experiment of section 4.1: deliver
    interrupts to a driver at a fixed simulated rate and measure the
    *wall-clock* cost of handling each event (the simulated clock advances
    instantaneously, so per-event handler cost is isolated from the arrival
    schedule). *)

type stats = {
  events : int;
  total_ns : float;
  mean_ns : float;
  max_ns : float;
  p99_ns : float;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d events, mean %.0f ns, p99 %.0f ns, max %.0f ns" s.events s.mean_ns
    s.p99_ns s.max_ns

(** Run [events] callbacks at [rate_hz] (simulated) against [driver],
    producing per-event wall-time statistics. [make_event i] chooses the
    i-th callback. *)
let run ?(rate_hz = 100) ?(events = 1000) ~(make_event : int -> Os_events.t)
    (driver : Os_events.driver) : stats =
  let clock = Clock.create () in
  let period_us = 1_000_000 / rate_hz in
  let samples = Array.make events 0.0 in
  driver.Os_events.add_device ();
  for i = 0 to events - 1 do
    Clock.schedule clock ~delay_us:((i + 1) * period_us) (fun () ->
        let ev = make_event i in
        let span = P_obs.Mclock.start () in
        driver.Os_events.callback ev;
        samples.(i) <- Int64.to_float (P_obs.Mclock.elapsed_ns span))
  done;
  let dispatched = Clock.run clock in
  assert (dispatched = events);
  driver.Os_events.remove_device ();
  let total = Array.fold_left ( +. ) 0.0 samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { events;
    total_ns = total;
    mean_ns = total /. float_of_int events;
    max_ns = sorted.(events - 1);
    p99_ns = sorted.(min (events - 1) (events * 99 / 100)) }
