(** Chase–Lev work-stealing deque for {!Engine.run_parallel}: the owning
    domain pushes and pops LIFO at the bottom, other domains steal FIFO
    from the top with a single CAS. [top] is monotone (no ABA); the
    circular buffer grows by copying and never shrinks. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: newest element, or [None] when empty (a concurrent stealer
    may win the last element). *)

val steal : ?on_retry:(unit -> unit) -> 'a t -> 'a option
(** Any domain: oldest element, or [None] when the deque is (momentarily)
    empty. Retries internally while losing CAS races against other
    stealers; [on_retry] fires once per lost race (the
    [checker.steal_retries] contention diagnostic). *)

val size : 'a t -> int
(** Racy snapshot — exact only when the owner is quiescent. *)

val is_empty : 'a t -> bool
(** Racy snapshot of [size t = 0]. *)
