(* The full execution stack of section 4: compile the switch-and-LED P
   program (erasing its ghost environment), load the tables into the
   runtime, attach the generic KMDF-style interface skeleton, and drive it
   from the simulated kernel at 100 events per second — the experiment of
   section 4.1 — against the hand-written driver for the same device.

   Run with: dune exec examples/driver_sim.exe *)

let workload driver =
  let device_events = 1_000 in
  P_host.Workload.run ~rate_hz:100 ~events:device_events
    ~make_event:(fun i ->
      P_host.Os_events.Interrupt { line = "switch"; data = i mod 2 })
    driver

let () =
  Fmt.pr "=== switch-and-LED under a 100 events/s interrupt load ===@.";

  let device_p = P_examples_lib.Switch_led.new_device () in
  let p_driver = P_examples_lib.Switch_led.p_driver device_p in
  let p_stats = workload p_driver in
  Fmt.pr "  P-generated driver:   %a@." P_host.Workload.pp_stats p_stats;
  Fmt.pr "    LED writes: %d, final LED state: %b@." device_p.writes device_p.led_on;

  let device_h = P_examples_lib.Switch_led.new_device () in
  let h_driver = P_examples_lib.Switch_led.handwritten_driver device_h in
  let h_stats = workload h_driver in
  Fmt.pr "  hand-written driver:  %a@." P_host.Workload.pp_stats h_stats;
  Fmt.pr "    LED writes: %d, final LED state: %b@." device_h.writes device_h.led_on;

  assert (device_p.led_on = device_h.led_on);

  let budget_ns = 1e9 /. 100.0 in
  Fmt.pr
    "@.at 100 events/s each event has a %.0f µs budget; the P driver uses %.4f%%\n\
     of it per event (the hand-written one %.4f%%) — the asynchrony machinery\n\
     is far below the device-bound 4 ms/event the paper reports.@."
    (budget_ns /. 1e3)
    (100.0 *. p_stats.mean_ns /. budget_ns)
    (100.0 *. h_stats.mean_ns /. budget_ns);

  (* a power/PnP storm exercises the remove path of the interface code *)
  Fmt.pr "=== PnP remove/re-add cycle ===@.";
  let device = P_examples_lib.Switch_led.new_device () in
  let driver = P_examples_lib.Switch_led.p_driver device in
  driver.P_host.Os_events.add_device ();
  driver.P_host.Os_events.callback
    (P_host.Os_events.Interrupt { line = "switch"; data = 1 });
  assert device.led_on;
  driver.P_host.Os_events.remove_device ();
  driver.P_host.Os_events.add_device ();
  driver.P_host.Os_events.callback
    (P_host.Os_events.Interrupt { line = "switch"; data = 0 });
  Fmt.pr "  device survived remove/re-add; LED = %b after SwitchOff@." device.led_on
