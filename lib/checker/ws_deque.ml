(** A Chase–Lev work-stealing deque on OCaml [Atomic]s.

    One domain owns each deque and pushes/pops at the *bottom*; any other
    domain may steal from the *top*. [top] is monotonically increasing
    (claimed-index counter), which rules out ABA on the steal CAS; the
    buffer is a power-of-two circular array grown by copying, and a grown
    buffer never reuses the logical indices still visible to stealers, so
    a stealer racing a grow reads the right element from either array.
    This is the deque of Chase & Lev, "Dynamic circular work-stealing
    deque" (SPAA 2005), restricted to what {!Engine.run_parallel} needs —
    no shrinking.

    OCaml [Atomic] operations are sequentially consistent, which makes the
    published C11 fences of the algorithm implicit; the only relaxed data
    is the buffer contents, and every slot a racy read can observe holds
    the value the winning CAS claims (slots in [top, bottom) are never
    rewritten while an index in that window is unclaimed). The buffer
    *pointer* must not be relaxed: [grow] publishes the doubled array
    through an [Atomic.set] (a release store, as in crossbeam's and the
    C11 Chase–Lev's buffer swap) so a stealer that observes the new array
    also observes the copied contents — with a plain mutable field, a
    stealer could see the fresh pointer but stale [None] slots, win the
    CAS for a claimed index, and silently drop the element. *)

type 'a t = {
  top : int Atomic.t;  (* next index to steal; never decreases *)
  bottom : int Atomic.t;  (* next index to push *)
  buf : 'a option array Atomic.t;  (* length a power of two; owner-resized *)
}

let create () =
  { top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make 16 None) }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
let is_empty t = size t = 0

(* Owner only. Copy the live window [t, b) into a doubled buffer at the
   same logical indices; stale readers of the old buffer still see the
   same elements for every index they can successfully claim. *)
let grow q b top =
  let old = Atomic.get q.buf in
  let osz = Array.length old in
  let nsz = osz * 2 in
  let nbuf = Array.make nsz None in
  for i = top to b - 1 do
    nbuf.(i land (nsz - 1)) <- old.(i land (osz - 1))
  done;
  (* release store: the copy above happens-before any stealer that reads
     [nbuf] out of this atomic *)
  Atomic.set q.buf nbuf

let push q x =
  let b = Atomic.get q.bottom in
  let top = Atomic.get q.top in
  (* keep one slot free so an in-flight stealer of index [top] never races
     a push wrapping onto the same physical slot *)
  if b - top >= Array.length (Atomic.get q.buf) - 1 then grow q b top;
  let buf = Atomic.get q.buf in
  buf.(b land (Array.length buf - 1)) <- Some x;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let top = Atomic.get q.top in
  if b < top then begin
    (* empty: undo the reservation *)
    Atomic.set q.bottom top;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = buf.(b land (Array.length buf - 1)) in
    if b > top then x
    else begin
      (* last element: race the stealers for it *)
      let won = Atomic.compare_and_set q.top top (top + 1) in
      Atomic.set q.bottom (top + 1);
      if won then x else None
    end
  end

let steal ?on_retry q =
  let rec go () =
    let top = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if top >= b then None
    else begin
      (* read the buffer only after [bottom]: whichever array we observe,
         the slot for an index we can still claim was published before the
         [Atomic.set] (of [bottom] or of [buf]) that made it reachable *)
      let buf = Atomic.get q.buf in
      let x = buf.(top land (Array.length buf - 1)) in
      if Atomic.compare_and_set q.top top (top + 1) then x
      else begin
        (* lost to another stealer (or the owner's last pop) *)
        (match on_retry with Some f -> f () | None -> ());
        go ()
      end
    end
  in
  go ()
