(** Delay-bounded systematic testing with the paper's causal delaying
    scheduler (section 5).

    The scheduler keeps a stack [S] of machine identifiers and always runs
    the machine on top for one atomic block. The stack is maintained so that
    the default schedule follows the causal order of events:

    - when the scheduled machine creates [m'], [m'] is pushed on [S];
    - when it sends to [m'] and [m' ∉ S], [m'] is pushed on [S];
    - a *delay* moves the top of [S] to the bottom and costs 1 from the
      budget [d];
    - a machine that blocks (or terminates) is removed from the top; it
      re-enters [S] when an event is next sent to it.

    With budget [d], the explored schedules are those using at most [d]
    delays; [d = 0] is exactly the causal schedule executed by the
    single-threaded runtime ({!P_semantics.Simulate}). Ghost [*] choices are
    enumerated exhaustively at every block — delays only bound *scheduling*
    nondeterminism, as in the paper.

    The search is breadth-first over scheduler states [(configuration,
    stack)]; a state is re-expanded if reached again with a strictly smaller
    delay count, since the spare budget can reach new successors. *)

module Config = P_semantics.Config
module Step = P_semantics.Step
module Mid = P_semantics.Mid
module Trace = P_semantics.Trace
module Symtab = P_static.Symtab

(** Stack discipline on sends and creations: [Causal] pushes the receiver
    on top (the paper's scheduler — it runs next); [Round_robin] appends it
    at the bottom, the baseline delaying scheduler of Emmi et al. that the
    ablation benchmark compares against. *)
type discipline = Causal | Round_robin

type node = { config : Config.t; stack : Mid.t list; delays : int; depth : int; idx : int }

(* Edge bookkeeping for counterexample replay: to reach node [idx], rotate the
   parent's stack [rotations] times and run the top machine with [choices]. *)
type edge = { parent : int; rotations : int; choices : bool list }

type t = {
  tab : Symtab.t;
  canon : Canon.t;
  delay_bound : int;
  max_states : int;
  max_depth : int;
  discipline : discipline;
  dedup : bool;
  seen : (string, int) Hashtbl.t;  (* digest -> smallest delay count seen *)
  edges : edge option Dynarray.t;  (* indexed by node idx; None for the root *)
  stats : Search.stats;
  meters : Search.meters option;
  ticker : Search.ticker;
}

let rotate stack =
  match stack with
  | [] | [ _ ] -> stack
  | top :: rest -> rest @ [ top ]

let rec rotate_k stack k = if k <= 0 then stack else rotate_k (rotate stack) (k - 1)

(* Stack update shared by search, replay, and the d=0 equivalence argument. *)
let apply_outcome ?(discipline = Causal) stack outcome =
  let insert id stack =
    match discipline with Causal -> id :: stack | Round_robin -> stack @ [ id ]
  in
  match (outcome : Step.outcome) with
  | Step.Progress (config, Step.Sent { target; _ }) ->
    let stack =
      if List.exists (Mid.equal target) stack then stack else insert target stack
    in
    Some (config, stack)
  | Step.Progress (config, Step.Created id) -> Some (config, insert id stack)
  | Step.Blocked config | Step.Terminated config ->
    Some (config, match stack with [] -> [] | _ :: rest -> rest)
  | Step.Failed _ | Step.Need_more_choices -> None

(* Replay the edge chain leading to node [idx] to rebuild its trace. *)
let replay t idx : Trace.t =
  let rec chain idx acc =
    match Dynarray.get t.edges idx with
    | None -> acc
    | Some e -> chain e.parent (e :: acc)
  in
  let path = chain idx [] in
  let config0, id0, items0 = Step.initial_config t.tab in
  let rec follow config stack items = function
    | [] -> items
    | e :: rest -> (
      let stack = rotate_k stack e.rotations in
      match stack with
      | [] -> items (* cannot happen on a recorded path *)
      | top :: _ -> (
        let outcome, new_items =
          Step.run_atomic ~dedup:t.dedup t.tab config top ~choices:e.choices
        in
        let items = items @ new_items in
        match apply_outcome ~discipline:t.discipline stack outcome with
        | Some (config, stack) -> follow config stack items rest
        | None -> items (* the final, failing edge *)))
  in
  follow config0 [ id0 ] items0 path

exception Found of Search.counterexample

let record_node t node =
  let digest =
    Canon.digest t.canon node.config (List.map Mid.to_int node.stack)
  in
  match Hashtbl.find_opt t.seen digest with
  | Some best when best <= node.delays ->
    (match t.meters with
    | None -> ()
    | Some m -> P_obs.Metrics.incr m.Search.m_dedup_hits);
    `Seen
  | Some _ ->
    Hashtbl.replace t.seen digest node.delays;
    `Revisit
  | None ->
    Hashtbl.replace t.seen digest node.delays;
    t.stats.states <- t.stats.states + 1;
    (match t.meters with
    | None -> ()
    | Some m ->
      P_obs.Metrics.incr m.Search.m_states;
      P_obs.Metrics.set_max m.Search.m_queue_hwm
        (Search.queue_hwm_of_config node.config));
    `New

let expand t queue node =
  let width = List.length node.stack in
  let max_rot =
    if width <= 1 then 0 else min (t.delay_bound - node.delays) (width - 1)
  in
  for k = 0 to max_rot do
    let stack = rotate_k node.stack k in
    match stack with
    | [] -> ()
    | top :: _ ->
      let resolved = Search.resolutions ~dedup:t.dedup t.tab node.config top in
      List.iter
        (fun (r : Search.resolved) ->
          t.stats.transitions <- t.stats.transitions + 1;
          (match t.meters with
          | None -> ()
          | Some m -> P_obs.Metrics.incr m.Search.m_transitions);
          Search.tick t.ticker;
          match r.outcome with
          | Step.Failed error ->
            let idx = Dynarray.length t.edges in
            Dynarray.add_last t.edges
              (Some { parent = node.idx; rotations = k; choices = r.choices });
            let trace = replay t idx in
            raise (Found { Search.error; trace; depth = node.depth + 1 })
          | Step.Need_more_choices -> assert false
          | outcome -> (
            match apply_outcome ~discipline:t.discipline stack outcome with
            | None -> ()
            | Some (config, stack') ->
              let idx = Dynarray.length t.edges in
              let child =
                { config;
                  stack = stack';
                  delays = node.delays + k;
                  depth = node.depth + 1;
                  idx }
              in
              (match record_node t child with
              | `Seen -> ()
              | `New | `Revisit ->
                Dynarray.add_last t.edges
                  (Some { parent = node.idx; rotations = k; choices = r.choices });
                if child.depth > t.stats.max_depth then
                  t.stats.max_depth <- child.depth;
                Queue.add child queue)))
        resolved
  done

(** Explore all schedules of at most [delay_bound] delays. [max_states]
    and [max_depth] truncate the search (reported in the stats). *)
let explore ?(max_states = 1_000_000) ?(max_depth = max_int) ?(discipline = Causal)
    ?(dedup = true) ?(instr = Search.no_instr) ~delay_bound (tab : Symtab.t) :
    Search.result =
  let stats = Search.new_stats () in
  let t =
    { tab;
      canon = Canon.create tab;
      delay_bound;
      max_states;
      max_depth;
      discipline;
      dedup;
      seen = Hashtbl.create 4096;
      edges = Dynarray.create ();
      stats;
      meters = Search.meters ~engine:"delay_bounded" instr;
      ticker = Search.ticker instr stats }
  in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let finish verdict =
    t.stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    Search.emit_run_span instr ~engine:"delay_bounded" ~t0_us ~stats:t.stats
      [ ("delay_bound", P_obs.Json.Int delay_bound) ];
    { Search.verdict; stats = t.stats }
  in
  let config0, id0, _ = Step.initial_config tab in
  let root = { config = config0; stack = [ id0 ]; delays = 0; depth = 0; idx = 0 } in
  Dynarray.add_last t.edges None;
  ignore (record_node t root);
  let queue = Queue.create () in
  Queue.add root queue;
  try
    while not (Queue.is_empty queue) do
      if t.stats.states >= t.max_states then begin
        t.stats.truncated <- true;
        Queue.clear queue
      end
      else begin
        (match t.meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier
            (float_of_int (Queue.length queue)));
        let node = Queue.pop queue in
        if node.depth < t.max_depth then expand t queue node
        else t.stats.truncated <- true
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)
