(** Shared infrastructure of the systematic-testing engines: ghost-choice
    enumeration, exploration statistics, and verdicts. *)

type resolved = {
  choices : bool list;
  outcome : P_semantics.Step.outcome;  (** never [Need_more_choices] *)
  items : P_semantics.Trace.item list;
}

val default_enumeration_budget : int
(** Default cap on the number of [run_atomic] calls spent enumerating one
    block's [*] resolutions (256 — room for 7 independent choices per
    block, far beyond any realistic program). *)

val resolutions :
  ?fuel:int ->
  ?dedup:bool ->
  ?faults:P_semantics.Fault.plan ->
  ?budget:int ->
  ?on_overflow:(unit -> unit) ->
  P_static.Symtab.t ->
  P_semantics.Config.t ->
  P_semantics.Mid.t ->
  resolved list
(** Every resolution of the ghost [*] choices hit while running one atomic
    block of the machine, in deterministic (false-first) order.

    A block that keeps demanding choices — a cycle of private operations
    that consumes a [*] every lap, which the in-block livelock detector
    cannot see because each lap runs under a different choice prefix —
    would make the depth-first enumeration diverge. [budget] bounds the
    [run_atomic] calls one enumeration may spend; on exhaustion the
    remaining branches are dropped and [on_overflow] fires once, so the
    caller can flag the run as truncated, exactly like a state-budget
    cut. *)

type stats = {
  mutable states : int;  (** distinct scheduler states visited *)
  mutable transitions : int;  (** atomic blocks executed *)
  mutable pruned : int;
      (** enabled moves suppressed by sleep-set reduction ({!Reduce});
          0 with reduction off *)
  mutable max_depth : int;
  mutable truncated : bool;  (** a bound cut the exploration short *)
  mutable faults : int;
      (** injected faults that fired (drop/dup/reorder/delay/crash trace
          items observed); 0 with fault injection off *)
  mutable elapsed_s : float;
  mutable store : State_store.summary option;
      (** the seen set's end-of-run summary (kind, footprint, occupancy,
          omission bound); [None] for engines without a seen set *)
}

val new_stats : unit -> stats

val pp_stats : stats Fmt.t
(** Historical one-line format; a non-exact store appends its footprint
    and (when positive) expected-omission bound. *)

(** {2 Instrumentation}

    Engines accept an {!instr} describing where to report: a metrics
    registry (counted into per-domain shards — see {!P_obs.Metrics}), a
    structured trace sink for lifecycle spans, and a progress callback.
    {!no_instr}, the default, makes every instrumented point a no-op;
    results are identical either way. *)

type instr = {
  metrics : P_obs.Metrics.t option;
  sink : P_obs.Sink.t;
  progress : (stats -> unit) option;
      (** called roughly every [progress_every] transitions with the live
          (mutable) stats *)
  progress_every : int;
  profile : P_obs.Profile.t;
      (** per-domain phase profiler (expand / steal / barrier_wait /
          shard_lock / gc spans); {!P_obs.Profile.null} by default. The
          caller owns its lifecycle: start its GC cursor before the run,
          flush it to a sink after. *)
  telemetry : P_obs.Telemetry.t;
      (** sampling ticker for the states/s time series; engines install a
          probe over their live counters and poke it from tick points *)
}

val no_instr : instr

val instr :
  ?metrics:P_obs.Metrics.t ->
  ?sink:P_obs.Sink.t ->
  ?progress:(stats -> unit) ->
  ?progress_every:int ->
  ?profile:P_obs.Profile.t ->
  ?telemetry:P_obs.Telemetry.t ->
  unit ->
  instr

(** Pre-resolved metric handles for one engine run. Metric names:
    [checker.states], [checker.transitions], [checker.dedup_hits],
    [checker.frontier_depth] (gauge, high-water), [checker.queue_len_hwm]
    (gauge, high-water), [checker.fp_requests], [checker.fp_cache_hits],
    [checker.fp_cache_misses],
    and [checker.fp_collisions] (fingerprint cache totals, added at the end
    of a run) — each labelled with [engine=<name>]. *)
type meters = {
  m_states : P_obs.Metrics.counter;
  m_transitions : P_obs.Metrics.counter;
  m_dedup_hits : P_obs.Metrics.counter;
  m_frontier : P_obs.Metrics.gauge;
  m_queue_hwm : P_obs.Metrics.gauge;
  m_fp_requests : P_obs.Metrics.counter;
  m_fp_hits : P_obs.Metrics.counter;
  m_fp_misses : P_obs.Metrics.counter;
  m_fp_collisions : P_obs.Metrics.counter;
}

val meters : engine:string -> instr -> meters option
val queue_hwm_of_config : P_semantics.Config.t -> float

type ticker

val ticker : instr -> stats -> ticker
val tick : ticker -> unit

val emit_run_span :
  instr ->
  engine:string ->
  t0_us:float ->
  stats:stats ->
  (string * P_obs.Json.t) list ->
  unit

type counterexample = {
  error : P_semantics.Errors.t;
  trace : P_semantics.Trace.t;
  depth : int;  (** atomic blocks from the initial configuration *)
  schedule : (P_semantics.Mid.t * bool list) list;
      (** per atomic block: the machine that ran and the ghost [*]
          resolutions it consumed, from the initial configuration up to
          and including the failing block; scheduler-independent and
          replayable through {!P_semantics.Step.run_atomic} (see
          {!Replay} and {!Trace_file}) *)
}

type verdict = No_error | Error_found of counterexample

type result = { verdict : verdict; stats : stats }

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
