lib/semantics/simulate.ml: Ast Config Errors Fmt List Mid P_static P_syntax Step Trace
