(** Differential replay: one recorded schedule, two implementations of the
    operational semantics. Each atomic block is executed by both the
    checker's interpreter ({!P_semantics.Step.run_atomic}) and the
    compiled table-driven runtime ({!P_runtime.Exec.step_block} over
    {!P_compile.Compile.compile_full} tables), and the resulting states —
    control stacks, stores, queues, [msg]/[arg], the set of live machines
    — are compared structurally after every block. Outcome kinds
    (progress / blocked / terminated / error) are compared rather than
    error messages, which the layers render differently.

    This is the executable form of the paper's claim that verification
    and execution share one semantics: any disagreement is a bug in the
    compiler, the runtime, or the interpreter. *)

type verdict =
  | Agree_clean  (** the whole schedule ran; every intermediate state matched *)
  | Agree_error of string
      (** both layers hit an error configuration in the same block; the
          payload is the interpreter's rendering *)

type outcome =
  | Agree of { blocks : int; verdict : verdict }
  | Mismatch of { step : int; reason : string }
      (** the layers disagreed after (or in) atomic block [step] *)

val pp_outcome : outcome Fmt.t

val run :
  ?faults:P_semantics.Fault.plan ->
  P_static.Symtab.t ->
  (P_semantics.Mid.t * bool list) list ->
  (outcome, string) result
(** Run a schedule through both layers. [Error] is a setup or schedule
    problem (uncompilable program, foreign models — which only the
    interpreter can evaluate —, a machine neither layer has); the
    interesting disagreements are [Ok (Mismatch _)]. [faults] installs
    the same deterministic fault plan on both sides (interpreter via
    {!P_semantics.Step.run_atomic}, runtime via
    {!P_runtime.Exec.set_fault_plan}); both consume fault indices at the
    same hooks in the same order, so the comparison stays exact under
    drops, duplicates, reorders, delays, and crash-restarts. *)

val check_trace : P_static.Symtab.t -> Trace_file.t -> (outcome, string) result
(** {!run} on the artifact's schedule, additionally holding the agreed
    verdict against the error (or clean completion) the artifact
    recorded. A fault plan recorded in the artifact's header is
    re-installed on both layers. Requires a dedup trace: the runtime
    queue only implements the paper's deduplicating [⊕]. *)
