lib/examples_lib/elevator.ml: List P_syntax Stdlib
