lib/checker/delay_bounded.mli: P_semantics P_static Search
