(* The fault-injection determinism contract ({!P_semantics.Fault} under
   the checker): a fixed plan and seed give a bit-identical verdict,
   state count, transition count, and fired-fault count across repeated
   runs, across domain counts, and across engines; an all-zero plan is
   normalized away everywhere; and the spec language round-trips. The
   guard rails (faults × liveness, faults × sleep-set POR) must refuse
   loudly rather than silently explore an unsound product. *)

open P_checker
module Fault = P_semantics.Fault

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let dup_plan = Fault.with_seed 0 { Fault.none with dup = 300 }

(* One run of the verifier under a plan, compressed to everything the
   determinism contract promises to hold fixed. *)
let verify_digest ?domains ?(faults = dup_plan) p =
  let r = Verifier.verify ~delay_bound:2 ~max_states:300_000 ?domains ~faults p in
  match r.Verifier.safety with
  | None -> Alcotest.fail "static checking failed"
  | Some { Search.verdict; stats } ->
    ( (match verdict with
      | Search.No_error -> "clean"
      | Search.Error_found ce -> Fmt.str "error: %a" P_semantics.Errors.pp ce.error),
      stats.Search.states,
      stats.Search.transitions,
      stats.Search.faults )

let test_verify_deterministic_20_runs () =
  (* the acceptance bar: twenty repeats of a fault-injected verification
     agree on verdict, states, transitions, and fired faults *)
  let p = P_examples_lib.Leader_ring.program () in
  let ((verdict, _, _, faults) as first) = verify_digest p in
  check bool_t "the adversary refutes the clean protocol" true (verdict <> "clean");
  check bool_t "faults fired" true (faults > 0);
  for i = 2 to 20 do
    if verify_digest p <> first then
      Alcotest.failf "repeat %d diverged under a fixed plan" i
  done

let test_verify_domain_count_invariant () =
  let p = P_examples_lib.Failover_chain.program () in
  let seq = verify_digest p in
  let d1 = verify_digest ~domains:1 p in
  let d4 = verify_digest ~domains:4 p in
  check bool_t "sequential ≡ 1 domain under faults" true (seq = d1);
  check bool_t "1 domain ≡ 4 domains under faults" true (d1 = d4)

let test_guard_rails () =
  let p = P_examples_lib.Pingpong.program () in
  check bool_t "faults × liveness refused" true
    (try
       ignore (Verifier.verify ~liveness:true ~faults:dup_plan p : Verifier.report);
       false
     with Invalid_argument _ -> true);
  check bool_t "faults × sleep-set POR refused" true
    (try
       ignore (Verifier.verify ~reduce:Reduce.por ~faults:dup_plan p : Verifier.report);
       false
     with Invalid_argument _ -> true);
  (* symmetry canonicalization is sound under injection: a dropped ping
     stalls the protocol, which is safe — the search must come back clean *)
  let drops = Fault.with_seed 3 { Fault.none with drop = 200 } in
  check bool_t "faults × symmetry allowed and clean" true
    (Verifier.is_clean
       (Verifier.verify ~delay_bound:1 ~reduce:Reduce.symmetry ~faults:drops p))

let test_zero_plan_normalized () =
  let p = P_examples_lib.Pingpong.program () in
  let r = Verifier.verify ~delay_bound:1 ~faults:(Fault.with_seed 42 Fault.none) p in
  check bool_t "all-zero plan recorded as no plan" true (r.Verifier.faults = None);
  let digest (r : Verifier.report) =
    match r.Verifier.safety with
    | Some { Search.stats; _ } ->
      (stats.Search.states, stats.Search.transitions, stats.Search.faults)
    | None -> Alcotest.fail "static checking failed"
  in
  check bool_t "identical to the fault-free search" true
    (digest r = digest (Verifier.verify ~delay_bound:1 p))

let test_spec_roundtrip () =
  let ok s =
    match Fault.of_string s with
    | Ok p -> p
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  let p = ok "drop=0.05,dup=0.25,reorder=0.125,delay=0.01,crash=0.002" in
  check int_t "drop per-mille" 50 p.Fault.drop;
  check int_t "dup per-mille" 250 p.Fault.dup;
  check int_t "reorder per-mille" 125 p.Fault.reorder;
  check int_t "delay per-mille" 10 p.Fault.delay;
  check int_t "crash per-mille" 2 p.Fault.crash;
  check bool_t "to_string round-trips" true (Fault.of_string (Fault.to_string p) = Ok p);
  check bool_t "empty spec is none" true (Fault.is_none (ok ""));
  check bool_t "\"none\" is none" true (Fault.is_none (ok "none"));
  List.iter
    (fun s ->
      check bool_t (s ^ " rejected") true (Result.is_error (Fault.of_string s)))
    [ "drop=2.5"; "drop=-0.1"; "bogus=0.5"; "drop"; "drop=abc" ]

let test_simulate_deterministic () =
  let tab = P_static.Check.run_exn (P_examples_lib.Failover_chain.program ()) in
  let plan =
    Fault.with_seed 9
      { Fault.none with drop = 150; dup = 150; reorder = 150; delay = 100; crash = 80 }
  in
  let run () =
    let r =
      P_semantics.Simulate.run ~max_blocks:5_000
        ~policy:(P_semantics.Simulate.policy_seeded 4) ~faults:plan tab
    in
    ( Fmt.str "%a" P_semantics.Simulate.pp_status r.P_semantics.Simulate.status,
      r.P_semantics.Simulate.blocks,
      List.length r.P_semantics.Simulate.trace )
  in
  let a = run () in
  let b = run () in
  check bool_t "same plan, same simulation" true (a = b);
  let zero =
    P_semantics.Simulate.run ~max_blocks:5_000
      ~policy:(P_semantics.Simulate.policy_seeded 4)
      ~faults:(Fault.with_seed 9 Fault.none) tab
  in
  let base =
    P_semantics.Simulate.run ~max_blocks:5_000
      ~policy:(P_semantics.Simulate.policy_seeded 4) tab
  in
  check int_t "all-zero plan simulates fault-free" base.P_semantics.Simulate.blocks
    zero.P_semantics.Simulate.blocks

let suite =
  [ Alcotest.test_case "verify: 20 repeats agree" `Slow test_verify_deterministic_20_runs;
    Alcotest.test_case "verify: domain-count invariant" `Slow
      test_verify_domain_count_invariant;
    Alcotest.test_case "guard rails refuse unsound products" `Quick test_guard_rails;
    Alcotest.test_case "all-zero plan normalized" `Quick test_zero_plan_normalized;
    Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "simulate deterministic" `Quick test_simulate_deterministic ]
