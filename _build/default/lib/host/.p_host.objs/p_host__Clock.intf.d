lib/host/clock.mli:
