(** One-call verification front end: static checks, bounded safety search
    with the delay-bounded scheduler, and (optionally) the liveness checks.
    This is the OCaml counterpart of the paper's "compile to Zing and
    explore" pipeline. *)

module Symtab = P_static.Symtab

type report = {
  static_diagnostics : Symtab.diagnostic list;
  safety : Search.result option;  (** [None] when static checking failed *)
  liveness : Liveness.result option;  (** [None] unless requested and static-clean *)
  seed : int option;
      (** the PRNG seed when the safety search sampled ghost choices
          ([verify ?seed]); recorded so a failure report is reproducible *)
  domains : int option;
      (** how many domains the safety search ran across ([verify
          ?domains]); [None] for the sequential engine *)
  faults : P_semantics.Fault.plan option;
      (** the fault-injection plan the safety search ran under ([verify
          ?faults]); [None] for a well-behaved host *)
}

let is_clean r =
  r.static_diagnostics = []
  && (match r.safety with Some { verdict = Search.No_error; _ } -> true | Some _ -> false | None -> false)
  && match r.liveness with
     | None -> true
     | Some { violations = []; _ } -> true
     | Some _ -> false

let pp_report ppf r =
  (match r.static_diagnostics with
  | [] -> Fmt.pf ppf "static checks: ok@."
  | ds ->
    Fmt.pf ppf "static checks: %d error(s)@." (List.length ds);
    List.iter (fun d -> Fmt.pf ppf "  %a@." Symtab.pp_diagnostic d) ds);
  (match r.safety with
  | None -> ()
  | Some res -> Fmt.pf ppf "safety: %a@." Search.pp_result res);
  (match r.seed with
  | Some s -> Fmt.pf ppf "seed: %d (sampled ghost choices; rerun with --seed %d)@." s s
  | None -> ());
  (match r.domains with
  | Some d -> Fmt.pf ppf "domains: %d (work-stealing parallel safety search)@." d
  | None -> ());
  (match r.faults with
  | Some p ->
    Fmt.pf ppf "faults: %a (seed %d; rerun with --faults %a --fault-seed %d)@."
      P_semantics.Fault.pp p p.P_semantics.Fault.seed P_semantics.Fault.pp p
      p.P_semantics.Fault.seed
  | None -> ());
  match r.liveness with
  | None -> ()
  | Some res ->
    Fmt.pf ppf "liveness: %d violation(s) over %d states%s, %.3fs@."
      (List.length res.violations) res.explored_states
      (if res.complete then "" else " (truncated)")
      res.elapsed_s;
    List.iter
      (fun (v, w) ->
        Fmt.pf ppf "  %a@." Liveness.pp_violation v;
        match w with
        | Some w -> Fmt.pf ppf "  @[<v 2>witness lasso:@ %a@]@." Liveness.pp_witness w
        | None -> ())
      res.witnesses

(* The same xorshift PRNG as {!Random_walk}, so seeded verification runs
   are reproducible without global Random state. *)
let sampled_resolver seed =
  let s = ref ((seed * 2654435761) lor 1) in
  Engine.Sampled
    (fun () ->
      s := !s lxor (!s lsl 13);
      s := !s lxor (!s lsr 7);
      s := !s lxor (!s lsl 17);
      (!s land max_int) mod 2 = 1)

(** Verify a program: static checks, then delay-bounded safety search, then
    (if [liveness]) the fair-cycle liveness analysis. With [seed] the
    safety search samples ghost [*] choices from a PRNG instead of
    enumerating them — a fast reproducible smoke run whose seed lands in
    the report. *)
let verify ?(delay_bound = 2) ?(max_states = 200_000) ?(liveness = false)
    ?liveness_max_states ?(fingerprint = Fingerprint.Incremental)
    ?(store = State_store.Exact) ?store_capacity ?(reduce = Reduce.none) ?seed
    ?domains ?faults ?(instr = Search.no_instr)
    (program : P_syntax.Ast.program) : report =
  (if seed <> None && domains <> None then
     (* sampled resolution draws from one shared PRNG closure, which the
        parallel workers would race on *)
     invalid_arg "Verifier.verify: ~seed and ~domains are mutually exclusive");
  let faults =
    match faults with
    | Some p when P_semantics.Fault.is_none p -> None
    | f -> f
  in
  (if faults <> None && liveness then
     (* the liveness graph is built by a separate engine that does not
        thread fault plans yet; refuse rather than silently checking the
        fault-free graph *)
     invalid_arg "Verifier.verify: ~faults and ~liveness are not supported together");
  let { P_static.Check.symtab; diagnostics } = P_static.Check.run program in
  if diagnostics <> [] then
    { static_diagnostics = diagnostics;
      safety = None;
      liveness = None;
      seed;
      domains;
      faults }
  else
    let safety =
      match domains with
      | Some d ->
        Parallel.explore ~domains:d ~delay_bound ~max_states ~fingerprint
          ~store ?store_capacity ~reduce ?faults ~instr symtab
      | None ->
        let resolver =
          match seed with None -> Engine.Exhaustive | Some s -> sampled_resolver s
        in
        Delay_bounded.explore ~delay_bound ~max_states ~fingerprint ~resolver
          ~store ?store_capacity ~reduce ?faults ~instr symtab
    in
    let liveness_result =
      if liveness && safety.verdict = Search.No_error then
        Some (Liveness.check ?max_states:liveness_max_states ~instr symtab)
      else None
    in
    { static_diagnostics = [];
      safety = Some safety;
      liveness = liveness_result;
      seed;
      domains;
      faults }
