(** Generator of synthetic driver state machines at the scale of the USB
    hub driver case study (Figure 8).

    The paper reports four machines — the hub state machine (HSM, 196
    states / 361 transitions), the 3.0 and 2.0 port state machines (PSM,
    295/752 and 457/1386) and the device state machine (DSM, 1919/4238) —
    each explored to millions of states. The real sources are proprietary,
    so this generator produces machines with the *same state and transition
    counts* and the structural style the paper describes: long transaction
    chains with error/recovery back edges, explicit Ignore handling for
    stale events, deferred low-priority events, and per-machine counters
    that give the exploration the value-state blowup real drivers exhibit.
    Every (state, driving event) pair is handled — by a step, an action
    binding, or a deferral — so the generated machine is
    responsiveness-clean by construction, like the shipped hub driver.

    Determinism: the shape is derived from a small seeded LCG so each named
    machine is stable across runs. *)

type spec = {
  name : string;
  n_states : int;
  n_transitions : int;
      (** steps + calls + action bindings, as counted by
          {!P_syntax.Ast.machine_transition_count} *)
  counter_moduli : int * int;
      (** moduli of the two per-machine counters that inflate the value
          state space *)
}

(* The published Figure 8 sizes. *)
let hsm_spec = { name = "HSM"; n_states = 196; n_transitions = 361; counter_moduli = (64, 32) }
let psm30_spec = { name = "PSM30"; n_states = 295; n_transitions = 752; counter_moduli = (32, 16) }
let psm20_spec = { name = "PSM20"; n_states = 457; n_transitions = 1386; counter_moduli = (32, 16) }
let dsm_spec = { name = "DSM"; n_states = 1919; n_transitions = 4238; counter_moduli = (16, 8) }

let all_specs = [ hsm_spec; psm30_spec; psm20_spec; dsm_spec ]

let lcg seed =
  let state = ref (seed lor 1) in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    (!state lsr 16) mod bound

(* Driving events: the machine's environment alphabet. The generator sizes
   the alphabet so that handling every event in (almost) every state yields
   at least [n_transitions] handled pairs; the surplus pairs are deferred. *)
let alphabet_size spec =
  max 2 ((spec.n_transitions + spec.n_states - 1) / spec.n_states)

let event_name spec k = Fmt.str "%s_ev%d" spec.name k
let state_name_of spec i = Fmt.str "%s_s%d" spec.name i

(* The handler plan: for every (state, event) pair, what the machine does.
   Computed with plain integer arithmetic before the Builder operators are
   opened below. *)
type handler_plan = Forward of int | Back of int | Ignore_it | Defer_it

let plan_of_spec spec : handler_plan array array * string list =
  let n = spec.n_states in
  let a = alphabet_size spec in
  let rand = lcg (Hashtbl.hash spec.name) in
  let total_pairs = n * a in
  let budget = min spec.n_transitions total_pairs in
  let deficit = total_pairs - budget in
  let plan = Array.make_matrix n a Defer_it in
  (* Event 0 always takes a step, so every state both makes progress and
     re-runs an entry statement (no state can absorb the machine with pure
     Ignore handling, which would freeze the counters and close the state
     space early). The deferral deficit is spread evenly over the remaining
     (state, event) pairs. *)
  let rest_pairs = n * (a - 1) in
  for i = 0 to n - 1 do
    plan.(i).(0) <- Forward ((i + 1 + rand 5) mod n);
    for k = 1 to a - 1 do
      let p = (i * (a - 1)) + (k - 1) in
      let deferred =
        rest_pairs > 0 && p * deficit / rest_pairs < (p + 1) * deficit / rest_pairs
      in
      if not deferred then begin
        let kind = rand 100 in
        if kind < 45 then plan.(i).(k) <- Forward ((i + 1 + rand 5) mod n)
        else if kind < 75 then plan.(i).(k) <- Back (max 1 (i - (1 + rand 8)))
        else plan.(i).(k) <- Ignore_it
      end
    done
  done;
  (plan, List.init a (event_name spec))

(* ------------------------------------------------------------------ *)
(* AST construction                                                    *)
(* ------------------------------------------------------------------ *)

open P_syntax.Builder

(** Generate the real machine for [spec], together with the list of its
    driving events (the alphabet the environment may send). *)
let machine_of_spec spec : P_syntax.Ast.machine * string list =
  let plan, alphabet = plan_of_spec spec in
  let m1, m2 = spec.counter_moduli in
  let steps = ref [] in
  let bindings = ref [] in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun k h ->
          match h with
          | Forward j | Back j ->
            steps := (state_name_of spec i, event_name spec k, state_name_of spec j) :: !steps
          | Ignore_it ->
            bindings := on (state_name_of spec i, event_name spec k) ~do_:"Ignore" :: !bindings
          | Defer_it -> ())
        row)
    plan;
  let deferred_of i =
    let acc = ref [] in
    Array.iteri
      (fun k h -> match h with Defer_it -> acc := event_name spec k :: !acc | _ -> ())
      plan.(i);
    !acc
  in
  let counter_tick =
    seq
      [ assign "cnt1" ((v "cnt1" + int 1) % int m1);
        when_ (v "cnt1" == int 0) (assign "cnt2" ((v "cnt2" + int 1) % int m2)) ]
  in
  let states =
    List.init spec.n_states (fun i ->
        let entry =
          if Stdlib.( = ) i 0 then seq [ assign "cnt1" (int 0); assign "cnt2" (int 0) ]
          else counter_tick
        in
        state ~defer:(deferred_of i) ~entry (state_name_of spec i))
  in
  let m =
    machine spec.name
      ~vars:[ var_decl "cnt1" P_syntax.Ptype.Int; var_decl "cnt2" P_syntax.Ptype.Int ]
      ~actions:[ action "Ignore" skip ]
      states ~steps:!steps
  in
  ({ m with P_syntax.Ast.bindings = !bindings }, alphabet)

(** Ghost environment: forever picks one of the machine's driving events
    nondeterministically — the "large number of un-coordinated events ...
    from different sources" of the case study. *)
let env_machine spec alphabet : P_syntax.Ast.machine =
  (* a binary tree of nondeterministic choices over the alphabet *)
  let rec choose evs =
    match evs with
    | [] -> skip
    | [ ev ] -> send (v "target") ev
    | _ ->
      let rec split i acc rest =
        if Stdlib.( = ) i 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (Stdlib.( - ) i 1) (x :: acc) tl
      in
      let half, rest = split (Stdlib.( / ) (List.length evs) 2) [] evs in
      if_ nondet (choose half) (choose rest)
  in
  machine (spec.name ^ "_Env") ~ghost:true
    ~vars:[ var_decl "target" P_syntax.Ptype.Machine_id ]
    [ state "Init" ~entry:(seq [ new_ "target" spec.name []; raise_ "unit" ]);
      state "Drive" ~entry:(seq [ choose alphabet; raise_ "unit" ]) ]
    ~steps:[ ("Init", "unit", "Drive"); ("Drive", "unit", "Drive") ]

(** The closed program for one Figure 8 machine: the synthetic driver
    machine plus its nondeterministic ghost environment. *)
let program_of_spec spec : P_syntax.Ast.program =
  let m, alphabet = machine_of_spec spec in
  let events = List.map event (alphabet @ [ "unit" ]) in
  program ~events ~machines:[ env_machine spec alphabet; m ] (spec.name ^ "_Env")
