(** State-space reduction policies for the exploration engines: sleep-set
    partial-order reduction over scheduler choice points (applied
    parent-side — a pruned move's successors are never keyed or claimed,
    so the reduced state set is a subset of the unreduced one) and
    symmetry canonicalization over machine identities, independently
    selectable.

    Both reductions preserve the verdict kind — an error is found iff the
    unreduced search finds one (up to the delay-budget caveat documented
    in DESIGN.md) — while exploring never more states. Pruning and
    canonicalization are pure functions of the expanded state, so the
    work-stealing engine's determinism contract survives reduction
    unchanged. *)

type t = { por : bool; symmetry : bool }

val none : t
val por : t
val symmetry : t
val full : t

val is_none : t -> bool
val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts [none|por|symmetry|full]. *)

val pp : t Fmt.t

val all : t list
(** The four modes, [none] first — the differential test axis. *)

(** {2 Engine-side machinery}

    Used by {!Engine} during expansion; exposed for the tests. *)

(** The dynamic footprint of one scheduler move, over all its ghost
    resolutions: every machine the block ran on, sent to, spawned, or
    deleted; whether it allocated an identifier; whether any resolution
    failed. *)
type footprint = {
  fp_mids : P_semantics.Mid.Set.t;
  fp_spawns : bool;
  fp_fails : bool;
}

val footprint : P_semantics.Mid.t -> Search.resolved list -> footprint

val independent : footprint -> footprint -> bool
(** Disjoint footprints, not both allocating, neither failing — the two
    moves commute from this state, whichever order they run in. *)
