(** Counterexample minimization: ddmin over recorded schedules, plus
    greedy ghost-choice simplification, every candidate validated by full
    {!Replay} re-execution. The output trace reproduces the exact same
    error as the input and is 1-minimal: no single step can be removed. *)

type stats = {
  original_steps : int;
  shrunk_steps : int;
  original_trues : int;  (** ghost choices resolved [true], before *)
  shrunk_trues : int;  (** … and after simplification *)
  candidates : int;  (** schedules proposed *)
  valid : int;  (** proposals that still reproduced the error *)
  rounds : int;  (** reducer passes until fixpoint *)
  elapsed_s : float;
}

val pp_stats : stats Fmt.t

val run :
  ?instr:Search.instr ->
  P_static.Symtab.t ->
  Trace_file.t ->
  (Trace_file.t * stats, string) Stdlib.result
(** Shrink a failing trace. [Error] when the trace is clean (no error to
    preserve) or does not reproduce its recorded error against [tab]. The
    result's digests are recomputed by {!Replay.record}, so it is a valid
    artifact in its own right. [instr] metrics (labelled [engine=shrink]):
    [shrink.candidates], [shrink.valid], [shrink.steps] (gauge, current
    best); one [shrink.run] span on the sink. *)
