lib/examples_lib/elevator.mli: P_syntax
