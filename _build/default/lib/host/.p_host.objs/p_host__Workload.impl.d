lib/host/workload.ml: Array Clock Fmt Os_events Unix
