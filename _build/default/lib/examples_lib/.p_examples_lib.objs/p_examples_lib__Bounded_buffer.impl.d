lib/examples_lib/bounded_buffer.ml: List P_syntax
