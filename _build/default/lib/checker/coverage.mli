(** Source-level coverage under bounded exploration: which states were
    entered and which declared (state, event) handlers fired. Unexercised
    handlers are dead protocol paths or a sign the environment model is too
    weak — the elevator example was minimized against this report. *)

type t
(** Accumulated coverage observations. *)

val create : P_static.Symtab.t -> t

val observe :
  t -> P_semantics.Config.t -> P_semantics.Mid.t -> P_semantics.Trace.item list -> unit
(** Attribute one atomic block's happenings (state entries, pops, dequeued
    and raised events) to the machine that ran it. *)

val of_exploration :
  ?max_states:int -> delay_bound:int -> P_static.Symtab.t -> t
(** Run the delay-bounded BFS while recording coverage of every explored
    transition. *)

type report = {
  states_total : int;
  states_hit : int;
  handlers_total : int;  (** statically declared (state, event) handlers *)
  handlers_hit : int;
  unvisited_states : (P_syntax.Names.Machine.t * P_syntax.Names.State.t) list;
  unfired_handlers :
    (P_syntax.Names.Machine.t * P_syntax.Names.State.t * P_syntax.Names.Event.t) list;
}

val report : ?include_ghost:bool -> t -> report
(** Summarize against the program's declarations; ghost machines are
    excluded unless [include_ghost]. A handler counts as fired when its
    event was examined in its state — dequeued into it or raised while in
    it. *)

val pp_report : report Fmt.t
