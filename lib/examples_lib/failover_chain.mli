(** A primary-backup failover chain of [n] replicas: a monitor demotes a
    lost primary, waits for its acknowledgement, and promotes the next
    replica; a counted assertion checks at most one replica is ever
    acknowledged active (split-brain freedom). *)

val events : P_syntax.Ast.event_decl list
val replica_machine : P_syntax.Ast.machine
val monitor : n:int -> eager_promote:bool -> P_syntax.Ast.machine
val net : n:int -> P_syntax.Ast.machine

val program : ?n:int -> unit -> P_syntax.Ast.program
(** A chain of [n] (default 3; at least 2) replicas with up to [n] ghost
    loss reports; clean under fault-free exploration. *)

val buggy_program : ?n:int -> unit -> P_syntax.Ast.program
(** The monitor promotes without waiting for the demotion ack, so two
    actives overlap — the split-brain assertion fails. *)
