(* Unit tests for P_syntax: names, types, AST lookups and metrics, the
   builder EDSL, and the pretty-printer. *)

open P_syntax

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- Loc ---------------- *)

let test_loc_pp () =
  check string_t "synthetic" "<builtin>" (Loc.to_string Loc.none);
  check string_t "real" "f.p:3:7" (Loc.to_string (Loc.make ~file:"f.p" ~line:3 ~col:7));
  check bool_t "is_none" true (Loc.is_none Loc.none);
  check bool_t "not none" false (Loc.is_none (Loc.make ~file:"f.p" ~line:1 ~col:0))

let test_loc_compare () =
  let a = Loc.make ~file:"a.p" ~line:2 ~col:1 in
  let b = Loc.make ~file:"a.p" ~line:2 ~col:5 in
  check bool_t "same file line orders by col" true (Loc.compare a b < 0);
  check bool_t "equal" true (Loc.equal a a)

(* ---------------- Names ---------------- *)

let test_names_roundtrip () =
  let e = Names.Event.of_string "Ping" in
  check string_t "to_string" "Ping" (Names.Event.to_string e);
  check bool_t "equal" true (Names.Event.equal e (Names.Event.of_string "Ping"));
  check bool_t "distinct" false (Names.Event.equal e (Names.Event.of_string "Pong"))

let test_names_set_map () =
  let open Names.Event in
  let s = Set.of_list [ of_string "a"; of_string "b"; of_string "a" ] in
  check int_t "set dedups" 2 (Set.cardinal s);
  let m = Map.add (of_string "x") 1 Map.empty in
  check int_t "map" 1 (Map.find (of_string "x") m)

(* ---------------- Ptype ---------------- *)

let test_ptype_strings () =
  List.iter
    (fun ty ->
      match Ptype.of_string (Ptype.to_string ty) with
      | Some ty' -> check bool_t (Ptype.to_string ty) true (Ptype.equal ty ty')
      | None -> Alcotest.failf "of_string failed for %s" (Ptype.to_string ty))
    [ Ptype.Void; Ptype.Bool; Ptype.Int; Ptype.Byte; Ptype.Event; Ptype.Machine_id ];
  check bool_t "unknown" true (Ptype.of_string "float" = None)

let test_ptype_assignable () =
  check bool_t "int into int" true (Ptype.assignable ~from:Ptype.Int ~into:Ptype.Int);
  check bool_t "void into any" true (Ptype.assignable ~from:Ptype.Void ~into:Ptype.Machine_id);
  check bool_t "byte into int" true (Ptype.assignable ~from:Ptype.Byte ~into:Ptype.Int);
  check bool_t "int into byte" true (Ptype.assignable ~from:Ptype.Int ~into:Ptype.Byte);
  check bool_t "bool not into int" false (Ptype.assignable ~from:Ptype.Bool ~into:Ptype.Int);
  check bool_t "event not into id" false
    (Ptype.assignable ~from:Ptype.Event ~into:Ptype.Machine_id)

(* ---------------- Ast lookups ---------------- *)

let sample_machine =
  let open Builder in
  machine "M"
    ~vars:[ var_decl "x" Ptype.Int ]
    ~actions:[ action "A" skip ]
    [ state "S0" ~defer:[ "e1" ] ~postpone:[ "e2" ] ~entry:(assign "x" (int 1));
      state "S1" ~exit:(assign "x" (int 2)) ]
    ~steps:[ ("S0", "e1", "S1") ]
    ~calls:[ ("S1", "e2", "S0") ]
    ~bindings:[ on ("S0", "e2") ~do_:"A" ]

let test_ast_lookups () =
  let m = sample_machine in
  let st = Names.State.of_string in
  let ev = Names.Event.of_string in
  check string_t "initial" "S0" (Names.State.to_string (Ast.initial_state m).state_name);
  check bool_t "step" true (Ast.step_target m (st "S0") (ev "e1") = Some (st "S1"));
  check bool_t "no step" true (Ast.step_target m (st "S1") (ev "e1") = None);
  check bool_t "call" true (Ast.call_target m (st "S1") (ev "e2") = Some (st "S0"));
  check bool_t "trans union" true (Ast.trans_target m (st "S1") (ev "e2") = Some (st "S0"));
  check bool_t "action" true
    (Ast.bound_action m (st "S0") (ev "e2") = Some (Names.Action.of_string "A"));
  check bool_t "deferred" true (Names.Event.Set.mem (ev "e1") (Ast.deferred_set m (st "S0")));
  check bool_t "postponed" true
    (Names.Event.Set.mem (ev "e2") (Ast.postponed_set m (st "S0")));
  check bool_t "action stmt exists" true
    (Ast.action_stmt m (Names.Action.of_string "A") <> None);
  check bool_t "find_var" true (Ast.find_var m (Names.Var.of_string "x") <> None);
  check bool_t "find_var missing" true (Ast.find_var m (Names.Var.of_string "y") = None)

let test_ast_metrics () =
  let m = sample_machine in
  check int_t "states" 2 (Ast.machine_state_count m);
  (* 1 step + 1 call + 1 binding *)
  check int_t "transitions" 3 (Ast.machine_transition_count m)

let test_ast_folds () =
  let s =
    let open Builder in
    seq [ assign "x" (int 1); if_ tru (assign "y" (v "x" + int 2)) skip ]
  in
  let has_nondet =
    let open Builder in
    if_ nondet skip skip
  in
  let stmt_nodes = Ast.fold_stmt (fun n _ -> n + 1) 0 s in
  check bool_t "fold_stmt counts nested" true (stmt_nodes >= 5);
  let exprs = Ast.fold_stmt_exprs (fun n _ -> n + 1) 0 s in
  check bool_t "fold_stmt_exprs sees subexprs" true (exprs >= 5);
  check bool_t "no nondet" false (Ast.stmt_has_nondet s);
  check bool_t "has nondet" true (Ast.stmt_has_nondet has_nondet)

(* ---------------- Builder ---------------- *)

let test_builder_seq () =
  let open Builder in
  (match (seq []).s with
  | Ast.Skip -> ()
  | _ -> Alcotest.fail "seq [] should be skip");
  match (seq [ skip; skip; skip ]).s with
  | Ast.Seq ({ s = Ast.Seq _; _ }, _) -> ()
  | _ -> Alcotest.fail "seq folds left"

let test_builder_send_default_payload () =
  let open Builder in
  match (send this "E").s with
  | Ast.Send (_, _, { e = Ast.Null; _ }) -> ()
  | _ -> Alcotest.fail "send without payload defaults to null"

(* ---------------- Pretty ---------------- *)

let expr_str e = Pretty.expr_to_string e

let test_pretty_precedence () =
  let open Builder in
  check string_t "mul binds tighter" "1 + 2 * 3" (expr_str (int 1 + (int 2 * int 3)));
  check string_t "parens when needed" "(1 + 2) * 3" (expr_str ((int 1 + int 2) * int 3));
  check string_t "cmp and bool" "a < 2 && b" (expr_str (v "a" < int 2 && v "b"));
  check string_t "or of and" "a && b || c" (expr_str (v "a" && v "b" || v "c"));
  check string_t "and of or parens" "a && (b || c)" (expr_str (v "a" && (v "b" || v "c")));
  check string_t "unary" "!a" (expr_str (not_ (v "a")));
  check string_t "negative literal" "(-3)" (expr_str (int (-3)))

let test_pretty_stmt () =
  let open Builder in
  check string_t "assign" "x := 1 + y;" (Pretty.stmt_to_string (assign "x" (int 1 + v "y")));
  check string_t "send no payload" "send(this, E);" (Pretty.stmt_to_string (send this "E"));
  check string_t "raise payload" "raise(E, 4);"
    (Pretty.stmt_to_string (raise_ "E" ~payload:(int 4)))

let test_pretty_program_contains () =
  let p = P_examples_lib.Elevator.program () in
  let s = Pretty.program_to_string p in
  List.iter
    (fun frag ->
      if not (Astring_contains.contains s frag) then
        Alcotest.failf "missing fragment %S" frag)
    [ "ghost machine User"; "machine Elevator"; "defer CloseDoor;"; "push ("; "main User()" ]

let suite =
  [ Alcotest.test_case "loc pp" `Quick test_loc_pp;
    Alcotest.test_case "loc compare" `Quick test_loc_compare;
    Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "names set/map" `Quick test_names_set_map;
    Alcotest.test_case "ptype strings" `Quick test_ptype_strings;
    Alcotest.test_case "ptype assignable" `Quick test_ptype_assignable;
    Alcotest.test_case "ast lookups" `Quick test_ast_lookups;
    Alcotest.test_case "ast metrics" `Quick test_ast_metrics;
    Alcotest.test_case "ast folds" `Quick test_ast_folds;
    Alcotest.test_case "builder seq" `Quick test_builder_seq;
    Alcotest.test_case "builder send payload" `Quick test_builder_send_default_payload;
    Alcotest.test_case "pretty precedence" `Quick test_pretty_precedence;
    Alcotest.test_case "pretty stmt" `Quick test_pretty_stmt;
    Alcotest.test_case "pretty program" `Quick test_pretty_program_contains ]
