(* Test runner: one alcotest section per library plus integration suites. *)

let () =
  Alcotest.run "pcaml"
    [ ("syntax", Test_syntax.suite);
      ("parser", Test_parser.suite);
      ("static", Test_static.suite);
      ("semantics", Test_semantics.suite);
      ("checker", Test_checker.suite);
      ("engine", Test_engine.suite);
      ("store", Test_store.suite);
      ("replay", Test_replay.suite);
      ("faults", Test_faults.suite);
      ("obs", Test_obs.suite);
      ("compile", Test_compile.suite);
      ("runtime", Test_runtime.suite);
      ("equiv", Test_equiv.suite);
      ("sched", Test_sched.suite);
      ("host", Test_host.suite);
      ("examples", Test_examples.suite);
      ("extensions", Test_extensions.suite);
      ("parallel", Test_parallel.suite);
      ("facade", Test_facade.suite);
      ("properties", Test_properties.suite);
      ("quickcheck", Test_quickcheck.suite) ]
