/* Atomic operations on the off-heap slot arena of the compact and bitstate
   state stores (state_store.ml).

   The arena is an (int64, c_layout) Bigarray: its data lives outside the
   OCaml heap and never moves, so a raw pointer into it stays valid across
   GC and can be the target of C11 atomic operations. Every value crossing
   this boundary is an immediate OCaml int (63-bit, via Long_val/Val_long),
   never a boxed Int64 — all four primitives are [@@noalloc] and release no
   locks, so they are safe to call from any domain with no safe-point
   surprises.

   Orderings: claims publish a slot word with acq_rel CAS and read it with
   an acquire load. The slot word itself carries the whole per-state record
   (fingerprint tag + minimal budget spent), so there is no dependent plain
   data to order after it — the acquire/release pairing is only needed for
   the store's own invariant that a non-empty word is fully written. */

#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

static inline int64_t *slot(value ba, value idx)
{
  return ((int64_t *) Caml_ba_data_val(ba)) + Long_val(idx);
}

/* Atomic acquire load of slots.(idx), as an OCaml int. */
CAMLprim value pcaml_store_get(value ba, value idx)
{
  return Val_long(__atomic_load_n(slot(ba, idx), __ATOMIC_ACQUIRE));
}

/* Single-writer (sequential-engine) store: release, no RMW. */
CAMLprim value pcaml_store_set(value ba, value idx, value v)
{
  __atomic_store_n(slot(ba, idx), (int64_t) Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

/* Compare-and-swap slots.(idx): expected -> desired; true iff it won. */
CAMLprim value pcaml_store_cas(value ba, value idx, value expected, value desired)
{
  int64_t exp = (int64_t) Long_val(expected);
  return Val_bool(__atomic_compare_exchange_n(
      slot(ba, idx), &exp, (int64_t) Long_val(desired),
      /* weak: */ 0, __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE));
}

/* Atomic fetch-or of a bit mask into slots.(idx); returns the OLD word —
   the bitstate store's one-shot "was this bit already set" test-and-set. */
CAMLprim value pcaml_store_fetch_or(value ba, value idx, value mask)
{
  return Val_long(
      __atomic_fetch_or(slot(ba, idx), (int64_t) Long_val(mask), __ATOMIC_ACQ_REL));
}
