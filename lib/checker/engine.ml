(** The shared exploration core.

    Every systematic-testing engine in this library walks the same
    transition system — configurations stepped one atomic block at a time,
    ghost [*] choices resolved per block — and differs only in *policy*:
    which machine may run next (scheduler), what a schedule costs (budget),
    how the frontier is ordered (BFS/DFS), whether ghost choices are
    enumerated or sampled, and what happens on an error. Those policies
    used to be five hand-copied BFS loops; this module is the single loop
    they are now instantiations of:

    - {!Delay_bounded}: stack scheduler, budget = delays, exhaustive
      choices, BFS, stop at the first error;
    - {!Depth_bounded}: full nondeterminism, budget = depth (truncating on
      exhaustion), BFS;
    - {!Parallel}: the delay-bounded spec driven by {!run_parallel}, a
      work-stealing search across OCaml 5 domains over a sharded seen set;
    - {!Random_walk}: a one-move random scheduler, sampled choices, no
      seen set — each walk is a degenerate DFS;
    - {!Liveness} and {!Coverage}: full-nondeterminism resp. delay-bounded
      exploration with an {!observer} receiving every state and edge
      ([stop_on_error = false] turns the loop into graph construction).

    State identity is a {!Fingerprint} over the configuration plus the
    scheduler's {!scheduler.encode} extras; counterexamples are replayed
    from a compact edge table (parent index, move code, ghost choices)
    instead of per-node traces, so frontier memory is O(1) per node for
    every engine.

    Determinism contract: for a fixed spec the loop visits nodes, counts
    states/transitions, and reports verdicts identically run over run.
    {!run_parallel} agrees with {!run} on the verdict and the state count
    for any [domains], and its own (verdict, states, transitions) triple
    is independent of [domains] (see its doc for the argument); the engine
    regression tests pin the (verdict, states, transitions) triples to
    their pre-refactor values. *)

module Config = P_semantics.Config
module Step = P_semantics.Step
module Mid = P_semantics.Mid
module Trace = P_semantics.Trace
module Errors = P_semantics.Errors
module Symtab = P_static.Symtab

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

(** Stack discipline on sends and creations: [Causal] pushes the receiver
    on top (the paper's scheduler — it runs next); [Round_robin] appends
    it at the bottom, the baseline delaying scheduler of Emmi et al. *)
type discipline = Causal | Round_robin

let rotate stack =
  match stack with
  | [] | [ _ ] -> stack
  | top :: rest -> rest @ [ top ]

let rec rotate_k stack k = if k <= 0 then stack else rotate_k (rotate stack) (k - 1)

(* Stack update shared by search, replay, and the d=0 equivalence argument. *)
let apply_outcome ?(discipline = Causal) stack outcome =
  let insert id stack =
    match discipline with Causal -> id :: stack | Round_robin -> stack @ [ id ]
  in
  match (outcome : Step.outcome) with
  | Step.Progress (config, Step.Sent { target; _ }) ->
    let stack =
      if List.exists (Mid.equal target) stack then stack else insert target stack
    in
    Some (config, stack)
  | Step.Progress (config, Step.Created id) -> Some (config, insert id stack)
  | Step.Blocked config | Step.Terminated config ->
    Some (config, match stack with [] -> [] | _ :: rest -> rest)
  | Step.Failed _ | Step.Need_more_choices -> None

type 'sched scheduler = {
  init : Mid.t -> 'sched;
  moves :
    Symtab.t -> Config.t -> 'sched -> budget_left:int ->
    (int * 'sched * Mid.t * int) list;
      (** candidate moves in deterministic order, each as [(code,
          scheduler-state positioned at the move, machine to run, budget
          cost)]; [code] is what the edge table stores *)
  decode : 'sched -> int -> ('sched * Mid.t) option;
      (** re-position a recorded move code during replay *)
  apply : 'sched -> Step.outcome -> (Config.t * 'sched) option;
      (** advance past a non-failing outcome; [None] on failure *)
  encode : 'sched -> int list;  (** scheduler part of the state key *)
}

let full_nondet : unit scheduler =
  { init = (fun _ -> ());
    moves =
      (fun tab config () ~budget_left:_ ->
        List.map (fun mid -> (Mid.to_int mid, (), mid, 1)) (Step.enabled tab config));
    decode = (fun () code -> Some ((), Mid.of_int code));
    apply = (fun () outcome -> Option.map (fun c -> (c, ())) (Step.outcome_config outcome));
    encode = (fun () -> []) }

let stack_sched discipline : Mid.t list scheduler =
  { init = (fun id0 -> [ id0 ]);
    moves =
      (fun _tab _config stack ~budget_left ->
        let width = List.length stack in
        let max_rot = if width <= 1 then 0 else min budget_left (width - 1) in
        let rec go k acc =
          if k > max_rot then List.rev acc
          else
            match rotate_k stack k with
            | [] -> List.rev acc
            | top :: _ as s -> go (k + 1) ((k, s, top, k) :: acc)
        in
        go 0 []);
    decode =
      (fun stack k ->
        match rotate_k stack k with [] -> None | top :: _ as s -> Some (s, top));
    apply = (fun stack outcome -> apply_outcome ~discipline stack outcome);
    encode = (fun stack -> List.map Mid.to_int stack) }

let random_pick draw : unit scheduler =
  { full_nondet with
    moves =
      (fun tab config () ~budget_left:_ ->
        match Step.enabled tab config with
        | [] -> []
        | enabled ->
          let mid = List.nth enabled (draw (List.length enabled)) in
          [ (Mid.to_int mid, (), mid, 1) ]) }

(* ------------------------------------------------------------------ *)
(* Specs, observers                                                    *)
(* ------------------------------------------------------------------ *)

type resolver = Exhaustive | Sampled of (unit -> bool)
type frontier = Bfs | Dfs

type edge_dst =
  | Dst_new of int  (** first visit; the state was just assigned this index *)
  | Dst_seen of int  (** the seen set already held this state *)
  | Dst_failed of Errors.t  (** the block reached an error configuration *)

type observer = {
  on_state : int -> Config.t -> unit;
      (** a state enters the seen set, with its dense index (root is 0) *)
  on_edge :
    src:int -> src_config:Config.t -> by:Mid.t -> resolved:Search.resolved ->
    dst:edge_dst -> unit;
      (** every explored transition, including duplicates and failures *)
}

type 'sched spec = {
  scheduler : 'sched scheduler;
  bound : int;  (** the budget: delays, depth, or walk blocks *)
  truncate_on_exhaust : bool;
      (** pop-time check: a node with [spent >= bound] marks the stats
          truncated instead of expanding (depth bounding, walk budgets);
          when false the budget only limits [moves] (delay bounding) *)
  frontier : frontier;
  resolver : resolver;
  track_seen : bool;  (** false = no fingerprints, no dedup (random walk) *)
  dedup : bool;  (** the ⊕ queue append, forwarded to [run_atomic] *)
  stop_on_error : bool;
      (** raise at the first failure (with a replayed trace) vs record the
          edge and keep exploring (graph construction) *)
  max_states : int;
  max_depth : int;
  fp_mode : Fingerprint.mode;
  store : State_store.kind;  (** seen-set representation (default exact) *)
  store_capacity : int option;
      (** arena slots/bits override; [None] sizes from [max_states] *)
  reduce : Reduce.t;
      (** state-space reduction: sleep-set POR and/or symmetry
          canonicalization (default {!Reduce.none}, which reproduces the
          unreduced engine byte for byte) *)
  faults : P_semantics.Fault.plan option;
      (** deterministic fault injection, forwarded to [run_atomic];
          [None] (the default) reproduces the fault-free engine byte for
          byte. Incompatible with sleep-set POR (see {!spec}). *)
}

let spec ?(bound = max_int) ?(truncate_on_exhaust = false) ?(frontier = Bfs)
    ?(resolver = Exhaustive) ?(track_seen = true) ?(dedup = true)
    ?(stop_on_error = true) ?(max_states = 1_000_000) ?(max_depth = max_int)
    ?(fp_mode = Fingerprint.Incremental) ?(store = State_store.Exact)
    ?store_capacity ?(reduce = Reduce.none) ?faults scheduler =
  (* an all-zero plan is exactly faults-off; normalizing here keeps the
     byte-for-byte compatibility guard trivially true *)
  let faults =
    match faults with
    | Some p when P_semantics.Fault.is_none p -> None
    | f -> f
  in
  (* Sleep-set POR argues two commuting blocks reach the same state in
     either order; with faults on, each block's fault decisions depend on
     the fault indices consumed before it, so swapping two blocks changes
     which faults fire and the orders no longer commute. Symmetry stays
     sound (decisions depend only on the index, never on identities). *)
  if faults <> None && reduce.Reduce.por then
    invalid_arg
      "Engine.spec: sleep-set POR is unsound under fault injection \
       (fault-index consumption breaks commutativity); use --reduce none \
       or --reduce symmetry";
  { scheduler;
    bound;
    truncate_on_exhaust;
    frontier;
    resolver;
    track_seen;
    dedup;
    stop_on_error;
    max_states;
    max_depth;
    fp_mode;
    store;
    store_capacity;
    reduce;
    faults }

(* ------------------------------------------------------------------ *)
(* The core                                                            *)
(* ------------------------------------------------------------------ *)

type 'sched node = {
  config : Config.t;
  sched : 'sched;
  spent : int;
  depth : int;
  idx : int;  (** edge-table index, for replay *)
  sidx : int;  (** dense state index, for observers *)
}

(* Edge bookkeeping for counterexample replay: to reach node [idx], decode
   [move] against the parent's scheduler state and run the resulting
   machine with [choices]. *)
type edge = { parent : int; move : int; choices : bool list }

type 'sched t = {
  tab : Symtab.t;
  spec : 'sched spec;
  seen : State_store.t option;  (* None iff [track_seen] is off *)
  edges : edge option Dynarray.t;  (* indexed by node idx; None for the root *)
  stats : Search.stats;
  meters : Search.meters option;
  ticker : Search.ticker;
  observer : observer option;
}

(* A successor produced by expansion, not yet integrated (the same shape
   the parallel driver ships from its workers). The state key is either
   [s_digest] (exact store) or [s_fp] (arena stores) — never both. *)
type 'sched successor = {
  s_digest : string;  (* "" when failed, keyed by [s_fp], or seen set off *)
  s_fp : int;  (* 63-bit fingerprint; 0 when keyed by [s_digest] *)
  s_resolved : Search.resolved;
  s_by : Mid.t;
  s_next : (Config.t * 'sched) option;  (* None = the edge fails *)
  s_spent : int;
  s_depth : int;
  s_parent_idx : int;
  s_parent_sidx : int;
  s_parent_config : Config.t;
  s_move : int;
}

let resolve ?on_overflow spec tab config mid : Search.resolved list =
  match spec.resolver with
  | Exhaustive ->
    Search.resolutions ~dedup:spec.dedup ?faults:spec.faults ?on_overflow tab
      config mid
  | Sampled draw ->
    (* one sampled resolution; draw order matches the historical walker:
       one boolean per Need_more_choices re-run, appended at the end *)
    let rec go rev_choices =
      let choices = List.rev rev_choices in
      match
        Step.run_atomic ~dedup:spec.dedup ?faults:spec.faults tab config mid
          ~choices
      with
      | Step.Need_more_choices, _ -> go (draw () :: rev_choices)
      | outcome, items -> { Search.choices; outcome; items }
    in
    [ go [] ]

(* The state key of (config, sched) under the spec's store and reduction.
   Without symmetry it is byte-identical to the unreduced engine's key.
   Symmetry computes the canonical renaming from the configuration alone
   and applies it both inside the fingerprint and to the scheduler extras
   (stack entries denote machine identifiers), so isomorphic
   (config, stack) pairs collide. *)
let state_key (spec : 'sched spec) fp config sched =
  let rename =
    if spec.reduce.Reduce.symmetry then Fingerprint.renaming fp config else None
  in
  let extras = spec.scheduler.encode sched in
  let extras =
    match rename with None -> extras | Some rn -> List.map rn extras
  in
  if spec.store = State_store.Exact then
    (Fingerprint.digest ?rename fp config extras, 0)
  else ("", Fingerprint.digest_int ?rename fp config extras)

(* Expand one node into raw successors. Pure apart from the fingerprint
   cache and the optional per-resolution counter, both of which are
   worker-local under [run_parallel]. [on_prune] reports how many enabled
   moves sleep-set reduction suppressed at this node.

   Sleep-set POR works parent-side: every move is executed (the
   footprints need the resolutions), and a move whose footprint is
   disjoint from an earlier surviving move's — they commute, whichever
   order they run in — is dropped together with its successors, so a
   pruned successor is never keyed and never claimed in the store. The
   scheduler orders moves cheapest-first, so the surviving move of each
   commuting pair is the one that spends no more budget than the pruned
   one. Pruning depends only on the node's (config, sched) — the state
   key — so expansion stays a pure function of the key and the parallel
   engine's determinism contract holds under reduction. Failing moves are
   never pruned and never prune ([Reduce.independent] rejects them), so
   every error edge of the reduced graph is an error edge of the full
   one. *)
let expand ?expansions ?on_overflow ?on_prune ~fp (t : 'sched t)
    (node : 'sched node) : 'sched successor list =
  let budget_left = t.spec.bound - node.spent in
  let moves = t.spec.scheduler.moves t.tab node.config node.sched ~budget_left in
  let resolved =
    Array.of_list
      (List.map
         (fun ((_, _, mid, _) as mv) ->
           (mv, resolve ?on_overflow t.spec t.tab node.config mid))
         moves)
  in
  let pruned =
    if not t.spec.reduce.Reduce.por then [||]
    else begin
      let fprints =
        Array.map (fun ((_, _, mid, _), rs) -> Reduce.footprint mid rs) resolved
      in
      let n = Array.length fprints in
      let pruned = Array.make n false in
      let n_pruned = ref 0 in
      for j = 1 to n - 1 do
        let covered = ref false in
        for i = 0 to j - 1 do
          if
            (not !covered) && (not pruned.(i))
            && Reduce.independent fprints.(i) fprints.(j)
          then covered := true
        done;
        if !covered then begin
          pruned.(j) <- true;
          incr n_pruned
        end
      done;
      (match on_prune with
      | Some f when !n_pruned > 0 -> f !n_pruned
      | _ -> ());
      pruned
    end
  in
  List.concat
    (List.mapi
       (fun i ((code, sched_m, mid, cost), rs) ->
         if Array.length pruned > 0 && pruned.(i) then []
         else
           List.filter_map
             (fun (r : Search.resolved) ->
               (match expansions with
               | None -> ()
               | Some c -> P_obs.Metrics.incr c);
               let mk ?(s_fp = 0) s_digest s_next =
                 { s_digest;
                   s_fp;
                   s_resolved = r;
                   s_by = mid;
                   s_next;
                   s_spent = node.spent + cost;
                   s_depth = node.depth + 1;
                   s_parent_idx = node.idx;
                   s_parent_sidx = node.sidx;
                   s_parent_config = node.config;
                   s_move = code }
               in
               match r.outcome with
               | Step.Failed _ -> Some (mk "" None)
               | Step.Need_more_choices -> assert false
               | outcome -> (
                 match t.spec.scheduler.apply sched_m outcome with
                 | None -> None
                 | Some ((config', sched') as next) -> (
                   match fp with
                   | None -> Some (mk "" (Some next))
                   | Some fp ->
                     let digest, fpi = state_key t.spec fp config' sched' in
                     if t.spec.store = State_store.Exact then
                       Some (mk digest (Some next))
                     else Some (mk ~s_fp:fpi "" (Some next)))))
             rs)
       (Array.to_list resolved))

(* Replay the edge chain leading to edge-table index [idx] to rebuild the
   trace from the initial configuration, along with the
   scheduler-independent schedule — per block, the machine that ran and
   the ghost choices it consumed — that {!Replay} and the on-disk trace
   artifact re-execute. *)
let replay (t : 'sched t) idx : Trace.t * (Mid.t * bool list) list =
  let rec chain idx acc =
    match Dynarray.get t.edges idx with
    | None -> acc
    | Some e -> chain e.parent (e :: acc)
  in
  let path = chain idx [] in
  let config0, id0, items0 = Step.initial_config t.tab in
  let rec follow config sched items sched_rev = function
    | [] -> (items, List.rev sched_rev)
    | (e : edge) :: rest -> (
      match t.spec.scheduler.decode sched e.move with
      | None -> (items, List.rev sched_rev) (* cannot happen on a recorded path *)
      | Some (sched_m, mid) -> (
        let outcome, new_items =
          Step.run_atomic ~dedup:t.spec.dedup ?faults:t.spec.faults t.tab config
            mid ~choices:e.choices
        in
        let items = items @ new_items in
        let sched_rev = (mid, e.choices) :: sched_rev in
        match t.spec.scheduler.apply sched_m outcome with
        | Some (config, sched) -> follow config sched items sched_rev rest
        | None -> (items, List.rev sched_rev) (* the final, failing edge *)))
  in
  follow config0 (t.spec.scheduler.init id0) items0 [] path

exception Found of Search.counterexample

let observe_edge t (s : 'sched successor) dst =
  match t.observer with
  | None -> ()
  | Some o ->
    o.on_edge ~src:s.s_parent_sidx ~src_config:s.s_parent_config ~by:s.s_by
      ~resolved:s.s_resolved ~dst

(* Injected faults that fired during one resolved block. *)
let count_faults items =
  List.fold_left
    (fun acc it -> match it with Trace.Faulted _ -> acc + 1 | _ -> acc)
    0 items

(* Merge one successor into the seen set / frontier. Sequential also under
   [run_parallel], which keeps both drivers deterministic. *)
let integrate (t : 'sched t) ~push (s : 'sched successor) =
  t.stats.transitions <- t.stats.transitions + 1;
  if t.spec.faults <> None then
    t.stats.faults <- t.stats.faults + count_faults s.s_resolved.items;
  (match t.meters with
  | None -> ()
  | Some m -> P_obs.Metrics.incr m.Search.m_transitions);
  Search.tick t.ticker;
  match s.s_next with
  | None ->
    let error =
      match s.s_resolved.outcome with Step.Failed e -> e | _ -> assert false
    in
    if t.spec.stop_on_error then begin
      let idx = Dynarray.length t.edges in
      Dynarray.add_last t.edges
        (Some { parent = s.s_parent_idx; move = s.s_move; choices = s.s_resolved.choices });
      let trace, schedule = replay t idx in
      raise (Found { Search.error; trace; depth = s.s_depth; schedule })
    end
    else observe_edge t s (Dst_failed error)
  | Some (config', sched') ->
    let record_new () =
      let sidx = t.stats.states in
      t.stats.states <- t.stats.states + 1;
      (match t.meters with
      | None -> ()
      | Some m ->
        P_obs.Metrics.incr m.Search.m_states;
        P_obs.Metrics.set_max m.Search.m_queue_hwm
          (Search.queue_hwm_of_config config'));
      (match t.observer with None -> () | Some o -> o.on_state sidx config');
      sidx
    in
    let enqueue sidx =
      let idx = Dynarray.length t.edges in
      Dynarray.add_last t.edges
        (Some { parent = s.s_parent_idx; move = s.s_move; choices = s.s_resolved.choices });
      if s.s_depth > t.stats.max_depth then t.stats.max_depth <- s.s_depth;
      push
        { config = config';
          sched = sched';
          spent = s.s_spent;
          depth = s.s_depth;
          idx;
          sidx }
    in
    if not t.spec.track_seen then begin
      let sidx = record_new () in
      observe_edge t s (Dst_new sidx);
      enqueue sidx
    end
    else begin
      (* one merge decision, one observation point: whatever the store
         answers, exactly one [observe_edge] fires for this transition *)
      let dst, expand_as =
        match
          State_store.claim (Option.get t.seen) ~worker:0 ~digest:s.s_digest
            ~fp:s.s_fp ~spent:s.s_spent ~new_sidx:t.stats.states
        with
        | State_store.New ->
          let sidx = record_new () in
          (Dst_new sidx, Some sidx)
        | State_store.Dup sidx ->
          (match t.meters with
          | None -> ()
          | Some m -> P_obs.Metrics.incr m.Search.m_dedup_hits);
          (Dst_seen sidx, None)
        | State_store.Reexpand sidx ->
          (* reached again with strictly smaller budget spent: the spare
             budget can reach new successors, so re-expand *)
          (Dst_seen sidx, Some sidx)
        | State_store.Dropped ->
          (* the fixed-capacity store is full: the state is unexplorable,
             exactly like exhausting [max_states] *)
          t.stats.truncated <- true;
          (Dst_seen (-1), None)
      in
      observe_edge t s dst;
      match expand_as with None -> () | Some sidx -> enqueue sidx
    end

(* Guards shared by both drivers: the lossy stores cannot support every
   spec. Budgets past the compact store's 15-bit spent field would break
   the min-spent merge rule silently; observers need real state indices,
   which bitstate never has. *)
let check_store_spec ?observer (spec : 'sched spec) =
  if spec.store <> State_store.Exact then begin
    if spec.bound > State_store.max_exact_spent then
      invalid_arg
        (Printf.sprintf
           "Engine: the %s store tracks budgets up to %d (bound %d given); \
            use --store exact"
           (State_store.kind_to_string spec.store)
           State_store.max_exact_spent spec.bound);
    if spec.store = State_store.Bitstate && observer <> None then
      invalid_arg "Engine: the bitstate store keeps no state indices for observers"
  end

let make_store ?observer ~workers ~profile (spec : 'sched spec) =
  if not spec.track_seen then None
  else
    Some
      (State_store.create ?capacity:spec.store_capacity
         ~need_sidx:(observer <> None && spec.store = State_store.Compact)
         ~profile ~kind:spec.store ~workers ~max_states:spec.max_states ())

(* The root's key under whichever store the spec picked. *)
let root_key (spec : 'sched spec) fp config0 sched0 =
  state_key spec fp config0 sched0

(* Shared prologue: context, root node, root bookkeeping. *)
let init_run ?observer ~instr ~engine (spec : 'sched spec) tab ~fp =
  check_store_spec ?observer spec;
  let stats = Search.new_stats () in
  let t =
    { tab;
      spec;
      seen = make_store ?observer ~workers:1 ~profile:P_obs.Profile.null spec;
      edges = Dynarray.create ();
      stats;
      meters = Search.meters ~engine instr;
      ticker = Search.ticker instr stats;
      observer }
  in
  let config0, id0, _ = Step.initial_config tab in
  let sched0 = spec.scheduler.init id0 in
  Dynarray.add_last t.edges None;
  let root =
    { config = config0;
      sched = sched0;
      spent = 0;
      depth = 0;
      idx = 0;
      sidx = 0 }
  in
  if spec.track_seen then begin
    let digest, fpi = root_key spec (Option.get fp) config0 sched0 in
    ignore
      (State_store.claim (Option.get t.seen) ~worker:0 ~digest ~fp:fpi ~spent:0
         ~new_sidx:0)
  end;
  stats.states <- 1;
  (match t.meters with
  | None -> ()
  | Some m ->
    P_obs.Metrics.incr m.Search.m_states;
    P_obs.Metrics.set_max m.Search.m_queue_hwm (Search.queue_hwm_of_config config0));
  (match observer with None -> () | Some o -> o.on_state 0 config0);
  (t, root)

let flush_fp_meters (t : 'sched t) fps =
  match t.meters with
  | None -> ()
  | Some m ->
    List.iter
      (fun fp ->
        let add c n = if n > 0 then P_obs.Metrics.add c n in
        add m.Search.m_fp_requests (Fingerprint.requests fp);
        add m.Search.m_fp_hits (Fingerprint.hits fp);
        add m.Search.m_fp_misses (Fingerprint.misses fp);
        add m.Search.m_fp_collisions (Fingerprint.collisions fp))
      fps

(** Run a spec to completion on the current domain. *)
let run ?(instr = Search.no_instr) ?observer ?(span_args = []) ~engine
    (spec : 'sched spec) (tab : Symtab.t) : Search.result =
  let fp =
    if spec.track_seen then Some (Fingerprint.create ~mode:spec.fp_mode tab)
    else None
  in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let t, root = init_run ?observer ~instr ~engine spec tab ~fp in
  let finish verdict =
    t.stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    (match t.seen with
    | None -> ()
    | Some st -> t.stats.store <- Some (State_store.summary st));
    flush_fp_meters t (Option.to_list fp);
    Search.emit_run_span instr ~engine ~t0_us ~stats:t.stats span_args;
    { Search.verdict; stats = t.stats }
  in
  let queue = Queue.create () in
  let dfs_stack = ref [] in
  let push n =
    match spec.frontier with Bfs -> Queue.add n queue | Dfs -> dfs_stack := n :: !dfs_stack
  in
  let is_empty () =
    match spec.frontier with Bfs -> Queue.is_empty queue | Dfs -> !dfs_stack = []
  in
  let pop () =
    match spec.frontier with
    | Bfs -> Queue.pop queue
    | Dfs -> (
      match !dfs_stack with
      | [] -> raise Queue.Empty
      | n :: rest ->
        dfs_stack := rest;
        n)
  in
  let clear () =
    Queue.clear queue;
    dfs_stack := []
  in
  let frontier_len () =
    match spec.frontier with Bfs -> Queue.length queue | Dfs -> List.length !dfs_stack
  in
  P_obs.Profile.register_worker instr.Search.profile ~worker:0;
  P_obs.Telemetry.set_meta instr.Search.telemetry
    [ ("store", P_obs.Json.String (State_store.kind_to_string spec.store)) ];
  P_obs.Telemetry.set_probe instr.Search.telemetry (fun () ->
      { P_obs.Telemetry.states = t.stats.states;
        transitions = t.stats.transitions;
        frontier = float_of_int (frontier_len ());
        steals = 0;
        steal_attempts = 0;
        store_bytes =
          (match t.seen with
          | None -> 0
          | Some st -> State_store.live_bytes st);
        shed = 0 });
  push root;
  try
    while not (is_empty ()) do
      if t.stats.states >= spec.max_states then begin
        t.stats.truncated <- true;
        clear ()
      end
      else begin
        (match t.meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier (float_of_int (frontier_len ())));
        let node = pop () in
        if node.depth >= spec.max_depth then t.stats.truncated <- true
        else if spec.truncate_on_exhaust && node.spent >= spec.bound then
          t.stats.truncated <- true
        else begin
          (* one [Expand] span per node; a [Found] raise loses only the
             final span, never the aggregate totals of completed ones *)
          let pt0 = P_obs.Profile.start instr.Search.profile in
          List.iter (integrate t ~push)
            (expand
               ~on_overflow:(fun () -> t.stats.truncated <- true)
               ~on_prune:(fun k -> t.stats.pruned <- t.stats.pruned + k)
               ~fp t node);
          P_obs.Profile.record instr.Search.profile ~worker:0 P_obs.Profile.Expand
            ~t0:pt0
        end
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)

(* ------------------------------------------------------------------ *)
(* Work-stealing parallel driver                                       *)
(* ------------------------------------------------------------------ *)

(* A reusable two-phase barrier: generation-counted so the same barrier
   separates every stratum. [parties = 1] degenerates to a no-op, which is
   how [run_parallel ~domains:1] runs the identical code path. *)
module Barrier = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable waiting : int;
    mutable generation : int;
  }

  let make parties =
    { lock = Mutex.create ();
      cond = Condition.create ();
      parties;
      waiting = 0;
      generation = 0 }

  let await b =
    Mutex.lock b.lock;
    let gen = b.generation in
    b.waiting <- b.waiting + 1;
    if b.waiting = b.parties then begin
      b.waiting <- 0;
      b.generation <- gen + 1;
      Condition.broadcast b.cond
    end
    else
      while b.generation = gen do
        Condition.wait b.cond b.lock
      done;
    Mutex.unlock b.lock
end

(** Run a spec as a work-stealing parallel search: [domains] workers, each
    owning a Chase–Lev deque ({!Ws_deque}) of nodes, stealing from each
    other when their own deque drains, over a shared {!State_store} (the
    exact store shards itself behind mutexes; the compact store arbitrates
    claims with lock-free CAS on its off-heap arena).

    The search is *stratified by budget spent*: zero-cost successors stay
    in the current stratum (pushed on the discovering worker's deque);
    positive-cost successors are buffered per worker and only claimed
    against the seen set when their stratum starts, after a barrier. With
    strata processed in ascending spent order, every state is claimed and
    expanded exactly once, at its minimal spent (the min-spent re-expand
    rule of {!integrate} can never fire), so the (states, transitions)
    totals are independent of [domains] and of steal order — a constant
    three barriers per stratum (buckets seeded / stratum drained / next
    stratum chosen), at most [bound + 1] strata, where the
    level-synchronous predecessor of this driver paid one barrier per BFS
    level.

    On the first failing edge every worker stops and the counterexample is
    re-derived by the sequential {!run} on the same spec, making the
    reported (verdict, states, transitions, counterexample) byte-identical
    to the sequential engine's — the deterministic tiebreak (sequential
    discovery order = lowest dense state index), not arrival order. This
    is sound because a worker only explores states the sequential engine
    also reaches, and monotone budgets mean the sequential run finds an
    error whenever any parallel worker did. Because the sequential claim
    order differs, a capped rerun that misses the observed error is
    retried without [max_states] rather than reporting [No_error].

    [max_states] is charged against a shared atomic only when a claim
    discovers a new state — as in the sequential loop, a run completes iff
    it discovers strictly fewer than [max_states] states — so a truncated
    run's counts may vary with [domains]; non-truncated runs are exactly
    deterministic. [spec.frontier] must be [Bfs]; observers are not
    supported. *)
let run_parallel ?(instr = Search.no_instr) ?(span_args = []) ~engine ~domains
    (spec : 'sched spec) (tab : Symtab.t) : Search.result =
  if spec.frontier <> Bfs then
    invalid_arg "Engine.run_parallel: frontier must be Bfs";
  if not spec.track_seen then
    (* without a seen set there is nothing to share; the sequential loop is
       the same search *)
    run ~instr ~span_args ~engine spec tab
  else begin
    check_store_spec spec;
    let n = max 1 domains in
    let started = P_obs.Mclock.start () in
    let t0_us = P_obs.Mclock.now_us () in
    (* per-worker fingerprint contexts, persistent across strata; digests
       are canonical, so separate caches yield identical keys *)
    let fps = Array.init n (fun _ -> Fingerprint.create ~mode:spec.fp_mode tab) in
    let counter name =
      match instr.Search.metrics with
      | None -> None
      | Some reg ->
        Some (P_obs.Metrics.counter reg ~labels:[ ("engine", engine) ] name)
    in
    let expansions = counter "checker.expansions" in
    let m_steals = counter "checker.steals" in
    let m_steal_attempts = counter "checker.steal_attempts" in
    let m_steal_retries = counter "checker.steal_retries" in
    let m_contention = counter "checker.shard_contention" in
    let m_cas_retries = counter "checker.store_cas_retries" in
    let prof = instr.Search.profile in
    let stats = Search.new_stats () in
    (* ---- shared state ---- *)
    let store =
      Option.get (make_store ~workers:n ~profile:prof spec)
      (* track_seen holds on this branch *)
    in
    let t =
      { tab;
        spec;
        seen = Some store;
        edges = Dynarray.create ();
        stats;
        meters = Search.meters ~engine instr;
        ticker = Search.ticker instr stats;
        observer = None;
        }
    in
    let states = Atomic.make 0 in
    let pending = Atomic.make 0 in
    (* stop = abandon the search (error found or max_states hit) *)
    let stop = Atomic.make false in
    let error_found = Atomic.make false in
    let truncated = Atomic.make false in
    let deques = Array.init n (fun _ -> Ws_deque.create ()) in
    (* future-stratum nodes, buffered per worker: spent -> (key, node) *)
    let buckets : (int, (string * int * 'sched node) list) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 8)
    in
    (* written by worker 0 between the two barrier phases, read by all
       after the second: the barrier's mutex publishes them *)
    let continue_ = ref true in
    let cur_stratum = ref 0 in
    let barrier = Barrier.make n in
    (* per-worker tallies, merged after the join *)
    let w_transitions = Array.make n 0 in
    let w_faults = Array.make n 0 in
    let w_pruned = Array.make n 0 in
    let w_dedup = Array.make n 0 in
    let w_maxdepth = Array.make n 0 in
    let w_qhwm = Array.make n 0.0 in
    let w_steals = Array.make n 0 in
    let w_steal_attempts = Array.make n 0 in
    let w_steal_retries = Array.make n 0 in
    (* pre-allocated per worker so the steal loop passes a closure without
       allocating one per attempt *)
    let on_retry =
      Array.init n (fun w () -> w_steal_retries.(w) <- w_steal_retries.(w) + 1)
    in
    (* live totals for the telemetry sampler: racy plain reads of the
       per-worker tallies, memory-safe and monotonically slightly stale,
       like the progress ticker's *)
    P_obs.Telemetry.set_meta instr.Search.telemetry
      [ ("store", P_obs.Json.String (State_store.kind_to_string spec.store)) ];
    P_obs.Telemetry.set_probe instr.Search.telemetry (fun () ->
        { P_obs.Telemetry.states = Atomic.get states;
          transitions = Array.fold_left ( + ) 0 w_transitions;
          frontier = float_of_int (Atomic.get pending);
          steals = Array.fold_left ( + ) 0 w_steals;
          steal_attempts = Array.fold_left ( + ) 0 w_steal_attempts;
          store_bytes = State_store.live_bytes store;
          shed = 0 });
    let bucket_add w spent entry =
      let b = buckets.(w) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt b spent) in
      Hashtbl.replace b spent (entry :: prev)
    in
    (* Claim a node for expansion in the current stratum; true = enqueued.
       The claim is the store's — CAS-arbitrated (compact) or shard-locked
       (exact), either way exactly one winner per state. [New] claims
       happen exactly once per state; because strata are processed in
       ascending spent order, the first claim of a state is already at its
       minimal spent and [Reexpand] is unreachable (kept for safety).
       The state budget is charged only on [New] claims, mirroring the
       sequential loop (which completes iff it discovers strictly fewer
       than [max_states] states): duplicate successors arriving at the
       boundary must not flag a completed run as truncated. The state
       that reaches the budget is counted but never expanded, exactly as
       the sequential engine counts it and then clears the frontier. *)
    let claim_now w digest fp (node : 'sched node) =
      match
        State_store.claim store ~worker:w ~digest ~fp ~spent:node.spent
          ~new_sidx:0
      with
      | State_store.Dup _ ->
        w_dedup.(w) <- w_dedup.(w) + 1;
        false
      | State_store.Dropped ->
        (* the store's arena is full: like exhausting [max_states] *)
        Atomic.set truncated true;
        Atomic.set stop true;
        false
      | (State_store.New | State_store.Reexpand _) as d ->
        let over_budget =
          d = State_store.New
          && begin
               let s = 1 + Atomic.fetch_and_add states 1 in
               (match t.meters with
               | None -> ()
               | Some _ ->
                 let q = Search.queue_hwm_of_config node.config in
                 if q > w_qhwm.(w) then w_qhwm.(w) <- q);
               s >= spec.max_states
             end
        in
        if over_budget then begin
          Atomic.set truncated true;
          Atomic.set stop true;
          false
        end
        else begin
          if node.depth > w_maxdepth.(w) then w_maxdepth.(w) <- node.depth;
          Atomic.incr pending;
          Ws_deque.push deques.(w) node;
          true
        end
    in
    let process w (node : 'sched node) =
      if node.depth >= spec.max_depth then Atomic.set truncated true
      else if spec.truncate_on_exhaust && node.spent >= spec.bound then
        Atomic.set truncated true
      else
        List.iter
          (fun (s : 'sched successor) ->
            w_transitions.(w) <- w_transitions.(w) + 1;
            if spec.faults <> None then
              w_faults.(w) <- w_faults.(w) + count_faults s.s_resolved.items;
            match s.s_next with
            | None ->
              (* a failing edge; [stop_on_error = false] graph builds are
                 not driven through this engine (observers unsupported), so
                 the edge only counts as a transition in that case *)
              if spec.stop_on_error then begin
                Atomic.set error_found true;
                Atomic.set stop true
              end
            | Some (config', sched') ->
              let node' =
                { config = config';
                  sched = sched';
                  spent = s.s_spent;
                  depth = s.s_depth;
                  idx = 0;
                  sidx = 0 }
              in
              if s.s_spent = node.spent then
                ignore (claim_now w s.s_digest s.s_fp node')
              else
                (* claimed when its stratum is seeded: claiming here would
                   race discoveries at smaller spent and make the expansion
                   count depend on arrival order *)
                bucket_add w s.s_spent (s.s_digest, s.s_fp, node'))
          (expand ?expansions
             ~on_overflow:(fun () -> Atomic.set truncated true)
             ~on_prune:(fun k -> w_pruned.(w) <- w_pruned.(w) + k)
             ~fp:(Some fps.(w)) t node)
    in
    let steal_from w =
      let rec go k =
        if k >= n - 1 then None
        else begin
          let v = (w + 1 + k) mod n in
          w_steal_attempts.(w) <- w_steal_attempts.(w) + 1;
          match Ws_deque.steal ~on_retry:on_retry.(w) deques.(v) with
          | Some _ as r ->
            w_steals.(w) <- w_steals.(w) + 1;
            r
          | None -> go (k + 1)
        end
      in
      go 0
    in
    (* worker 0 drives the shared progress ticker with approximate totals;
       plain reads of other workers' tallies are racy but memory-safe *)
    let tick_every = 1024 in
    let ticked = ref 0 in
    let tick w =
      if w = 0 then begin
        incr ticked;
        if !ticked >= tick_every then begin
          ticked := 0;
          stats.states <- Atomic.get states;
          stats.transitions <- Array.fold_left ( + ) 0 w_transitions;
          Search.tick t.ticker;
          (* directly, not through the ticker's own count gate: this point
             already fires only once per [tick_every] pops, and both calls
             are further time-gated internally *)
          P_obs.Telemetry.tick instr.Search.telemetry;
          P_obs.Profile.poll_gc prof
        end
      end
    in
    let expand_profiled w node =
      let pt0 = P_obs.Profile.start prof in
      process w node;
      P_obs.Profile.record prof ~worker:w P_obs.Profile.Expand ~t0:pt0
    in
    let rec work w =
      if Atomic.get stop then ()
      else
        match Ws_deque.pop deques.(w) with
        | Some node ->
          expand_profiled w node;
          Atomic.decr pending;
          tick w;
          work w
        | None ->
          if Atomic.get pending = 0 then ()
          else begin
            let pt0 = P_obs.Profile.start prof in
            let stolen = steal_from w in
            P_obs.Profile.record prof ~worker:w P_obs.Profile.Steal ~t0:pt0;
            match stolen with
            | Some node ->
              expand_profiled w node;
              Atomic.decr pending;
              tick w;
              work w
            | None ->
              Domain.cpu_relax ();
              work w
          end
    in
    (* seed this worker's buffered nodes for stratum [snum] *)
    let seed w snum =
      match Hashtbl.find_opt buckets.(w) snum with
      | None -> ()
      | Some entries ->
        Hashtbl.remove buckets.(w) snum;
        List.iter
          (fun (digest, fp, node) ->
            if not (Atomic.get stop) then ignore (claim_now w digest fp node))
          entries
    in
    let await_profiled w =
      let pt0 = P_obs.Profile.start prof in
      Barrier.await barrier;
      P_obs.Profile.record prof ~worker:w P_obs.Profile.Barrier_wait ~t0:pt0
    in
    let rec strata w =
      seed w !cur_stratum;
      (* every bucket is seeded (and [pending] fully incremented) before
         any worker can enter [work]: otherwise a worker with an empty
         bucket could observe [pending = 0], park for the stratum, and
         leave its peers' freshly seeded nodes to fewer domains *)
      await_profiled w;
      work w;
      await_profiled w;
      (* quiescent window: every worker is between the two barriers *)
      if w = 0 then
        if Atomic.get stop then continue_ := false
        else begin
          Atomic.set pending 0;
          let next =
            Array.fold_left
              (fun acc b ->
                Hashtbl.fold
                  (fun k _ acc ->
                    match acc with Some m when m <= k -> acc | _ -> Some k)
                  b acc)
              None buckets
          in
          match next with
          | None -> continue_ := false
          | Some snum ->
            cur_stratum := snum;
            continue_ := true;
            (match t.meters with
            | None -> ()
            | Some m ->
              let width =
                Array.fold_left
                  (fun acc b ->
                    acc
                    + List.length
                        (Option.value ~default:[] (Hashtbl.find_opt b snum)))
                  0 buckets
              in
              P_obs.Metrics.set_max m.Search.m_frontier (float_of_int width))
        end;
      await_profiled w;
      if !continue_ then strata w
    in
    (* root: stratum 0, worker 0's bucket *)
    let config0, id0, _ = Step.initial_config tab in
    let sched0 = spec.scheduler.init id0 in
    let root_digest, root_fp = root_key spec fps.(0) config0 sched0 in
    let root =
      { config = config0;
        sched = sched0;
        spent = 0;
        depth = 0;
        idx = 0;
        sidx = 0 }
    in
    bucket_add 0 0 (root_digest, root_fp, root);
    let handles =
      List.init (n - 1) (fun i ->
          Domain.spawn (fun () ->
              P_obs.Profile.register_worker prof ~worker:(i + 1);
              strata (i + 1)))
    in
    P_obs.Profile.register_worker prof ~worker:0;
    strata 0;
    List.iter Domain.join handles;
    (* merge the per-worker tallies *)
    stats.states <- Atomic.get states;
    stats.transitions <- Array.fold_left ( + ) 0 w_transitions;
    stats.faults <- Array.fold_left ( + ) 0 w_faults;
    stats.pruned <- Array.fold_left ( + ) 0 w_pruned;
    stats.max_depth <- Array.fold_left max 0 w_maxdepth;
    stats.truncated <- Atomic.get truncated;
    stats.store <- Some (State_store.summary store);
    let flush_steals () =
      let add cm arr =
        match cm with
        | None -> ()
        | Some c ->
          let total = Array.fold_left ( + ) 0 arr in
          if total > 0 then P_obs.Metrics.add c total
      in
      add m_steals w_steals;
      add m_steal_attempts w_steal_attempts;
      add m_steal_retries w_steal_retries;
      (* claim-arbitration diagnostics come from the store: blocked shard
         locks for exact, lost CAS races for compact *)
      let add_n cm v =
        match cm with
        | None -> ()
        | Some c -> if v > 0 then P_obs.Metrics.add c v
      in
      let sm = State_store.summary store in
      add_n m_contention sm.State_store.s_contention;
      add_n m_cas_retries sm.State_store.s_cas_retries
    in
    if Atomic.get error_found then begin
      (* Deterministic counterexample: re-derive it sequentially on the
         same spec. The result — verdict, counterexample, stats — is the
         sequential engine's, byte-identical for every [domains]; the
         parallel detection phase contributes only wall-clock, the
         fingerprint/steal diagnostics flushed here, and the
         [checker.expansions] it performed. *)
      flush_steals ();
      flush_fp_meters t (Array.to_list fps);
      let r =
        run ~instr ~engine
          ~span_args:(span_args @ [ ("rederived", P_obs.Json.Bool true) ])
          spec tab
      in
      let r =
        match r.Search.verdict with
        | Search.Error_found _ -> r
        | Search.No_error when spec.max_states < max_int ->
          (* The sequential claim order differs from the stratified
             parallel order, so the capped rerun can exhaust [max_states]
             before reaching the error the parallel search actually
             observed. That error is real (a parallel worker only expands
             states the uncapped sequential engine also reaches, at no
             larger spent), so retry without the state cap rather than
             silently discarding the counterexample behind a clean
             verdict. *)
          run ~instr ~engine
            ~span_args:
              (span_args
              @ [ ("rederived", P_obs.Json.Bool true);
                  ("uncapped", P_obs.Json.Bool true) ])
            { spec with max_states = max_int }
            tab
        | Search.No_error -> r
      in
      r.Search.stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
      r
    end
    else begin
      stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
      (match t.meters with
      | None -> ()
      | Some m ->
        P_obs.Metrics.add m.Search.m_states stats.states;
        P_obs.Metrics.add m.Search.m_transitions stats.transitions;
        let dedup = Array.fold_left ( + ) 0 w_dedup in
        if dedup > 0 then P_obs.Metrics.add m.Search.m_dedup_hits dedup;
        P_obs.Metrics.set_max m.Search.m_queue_hwm
          (Array.fold_left max 0.0 w_qhwm));
      flush_steals ();
      flush_fp_meters t (Array.to_list fps);
      Search.emit_run_span instr ~engine ~t0_us ~stats span_args;
      { Search.verdict = Search.No_error; stats }
    end
  end
