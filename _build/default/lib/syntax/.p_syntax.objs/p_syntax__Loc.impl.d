lib/syntax/loc.ml: Fmt Int String
