(** Compact canonical encodings of global configurations.

    The explicit-state search needs to ask "was this configuration (together
    with the scheduler stack) seen before?" millions of times. Marshalling
    whole configurations would serialize every statement AST hanging off the
    machines' agendas, so instead we intern every statement of the program
    once and encode a configuration as a byte string of small integers:
    interned names, interned statements, values, queues, frames, agendas.
    The encoding is injective for configurations of a fixed program, so its
    MD5 digest is a sound state key (up to digest collision). *)

open P_syntax
module Symtab = P_static.Symtab
module Machine = P_semantics.Machine
module Config = P_semantics.Config
module Value = P_semantics.Value
module Equeue = P_semantics.Equeue
module Mid = P_semantics.Mid

module Stmt_tbl = Hashtbl.Make (struct
  type t = Ast.stmt

  (* Physical equality: agenda statements are always subterms of the program,
     interned up front. The structural hash is consistent with [==] and
     stable under GC moves. *)
  let equal = ( == )
  let hash (s : t) = Hashtbl.hash s
end)

type t = {
  stmt_ids : int Stmt_tbl.t;
  mutable next_stmt : int;
  event_ids : int Names.Event.Tbl.t;
  state_ids : int Names.State.Tbl.t;
  machine_ids : int Names.Machine.Tbl.t;
  var_ids : int Names.Var.Tbl.t;
  action_ids : int Names.Action.Tbl.t;
  buf : Buffer.t;
  mutable rn : (int -> int) option;
      (** renaming applied to every machine identifier while encoding:
          symmetry reduction digests the π-renamed configuration without
          materializing it. [None] = identity. *)
}

(* Intern every statement node of the program, physical identity keyed.
   Statements reached at runtime are subterms of these, *except* the
   synthetic Skip nodes the builder may share; interning is therefore lazy
   with a fallback id assigned on first sight. *)
let intern_stmt t (s : Ast.stmt) =
  match Stmt_tbl.find_opt t.stmt_ids s with
  | Some id -> id
  | None ->
    let id = t.next_stmt in
    t.next_stmt <- id + 1;
    Stmt_tbl.add t.stmt_ids s id;
    id

let rec intern_all t (s : Ast.stmt) =
  let _ = intern_stmt t s in
  match s.Ast.s with
  | Ast.Seq (a, b) | Ast.If (_, a, b) ->
    intern_all t a;
    intern_all t b
  | Ast.While (_, body) -> intern_all t body
  | Ast.Skip | Ast.Assign _ | Ast.New _ | Ast.Delete | Ast.Send _ | Ast.Raise _
  | Ast.Leave | Ast.Return | Ast.Assert _ | Ast.Call_state _ | Ast.Foreign_stmt _ -> ()

let create (tab : Symtab.t) : t =
  let t =
    { stmt_ids = Stmt_tbl.create 1024;
      next_stmt = 0;
      event_ids = Names.Event.Tbl.create 64;
      state_ids = Names.State.Tbl.create 256;
      machine_ids = Names.Machine.Tbl.create 32;
      var_ids = Names.Var.Tbl.create 64;
      action_ids = Names.Action.Tbl.create 32;
      buf = Buffer.create 512;
      rn = None }
  in
  List.iteri
    (fun i (ev : Ast.event_decl) -> Names.Event.Tbl.replace t.event_ids ev.event_name i)
    tab.program.events;
  List.iteri
    (fun i (m : Ast.machine) ->
      Names.Machine.Tbl.replace t.machine_ids m.machine_name i;
      List.iteri
        (fun j (st : Ast.state) ->
          if not (Names.State.Tbl.mem t.state_ids st.state_name) then
            Names.State.Tbl.replace t.state_ids st.state_name ((i * 1000) + j))
        m.states;
      List.iteri
        (fun j (vd : Ast.var_decl) ->
          if not (Names.Var.Tbl.mem t.var_ids vd.var_name) then
            Names.Var.Tbl.replace t.var_ids vd.var_name ((i * 1000) + j))
        m.vars;
      List.iteri
        (fun j (ad : Ast.action_decl) ->
          if not (Names.Action.Tbl.mem t.action_ids ad.action_name) then
            Names.Action.Tbl.replace t.action_ids ad.action_name ((i * 1000) + j))
        m.actions;
      List.iter (fun s -> intern_all t s) (Ast.machine_stmts m))
    tab.program.machines;
  t

(* --- primitive encoders --- *)

let add_int t i =
  (* variable-length little-endian; sufficient and fast *)
  let rec go i =
    if i land lnot 0x7f = 0 then Buffer.add_char t.buf (Char.chr i)
    else begin
      Buffer.add_char t.buf (Char.chr (0x80 lor (i land 0x7f)));
      go (i lsr 7)
    end
  in
  go (if i < 0 then (-2 * i) - 1 else 2 * i)

let add_mid t i =
  match t.rn with None -> add_int t i | Some f -> add_int t (f i)

let add_event t e = add_int t (Names.Event.Tbl.find t.event_ids e)
let add_state t n = add_int t (Names.State.Tbl.find t.state_ids n)
let add_machine_name t m = add_int t (Names.Machine.Tbl.find t.machine_ids m)
let add_var t x = add_int t (Names.Var.Tbl.find t.var_ids x)
let add_action t a = add_int t (Names.Action.Tbl.find t.action_ids a)

let add_value t (v : Value.t) =
  match v with
  | Value.Null -> add_int t 0
  | Value.Bool false -> add_int t 1
  | Value.Bool true -> add_int t 2
  | Value.Int i ->
    add_int t 3;
    add_int t i
  | Value.Event e ->
    add_int t 4;
    add_event t e
  | Value.Machine id ->
    add_int t 5;
    add_mid t (Mid.to_int id)

let add_task t (task : Machine.task) =
  match task with
  | Machine.Exec s ->
    add_int t 0;
    add_int t (intern_stmt t s)
  | Machine.Handle (e, v) ->
    add_int t 1;
    add_event t e;
    add_value t v
  | Machine.Pop_return -> add_int t 2
  | Machine.Pop_frame -> add_int t 3
  | Machine.Enter n ->
    add_int t 4;
    add_state t n

let add_machine t (m : Machine.t) =
  add_machine_name t m.name;
  add_mid t (Mid.to_int m.self);
  add_int t (List.length m.frames);
  List.iter
    (fun (fr : Machine.frame) ->
      add_state t fr.fr_state;
      add_int t (Names.Event.Map.cardinal fr.fr_amap);
      Names.Event.Map.iter
        (fun e h ->
          add_event t e;
          match h with
          | Machine.Defer -> add_int t 0
          | Machine.Do a ->
            add_int t 1;
            add_action t a)
        fr.fr_amap;
      add_int t (List.length fr.fr_cont);
      List.iter (add_task t) fr.fr_cont)
    m.frames;
  add_int t (Names.Var.Map.cardinal m.store);
  Names.Var.Map.iter
    (fun x v ->
      add_var t x;
      add_value t v)
    m.store;
  (match m.msg with
  | None -> add_int t 0
  | Some e ->
    add_int t 1;
    add_event t e);
  add_value t m.arg;
  add_int t (List.length m.agenda);
  List.iter (add_task t) m.agenda;
  add_int t (Equeue.length m.queue);
  List.iter
    (fun (entry : Equeue.entry) ->
      add_event t entry.event;
      add_value t entry.payload)
    (Equeue.to_list m.queue)

(** Every machine identifier held by [m] — its own [self] plus every
    [Value.Machine] reference in its continuations, store, argument,
    agenda, and queue — visited in exactly the order {!add_machine} emits
    them. This is the reference order the symmetry renaming's traversal
    follows, so it must be kept in lockstep with the encoding. *)
let iter_machine_mids (m : Machine.t) (f : int -> unit) =
  let value (v : Value.t) =
    match v with Value.Machine id -> f (Mid.to_int id) | _ -> ()
  in
  let task (tk : Machine.task) =
    match tk with Machine.Handle (_, v) -> value v | _ -> ()
  in
  f (Mid.to_int m.self);
  List.iter (fun (fr : Machine.frame) -> List.iter task fr.fr_cont) m.frames;
  Names.Var.Map.iter (fun _ v -> value v) m.store;
  value m.arg;
  List.iter task m.agenda;
  List.iter (fun (entry : Equeue.entry) -> value entry.payload) (Equeue.to_list m.queue)

let with_rename t rename f =
  match rename with
  | None -> f ()
  | Some _ ->
    t.rn <- rename;
    Fun.protect ~finally:(fun () -> t.rn <- None) f

(** [machine_digest t id m]: MD5 of the canonical encoding of the single
    machine [m] bound at [id] — the per-machine unit the incremental
    fingerprint caches. Mirrors exactly the per-machine segment of
    {!digest}'s encoding. With [?rename] every machine identifier in the
    encoding (the binding id included) goes through the renaming first. *)
let machine_digest ?rename t (id : Mid.t) (m : Machine.t) : string =
  with_rename t rename (fun () ->
      Buffer.clear t.buf;
      add_mid t (Mid.to_int id);
      add_machine t m;
      Digest.string (Buffer.contents t.buf))

(** Identity-blind digest of one machine: the same encoding with every
    machine identifier masked to a constant. Machines of one type that
    differ only in which identities they hold collapse to one shape —
    symmetry reduction sorts same-type machines by this key to pick a
    canonical permutation without re-encoding per candidate order. *)
let machine_shape_digest t (m : Machine.t) : string =
  machine_digest ~rename:(fun _ -> 0) t Mid.first m

(** Machine bindings in ascending order of their (possibly renamed) id —
    the iteration order of the configuration encoding, which must follow
    the *canonical* ids for renamed and identity digests of symmetric
    configurations to collide. *)
let sorted_bindings t (config : Config.t) =
  match t.rn with
  | None -> Config.fold (fun id m acc -> (id, m) :: acc) config [] |> List.rev
  | Some f ->
    Config.fold (fun id m acc -> (id, m) :: acc) config []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (f (Mid.to_int a)) (f (Mid.to_int b)))

(** [digest t config extra]: MD5 of the canonical encoding of [config]
    followed by the integers [extra] (used for the scheduler stack).
    [?rename] digests the π-renamed configuration: ids mapped pointwise,
    machines visited in renamed-id order. [extra] is *not* renamed here —
    the caller owns its meaning and renames it if needed. *)
let digest ?rename t (config : Config.t) (extra : int list) : string =
  with_rename t rename (fun () ->
      let bindings = sorted_bindings t config in
      Buffer.clear t.buf;
      add_int t (Mid.to_int config.next_id);
      add_int t (Config.live_count config);
      List.iter
        (fun (id, m) ->
          add_mid t (Mid.to_int id);
          add_machine t m)
        bindings;
      add_int t (List.length extra);
      List.iter (add_int t) extra;
      (* Fault-point counter, appended only when a fault plan has consumed
         indices, so fault-free digests are byte-compatible with every
         artifact written before fault injection existed. Injective: [extra]
         is length-prefixed, so a trailing varint cannot be confused with
         extra content. *)
      if config.fseq > 0 then add_int t config.fseq;
      Digest.string (Buffer.contents t.buf))
