(** Depth-bounded systematic testing: the baseline bounding technique the
    paper contrasts with delay bounding (section 1: "the complexity of
    depth-bounded search increases exponentially with execution depth").

    At every scheduling point any enabled machine may run next — full
    scheduling nondeterminism — and exploration is cut at [depth_bound]
    atomic blocks. Unlike the delaying scheduler there is no stack
    discipline, so the branching factor is the number of enabled machines.

    This is {!Engine.run} over {!Engine.full_nondet} with budget = depth
    and [truncate_on_exhaust]: a node popped with its budget spent marks
    the run truncated instead of expanding. Counterexamples are replayed
    from the shared edge table — frontier nodes carry no traces. *)

(** Explore every interleaving of at most [depth_bound] atomic blocks.
    Breadth-first so reported counterexamples are shortest. *)
let explore ?(max_states = 1_000_000) ?(fingerprint = Fingerprint.Incremental)
    ?(instr = Search.no_instr) ~depth_bound (tab : P_static.Symtab.t) :
    Search.result =
  let spec =
    Engine.spec ~bound:depth_bound ~truncate_on_exhaust:true ~max_states
      ~fp_mode:fingerprint Engine.full_nondet
  in
  Engine.run ~instr ~engine:"depth_bounded"
    ~span_args:[ ("depth_bound", P_obs.Json.Int depth_bound) ]
    spec tab
