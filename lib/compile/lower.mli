(** Lowering an erased (real-only) P program to the table IR of
    {!Tables}. The input must have passed {!P_static.Check} and
    {!P_static.Erasure}: ghost machines and the nondeterministic [*]
    expression are refused. *)

exception Not_compilable of string

val lower :
  ?name:string -> ?full:bool -> P_syntax.Ast.program -> Tables.driver
(** Compile to driver tables; [name] labels the driver (default
    ["driver"]). Raises {!Not_compilable} on surviving ghost fragments or
    dangling names. With [~full:true] the un-erased program is lowered
    instead: ghost machines are kept and [*] becomes {!Tables.cexpr.CNondet}
    — tables in this form are for the differential-replay executor only and
    are rejected by {!C_emit}. *)
