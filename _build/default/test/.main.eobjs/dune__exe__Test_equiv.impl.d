test/test_equiv.ml: Alcotest Fmt List P_compile P_examples_lib P_runtime P_semantics P_static
