(** A minimal self-contained JSON tree, printer, and parser for the
    observability layer: metrics dumps, Chrome trace_event files, and bench
    result documents, plus the tests that read them back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Non-finite floats print as [null]. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering with a trailing newline, for files meant
    to be read by humans as well as machines. *)

val pp : t Fmt.t

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document. Raises {!Parse_error}. *)

(** {2 Accessors} *)

val member : string -> t -> t option
val path : t -> string list -> t option
(** [path j ["a"; "b"]] is [j.a.b] when every step is an object field. *)

val to_int : t -> int option
val to_float : t -> float option
(** Also accepts [Int] (JSON does not distinguish). *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
