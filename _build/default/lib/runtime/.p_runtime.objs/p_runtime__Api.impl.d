lib/runtime/api.ml: Context Exec List Option P_compile Rt_value
