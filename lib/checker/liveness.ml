(** Checking the two responsiveness (liveness) properties of section 3.2.

    The paper specifies the properties in LTL but leaves their verification
    to future work (section 5); this module implements them for finite state
    spaces by fair-cycle detection over the full-interleaving state graph:

    - Property 1 (no private divergence), violated by executions satisfying
      [∃m. ◇□ sched(m)]: a reachable cycle all of whose steps are taken by
      one machine. Because a cycle of *private* operations never reaches a
      scheduling point, that violation is already caught inside a single
      atomic block by {!P_semantics.Step} (the [Livelock] error); here we
      additionally catch cycles a machine sustains on its own through its
      scheduling points (e.g. sending to itself forever).

    - Property 2 (no event deferred forever), violated by fair executions
      satisfying [∃m,e,m'. ◇(enq(m,e,m') ∧ □¬deq(m',e))], refined by the
      [postpone] annotation: we search for a strongly connected subgraph in
      which (a) every machine continuously enabled throughout the component
      is scheduled on some internal edge — the fairness side condition
      [∀m. fair(m)] — and (b) some queue entry is pending in every state of
      the component and dequeued on none of its edges, and (c) under the
      refined check, the entry's event is not in the postponed set of its
      queue's machine in any state of the component (a conservative witness
      for [◇□¬ppn]).

    The analysis is a cover-cycle argument: inside one SCC a single cycle can
    traverse any chosen set of states and edges, so conditions quantified
    over the whole component witness a genuine lasso. *)

open P_syntax
module Config = P_semantics.Config
module Step = P_semantics.Step
module Machine = P_semantics.Machine
module Equeue = P_semantics.Equeue
module Mid = P_semantics.Mid
module Value = P_semantics.Value
module Symtab = P_static.Symtab

type violation =
  | Private_divergence of { mid : Mid.t; machine : Names.Machine.t }
      (** property 1: machine [mid] can run forever alone *)
  | Deferred_forever of {
      mid : Mid.t;  (** the machine whose queue holds the starved entry *)
      machine : Names.Machine.t;
      event : Names.Event.t;
      payload : Value.t;
    }  (** property 2: the entry can stay queued forever under fairness *)

let pp_violation ppf = function
  | Private_divergence { mid; machine } ->
    Fmt.pf ppf "liveness: machine %a %a can be scheduled forever (cycle of its own steps)"
      Names.Machine.pp machine Mid.pp mid
  | Deferred_forever { mid; machine; event; _ } ->
    Fmt.pf ppf
      "liveness: event %a sent to machine %a %a can be deferred forever under fair \
       scheduling"
      Names.Event.pp event Names.Machine.pp machine Mid.pp mid

(** A lasso witness: a finite prefix from the initial configuration to the
    violating component, and one cycle inside it (for property 1, a cycle of
    the diverging machine's own steps; for property 2, a representative
    cycle of the component in which the starved entry stays queued). *)
type witness = {
  prefix : P_semantics.Trace.t;
  cycle : P_semantics.Trace.t;
  cycle_machines : Mid.t list;  (** who is scheduled around the cycle *)
}

type result = {
  violations : violation list;
  witnesses : (violation * witness option) list;
      (** the same violations, each with a lasso witness when one could be
          reconstructed *)
  explored_states : int;
  complete : bool;  (** false when [max_states] truncated the graph *)
  elapsed_s : float;  (** wall-clock for graph construction + analysis *)
}

(* ---------------- graph construction ---------------- *)

type edge = {
  dst : int;
  by : Mid.t;
  choices : bool list;  (* ghost resolutions, for witness replay *)
  dequeued : (Mid.t * Names.Event.t * Value.t) list;
}

type graph = {
  configs : Config.t Dynarray.t;
  succs : edge list array ref;  (* resized alongside configs *)
  parents : (int * Mid.t * bool list) option array ref;
      (* first-discovery tree, for witness prefixes *)
  n : int;
}

(* The full-interleaving graph is an {!Engine.run} over [full_nondet] with
   an observer collecting states, edges, and the first-discovery tree;
   [stop_on_error:false] turns the loop into pure graph construction. *)
let build_graph ?(max_states = 50_000) (tab : Symtab.t) =
  let configs = Dynarray.create () in
  let succs = Dynarray.create () in
  let parents = Dynarray.create () in
  let observer =
    { Engine.on_state =
        (fun _i config ->
          Dynarray.add_last configs config;
          Dynarray.add_last succs [];
          Dynarray.add_last parents None);
      on_edge =
        (fun ~src ~src_config:_ ~by ~resolved ~dst ->
          match dst with
          | Engine.Dst_failed _ ->
            () (* safety errors are the safety checker's job *)
          | Engine.Dst_new j | Engine.Dst_seen j ->
            let dequeued =
              List.filter_map
                (function
                  | P_semantics.Trace.Dequeued { mid; event; payload } ->
                    Some (mid, event, payload)
                  | _ -> None)
                resolved.Search.items
            in
            Dynarray.set succs src
              ({ dst = j; by; choices = resolved.Search.choices; dequeued }
              :: Dynarray.get succs src);
            if match dst with Engine.Dst_new _ -> true | _ -> false then
              Dynarray.set parents j (Some (src, by, resolved.Search.choices))) }
  in
  let spec = Engine.spec ~stop_on_error:false ~max_states Engine.full_nondet in
  let r = Engine.run ~observer ~engine:"liveness" spec tab in
  let n = Dynarray.length configs in
  let arr = Array.make (max n 1) [] in
  let par = Array.make (max n 1) None in
  for i = 0 to n - 1 do
    arr.(i) <- Dynarray.get succs i;
    par.(i) <- Dynarray.get parents i
  done;
  ({ configs; succs = ref arr; parents = ref par; n }, not r.Search.stats.truncated)

(* ---------------- Tarjan SCC ---------------- *)

let sccs (g : graph) : int list list =
  let index = Array.make (max g.n 1) (-1) in
  let lowlink = Array.make (max g.n 1) 0 in
  let on_stack = Array.make (max g.n 1) false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  (* iterative Tarjan to survive deep graphs *)
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun e ->
        if index.(e.dst) = -1 then begin
          strongconnect e.dst;
          lowlink.(v) <- min lowlink.(v) lowlink.(e.dst)
        end
        else if on_stack.(e.dst) then lowlink.(v) <- min lowlink.(v) index.(e.dst))
      !(g.succs).(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !components

(* ---------------- lasso witnesses ---------------- *)

(* Edges from the discovery tree, root first. *)
let path_to_root (g : graph) v : (int * Mid.t * bool list) list =
  let rec up v acc =
    match !(g.parents).(v) with
    | None -> acc
    | Some (p, mid, choices) -> up p ((p, mid, choices) :: acc)
  in
  up v []

(* A simple cycle through the subgraph of [members] whose edges satisfy
   [restrict], if any: DFS keeping the explicit path, closing at the first
   back edge onto the current path. Returns (start node, edges). *)
let find_cycle (g : graph) members ~restrict v0 : (int * (int * edge) list) option =
  let on_path = Hashtbl.create 16 in
  let exception Cycle of int * (int * edge) list in
  let rec dfs v path =
    Hashtbl.replace on_path v (List.length path);
    List.iter
      (fun e ->
        if List.mem e.dst members && restrict e then
          match Hashtbl.find_opt on_path e.dst with
          | Some depth ->
            (* close the loop: keep the path suffix from e.dst onward *)
            let suffix = List.filteri (fun i _ -> i >= depth) (List.rev path) in
            raise (Cycle (e.dst, List.rev (List.rev suffix) @ [ (v, e) ]))
          | None -> dfs e.dst ((v, e) :: path))
      !(g.succs).(v);
    Hashtbl.remove on_path v
  in
  try
    dfs v0 [];
    None
  with Cycle (start, edges) -> Some (start, edges)

(* Execute a list of (source node, scheduled machine, ghost choices) against
   the stored configurations, collecting the trace items. *)
let replay_edges tab (g : graph) (edges : (int * Mid.t * bool list) list) :
    P_semantics.Trace.t =
  List.concat_map
    (fun (src, mid, choices) ->
      let config = Dynarray.get g.configs src in
      snd (Step.run_atomic tab config mid ~choices))
    edges

let witness_of tab (g : graph) members ~restrict : witness option =
  (* try each member as a cycle anchor *)
  let rec try_members = function
    | [] -> None
    | v :: rest -> (
      match find_cycle g members ~restrict v with
      | None -> try_members rest
      | Some (start, cycle_edges) ->
        let prefix = replay_edges tab g (path_to_root g start) in
        let cycle =
          replay_edges tab g
            (List.map (fun (src, e) -> (src, e.by, e.choices)) cycle_edges)
        in
        Some
          { prefix;
            cycle;
            cycle_machines = List.map (fun (_, e) -> e.by) cycle_edges })
  in
  try_members members

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>prefix (%d steps):@,%a@,cycle (%d steps, scheduling %a):@,%a@]"
    (List.length w.prefix) P_semantics.Trace.pp w.prefix (List.length w.cycle)
    Fmt.(list ~sep:comma Mid.pp)
    w.cycle_machines P_semantics.Trace.pp w.cycle

(* ---------------- property checks over one SCC ---------------- *)

let internal_edges g members v =
  List.filter (fun e -> List.mem e.dst members) !(g.succs).(v)

(* Does the subgraph of [members] restricted to edges by [m] contain a cycle?
   (it does iff that restriction has a nontrivial SCC or a self-loop) *)
let machine_cycle g members m =
  let sub = List.map (fun v -> (v, List.filter (fun e -> Mid.equal e.by m) (internal_edges g members v))) members in
  (* DFS-based cycle detection on the small subgraph *)
  let color = Hashtbl.create 16 in
  let rec dfs v =
    match Hashtbl.find_opt color v with
    | Some `Done -> false
    | Some `Active -> true
    | None ->
      Hashtbl.replace color v `Active;
      let cyc = List.exists (fun e -> dfs e.dst) (try List.assoc v sub with Not_found -> []) in
      Hashtbl.replace color v `Done;
      cyc
  in
  List.exists (fun (v, _) -> dfs v) sub

(* Returns each violation with the edge restriction its witness cycle must
   satisfy. *)
let check_scc ?(ignore_ghost_divergence = true) tab g members :
    (violation * (edge -> bool)) list =
  let nontrivial =
    match members with
    | [ v ] -> List.exists (fun e -> e.dst = v) !(g.succs).(v)
    | _ :: _ :: _ -> true
    | [] -> false
  in
  if not nontrivial then []
  else begin
    let configs = List.map (fun v -> Dynarray.get g.configs v) members in
    let edges = List.concat_map (fun v -> internal_edges g members v) members in
    let machines_in_scc =
      List.fold_left
        (fun acc c -> Config.fold (fun id _ acc -> Mid.Set.add id acc) c acc)
        Mid.Set.empty configs
    in
    (* property 1: a cycle of steps all by one machine *)
    let p1 =
      Mid.Set.fold
        (fun m acc ->
          let name =
            List.find_map
              (fun c -> Option.map (fun (mm : Machine.t) -> mm.name) (Config.find c m))
              configs
          in
          let ghost =
            match name with
            | Some n -> Symtab.is_ghost_machine tab n
            | None -> false
          in
          (* ghost machines model the environment, which is allowed to run
             forever; only real machines must not diverge *)
          if (not (ignore_ghost_divergence && ghost)) && machine_cycle g members m then
            ( Private_divergence
                { mid = m;
                  machine = Option.value name ~default:(Names.Machine.of_string "?") },
              fun e -> Mid.equal e.by m )
            :: acc
          else acc)
        machines_in_scc []
    in
    (* fairness side condition for property 2 *)
    let enabled_in c id =
      match Config.find c id with
      | None -> false
      | Some m -> Machine.is_enabled (Symtab.machine_info_exn tab m.Machine.name) m
    in
    let fair =
      Mid.Set.for_all
        (fun m ->
          List.exists (fun c -> not (enabled_in c m)) configs
          || List.exists (fun e -> Mid.equal e.by m) edges)
        machines_in_scc
    in
    let p2 =
      if not fair then []
      else begin
        (* entries pending in every state and dequeued on no internal edge *)
        let entries_of c =
          Config.fold
            (fun id m acc ->
              List.fold_left
                (fun acc (en : Equeue.entry) -> (id, en.event, en.payload) :: acc)
                acc
                (Equeue.to_list m.Machine.queue))
            c []
        in
        match configs with
        | [] -> []
        | first :: others ->
          let candidate (id, ev, pl) =
            List.for_all
              (fun c ->
                List.exists
                  (fun (id', ev', pl') ->
                    Mid.equal id id' && Names.Event.equal ev ev' && Value.equal pl pl')
                  (entries_of c))
              others
            && not
                 (List.exists
                    (fun e ->
                      List.exists
                        (fun (id', ev', pl') ->
                          Mid.equal id id' && Names.Event.equal ev ev'
                          && Value.equal pl pl')
                        e.dequeued)
                    edges)
            && (* refined check: never postponed anywhere in the component *)
            List.for_all
              (fun c ->
                match Config.find c id with
                | None -> false
                | Some m -> (
                  match Machine.current_state m with
                  | None -> false
                  | Some st ->
                    let mi = Symtab.machine_info_exn tab m.Machine.name in
                    not (Names.Event.Set.mem ev (Symtab.postponed_set mi st))))
              (first :: others)
          in
          List.filter_map
            (fun ((id, ev, pl) as entry) ->
              if candidate entry then
                match Config.find first id with
                | Some m ->
                  Some
                    ( Deferred_forever
                        { mid = id; machine = m.Machine.name; event = ev; payload = pl },
                      fun (_ : edge) -> true )
                | None -> None
              else None)
            (entries_of first)
      end
    in
    p1 @ p2
  end

(* Deduplicate violations across SCCs, keeping the first witness seen. *)
let dedup vs =
  List.fold_left
    (fun acc ((v, _) as item) ->
      if List.exists (fun (v', _) -> v = v') acc then acc else item :: acc)
    [] vs
  |> List.rev

(** Run both liveness checks on the (bounded) full-interleaving state graph,
    reconstructing a lasso witness for every violation found. *)
let check ?max_states ?ignore_ghost_divergence ?(instr = Search.no_instr)
    (tab : Symtab.t) : result =
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let g, complete = build_graph ?max_states tab in
  let found =
    List.concat_map
      (fun members ->
        List.map
          (fun (v, restrict) -> (v, members, restrict))
          (check_scc ?ignore_ghost_divergence tab g members))
      (sccs g)
    |> List.map (fun (v, members, restrict) -> (v, (members, restrict)))
    |> dedup
  in
  let witnesses =
    List.map
      (fun (v, (members, restrict)) -> (v, witness_of tab g members ~restrict))
      found
  in
  let elapsed_s = P_obs.Mclock.elapsed_s started in
  (match instr.Search.metrics with
  | None -> ()
  | Some reg ->
    let labels = [ ("engine", "liveness") ] in
    P_obs.Metrics.add (P_obs.Metrics.counter reg ~labels "checker.states") g.n;
    P_obs.Metrics.add
      (P_obs.Metrics.counter reg ~labels "checker.violations")
      (List.length witnesses));
  if P_obs.Sink.enabled instr.Search.sink then
    P_obs.Sink.complete instr.Search.sink ~cat:"engine" ~name:"liveness.check"
      ~ts_us:t0_us
      ~dur_us:(P_obs.Mclock.now_us () -. t0_us)
      ~args:
        [ ("graph_states", P_obs.Json.Int g.n);
          ("violations", P_obs.Json.Int (List.length witnesses));
          ("complete", P_obs.Json.Bool complete) ]
      ();
  { violations = List.map fst witnesses;
    witnesses;
    explored_states = g.n;
    complete;
    elapsed_s }
