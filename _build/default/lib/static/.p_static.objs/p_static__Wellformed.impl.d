lib/static/wellformed.ml: Ast Fmt Format List Loc Names P_syntax Symtab
