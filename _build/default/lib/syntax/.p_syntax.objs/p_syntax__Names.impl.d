lib/syntax/names.ml: Fmt Hashtbl Map Set String
