lib/semantics/trace.mli: Fmt Mid Names P_syntax Value
