(* Tests for the simulated driver host: the discrete-event clock, the
   KMDF-style skeleton, and the workload harness. *)

module Clock = P_host.Clock
module Os_events = P_host.Os_events

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- clock ---------------- *)

let test_clock_orders_by_time () =
  let clock = Clock.create () in
  let log = ref [] in
  Clock.schedule clock ~delay_us:30 (fun () -> log := 3 :: !log);
  Clock.schedule clock ~delay_us:10 (fun () -> log := 1 :: !log);
  Clock.schedule clock ~delay_us:20 (fun () -> log := 2 :: !log);
  let n = Clock.run clock in
  check int_t "dispatched" 3 n;
  check bool_t "time order" true (List.rev !log = [ 1; 2; 3 ])

let test_clock_stable_at_same_time () =
  let clock = Clock.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Clock.schedule clock ~delay_us:7 (fun () -> log := i :: !log)
  done;
  let _ = Clock.run clock in
  check bool_t "FIFO among simultaneous" true (List.rev !log = [ 1; 2; 3; 4; 5 ])

let test_clock_nested_scheduling () =
  let clock = Clock.create () in
  let log = ref [] in
  Clock.schedule clock ~delay_us:10 (fun () ->
      log := "a" :: !log;
      Clock.schedule clock ~delay_us:5 (fun () -> log := "b" :: !log));
  Clock.schedule clock ~delay_us:12 (fun () -> log := "c" :: !log);
  let _ = Clock.run clock in
  (* a at 10, c at 12, b at 15 *)
  check bool_t "nested callbacks interleave by time" true (List.rev !log = [ "a"; "c"; "b" ]);
  check int_t "clock advanced" 15 (Clock.now_us clock)

let test_clock_until () =
  let clock = Clock.create () in
  let hits = ref 0 in
  Clock.schedule clock ~delay_us:5 (fun () -> incr hits);
  Clock.schedule clock ~delay_us:50 (fun () -> incr hits);
  let n = Clock.run ~until_us:10 clock in
  check int_t "only the early one" 1 n;
  let n = Clock.run clock in
  check int_t "rest later" 1 n;
  check int_t "both ran" 2 !hits

let test_clock_rejects_negative_delay () =
  let clock = Clock.create () in
  match Clock.schedule clock ~delay_us:(-1) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay must be rejected"

(* ---------------- skeleton ---------------- *)

let switchled_runtime () =
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile (P_examples_lib.Switch_led.program ())
  in
  let rt = P_runtime.Api.create driver in
  P_runtime.Api.register_foreign rt "set_led" (fun _ _ -> P_runtime.Rt_value.Null);
  rt

let translate = function
  | Os_events.Interrupt { line = "switch"; data } ->
    Some ((if data <> 0 then "SwitchOn" else "SwitchOff"), P_runtime.Rt_value.Null)
  | _ -> None

let test_skeleton_lifecycle () =
  let rt = switchled_runtime () in
  let sk = P_host.Skeleton.attach rt ~main_machine:"SwitchLed" ~translate in
  let d = P_host.Skeleton.driver sk in
  (* callbacks before AddDevice are dropped like in KMDF *)
  d.Os_events.callback (Os_events.Interrupt { line = "switch"; data = 1 });
  d.Os_events.add_device ();
  let h = P_host.Skeleton.handle sk in
  check bool_t "created in Off" true (P_runtime.Api.current_state_name rt h = Some "Off");
  d.Os_events.callback (Os_events.Interrupt { line = "switch"; data = 1 });
  check bool_t "switched on" true (P_runtime.Api.current_state_name rt h = Some "On");
  (* untranslated OS events are ignored *)
  d.Os_events.callback Os_events.Power_suspend;
  check bool_t "still on" true (P_runtime.Api.current_state_name rt h = Some "On");
  d.Os_events.remove_device ();
  check bool_t "machine deleted on remove" false (P_runtime.Api.is_alive rt h);
  (* further callbacks after removal are dropped *)
  d.Os_events.callback (Os_events.Interrupt { line = "switch"; data = 0 })

let test_skeleton_add_idempotent () =
  let rt = switchled_runtime () in
  let sk = P_host.Skeleton.attach rt ~main_machine:"SwitchLed" ~translate in
  let d = P_host.Skeleton.driver sk in
  d.Os_events.add_device ();
  let h1 = P_host.Skeleton.handle sk in
  d.Os_events.add_device ();
  check int_t "second AddDevice is a no-op" h1 (P_host.Skeleton.handle sk)

let test_skeleton_typed_error_before_add () =
  let rt = switchled_runtime () in
  let sk = P_host.Skeleton.attach rt ~main_machine:"SwitchLed" ~translate in
  (* before AddDevice there is no handle: a typed, diagnosable error
     instead of the historical bare Failure *)
  (match P_host.Skeleton.handle_opt sk with
  | Error (P_host.Skeleton.Device_not_added { main_machine }) as e ->
    check bool_t "names the driver machine" true (main_machine = "SwitchLed");
    let msg =
      match e with
      | Error err -> P_host.Skeleton.error_message err
      | Ok _ -> assert false
    in
    check bool_t "diagnosis mentions the machine" true
      (Astring_contains.contains msg "SwitchLed");
    check bool_t "diagnosis mentions EvtAddDevice" true
      (Astring_contains.contains msg "EvtAddDevice")
  | Ok _ -> Alcotest.fail "handle_opt before AddDevice must be an error");
  (match P_host.Skeleton.handle sk with
  | exception P_host.Skeleton.Error (P_host.Skeleton.Device_not_added _) -> ()
  | exception e ->
    Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "handle before AddDevice must raise");
  (* after removal the handle is gone again, with the same typed error *)
  let d = P_host.Skeleton.driver sk in
  d.Os_events.add_device ();
  check bool_t "handle after add" true (Result.is_ok (P_host.Skeleton.handle_opt sk));
  d.Os_events.remove_device ();
  match P_host.Skeleton.handle_opt sk with
  | Error (P_host.Skeleton.Device_not_added _) -> ()
  | Ok _ -> Alcotest.fail "handle must be gone after RemoveDevice"

(* ---------------- workload ---------------- *)

let test_workload_stats () =
  let device = P_examples_lib.Switch_led.new_device () in
  let driver = P_examples_lib.Switch_led.handwritten_driver device in
  let stats =
    P_host.Workload.run ~rate_hz:1000 ~events:200
      ~make_event:(fun i -> Os_events.Interrupt { line = "switch"; data = i mod 2 })
      driver
  in
  check int_t "all events" 200 stats.events;
  check bool_t "mean positive" true (stats.mean_ns >= 0.0);
  check bool_t "p99 >= mean is usual but max >= p99 always" true
    (stats.max_ns >= stats.p99_ns);
  check bool_t "total consistent" true
    (Float.abs ((stats.total_ns /. float_of_int stats.events) -. stats.mean_ns) < 1.0)

let test_workload_drives_p_driver () =
  let device = P_examples_lib.Switch_led.new_device () in
  let driver = P_examples_lib.Switch_led.p_driver device in
  let _ =
    P_host.Workload.run ~rate_hz:100 ~events:100
      ~make_event:(fun i -> Os_events.Interrupt { line = "switch"; data = i mod 2 })
      driver
  in
  (* creation writes once (entry of Off); event 0 (SwitchOff while Off) is
     ignored without re-entering; events 1..99 alternate transitions *)
  check int_t "writes" 100 device.writes;
  check bool_t "ends on (last event was SwitchOn)" true device.led_on

let suite =
  [ Alcotest.test_case "clock time order" `Quick test_clock_orders_by_time;
    Alcotest.test_case "clock stability" `Quick test_clock_stable_at_same_time;
    Alcotest.test_case "clock nesting" `Quick test_clock_nested_scheduling;
    Alcotest.test_case "clock until" `Quick test_clock_until;
    Alcotest.test_case "clock negative delay" `Quick test_clock_rejects_negative_delay;
    Alcotest.test_case "skeleton lifecycle" `Quick test_skeleton_lifecycle;
    Alcotest.test_case "skeleton add idempotent" `Quick test_skeleton_add_idempotent;
    Alcotest.test_case "skeleton typed error" `Quick test_skeleton_typed_error_before_add;
    Alcotest.test_case "workload stats" `Quick test_workload_stats;
    Alcotest.test_case "workload drives P driver" `Quick test_workload_drives_p_driver ]
