(** Serializing checker traces ({!P_semantics.Trace}) to a structured sink:
    each trace item becomes one instant event on the thread lane of its
    principal machine, timestamped by its position in the trace (these are
    logical traces — the position *is* the time). A counterexample written
    this way opens in Perfetto with one lane per machine and the
    message-passing history laid out left to right. *)

module Trace = P_semantics.Trace
module Mid = P_semantics.Mid
module Value = P_semantics.Value
open P_syntax

let cat = "ptrace"

let mid_json m = Json.Int (Mid.to_int m)

(* (name, principal machine, args) for one item. The args carry every field
   so the tests can reconstruct the item from the JSON alone. *)
let encode (item : Trace.item) : string * int * (string * Json.t) list =
  match item with
  | Trace.Created { creator; created; kind } ->
    ( Fmt.str "create %a" Names.Machine.pp kind,
      Mid.to_int created,
      [ ("kind", Json.String "created");
        ("creator", match creator with None -> Json.Null | Some c -> mid_json c);
        ("created", mid_json created);
        ("machine", Json.String (Names.Machine.to_string kind)) ] )
  | Trace.Sent { src; dst; event; payload } ->
    ( Fmt.str "send %a" Names.Event.pp event,
      Mid.to_int src,
      [ ("kind", Json.String "sent");
        ("src", mid_json src);
        ("dst", mid_json dst);
        ("event", Json.String (Names.Event.to_string event));
        ("payload", Json.String (Value.to_string payload)) ] )
  | Trace.Dequeued { mid; event; payload } ->
    ( Fmt.str "dequeue %a" Names.Event.pp event,
      Mid.to_int mid,
      [ ("kind", Json.String "dequeued");
        ("mid", mid_json mid);
        ("event", Json.String (Names.Event.to_string event));
        ("payload", Json.String (Value.to_string payload)) ] )
  | Trace.Raised { mid; event } ->
    ( Fmt.str "raise %a" Names.Event.pp event,
      Mid.to_int mid,
      [ ("kind", Json.String "raised");
        ("mid", mid_json mid);
        ("event", Json.String (Names.Event.to_string event)) ] )
  | Trace.Entered { mid; state } ->
    ( Fmt.str "enter %a" Names.State.pp state,
      Mid.to_int mid,
      [ ("kind", Json.String "entered");
        ("mid", mid_json mid);
        ("state", Json.String (Names.State.to_string state)) ] )
  | Trace.Popped { mid; state } ->
    ( "pop",
      Mid.to_int mid,
      [ ("kind", Json.String "popped");
        ("mid", mid_json mid);
        ( "state",
          match state with
          | None -> Json.Null
          | Some s -> Json.String (Names.State.to_string s) ) ] )
  | Trace.Deleted { mid } ->
    ( "delete",
      Mid.to_int mid,
      [ ("kind", Json.String "deleted"); ("mid", mid_json mid) ] )
  | Trace.Faulted { mid; fault } ->
    ( Fmt.str "fault %s" fault,
      Mid.to_int mid,
      [ ("kind", Json.String "faulted");
        ("mid", mid_json mid);
        ("fault", Json.String fault) ] )

(** Emit a whole trace; item [i] lands at [t0_us + i] microseconds. *)
let emit sink ?(t0_us = 0.0) (t : Trace.t) : unit =
  if Sink.enabled sink then
    List.iteri
      (fun i item ->
        let name, tid, args = encode item in
        Sink.instant sink ~cat ~tid ~args ~name ~ts_us:(t0_us +. float_of_int i) ())
      t

(** A canonical comparison key for an item — the same string the JSON
    round-trip reconstructs with {!key_of_args}. *)
let key (item : Trace.item) : string =
  let _, _, args = encode item in
  String.concat "|"
    (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) args)

(** Rebuild an item's comparison key from the [args] object of a parsed
    trace event; [None] if the event is not a P trace item. *)
let key_of_args (args : Json.t) : string option =
  match args with
  | Json.Obj fields
    when List.exists (fun (k, _) -> String.equal k "kind") fields ->
    Some
      (String.concat "|"
         (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) fields))
  | _ -> None

(** The comparison keys of the externally observable items of a trace, in
    order (see {!P_semantics.Trace.observable}). *)
let observable_keys (t : Trace.t) : string list =
  List.map key (Trace.observable t)

(* The item kinds {!P_semantics.Trace.observable} keeps. *)
let observable_kind = function
  | "created" | "sent" | "dequeued" | "deleted" -> true
  | _ -> false

(** The other side of the round trip: from a parsed Chrome trace document,
    the comparison keys of the observable P trace items, in timestamp
    order. Ignores lifecycle spans and other non-[ptrace] events. *)
let observable_keys_of_json (doc : Json.t) : string list =
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some evs -> evs
    | None -> []
  in
  events
  |> List.filter_map (fun ev ->
         match
           ( Option.bind (Json.member "cat" ev) Json.to_str,
             Option.bind (Json.member "ph" ev) Json.to_str,
             Option.bind (Json.member "ts" ev) Json.to_float,
             Json.member "args" ev )
         with
         | Some c, Some "i", Some ts, Some args when String.equal c cat -> (
           match
             Option.bind (Json.member "kind" args) Json.to_str
           with
           | Some k when observable_kind k ->
             Option.map (fun key -> (ts, key)) (key_of_args args)
           | _ -> None)
         | _ -> None)
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
  |> List.map snd
