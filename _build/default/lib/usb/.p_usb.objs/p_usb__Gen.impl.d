lib/usb/gen.ml: Array Fmt Hashtbl List P_syntax Stdlib
