(** Graphviz (DOT) rendering of P machines: states as boxes (with their
    deferred and postponed sets), step transitions as solid edges, call
    transitions as bold "double" edges (as in the paper's Figure 1), action
    bindings as dashed self-loops, ghost machines with dashed borders. *)

val emit : P_syntax.Ast.program -> string
(** The whole program, one cluster per machine. *)

val emit_one : P_syntax.Ast.machine -> string
(** A single machine as its own digraph. *)
