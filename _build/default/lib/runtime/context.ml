(** Machine instance contexts: the runtime twin of the paper's
    [StateMachineContext] (section 4). Each dynamic instance carries its
    variable values, call stack, input queue, a lock for synchronization
    with concurrent host threads, and a [void*]-style pointer to external
    memory reserved for foreign functions and interface code. *)

module Tables = P_compile.Tables

(** External memory attached to a machine for foreign code — the OCaml
    rendering of the C runtime's [void *]. Extend the variant with one
    constructor per driver, e.g.
    [type Context.ext += Led_state of { mutable on : bool }]. *)
type ext = ..

type handler = HNone | HDefer | HAction of int

type task =
  | Exec of Tables.code
  | Handle of int * Rt_value.t  (** dynamic raise(e, v) *)
  | Pop_return
  | Pop_frame
  | Enter of int

type frame = {
  mutable f_state : int;
  f_amap : handler array;  (** indexed by event id; inherited handler map *)
  f_cont : task list;  (** caller continuation for [call] statements *)
}

type t = {
  self : int;  (** instance handle *)
  ty : int;  (** machine type index in the driver *)
  table : Tables.machine_table;
  vars : Rt_value.t array;
  mutable msg : int option;
  mutable arg : Rt_value.t;
  mutable frames : frame list;  (** top first *)
  mutable agenda : task list;
  mutable inbox : (int * Rt_value.t) list;  (** front of the FIFO first *)
  mutable alive : bool;
  mutable scheduled : bool;  (** being run (or queued to run) by some thread *)
  lock : Mutex.t;
  mutable external_mem : ext option;
}

let create ~self ~ty ~(table : Tables.machine_table) : t =
  let n_events =
    match table.mt_states with
    | [||] -> 0
    | states -> Array.length states.(0).st_deferred
  in
  { self;
    ty;
    table;
    vars = Array.make (max 1 (Array.length table.mt_vars)) Rt_value.Null;
    msg = None;
    arg = Rt_value.Null;
    frames =
      [ { f_state = 0; f_amap = Array.make (max 1 n_events) HNone; f_cont = [] } ];
    agenda =
      (match table.mt_states with
      | [||] -> []
      | states -> [ Exec states.(0).st_entry ]);
    inbox = [];
    alive = true;
    scheduled = false;
    lock = Mutex.create ();
    external_mem = None }

let current_state t = match t.frames with [] -> None | f :: _ -> Some f.f_state

let state_table t i : Tables.state_table = t.table.mt_states.(i)

(** The effective deferred set in the current state: inherited deferrals
    plus the state's declared deferred set, minus events with a transition
    or action defined here. *)
let is_deferred t event =
  match t.frames with
  | [] -> false
  | f :: _ ->
    let st = state_table t f.f_state in
    let declared = st.st_deferred.(event) in
    let inherited = f.f_amap.(event) = HDefer in
    let overridden =
      st.st_steps.(event) <> None || st.st_calls.(event) <> None
      || st.st_actions.(event) <> None
    in
    (declared || inherited) && not overridden

(** Append with the deduplicating [⊕] of the SEND rule. *)
let enqueue t event payload =
  if not (List.exists (fun (e, v) -> e = event && Rt_value.equal v payload) t.inbox)
  then t.inbox <- t.inbox @ [ (event, payload) ]

(** Dequeue the first non-deferred entry, if any. *)
let dequeue t : (int * Rt_value.t) option =
  let rec scan skipped = function
    | [] -> None
    | ((e, _) as entry) :: rest ->
      if is_deferred t e then scan (entry :: skipped) rest
      else begin
        t.inbox <- List.rev_append skipped rest;
        Some entry
      end
  in
  scan [] t.inbox

let has_dequeuable t = List.exists (fun (e, _) -> not (is_deferred t e)) t.inbox

let is_runnable t = t.alive && (t.agenda <> [] || has_dequeuable t)
