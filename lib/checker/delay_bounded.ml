(** Delay-bounded systematic testing with the paper's causal delaying
    scheduler (section 5).

    The scheduler keeps a stack [S] of machine identifiers and always runs
    the machine on top for one atomic block. The stack is maintained so that
    the default schedule follows the causal order of events:

    - when the scheduled machine creates [m'], [m'] is pushed on [S];
    - when it sends to [m'] and [m' ∉ S], [m'] is pushed on [S];
    - a *delay* moves the top of [S] to the bottom and costs 1 from the
      budget [d];
    - a machine that blocks (or terminates) is removed from the top; it
      re-enters [S] when an event is next sent to it.

    With budget [d], the explored schedules are those using at most [d]
    delays; [d = 0] is exactly the causal schedule executed by the
    single-threaded runtime ({!P_semantics.Simulate}). Ghost [*] choices are
    enumerated exhaustively at every block — delays only bound *scheduling*
    nondeterminism, as in the paper.

    The exploration itself is {!Engine.run} over {!Engine.stack_sched}:
    breadth-first over scheduler states [(configuration, stack)], budget =
    delays spent, re-expanding a state reached again with a strictly
    smaller delay count. *)

type discipline = Engine.discipline = Causal | Round_robin

let rotate_k = Engine.rotate_k
let apply_outcome = Engine.apply_outcome

(** Explore all schedules of at most [delay_bound] delays. [max_states]
    and [max_depth] truncate the search (reported in the stats). [store]
    picks the seen-set representation ({!State_store.kind}, default
    [Exact]). *)
let explore ?(max_states = 1_000_000) ?(max_depth = max_int) ?(discipline = Causal)
    ?(dedup = true) ?(fingerprint = Fingerprint.Incremental)
    ?(resolver = Engine.Exhaustive) ?(store = State_store.Exact)
    ?store_capacity ?(reduce = Reduce.none) ?faults ?(instr = Search.no_instr)
    ~delay_bound (tab : P_static.Symtab.t) : Search.result =
  let spec =
    Engine.spec ~bound:delay_bound ~dedup ~max_states ~max_depth
      ~fp_mode:fingerprint ~resolver ~store ?store_capacity ~reduce ?faults
      (Engine.stack_sched discipline)
  in
  Engine.run ~instr ~engine:"delay_bounded"
    ~span_args:[ ("delay_bound", P_obs.Json.Int delay_bound) ]
    spec tab
