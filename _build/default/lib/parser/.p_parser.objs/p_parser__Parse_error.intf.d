lib/parser/parse_error.mli: Fmt Format P_syntax
