(* Unit tests of the pluggable seen-set ({!P_checker.State_store}): the
   claim contract of each representation, CAS single-winner arbitration
   under real domains, capacity/Dropped behaviour, the engine-level guard
   rails, and the summary's honesty accounting (occupancy, omission bound,
   lossy merges). *)

open P_checker

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let mk ?capacity ?need_sidx ~kind ~workers ~max_states () =
  State_store.create ?capacity ?need_sidx ~kind ~workers ~max_states ()

(* a deterministic stream of well-mixed distinct fingerprints *)
let fp_of i =
  let h = i * 0x9e3779b97f4a7c1 land max_int in
  let h = h lxor (h lsr 30) in
  let h = h * 0x3f58476d1ce4e5b9 land max_int in
  h lxor (h lsr 27)

let digest_of i = Digest.string (string_of_int i)

let claim_kind = function
  | State_store.New -> "new"
  | State_store.Dup _ -> "dup"
  | State_store.Reexpand _ -> "reexpand"
  | State_store.Dropped -> "dropped"

let check_claim name expected actual =
  check Alcotest.string name expected (claim_kind actual)

(* ---------------- kind parsing ---------------- *)

let test_kind_of_string () =
  List.iter
    (fun k ->
      match State_store.kind_of_string (State_store.kind_to_string k) with
      | Ok k' -> check bool_t "roundtrip" true (k = k')
      | Error e -> Alcotest.fail e)
    [ State_store.Exact; State_store.Compact; State_store.Bitstate ];
  match State_store.kind_of_string "mothballed" with
  | Ok _ -> Alcotest.fail "accepted an unknown store kind"
  | Error _ -> ()

(* ---------------- claim semantics, per representation ---------------- *)

(* Exact and Compact share the min-spent contract: first claim is [New],
   a revisit at >= the recorded budget is [Dup], a revisit at a strictly
   smaller budget is [Reexpand] and lowers the record. *)
let min_spent_contract name t =
  let claim ~spent ~new_sidx =
    State_store.claim t ~worker:0 ~digest:(digest_of 1) ~fp:(fp_of 1) ~spent
      ~new_sidx
  in
  check_claim (name ^ " first visit") "new" (claim ~spent:5 ~new_sidx:7);
  check_claim (name ^ " revisit at larger spent") "dup" (claim ~spent:9 ~new_sidx:8);
  check_claim (name ^ " revisit at equal spent") "dup" (claim ~spent:5 ~new_sidx:8);
  check_claim (name ^ " smaller spent re-expands") "reexpand"
    (claim ~spent:2 ~new_sidx:8);
  (* the record was lowered: the old spent no longer re-expands *)
  check_claim (name ^ " record was lowered") "dup" (claim ~spent:4 ~new_sidx:8);
  let s = State_store.summary t in
  check int_t (name ^ " one entry") 1 s.State_store.s_entries;
  check bool_t (name ^ " not dropped") false s.State_store.s_dropped

let test_exact_claims () =
  let t = mk ~kind:State_store.Exact ~workers:1 ~max_states:1_000 () in
  min_spent_contract "exact" t;
  (* exact keeps dense indices: the Dup reports the sidx of the first claim *)
  (match
     State_store.claim t ~worker:0 ~digest:(digest_of 1) ~fp:(fp_of 1) ~spent:9
       ~new_sidx:99
   with
  | State_store.Dup sidx -> check int_t "exact dup sidx" 7 sidx
  | c -> Alcotest.failf "expected dup, got %s" (claim_kind c));
  let s = State_store.summary t in
  check bool_t "exact bytes positive" true (s.State_store.s_bytes > 0);
  check bool_t "exact omission bound is zero" true
    (s.State_store.s_omission_bound = 0.0)

let test_compact_claims () =
  let t = mk ~kind:State_store.Compact ~workers:1 ~max_states:1_000 () in
  min_spent_contract "compact" t;
  let s = State_store.summary t in
  (* off-heap arena: the footprint is the slot array, not per-entry heap *)
  check int_t "compact bytes = capacity words" (s.State_store.s_capacity * 8)
    s.State_store.s_bytes;
  check bool_t "compact omission bound tiny but honest" true
    (s.State_store.s_omission_bound > 0.0
    && s.State_store.s_omission_bound < 1e-9);
  check int_t "compact lossy dups" 0 s.State_store.s_lossy_dups

let test_compact_sidx_tracking () =
  let t =
    mk ~need_sidx:true ~kind:State_store.Compact ~workers:1 ~max_states:1_000 ()
  in
  (match
     State_store.claim t ~worker:0 ~digest:"" ~fp:(fp_of 3) ~spent:1 ~new_sidx:42
   with
  | State_store.New -> ()
  | c -> Alcotest.failf "expected new, got %s" (claim_kind c));
  (match
     State_store.claim t ~worker:0 ~digest:"" ~fp:(fp_of 3) ~spent:4 ~new_sidx:50
   with
  | State_store.Dup sidx -> check int_t "compact dup sidx" 42 sidx
  | c -> Alcotest.failf "expected dup, got %s" (claim_kind c));
  (* the parallel driver never tracks indices: multi-worker + need_sidx is
     a construction error, not a silent downgrade *)
  match
    mk ~need_sidx:true ~kind:State_store.Compact ~workers:2 ~max_states:1_000 ()
  with
  | _ -> Alcotest.fail "multi-worker compact sidx tracking must be refused"
  | exception Invalid_argument _ -> ()

let test_bitstate_claims () =
  let t = mk ~kind:State_store.Bitstate ~workers:1 ~max_states:1_000 () in
  let claim fp =
    State_store.claim t ~worker:0 ~digest:"" ~fp ~spent:0 ~new_sidx:0
  in
  check_claim "bitstate first visit" "new" (claim (fp_of 1));
  (* bitstate keeps no budget: every revisit is a lossy merge, counted *)
  (match claim (fp_of 1) with
  | State_store.Dup sidx -> check int_t "bitstate keeps no sidx" (-1) sidx
  | c -> Alcotest.failf "expected dup, got %s" (claim_kind c));
  check_claim "bitstate second state" "new" (claim (fp_of 2));
  let s = State_store.summary t in
  check int_t "bitstate entries" 2 s.State_store.s_entries;
  check int_t "bitstate lossy dups" 1 s.State_store.s_lossy_dups;
  check bool_t "bitstate omission bound positive" true
    (s.State_store.s_omission_bound > 0.0);
  check bool_t "bitstate occupancy sane" true
    (s.State_store.s_occupancy > 0.0 && s.State_store.s_occupancy < 1.0);
  (* no dense indices: observer-driving engines must refuse this store *)
  match mk ~need_sidx:true ~kind:State_store.Bitstate ~workers:1 ~max_states:10 ()
  with
  | _ -> Alcotest.fail "bitstate sidx tracking must be refused"
  | exception Invalid_argument _ -> ()

(* ---------------- capacity and Dropped ---------------- *)

let test_compact_capacity_drops () =
  (* a deliberately tiny arena: claims past the probe limit answer
     [Dropped] — the run truncates, it never silently merges *)
  let t =
    mk ~capacity:1024 ~kind:State_store.Compact ~workers:1 ~max_states:1_000_000 ()
  in
  let dropped = ref 0 and fresh = ref 0 in
  for i = 1 to 2_000 do
    match
      State_store.claim t ~worker:0 ~digest:"" ~fp:(fp_of i) ~spent:0 ~new_sidx:i
    with
    | State_store.New -> incr fresh
    | State_store.Dropped -> incr dropped
    | State_store.Dup _ | State_store.Reexpand _ -> ()
  done;
  check bool_t "some claims dropped" true (!dropped > 0);
  check bool_t "table filled first" true (!fresh > 900);
  let s = State_store.summary t in
  check bool_t "summary reports dropped" true s.State_store.s_dropped;
  check bool_t "occupancy near full" true (s.State_store.s_occupancy > 0.9)

let test_default_capacity_sizing () =
  List.iter
    (fun (kind, max_states, at_least) ->
      let c = State_store.default_capacity ~kind ~max_states in
      check bool_t "capacity is a power of two" true (c land (c - 1) = 0);
      check bool_t "capacity covers the budget" true (c >= at_least))
    [ (State_store.Compact, 1_000, 1_500);
      (State_store.Compact, 1_000_000, 1_500_000);
      (State_store.Bitstate, 1_000, 64_000);
      (State_store.Bitstate, 100_000, 6_400_000) ]

(* ---------------- CAS arbitration under real domains ---------------- *)

(* Four domains hammer the same fingerprint universe concurrently; the
   CAS claim protocol must hand out exactly one [New] per distinct
   fingerprint, no matter how the races interleave. *)
let test_compact_parallel_single_winner () =
  let workers = 4 and universe = 4_096 in
  let t = mk ~kind:State_store.Compact ~workers ~max_states:universe () in
  let news = Array.make workers 0 in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            (* every worker claims the whole universe, in a different order *)
            for i = 0 to universe - 1 do
              let j = (i + (w * 997)) mod universe in
              match
                State_store.claim t ~worker:w ~digest:"" ~fp:(fp_of j) ~spent:0
                  ~new_sidx:j
              with
              | State_store.New -> news.(w) <- news.(w) + 1
              | State_store.Dup _ | State_store.Reexpand _ -> ()
              | State_store.Dropped -> Alcotest.fail "unexpected drop"
            done))
  in
  List.iter Domain.join domains;
  check int_t "one winner per fingerprint" universe
    (Array.fold_left ( + ) 0 news);
  let s = State_store.summary t in
  check int_t "entries = distinct fingerprints" universe s.State_store.s_entries;
  check bool_t "not dropped" false s.State_store.s_dropped

let test_exact_parallel_single_winner () =
  let workers = 4 and universe = 2_048 in
  let t = mk ~kind:State_store.Exact ~workers ~max_states:universe () in
  let news = Array.make workers 0 in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to universe - 1 do
              let j = (i + (w * 997)) mod universe in
              match
                State_store.claim t ~worker:w ~digest:(digest_of j) ~fp:0
                  ~spent:0 ~new_sidx:j
              with
              | State_store.New -> news.(w) <- news.(w) + 1
              | _ -> ()
            done))
  in
  List.iter Domain.join domains;
  check int_t "one winner per digest" universe (Array.fold_left ( + ) 0 news);
  check int_t "entries = distinct digests" universe
    (State_store.summary t).State_store.s_entries

(* ---------------- engine-level guard rails ---------------- *)

let elevator () = P_static.Check.run_exn (P_examples_lib.Elevator.program ())

let test_engine_refuses_unsafe_specs () =
  (* the compact slot word keeps 15 bits of budget: a bound that could
     saturate it is refused up front, not silently clamped *)
  (try
     ignore
       (Delay_bounded.explore ~store:State_store.Compact
          ~delay_bound:(State_store.max_exact_spent + 1) ~max_states:100
          (elevator ()));
     Alcotest.fail "compact must refuse a bound beyond its spent field"
   with Invalid_argument _ -> ());
  (* bitstate keeps no dense indices, so graph observers cannot be fed *)
  let observer =
    { Engine.on_state = (fun _ _ -> ());
      Engine.on_edge = (fun ~src:_ ~src_config:_ ~by:_ ~resolved:_ ~dst:_ -> ()) }
  in
  let spec =
    Engine.spec ~bound:1 ~store:State_store.Bitstate
      (Engine.stack_sched Engine.Causal)
  in
  try
    ignore (Engine.run ~observer ~engine:"guard" spec (elevator ()));
    Alcotest.fail "bitstate must refuse observers"
  with Invalid_argument _ -> ()

(* ---------------- engine triples across stores ---------------- *)

(* The store is a membership oracle, not a search policy: swapping exact
   for compact must not move a single number (the 47-bit tag space makes
   a collision at these sizes beyond unlikely). Bitstate may merge — on
   these small closed spaces it happens to match states exactly, and when
   it merges anything it says so via lossy_dups. *)
let test_store_triples_match () =
  let tab = elevator () in
  let run store = Delay_bounded.explore ~store ~delay_bound:2 ~max_states:50_000 tab in
  let exact = run State_store.Exact in
  let compact = run State_store.Compact in
  check int_t "compact states" exact.Search.stats.states
    compact.Search.stats.states;
  check int_t "compact transitions" exact.Search.stats.transitions
    compact.Search.stats.transitions;
  check bool_t "compact verdict" true
    (exact.Search.verdict = Search.No_error
    && compact.Search.verdict = Search.No_error);
  (* the buggy elevator: all three stores find the bug — an error a lossy
     store reports is always real *)
  let tabb = P_static.Check.run_exn (P_examples_lib.Elevator.buggy_program ()) in
  List.iter
    (fun store ->
      match
        (Delay_bounded.explore ~store ~delay_bound:2 ~max_states:50_000 tabb)
          .Search.verdict
      with
      | Search.Error_found ce -> check int_t "bug depth" 10 ce.Search.depth
      | Search.No_error -> Alcotest.fail "store lost a real bug")
    [ State_store.Exact; State_store.Compact; State_store.Bitstate ]

let suite =
  [ Alcotest.test_case "kind parsing" `Quick test_kind_of_string;
    Alcotest.test_case "exact claim semantics" `Quick test_exact_claims;
    Alcotest.test_case "compact claim semantics" `Quick test_compact_claims;
    Alcotest.test_case "compact sidx tracking" `Quick test_compact_sidx_tracking;
    Alcotest.test_case "bitstate claim semantics" `Quick test_bitstate_claims;
    Alcotest.test_case "compact capacity drops honestly" `Quick
      test_compact_capacity_drops;
    Alcotest.test_case "default capacity sizing" `Quick
      test_default_capacity_sizing;
    Alcotest.test_case "compact CAS: one winner per state" `Quick
      test_compact_parallel_single_winner;
    Alcotest.test_case "exact shards: one winner per state" `Quick
      test_exact_parallel_single_winner;
    Alcotest.test_case "engines refuse unsafe store specs" `Quick
      test_engine_refuses_unsafe_specs;
    Alcotest.test_case "triples identical across stores" `Quick
      test_store_triples_match ]
