lib/semantics/errors.ml: Fmt Loc Mid Names P_syntax
