(** Runtime values: the mutable twin of {!P_semantics.Value} with all names
    resolved to the dense indices of the driver tables. The runtime is an
    independent implementation of the semantics — it shares no execution
    code with the verifier, mirroring the paper's generated-C-plus-runtime
    versus Zing split — which is what makes the d=0 equivalence tests
    meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Event of int  (** event id *)
  | Machine of int  (** machine instance handle *)

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Event e -> Fmt.pf ppf "evt#%d" e
  | Machine m -> Fmt.pf ppf "#%d" m

exception Type_error of string

let truth = function
  | Bool b -> b
  | v -> raise (Type_error (Fmt.str "expected a boolean, found %a" pp v))

let unop (op : P_compile.Tables.unop) v : t =
  match (op, v) with
  | _, Null -> Null
  | P_compile.Tables.Not, Bool b -> Bool (not b)
  | P_compile.Tables.Neg, Int i -> Int (-i)
  | _ -> raise (Type_error "ill-typed unary operation")

let binop (op : P_compile.Tables.binop) a b : t =
  let module T = P_compile.Tables in
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ -> (
    match (op, a, b) with
    | T.Add, Int x, Int y -> Int (x + y)
    | T.Sub, Int x, Int y -> Int (x - y)
    | T.Mul, Int x, Int y -> Int (x * y)
    | T.Div, Int x, Int y ->
      if y = 0 then raise (Type_error "division by zero") else Int (x / y)
    | T.Mod, Int x, Int y ->
      if y = 0 then raise (Type_error "modulo by zero") else Int (x mod y)
    | T.And, Bool x, Bool y -> Bool (x && y)
    | T.Or, Bool x, Bool y -> Bool (x || y)
    | T.Lt, Int x, Int y -> Bool (x < y)
    | T.Le, Int x, Int y -> Bool (x <= y)
    | T.Gt, Int x, Int y -> Bool (x > y)
    | T.Ge, Int x, Int y -> Bool (x >= y)
    | T.Eq, x, y -> Bool (equal x y)
    | T.Neq, x, y -> Bool (not (equal x y))
    | _ -> raise (Type_error "ill-typed binary operation"))
