(** Pretty-printer for the concrete textual syntax of P.

    The printed form is exactly the syntax accepted by [P_parser.Parser]:
    [parse (print p)] equals [p] up to locations, a round trip the test
    suite checks with qcheck. *)

val pp_expr : Ast.expr Fmt.t
(** Minimal parenthesization under the Figure 3 operator precedences. *)

val pp_stmt : Ast.stmt Fmt.t
val pp_state : Ast.state Fmt.t
val pp_machine : Ast.machine Fmt.t
val pp_event_decl : Ast.event_decl Fmt.t
val pp_program : Ast.program Fmt.t

val program_to_string : Ast.program -> string
val stmt_to_string : Ast.stmt -> string
val expr_to_string : Ast.expr -> string
