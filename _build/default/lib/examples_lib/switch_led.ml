(** The switch-and-LED device of section 4.1: "a simple switch-and-led
    device, one [driver] using P, and one directly using KMDF".

    Three artefacts live here:
    - the P driver program, closed with a ghost switch for verification
      (this is also the "Switch-LED" benchmark of Figure 7);
    - the simulated device (the LED register the foreign function writes);
    - a hand-written driver for the same device that bypasses P entirely —
      the baseline of the no-overhead comparison reproduced by
      [bench/main.exe overhead]. *)

open P_syntax.Builder

(* ------------------------------------------------------------------ *)
(* The P driver                                                        *)
(* ------------------------------------------------------------------ *)

let events =
  List.map event
    [ "SwitchOn"; "SwitchOff"; "Delete"; "LedCmdDone"; "unit"; "halt" ]

(** The real driver machine: mirrors the switch position onto the LED
    through the foreign function [set_led], and handles [Delete] (queued by
    the interface code on EvtRemoveDevice) in every state. *)
let driver_machine =
  machine "SwitchLed"
    ~actions:[ action "Ignore" skip ]
    ~foreigns:
      [ foreign "set_led" ~params:[ P_syntax.Ptype.Bool ] ~ret:P_syntax.Ptype.Void ]
    [ state "Off" ~entry:(fstmt "set_led" [ fls ]);
      state "On" ~entry:(fstmt "set_led" [ tru ]);
      state "Cleanup" ~entry:delete ]
    ~steps:
      [ ("Off", "SwitchOn", "On");
        ("On", "SwitchOff", "Off");
        ("Off", "Delete", "Cleanup");
        ("On", "Delete", "Cleanup") ]
    ~bindings:
      [ on ("Off", "SwitchOff") ~do_:"Ignore"; on ("On", "SwitchOn") ~do_:"Ignore" ]

(** Ghost switch: flips nondeterministically and eventually may remove the
    device, closing the driver for verification. *)
let switch_machine =
  machine "GhostSwitch" ~ghost:true
    ~vars:[ var_decl "drv" P_syntax.Ptype.Machine_id ]
    [ state "Init" ~entry:(seq [ new_ "drv" "SwitchLed" []; raise_ "unit" ]);
      state "Flip"
        ~entry:
          (if_ nondet
             (seq
                [ if_ nondet (send (v "drv") "SwitchOn") (send (v "drv") "SwitchOff");
                  raise_ "unit" ])
             (* remove the device and stop driving it: sending anything after
                Delete would be a send-to-deleted-machine error *)
             (seq [ send (v "drv") "Delete"; raise_ "halt" ]));
      state "Stop" ~entry:skip ]
    ~steps:[ ("Init", "unit", "Flip"); ("Flip", "unit", "Flip"); ("Flip", "halt", "Stop") ]

(** Closed program for verification and for the Figure 7 sweep. *)
let program () = program ~events ~machines:[ switch_machine; driver_machine ] "GhostSwitch"

(** Seeded bug for the delay-bound experiment: the driver forgets that a
    bouncing switch can repeat [SwitchOn] while already on. *)
let buggy_program () =
  let p = program () in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "SwitchLed" then
            { m with P_syntax.Ast.bindings = [] }
          else m)
        p.P_syntax.Ast.machines }

(* ------------------------------------------------------------------ *)
(* The simulated device and the two drivers under test                 *)
(* ------------------------------------------------------------------ *)

(** The LED "hardware register" the drivers write through [set_led]. *)
type device = { mutable led_on : bool; mutable writes : int }

let new_device () = { led_on = false; writes = 0 }

let set_led device on =
  device.led_on <- on;
  device.writes <- Stdlib.( + ) device.writes 1

(** Build the P driver: compile the program (erasing the ghost switch),
    bring up the runtime, register the foreign function against [device],
    and wrap everything in the generic KMDF-style skeleton. *)
let p_driver (device : device) : P_host.Os_events.driver =
  let { P_compile.Compile.driver; _ } = P_compile.Compile.compile ~name:"switchled" (program ()) in
  let rt = P_runtime.Api.create driver in
  P_runtime.Api.register_foreign rt "set_led" (fun _ctx args ->
      (match args with
      | [ P_runtime.Rt_value.Bool on ] -> set_led device on
      | _ -> invalid_arg "set_led: expected one boolean");
      P_runtime.Rt_value.Null);
  let skeleton =
    P_host.Skeleton.attach rt ~main_machine:"SwitchLed" ~translate:(function
      | P_host.Os_events.Interrupt { line = "switch"; data } ->
        Some ((if data <> 0 then "SwitchOn" else "SwitchOff"), P_runtime.Rt_value.Null)
      | _ -> None)
  in
  P_host.Skeleton.driver ~name:"switchled-p" skeleton

(** The hand-written driver: the same behaviour coded directly against the
    host callbacks, with explicit state — what the paper's 6000-line KMDF
    driver does, minus the incidental complexity. *)
let handwritten_driver (device : device) : P_host.Os_events.driver =
  let attached = ref false in
  let led = ref false in
  { P_host.Os_events.name = "switchled-hand";
    add_device =
      (fun () ->
        attached := true;
        led := false;
        set_led device false);
    remove_device = (fun () -> attached := false);
    callback =
      (fun ev ->
        if !attached then
          match ev with
          | P_host.Os_events.Interrupt { line = "switch"; data } ->
            let want = data <> 0 in
            if want <> !led then begin
              led := want;
              set_led device want
            end
          | _ -> ()) }
