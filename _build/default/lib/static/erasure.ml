(** Ghost erasure: the compilation step that removes ghost machines, ghost
    variables, ghost sends, and ghost assertions from a program
    (section 3.3). {!Ghost.check} must have passed for the erasure to be
    semantics preserving; [erase] itself is total and simply drops the ghost
    fragments. *)

open P_syntax

let skip_at loc : Ast.stmt = { Ast.s = Ast.Skip; sloc = loc }

let rec erase_stmt tab (mi : Symtab.machine_info) (stmt : Ast.stmt) : Ast.stmt =
  let ghost = Ghost.ghost_tainted mi in
  match stmt.s with
  | Ast.Assign (x, _) when Ghost.is_ghost_var mi x -> skip_at stmt.sloc
  | Ast.New (_, target, _) when Symtab.is_ghost_machine tab target -> skip_at stmt.sloc
  | Ast.Send (target, _, _) when Ghost.id_ghostness mi target = Some true ->
    skip_at stmt.sloc
  | Ast.Assert e when ghost e -> skip_at stmt.sloc
  | Ast.Seq (a, b) -> (
    let a = erase_stmt tab mi a in
    let b = erase_stmt tab mi b in
    match (a.s, b.s) with
    | Ast.Skip, _ -> b
    | _, Ast.Skip -> a
    | _ -> { stmt with s = Ast.Seq (a, b) })
  | Ast.If (c, t, f) ->
    { stmt with s = Ast.If (c, erase_stmt tab mi t, erase_stmt tab mi f) }
  | Ast.While (c, body) -> { stmt with s = Ast.While (c, erase_stmt tab mi body) }
  | Ast.Skip | Ast.Assign _ | Ast.New _ | Ast.Delete | Ast.Send _ | Ast.Raise _
  | Ast.Leave | Ast.Return | Ast.Assert _ | Ast.Call_state _ | Ast.Foreign_stmt _ ->
    stmt

let erase_machine tab (mi : Symtab.machine_info) : Ast.machine =
  let m = mi.m_ast in
  { m with
    vars = List.filter (fun (vd : Ast.var_decl) -> not vd.var_ghost) m.vars;
    actions =
      List.map
        (fun (ad : Ast.action_decl) ->
          { ad with action_body = erase_stmt tab mi ad.action_body })
        m.actions;
    states =
      List.map
        (fun (st : Ast.state) ->
          { st with
            entry = erase_stmt tab mi st.entry;
            exit = erase_stmt tab mi st.exit })
        m.states;
    foreigns =
      List.map (fun (fd : Ast.foreign_decl) -> { fd with foreign_model = None }) m.foreigns
  }

(** [erase tab] is the compiled (real-only) program: ghost machines dropped,
    and every real machine scrubbed of ghost statements. The initialization
    statement is preserved only when the main machine is real; a program whose
    main machine is ghost is driven entirely by the environment after erasure,
    which we represent by pointing [main] at the first real machine. *)
let erase (tab : Symtab.t) : Ast.program =
  let program = tab.Symtab.program in
  let real_machines =
    List.filter_map
      (fun (m : Ast.machine) ->
        if m.machine_ghost then None
        else
          match Symtab.machine_info tab m.machine_name with
          | Some mi -> Some (erase_machine tab mi)
          | None -> Some m)
      program.machines
  in
  let main, main_init =
    if Symtab.is_ghost_machine tab program.main then
      match real_machines with
      | [] -> (program.main, [])
      | m :: _ -> (m.machine_name, [])
    else (program.main, program.main_init)
  in
  { program with machines = real_machines; main; main_init }
