lib/checker/search.ml: Fmt List P_semantics P_static
