(** The execution engine of the P runtime: an independent, mutable,
    table-driven implementation of the operational semantics structured
    like the C runtime of section 4. Run-to-completion: a send to an idle
    machine runs the receiver nested on the same thread (exactly the d = 0
    causal schedule); a send to a busy machine only enqueues. The runtime
    lock protects instance bookkeeping and inboxes but is never held while
    machine code runs, so host threads drive disjoint machines in
    parallel. Most callers use the {!Api} wrapper. *)

module Tables = P_compile.Tables

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise {!Runtime_error}. *)

type foreign_fn = Context.t -> Rt_value.t list -> Rt_value.t

(** Stepped (differential-replay) mode: with this set, a send only
    enqueues, [new] only creates, and either raises [sp_yield] so the
    machine loop stops at the atomic-block boundary. [sp_choices] holds the
    block's recorded ghost [*] resolutions. Managed by {!step_block}. *)
type stepped = {
  mutable sp_choices : bool list;
  mutable sp_yield : bool;
}

exception Choice_needed
(** A [*] was evaluated past the end of [sp_choices]. *)

(** Metric handles resolved once by {!set_metrics}: [runtime.sends],
    [runtime.dequeues], [runtime.creates] counters and the
    [runtime.queue_len_hwm] inbox high-water gauge. *)
type rt_meters = {
  rm_sends : P_obs.Metrics.counter;
  rm_dequeues : P_obs.Metrics.counter;
  rm_creates : P_obs.Metrics.counter;
  rm_queue_hwm : P_obs.Metrics.gauge;
}

type t = {
  driver : Tables.driver;
  instances : (int, Context.t) Hashtbl.t;
  mutable next_handle : int;
  foreigns : (string, foreign_fn) Hashtbl.t;
  lock : Mutex.t;
  mutable trace_hook : (Rt_trace.item -> unit) option;
  mutable meters : rt_meters option;
  mutable stepped : stepped option;
      (** [Some _] only inside {!step_block} *)
}

val create : Tables.driver -> t

(** Point the runtime at a metrics registry; [None] (the initial state)
    turns metrics off and makes every instrumented point a cheap
    option-match. *)
val set_metrics : t -> P_obs.Metrics.t option -> unit
val register_foreign : t -> string -> foreign_fn -> unit
val find_instance : t -> int -> Context.t option

val create_instance : t -> creator:int option -> int -> Context.t
(** Allocate and register an instance of machine type [ty] (by index); the
    entry statement is on its agenda but has not run. *)

val deliver : t -> src:int -> int -> int -> Rt_value.t -> unit
(** [deliver rt ~src dst event payload]: enqueue with [⊕]; if [dst] is
    idle, claim it and run it to completion on this thread. *)

val run_if_idle : t -> Context.t -> unit
(** Claim-and-drain: run the machine if no other thread holds it,
    re-checking for events that race in while finishing. *)

val run_machine : t -> Context.t -> unit
(** One drain pass (no claim); internal, exposed for tests. *)

val eval : t -> Context.t -> Tables.cexpr -> Rt_value.t
(** Evaluate a table expression in a machine context; exposed so
    differential replay can apply {!Tables.driver.dr_main_init}. *)

val assign : Context.t -> int -> Rt_value.t -> unit
(** Store into a machine variable with the byte-narrowing coercion the
    generated code applies. *)

(** Outcome of one stepped atomic block, mirroring
    {!P_semantics.Step.outcome}. *)
type block_result =
  | Block_progress  (** reached a scheduling point (send or [new]) *)
  | Block_blocked  (** agenda drained and nothing dequeuable *)
  | Block_terminated  (** the machine executed [delete] *)
  | Block_error of string  (** a runtime error configuration *)
  | Block_choices_exhausted
      (** a [*] was evaluated past the supplied choice list *)

val step_block : t -> Context.t -> choices:bool list -> block_result
(** Run one atomic block of the given machine — continue its agenda (or
    dequeue) until a send/new scheduling point, quiescence, termination or
    an error — resolving ghost [*] expressions from [choices] in order.
    The runtime twin of {!P_semantics.Step.run_atomic}, for driving a
    checker schedule through the compiled tables. Single-threaded use
    only. *)
