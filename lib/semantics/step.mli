(** The small-step operational semantics of P (Figures 4, 5, and 6),
    packaged as *atomic blocks*: a machine runs from one scheduling point
    to the next, where scheduling points are exactly [send] and [new]
    (section 5's atomicity reduction — receives are right movers). Within
    a block the machine is deterministic except for the ghost [*]
    expression, whose outcomes are supplied explicitly so callers can
    enumerate them.

    Deliberate, documented deviations from the literal rules: exit
    statements run for every frame popped during unhandled-event
    propagation (matching the paper's prose), and a [⊥]-valued branch
    condition is surfaced as an {!Errors.Eval_error} rather than a stuck
    machine. *)

type yield_reason =
  | Sent of { target : Mid.t; event : P_syntax.Names.Event.t }
  | Created of Mid.t

type outcome =
  | Progress of Config.t * yield_reason  (** reached a scheduling point *)
  | Blocked of Config.t
      (** agenda drained and no dequeuable event — the machine is disabled *)
  | Terminated of Config.t  (** the machine executed [delete] *)
  | Failed of Errors.t  (** an error configuration of Figure 6 *)
  | Need_more_choices
      (** a ghost [*] was evaluated beyond the supplied choice list; re-run
          from the same configuration with the list extended *)

val run_atomic :
  ?fuel:int ->
  ?dedup:bool ->
  ?faults:Fault.plan ->
  P_static.Symtab.t ->
  Config.t ->
  Mid.t ->
  choices:bool list ->
  outcome * Trace.item list
(** Run machine [mid] for one atomic block. [choices] resolves ghost [*]
    expressions in evaluation order. [fuel] (default 100000) bounds the
    microsteps; a repeated local configuration inside the block is reported
    as [Errors.Livelock] (Brent cycle detection). [dedup:false] disables
    the [⊕] queue append (ablation only). The returned items are the
    chronological happenings of the block.

    [faults] enables deterministic fault injection (see {!Fault}): block
    start probes crash-restart, each send probes drop/duplicate/reorder,
    each dequeue probes delay. Every fault point consumes one index of
    {!Config.fseq} whether or not a fault fires, which makes the block a
    pure function of [(config, mid, choices, plan)]. Passing a plan with
    all-zero rates is equivalent to omitting [faults].

    Sharing guarantee: every configuration update inside the block goes
    through {!Config.update}, so in the successor configuration only the
    machines the block touched — the running machine, a send target, a
    created machine — are fresh values; all others are physically shared
    with the input ({!Config.changed_machines} witnesses this). The
    checker's incremental fingerprint relies on this invariant. *)

val outcome_config : outcome -> Config.t option
(** The successor configuration: [Some] for [Progress]/[Blocked]/
    [Terminated], [None] for [Failed]/[Need_more_choices]. *)

val initial_config : P_static.Symtab.t -> Config.t * Mid.t * Trace.item list
(** The single-instance initial configuration of the program's main
    machine, about to run the entry statement of its initial state. *)

val enabled : P_static.Symtab.t -> Config.t -> Mid.t list
(** Machines that can take a step — the [en(m)] predicate of section 3.2. *)
