lib/syntax/ptype.mli: Fmt
