(** The adversarial host: fault injection for serving runtimes.

    Build deterministic fault plans (drop / duplicate / reorder / delay /
    crash-restart, each a probability) from code or CLI-style specs,
    attach them to the serving runtimes via [?faults] on
    {!P_runtime.Sched.create} and {!P_runtime.Shard.create}, and read
    back what the adversary actually did from shard stats. The same plan
    type drives the checker's fault-injected exploration
    ({!P_semantics.Step.run_atomic}), so a schedule the checker found
    hostile can be replayed against the serving stack and vice versa.

    Delay is checker-only (the serving schedulers already interleave
    freely); plans carrying a delay rate are accepted but the rate is
    never consulted by {!P_runtime.Sched}. *)

type plan = P_semantics.Fault.plan

val none : plan
val is_none : plan -> bool
val with_seed : int -> plan -> plan
val to_string : plan -> string
val pp : plan Fmt.t

val plan :
  ?seed:int ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?delay:float ->
  ?crash:float ->
  unit ->
  plan
(** Build a plan from per-class probabilities in [0..1] (default 0),
    rounded to per-mille exactly as {!of_spec} rounds.
    @raise Invalid_argument on a probability outside [0..1]. *)

val of_spec : ?seed:int -> string -> (plan, string) result
(** Parse a CLI-style spec such as ["drop=0.05,crash=0.01"]
    ({!P_semantics.Fault.of_string}) and install [seed] (default 0). *)

val of_spec_exn : ?seed:int -> string -> plan
(** @raise Invalid_argument on parse error. *)

(** What the adversary did to a serving run, summed across shards. *)
type summary = {
  fs_drops : int;
  fs_dups : int;
  fs_reorders : int;
  fs_crashes : int;
}

val summary : P_runtime.Shard.stats -> summary
val total : summary -> int
val pp_summary : summary Fmt.t
val json_of_summary : summary -> P_obs.Json.t
