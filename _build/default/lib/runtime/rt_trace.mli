(** Observability hooks for the runtime: the same happenings as
    {!P_semantics.Trace}, with table indices resolved back to names so the
    runtime-vs-checker equivalence tests can compare the two engines item
    by item. *)

type item =
  | Created of { creator : int option; created : int; kind : string }
  | Sent of { src : int; dst : int; event : string; payload : string }
  | Dequeued of { mid : int; event : string }
  | Entered of { mid : int; state : string }
  | Deleted of { mid : int }

val pp_item : item Fmt.t

val of_semantics_trace : P_semantics.Trace.t -> item list
(** Project a verifier trace to the comparable kinds (creations, sends,
    dequeues, deletions). *)

val observable : item list -> item list
(** Keep only the comparable kinds of a runtime trace. *)
