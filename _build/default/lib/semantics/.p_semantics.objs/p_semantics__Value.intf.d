lib/semantics/value.mli: Fmt Mid P_syntax
