lib/checker/depth_bounded.mli: P_static Search
