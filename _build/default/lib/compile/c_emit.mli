(** C code generation in the style of section 4 of the paper: enumerations
    for events/machines/variables/states, per-state tables of deferred
    sets, transitions and actions, entry/exit/action function bodies
    calling into the runtime, and a driver structure tying it together.
    The output is one self-contained translation unit against
    [p_runtime.h] (whose OCaml twin is {!P_runtime}). *)

val emit : Tables.driver -> string
