(** The error configurations of the operational semantics (Figure 6), plus
    the dynamic evaluation errors our interpreter surfaces instead of getting
    stuck, and the livelock detected for the first liveness property of
    section 3.2. *)

open P_syntax

type kind =
  | Assert_failure of Loc.t  (** rule ASSERT-FAIL *)
  | Send_to_null of Loc.t  (** rule SEND-FAIL1: target evaluated to [⊥] *)
  | Send_to_deleted of Mid.t * Loc.t
      (** rule SEND-FAIL2: target machine was deleted (or never existed) *)
  | Unhandled_event of Names.Event.t
      (** rule POP-FAIL: the call stack emptied while an event was in flight —
          the machine has no handler for the event in any frame *)
  | Eval_error of string * Loc.t
      (** no evaluation rule applies: dynamic type error, [⊥] used as a
          branch condition, division by zero, ... *)
  | Livelock
      (** the machine executed a cycle of private operations without reaching
          a scheduling point: a violation of the first liveness property
          ([∃m. ◇□ sched(m)]) witnessed inside one atomic block *)
  | Stack_underflow
      (** rule POP-FAIL via [return]: the last frame was popped, leaving an
          empty call stack *)
  | Fuel_exhausted
      (** the atomic block exceeded its step budget without repeating a local
          configuration; reported distinctly because it is a bound, not a
          proof of livelock *)

type t = { machine : Names.Machine.t; mid : Mid.t; kind : kind }

let pp_kind ppf = function
  | Assert_failure loc -> Fmt.pf ppf "assertion failure at %a" Loc.pp loc
  | Send_to_null loc -> Fmt.pf ppf "send to uninitialized (null) machine id at %a" Loc.pp loc
  | Send_to_deleted (mid, loc) ->
    Fmt.pf ppf "send to deleted machine %a at %a" Mid.pp mid Loc.pp loc
  | Unhandled_event e -> Fmt.pf ppf "unhandled event %a" Names.Event.pp e
  | Eval_error (msg, loc) -> Fmt.pf ppf "evaluation error at %a: %s" Loc.pp loc msg
  | Livelock -> Fmt.string ppf "livelock: cycle of private operations"
  | Stack_underflow -> Fmt.string ppf "call stack underflow (return from bottom state)"
  | Fuel_exhausted -> Fmt.string ppf "atomic step budget exhausted"

let pp ppf t =
  Fmt.pf ppf "machine %a %a: %a" Names.Machine.pp t.machine Mid.pp t.mid pp_kind t.kind

let to_string t = Fmt.str "%a" pp t
