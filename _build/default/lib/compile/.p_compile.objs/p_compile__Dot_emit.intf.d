lib/compile/dot_emit.mli: P_syntax
