(** The error configurations of the operational semantics (Figure 6), plus
    the dynamic evaluation errors the interpreter surfaces instead of
    getting stuck, and the livelock caught for the first liveness property
    of section 3.2. *)

open P_syntax

type kind =
  | Assert_failure of Loc.t  (** rule ASSERT-FAIL *)
  | Send_to_null of Loc.t  (** rule SEND-FAIL1: target evaluated to [⊥] *)
  | Send_to_deleted of Mid.t * Loc.t  (** rule SEND-FAIL2 *)
  | Unhandled_event of Names.Event.t
      (** rule POP-FAIL: the call stack emptied with an event in flight *)
  | Eval_error of string * Loc.t
      (** no evaluation rule applies: dynamic type error, [⊥] branch
          condition, division by zero, ... *)
  | Livelock
      (** a cycle of private operations inside one atomic block — a
          violation of the first liveness property caught eagerly *)
  | Stack_underflow  (** rule POP-FAIL via [return] from the bottom state *)
  | Fuel_exhausted
      (** the atomic block exceeded its microstep budget without repeating
          a local configuration (a bound, not a proof of livelock) *)

type t = { machine : Names.Machine.t; mid : Mid.t; kind : kind }

val pp_kind : kind Fmt.t
val pp : t Fmt.t
val to_string : t -> string
