(** The sharding layer: N domain-pinned {!Sched} schedulers serving one
    logical machine population.

    A machine's home shard is a pure function (a splitmix-style avalanche)
    of its handle, and handles come from one global atomic counter, so any
    shard — and the host — can route to any machine without shared state.
    Cross-shard traffic goes through per-shard MPSC transfer queues built
    as Treiber stacks of *batches*: a producer pushes a whole batch with
    one CAS (the same lock-free claim idiom as the compact state store and
    the Chase–Lev deque in the checker), and the consumer takes the entire
    stack with one [Atomic.exchange] per drain. Producer-side buffers
    amortize the CAS over [batch] messages; spawn messages flush eagerly
    so a child's materialization is ordered before any message that could
    carry its handle.

    Backpressure is two-level: each shard bounds its in-flight transfer
    messages ([ingress_capacity] — {!post} returns [Shed] synchronously
    when full), and each mailbox is bounded by the scheduler's [capacity]
    (asynchronous sheds, counted per shard). Nothing in this layer can
    grow without limit. *)

module Tables = P_compile.Tables

type msg =
  | M_send of { src : int; dst : int; event : int; payload : Rt_value.t }
  | M_spawn of {
      handle : int;
      creator : int option;
      ty : int;
      inits : (int * Rt_value.t) list;
    }

(* Treiber stack of batches; [msgs] is newest-first (producer conses). *)
type node = Nil | Batch of { msgs : msg list; next : node }

(** Per-shard mutable state beyond the scheduler itself. The counters are
    single-writer (the owning domain); cross-domain reads may be stale. *)
type shard = {
  sched : Sched.t;
  inbound : node Atomic.t;  (** shard-to-shard transfer batches *)
  ingress : node Atomic.t;  (** host posts ({!post}); separate from
      [inbound] so transfer counters honestly measure only cross-shard
      traffic — a single-shard run consumes zero transfer batches *)
  pending : int Atomic.t;  (** in-flight transfer + ingress messages *)
  idle : bool Atomic.t;
  (* producer-side buffers for every destination, owned by this shard's
     domain: out.(d) are messages bound for shard d, newest first *)
  out : msg list array;
  outn : int array;
  mutable c_xfer_batches : int;  (** cross-shard batches this shard consumed *)
  mutable c_xfer_msgs : int;
  mutable c_ingress_batches : int;  (** host-ingress batches consumed *)
  mutable c_ingress_msgs : int;
}

type t = {
  n : int;
  shards : shard array;
  next_handle : int Atomic.t;
  stop : bool Atomic.t;
  failure : exn option Atomic.t;
  shed_ingress : int Atomic.t;  (** posts refused at a full transfer queue *)
  ingress_capacity : int;
  batch : int;
  fuel : int;
  telemetry : P_obs.Telemetry.t;
  mutable domains : unit Domain.t array;
  mutable started : bool;
}

(* Handle → home shard: an avalanche mix so consecutive handles spread
   across shards (consecutive ids are typically created together and
   would otherwise pin a creation burst to one shard). *)
let home t h =
  if t.n = 1 then 0
  else begin
    let h = h lxor (h lsr 33) in
    let h = h * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 29) in
    (h land max_int) mod t.n
  end

(* ------------------------------------------------------------------ *)
(* Transfer queues                                                     *)
(* ------------------------------------------------------------------ *)

let rec push_node (st : node Atomic.t) msgs =
  let cur = Atomic.get st in
  if not (Atomic.compare_and_set st cur (Batch { msgs; next = cur })) then
    push_node st msgs

(* Reserve one ingress slot at [dst]; false = full (shed). The
   check-then-add is racy by design: overshoot is bounded by the number
   of concurrent producers, which is all a soft admission bound needs. *)
let reserve t dst =
  if Atomic.get t.shards.(dst).pending >= t.ingress_capacity then begin
    Atomic.incr t.shed_ingress;
    false
  end
  else begin
    ignore (Atomic.fetch_and_add t.shards.(dst).pending 1 : int);
    true
  end

(* Flush shard [s]'s buffer for destination [d] (owning domain only). *)
let flush_one t s d =
  let sh = t.shards.(s) in
  if sh.outn.(d) > 0 then begin
    push_node t.shards.(d).inbound sh.out.(d);
    sh.out.(d) <- [];
    sh.outn.(d) <- 0
  end

let flush_all t s =
  for d = 0 to t.n - 1 do
    flush_one t s d
  done

(* Buffer a message from shard [s] to shard [d]; flushes at the batch
   size. Caller has already reserved the ingress slot. *)
let buffer t s d msg =
  let sh = t.shards.(s) in
  sh.out.(d) <- msg :: sh.out.(d);
  sh.outn.(d) <- sh.outn.(d) + 1;
  if sh.outn.(d) >= t.batch then flush_one t s d

(* Drain one of shard [sh]'s queues: one exchange takes every batch
   pushed since the last drain; reversal restores per-producer FIFO
   order. Returns [(batches, messages)] processed. *)
let drain_queue (sh : shard) (q : node Atomic.t) : int * int =
  match Atomic.exchange q Nil with
  | Nil -> (0, 0)
  | node ->
    let rec batches acc = function
      | Nil -> acc  (* acc is oldest-first after the walk *)
      | Batch { msgs; next } -> batches (msgs :: acc) next
    in
    let nb = ref 0 and n = ref 0 in
    List.iter
      (fun msgs ->
        incr nb;
        List.iter
          (fun msg ->
            incr n;
            (match msg with
            | M_send { src; dst; event; payload } ->
              let (_ : Context.backpressure) =
                Sched.post sh.sched ~src dst event payload
              in
              ()
            | M_spawn { handle; creator; ty; inits } ->
              Sched.adopt_spawn sh.sched ~handle ~creator ty inits);
            ignore (Atomic.fetch_and_add sh.pending (-1) : int))
          (List.rev msgs))
      (batches [] node);
    (!nb, !n)

(* Cross-shard transfer traffic. *)
let drain_inbound t s =
  let sh = t.shards.(s) in
  let nb, n = drain_queue sh sh.inbound in
  sh.c_xfer_batches <- sh.c_xfer_batches + nb;
  sh.c_xfer_msgs <- sh.c_xfer_msgs + n;
  n

(* Host posts. *)
let drain_ingress t s =
  let sh = t.shards.(s) in
  let nb, n = drain_queue sh sh.ingress in
  sh.c_ingress_batches <- sh.c_ingress_batches + nb;
  sh.c_ingress_msgs <- sh.c_ingress_msgs + n;
  n

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(shards = 1) ?(policy = Sched.Fifo) ?quantum ?capacity
    ?(ingress_capacity = 1 lsl 16) ?(batch = 32) ?(fuel = 1024) ?seed ?faults
    ?metrics ?(telemetry = P_obs.Telemetry.null) (driver : Tables.driver) : t =
  if shards < 1 then invalid_arg "Shard.create: shards";
  (* Decorrelate the fault schedules of different shards: each gets the
     same rates under a seed offset by a large odd constant times the
     shard index, so shard populations don't crash or drop in lockstep. *)
  let shard_faults s =
    match faults with
    | Some p when not (P_semantics.Fault.is_none p) ->
      Some
        (P_semantics.Fault.with_seed
           (p.P_semantics.Fault.seed + ((s + 1) * 1_000_003))
           p)
    | _ -> None
  in
  let next_handle = Atomic.make 0 in
  let rec t =
    lazy
      { n = shards;
        shards =
          Array.init shards (fun s ->
              let router =
                { Sched.rt_alloc =
                    (fun () -> Atomic.fetch_and_add next_handle 1);
                  rt_home = (fun h -> home (Lazy.force t) h = s);
                  rt_send =
                    (fun ~src ~dst ~event ~payload ->
                      let t = Lazy.force t in
                      let d = home t dst in
                      if d = s then
                        (* shard-local: straight into the local mailbox —
                           never through the transfer machinery. [Sched]
                           already routes [rt_home] destinations locally,
                           so this is the layer's own guarantee, not a
                           reachable round trip. *)
                        Sched.post t.shards.(s).sched ~src dst event payload
                      else if reserve t d then begin
                        buffer t s d (M_send { src; dst; event; payload });
                        Context.Queued
                      end
                      else Context.Shed);
                  rt_spawn =
                    (fun ~handle ~creator ~ty ~inits ->
                      let t = Lazy.force t in
                      let d = home t handle in
                      if d = s then
                        Sched.adopt_spawn t.shards.(s).sched ~handle
                          ~creator:(Some creator) ty inits
                      else begin
                        (* no admission control for spawns: dropping a child
                           would dangle the handle the parent already holds.
                           [pending] still tracks it for quiescence. *)
                        ignore (Atomic.fetch_and_add t.shards.(d).pending 1 : int);
                        buffer t s d
                          (M_spawn { handle; creator = Some creator; ty; inits });
                        (* materialization must be ordered before any message
                           that can carry the child's handle *)
                        flush_one t s d
                      end) }
              in
              let sched =
                Sched.create ~policy ?quantum ?capacity ?seed:
                  (Option.map (fun sd -> sd + s) seed)
                  ?faults:(shard_faults s) ~router driver
              in
              Sched.set_metrics sched metrics;
              { sched;
                inbound = Atomic.make Nil;
                ingress = Atomic.make Nil;
                pending = Atomic.make 0;
                idle = Atomic.make false;
                out = Array.make shards [];
                outn = Array.make shards 0;
                c_xfer_batches = 0;
                c_xfer_msgs = 0;
                c_ingress_batches = 0;
                c_ingress_msgs = 0 });
        next_handle;
        stop = Atomic.make false;
        failure = Atomic.make None;
        shed_ingress = Atomic.make 0;
        ingress_capacity;
        batch;
        fuel;
        telemetry;
        domains = [||];
        started = false }
  in
  Lazy.force t

let exec_of t s = Sched.exec t.shards.(s).sched

(** Register a foreign function on every shard's runtime. The closure runs
    on the owning shard's domain; shard-local state can be captured per
    shard via {!register_foreign_per_shard}. *)
let register_foreign t name fn =
  Array.iter (fun sh -> Exec.register_foreign (Sched.exec sh.sched) name fn) t.shards

let register_foreign_per_shard t name mk =
  Array.iteri
    (fun s sh -> Exec.register_foreign (Sched.exec sh.sched) name (mk s))
    t.shards

let event_id t name =
  match Tables.event_id_of_name (Sched.exec t.shards.(0).sched).Exec.driver name with
  | None -> Exec.error "unknown event %s" name
  | Some e -> e

(* ------------------------------------------------------------------ *)
(* The shard loop                                                      *)
(* ------------------------------------------------------------------ *)

let shard_loop t s =
  let sh = t.shards.(s) in
  let idle_rounds = ref 0 in
  (try
     while not (Atomic.get t.stop) do
       let drained = drain_ingress t s + drain_inbound t s in
       let ran = Sched.run_ready sh.sched ~fuel:t.fuel in
       flush_all t s;
       P_obs.Telemetry.tick t.telemetry;
       if drained = 0 && ran = 0 then begin
         if !idle_rounds = 0 then begin
           Sched.flush_metrics sh.sched;
           Atomic.set sh.idle true
         end;
         incr idle_rounds;
         (* stay hot briefly, then let hyperthread siblings breathe *)
         if !idle_rounds < 1000 then Domain.cpu_relax () else Thread.yield ()
       end
       else begin
         if !idle_rounds > 0 then Atomic.set sh.idle false;
         idle_rounds := 0
       end
     done
   with e ->
     let (_ : bool) = Atomic.compare_and_set t.failure None (Some e) in
     Atomic.set t.stop true);
  (* a dying shard still publishes its buffered messages so peers don't
     wait on mail that was never sent *)
  flush_all t s;
  Sched.flush_metrics sh.sched;
  Atomic.set sh.idle true

(* ------------------------------------------------------------------ *)
(* External ingress and machine creation                               *)
(* ------------------------------------------------------------------ *)

(** Create a machine before {!start}: adopts directly into its home shard
    (no domains are running yet, so this is plain single-threaded code). *)
let create_machine t (machine : string) : int =
  if t.started then
    invalid_arg "Shard.create_machine: shards already running (spawn from machine code)";
  let handle = Atomic.fetch_and_add t.next_handle 1 in
  let s = home t handle in
  ignore (Sched.create_machine t.shards.(s).sched ~handle machine : int);
  handle

(** Post an event from the host into a machine's home shard. Synchronous
    [Shed] when the shard's transfer queue is at capacity — the
    backpressure signal an open-loop load generator reacts to. *)
let post t dst ~event payload : Context.backpressure =
  let d = home t dst in
  if not (reserve t d) then Context.Shed
  else begin
    push_node t.shards.(d).ingress
      [ M_send { src = -1; dst; event; payload } ];
    Context.Queued
  end

(* ------------------------------------------------------------------ *)
(* Quiescence, stop, stats                                             *)
(* ------------------------------------------------------------------ *)

let all_idle t =
  Array.for_all
    (fun sh ->
      Atomic.get sh.idle
      && Atomic.get sh.pending = 0
      && Atomic.get sh.inbound = Nil
      && Atomic.get sh.ingress = Nil)
    t.shards

(** Wait until every shard is idle with empty queues (stable across two
    observations), a failure surfaces, or [timeout_s] passes. Returns
    [true] on quiescence. *)
let quiesce ?(timeout_s = 60.0) t =
  let t0 = P_obs.Mclock.now_us () in
  let deadline = t0 +. (timeout_s *. 1e6) in
  let rec wait stable =
    if Atomic.get t.failure <> None || Atomic.get t.stop then true
    else if P_obs.Mclock.now_us () > deadline then false
    else if all_idle t then
      if stable then true
      else begin
        Domain.cpu_relax ();
        wait true
      end
    else begin
      Thread.yield ();
      wait false
    end
  in
  wait false

type stats = {
  sh_shards : int;
  sh_machines : int;  (** live instances across shards *)
  sh_sends : int;  (** local (intra-shard) deliveries *)
  sh_spawns : int;
  sh_activations : int;
  sh_yields : int;
  sh_dequeues : int;  (** events processed *)
  sh_shed_mailbox : int;  (** drops at full bounded mailboxes *)
  sh_shed_ingress : int;  (** posts refused at full transfer queues *)
  sh_dead_letters : int;  (** sends to deleted machines *)
  sh_xfer_batches : int;  (** cross-shard batches consumed *)
  sh_xfer_msgs : int;  (** cross-shard messages consumed *)
  sh_ingress_batches : int;  (** host-post batches consumed *)
  sh_ingress_msgs : int;  (** host-post messages consumed *)
  sh_pending : int;  (** unreleased ingress/transfer slots; 0 once drained *)
  sh_fault_drops : int;  (** injected drops across shards *)
  sh_fault_dups : int;  (** injected duplications across shards *)
  sh_fault_reorders : int;  (** injected reorders across shards *)
  sh_crash_restarts : int;  (** injected crash-restarts across shards *)
}

let stats t : stats =
  let z =
    { sh_shards = t.n;
      sh_machines = 0;
      sh_sends = 0;
      sh_spawns = 0;
      sh_activations = 0;
      sh_yields = 0;
      sh_dequeues = 0;
      sh_shed_mailbox = 0;
      sh_shed_ingress = Atomic.get t.shed_ingress;
      sh_dead_letters = 0;
      sh_xfer_batches = 0;
      sh_xfer_msgs = 0;
      sh_ingress_batches = 0;
      sh_ingress_msgs = 0;
      sh_pending = 0;
      sh_fault_drops = 0;
      sh_fault_dups = 0;
      sh_fault_reorders = 0;
      sh_crash_restarts = 0 }
  in
  Array.fold_left
    (fun acc sh ->
      let s = Sched.stats sh.sched in
      { acc with
        sh_machines =
          acc.sh_machines + Hashtbl.length (Sched.exec sh.sched).Exec.instances;
        sh_sends = acc.sh_sends + s.Sched.st_sends;
        sh_spawns = acc.sh_spawns + s.Sched.st_spawns;
        sh_activations = acc.sh_activations + s.Sched.st_activations;
        sh_yields = acc.sh_yields + s.Sched.st_yields;
        sh_dequeues = acc.sh_dequeues + s.Sched.st_dequeues;
        sh_shed_mailbox = acc.sh_shed_mailbox + s.Sched.st_shed_mailbox;
        sh_dead_letters = acc.sh_dead_letters + s.Sched.st_dead_letters;
        sh_xfer_batches = acc.sh_xfer_batches + sh.c_xfer_batches;
        sh_xfer_msgs = acc.sh_xfer_msgs + sh.c_xfer_msgs;
        sh_ingress_batches = acc.sh_ingress_batches + sh.c_ingress_batches;
        sh_ingress_msgs = acc.sh_ingress_msgs + sh.c_ingress_msgs;
        sh_pending = acc.sh_pending + Atomic.get sh.pending;
        sh_fault_drops = acc.sh_fault_drops + s.Sched.st_fault_drops;
        sh_fault_dups = acc.sh_fault_dups + s.Sched.st_fault_dups;
        sh_fault_reorders = acc.sh_fault_reorders + s.Sched.st_fault_reorders;
        sh_crash_restarts = acc.sh_crash_restarts + s.Sched.st_crash_restarts })
    z t.shards

(** Total events processed and total sheds — cheap racy reads for
    telemetry probes and progress displays. *)
let events_processed t =
  Array.fold_left
    (fun acc sh -> acc + Exec.events_dequeued (Sched.exec sh.sched))
    0 t.shards

let shed_total t =
  Atomic.get t.shed_ingress
  + Array.fold_left
      (fun acc sh -> acc + (Sched.stats sh.sched).Sched.st_shed_mailbox)
      0 t.shards

let ready_total t =
  Array.fold_left (fun acc sh -> acc + Sched.ready_length sh.sched) 0 t.shards

let sends_total t =
  Array.fold_left
    (fun acc sh -> acc + (Sched.stats sh.sched).Sched.st_sends)
    0 t.shards

(** Spawn the shard domains. The telemetry probe maps the sampler's
    exploration vocabulary onto serving terms: states ≙ events processed,
    transitions ≙ local deliveries, frontier ≙ ready fibers — so
    [states_per_s] reads as sustained events/sec and [shed] carries the
    backpressure drops. *)
let start t =
  if t.started then invalid_arg "Shard.start: already started";
  t.started <- true;
  if P_obs.Telemetry.enabled t.telemetry then begin
    P_obs.Telemetry.set_meta t.telemetry
      [ ("role", P_obs.Json.String "serving-runtime");
        ("shards", P_obs.Json.Int t.n) ];
    P_obs.Telemetry.set_probe t.telemetry (fun () ->
        { P_obs.Telemetry.states = events_processed t;
          transitions = sends_total t;
          frontier = float_of_int (ready_total t);
          steals = 0;
          steal_attempts = 0;
          store_bytes = 0;
          shed = shed_total t })
  end;
  t.domains <- Array.init t.n (fun s -> Domain.spawn (fun () -> shard_loop t s))

(** Stop the shard domains, join them, and return final (exact) stats.
    Re-raises the first failure a shard hit, if any. *)
let stop t : stats =
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  t.domains <- [||];
  match Atomic.get t.failure with
  | Some e -> raise e
  | None -> stats t
