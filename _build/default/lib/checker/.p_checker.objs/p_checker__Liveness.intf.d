lib/checker/liveness.mli: Fmt P_semantics P_static P_syntax
