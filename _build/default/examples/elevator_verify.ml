(* The elevator case study of section 2: verify the correct design across
   delay bounds (the Figure 7 sweep in miniature), demonstrate that the
   seeded unhandled-event bug is caught within delay bound 2, and run the
   responsiveness (liveness) checks with their postpone refinement.

   Run with: dune exec examples/elevator_verify.exe *)

let () =
  let program = P_examples_lib.Elevator.program () in
  let symtab = P_static.Check.run_exn program in

  Fmt.pr "=== elevator: states explored per delay bound ===@.";
  List.iter
    (fun d ->
      let r = P_checker.Delay_bounded.explore ~delay_bound:d ~max_states:500_000 symtab in
      Fmt.pr "  d=%-2d %a@." d P_checker.Search.pp_result r)
    [ 0; 1; 2; 3; 4 ];

  Fmt.pr "@.=== buggy elevator (Opening forgets defer/ignore) ===@.";
  let buggy = P_static.Check.run_exn (P_examples_lib.Elevator.buggy_program ()) in
  List.iter
    (fun d ->
      let r = P_checker.Delay_bounded.explore ~delay_bound:d ~max_states:500_000 buggy in
      Fmt.pr "  d=%-2d %a@." d P_checker.Search.pp_result r)
    [ 0; 1; 2 ];

  Fmt.pr "@.=== liveness (section 3.2) ===@.";
  let live = P_checker.Liveness.check ~max_states:15_000 symtab in
  Fmt.pr "  %d violation(s) over %d states%s@."
    (List.length live.violations) live.explored_states
    (if live.complete then "" else " (bounded)");
  List.iter (fun v -> Fmt.pr "  %a@." P_checker.Liveness.pp_violation v) live.violations;
  Fmt.pr
    "  (the CloseDoor starvation in state Closed is intentionally allowed by its\n\
    \   'postpone' annotation — remove it and this check reports the starvation)@."
