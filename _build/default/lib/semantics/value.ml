(** Runtime values of P.

    [Null] is the paper's undefined value [⊥]: it arises as the constant
    [null], as the content of uninitialized variables, and it propagates
    through every operator (section 3, "Expressions and evaluation"). *)

open P_syntax

type t =
  | Null
  | Bool of bool
  | Int of int
  | Event of Names.Event.t
  | Machine of Mid.t

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Event x, Event y -> Names.Event.equal x y
  | Machine x, Machine y -> Mid.equal x y
  | (Null | Bool _ | Int _ | Event _ | Machine _), _ -> false

let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Event _ -> 3
    | Machine _ -> 4
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Event x, Event y -> Names.Event.compare x y
  | Machine x, Machine y -> Mid.compare x y
  | _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Event e -> Names.Event.pp ppf e
  | Machine id -> Mid.pp ppf id

let to_string v = Fmt.str "%a" pp v

let is_null = function Null -> true | _ -> false

(** [truth v] is [Some b] when [v] is the boolean [b]; [None] otherwise
    (including [⊥], for which neither IF-THEN nor IF-ELSE applies). *)
let truth = function Bool b -> Some b | Null | Int _ | Event _ | Machine _ -> None

(** Evaluation of operators. Any [⊥] operand yields [⊥]; a well-typed
    non-null operand combination always succeeds; anything else is a dynamic
    type error reported as [Error]. *)

type 'a op_result = Ok of 'a | Type_error of string

let unop (op : Ast.unop) (v : t) : t op_result =
  match (op, v) with
  | _, Null -> Ok Null
  | Ast.Not, Bool b -> Ok (Bool (not b))
  | Ast.Neg, Int i -> Ok (Int (-i))
  | Ast.Not, (Int _ | Event _ | Machine _) -> Type_error "'!' applied to non-boolean"
  | Ast.Neg, (Bool _ | Event _ | Machine _) -> Type_error "unary '-' applied to non-integer"

let binop (op : Ast.binop) (a : t) (b : t) : t op_result =
  let arith f =
    match (a, b) with
    | Null, _ | _, Null -> Ok Null
    | Int x, Int y -> f x y
    | _ -> Type_error "arithmetic on non-integers"
  in
  let cmp f =
    match (a, b) with
    | Null, _ | _, Null -> Ok Null
    | Int x, Int y -> Ok (Bool (f x y))
    | _ -> Type_error "comparison of non-integers"
  in
  let logic f =
    match (a, b) with
    | Null, _ | _, Null -> Ok Null
    | Bool x, Bool y -> Ok (Bool (f x y))
    | _ -> Type_error "boolean operator on non-booleans"
  in
  match op with
  | Ast.Add -> arith (fun x y -> Ok (Int (x + y)))
  | Ast.Sub -> arith (fun x y -> Ok (Int (x - y)))
  | Ast.Mul -> arith (fun x y -> Ok (Int (x * y)))
  | Ast.Div -> arith (fun x y -> if y = 0 then Type_error "division by zero" else Ok (Int (x / y)))
  | Ast.Mod -> arith (fun x y -> if y = 0 then Type_error "modulo by zero" else Ok (Int (x mod y)))
  | Ast.And -> logic ( && )
  | Ast.Or -> logic ( || )
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.Eq -> (
    match (a, b) with
    | Null, _ | _, Null -> Ok Null
    | _ -> Ok (Bool (equal a b)))
  | Ast.Neq -> (
    match (a, b) with
    | Null, _ | _, Null -> Ok Null
    | _ -> Ok (Bool (not (equal a b))))
