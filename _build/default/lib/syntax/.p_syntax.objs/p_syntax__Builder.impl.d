lib/syntax/builder.ml: Ast List Loc Names Ptype
