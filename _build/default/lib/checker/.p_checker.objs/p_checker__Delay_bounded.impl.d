lib/checker/delay_bounded.ml: Canon Dynarray Hashtbl List P_semantics P_static Queue Search Unix
