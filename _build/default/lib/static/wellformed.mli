(** Structural well-formedness: every reference resolves (events, states,
    variables, actions, machines, foreign functions with correct arity),
    the nondeterministic [*] appears only in ghost machines, exit
    statements contain no control transfer ([raise]/[return]/[leave]/
    [call] — the Figure 5 assumption), variable names do not collide with
    event names, and the main machine's initializers are literals.
    Together with {!Symtab.build}'s duplicate detection this is check (1)
    and check (2) of the paper's type system (section 3.3). *)

val check : Symtab.t -> Symtab.diagnostic list
(** Diagnostics oldest-first, including those from {!Symtab.build}. *)
