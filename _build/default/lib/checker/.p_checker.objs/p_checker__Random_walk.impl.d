lib/checker/random_walk.ml: Fmt List P_semantics P_static Unix
