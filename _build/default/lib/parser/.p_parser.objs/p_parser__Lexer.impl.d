lib/parser/lexer.ml: List P_syntax Parse_error String Token
