(** Quickstart program: two machines exchanging Ping/Pong a bounded number
    of times, with an assertion that the pong count never exceeds the number
    of pings sent. Useful as the smallest closed P program exercising
    machine creation, sends, payloads, and deferral-free dequeueing. *)

open P_syntax.Builder

let events =
  [ event "Ping" ~payload:P_syntax.Ptype.Int;
    event "Pong" ~payload:P_syntax.Ptype.Int;
    event "Done";
    event "unit" ]

let ponger =
  machine "Ponger"
    ~vars:[ var_decl "client" P_syntax.Ptype.Machine_id ]
    [ state "Serve" ~entry:skip;
      state "Reply" ~entry:(seq [ send (v "client") "Pong" ~payload:arg; raise_ "unit" ]);
      state "Stopped" ~entry:delete ]
    ~steps:
      [ ("Serve", "Ping", "Reply"); ("Reply", "unit", "Serve"); ("Serve", "Done", "Stopped") ]

let pinger ~rounds =
  machine "Pinger"
    ~vars:
      [ var_decl "peer" P_syntax.Ptype.Machine_id;
        var_decl "sent" P_syntax.Ptype.Int;
        var_decl "received" P_syntax.Ptype.Int ]
    [ state "Init"
        ~entry:
          (seq
             [ new_ "peer" "Ponger" [ ("client", this) ];
               assign "sent" (int 0);
               assign "received" (int 0);
               raise_ "unit" ]);
      state "Play"
        ~entry:
          (if_ (v "sent" < int rounds)
             (seq [ assign "sent" (v "sent" + int 1); send (v "peer") "Ping" ~payload:(v "sent") ])
             (seq [ send (v "peer") "Done"; raise_ "Done" ]));
      state "Await" ~entry:skip;
      state "Finished" ~entry:skip ]
    ~steps:
      [ ("Init", "unit", "Play");
        ("Play", "Pong", "Count");
        ("Play", "Done", "Finished");
        ("Count", "unit", "Play") ]
    ~actions:[ action "noop" skip ]

(* The Count state validates the protocol invariant before looping. *)
let pinger ~rounds =
  let m = pinger ~rounds in
  { m with
    P_syntax.Ast.states =
      m.P_syntax.Ast.states
      @ [ state "Count"
            ~entry:
              (seq
                 [ assign "received" (v "received" + int 1);
                   assert_ (v "received" <= v "sent");
                   assert_ (arg <= v "sent");
                   raise_ "unit" ]) ] }

(** Closed ping-pong program playing [rounds] rounds. *)
let program ?(rounds = 3) () = program ~events ~machines:[ pinger ~rounds; ponger ] "Pinger"

(** Variant with a protocol bug: the pinger under-counts [sent], so the
    invariant [received <= sent] fails after the first pong. *)
let buggy_program ?(rounds = 3) () =
  let p = program ~rounds () in
  let machines =
    List.map
      (fun (m : P_syntax.Ast.machine) ->
        if P_syntax.Names.Machine.to_string m.machine_name = "Pinger" then
          { m with
            P_syntax.Ast.states =
              List.map
                (fun (st : P_syntax.Ast.state) ->
                  if P_syntax.Names.State.to_string st.state_name = "Count" then
                    state "Count"
                      ~entry:
                        (seq
                           [ assign "received" (v "received" + int 1);
                             assert_ (v "received" < v "sent");
                             raise_ "unit" ])
                  else st)
                m.P_syntax.Ast.states }
        else m)
      p.machines
  in
  { p with machines }
